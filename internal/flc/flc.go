// Package flc models the Matsushita fuzzy logic controller used in the
// paper's evaluation (Section 5, Fig. 6). The original source was a
// private communication; this reconstruction follows every fact the
// paper publishes:
//
//   - two sensed inputs (temperature, humidity) and one control output
//     driving an air conditioner;
//   - four rules, evaluated by processes EVAL_R0..EVAL_R3 and convolved
//     by CONV_R0..CONV_R3, plus INITIALIZE, CONVERT_FACTS, CONVERT_CTRL
//     and CENTROID (Fig. 6's process list);
//   - chip 2 holds the memories: InitMemberFunct (1920 integers — 15
//     membership/calibration tables of 128 points), trru0..trru3 (128 x
//     16-bit rule truth arrays) and the rule parameter tables rule1,
//     rule3 (3 integers each);
//   - channel ch1: EVAL_R3 *writing* trru0, channel ch2: CONV_R2
//     *reading* trru2; each message carries 16 data + 7 address bits, so
//     bus widths beyond 23 pins buy nothing (Fig. 7).
//
// The behaviors compute a real Mamdani controller: INITIALIZE fills
// triangular membership functions, CONVERT_FACTS fuzzifies the inputs,
// EVAL_Rk clips rule k's output membership by the rule activation
// (min), CONV_Rk accumulates the clipped surface's area and moment, and
// CENTROID defuzzifies. Phase signals sequence the pipeline so the
// shared bus carries one transaction at a time (the paper leaves bus
// arbitration to future work).
package flc

import (
	"fmt"

	"repro/internal/spec"
)

// Table indices within InitMemberFunct: table t occupies entries
// [t*128, t*128+127].
const (
	tableTempFn0 = 0  // temperature antecedents, rules 0..3
	tableHumFn0  = 4  // humidity antecedents, rules 0..3
	tableOutFn0  = 8  // output membership, rules 0..3
	tableTempCal = 12 // input calibration (temperature)
	tableHumCal  = 13 // input calibration (humidity)
	tableCtlCal  = 14 // output calibration
	numTables    = 15
	tableLen     = 128
)

// evalTarget maps EVAL_Rk to the trru array it writes: the paper's
// Fig. 6 records EVAL_R3 writing trru0, and CONV_Rk reads trruk, so the
// remaining assignments follow by elimination.
var evalTarget = [4]int{3, 1, 2, 0}

// System is the constructed FLC with handles the experiments need.
type System struct {
	Sys *spec.System
	// Ch1 is "process EVAL_R3 writing variable trru0" and Ch2 is
	// "process CONV_R2 reading variable trru2", the channels merged
	// into bus B in the paper's experiments.
	Ch1, Ch2 *spec.Channel
	// EvalR3 and ConvR2 are the processes whose execution times Fig. 7
	// plots.
	EvalR3, ConvR2 *spec.Behavior
}

// Config parameterizes the workload.
type Config struct {
	// Temperature and Humidity are the sensed inputs, 0..127.
	Temperature, Humidity int
}

// DefaultConfig returns a mid-range operating point.
func DefaultConfig() Config { return Config{Temperature: 80, Humidity: 40} }

// New constructs the FLC system partitioned as in Fig. 6: all twelve
// processes on chip1, all memories on chip2.
func New(cfg Config) *System {
	if cfg.Temperature < 0 || cfg.Temperature > 127 || cfg.Humidity < 0 || cfg.Humidity > 127 {
		panic(fmt.Sprintf("flc: inputs out of range: temp=%d hum=%d", cfg.Temperature, cfg.Humidity))
	}
	sys := spec.NewSystem("FLC")
	chip1 := sys.AddModule("chip1")
	chip2 := sys.AddModule("chip2")

	// ---- chip 2: memories (Fig. 6) ----
	initMemberFunct := chip2.AddVariable(spec.NewVar("InitMemberFunct", spec.Array(numTables*tableLen, spec.Integer)))
	trru := make([]*spec.Variable, 4)
	for k := 0; k < 4; k++ {
		trru[k] = chip2.AddVariable(spec.NewVar(fmt.Sprintf("trru%d", k), spec.Array(tableLen, spec.BitVector(16))))
	}
	rule1 := chip2.AddVariable(spec.NewVar("rule1", spec.Array(3, spec.Integer)))
	rule3 := chip2.AddVariable(spec.NewVar("rule3", spec.Array(3, spec.Integer)))

	// ---- chip 1: working storage shared by the processes ----
	temp := chip1.AddVariable(spec.NewVar("temperature", spec.Integer))
	hum := chip1.AddVariable(spec.NewVar("humidity", spec.Integer))
	temp.Init = spec.Int(int64(cfg.Temperature))
	hum.Init = spec.Int(int64(cfg.Humidity))
	actT := chip1.AddVariable(spec.NewVar("actT", spec.Array(4, spec.Integer)))
	actH := chip1.AddVariable(spec.NewVar("actH", spec.Array(4, spec.Integer)))
	convSum := chip1.AddVariable(spec.NewVar("convSum", spec.Array(4, spec.Integer)))
	convMom := chip1.AddVariable(spec.NewVar("convMom", spec.Array(4, spec.Integer)))
	centroid := chip1.AddVariable(spec.NewVar("centroid", spec.Integer))
	control := chip1.AddVariable(spec.NewVar("control", spec.Integer))

	// Phase flags: single-writer bit signals sequencing the pipeline.
	initDone := chip1.AddVariable(spec.NewSignal("init_done", spec.Bit))
	factsDone := chip1.AddVariable(spec.NewSignal("facts_done", spec.Bit))
	evalDone := make([]*spec.Variable, 4)
	convDone := make([]*spec.Variable, 4)
	for k := 0; k < 4; k++ {
		evalDone[k] = chip1.AddVariable(spec.NewSignal(fmt.Sprintf("eval_done%d", k), spec.Bit))
		convDone[k] = chip1.AddVariable(spec.NewSignal(fmt.Sprintf("conv_done%d", k), spec.Bit))
	}
	centroidDone := chip1.AddVariable(spec.NewSignal("centroid_done", spec.Bit))

	one := spec.VecString("1")
	isSet := func(sig *spec.Variable) spec.Expr { return spec.Eq(spec.Ref(sig), one) }
	setFlag := func(sig *spec.Variable) spec.Stmt { return spec.AssignSig(spec.Ref(sig), one) }
	allEvalsDone := func() spec.Expr {
		cond := isSet(evalDone[0])
		for k := 1; k < 4; k++ {
			cond = spec.LogicalAnd(cond, isSet(evalDone[k]))
		}
		return cond
	}

	// ---- INITIALIZE: fill the membership/calibration tables ----
	// Table t holds a triangular function peaked at center(t) =
	// (t*37+19) mod 128 with unit slope, clipped to [0, 64];
	// calibration tables hold identity ramps scaled to 0..127.
	initialize := chip1.AddBehavior(spec.NewBehavior("INITIALIZE"))
	{
		tv := initialize.AddVar("t", spec.Integer)
		iv := initialize.AddVar("i", spec.Integer)
		center := initialize.AddVar("center", spec.Integer)
		d := initialize.AddVar("d", spec.Integer)
		val := initialize.AddVar("val", spec.Integer)
		initialize.Body = []spec.Stmt{
			&spec.For{Var: tv, From: spec.Int(0), To: spec.Int(numTables - 1), Body: []spec.Stmt{
				spec.AssignVar(spec.Ref(center),
					spec.Bin(spec.OpMod, spec.Add(spec.Mul(spec.Ref(tv), spec.Int(37)), spec.Int(19)), spec.Int(tableLen))),
				&spec.For{Var: iv, From: spec.Int(0), To: spec.Int(tableLen - 1), Body: []spec.Stmt{
					// d := |i - center|
					&spec.If{
						Cond: spec.Ge(spec.Ref(iv), spec.Ref(center)),
						Then: []spec.Stmt{spec.AssignVar(spec.Ref(d), spec.Sub(spec.Ref(iv), spec.Ref(center)))},
						Else: []spec.Stmt{spec.AssignVar(spec.Ref(d), spec.Sub(spec.Ref(center), spec.Ref(iv)))},
					},
					// val := max(0, 64 - d); calibration tables ramp.
					&spec.If{
						Cond: spec.Ge(spec.Ref(tv), spec.Int(tableTempCal)),
						Then: []spec.Stmt{spec.AssignVar(spec.Ref(val), spec.Ref(iv))},
						Else: []spec.Stmt{
							spec.AssignVar(spec.Ref(val), spec.Sub(spec.Int(64), spec.Ref(d))),
							&spec.If{
								Cond: spec.Lt(spec.Ref(val), spec.Int(0)),
								Then: []spec.Stmt{spec.AssignVar(spec.Ref(val), spec.Int(0))},
							},
						},
					},
					spec.AssignVar(
						spec.At(spec.Ref(initMemberFunct), spec.Add(spec.Mul(spec.Ref(tv), spec.Int(tableLen)), spec.Ref(iv))),
						spec.Ref(val)),
				}},
			}},
			// Rule parameter tables: (area weight, moment weight, bias).
			spec.AssignVar(spec.At(spec.Ref(rule1), spec.Int(0)), spec.Int(2)),
			spec.AssignVar(spec.At(spec.Ref(rule1), spec.Int(1)), spec.Int(1)),
			spec.AssignVar(spec.At(spec.Ref(rule1), spec.Int(2)), spec.Int(0)),
			spec.AssignVar(spec.At(spec.Ref(rule3), spec.Int(0)), spec.Int(1)),
			spec.AssignVar(spec.At(spec.Ref(rule3), spec.Int(1)), spec.Int(2)),
			spec.AssignVar(spec.At(spec.Ref(rule3), spec.Int(2)), spec.Int(8)),
			setFlag(initDone),
		}
	}

	// ---- CONVERT_FACTS: fuzzify the inputs ----
	convertFacts := chip1.AddBehavior(spec.NewBehavior("CONVERT_FACTS"))
	{
		k := convertFacts.AddVar("k", spec.Integer)
		tcal := convertFacts.AddVar("tcal", spec.Integer)
		hcal := convertFacts.AddVar("hcal", spec.Integer)
		convertFacts.Body = []spec.Stmt{
			spec.WaitUntil(isSet(initDone)),
			spec.AssignVar(spec.Ref(tcal),
				spec.At(spec.Ref(initMemberFunct), spec.Add(spec.Int(tableTempCal*tableLen), spec.Ref(temp)))),
			spec.AssignVar(spec.Ref(hcal),
				spec.At(spec.Ref(initMemberFunct), spec.Add(spec.Int(tableHumCal*tableLen), spec.Ref(hum)))),
			&spec.For{Var: k, From: spec.Int(0), To: spec.Int(3), Body: []spec.Stmt{
				spec.AssignVar(spec.At(spec.Ref(actT), spec.Ref(k)),
					spec.At(spec.Ref(initMemberFunct),
						spec.Add(spec.Mul(spec.Add(spec.Int(tableTempFn0), spec.Ref(k)), spec.Int(tableLen)), spec.Ref(tcal)))),
				spec.AssignVar(spec.At(spec.Ref(actH), spec.Ref(k)),
					spec.At(spec.Ref(initMemberFunct),
						spec.Add(spec.Mul(spec.Add(spec.Int(tableHumFn0), spec.Ref(k)), spec.Int(tableLen)), spec.Ref(hcal)))),
			}},
			setFlag(factsDone),
		}
	}

	// ---- EVAL_R0..EVAL_R3: clip rule output membership ----
	var evalR3 *spec.Behavior
	for k := 0; k < 4; k++ {
		b := chip1.AddBehavior(spec.NewBehavior(fmt.Sprintf("EVAL_R%d", k)))
		if k == 3 {
			evalR3 = b
		}
		target := trru[evalTarget[k]]
		i := b.AddVar("i", spec.Integer)
		act := b.AddVar("act", spec.Integer)
		mv := b.AddVar("mv", spec.Integer)
		b.Body = []spec.Stmt{
			spec.WaitUntil(isSet(factsDone)),
			// act := min(actT(k), actH(k))
			&spec.If{
				Cond: spec.Le(spec.At(spec.Ref(actT), spec.Int(int64(k))), spec.At(spec.Ref(actH), spec.Int(int64(k)))),
				Then: []spec.Stmt{spec.AssignVar(spec.Ref(act), spec.At(spec.Ref(actT), spec.Int(int64(k))))},
				Else: []spec.Stmt{spec.AssignVar(spec.Ref(act), spec.At(spec.Ref(actH), spec.Int(int64(k))))},
			},
			&spec.For{Var: i, From: spec.Int(0), To: spec.Int(tableLen - 1), Body: []spec.Stmt{
				spec.AssignVar(spec.Ref(mv),
					spec.At(spec.Ref(initMemberFunct),
						spec.Add(spec.Int(int64((tableOutFn0+k)*tableLen)), spec.Ref(i)))),
				// mv := min(mv, act): clip
				&spec.If{
					Cond: spec.Gt(spec.Ref(mv), spec.Ref(act)),
					Then: []spec.Stmt{spec.AssignVar(spec.Ref(mv), spec.Ref(act))},
				},
				spec.AssignVar(spec.At(spec.Ref(target), spec.Ref(i)), spec.ToVec(spec.Ref(mv), 16)),
			}},
			setFlag(evalDone[k]),
		}
	}

	// ---- CONV_R0..CONV_R3: integrate the clipped surfaces ----
	var convR2 *spec.Behavior
	for k := 0; k < 4; k++ {
		b := chip1.AddBehavior(spec.NewBehavior(fmt.Sprintf("CONV_R%d", k)))
		if k == 2 {
			convR2 = b
		}
		src := trru[k]
		i := b.AddVar("i", spec.Integer)
		sum := b.AddVar("sum", spec.Integer)
		wArea := b.AddVar("wArea", spec.Integer)
		wMom := b.AddVar("wMom", spec.Integer)
		bias := b.AddVar("bias", spec.Integer)
		// Rules 1 and 3 read their parameter tables from chip2; rules
		// 0 and 2 use the default weights.
		var loadParams []spec.Stmt
		switch k {
		case 1:
			loadParams = []spec.Stmt{
				spec.AssignVar(spec.Ref(wArea), spec.At(spec.Ref(rule1), spec.Int(0))),
				spec.AssignVar(spec.Ref(wMom), spec.At(spec.Ref(rule1), spec.Int(1))),
				spec.AssignVar(spec.Ref(bias), spec.At(spec.Ref(rule1), spec.Int(2))),
			}
		case 3:
			loadParams = []spec.Stmt{
				spec.AssignVar(spec.Ref(wArea), spec.At(spec.Ref(rule3), spec.Int(0))),
				spec.AssignVar(spec.Ref(wMom), spec.At(spec.Ref(rule3), spec.Int(1))),
				spec.AssignVar(spec.Ref(bias), spec.At(spec.Ref(rule3), spec.Int(2))),
			}
		default:
			loadParams = []spec.Stmt{
				spec.AssignVar(spec.Ref(wArea), spec.Int(1)),
				spec.AssignVar(spec.Ref(wMom), spec.Int(1)),
				spec.AssignVar(spec.Ref(bias), spec.Int(0)),
			}
		}
		body := []spec.Stmt{
			// The convolution phase starts once rule evaluation is
			// complete, which also serializes the shared bus.
			spec.WaitUntil(allEvalsDone()),
		}
		// Output membership functions are symmetric triangles, so the
		// clipped surface's moment is its area times the function
		// center — the center-average defuzzifier. The center of
		// table t is (t*37 + 19) mod 128, matching INITIALIZE.
		center := ((tableOutFn0+k)*37 + 19) % tableLen
		body = append(body, loadParams...)
		body = append(body,
			&spec.For{Var: i, From: spec.Int(0), To: spec.Int(tableLen - 1), Body: []spec.Stmt{
				spec.AssignVar(spec.Ref(sum),
					spec.Add(spec.Ref(sum), spec.ToInt(spec.At(spec.Ref(src), spec.Ref(i))))),
			}},
			spec.AssignVar(spec.At(spec.Ref(convSum), spec.Int(int64(k))),
				spec.Add(spec.Mul(spec.Ref(sum), spec.Ref(wArea)), spec.Ref(bias))),
			spec.AssignVar(spec.At(spec.Ref(convMom), spec.Int(int64(k))),
				spec.Mul(spec.Mul(spec.Ref(sum), spec.Int(int64(center))), spec.Ref(wMom))),
			setFlag(convDone[k]),
		)
		b.Body = body
	}

	// ---- CENTROID: defuzzify ----
	centroidB := chip1.AddBehavior(spec.NewBehavior("CENTROID"))
	{
		k := centroidB.AddVar("k", spec.Integer)
		num := centroidB.AddVar("num", spec.Integer)
		den := centroidB.AddVar("den", spec.Integer)
		cond := isSet(convDone[0])
		for j := 1; j < 4; j++ {
			cond = spec.LogicalAnd(cond, isSet(convDone[j]))
		}
		centroidB.Body = []spec.Stmt{
			spec.WaitUntil(cond),
			&spec.For{Var: k, From: spec.Int(0), To: spec.Int(3), Body: []spec.Stmt{
				spec.AssignVar(spec.Ref(num), spec.Add(spec.Ref(num), spec.At(spec.Ref(convMom), spec.Ref(k)))),
				spec.AssignVar(spec.Ref(den), spec.Add(spec.Ref(den), spec.At(spec.Ref(convSum), spec.Ref(k)))),
			}},
			&spec.If{
				Cond: spec.Gt(spec.Ref(den), spec.Int(0)),
				Then: []spec.Stmt{spec.AssignVar(spec.Ref(centroid), spec.Bin(spec.OpDiv, spec.Ref(num), spec.Ref(den)))},
				Else: []spec.Stmt{spec.AssignVar(spec.Ref(centroid), spec.Int(0))},
			},
			setFlag(centroidDone),
		}
	}

	// ---- CONVERT_CTRL: scale the centroid to the actuator range ----
	convertCtrl := chip1.AddBehavior(spec.NewBehavior("CONVERT_CTRL"))
	{
		idx := convertCtrl.AddVar("idx", spec.Integer)
		convertCtrl.Body = []spec.Stmt{
			spec.WaitUntil(isSet(centroidDone)),
			spec.AssignVar(spec.Ref(idx), spec.Bin(spec.OpMod, spec.Ref(centroid), spec.Int(tableLen))),
			spec.AssignVar(spec.Ref(control),
				spec.At(spec.Ref(initMemberFunct), spec.Add(spec.Int(tableCtlCal*tableLen), spec.Ref(idx)))),
		}
	}

	// ---- the paper's channels ch1, ch2 (declared first so they keep
	// their names; the rest are derived) ----
	ch1 := sys.AddChannel(&spec.Channel{Name: "ch1", Accessor: evalR3, Var: trru[0], Dir: spec.Write})
	ch2 := sys.AddChannel(&spec.Channel{Name: "ch2", Accessor: convR2, Var: trru[2], Dir: spec.Read})

	_ = initialize
	_ = convertFacts
	return &System{Sys: sys, Ch1: ch1, Ch2: ch2, EvalR3: evalR3, ConvR2: convR2}
}

// BusB returns a bus over ch1 and ch2 at the given width — the channel
// group the paper's experiments implement (width 0 leaves selection to
// bus generation). The bus is attached to the system.
func (f *System) BusB(width int) *spec.Bus {
	bus := &spec.Bus{Name: "B", Channels: []*spec.Channel{f.Ch1, f.Ch2}, Width: width}
	f.Sys.Buses = append(f.Sys.Buses, bus)
	return bus
}
