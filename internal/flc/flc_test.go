package flc

import (
	"testing"

	"repro/internal/estimate"
	"repro/internal/partition"
	"repro/internal/protogen"
	"repro/internal/sim"
	"repro/internal/spec"
)

func TestGeometryMatchesPaper(t *testing.T) {
	f := New(DefaultConfig())
	if f.Ch1.MessageBits() != 23 || f.Ch2.MessageBits() != 23 {
		t.Fatalf("message bits = %d/%d, want 23 (16 data + 7 addr)",
			f.Ch1.MessageBits(), f.Ch2.MessageBits())
	}
	imf := f.Sys.FindVariable("InitMemberFunct")
	if imf.Type.(spec.ArrayType).Length != 1920 {
		t.Fatalf("InitMemberFunct length = %d", imf.Type.(spec.ArrayType).Length)
	}
	for _, name := range []string{"trru0", "trru1", "trru2", "trru3"} {
		v := f.Sys.FindVariable(name)
		at := v.Type.(spec.ArrayType)
		if at.Length != 128 || at.Elem.BitWidth() != 16 {
			t.Errorf("%s = %v", name, v.Type)
		}
		if v.Owner.Name != "chip2" {
			t.Errorf("%s on %s", name, v.Owner.Name)
		}
	}
	if f.Sys.FindVariable("rule1").Type.(spec.ArrayType).Length != 3 {
		t.Error("rule1 shape wrong")
	}
	// Fig. 6's process inventory.
	for _, p := range []string{"INITIALIZE", "CONVERT_FACTS", "EVAL_R0", "EVAL_R1",
		"EVAL_R2", "EVAL_R3", "CONV_R0", "CONV_R1", "CONV_R2", "CONV_R3",
		"CENTROID", "CONVERT_CTRL"} {
		b := f.Sys.FindBehavior(p)
		if b == nil {
			t.Errorf("missing process %s", p)
			continue
		}
		if b.Owner.Name != "chip1" {
			t.Errorf("%s on %s", p, b.Owner.Name)
		}
	}
	if f.Ch1.Accessor.Name != "EVAL_R3" || f.Ch1.Var.Name != "trru0" || f.Ch1.Dir != spec.Write {
		t.Errorf("ch1 = %s", f.Ch1)
	}
	if f.Ch2.Accessor.Name != "CONV_R2" || f.Ch2.Var.Name != "trru2" || f.Ch2.Dir != spec.Read {
		t.Errorf("ch2 = %s", f.Ch2)
	}
}

func TestValidatesAndDerivesRemainingChannels(t *testing.T) {
	f := New(DefaultConfig())
	if errs := f.Sys.Validate(); len(errs) != 0 {
		t.Fatalf("invalid: %v", errs[0])
	}
	created, err := partition.DeriveChannels(f.Sys)
	if err != nil {
		t.Fatal(err)
	}
	// Everything beyond ch1/ch2: INITIALIZE writes InitMemberFunct +
	// rule1 + rule3; CONVERT_FACTS, EVAL_R0..3, CONVERT_CTRL read
	// InitMemberFunct; EVAL_R0..2 write trru3/1/2; CONV_R0,1,3 read
	// trru0/1/3; CONV_R1 reads rule1; CONV_R3 reads rule3.
	if len(created) < 12 {
		t.Fatalf("derived only %d extra channels", len(created))
	}
	for _, c := range created {
		if c.Name == "ch1" || c.Name == "ch2" {
			t.Errorf("derivation recreated %s", c.Name)
		}
	}
}

func TestChannelAccessCountsAre128(t *testing.T) {
	f := New(DefaultConfig())
	est := estimate.New([]*spec.Channel{f.Ch1, f.Ch2})
	if got := est.Accesses(f.Ch1); got != 128 {
		t.Errorf("ch1 accesses = %d, want 128", got)
	}
	if got := est.Accesses(f.Ch2); got != 128 {
		t.Errorf("ch2 accesses = %d, want 128", got)
	}
	if got := est.TotalBits(f.Ch1); got != 128*23 {
		t.Errorf("ch1 total bits = %d", got)
	}
}

func TestCompTimesInFig7Band(t *testing.T) {
	// Fig. 7's crossover: CONV_R2 meets a 2000-clock constraint only
	// for widths > 4, i.e. comm(4)=1536 pushes it over and
	// comm(5)=1280 keeps it under. That pins CONV_R2's computation
	// time to (464, 720] clocks under the full handshake.
	f := New(DefaultConfig())
	est := estimate.New([]*spec.Channel{f.Ch1, f.Ch2})
	conv := est.CompTime(f.ConvR2)
	if conv <= 464 || conv > 720 {
		t.Errorf("CONV_R2 comp time = %d, outside (464, 720]", conv)
	}
	eval := est.CompTime(f.EvalR3)
	if eval <= 0 {
		t.Fatalf("EVAL_R3 comp = %d", eval)
	}
	// Fig. 7 plots EVAL_R3 above CONV_R2 across the sweep.
	if eval <= conv {
		t.Errorf("EVAL_R3 comp (%d) not above CONV_R2 comp (%d)", eval, conv)
	}
	// At width 4 CONV_R2 must violate the 2000-clock constraint, at 5
	// it must meet it.
	at4 := est.ExecTime(f.ConvR2, 4, spec.FullHandshake)
	at5 := est.ExecTime(f.ConvR2, 5, spec.FullHandshake)
	if at4 <= 2000 {
		t.Errorf("CONV_R2 at width 4 = %d, want > 2000", at4)
	}
	if at5 > 2000 {
		t.Errorf("CONV_R2 at width 5 = %d, want <= 2000", at5)
	}
}

func TestFunctionalSimulationUnrefined(t *testing.T) {
	// The FLC computes a deterministic control output with abstract
	// (direct-access) channels.
	f := New(DefaultConfig())
	s, err := sim.New(f.Sys, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	control := res.Final("chip1", "control").(sim.IntVal)
	if control.V < 0 || control.V > 127 {
		t.Fatalf("control = %d, outside actuator range", control.V)
	}
	centroid := res.Final("chip1", "centroid").(sim.IntVal)
	if centroid.V <= 0 {
		t.Fatalf("centroid = %d, expected positive (inputs activate rules)", centroid.V)
	}
}

func TestRefinedBusBPreservesFunction(t *testing.T) {
	// Refine bus B (ch1 + ch2) at width 8 and compare the control
	// output with the unrefined run — the FLC-scale version of the
	// paper's functional-equivalence claim.
	ref := New(DefaultConfig())
	s1, err := sim.New(ref.Sys, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := s1.Run()
	if err != nil {
		t.Fatal(err)
	}

	f := New(DefaultConfig())
	bus := f.BusB(8)
	if _, err := protogen.Generate(f.Sys, bus, protogen.Config{Protocol: spec.FullHandshake}); err != nil {
		t.Fatal(err)
	}
	s2, err := sim.New(f.Sys, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"chip1.control", "chip1.centroid", "chip2.trru0", "chip2.trru2"} {
		if !base.Finals[key].Equal(refined.Finals[key]) {
			t.Errorf("%s differs after refinement", key)
		}
	}
	if refined.Clocks <= base.Clocks {
		t.Errorf("refined run not slower: %d vs %d", refined.Clocks, base.Clocks)
	}
}

func TestDifferentInputsChangeOutput(t *testing.T) {
	outs := map[int64]bool{}
	for _, cfg := range []Config{{Temperature: 10, Humidity: 10}, {Temperature: 80, Humidity: 40}, {Temperature: 120, Humidity: 100}} {
		f := New(cfg)
		s, err := sim.New(f.Sys, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		outs[res.Final("chip1", "centroid").(sim.IntVal).V] = true
	}
	if len(outs) < 2 {
		t.Errorf("centroid insensitive to inputs: %v", outs)
	}
}

func TestBadInputsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Config{Temperature: 200, Humidity: 0})
}
