package flc

import (
	"testing"

	"repro/internal/hdl"
	"repro/internal/sim"
	"repro/internal/spec"
)

// TestFLCTextRoundTrip prints the whole twelve-process FLC into the
// textual specification language, reparses it, and verifies the
// reparsed system simulates to exactly the same final state — the
// front end exercised at full case-study scale.
func TestFLCTextRoundTrip(t *testing.T) {
	orig := New(DefaultConfig())
	src, err := hdl.Print(orig.Sys)
	if err != nil {
		t.Fatal(err)
	}
	reparsed, err := hdl.Parse(src)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	run := func(sys *spec.System) *sim.Result {
		s, err := sim.New(sys, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(orig.Sys)
	b := run(reparsed)
	for key, want := range a.Finals {
		if got, ok := b.Finals[key]; !ok || !got.Equal(want) {
			t.Errorf("%s differs after text round trip", key)
		}
	}
	// The reparsed system carries the paper's channels by name.
	if reparsed.FindChannel("ch1") == nil || reparsed.FindChannel("ch2") == nil {
		t.Error("ch1/ch2 lost in round trip")
	}
}
