package sim

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/estimate"
	"repro/internal/spec"
)

// Evaluator implements the simulator's expression and lvalue semantics
// over caller-supplied storage. The process interpreter in this package
// and the FSM executor in internal/verify both run specification
// statements; any divergence between their value semantics would make
// model-checking verdicts about simulated behavior meaningless, so the
// semantics live here exactly once and both engines plug in their own
// variable storage via Lookup and Store callbacks.
type Evaluator struct {
	// Lookup resolves a variable read to its current value. It must not
	// return nil; unknown variables should be reported via Fail.
	Lookup func(*spec.Variable) Value
	// Fail aborts evaluation with a formatted runtime error. It must not
	// return (the simulator panics a sentinel; other engines may do the
	// same or longjmp however they like).
	Fail func(format string, args ...any)
}

func (ev *Evaluator) fail(format string, args ...any) {
	ev.Fail(format, args...)
	// Fail must not return; guard against a misbehaving callback rather
	// than continuing with corrupt state.
	panic(fmt.Sprintf("sim: Evaluator.Fail returned: "+format, args...))
}

// smallVecBox caches boxed VecVals for vectors up to 64 bits wide whose
// value fits a byte. Protocol state is dominated by flags, opcodes and
// small counters; without the cache every evaluated strobe or counter
// result is a fresh interface allocation, and the model checker boxes
// millions of them per run. Vector operations are persistent, so the
// cached backing words are never mutated.
var smallVecBox [65][256]Value

func init() {
	for w := 1; w <= 64; w++ {
		max := 256
		if w < 8 {
			max = 1 << uint(w)
		}
		for v := 0; v < max; v++ {
			smallVecBox[w][v] = VecVal{V: bits.FromUint(uint64(v), w)}
		}
	}
}

// boxVec boxes a vector result, reusing a cached box when possible.
func boxVec(v bits.Vector) Value {
	if w := v.Width(); w >= 1 && w <= 64 {
		if u := v.Uint64(); u < 256 {
			return smallVecBox[w][u]
		}
	}
	return VecVal{V: v}
}

// smallIntBox and boolBox intern the scalar boxes the same way: loop
// counters, handshake word counts and comparison results dominate
// evaluated scalars, and boxing each one is an allocation on the
// kernel's hottest path.
const (
	smallIntLo = -4
	smallIntHi = 1024
)

var (
	smallIntBox [smallIntHi - smallIntLo + 1]Value
	boolBox     = [2]Value{BoolVal{V: false}, BoolVal{V: true}}
)

func init() {
	for i := range smallIntBox {
		smallIntBox[i] = IntVal{V: int64(i + smallIntLo)}
	}
}

func boxInt(v int64) Value {
	if v >= smallIntLo && v <= smallIntHi {
		return smallIntBox[v-smallIntLo]
	}
	return IntVal{V: v}
}

func boxBool(b bool) Value {
	if b {
		return boolBox[1]
	}
	return boolBox[0]
}

// Eval evaluates an expression against the current variable values.
func (ev *Evaluator) Eval(e spec.Expr) Value {
	switch e := e.(type) {
	case *spec.IntLit:
		return boxInt(e.Value)
	case *spec.VecLit:
		return boxVec(e.Value)
	case *spec.BoolLit:
		return boxBool(e.Value)
	case *spec.VarRef:
		return ev.Lookup(e.Var)
	case *spec.Index:
		arr := ev.Eval(e.Arr)
		av, ok := arr.(ArrayVal)
		if !ok {
			ev.fail("indexing non-array %s", e.Arr)
		}
		idx := int(asInt(ev.Eval(e.Index))) - av.Lo
		if idx < 0 || idx >= len(av.Elems) {
			ev.fail("index %d out of range for %s (len %d)", idx+av.Lo, e.Arr, len(av.Elems))
		}
		return av.Elems[idx]
	case *spec.SliceExpr:
		x := ev.Eval(e.X)
		hi := int(asInt(ev.Eval(e.Hi)))
		lo := int(asInt(ev.Eval(e.Lo)))
		xv, ok := x.(VecVal)
		if !ok {
			ev.fail("slicing non-vector %s", e.X)
		}
		if lo < 0 || hi >= xv.V.Width() || hi < lo {
			ev.fail("slice (%d downto %d) out of range for %s", hi, lo, e.X)
		}
		return boxVec(xv.V.Slice(hi, lo))
	case *spec.FieldRef:
		x := ev.Eval(e.X)
		rv, ok := x.(RecordVal)
		if !ok {
			ev.fail("field access on non-record %s", e.X)
		}
		i := rv.FieldIndex(e.Field)
		if i < 0 {
			ev.fail("no field %s on %s", e.Field, e.X)
		}
		return rv.Fields[i]
	case *spec.Binary:
		return ev.evalBinary(e)
	case *spec.Unary:
		x := ev.Eval(e.X)
		switch e.Op {
		case spec.OpNot:
			switch x := x.(type) {
			case BoolVal:
				return boxBool(!x.V)
			case VecVal:
				return boxVec(x.V.Not())
			}
			ev.fail("not on %s", x)
		case spec.OpNeg:
			return boxInt(-asInt(x))
		}
		ev.fail("unknown unary op %s", e.Op)
	case *spec.Conv:
		x := ev.Eval(e.X)
		switch to := e.To.(type) {
		case spec.IntegerType:
			if xv, ok := x.(VecVal); ok && e.Signed {
				return boxInt(xv.V.Int64())
			}
			return boxInt(asInt(x))
		case spec.BitVectorType:
			return boxVec(asVec(x, to.Width))
		case spec.BitType:
			return boxVec(asVec(x, 1))
		case spec.BoolType:
			return boxBool(asBool(x))
		}
		ev.fail("unsupported conversion to %s", e.To)
	}
	ev.fail("cannot evaluate %T", e)
	return nil
}

func (ev *Evaluator) evalBinary(e *spec.Binary) Value {
	x := ev.Eval(e.X)
	y := ev.Eval(e.Y)
	return ev.applyBinary(e.Op, x, y)
}

// applyBinary applies a binary operator to already-evaluated operands;
// the compiled expression evaluator shares it with the tree walker so
// both produce identical values and identical failure messages.
func (ev *Evaluator) applyBinary(op spec.Op, x, y Value) Value {
	switch op {
	case spec.OpAnd, spec.OpOr:
		if xb, ok := x.(BoolVal); ok {
			yb := asBool(y)
			if op == spec.OpAnd {
				return boxBool(xb.V && yb)
			}
			return boxBool(xb.V || yb)
		}
	}

	// Vector operands: bitwise and modular arithmetic.
	xv, xIsVec := x.(VecVal)
	yv, yIsVec := y.(VecVal)
	if xIsVec || yIsVec {
		return ev.evalVecBinary(op, x, y, xv, yv, xIsVec, yIsVec)
	}

	// Integer / boolean arithmetic.
	a, b := asInt(x), asInt(y)
	switch op {
	case spec.OpAdd:
		return boxInt(a + b)
	case spec.OpSub:
		return boxInt(a - b)
	case spec.OpMul:
		return boxInt(a * b)
	case spec.OpDiv:
		if b == 0 {
			ev.fail("division by zero")
		}
		return boxInt(a / b)
	case spec.OpMod:
		if b == 0 {
			ev.fail("mod by zero")
		}
		return boxInt(a % b)
	case spec.OpEq:
		return boxBool(a == b)
	case spec.OpNeq:
		return boxBool(a != b)
	case spec.OpLt:
		return boxBool(a < b)
	case spec.OpLe:
		return boxBool(a <= b)
	case spec.OpGt:
		return boxBool(a > b)
	case spec.OpGe:
		return boxBool(a >= b)
	case spec.OpShl:
		return boxInt(a << uint(b))
	case spec.OpShr:
		return boxInt(a >> uint(b))
	case spec.OpXor:
		return boxInt(a ^ b)
	}
	ev.fail("unsupported integer op %s", op)
	return nil
}

func (ev *Evaluator) evalVecBinary(op spec.Op, x, y Value, xv, yv VecVal, xIsVec, yIsVec bool) Value {
	// Align: coerce the non-vector side (or the narrower vector) to the
	// wider operand's width.
	width := 0
	if xIsVec {
		width = xv.V.Width()
	}
	if yIsVec && yv.V.Width() > width {
		width = yv.V.Width()
	}
	if op == spec.OpConcat {
		a := asVec(x, vecWidthOr(x, width))
		b := asVec(y, vecWidthOr(y, width))
		return boxVec(bits.Concat(a, b))
	}
	a := asVec(x, width)
	b := asVec(y, width)
	switch op {
	case spec.OpAdd:
		return boxVec(a.Add(b))
	case spec.OpSub:
		return boxVec(a.Sub(b))
	case spec.OpAnd:
		return boxVec(a.And(b))
	case spec.OpOr:
		return boxVec(a.Or(b))
	case spec.OpXor:
		return boxVec(a.Xor(b))
	case spec.OpEq:
		return boxBool(a.Equal(b))
	case spec.OpNeq:
		return boxBool(!a.Equal(b))
	case spec.OpLt:
		return boxBool(a.CompareUnsigned(b) < 0)
	case spec.OpLe:
		return boxBool(a.CompareUnsigned(b) <= 0)
	case spec.OpGt:
		return boxBool(a.CompareUnsigned(b) > 0)
	case spec.OpGe:
		return boxBool(a.CompareUnsigned(b) >= 0)
	case spec.OpMul, spec.OpDiv, spec.OpMod:
		if width > 64 {
			ev.fail("%s on vectors wider than 64 bits", op)
		}
		av, bv := a.Uint64(), b.Uint64()
		var r uint64
		switch op {
		case spec.OpMul:
			r = av * bv
		case spec.OpDiv:
			if bv == 0 {
				ev.fail("division by zero")
			}
			r = av / bv
		default:
			if bv == 0 {
				ev.fail("mod by zero")
			}
			r = av % bv
		}
		return boxVec(bits.FromUint(r, width))
	case spec.OpShl, spec.OpShr:
		sh := int(asInt(y))
		if sh < 0 {
			ev.fail("negative shift amount %d", sh)
		}
		if op == spec.OpShl {
			return boxVec(a.Lsh(sh))
		}
		return boxVec(a.Rsh(sh))
	}
	ev.fail("unsupported vector op %s", op)
	return nil
}

func vecWidthOr(v Value, def int) int {
	if vv, ok := v.(VecVal); ok {
		return vv.V.Width()
	}
	return def
}

// Coerce adapts a value to a declared type on assignment.
func Coerce(v Value, t spec.Type) Value {
	switch t := t.(type) {
	case spec.IntegerType:
		return boxInt(asInt(v))
	case spec.BitVectorType:
		return boxVec(asVec(v, t.Width))
	case spec.BitType:
		return boxVec(asVec(v, 1))
	case spec.BoolType:
		return boxBool(asBool(v))
	}
	return v
}

// AsBool converts a value to a boolean the way simulation conditions do
// (a vector is true iff non-zero). It panics on non-scalar shapes.
func AsBool(v Value) bool { return asBool(v) }

// AsInt converts a value to an integer the way simulation arithmetic
// does (vectors are read unsigned). It panics on non-numeric shapes.
func AsInt(v Value) int64 { return asInt(v) }

// AsVec converts a value to a bit vector of the given width, truncating
// or zero-extending, the way simulation assignments do.
func AsVec(v Value, width int) bits.Vector { return asVec(v, width) }

// ---- lvalue stores ----

// accessor is one step of an lvalue path, outermost last.
type accessor struct {
	index  spec.Expr // array index, or
	field  string    // record field, or
	hi, lo spec.Expr // slice bounds
	kind   int       // 0 index, 1 field, 2 slice
	// fieldIdx is a static index hint for kind 1, or -1. applyPath
	// validates it against the runtime record type before trusting it,
	// so it can only skip the name scan, never change which field a
	// store hits.
	fieldIdx int32
}

func flattenLValue(lhs spec.Expr) (*spec.Variable, []accessor) {
	var path []accessor
	for {
		switch l := lhs.(type) {
		case *spec.VarRef:
			// reverse path: it was collected outermost-first
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
			return l.Var, path
		case *spec.Index:
			path = append(path, accessor{kind: 0, index: l.Index})
			lhs = l.Arr
		case *spec.FieldRef:
			path = append(path, accessor{kind: 1, field: l.Field, fieldIdx: -1})
			lhs = l.X
		case *spec.SliceExpr:
			path = append(path, accessor{kind: 2, hi: l.Hi, lo: l.Lo})
			lhs = l.X
		default:
			return nil, nil
		}
	}
}

// Store writes val into the lvalue. The base variable's current value is
// obtained from load only when a partial update (index, field or slice
// store) needs it; the final value is handed to store. Containers off
// the update path are shared with the loaded value, never mutated — safe
// for both in-place variable storage and scheduled signal values. The
// stored base variable is returned.
func (ev *Evaluator) Store(lhs spec.Expr, val Value, load func(*spec.Variable) Value, store func(*spec.Variable, Value)) *spec.Variable {
	base, path := flattenLValue(lhs)
	if base == nil {
		ev.fail("assignment to non-lvalue %s", lhs)
	}
	if len(path) == 0 {
		store(base, Coerce(val, base.Type))
		return base
	}
	store(base, ev.applyPath(load(base), path, val))
	return base
}

// applyPath rebuilds the containers along the accessor path with the
// leaf replaced. Containers off the path are shared.
func (ev *Evaluator) applyPath(cur Value, path []accessor, val Value) Value {
	a := path[0]
	switch a.kind {
	case 0: // index
		av, ok := cur.(ArrayVal)
		if !ok {
			ev.fail("indexed store into non-array")
		}
		idx := int(asInt(ev.Eval(a.index))) - av.Lo
		if idx < 0 || idx >= len(av.Elems) {
			ev.fail("store index %d out of range (len %d)", idx+av.Lo, len(av.Elems))
		}
		elems := make([]Value, len(av.Elems))
		copy(elems, av.Elems)
		if len(path) == 1 {
			elems[idx] = coerceLeafLike(val, elems[idx])
		} else {
			elems[idx] = ev.applyPath(elems[idx], path[1:], val)
		}
		return ArrayVal{Lo: av.Lo, Elems: elems}
	case 1: // field
		rv, ok := cur.(RecordVal)
		if !ok {
			ev.fail("field store into non-record")
		}
		i := int(a.fieldIdx)
		if i < 0 || i >= len(rv.Type.Fields) || rv.Type.Fields[i].Name != a.field {
			i = rv.FieldIndex(a.field)
		}
		if i < 0 {
			ev.fail("store to unknown field %s", a.field)
		}
		fields := make([]Value, len(rv.Fields))
		copy(fields, rv.Fields)
		if len(path) == 1 {
			fields[i] = Coerce(val, rv.Type.Fields[i].Type)
		} else {
			fields[i] = ev.applyPath(fields[i], path[1:], val)
		}
		return RecordVal{Type: rv.Type, Fields: fields}
	case 2: // slice (always a leaf)
		vv, ok := cur.(VecVal)
		if !ok {
			ev.fail("slice store into non-vector")
		}
		hi := int(asInt(ev.Eval(a.hi)))
		lo := int(asInt(ev.Eval(a.lo)))
		if len(path) != 1 {
			ev.fail("slice must be the last lvalue step")
		}
		if lo < 0 || hi >= vv.V.Width() || hi < lo {
			ev.fail("slice store (%d downto %d) out of range (width %d)", hi, lo, vv.V.Width())
		}
		return boxVec(vv.V.SetSlice(hi, lo, asVec(val, hi-lo+1)))
	}
	ev.fail("bad lvalue path")
	return nil
}

// coerceLeafLike coerces val to the shape of the existing element.
func coerceLeafLike(val Value, like Value) Value {
	switch like := like.(type) {
	case VecVal:
		return boxVec(asVec(val, like.V.Width()))
	case IntVal:
		return boxInt(asInt(val))
	case BoolVal:
		return boxBool(asBool(val))
	}
	return val
}

// InitialValue evaluates a variable's declared initializer, or its zero
// value. Initializers must be constant.
func InitialValue(v *spec.Variable) Value {
	zero := ZeroValue(v.Type)
	if v.Init != nil {
		if c, ok := estimate.ConstInt(v.Init); ok {
			return Coerce(IntVal{V: c}, v.Type)
		}
		if vl, ok := v.Init.(*spec.VecLit); ok {
			return Coerce(VecVal{V: vl.Value}, v.Type)
		}
	}
	if len(v.InitArray) > 0 {
		av, ok := zero.(ArrayVal)
		if !ok {
			return zero
		}
		for i := range av.Elems {
			if i < len(v.InitArray) {
				av.Elems[i] = coerceLeafLike(VecVal{V: v.InitArray[i]}, av.Elems[i])
			}
		}
		return av
	}
	return zero
}
