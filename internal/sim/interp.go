package sim

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/spec"
)

// simError is panicked on runtime errors inside a process and recovered
// at the process top, turning into a simulation error.
type simError struct{ err error }

// abortSentinel is panicked to unwind a process the kernel is killing.
type abortSentinel struct{}

func fail(format string, args ...any) {
	panic(simError{fmt.Errorf(format, args...)})
}

// ctrl is the control-flow outcome of executing a statement.
type ctrl int

const (
	ctrlNone ctrl = iota
	ctrlExit
	ctrlReturn
)

// frame is one variable scope (behavior locals or a procedure
// activation).
type frame struct {
	vars map[*spec.Variable]Value
}

// ---- variable access ----

// lookup resolves a variable to its current value: procedure frames
// innermost first, then behavior locals, then module variables, then
// signals.
func (p *process) lookup(v *spec.Variable) Value {
	for i := len(p.frames) - 1; i >= 0; i-- {
		if val, ok := p.frames[i].vars[v]; ok {
			return val
		}
	}
	if val, ok := p.k.shared[v]; ok {
		return val
	}
	if sig, ok := p.k.signals[v]; ok {
		return sig.current
	}
	fail("process %s: variable %s not in scope", p.beh.Name, v.Name)
	return nil
}

// ---- expression evaluation ----

func (p *process) eval(e spec.Expr) Value {
	switch e := e.(type) {
	case *spec.IntLit:
		return IntVal{V: e.Value}
	case *spec.VecLit:
		return VecVal{V: e.Value}
	case *spec.BoolLit:
		return BoolVal{V: e.Value}
	case *spec.VarRef:
		return p.lookup(e.Var)
	case *spec.Index:
		arr := p.eval(e.Arr)
		av, ok := arr.(ArrayVal)
		if !ok {
			fail("process %s: indexing non-array %s", p.beh.Name, e.Arr)
		}
		idx := int(asInt(p.eval(e.Index))) - av.Lo
		if idx < 0 || idx >= len(av.Elems) {
			fail("process %s: index %d out of range for %s (len %d)",
				p.beh.Name, idx+av.Lo, e.Arr, len(av.Elems))
		}
		return av.Elems[idx]
	case *spec.SliceExpr:
		x := p.eval(e.X)
		hi := int(asInt(p.eval(e.Hi)))
		lo := int(asInt(p.eval(e.Lo)))
		xv, ok := x.(VecVal)
		if !ok {
			fail("process %s: slicing non-vector %s", p.beh.Name, e.X)
		}
		if lo < 0 || hi >= xv.V.Width() || hi < lo {
			fail("process %s: slice (%d downto %d) out of range for %s", p.beh.Name, hi, lo, e.X)
		}
		return VecVal{V: xv.V.Slice(hi, lo)}
	case *spec.FieldRef:
		x := p.eval(e.X)
		rv, ok := x.(RecordVal)
		if !ok {
			fail("process %s: field access on non-record %s", p.beh.Name, e.X)
		}
		i := rv.FieldIndex(e.Field)
		if i < 0 {
			fail("process %s: no field %s on %s", p.beh.Name, e.Field, e.X)
		}
		return rv.Fields[i]
	case *spec.Binary:
		return p.evalBinary(e)
	case *spec.Unary:
		x := p.eval(e.X)
		switch e.Op {
		case spec.OpNot:
			switch x := x.(type) {
			case BoolVal:
				return BoolVal{V: !x.V}
			case VecVal:
				return VecVal{V: x.V.Not()}
			}
			fail("process %s: not on %s", p.beh.Name, x)
		case spec.OpNeg:
			return IntVal{V: -asInt(x)}
		}
		fail("process %s: unknown unary op %s", p.beh.Name, e.Op)
	case *spec.Conv:
		x := p.eval(e.X)
		switch to := e.To.(type) {
		case spec.IntegerType:
			if xv, ok := x.(VecVal); ok && e.Signed {
				return IntVal{V: xv.V.Int64()}
			}
			return IntVal{V: asInt(x)}
		case spec.BitVectorType:
			return VecVal{V: asVec(x, to.Width)}
		case spec.BitType:
			return VecVal{V: asVec(x, 1)}
		case spec.BoolType:
			return BoolVal{V: asBool(x)}
		}
		fail("process %s: unsupported conversion to %s", p.beh.Name, e.To)
	}
	fail("process %s: cannot evaluate %T", p.beh.Name, e)
	return nil
}

func (p *process) evalBinary(e *spec.Binary) Value {
	x := p.eval(e.X)
	y := p.eval(e.Y)
	switch e.Op {
	case spec.OpAnd, spec.OpOr:
		if xb, ok := x.(BoolVal); ok {
			yb := asBool(y)
			if e.Op == spec.OpAnd {
				return BoolVal{V: xb.V && yb}
			}
			return BoolVal{V: xb.V || yb}
		}
	}

	// Vector operands: bitwise and modular arithmetic.
	xv, xIsVec := x.(VecVal)
	yv, yIsVec := y.(VecVal)
	if xIsVec || yIsVec {
		return p.evalVecBinary(e.Op, x, y, xv, yv, xIsVec, yIsVec)
	}

	// Integer / boolean arithmetic.
	a, b := asInt(x), asInt(y)
	switch e.Op {
	case spec.OpAdd:
		return IntVal{V: a + b}
	case spec.OpSub:
		return IntVal{V: a - b}
	case spec.OpMul:
		return IntVal{V: a * b}
	case spec.OpDiv:
		if b == 0 {
			fail("process %s: division by zero", p.beh.Name)
		}
		return IntVal{V: a / b}
	case spec.OpMod:
		if b == 0 {
			fail("process %s: mod by zero", p.beh.Name)
		}
		return IntVal{V: a % b}
	case spec.OpEq:
		return BoolVal{V: a == b}
	case spec.OpNeq:
		return BoolVal{V: a != b}
	case spec.OpLt:
		return BoolVal{V: a < b}
	case spec.OpLe:
		return BoolVal{V: a <= b}
	case spec.OpGt:
		return BoolVal{V: a > b}
	case spec.OpGe:
		return BoolVal{V: a >= b}
	case spec.OpShl:
		return IntVal{V: a << uint(b)}
	case spec.OpShr:
		return IntVal{V: a >> uint(b)}
	case spec.OpXor:
		return IntVal{V: a ^ b}
	}
	fail("process %s: unsupported integer op %s", p.beh.Name, e.Op)
	return nil
}

func (p *process) evalVecBinary(op spec.Op, x, y Value, xv, yv VecVal, xIsVec, yIsVec bool) Value {
	// Align: coerce the non-vector side (or the narrower vector) to the
	// wider operand's width.
	width := 0
	if xIsVec {
		width = xv.V.Width()
	}
	if yIsVec && yv.V.Width() > width {
		width = yv.V.Width()
	}
	if op == spec.OpConcat {
		a := asVec(x, vecWidthOr(x, width))
		b := asVec(y, vecWidthOr(y, width))
		return VecVal{V: bits.Concat(a, b)}
	}
	a := asVec(x, width)
	b := asVec(y, width)
	switch op {
	case spec.OpAdd:
		return VecVal{V: a.Add(b)}
	case spec.OpSub:
		return VecVal{V: a.Sub(b)}
	case spec.OpAnd:
		return VecVal{V: a.And(b)}
	case spec.OpOr:
		return VecVal{V: a.Or(b)}
	case spec.OpXor:
		return VecVal{V: a.Xor(b)}
	case spec.OpEq:
		return BoolVal{V: a.Equal(b)}
	case spec.OpNeq:
		return BoolVal{V: !a.Equal(b)}
	case spec.OpLt:
		return BoolVal{V: a.CompareUnsigned(b) < 0}
	case spec.OpLe:
		return BoolVal{V: a.CompareUnsigned(b) <= 0}
	case spec.OpGt:
		return BoolVal{V: a.CompareUnsigned(b) > 0}
	case spec.OpGe:
		return BoolVal{V: a.CompareUnsigned(b) >= 0}
	case spec.OpMul, spec.OpDiv, spec.OpMod:
		if width > 64 {
			fail("process %s: %s on vectors wider than 64 bits", p.beh.Name, op)
		}
		av, bv := a.Uint64(), b.Uint64()
		var r uint64
		switch op {
		case spec.OpMul:
			r = av * bv
		case spec.OpDiv:
			if bv == 0 {
				fail("process %s: division by zero", p.beh.Name)
			}
			r = av / bv
		default:
			if bv == 0 {
				fail("process %s: mod by zero", p.beh.Name)
			}
			r = av % bv
		}
		return VecVal{V: bits.FromUint(r, width)}
	case spec.OpShl, spec.OpShr:
		sh := int(asInt(y))
		if sh < 0 {
			fail("process %s: negative shift amount %d", p.beh.Name, sh)
		}
		if op == spec.OpShl {
			return VecVal{V: a.Lsh(sh)}
		}
		return VecVal{V: a.Rsh(sh)}
	}
	fail("process %s: unsupported vector op %s", p.beh.Name, op)
	return nil
}

func vecWidthOr(v Value, def int) int {
	if vv, ok := v.(VecVal); ok {
		return vv.V.Width()
	}
	return def
}

// coerceToType adapts a value to a declared type on assignment.
func coerceToType(v Value, t spec.Type) Value {
	switch t := t.(type) {
	case spec.IntegerType:
		return IntVal{V: asInt(v)}
	case spec.BitVectorType:
		return VecVal{V: asVec(v, t.Width)}
	case spec.BitType:
		return VecVal{V: asVec(v, 1)}
	case spec.BoolType:
		return BoolVal{V: asBool(v)}
	}
	return v
}

// ---- assignment ----

// accessor is one step of an lvalue path, outermost last.
type accessor struct {
	index  spec.Expr // array index, or
	field  string    // record field, or
	hi, lo spec.Expr // slice bounds
	kind   int       // 0 index, 1 field, 2 slice
}

func flattenLValue(lhs spec.Expr) (*spec.Variable, []accessor) {
	var path []accessor
	for {
		switch l := lhs.(type) {
		case *spec.VarRef:
			// reverse path: it was collected outermost-first
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
			return l.Var, path
		case *spec.Index:
			path = append(path, accessor{kind: 0, index: l.Index})
			lhs = l.Arr
		case *spec.FieldRef:
			path = append(path, accessor{kind: 1, field: l.Field})
			lhs = l.X
		case *spec.SliceExpr:
			path = append(path, accessor{kind: 2, hi: l.Hi, lo: l.Lo})
			lhs = l.X
		default:
			return nil, nil
		}
	}
}

// assign stores val into the lvalue. Signals are scheduled for the next
// delta cycle; variables update immediately. The semantics follow the
// target's kind regardless of the statement's ":="/"<=" spelling.
func (p *process) assign(lhs spec.Expr, val Value) {
	base, path := flattenLValue(lhs)
	if base == nil {
		fail("process %s: assignment to non-lvalue %s", p.beh.Name, lhs)
	}
	if sig, ok := p.k.signals[base]; ok {
		cur := sig.effective().Copy()
		p.k.schedule(base, p.applyPathCopy(cur, path, val, base.Type))
		return
	}
	c := p.storageCell(base)
	if c == nil {
		fail("process %s: variable %s not writable", p.beh.Name, base.Name)
	}
	p.applyPathInPlace(c, path, val, base.Type)
}

// storageCell finds the map holding the variable and returns a settable
// cell abstraction.
func (p *process) storageCell(v *spec.Variable) *mapSlot {
	for i := len(p.frames) - 1; i >= 0; i-- {
		if _, ok := p.frames[i].vars[v]; ok {
			return &mapSlot{m: p.frames[i].vars, v: v}
		}
	}
	if _, ok := p.k.shared[v]; ok {
		return &mapSlot{m: p.k.shared, v: v}
	}
	return nil
}

type mapSlot struct {
	m map[*spec.Variable]Value
	v *spec.Variable
}

func (s *mapSlot) get() Value  { return s.m[s.v] }
func (s *mapSlot) set(v Value) { s.m[s.v] = v }

// applyPathInPlace descends through the accessor path mutating shared
// backing storage where possible (array elements, record fields); only
// the head value is re-stored.
func (p *process) applyPathInPlace(slot *mapSlot, path []accessor, val Value, t spec.Type) {
	if len(path) == 0 {
		slot.set(coerceToType(val, t))
		return
	}
	cur := slot.get()
	updated := p.applyPathCopyShallow(cur, path, val)
	slot.set(updated)
}

// applyPathCopy deep-copies along the path so the result shares nothing
// with cur beyond untouched branches (sufficient for scheduled signal
// values, which are compared and stored by the kernel).
func (p *process) applyPathCopy(cur Value, path []accessor, val Value, t spec.Type) Value {
	if len(path) == 0 {
		return coerceToType(val, t)
	}
	return p.applyPathCopyShallow(cur, path, val)
}

// applyPathCopyShallow rebuilds the containers along the path with the
// leaf replaced. Containers off the path are shared, which is safe both
// for in-place variable updates and for signal scheduling (the kernel
// never mutates stored values in place).
func (p *process) applyPathCopyShallow(cur Value, path []accessor, val Value) Value {
	a := path[0]
	switch a.kind {
	case 0: // index
		av, ok := cur.(ArrayVal)
		if !ok {
			fail("process %s: indexed store into non-array", p.beh.Name)
		}
		idx := int(asInt(p.eval(a.index))) - av.Lo
		if idx < 0 || idx >= len(av.Elems) {
			fail("process %s: store index %d out of range (len %d)", p.beh.Name, idx+av.Lo, len(av.Elems))
		}
		elems := make([]Value, len(av.Elems))
		copy(elems, av.Elems)
		if len(path) == 1 {
			elems[idx] = coerceLeafLike(val, elems[idx])
		} else {
			elems[idx] = p.applyPathCopyShallow(elems[idx], path[1:], val)
		}
		return ArrayVal{Lo: av.Lo, Elems: elems}
	case 1: // field
		rv, ok := cur.(RecordVal)
		if !ok {
			fail("process %s: field store into non-record", p.beh.Name)
		}
		i := rv.FieldIndex(a.field)
		if i < 0 {
			fail("process %s: store to unknown field %s", p.beh.Name, a.field)
		}
		fields := make([]Value, len(rv.Fields))
		copy(fields, rv.Fields)
		if len(path) == 1 {
			fields[i] = coerceToType(val, rv.Type.Fields[i].Type)
		} else {
			fields[i] = p.applyPathCopyShallow(fields[i], path[1:], val)
		}
		return RecordVal{Type: rv.Type, Fields: fields}
	case 2: // slice (always a leaf)
		vv, ok := cur.(VecVal)
		if !ok {
			fail("process %s: slice store into non-vector", p.beh.Name)
		}
		hi := int(asInt(p.eval(a.hi)))
		lo := int(asInt(p.eval(a.lo)))
		if len(path) != 1 {
			fail("process %s: slice must be the last lvalue step", p.beh.Name)
		}
		if lo < 0 || hi >= vv.V.Width() || hi < lo {
			fail("process %s: slice store (%d downto %d) out of range (width %d)",
				p.beh.Name, hi, lo, vv.V.Width())
		}
		return VecVal{V: vv.V.SetSlice(hi, lo, asVec(val, hi-lo+1))}
	}
	fail("process %s: bad lvalue path", p.beh.Name)
	return nil
}

// coerceLeafLike coerces val to the shape of the existing element.
func coerceLeafLike(val Value, like Value) Value {
	switch like := like.(type) {
	case VecVal:
		return VecVal{V: asVec(val, like.V.Width())}
	case IntVal:
		return IntVal{V: asInt(val)}
	case BoolVal:
		return BoolVal{V: asBool(val)}
	}
	return val
}

// ---- statement execution ----

func (p *process) execStmts(stmts []spec.Stmt) ctrl {
	for _, s := range stmts {
		if c := p.execStmt(s); c != ctrlNone {
			return c
		}
	}
	return ctrlNone
}

func (p *process) execStmt(s spec.Stmt) ctrl {
	p.countStep()
	switch s := s.(type) {
	case *spec.Assign:
		p.charge(p.costAssign(s))
		// A signal assignment is observable by other processes, so any
		// accumulated computation clocks must elapse first — otherwise
		// a long-running process's completion flag would take effect
		// before the computation it reports on.
		if base := spec.BaseVar(s.LHS); base != nil {
			if _, isSig := p.k.signals[base]; isSig {
				p.flushLag()
			}
		}
		p.assign(s.LHS, p.eval(s.RHS))
	case *spec.If:
		p.charge(p.costBranch(s.Cond))
		if asBool(p.eval(s.Cond)) {
			return p.execStmts(s.Then)
		}
		for _, arm := range s.Elifs {
			p.charge(p.costBranch(arm.Cond))
			if asBool(p.eval(arm.Cond)) {
				return p.execStmts(arm.Body)
			}
		}
		return p.execStmts(s.Else)
	case *spec.For:
		from := asInt(p.eval(s.From))
		to := asInt(p.eval(s.To))
		for i := from; i <= to; i++ {
			p.charge(p.costLoop())
			p.setLocal(s.Var, IntVal{V: i})
			if c := p.execStmts(s.Body); c == ctrlExit {
				break
			} else if c == ctrlReturn {
				return c
			}
		}
	case *spec.While:
		for {
			p.charge(p.costBranch(s.Cond))
			if !asBool(p.eval(s.Cond)) {
				break
			}
			if c := p.execStmts(s.Body); c == ctrlExit {
				break
			} else if c == ctrlReturn {
				return c
			}
		}
	case *spec.Loop:
		for {
			p.charge(p.costLoop())
			if c := p.execStmts(s.Body); c == ctrlExit {
				break
			} else if c == ctrlReturn {
				return c
			}
		}
	case *spec.Exit:
		return ctrlExit
	case *spec.Return:
		return ctrlReturn
	case *spec.Wait:
		p.execWait(s)
	case *spec.Call:
		p.charge(p.costCall())
		p.execCall(s)
	case *spec.Null:
		// nothing
	default:
		fail("process %s: cannot execute %T", p.beh.Name, s)
	}
	return ctrlNone
}

// setLocal writes a loop variable without path machinery.
func (p *process) setLocal(v *spec.Variable, val Value) {
	if slot := p.storageCell(v); slot != nil {
		slot.set(coerceToType(val, v.Type))
		return
	}
	// Loop variables may be undeclared scratch variables: create them
	// in the innermost frame.
	p.frames[len(p.frames)-1].vars[v] = coerceToType(val, v.Type)
}

func (p *process) execWait(s *spec.Wait) {
	// Realize any accumulated computation clocks *before* evaluating
	// wait conditions: signal updates scheduled by this process flush
	// while it lags, and the immediate check below must see them.
	if s.Until != nil || len(s.On) > 0 {
		p.flushLag()
	}
	w := waitSpec{deadline: -1}
	for _, v := range s.On {
		if _, ok := p.k.signals[v]; !ok {
			fail("process %s: wait on non-signal %s", p.beh.Name, v.Name)
		}
		w.sensitivity = append(w.sensitivity, v)
	}
	if s.Until != nil {
		// Immediate check: continue without suspending if the
		// condition already holds (see the package comment).
		if asBool(p.eval(s.Until)) {
			if s.TimedOut != nil {
				p.setLocal(s.TimedOut, BoolVal{V: false})
			}
			return
		}
		cond := s.Until
		w.condStr = cond.String()
		w.check = func() bool { return asBool(p.eval(cond)) }
		for _, v := range spec.SignalsRead(s.Until) {
			w.sensitivity = append(w.sensitivity, v)
		}
		if len(w.sensitivity) == 0 && !s.HasFor {
			fail("process %s: wait until %s has no signal sensitivity and no timeout", p.beh.Name, s.Until)
		}
	}
	if s.HasFor {
		if s.For < 0 {
			fail("process %s: negative wait duration %d", p.beh.Name, s.For)
		}
		w.deadline = p.k.now + s.For
	}
	if len(w.sensitivity) == 0 && w.check == nil && w.deadline < 0 {
		// "wait;" — suspend forever.
		w.forever = true
	}
	p.yield(w)
	if s.TimedOut != nil {
		p.setLocal(s.TimedOut, BoolVal{V: p.timedOut})
	}
}

// maxCallDepth bounds procedure nesting; specification procedures are
// not meant to recurse (VHDL subprograms may, but unbounded recursion in
// a hardware spec is a bug worth failing loudly on).
const maxCallDepth = 256

func (p *process) execCall(s *spec.Call) {
	proc := s.Proc
	if proc == nil {
		fail("process %s: call to nil procedure", p.beh.Name)
	}
	if len(s.Args) != len(proc.Params) {
		fail("process %s: call %s arity mismatch", p.beh.Name, proc.Name)
	}
	if len(p.frames) >= maxCallDepth {
		fail("process %s: procedure call depth exceeds %d (unbounded recursion in %s?)",
			p.beh.Name, maxCallDepth, proc.Name)
	}
	f := frame{vars: make(map[*spec.Variable]Value)}
	// Copy-in.
	for i, prm := range proc.Params {
		switch prm.Mode {
		case spec.ModeIn, spec.ModeInOut:
			f.vars[prm.Var] = coerceToType(p.eval(s.Args[i]), prm.Var.Type).Copy()
		default:
			f.vars[prm.Var] = ZeroValue(prm.Var.Type)
		}
	}
	for _, l := range proc.Locals {
		f.vars[l] = ZeroValue(l.Type)
	}
	p.frames = append(p.frames, f)
	p.execStmts(proc.Body)
	p.frames = p.frames[:len(p.frames)-1]
	// Copy-out.
	for i, prm := range proc.Params {
		if prm.Mode == spec.ModeOut || prm.Mode == spec.ModeInOut {
			p.assign(s.Args[i], f.vars[prm.Var])
		}
	}
}
