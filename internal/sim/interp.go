package sim

import (
	"fmt"

	"repro/internal/spec"
)

// simError is panicked on runtime errors inside a process and recovered
// at the process top, turning into a simulation error.
type simError struct{ err error }

// abortSentinel is panicked to unwind a process the kernel is killing.
type abortSentinel struct{}

func fail(format string, args ...any) {
	panic(simError{fmt.Errorf(format, args...)})
}

// ctrl is the control-flow outcome of executing a statement.
type ctrl int

const (
	ctrlNone ctrl = iota
	ctrlExit
	ctrlReturn
)

// frame is one variable scope (behavior locals or a procedure
// activation).
type frame struct {
	vars map[*spec.Variable]Value
}

// ---- variable access ----

// lookup resolves a variable to its current value: procedure frames
// innermost first, then behavior locals, then module variables, then
// signals.
func (p *process) lookup(v *spec.Variable) Value {
	for i := len(p.frames) - 1; i >= 0; i-- {
		if val, ok := p.frames[i].vars[v]; ok {
			return val
		}
	}
	if val, ok := p.k.shared[v]; ok {
		return val
	}
	if sig, ok := p.k.signals[v]; ok {
		return sig.current
	}
	fail("process %s: variable %s not in scope", p.beh.Name, v.Name)
	return nil
}

// evaluator builds the process's Evaluator: reads see committed signal
// values, and runtime errors carry the process name.
func (p *process) evaluator() Evaluator {
	return Evaluator{
		Lookup: p.lookup,
		Fail: func(format string, args ...any) {
			fail("process "+p.beh.Name+": "+format, args...)
		},
	}
}

func (p *process) eval(e spec.Expr) Value { return p.ev.Eval(e) }

// assign stores val into the lvalue. Signals are scheduled for the next
// delta cycle; variables update immediately. The semantics follow the
// target's kind regardless of the statement's ":="/"<=" spelling.
func (p *process) assign(lhs spec.Expr, val Value) {
	p.ev.Store(lhs, val,
		func(base *spec.Variable) Value {
			if sig, ok := p.k.signals[base]; ok {
				// Writers in the same delta build on each other's pending
				// value so a later field update cannot revert an earlier
				// one (reads via eval still see the committed value).
				return sig.effective().Copy()
			}
			if c := p.storageCell(base); c != nil {
				return c.get()
			}
			fail("process %s: variable %s not writable", p.beh.Name, base.Name)
			return nil
		},
		func(base *spec.Variable, nv Value) {
			if _, ok := p.k.signals[base]; ok {
				p.k.schedule(base, nv)
				return
			}
			c := p.storageCell(base)
			if c == nil {
				fail("process %s: variable %s not writable", p.beh.Name, base.Name)
			}
			c.set(nv)
		})
}

// storageCell finds the map holding the variable and returns a settable
// cell abstraction.
func (p *process) storageCell(v *spec.Variable) *mapSlot {
	for i := len(p.frames) - 1; i >= 0; i-- {
		if _, ok := p.frames[i].vars[v]; ok {
			return &mapSlot{m: p.frames[i].vars, v: v}
		}
	}
	if _, ok := p.k.shared[v]; ok {
		return &mapSlot{m: p.k.shared, v: v}
	}
	return nil
}

type mapSlot struct {
	m map[*spec.Variable]Value
	v *spec.Variable
}

func (s *mapSlot) get() Value  { return s.m[s.v] }
func (s *mapSlot) set(v Value) { s.m[s.v] = v }

// ---- statement execution ----

func (p *process) execStmts(stmts []spec.Stmt) ctrl {
	for _, s := range stmts {
		if c := p.execStmt(s); c != ctrlNone {
			return c
		}
	}
	return ctrlNone
}

func (p *process) execStmt(s spec.Stmt) ctrl {
	p.countStep()
	switch s := s.(type) {
	case *spec.Assign:
		p.charge(p.costAssign(s))
		// A signal assignment is observable by other processes, so any
		// accumulated computation clocks must elapse first — otherwise
		// a long-running process's completion flag would take effect
		// before the computation it reports on.
		if base := spec.BaseVar(s.LHS); base != nil {
			if _, isSig := p.k.signals[base]; isSig {
				p.flushLag()
			}
		}
		p.assign(s.LHS, p.eval(s.RHS))
	case *spec.If:
		p.charge(p.costBranch(s.Cond))
		if asBool(p.eval(s.Cond)) {
			return p.execStmts(s.Then)
		}
		for _, arm := range s.Elifs {
			p.charge(p.costBranch(arm.Cond))
			if asBool(p.eval(arm.Cond)) {
				return p.execStmts(arm.Body)
			}
		}
		return p.execStmts(s.Else)
	case *spec.For:
		from := asInt(p.eval(s.From))
		to := asInt(p.eval(s.To))
		for i := from; i <= to; i++ {
			p.charge(p.costLoop())
			p.setLocal(s.Var, IntVal{V: i})
			if c := p.execStmts(s.Body); c == ctrlExit {
				break
			} else if c == ctrlReturn {
				return c
			}
		}
	case *spec.While:
		for {
			p.charge(p.costBranch(s.Cond))
			if !asBool(p.eval(s.Cond)) {
				break
			}
			if c := p.execStmts(s.Body); c == ctrlExit {
				break
			} else if c == ctrlReturn {
				return c
			}
		}
	case *spec.Loop:
		for {
			p.charge(p.costLoop())
			if c := p.execStmts(s.Body); c == ctrlExit {
				break
			} else if c == ctrlReturn {
				return c
			}
		}
	case *spec.Exit:
		return ctrlExit
	case *spec.Return:
		return ctrlReturn
	case *spec.Wait:
		p.execWait(s)
	case *spec.Call:
		p.charge(p.costCall())
		p.execCall(s)
	case *spec.Null:
		// nothing
	default:
		fail("process %s: cannot execute %T", p.beh.Name, s)
	}
	return ctrlNone
}

// setLocal writes a loop variable without path machinery.
func (p *process) setLocal(v *spec.Variable, val Value) {
	if slot := p.storageCell(v); slot != nil {
		slot.set(Coerce(val, v.Type))
		return
	}
	// Loop variables may be undeclared scratch variables: create them
	// in the innermost frame.
	p.frames[len(p.frames)-1].vars[v] = Coerce(val, v.Type)
}

func (p *process) execWait(s *spec.Wait) {
	// Realize any accumulated computation clocks *before* evaluating
	// wait conditions: signal updates scheduled by this process flush
	// while it lags, and the immediate check below must see them.
	if s.Until != nil || len(s.On) > 0 {
		p.flushLag()
	}
	w := waitSpec{deadline: -1}
	for _, v := range s.On {
		if _, ok := p.k.signals[v]; !ok {
			fail("process %s: wait on non-signal %s", p.beh.Name, v.Name)
		}
		w.sensitivity = append(w.sensitivity, v)
	}
	if s.Until != nil {
		// Immediate check: continue without suspending if the
		// condition already holds (see the package comment).
		if asBool(p.eval(s.Until)) {
			if s.TimedOut != nil {
				p.setLocal(s.TimedOut, BoolVal{V: false})
			}
			return
		}
		cond := s.Until
		w.condStr = cond.String()
		w.check = func() bool { return asBool(p.eval(cond)) }
		for _, v := range spec.SignalsRead(s.Until) {
			w.sensitivity = append(w.sensitivity, v)
		}
		if len(w.sensitivity) == 0 && !s.HasFor {
			fail("process %s: wait until %s has no signal sensitivity and no timeout", p.beh.Name, s.Until)
		}
	}
	if s.HasFor {
		if s.For < 0 {
			fail("process %s: negative wait duration %d", p.beh.Name, s.For)
		}
		w.deadline = p.k.now + s.For
	}
	if len(w.sensitivity) == 0 && w.check == nil && w.deadline < 0 {
		// "wait;" — suspend forever.
		w.forever = true
	}
	p.yield(w)
	if s.TimedOut != nil {
		p.setLocal(s.TimedOut, BoolVal{V: p.timedOut})
	}
}

// maxCallDepth bounds procedure nesting; specification procedures are
// not meant to recurse (VHDL subprograms may, but unbounded recursion in
// a hardware spec is a bug worth failing loudly on).
const maxCallDepth = 256

func (p *process) execCall(s *spec.Call) {
	proc := s.Proc
	if proc == nil {
		fail("process %s: call to nil procedure", p.beh.Name)
	}
	if len(s.Args) != len(proc.Params) {
		fail("process %s: call %s arity mismatch", p.beh.Name, proc.Name)
	}
	if len(p.frames) >= maxCallDepth {
		fail("process %s: procedure call depth exceeds %d (unbounded recursion in %s?)",
			p.beh.Name, maxCallDepth, proc.Name)
	}
	f := frame{vars: make(map[*spec.Variable]Value)}
	// Copy-in.
	for i, prm := range proc.Params {
		switch prm.Mode {
		case spec.ModeIn, spec.ModeInOut:
			f.vars[prm.Var] = Coerce(p.eval(s.Args[i]), prm.Var.Type).Copy()
		default:
			f.vars[prm.Var] = ZeroValue(prm.Var.Type)
		}
	}
	for _, l := range proc.Locals {
		f.vars[l] = ZeroValue(l.Type)
	}
	p.frames = append(p.frames, f)
	p.execStmts(proc.Body)
	p.frames = p.frames[:len(p.frames)-1]
	// Copy-out.
	for i, prm := range proc.Params {
		if prm.Mode == spec.ModeOut || prm.Mode == spec.ModeInOut {
			p.assign(s.Args[i], f.vars[prm.Var])
		}
	}
}
