package sim

import (
	"repro/internal/bits"
	"repro/internal/spec"
)

// This file compiles expressions into flat postfix programs for the
// batch kernel. The tree-walking Evaluator costs an interface dispatch,
// a type switch and a map-backed variable lookup per node; at millions
// of runs per campaign that walk dominates the whole simulator. A
// compiled expression replaces it with a loop over a few preresolved
// ops and a reusable value stack.
//
// Faithfulness rules the design:
//
//   - Operand order is the tree walk's order (left to right), so a
//     failing operand fails at the same point in the run.
//   - The interpreter checks that an indexed value is an array *before*
//     evaluating the index; xCheckArr reproduces that early check.
//   - Every op that can fail carries its originating spec node so the
//     failure message renders the same expression text the interpreter
//     would print.
//   - Value computation is shared, not duplicated: binary operators go
//     through the same applyBinary the tree walker uses, and the
//     conversion/slice/field semantics are copied line for line.
//
// A construct the compiler does not handle simply yields a nil cexpr
// and the kernel falls back to the tree walker for that expression.

type copKind uint8

const (
	xConst copKind = iota
	xLoadLocal
	xLoadShared
	xLoadSignal
	xCheckArr // verify the indexed value is an array before the index runs
	xIndex
	xSlice  // dynamic bounds: pops lo, hi, x
	xSliceC // static bounds: pops x
	xField
	xBinary
	xNot
	xNeg
	xConv
)

// cop is one postfix op. Fields are a union keyed by kind.
type cop struct {
	kind copKind
	val  Value          // xConst
	idx  int32          // load slot; xField static index hint (-1 unknown); xSliceC hi
	lo   int32          // xSliceC lo
	op   spec.Op        // xBinary
	v    *spec.Variable // loads: variable, for not-in-scope errors
	name string         // xField: field name
	to   spec.Type      // xConv target
	sgn  bool           // xConv signed
	orig spec.Expr      // originating node for failure messages
}

// cexpr is a compiled expression: postfix ops evaluated over a stack.
// depth is its maximum operand-stack depth, known statically; the
// process stack is pre-sized to the program's deepest expression so
// evaluation never grows it.
type cexpr struct {
	ops   []cop
	depth int
}

// exprBuilder accumulates ops for one expression.
type exprBuilder struct {
	prog *bprogram
	ops  []cop
	ok   bool
}

// compileExpr compiles e against the program's resolved slots; every
// variable e references must already have been through scanExpr. A nil
// return means the expression uses a construct the compiler does not
// lower; the kernel keeps the spec tree and walks it instead.
func (c *bcompiler) compileExpr(e spec.Expr) *cexpr {
	b := &exprBuilder{prog: c.prog, ok: true}
	b.emit(e)
	if !b.ok {
		return nil
	}
	ce := &cexpr{ops: b.ops}
	d := 0
	for i := range ce.ops {
		switch ce.ops[i].kind {
		case xConst, xLoadLocal, xLoadShared, xLoadSignal:
			d++
		case xIndex, xBinary:
			d--
		case xSlice:
			d -= 2
		}
		if d > ce.depth {
			ce.depth = d
		}
	}
	if ce.depth > c.prog.maxStack {
		c.prog.maxStack = ce.depth
	}
	return ce
}

func (b *exprBuilder) push(op cop) { b.ops = append(b.ops, op) }

func (b *exprBuilder) emit(e spec.Expr) {
	switch e := e.(type) {
	case *spec.IntLit:
		b.push(cop{kind: xConst, val: boxInt(e.Value)})
	case *spec.VecLit:
		b.push(cop{kind: xConst, val: boxVec(e.Value)})
	case *spec.BoolLit:
		b.push(cop{kind: xConst, val: boxBool(e.Value)})
	case *spec.VarRef:
		ref, ok := b.prog.res[e.Var]
		if !ok {
			// scanExpr resolves everything; an unresolved variable means
			// the expression was never scanned — refuse, don't guess.
			b.ok = false
			return
		}
		switch ref.sp {
		case slotShared:
			b.push(cop{kind: xLoadShared, idx: ref.idx})
		case slotSignal:
			b.push(cop{kind: xLoadSignal, idx: ref.idx})
		default:
			b.push(cop{kind: xLoadLocal, idx: ref.idx, v: e.Var})
		}
	case *spec.Index:
		b.emit(e.Arr)
		b.push(cop{kind: xCheckArr, orig: e})
		b.emit(e.Index)
		b.push(cop{kind: xIndex, orig: e})
	case *spec.SliceExpr:
		b.emit(e.X)
		hi, hok := e.Hi.(*spec.IntLit)
		lo, lok := e.Lo.(*spec.IntLit)
		if hok && lok {
			b.push(cop{kind: xSliceC, idx: int32(hi.Value), lo: int32(lo.Value), orig: e})
		} else {
			b.emit(e.Hi)
			b.emit(e.Lo)
			b.push(cop{kind: xSlice, orig: e})
		}
	case *spec.FieldRef:
		b.emit(e.X)
		fi := int32(-1)
		if rt, ok := staticExprType(e.X).(spec.RecordType); ok {
			for i := range rt.Fields {
				if rt.Fields[i].Name == e.Field {
					fi = int32(i)
					break
				}
			}
		}
		b.push(cop{kind: xField, idx: fi, name: e.Field, orig: e})
	case *spec.Binary:
		b.emit(e.X)
		b.emit(e.Y)
		b.push(cop{kind: xBinary, op: e.Op})
	case *spec.Unary:
		b.emit(e.X)
		switch e.Op {
		case spec.OpNot:
			b.push(cop{kind: xNot})
		case spec.OpNeg:
			b.push(cop{kind: xNeg})
		default:
			b.ok = false
		}
	case *spec.Conv:
		b.emit(e.X)
		b.push(cop{kind: xConv, to: e.To, sgn: e.Signed, orig: e})
	default:
		b.ok = false
	}
}

// staticExprType infers an expression's type where the spec makes it
// knowable at compile time; nil means unknown. Used only for hints
// (static field indices) that are re-validated at runtime, so a stale
// or wrong inference can never change behavior.
func staticExprType(e spec.Expr) spec.Type {
	switch e := e.(type) {
	case *spec.VarRef:
		return e.Var.Type
	case *spec.FieldRef:
		if rt, ok := staticExprType(e.X).(spec.RecordType); ok {
			return rt.FieldType(e.Field)
		}
	case *spec.Index:
		if at, ok := staticExprType(e.Arr).(spec.ArrayType); ok {
			return at.Elem
		}
	}
	return nil
}

// evalExpr evaluates via the compiled form when one exists, else the
// tree walker.
func (p *bproc) evalExpr(ce *cexpr, e spec.Expr) Value {
	if ce != nil {
		return p.evalC(ce)
	}
	return p.ev.Eval(e)
}

// evalC runs a compiled expression on the process's reusable stack.
// Failure messages match the tree walker's byte for byte (batch_test.go
// cross-checks error strings against the classic kernel).
func (p *bproc) evalC(ce *cexpr) Value {
	st := p.stack[:0] // pre-sized to the program's deepest expression
	ops := ce.ops
	for i := range ops {
		op := &ops[i]
		switch op.kind {
		case xConst:
			st = append(st, op.val)
		case xLoadLocal:
			v := p.locals[op.idx]
			if v == nil {
				p.evFail("variable %s not in scope", op.v.Name)
			}
			st = append(st, v)
		case xLoadShared:
			st = append(st, p.r.shared[op.idx])
		case xLoadSignal:
			st = append(st, p.r.sig[op.idx].current)
		case xCheckArr:
			if _, ok := st[len(st)-1].(ArrayVal); !ok {
				p.evFail("indexing non-array %s", op.orig.(*spec.Index).Arr)
			}
		case xIndex:
			n := len(st)
			av := st[n-2].(ArrayVal) // xCheckArr already verified
			idx := int(asInt(st[n-1])) - av.Lo
			if idx < 0 || idx >= len(av.Elems) {
				p.evFail("index %d out of range for %s (len %d)", idx+av.Lo, op.orig.(*spec.Index).Arr, len(av.Elems))
			}
			st[n-2] = av.Elems[idx]
			st = st[:n-1]
		case xSlice:
			n := len(st)
			xv, ok := st[n-3].(VecVal)
			if !ok {
				p.evFail("slicing non-vector %s", op.orig.(*spec.SliceExpr).X)
			}
			hi := int(asInt(st[n-2]))
			lo := int(asInt(st[n-1]))
			if lo < 0 || hi >= xv.V.Width() || hi < lo {
				p.evFail("slice (%d downto %d) out of range for %s", hi, lo, op.orig.(*spec.SliceExpr).X)
			}
			st[n-3] = boxVec(xv.V.Slice(hi, lo))
			st = st[:n-2]
		case xSliceC:
			n := len(st)
			xv, ok := st[n-1].(VecVal)
			if !ok {
				p.evFail("slicing non-vector %s", op.orig.(*spec.SliceExpr).X)
			}
			hi, lo := int(op.idx), int(op.lo)
			if lo < 0 || hi >= xv.V.Width() || hi < lo {
				p.evFail("slice (%d downto %d) out of range for %s", hi, lo, op.orig.(*spec.SliceExpr).X)
			}
			st[n-1] = boxVec(xv.V.Slice(hi, lo))
		case xField:
			n := len(st)
			rv, ok := st[n-1].(RecordVal)
			if !ok {
				p.evFail("field access on non-record %s", op.orig.(*spec.FieldRef).X)
			}
			fi := int(op.idx)
			if fi < 0 || fi >= len(rv.Type.Fields) || rv.Type.Fields[fi].Name != op.name {
				fi = rv.FieldIndex(op.name)
			}
			if fi < 0 {
				p.evFail("no field %s on %s", op.name, op.orig.(*spec.FieldRef).X)
			}
			st[n-1] = rv.Fields[fi]
		case xBinary:
			n := len(st)
			x, y := st[n-2], st[n-1]
			var v Value
			// Inline the dominant operand shapes; everything else (and
			// every mismatch, which may need to fail) goes through the
			// shared applyBinary so results and errors stay identical.
			switch op.op {
			case spec.OpAdd:
				if xi, ok := x.(IntVal); ok {
					if yi, ok := y.(IntVal); ok {
						v = boxInt(xi.V + yi.V)
					}
				}
			case spec.OpSub:
				if xi, ok := x.(IntVal); ok {
					if yi, ok := y.(IntVal); ok {
						v = boxInt(xi.V - yi.V)
					}
				}
			case spec.OpEq:
				if xv, ok := x.(VecVal); ok {
					if yv, ok := y.(VecVal); ok && xv.V.Width() == yv.V.Width() {
						v = boxBool(xv.V.Equal(yv.V))
					}
				}
			case spec.OpNeq:
				if xv, ok := x.(VecVal); ok {
					if yv, ok := y.(VecVal); ok && xv.V.Width() == yv.V.Width() {
						v = boxBool(!xv.V.Equal(yv.V))
					}
				}
			}
			if v == nil {
				v = p.ev.applyBinary(op.op, x, y)
			}
			st[n-2] = v
			st = st[:n-1]
		case xNot:
			n := len(st)
			switch x := st[n-1].(type) {
			case BoolVal:
				st[n-1] = boxBool(!x.V)
			case VecVal:
				st[n-1] = boxVec(x.V.Not())
			default:
				p.evFail("not on %s", st[n-1])
			}
		case xNeg:
			n := len(st)
			st[n-1] = boxInt(-asInt(st[n-1]))
		case xConv:
			n := len(st)
			x := st[n-1]
			switch to := op.to.(type) {
			case spec.IntegerType:
				if xv, ok := x.(VecVal); ok && op.sgn {
					st[n-1] = boxInt(xv.V.Int64())
				} else {
					st[n-1] = boxInt(asInt(x))
				}
			case spec.BitVectorType:
				st[n-1] = boxVec(asVec(x, to.Width))
			case spec.BitType:
				st[n-1] = boxVec(asVec(x, 1))
			case spec.BoolType:
				st[n-1] = boxBool(asBool(x))
			default:
				p.evFail("unsupported conversion to %s", op.to)
			}
		}
	}
	return st[0]
}

// fillPathHints walks an lvalue's accessor path alongside the base
// variable's static type and records the field index each record step
// resolves to. applyPath re-validates hints against the runtime record
// type, so hints only ever save the name scan — they cannot redirect a
// store.
func fillPathHints(path []accessor, base spec.Type) {
	t := base
	for i := range path {
		a := &path[i]
		switch a.kind {
		case 0:
			if at, ok := t.(spec.ArrayType); ok {
				t = at.Elem
			} else {
				t = nil
			}
		case 1:
			if rt, ok := t.(spec.RecordType); ok {
				t = nil
				for j := range rt.Fields {
					if rt.Fields[j].Name == a.field {
						a.fieldIdx = int32(j)
						t = rt.Fields[j].Type
						break
					}
				}
			} else {
				t = nil
			}
		case 2:
			t = nil
		}
	}
}

// ---- fast boolean conditions ----
//
// Branch and wait conditions are re-evaluated far more often than any
// other expression: wake re-checks a waiting process's until condition
// on every flush that touches its sensitivity. The generated protocols
// use a tiny condition grammar — record-signal fields compared to
// literals, boolean flags, integer counters against constants, glued by
// and/or/not — which evaluates without boxing a single Value. fcond is
// that grammar compiled; any node outside it (or any runtime shape the
// static types did not predict) makes evalF report no answer and the
// caller re-evaluates generically, so failures and exotic cases keep
// the interpreter's exact behavior.

type fcondKind uint8

const (
	fAnd fcondKind = iota
	fOr
	fNot
	fConst
	fBoolVar   // boolean-typed variable read
	fCmpSigVec // record signal field (vector) vs vector literal, Eq/Neq
	fCmpInt    // integer variable vs integer literal
)

type fcond struct {
	kind fcondKind
	a, b *fcond

	bval bool // fConst

	ref slotRef // fBoolVar, fCmpInt

	sig   int32       // fCmpSigVec: signal slot
	fi    int32       // fCmpSigVec: field index
	fname string      // fCmpSigVec: field name guard
	vec   bits.Vector // fCmpSigVec: literal
	neg   bool        // fCmpSigVec: Neq

	op   spec.Op // fCmpInt comparison
	ival int64   // fCmpInt literal
}

// compileCond compiles a condition into the fast grammar, or nil.
func (c *bcompiler) compileCond(e spec.Expr) *fcond {
	switch e := e.(type) {
	case *spec.BoolLit:
		return &fcond{kind: fConst, bval: e.Value}
	case *spec.VarRef:
		if _, ok := e.Var.Type.(spec.BoolType); !ok {
			return nil
		}
		ref, ok := c.prog.res[e.Var]
		if !ok {
			return nil
		}
		return &fcond{kind: fBoolVar, ref: ref}
	case *spec.Unary:
		if e.Op != spec.OpNot {
			return nil
		}
		a := c.compileCond(e.X)
		if a == nil {
			return nil
		}
		return &fcond{kind: fNot, a: a}
	case *spec.Binary:
		switch e.Op {
		case spec.OpAnd, spec.OpOr:
			a := c.compileCond(e.X)
			if a == nil {
				return nil
			}
			b := c.compileCond(e.Y)
			if b == nil {
				return nil
			}
			k := fAnd
			if e.Op == spec.OpOr {
				k = fOr
			}
			return &fcond{kind: k, a: a, b: b}
		case spec.OpEq, spec.OpNeq:
			if f := c.compileSigVecCmp(e); f != nil {
				return f
			}
			return c.compileIntCmp(e)
		case spec.OpLt, spec.OpLe, spec.OpGt, spec.OpGe:
			return c.compileIntCmp(e)
		}
	}
	return nil
}

// compileSigVecCmp matches sig.FIELD = "lit" (or /=) where the field's
// declared width equals the literal's, so the generic evaluator's width
// alignment is an identity and plain vector equality is exact.
func (c *bcompiler) compileSigVecCmp(e *spec.Binary) *fcond {
	fr, ok := e.X.(*spec.FieldRef)
	if !ok {
		return nil
	}
	vl, ok := e.Y.(*spec.VecLit)
	if !ok {
		return nil
	}
	vr, ok := fr.X.(*spec.VarRef)
	if !ok {
		return nil
	}
	ref, ok := c.prog.res[vr.Var]
	if !ok || ref.sp != slotSignal {
		return nil
	}
	rt, ok := vr.Var.Type.(spec.RecordType)
	if !ok {
		return nil
	}
	for i := range rt.Fields {
		if rt.Fields[i].Name != fr.Field {
			continue
		}
		if rt.Fields[i].Type.BitWidth() != vl.Value.Width() {
			return nil
		}
		return &fcond{
			kind: fCmpSigVec, sig: ref.idx, fi: int32(i),
			fname: fr.Field, vec: vl.Value, neg: e.Op == spec.OpNeq,
		}
	}
	return nil
}

// compileIntCmp matches intvar OP intlit.
func (c *bcompiler) compileIntCmp(e *spec.Binary) *fcond {
	vr, ok := e.X.(*spec.VarRef)
	if !ok {
		return nil
	}
	if _, ok := vr.Var.Type.(spec.IntegerType); !ok {
		return nil
	}
	il, ok := e.Y.(*spec.IntLit)
	if !ok {
		return nil
	}
	ref, ok := c.prog.res[vr.Var]
	if !ok {
		return nil
	}
	return &fcond{kind: fCmpInt, ref: ref, op: e.Op, ival: il.Value}
}

// evalF evaluates a fast condition; ok=false means a runtime shape the
// compile-time typing did not predict (nil scratch local, coerced
// container, odd width) and the caller must evaluate generically. Both
// operands of and/or evaluate regardless of the first's value, exactly
// like the tree walker.
func (p *bproc) evalF(f *fcond) (val, ok bool) {
	switch f.kind {
	case fAnd:
		av, ok := p.evalF(f.a)
		if !ok {
			return false, false
		}
		bv, ok := p.evalF(f.b)
		return av && bv, ok
	case fOr:
		av, ok := p.evalF(f.a)
		if !ok {
			return false, false
		}
		bv, ok := p.evalF(f.b)
		return av || bv, ok
	case fNot:
		av, ok := p.evalF(f.a)
		return !av, ok
	case fConst:
		return f.bval, true
	case fBoolVar:
		bv, ok := p.loadRaw(f.ref).(BoolVal)
		return bv.V, ok
	case fCmpSigVec:
		// The commit-time layout check (curFields) already validated the
		// compile-time field index; the slow re-validating path only
		// runs for values outside the declared layout.
		sg := &p.r.sig[f.sig]
		if flds := sg.curFields; flds != nil {
			vv, ok := flds[f.fi].(VecVal)
			if !ok || vv.V.Width() != f.vec.Width() {
				return false, false
			}
			return vv.V.Equal(f.vec) != f.neg, true
		}
		rv, ok := sg.current.(RecordVal)
		if !ok || int(f.fi) >= len(rv.Fields) || int(f.fi) >= len(rv.Type.Fields) || rv.Type.Fields[f.fi].Name != f.fname {
			return false, false
		}
		vv, ok := rv.Fields[f.fi].(VecVal)
		if !ok || vv.V.Width() != f.vec.Width() {
			return false, false
		}
		return vv.V.Equal(f.vec) != f.neg, true
	case fCmpInt:
		iv, ok := p.loadRaw(f.ref).(IntVal)
		if !ok {
			return false, false
		}
		switch f.op {
		case spec.OpEq:
			return iv.V == f.ival, true
		case spec.OpNeq:
			return iv.V != f.ival, true
		case spec.OpLt:
			return iv.V < f.ival, true
		case spec.OpLe:
			return iv.V <= f.ival, true
		case spec.OpGt:
			return iv.V > f.ival, true
		case spec.OpGe:
			return iv.V >= f.ival, true
		}
	}
	return false, false
}

// loadRaw reads a slot without scope checks; callers type-assert and
// fall back to the generic (checking, failing) path on nil.
func (p *bproc) loadRaw(ref slotRef) Value {
	switch ref.sp {
	case slotShared:
		return p.r.shared[ref.idx]
	case slotSignal:
		return p.r.sig[ref.idx].current
	}
	return p.locals[ref.idx]
}

// condBool evaluates a condition, preferring the fast form.
func (p *bproc) condBool(f *fcond, ce *cexpr, e spec.Expr) bool {
	if f != nil {
		if v, ok := p.evalF(f); ok {
			return v
		}
	}
	return asBool(p.evalExpr(ce, e))
}
