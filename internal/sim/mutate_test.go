package sim

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/spec"
)

// TestWaitUntilForTimedOutResult checks both sides of the bounded-wait
// result variable: an expired wait assigns true, a satisfied one false.
func TestWaitUntilForTimedOutResult(t *testing.T) {
	sys := spec.NewSystem("t")
	m := sys.AddModule("m")
	b := m.AddBehavior(spec.NewBehavior("B"))
	src := m.AddBehavior(spec.NewBehavior("SRC"))
	sig := sys.AddGlobal(spec.NewSignal("S", spec.Bit))
	first := m.AddVariable(spec.NewVar("first", spec.Integer))
	second := m.AddVariable(spec.NewVar("second", spec.Integer))
	tmo := b.AddVar("tmo", spec.Bool)

	record := func(dst *spec.Variable) spec.Stmt {
		return &spec.If{
			Cond: spec.Ref(tmo),
			Then: []spec.Stmt{spec.AssignVar(spec.Ref(dst), spec.Int(1))},
			Else: []spec.Stmt{spec.AssignVar(spec.Ref(dst), spec.Int(2))},
		}
	}
	b.Body = []spec.Stmt{
		// S never rises within 10 clocks: the wait expires.
		spec.WaitUntilFor(spec.Eq(spec.Ref(sig), spec.VecString("1")), 10, tmo),
		record(first),
		// SRC raises S at clock 20, well inside the second bound.
		spec.WaitUntilFor(spec.Eq(spec.Ref(sig), spec.VecString("1")), 1000, tmo),
		record(second),
	}
	src.Body = []spec.Stmt{
		spec.WaitFor(20),
		spec.AssignSig(spec.Ref(sig), spec.VecString("1")),
	}

	res := mustRun(t, sys, Config{})
	if got := res.Final("m", "first"); !got.Equal(IntVal{V: 1}) {
		t.Errorf("first = %s, want 1 (wait expired)", got)
	}
	if got := res.Final("m", "second"); !got.Equal(IntVal{V: 2}) {
		t.Errorf("second = %s, want 2 (event before timeout)", got)
	}
}

// mutateSystem builds a driver raising field A of a two-field record
// signal at clock 5, and a watcher recording both fields once A rises.
func mutateSystem() (*spec.System, *spec.Variable) {
	sys := spec.NewSystem("t")
	m := sys.AddModule("m")
	rec := spec.RecordType{Name: "wires", Fields: []spec.Field{
		{Name: "A", Type: spec.Bit},
		{Name: "B", Type: spec.Bit},
	}}
	sig := sys.AddGlobal(spec.NewSignal("S", rec))
	drv := m.AddBehavior(spec.NewBehavior("DRV"))
	drv.Body = []spec.Stmt{
		spec.WaitFor(5),
		spec.AssignSig(spec.FieldOf(spec.Ref(sig), "A"), spec.VecString("1")),
	}
	return sys, sig
}

// TestMutateHookSuppressesChange returns the old value from the hook:
// the transition must vanish and fire no event.
func TestMutateHookSuppressesChange(t *testing.T) {
	sys, sig := mutateSystem()
	m := sys.Modules[0]
	w := m.AddBehavior(spec.NewBehavior("W"))
	seen := m.AddVariable(spec.NewVar("seen", spec.Integer))
	tmo := w.AddVar("tmo", spec.Bool)
	w.Body = []spec.Stmt{
		spec.WaitUntilFor(spec.Eq(spec.FieldOf(spec.Ref(sig), "A"), spec.VecString("1")), 50, tmo),
		&spec.If{
			Cond: spec.Not(spec.Ref(tmo)),
			Then: []spec.Stmt{spec.AssignVar(spec.Ref(seen), spec.Int(1))},
		},
	}
	res := mustRun(t, sys, Config{
		Mutate: func(now int64, s *spec.Variable, old, next Value) Mutation {
			return Mutation{Now: old.Copy()}
		},
	})
	if res.SignalEvents["S"] != 0 {
		t.Errorf("suppressed transition fired %d events", res.SignalEvents["S"])
	}
	if got := res.Final("m", "seen"); got.Equal(IntVal{V: 1}) {
		t.Error("watcher saw a transition the hook suppressed")
	}
}

// TestMutateHookDelayedMerge drops A's rise and re-drives it 10 clocks
// later via Mutation.Later. Meanwhile B rises at clock 8; the late
// re-commit must not revert B (per-field merge over the then-current
// value).
func TestMutateHookDelayedMerge(t *testing.T) {
	sys, sig := mutateSystem()
	m := sys.Modules[0]
	drv2 := m.AddBehavior(spec.NewBehavior("DRV2"))
	drv2.Body = []spec.Stmt{
		spec.WaitFor(8),
		spec.AssignSig(spec.FieldOf(spec.Ref(sig), "B"), spec.VecString("1")),
	}
	w := m.AddBehavior(spec.NewBehavior("W"))
	aAt := m.AddVariable(spec.NewVar("aAt", spec.Integer))
	bVal := m.AddVariable(spec.NewVar("bVal", spec.Integer))
	w.Body = []spec.Stmt{
		spec.WaitUntilFor(spec.Eq(spec.FieldOf(spec.Ref(sig), "A"), spec.VecString("1")), 100, nil),
		&spec.If{
			Cond: spec.Eq(spec.FieldOf(spec.Ref(sig), "B"), spec.VecString("1")),
			Then: []spec.Stmt{spec.AssignVar(spec.Ref(bVal), spec.Int(1))},
		},
		spec.AssignVar(spec.Ref(aAt), spec.Int(1)),
	}
	mutated := false
	res := mustRun(t, sys, Config{
		Mutate: func(now int64, s *spec.Variable, old, next Value) Mutation {
			if mutated || now != 5 {
				return Mutation{}
			}
			mutated = true
			// Suppress now, re-drive the intended value 10 clocks later.
			return Mutation{Now: old.Copy(), Later: next.Copy(), Delay: 10}
		},
	})
	if got := res.Final("m", "aAt"); !got.Equal(IntVal{V: 1}) {
		t.Fatal("delayed transition never arrived")
	}
	if got := res.Final("m", "bVal"); !got.Equal(IntVal{V: 1}) {
		t.Error("late re-commit of A reverted B's independent rise")
	}
	if res.ProcessEnd["W"] != 15 {
		t.Errorf("A arrived at clock %d, want 15 (5 + delay 10)", res.ProcessEnd["W"])
	}
}

// TestDeadlockErrorBusState checks that a deadlock on a global record
// signal (a generated bus) reports its control-line state.
func TestDeadlockErrorBusState(t *testing.T) {
	sys, sig := mutateSystem()
	m := sys.Modules[0]
	w := m.AddBehavior(spec.NewBehavior("W"))
	// DRV raises A at clock 5 and finishes; W waits forever for B.
	w.Body = []spec.Stmt{
		spec.WaitUntil(spec.Eq(spec.FieldOf(spec.Ref(sig), "B"), spec.VecString("1"))),
	}
	s, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	joined := strings.Join(dl.Bus, " ")
	if !strings.Contains(joined, "S.A='1'") || !strings.Contains(joined, "S.B='0'") {
		t.Errorf("DeadlockError.Bus = %q, want S.A='1' and S.B='0'", joined)
	}
}
