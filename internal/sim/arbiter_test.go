package sim

import (
	"testing"

	"repro/internal/protogen"
	"repro/internal/spec"
)

// buildConcurrentPQ is buildPQ without Q's stagger: both accessors open
// transactions at time zero, which corrupts an unarbitrated bus.
func buildConcurrentPQ() (*spec.System, *spec.Bus) {
	sys, bus := buildPQ()
	q := sys.FindBehavior("Q")
	q.Body = q.Body[1:] // drop the WaitFor(500)
	return sys, bus
}

// TestArbitratedConcurrentAccessors is the future-work extension at
// work: with REQ/GRANT arbitration, P and Q may start concurrently and
// the refined system still computes the right values.
func TestArbitratedConcurrentAccessors(t *testing.T) {
	sys, bus := buildConcurrentPQ()
	ref, err := protogen.Generate(sys, bus, protogen.Config{
		Protocol:  spec.FullHandshake,
		Arbitrate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Arbiter == nil {
		t.Fatal("no arbiter generated")
	}
	if !bus.Arbitrated {
		t.Fatal("bus not marked arbitrated")
	}
	// Arbitration wires: REQ(2) + GRANT(1) + GVALID(1) on top of
	// 8 data + 2 control + 2 id.
	if bus.TotalLines() != 12+4 {
		t.Fatalf("total lines = %d, want 16", bus.TotalLines())
	}
	if bus.Record.FieldType("REQ") == nil || bus.Record.FieldType("GVALID") == nil {
		t.Fatal("arbitration fields missing from the bus record")
	}

	res := mustRun(t, sys, Config{})
	mem := res.Final("comp2", "MEM").(ArrayVal)
	if mem.Elems[5].(VecVal).V.Uint64() != 39 {
		t.Errorf("MEM(5) = %s, want 39", mem.Elems[5])
	}
	if mem.Elems[60].(VecVal).V.Uint64() != 9 {
		t.Errorf("MEM(60) = %s, want 9", mem.Elems[60])
	}
	x := res.Final("comp2", "X").(VecVal)
	if x.V.Uint64() != 32 {
		t.Errorf("X = %d, want 32", x.V.Uint64())
	}
}

// TestArbitrationDelayMeasured quantifies the arbitration delay the
// paper asks about: the arbitrated staggered run must be a little
// slower than the unarbitrated staggered run, but by a bounded
// per-transaction cost.
func TestArbitrationDelayMeasured(t *testing.T) {
	plainSys, plainBus := buildPQ()
	if _, err := protogen.Generate(plainSys, plainBus, protogen.Config{Protocol: spec.FullHandshake}); err != nil {
		t.Fatal(err)
	}
	plain := mustRun(t, plainSys, Config{})

	arbSys, arbBus := buildPQ()
	if _, err := protogen.Generate(arbSys, arbBus, protogen.Config{
		Protocol: spec.FullHandshake, Arbitrate: true,
	}); err != nil {
		t.Fatal(err)
	}
	arb := mustRun(t, arbSys, Config{})

	if !plain.Final("comp2", "MEM").Equal(arb.Final("comp2", "MEM")) {
		t.Fatal("arbitration changed functional results")
	}
	if arb.Clocks <= plain.Clocks {
		t.Fatalf("arbitrated run (%d clocks) not slower than plain (%d)", arb.Clocks, plain.Clocks)
	}
	// 5 transactions (CH0, CH1, CH2 by P; CH3 by Q; CH1 counts once);
	// arbitration adds roughly 2 clocks each plus delta overheads —
	// bound the total overhead loosely.
	overhead := arb.Clocks - plain.Clocks
	if overhead > 50 {
		t.Fatalf("arbitration overhead = %d clocks, implausibly large", overhead)
	}
}

// TestArbiterSingleAccessorElided checks that single-accessor buses get
// no arbitration hardware even when requested.
func TestArbiterSingleAccessorElided(t *testing.T) {
	sys := spec.NewSystem("single")
	m1 := sys.AddModule("m1")
	m2 := sys.AddModule("m2")
	b := m1.AddBehavior(spec.NewBehavior("B"))
	v := m2.AddVariable(spec.NewVar("V", spec.BitVector(8)))
	l := b.AddVar("l", spec.BitVector(8))
	b.Body = []spec.Stmt{spec.AssignVar(spec.Ref(v), spec.Ref(l))}
	ch := sys.AddChannel(&spec.Channel{Name: "c0", Accessor: b, Var: v, Dir: spec.Write})
	bus := &spec.Bus{Name: "SB", Channels: []*spec.Channel{ch}, Width: 8}
	sys.Buses = append(sys.Buses, bus)
	ref, err := protogen.Generate(sys, bus, protogen.Config{Protocol: spec.FullHandshake, Arbitrate: true})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Arbiter != nil {
		t.Fatal("arbiter generated for a single accessor")
	}
	if bus.Record.FieldType("REQ") != nil {
		t.Fatal("REQ lines on a single-accessor bus")
	}
	mustRun(t, sys, Config{})
}

// TestArbitratedHammering drives two accessors through many
// back-to-back transactions each — the stress case for grant handoff.
func TestArbitratedHammering(t *testing.T) {
	sys := spec.NewSystem("hammer")
	m1 := sys.AddModule("m1")
	m2 := sys.AddModule("m2")
	a := m1.AddBehavior(spec.NewBehavior("A"))
	b := m1.AddBehavior(spec.NewBehavior("Bb"))
	arrA := m2.AddVariable(spec.NewVar("arrA", spec.Array(32, spec.BitVector(16))))
	arrB := m2.AddVariable(spec.NewVar("arrB", spec.Array(32, spec.BitVector(16))))
	for _, pair := range []struct {
		beh *spec.Behavior
		arr *spec.Variable
		off int64
	}{{a, arrA, 100}, {b, arrB, 200}} {
		i := pair.beh.AddVar("i", spec.Integer)
		pair.beh.Body = []spec.Stmt{
			&spec.For{Var: i, From: spec.Int(0), To: spec.Int(31), Body: []spec.Stmt{
				spec.AssignVar(spec.At(spec.Ref(pair.arr), spec.Ref(i)),
					spec.ToVec(spec.Add(spec.Ref(i), spec.Int(pair.off)), 16)),
			}},
		}
	}
	chA := sys.AddChannel(&spec.Channel{Name: "ca", Accessor: a, Var: arrA, Dir: spec.Write})
	chB := sys.AddChannel(&spec.Channel{Name: "cb", Accessor: b, Var: arrB, Dir: spec.Write})
	bus := &spec.Bus{Name: "HB", Channels: []*spec.Channel{chA, chB}, Width: 7}
	sys.Buses = append(sys.Buses, bus)
	if _, err := protogen.Generate(sys, bus, protogen.Config{Protocol: spec.FullHandshake, Arbitrate: true}); err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, sys, Config{})
	gotA := res.Final("m2", "arrA").(ArrayVal)
	gotB := res.Final("m2", "arrB").(ArrayVal)
	for i := 0; i < 32; i++ {
		if gotA.Elems[i].(VecVal).V.Uint64() != uint64(i+100) {
			t.Fatalf("arrA[%d] = %s, want %d", i, gotA.Elems[i], i+100)
		}
		if gotB.Elems[i].(VecVal).V.Uint64() != uint64(i+200) {
			t.Fatalf("arrB[%d] = %s, want %d", i, gotB.Elems[i], i+200)
		}
	}
}

// TestUnarbitratedConcurrentAccessCorrupts documents the hazard the
// arbiter removes: with concurrent accessors and no arbitration, the
// run either deadlocks or computes wrong values. (Either failure mode
// is acceptable — the point is that it does not silently succeed in
// general; this pins today's deterministic outcome.)
func TestUnarbitratedConcurrentAccessCorrupts(t *testing.T) {
	sys, bus := buildConcurrentPQ()
	if _, err := protogen.Generate(sys, bus, protogen.Config{Protocol: spec.FullHandshake}); err != nil {
		t.Fatal(err)
	}
	s, err := New(sys, Config{MaxClocks: 100000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		return // deadlock/timeout: hazard manifested
	}
	mem := res.Final("comp2", "MEM").(ArrayVal)
	ok := mem.Elems[5].(VecVal).V.Uint64() == 39 &&
		mem.Elems[60].(VecVal).V.Uint64() == 9 &&
		res.Final("comp2", "X").(VecVal).V.Uint64() == 32
	if ok {
		t.Skip("interleaving happened to be benign on this schedule")
	}
}

// buildHammer builds two accessors writing disjoint remote arrays over
// one shared bus, with no staggering.
func buildHammer(n int) (*spec.System, *spec.Bus) {
	sys := spec.NewSystem("hammer")
	m1 := sys.AddModule("m1")
	m2 := sys.AddModule("m2")
	var chans []*spec.Channel
	for bi := 0; bi < 2; bi++ {
		b := m1.AddBehavior(spec.NewBehavior([]string{"A", "Bb"}[bi]))
		arr := m2.AddVariable(spec.NewVar([]string{"arrA", "arrB"}[bi], spec.Array(n, spec.BitVector(16))))
		i := b.AddVar("i", spec.Integer)
		off := int64(100 * (bi + 1))
		b.Body = []spec.Stmt{
			&spec.For{Var: i, From: spec.Int(0), To: spec.Int(int64(n - 1)), Body: []spec.Stmt{
				spec.AssignVar(spec.At(spec.Ref(arr), spec.Ref(i)),
					spec.ToVec(spec.Add(spec.Ref(i), spec.Int(off)), 16)),
			}},
		}
		chans = append(chans, sys.AddChannel(&spec.Channel{
			Name: []string{"ca", "cb"}[bi], Accessor: b, Var: arr, Dir: spec.Write,
		}))
	}
	bus := &spec.Bus{Name: "HB", Channels: chans, Width: 8}
	sys.Buses = append(sys.Buses, bus)
	return sys, bus
}

// TestRoundRobinArbiterCorrectAndFair compares the two generated
// arbiter policies under symmetric load: both must compute correct
// results; round-robin must finish the two accessors closer together
// than (or as close as) fixed priority, which structurally favors
// accessor 0.
func TestRoundRobinArbiterCorrectAndFair(t *testing.T) {
	gap := func(policy protogen.ArbiterPolicy) int64 {
		sys, bus := buildHammer(24)
		if _, err := protogen.Generate(sys, bus, protogen.Config{
			Protocol: spec.FullHandshake, Arbitrate: true, ArbiterPolicy: policy,
		}); err != nil {
			t.Fatal(err)
		}
		res := mustRun(t, sys, Config{})
		arrA := res.Final("m2", "arrA").(ArrayVal)
		arrB := res.Final("m2", "arrB").(ArrayVal)
		for i := 0; i < 24; i++ {
			if arrA.Elems[i].(VecVal).V.Uint64() != uint64(i+100) ||
				arrB.Elems[i].(VecVal).V.Uint64() != uint64(i+200) {
				t.Fatalf("policy %s: wrong data at %d", policy, i)
			}
		}
		d := res.ProcessEnd["A"] - res.ProcessEnd["Bb"]
		if d < 0 {
			d = -d
		}
		return d
	}
	prio := gap(protogen.PriorityArbiter)
	rr := gap(protogen.RoundRobinArbiter)
	if rr > prio {
		t.Errorf("round-robin completion gap (%d) worse than priority (%d)", rr, prio)
	}
	// Round-robin alternates strictly under symmetric load: the two
	// accessors finish within a couple of transactions of each other.
	if rr > 60 {
		t.Errorf("round-robin gap = %d clocks, not fair", rr)
	}
}
