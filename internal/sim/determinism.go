package sim

import (
	"fmt"

	"repro/internal/spec"
)

// VerifyDeterministic runs the system twice under configurations built
// by mkCfg and fails if the two runs diverge in any observable way:
// signal event streams, final clock, final variable values, or error
// outcome. The Config.Mutate and Config.Schedule hooks are documented
// as required-deterministic but nothing in the kernel can enforce that;
// this is the enforcement — a debug mode for tests and for validating
// counterexample replays (internal/verify).
//
// mkCfg is a factory, not a Config value, because hooks are often
// stateful (a fault injector counts events as it fires): replaying with
// the *same* hook closure would make the second run diverge for the
// wrong reason. Each invocation must return a freshly constructed,
// equivalent Config.
func VerifyDeterministic(sys *spec.System, mkCfg func() Config) error {
	a := recordRun(sys, mkCfg())
	b := recordRun(sys, mkCfg())
	if a.buildErr != "" || b.buildErr != "" {
		if a.buildErr != b.buildErr {
			return fmt.Errorf("sim: nondeterministic construction: %q vs %q", a.buildErr, b.buildErr)
		}
		return fmt.Errorf("sim: cannot verify determinism: %s", a.buildErr)
	}
	if a.err != b.err {
		return fmt.Errorf("sim: nondeterministic outcome: run 1 %s, run 2 %s", orOK(a.err), orOK(b.err))
	}
	for i := 0; i < len(a.events) && i < len(b.events); i++ {
		if a.events[i] != b.events[i] {
			return fmt.Errorf("sim: nondeterministic event stream at event %d: run 1 saw %s, run 2 saw %s",
				i, a.events[i], b.events[i])
		}
	}
	if len(a.events) != len(b.events) {
		return fmt.Errorf("sim: nondeterministic event stream: run 1 had %d events, run 2 had %d",
			len(a.events), len(b.events))
	}
	if a.clocks != b.clocks {
		return fmt.Errorf("sim: nondeterministic duration: %d clocks vs %d clocks", a.clocks, b.clocks)
	}
	for k, v := range a.finals {
		if b.finals[k] != v {
			return fmt.Errorf("sim: nondeterministic final value %s: %s vs %s", k, v, b.finals[k])
		}
	}
	if len(a.finals) != len(b.finals) {
		return fmt.Errorf("sim: nondeterministic finals: %d values vs %d", len(a.finals), len(b.finals))
	}
	return nil
}

type runTrace struct {
	events   []string
	clocks   int64
	finals   map[string]string
	err      string
	buildErr string
}

func recordRun(sys *spec.System, cfg Config) runTrace {
	var t runTrace
	prev := cfg.OnEvent
	cfg.OnEvent = func(now int64, sig *spec.Variable, val Value) {
		t.events = append(t.events, fmt.Sprintf("t=%d %s=%s", now, sig.Name, val))
		if prev != nil {
			prev(now, sig, val)
		}
	}
	s, err := New(sys, cfg)
	if err != nil {
		t.buildErr = err.Error()
		return t
	}
	res, err := s.Run()
	if err != nil {
		t.err = err.Error()
		return t
	}
	t.clocks = res.Clocks
	t.finals = make(map[string]string, len(res.Finals))
	for k, v := range res.Finals {
		t.finals[k] = v.String()
	}
	return t
}

func orOK(s string) string {
	if s == "" {
		return "succeeded"
	}
	return "failed: " + s
}
