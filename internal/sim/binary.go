package sim

// AppendBinary appends a compact, self-delimiting binary rendering of v
// to dst and returns the extended slice. It is the model checker's
// state-key codec: no intermediate strings, no fmt, one append stream.
//
// The contract is equivalence with the String renderings the legacy
// string keys were built from: for two values stored in the same slot
// (hence of the same specification type), the appended bytes are equal
// exactly when the String() renderings are equal. Deduplication over
// binary keys therefore partitions states identically to the string
// store it replaces — state counts cannot drift. In particular, array
// elements past index 8 are summarized by the element count alone,
// mirroring ArrayVal.String's tail truncation (the equivalence classes
// must match; a finer key would split states the string store merged).
//
// Each encoding starts with a kind tag, so values of different kinds
// landing in one slot (e.g. an integer overwritten by a vector) never
// alias, and fixed-width headers make the stream uniquely decodable —
// concatenations are equal iff they are equal componentwise.
func AppendBinary(dst []byte, v Value) []byte {
	switch v := v.(type) {
	case IntVal:
		return appendU64(append(dst, 'i'), uint64(v.V))
	case BoolVal:
		if v.V {
			return append(dst, 'b', 1)
		}
		return append(dst, 'b', 0)
	case VecVal:
		dst = appendU32(append(dst, 'v'), uint32(v.V.Width()))
		return v.V.AppendBytes(dst)
	case ArrayVal:
		dst = appendU32(append(dst, 'a'), uint32(len(v.Elems)))
		n := len(v.Elems)
		if n > arrayHeadElems {
			n = arrayHeadElems
		}
		for i := 0; i < n; i++ {
			dst = AppendBinary(dst, v.Elems[i])
		}
		return dst
	case RecordVal:
		dst = appendU32(append(dst, 'r'), uint32(len(v.Fields)))
		for _, f := range v.Fields {
			dst = AppendBinary(dst, f)
		}
		return dst
	}
	panic("sim: AppendBinary on unknown value kind")
}

// arrayHeadElems is how many leading array elements ArrayVal.String
// renders before summarizing the tail as "... N elems" (indices 0..8).
const arrayHeadElems = 9

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
