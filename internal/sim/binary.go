package sim

import (
	"fmt"

	"repro/internal/bits"
)

// AppendBinary appends a compact, self-delimiting binary rendering of v
// to dst and returns the extended slice. It is the model checker's
// state-key codec: no intermediate strings, no fmt, one append stream.
//
// The contract is equivalence with the String renderings the legacy
// string keys were built from: for two values stored in the same slot
// (hence of the same specification type), the appended bytes are equal
// exactly when the String() renderings are equal. Deduplication over
// binary keys therefore partitions states identically to the string
// store it replaces — state counts cannot drift. In particular, array
// elements past index 8 are summarized by the element count alone,
// mirroring ArrayVal.String's tail truncation (the equivalence classes
// must match; a finer key would split states the string store merged).
//
// Each encoding starts with a kind tag, so values of different kinds
// landing in one slot (e.g. an integer overwritten by a vector) never
// alias, and fixed-width headers make the stream uniquely decodable —
// concatenations are equal iff they are equal componentwise.
func AppendBinary(dst []byte, v Value) []byte {
	switch v := v.(type) {
	case IntVal:
		return appendU64(append(dst, 'i'), uint64(v.V))
	case BoolVal:
		if v.V {
			return append(dst, 'b', 1)
		}
		return append(dst, 'b', 0)
	case VecVal:
		dst = appendU32(append(dst, 'v'), uint32(v.V.Width()))
		return v.V.AppendBytes(dst)
	case ArrayVal:
		dst = appendU32(append(dst, 'a'), uint32(len(v.Elems)))
		n := len(v.Elems)
		if n > arrayHeadElems {
			n = arrayHeadElems
		}
		for i := 0; i < n; i++ {
			dst = AppendBinary(dst, v.Elems[i])
		}
		return dst
	case RecordVal:
		dst = appendU32(append(dst, 'r'), uint32(len(v.Fields)))
		for _, f := range v.Fields {
			dst = AppendBinary(dst, f)
		}
		return dst
	}
	panic("sim: AppendBinary on unknown value kind")
}

// arrayHeadElems is how many leading array elements ArrayVal.String
// renders before summarizing the tail as "... N elems" (indices 0..8).
const arrayHeadElems = 9

// AppendFullBinary is AppendBinary without the array-tail truncation:
// every array element is encoded, recursively. The rendering is not a
// dedup key (it splits states AppendBinary merges) — it exists so a
// value can be reconstructed exactly, and is the element codec for the
// tail stream AppendBinaryTails emits.
func AppendFullBinary(dst []byte, v Value) []byte {
	switch v := v.(type) {
	case IntVal, BoolVal, VecVal:
		return AppendBinary(dst, v)
	case ArrayVal:
		dst = appendU32(append(dst, 'a'), uint32(len(v.Elems)))
		for _, e := range v.Elems {
			dst = AppendFullBinary(dst, e)
		}
		return dst
	case RecordVal:
		dst = appendU32(append(dst, 'r'), uint32(len(v.Fields)))
		for _, f := range v.Fields {
			dst = AppendFullBinary(dst, f)
		}
		return dst
	}
	panic("sim: AppendFullBinary on unknown value kind")
}

// AppendBinaryTails walks v in AppendBinary's traversal order and
// appends full encodings of exactly the elements AppendBinary omits
// (array elements past the head). The pair (AppendBinary,
// AppendBinaryTails) is therefore lossless: DecodeBinary rebuilds the
// value from the key stream, pulling omitted elements from the tail
// stream in the order this writer emitted them.
func AppendBinaryTails(dst []byte, v Value) []byte {
	switch v := v.(type) {
	case ArrayVal:
		n := len(v.Elems)
		if n > arrayHeadElems {
			n = arrayHeadElems
		}
		for i := 0; i < n; i++ {
			dst = AppendBinaryTails(dst, v.Elems[i])
		}
		for i := n; i < len(v.Elems); i++ {
			dst = AppendFullBinary(dst, v.Elems[i])
		}
	case RecordVal:
		for _, f := range v.Fields {
			dst = AppendBinaryTails(dst, f)
		}
	}
	return dst
}

// DecodeBinary decodes one value from a key stream produced by
// AppendBinary, consuming omitted array-tail elements from the extras
// stream produced by AppendBinaryTails. It returns the value and the
// unconsumed remainders of both streams. Every malformed input returns
// an error — the streams come off disk in the model checker's spill
// store, where a torn write must be detected, never misread.
func DecodeBinary(key, extras []byte) (Value, []byte, []byte, error) {
	if len(key) == 0 {
		return nil, nil, nil, fmt.Errorf("sim: decode: empty value stream")
	}
	switch tag := key[0]; tag {
	case 'i':
		if len(key) < 9 {
			return nil, nil, nil, fmt.Errorf("sim: decode: truncated int")
		}
		return IntVal{V: int64(leU64(key[1:]))}, key[9:], extras, nil
	case 'b':
		if len(key) < 2 {
			return nil, nil, nil, fmt.Errorf("sim: decode: truncated bool")
		}
		return BoolVal{V: key[1] != 0}, key[2:], extras, nil
	case 'v':
		if len(key) < 5 {
			return nil, nil, nil, fmt.Errorf("sim: decode: truncated vector header")
		}
		w := int(leU32(key[1:]))
		nb := (w + 7) / 8
		if len(key) < 5+nb {
			return nil, nil, nil, fmt.Errorf("sim: decode: truncated width-%d vector", w)
		}
		vec, err := bits.FromBytes(key[5:5+nb], w)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("sim: decode: %w", err)
		}
		return VecVal{V: vec}, key[5+nb:], extras, nil
	case 'a':
		if len(key) < 5 {
			return nil, nil, nil, fmt.Errorf("sim: decode: truncated array header")
		}
		n := int(leU32(key[1:]))
		if n > maxDecodeElems {
			return nil, nil, nil, fmt.Errorf("sim: decode: array length %d exceeds sanity bound", n)
		}
		key = key[5:]
		head := n
		if head > arrayHeadElems {
			head = arrayHeadElems
		}
		elems := make([]Value, n)
		var err error
		for i := 0; i < head; i++ {
			if elems[i], key, extras, err = DecodeBinary(key, extras); err != nil {
				return nil, nil, nil, err
			}
		}
		for i := head; i < n; i++ {
			if elems[i], extras, err = DecodeFullBinary(extras); err != nil {
				return nil, nil, nil, err
			}
		}
		return ArrayVal{Elems: elems}, key, extras, nil
	case 'r':
		if len(key) < 5 {
			return nil, nil, nil, fmt.Errorf("sim: decode: truncated record header")
		}
		n := int(leU32(key[1:]))
		if n > maxDecodeElems {
			return nil, nil, nil, fmt.Errorf("sim: decode: record arity %d exceeds sanity bound", n)
		}
		key = key[5:]
		fields := make([]Value, n)
		var err error
		for i := 0; i < n; i++ {
			if fields[i], key, extras, err = DecodeBinary(key, extras); err != nil {
				return nil, nil, nil, err
			}
		}
		return RecordVal{Fields: fields}, key, extras, nil
	default:
		return nil, nil, nil, fmt.Errorf("sim: decode: unknown value tag %q", tag)
	}
}

// DecodeFullBinary decodes one value from an AppendFullBinary stream
// (no omitted elements), returning the value and the remainder.
func DecodeFullBinary(b []byte) (Value, []byte, error) {
	if len(b) == 0 {
		return nil, nil, fmt.Errorf("sim: decode: empty full-value stream")
	}
	switch tag := b[0]; tag {
	case 'i', 'b', 'v':
		// DecodeBinary never touches extras for scalar kinds.
		v, rest, _, err := DecodeBinary(b, nil)
		return v, rest, err
	case 'a', 'r':
		if len(b) < 5 {
			return nil, nil, fmt.Errorf("sim: decode: truncated container header")
		}
		n := int(leU32(b[1:]))
		if n > maxDecodeElems {
			return nil, nil, fmt.Errorf("sim: decode: container arity %d exceeds sanity bound", n)
		}
		rest := b[5:]
		elems := make([]Value, n)
		var err error
		for i := 0; i < n; i++ {
			if elems[i], rest, err = DecodeFullBinary(rest); err != nil {
				return nil, nil, err
			}
		}
		if tag == 'a' {
			return ArrayVal{Elems: elems}, rest, nil
		}
		return RecordVal{Fields: elems}, rest, nil
	default:
		return nil, nil, fmt.Errorf("sim: decode: unknown value tag %q", tag)
	}
}

// maxDecodeElems bounds container arities the decoder will allocate
// for; a corrupt length field must fail cleanly, not OOM.
const maxDecodeElems = 1 << 20

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
