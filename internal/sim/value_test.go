package sim

import (
	"strings"
	"testing"

	"repro/internal/bits"
	"repro/internal/spec"
)

func TestZeroValues(t *testing.T) {
	cases := []struct {
		typ  spec.Type
		want Value
	}{
		{spec.Integer, IntVal{}},
		{spec.Bool, BoolVal{}},
		{spec.Bit, VecVal{V: bits.New(1)}},
		{spec.BitVector(8), VecVal{V: bits.New(8)}},
	}
	for _, c := range cases {
		if got := ZeroValue(c.typ); !got.Equal(c.want) {
			t.Errorf("ZeroValue(%s) = %s", c.typ, got)
		}
	}
	arr := ZeroValue(spec.Array(3, spec.Integer)).(ArrayVal)
	if len(arr.Elems) != 3 || !arr.Elems[2].Equal(IntVal{}) {
		t.Errorf("array zero = %s", arr)
	}
	rec := ZeroValue(spec.RecordType{Name: "R", Fields: []spec.Field{
		{Name: "A", Type: spec.Bit}, {Name: "D", Type: spec.BitVector(4)},
	}}).(RecordVal)
	if len(rec.Fields) != 2 || rec.FieldIndex("D") != 1 {
		t.Errorf("record zero = %s", rec)
	}
	if rec.FieldIndex("NOPE") != -1 {
		t.Error("FieldIndex ghost")
	}
}

func TestValueCopyIndependence(t *testing.T) {
	arr := ZeroValue(spec.Array(4, spec.BitVector(4))).(ArrayVal)
	cp := arr.Copy().(ArrayVal)
	cp.Elems[0] = VecVal{V: bits.MustParse("1111")}
	if arr.Elems[0].Equal(cp.Elems[0]) {
		t.Fatal("Copy aliases array elements")
	}
	rec := ZeroValue(spec.RecordType{Name: "R", Fields: []spec.Field{
		{Name: "D", Type: spec.BitVector(4)},
	}}).(RecordVal)
	rc := rec.Copy().(RecordVal)
	rc.Fields[0] = VecVal{V: bits.MustParse("1010")}
	if rec.Fields[0].Equal(rc.Fields[0]) {
		t.Fatal("Copy aliases record fields")
	}
}

func TestValueEqualityAcrossKinds(t *testing.T) {
	if (IntVal{V: 1}).Equal(BoolVal{V: true}) {
		t.Error("int == bool")
	}
	if (VecVal{V: bits.New(4)}).Equal(VecVal{V: bits.New(5)}) {
		t.Error("different widths equal")
	}
	a := ArrayVal{Elems: []Value{IntVal{V: 1}}}
	b := ArrayVal{Elems: []Value{IntVal{V: 2}}}
	if a.Equal(b) {
		t.Error("different arrays equal")
	}
	if a.Equal(ArrayVal{Lo: 1, Elems: []Value{IntVal{V: 1}}}) {
		t.Error("different Lo equal")
	}
}

func TestValueStrings(t *testing.T) {
	if s := (VecVal{V: bits.MustParse("1010")}).String(); s != `"1010"` {
		t.Errorf("vec string = %s", s)
	}
	if s := (IntVal{V: -3}).String(); s != "-3" {
		t.Errorf("int string = %s", s)
	}
	big := ZeroValue(spec.Array(64, spec.Integer)).(ArrayVal)
	if s := big.String(); !strings.Contains(s, "64 elems") {
		t.Errorf("large array not truncated: %s", s)
	}
}

func TestCoercions(t *testing.T) {
	if v := asVec(IntVal{V: -1}, 4); v.String() != "1111" {
		t.Errorf("asVec(-1,4) = %s", v)
	}
	if v := asVec(VecVal{V: bits.MustParse("101")}, 5); v.String() != "00101" {
		t.Errorf("asVec widen = %s", v)
	}
	if v := asVec(BoolVal{V: true}, 2); v.String() != "01" {
		t.Errorf("asVec(bool) = %s", v)
	}
	if asInt(VecVal{V: bits.MustParse("1111111")}) != 127 {
		t.Error("asInt treats address vectors as signed")
	}
	if asInt(BoolVal{V: true}) != 1 || asInt(IntVal{V: 9}) != 9 {
		t.Error("asInt basics")
	}
	if !asBool(VecVal{V: bits.MustParse("10")}) || asBool(VecVal{V: bits.New(3)}) {
		t.Error("asBool vec")
	}
	if !asBool(IntVal{V: 2}) || asBool(IntVal{}) {
		t.Error("asBool int")
	}
}

func TestCoercePanicsOnComposite(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	asInt(ArrayVal{})
}

func TestCoerceToTypeLeaves(t *testing.T) {
	if v := Coerce(VecVal{V: bits.MustParse("11111111")}, spec.Integer); v.(IntVal).V != 255 {
		t.Errorf("vec->int = %s", v)
	}
	if v := Coerce(IntVal{V: 300}, spec.BitVector(8)); v.(VecVal).V.Uint64() != 44 {
		t.Errorf("int->vec trunc = %s", v)
	}
	if v := Coerce(IntVal{V: 0}, spec.Bool); v.(BoolVal).V {
		t.Error("int->bool")
	}
}
