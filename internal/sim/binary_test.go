package sim

import (
	"bytes"
	"testing"

	"repro/internal/bits"
	"repro/internal/spec"
)

func vec(width int, val uint64) VecVal {
	return VecVal{V: bits.FromUint(val, width)}
}

// TestAppendBinaryMatchesStringEquivalence pins the codec contract: for
// values of one specification type, AppendBinary renderings are equal
// exactly when the String renderings are equal — including the
// deliberate conflation of array tails past index 8, which String
// summarizes and the binary codec must therefore summarize too.
func TestAppendBinaryMatchesStringEquivalence(t *testing.T) {
	bigArr := func(tweak int, delta uint64) ArrayVal {
		elems := make([]Value, 12)
		for i := range elems {
			elems[i] = vec(8, uint64(i))
		}
		if tweak >= 0 {
			elems[tweak] = vec(8, uint64(tweak)+delta)
		}
		return ArrayVal{Elems: elems}
	}
	recT := spec.RecordType{Name: "R", Fields: []spec.Field{
		{Name: "A", Type: spec.BitVector(4)}, {Name: "B", Type: spec.Bool},
	}}
	rec := func(a uint64, b bool) RecordVal {
		return RecordVal{Type: recT, Fields: []Value{vec(4, a), BoolVal{V: b}}}
	}
	// Groups of same-type values; every pair within a group must agree
	// between String equality and binary equality.
	groups := [][]Value{
		{IntVal{V: 0}, IntVal{V: 1}, IntVal{V: -1}, IntVal{V: 1}},
		{BoolVal{V: true}, BoolVal{V: false}, BoolVal{V: true}},
		{vec(16, 0), vec(16, 1), vec(16, 0xffff), vec(16, 1)},
		{bigArr(-1, 0), bigArr(3, 7), bigArr(8, 7), // head differences split
			bigArr(9, 7), bigArr(11, 7), bigArr(-1, 0)}, // tail differences conflate
		{rec(1, true), rec(1, false), rec(2, true), rec(1, true)},
	}
	for gi, g := range groups {
		for i, a := range g {
			for j, b := range g {
				sEq := a.String() == b.String()
				bEq := bytes.Equal(AppendBinary(nil, a), AppendBinary(nil, b))
				if sEq != bEq {
					t.Errorf("group %d (%s vs %s): String equal=%v, binary equal=%v",
						gi, a, b, sEq, bEq)
				}
				_ = i
				_ = j
			}
		}
	}

	// The tail conflation, spelled out: length 12 arrays differing only
	// at index 10 render identically both ways.
	if got, want := bigArr(10, 7).String(), bigArr(-1, 0).String(); got != want {
		t.Fatalf("String no longer conflates array tails: %q vs %q — update the codec contract", got, want)
	}
	if !bytes.Equal(AppendBinary(nil, bigArr(10, 7)), AppendBinary(nil, bigArr(-1, 0))) {
		t.Fatal("binary codec splits array-tail states that String conflates")
	}
	// ...while the element count still separates arrays of different
	// lengths whose printed heads agree.
	short := ArrayVal{Elems: bigArr(-1, 0).Elems[:10]}
	if bytes.Equal(AppendBinary(nil, short), AppendBinary(nil, bigArr(-1, 0))) {
		t.Fatal("binary codec conflates arrays of different lengths")
	}
}

// TestAppendBinaryAppends ensures dst is extended in place, not
// replaced — callers accumulate many values into one arena.
func TestAppendBinaryAppends(t *testing.T) {
	dst := AppendBinary(nil, IntVal{V: 7})
	n := len(dst)
	dst = AppendBinary(dst, BoolVal{V: true})
	if !bytes.Equal(dst[:n], AppendBinary(nil, IntVal{V: 7})) {
		t.Fatal("second append clobbered earlier bytes")
	}
	if !bytes.Equal(dst[n:], AppendBinary(nil, BoolVal{V: true})) {
		t.Fatal("appended encoding differs from standalone encoding")
	}
}

// TestVectorAppendBytes pins the bits-level primitive: equal-width
// vectors append equal bytes iff Equal, and the byte count is exactly
// ceil(width/8) — state keys are hashed and compared millions of
// times, so the codec must not pad to whole words.
func TestVectorAppendBytes(t *testing.T) {
	a := bits.FromUint(0x0123456789abcdef, 100)
	b := bits.FromUint(0x0123456789abcdee, 100)
	ab, bb := a.AppendBytes(nil), b.AppendBytes(nil)
	if len(ab) != 13 {
		t.Fatalf("width 100 appended %d bytes, want 13", len(ab))
	}
	if bytes.Equal(ab, bb) {
		t.Fatal("distinct vectors appended equal bytes")
	}
	if !bytes.Equal(ab, bits.FromUint(0x0123456789abcdef, 100).AppendBytes(nil)) {
		t.Fatal("equal vectors appended distinct bytes")
	}
}
