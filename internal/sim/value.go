// Package sim implements a discrete-event simulator for specification IR
// systems (internal/spec): behaviors run as concurrent processes over
// shared variables and signals with VHDL-style delta-cycle semantics.
// Protocol generation's output — bus records, handshake procedures,
// variable processes — executes directly on this simulator, which is how
// the reproduction *demonstrates* the paper's claim that the refined
// specification is simulatable and functionally equivalent to the
// original.
//
// Semantics notes (divergences from strict VHDL are deliberate and safe
// for the generated protocols):
//
//   - "wait until cond" checks the condition immediately: if it already
//     holds the process continues without suspending. Strict VHDL
//     suspends until the next event; the immediate check makes
//     level-sensitive handshakes robust against request strobes that were
//     already asserted when the waiter arrived (see internal/protogen).
//   - Signal assignments take effect at the next delta cycle; an event is
//     generated only if the value changes. Several assignments to the
//     same signal within one delta are applied in process run order, last
//     write winning (the flow guarantees a single driver per wire at any
//     time, so this models resolution without a resolution function).
//   - Assignment semantics follow the *target*: assigning to a signal is
//     always delta-delayed, assigning to a variable always immediate,
//     regardless of which of ":="/"<=" the source used. The paper's
//     examples use "<=" on plain variables; this rule makes both
//     readings behave identically.
package sim

import (
	"fmt"
	"strings"

	"repro/internal/bits"
	"repro/internal/spec"
)

// Value is a runtime value: integer, boolean, bit vector, array or
// record.
type Value interface {
	// Equal reports deep equality with another value.
	Equal(Value) bool
	// Copy returns an independent deep copy.
	Copy() Value
	String() string
}

// IntVal is an integer value.
type IntVal struct{ V int64 }

// BoolVal is a boolean value.
type BoolVal struct{ V bool }

// VecVal is a bit or bit-vector value.
type VecVal struct{ V bits.Vector }

// ArrayVal is an array value with element storage.
type ArrayVal struct {
	Lo    int
	Elems []Value
}

// RecordVal is a record value; field order follows the record type.
type RecordVal struct {
	Type   spec.RecordType
	Fields []Value
}

func (v IntVal) Equal(o Value) bool {
	w, ok := o.(IntVal)
	return ok && w.V == v.V
}
func (v IntVal) Copy() Value    { return v }
func (v IntVal) String() string { return fmt.Sprintf("%d", v.V) }

func (v BoolVal) Equal(o Value) bool {
	w, ok := o.(BoolVal)
	return ok && w.V == v.V
}
func (v BoolVal) Copy() Value    { return v }
func (v BoolVal) String() string { return fmt.Sprintf("%t", v.V) }

func (v VecVal) Equal(o Value) bool {
	w, ok := o.(VecVal)
	return ok && w.V.Equal(v.V)
}
func (v VecVal) Copy() Value    { return VecVal{V: v.V.Clone()} }
func (v VecVal) String() string { return `"` + v.V.String() + `"` }

func (v ArrayVal) Equal(o Value) bool {
	w, ok := o.(ArrayVal)
	if !ok || len(w.Elems) != len(v.Elems) || w.Lo != v.Lo {
		return false
	}
	for i := range v.Elems {
		if !v.Elems[i].Equal(w.Elems[i]) {
			return false
		}
	}
	return true
}

func (v ArrayVal) Copy() Value {
	elems := make([]Value, len(v.Elems))
	for i, e := range v.Elems {
		elems[i] = e.Copy()
	}
	return ArrayVal{Lo: v.Lo, Elems: elems}
}

func (v ArrayVal) String() string {
	var b strings.Builder
	b.WriteString("(")
	for i, e := range v.Elems {
		if i > 0 {
			b.WriteString(", ")
		}
		if i > 8 {
			fmt.Fprintf(&b, "... %d elems", len(v.Elems))
			break
		}
		b.WriteString(e.String())
	}
	b.WriteString(")")
	return b.String()
}

func (v RecordVal) Equal(o Value) bool {
	w, ok := o.(RecordVal)
	if !ok || len(w.Fields) != len(v.Fields) {
		return false
	}
	for i := range v.Fields {
		if !v.Fields[i].Equal(w.Fields[i]) {
			return false
		}
	}
	return true
}

func (v RecordVal) Copy() Value {
	fields := make([]Value, len(v.Fields))
	for i, f := range v.Fields {
		fields[i] = f.Copy()
	}
	return RecordVal{Type: v.Type, Fields: fields}
}

func (v RecordVal) String() string {
	var b strings.Builder
	b.WriteString("{")
	for i, f := range v.Fields {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s: %s", v.Type.Fields[i].Name, f)
	}
	b.WriteString("}")
	return b.String()
}

// FieldIndex returns the index of the named field, or -1.
func (v RecordVal) FieldIndex(name string) int {
	for i, f := range v.Type.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// ZeroValue returns the zero value for a specification type: 0, false,
// all-zero vectors, zero-filled arrays and records.
func ZeroValue(t spec.Type) Value {
	switch t := t.(type) {
	case spec.BitType:
		return VecVal{V: bits.New(1)}
	case spec.BoolType:
		return BoolVal{}
	case spec.IntegerType:
		return IntVal{}
	case spec.BitVectorType:
		return VecVal{V: bits.New(t.Width)}
	case spec.ArrayType:
		elems := make([]Value, t.Length)
		for i := range elems {
			elems[i] = ZeroValue(t.Elem)
		}
		return ArrayVal{Lo: t.Lo, Elems: elems}
	case spec.RecordType:
		fields := make([]Value, len(t.Fields))
		for i, f := range t.Fields {
			fields[i] = ZeroValue(f.Type)
		}
		return RecordVal{Type: t, Fields: fields}
	}
	panic(fmt.Sprintf("sim: no zero value for type %v", t))
}

// asVec coerces a value to a bit vector of the given width (integers are
// two's-complement encoded; vectors are resized).
func asVec(v Value, width int) bits.Vector {
	switch v := v.(type) {
	case VecVal:
		if v.V.Width() == width {
			return v.V
		}
		return v.V.Resize(width)
	case IntVal:
		return bits.FromInt(v.V, width)
	case BoolVal:
		x := bits.New(width)
		if v.V && width > 0 {
			x = x.SetBit(0, true)
		}
		return x
	}
	panic(fmt.Sprintf("sim: cannot coerce %s to bit_vector(%d)", v, width))
}

// asInt coerces a value to an integer; vectors are interpreted unsigned
// (matching conv_integer on addresses).
func asInt(v Value) int64 {
	switch v := v.(type) {
	case IntVal:
		return v.V
	case VecVal:
		return int64(v.V.Uint64())
	case BoolVal:
		if v.V {
			return 1
		}
		return 0
	}
	panic(fmt.Sprintf("sim: cannot coerce %s to integer", v))
}

// asBool coerces a value to boolean; a 1-bit vector is true when its bit
// is set.
func asBool(v Value) bool {
	switch v := v.(type) {
	case BoolVal:
		return v.V
	case VecVal:
		return !v.V.IsZero()
	case IntVal:
		return v.V != 0
	}
	panic(fmt.Sprintf("sim: cannot coerce %s to boolean", v))
}
