package sim

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/estimate"
	"repro/internal/protogen"
	"repro/internal/spec"
)

// batchTrace captures everything a run exposes, rendered to strings so
// traces from the two kernels compare directly. Steps is deliberately
// absent: the batch kernel counts compiled instructions, the classic
// kernel counts source statements (see batch.go).
type batchTrace struct {
	events     []string
	clocks     int64
	deltas     int64
	finals     map[string]string
	sigEvents  map[string]int64
	processEnd map[string]int64
	err        string
	buildErr   string
}

func traceClassic(sys *spec.System, cfg Config) batchTrace {
	var tr batchTrace
	cfg.OnEvent = func(now int64, sig *spec.Variable, val Value) {
		tr.events = append(tr.events, fmt.Sprintf("t=%d %s=%s", now, sig.Name, val))
	}
	s, err := New(sys, cfg)
	if err != nil {
		tr.buildErr = err.Error()
		return tr
	}
	res, err := s.Run()
	tr.fill(res, err)
	return tr
}

func traceEngine(e *Engine, cfg Config) batchTrace {
	var tr batchTrace
	cfg.OnEvent = func(now int64, sig *spec.Variable, val Value) {
		tr.events = append(tr.events, fmt.Sprintf("t=%d %s=%s", now, sig.Name, val))
	}
	res, err := e.Run(cfg)
	tr.fill(res, err)
	return tr
}

func (tr *batchTrace) fill(res *Result, err error) {
	if err != nil {
		tr.err = err.Error()
		return
	}
	tr.clocks = res.Clocks
	tr.deltas = res.Deltas
	tr.finals = make(map[string]string, len(res.Finals))
	for k, v := range res.Finals {
		tr.finals[k] = v.String()
	}
	tr.sigEvents = res.SignalEvents
	tr.processEnd = res.ProcessEnd
}

func diffTraces(a, b batchTrace) string {
	if a.buildErr != b.buildErr {
		return fmt.Sprintf("build: %q vs %q", a.buildErr, b.buildErr)
	}
	if a.err != b.err {
		return fmt.Sprintf("outcome: %q vs %q", a.err, b.err)
	}
	for i := 0; i < len(a.events) && i < len(b.events); i++ {
		if a.events[i] != b.events[i] {
			return fmt.Sprintf("event %d: %q vs %q", i, a.events[i], b.events[i])
		}
	}
	if len(a.events) != len(b.events) {
		return fmt.Sprintf("event count: %d vs %d", len(a.events), len(b.events))
	}
	if a.clocks != b.clocks {
		return fmt.Sprintf("clocks: %d vs %d", a.clocks, b.clocks)
	}
	if a.deltas != b.deltas {
		return fmt.Sprintf("deltas: %d vs %d", a.deltas, b.deltas)
	}
	for _, pair := range []struct {
		name string
		x, y map[string]string
	}{{"finals", a.finals, b.finals}} {
		for k, v := range pair.x {
			if pair.y[k] != v {
				return fmt.Sprintf("%s[%s]: %q vs %q", pair.name, k, v, pair.y[k])
			}
		}
		if len(pair.x) != len(pair.y) {
			return fmt.Sprintf("%s size: %d vs %d", pair.name, len(pair.x), len(pair.y))
		}
	}
	for _, pair := range []struct {
		name string
		x, y map[string]int64
	}{{"signal events", a.sigEvents, b.sigEvents}, {"process end", a.processEnd, b.processEnd}} {
		for k, v := range pair.x {
			if pair.y[k] != v {
				return fmt.Sprintf("%s[%s]: %d vs %d", pair.name, k, v, pair.y[k])
			}
		}
		if len(pair.x) != len(pair.y) {
			return fmt.Sprintf("%s size: %d vs %d", pair.name, len(pair.x), len(pair.y))
		}
	}
	return ""
}

// checkEquivalent runs the system under both kernels (building cfg
// fresh per run, since hooks may be stateful) and fails on the first
// observable difference. It also runs the engine a second time on the
// same pooled runner to pin the reset invariant.
func checkEquivalent(t *testing.T, sys *spec.System, mkCfg func() Config) {
	t.Helper()
	e, err := NewEngine(sys)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	classic := traceClassic(sys, mkCfg())
	pooled := traceEngine(e, mkCfg())
	if d := diffTraces(classic, pooled); d != "" {
		t.Fatalf("pooled kernel diverges from classic: %s", d)
	}
	again := traceEngine(e, mkCfg())
	if d := diffTraces(classic, again); d != "" {
		t.Fatalf("second pooled run diverges (reset leak): %s", d)
	}
}

// batchScenarios exercises every construct the compiler lowers.
func batchScenarios() map[string]*spec.System {
	scenarios := make(map[string]*spec.System)

	{
		// Straight-line arithmetic into a shared variable.
		sys := spec.NewSystem("t")
		m := sys.AddModule("m")
		b := m.AddBehavior(spec.NewBehavior("B"))
		out := m.AddVariable(spec.NewVar("out", spec.Integer))
		x := b.AddVar("x", spec.Integer)
		b.Body = []spec.Stmt{
			spec.AssignVar(spec.Ref(x), spec.Int(5)),
			spec.AssignVar(spec.Ref(x), spec.Add(spec.Ref(x), spec.Int(37))),
			spec.AssignVar(spec.Ref(out), spec.Ref(x)),
		}
		scenarios["straight-line"] = sys
	}
	{
		// For over an array, loop variable clobbered by the body (the
		// iteration count must not change), nested if/elif/else, while
		// with exit.
		sys := spec.NewSystem("t")
		m := sys.AddModule("m")
		b := m.AddBehavior(spec.NewBehavior("B"))
		mem := m.AddVariable(spec.NewVar("mem", spec.Array(8, spec.Integer)))
		tag := m.AddVariable(spec.NewVar("tag", spec.Integer))
		n := m.AddVariable(spec.NewVar("n", spec.Integer))
		i := b.AddVar("i", spec.Integer)
		b.Body = []spec.Stmt{
			&spec.For{Var: i, From: spec.Int(0), To: spec.Int(7), Body: []spec.Stmt{
				spec.AssignVar(spec.At(spec.Ref(mem), spec.Ref(i)), spec.Mul(spec.Ref(i), spec.Ref(i))),
				spec.AssignVar(spec.Ref(i), spec.Int(99)), // clobber
			}},
			&spec.If{
				Cond: spec.Eq(spec.Ref(i), spec.Int(99)),
				Then: []spec.Stmt{spec.AssignVar(spec.Ref(tag), spec.Int(1))},
				Elifs: []spec.ElseIf{{
					Cond: spec.Eq(spec.Ref(i), spec.Int(7)),
					Body: []spec.Stmt{spec.AssignVar(spec.Ref(tag), spec.Int(2))},
				}},
				Else: []spec.Stmt{spec.AssignVar(spec.Ref(tag), spec.Int(3))},
			},
			&spec.While{Cond: spec.Le(spec.Ref(n), spec.Int(100)), Body: []spec.Stmt{
				spec.AssignVar(spec.Ref(n), spec.Add(spec.Ref(n), spec.Int(7))),
				&spec.If{Cond: spec.Gt(spec.Ref(n), spec.Int(50)), Then: []spec.Stmt{&spec.Exit{}}},
			}},
		}
		scenarios["loops-and-branches"] = sys
	}
	{
		// Procedures: in/out/inout copy-in/out, locals, exit directly in a
		// procedure body (the interpreter treats it as return: copy-out
		// still runs), return from inside a loop in a procedure.
		sys := spec.NewSystem("t")
		m := sys.AddModule("m")
		b := m.AddBehavior(spec.NewBehavior("B"))
		r1 := m.AddVariable(spec.NewVar("r1", spec.Integer))
		r2 := m.AddVariable(spec.NewVar("r2", spec.Integer))

		pa := spec.NewVar("a", spec.Integer)
		pb := spec.NewVar("bb", spec.Integer)
		tmp := spec.NewVar("tmp", spec.Integer)
		proc := &spec.Procedure{
			Name:   "addmul",
			Params: []spec.Param{{Var: pa, Mode: spec.ModeIn}, {Var: pb, Mode: spec.ModeInOut}},
			Locals: []*spec.Variable{tmp},
			Body: []spec.Stmt{
				spec.AssignVar(spec.Ref(tmp), spec.Mul(spec.Ref(pa), spec.Int(2))),
				&spec.If{Cond: spec.Gt(spec.Ref(pa), spec.Int(10)), Then: []spec.Stmt{
					spec.AssignVar(spec.Ref(pb), spec.Int(-1)),
					&spec.Exit{}, // unwinds the call, copy-out still runs
				}},
				spec.AssignVar(spec.Ref(pb), spec.Add(spec.Ref(pb), spec.Ref(tmp))),
			},
		}
		qx := spec.NewVar("x", spec.Integer)
		k := spec.NewVar("k", spec.Integer)
		proc2 := &spec.Procedure{
			Name:   "findfirst",
			Params: []spec.Param{{Var: qx, Mode: spec.ModeOut}},
			Body: []spec.Stmt{
				&spec.For{Var: k, From: spec.Int(1), To: spec.Int(100), Body: []spec.Stmt{
					&spec.If{Cond: spec.Ge(spec.Mul(spec.Ref(k), spec.Ref(k)), spec.Int(30)), Then: []spec.Stmt{
						spec.AssignVar(spec.Ref(qx), spec.Ref(k)),
						&spec.Return{},
					}},
				}},
			},
		}
		b.Procedures = []*spec.Procedure{proc, proc2}
		b.Body = []spec.Stmt{
			spec.AssignVar(spec.Ref(r1), spec.Int(3)),
			&spec.Call{Proc: proc, Args: []spec.Expr{spec.Int(4), spec.Ref(r1)}},  // r1 = 3+8
			&spec.Call{Proc: proc, Args: []spec.Expr{spec.Int(11), spec.Ref(r1)}}, // exit path: r1 = -1
			&spec.Call{Proc: proc2, Args: []spec.Expr{spec.Ref(r2)}},              // r2 = 6
		}
		scenarios["procedures"] = sys
	}
	{
		// Signal delta semantics plus timed waits.
		sys := spec.NewSystem("t")
		m := sys.AddModule("m")
		b := m.AddBehavior(spec.NewBehavior("B"))
		sig := sys.AddGlobal(spec.NewSignal("S", spec.Integer))
		seen := m.AddVariable(spec.NewVar("seen", spec.Integer))
		after := m.AddVariable(spec.NewVar("after", spec.Integer))
		b.Body = []spec.Stmt{
			spec.AssignSig(spec.Ref(sig), spec.Int(7)),
			spec.AssignVar(spec.Ref(seen), spec.Ref(sig)), // still 0
			spec.WaitFor(1),
			spec.AssignVar(spec.Ref(after), spec.Ref(sig)), // now 7
			spec.WaitFor(41),
		}
		scenarios["delta-semantics"] = sys
	}
	{
		// Two-process four-phase handshake: wait until, wake ordering,
		// record of events.
		sys := spec.NewSystem("t")
		m := sys.AddModule("m")
		m2 := sys.AddModule("m2")
		prod := m.AddBehavior(spec.NewBehavior("prod"))
		cons := m2.AddBehavior(spec.NewBehavior("cons"))
		req := sys.AddGlobal(spec.NewSignal("REQ", spec.Bit))
		ack := sys.AddGlobal(spec.NewSignal("ACK", spec.Bit))
		data := sys.AddGlobal(spec.NewSignal("DATA", spec.BitVector(8)))
		sum := m2.AddVariable(spec.NewVar("sum", spec.Integer))
		one, zero := spec.VecString("1"), spec.VecString("0")
		i := prod.AddVar("i", spec.Integer)
		prod.Body = []spec.Stmt{
			&spec.For{Var: i, From: spec.Int(1), To: spec.Int(3), Body: []spec.Stmt{
				spec.AssignSig(spec.Ref(data), spec.ToVec(spec.Ref(i), 8)),
				spec.AssignSig(spec.Ref(req), one),
				spec.WaitUntil(spec.Eq(spec.Ref(ack), one)),
				spec.AssignSig(spec.Ref(req), zero),
				spec.WaitUntil(spec.Eq(spec.Ref(ack), zero)),
			}},
		}
		j := cons.AddVar("j", spec.Integer)
		cons.Body = []spec.Stmt{
			&spec.For{Var: j, From: spec.Int(1), To: spec.Int(3), Body: []spec.Stmt{
				spec.WaitUntil(spec.Eq(spec.Ref(req), one)),
				spec.AssignVar(spec.Ref(sum), spec.Add(spec.Ref(sum), spec.ToInt(spec.Ref(data)))),
				spec.AssignSig(spec.Ref(ack), one),
				spec.WaitUntil(spec.Eq(spec.Ref(req), zero)),
				spec.AssignSig(spec.Ref(ack), zero),
			}},
		}
		scenarios["handshake"] = sys
	}
	{
		// Bounded waits: both the expired and the satisfied TimedOut path.
		sys := spec.NewSystem("t")
		m := sys.AddModule("m")
		b := m.AddBehavior(spec.NewBehavior("B"))
		src := m.AddBehavior(spec.NewBehavior("SRC"))
		sig := sys.AddGlobal(spec.NewSignal("S", spec.Bit))
		first := m.AddVariable(spec.NewVar("first", spec.Integer))
		second := m.AddVariable(spec.NewVar("second", spec.Integer))
		tmo := b.AddVar("tmo", spec.Bool)
		record := func(dst *spec.Variable) spec.Stmt {
			return &spec.If{
				Cond: spec.Ref(tmo),
				Then: []spec.Stmt{spec.AssignVar(spec.Ref(dst), spec.Int(1))},
				Else: []spec.Stmt{spec.AssignVar(spec.Ref(dst), spec.Int(2))},
			}
		}
		b.Body = []spec.Stmt{
			spec.WaitUntilFor(spec.Eq(spec.Ref(sig), spec.VecString("1")), 10, tmo),
			record(first),
			spec.WaitUntilFor(spec.Eq(spec.Ref(sig), spec.VecString("1")), 1000, tmo),
			record(second),
		}
		src.Body = []spec.Stmt{
			spec.WaitFor(20),
			spec.AssignSig(spec.Ref(sig), spec.VecString("1")),
		}
		scenarios["timed-out-flag"] = sys
	}
	{
		// Immediate-check wait until (no suspend) and wait on.
		sys := spec.NewSystem("t")
		m := sys.AddModule("m")
		b := m.AddBehavior(spec.NewBehavior("B"))
		w := m.AddBehavior(spec.NewBehavior("WATCH"))
		sig := sys.AddGlobal(spec.NewSignal("S", spec.Bit))
		okv := m.AddVariable(spec.NewVar("ok", spec.Integer))
		wok := m.AddVariable(spec.NewVar("wok", spec.Integer))
		b.Body = []spec.Stmt{
			spec.AssignSig(spec.Ref(sig), spec.VecString("1")),
			spec.WaitFor(1),
			spec.WaitUntil(spec.Eq(spec.Ref(sig), spec.VecString("1"))), // already true
			spec.AssignVar(spec.Ref(okv), spec.Int(1)),
		}
		w.Body = []spec.Stmt{
			spec.WaitOn(sig),
			spec.AssignVar(spec.Ref(wok), spec.Int(1)),
		}
		scenarios["immediate-and-on"] = sys
	}
	{
		// Slices and record-signal field updates in one delta.
		sys := spec.NewSystem("t")
		m := sys.AddModule("m")
		b := m.AddBehavior(spec.NewBehavior("B"))
		rec := spec.RecordType{Name: "wires", Fields: []spec.Field{
			{Name: "A", Type: spec.Bit},
			{Name: "D", Type: spec.BitVector(8)},
		}}
		sig := sys.AddGlobal(spec.NewSignal("S", rec))
		got := m.AddVariable(spec.NewVar("got", spec.BitVector(8)))
		vec := m.AddVariable(spec.NewVar("vec", spec.BitVector(16)))
		b.Body = []spec.Stmt{
			spec.AssignSig(spec.FieldOf(spec.Ref(sig), "A"), spec.VecString("1")),
			spec.AssignSig(spec.FieldOf(spec.Ref(sig), "D"), spec.ToVec(spec.Int(0xAB), 8)),
			spec.WaitFor(1),
			spec.AssignVar(spec.Ref(got), spec.FieldOf(spec.Ref(sig), "D")),
			spec.AssignVar(spec.Ref(vec), spec.ToVec(spec.Int(0xF0F0), 16)),
			spec.AssignVar(spec.SliceBits(spec.Ref(vec), 7, 0), spec.ToVec(spec.Int(0x0F), 8)),
		}
		scenarios["records-and-slices"] = sys
	}
	{
		// PQ, the paper's Fig. 3 system (unrefined: timed stagger only).
		sys, _ := buildPQ()
		scenarios["pq-original"] = sys
	}
	for _, pc := range []struct {
		name string
		cfg  protogen.Config
	}{
		{"pq-full", protogen.Config{Protocol: spec.FullHandshake}},
		{"pq-half", protogen.Config{Protocol: spec.HalfHandshake}},
		{"pq-robust", protogen.Config{Protocol: spec.FullHandshake, Robust: true}},
		{"pq-robust-parity", protogen.Config{Protocol: spec.FullHandshake, Robust: true, Parity: true}},
		{"pq-arbitrated", protogen.Config{Protocol: spec.FullHandshake, Robust: true, Arbitrate: true}},
	} {
		sys, bus := buildPQ()
		if _, err := protogen.Generate(sys, bus, pc.cfg); err != nil {
			panic(err)
		}
		scenarios[pc.name] = sys
	}
	return scenarios
}

// TestEngineMatchesClassic is the tentpole's bit-exactness claim: on
// every scenario the pooled kernel's run is observably identical to the
// classic kernel's, including on a reused runner.
func TestEngineMatchesClassic(t *testing.T) {
	for name, sys := range batchScenarios() {
		t.Run(name, func(t *testing.T) {
			checkEquivalent(t, sys, func() Config { return Config{} })
		})
	}
}

// TestEngineMatchesClassicUnderMutation drives the refined PQ system
// with a stateful Mutate hook (suppress the first DONE-window change,
// re-commit it 10 clocks later) plus a Schedule hook — the exact shape
// a fault campaign uses.
func TestEngineMatchesClassicUnderMutation(t *testing.T) {
	sys, bus := buildPQ()
	if _, err := protogen.Generate(sys, bus, protogen.Config{Protocol: spec.FullHandshake, Robust: true}); err != nil {
		t.Fatal(err)
	}
	mkCfg := func() Config {
		fired := false
		return Config{
			Mutate: func(now int64, s *spec.Variable, old, next Value) Mutation {
				if fired || now < 3 {
					return Mutation{}
				}
				fired = true
				return Mutation{Now: old.Copy(), Later: next.Copy(), Delay: 10}
			},
			Schedule: func(now int64, runnable []string) []string {
				// Reverse the default order: equivalence must hold for any
				// deterministic schedule.
				out := make([]string, len(runnable))
				for i, n := range runnable {
					out[len(runnable)-1-i] = n
				}
				return out
			},
		}
	}
	checkEquivalent(t, sys, mkCfg)
}

// TestEngineMatchesClassicErrors: failure paths must agree to the exact
// error string — deadlock reports (including wait descriptions and bus
// state) and the MaxClocks budget.
func TestEngineMatchesClassicErrors(t *testing.T) {
	t.Run("deadlock", func(t *testing.T) {
		sys := spec.NewSystem("t")
		m := sys.AddModule("m")
		b := m.AddBehavior(spec.NewBehavior("stuck"))
		srv := m.AddBehavior(spec.NewBehavior("srv"))
		srv.Server = true
		rec := spec.RecordType{Name: "wires", Fields: []spec.Field{
			{Name: "A", Type: spec.Bit},
			{Name: "DATA", Type: spec.BitVector(8)},
		}}
		sig := sys.AddGlobal(spec.NewSignal("BUSY", rec))
		b.Body = []spec.Stmt{
			spec.AssignSig(spec.FieldOf(spec.Ref(sig), "A"), spec.VecString("1")),
			spec.WaitUntilFor(spec.Eq(spec.FieldOf(spec.Ref(sig), "DATA"), spec.ToVec(spec.Int(9), 8)), 0, nil),
		}
		srv.Body = []spec.Stmt{&spec.Wait{}} // wait forever
		checkEquivalent(t, sys, func() Config { return Config{} })
	})
	t.Run("max-clocks", func(t *testing.T) {
		b := spec.NewBehavior("slow")
		b.Body = []spec.Stmt{&spec.Loop{Body: []spec.Stmt{spec.WaitFor(1000)}}}
		checkEquivalent(t, oneModuleSystem(b), func() Config { return Config{MaxClocks: 5000} })
	})
	t.Run("runtime-fault", func(t *testing.T) {
		sys := spec.NewSystem("t")
		m := sys.AddModule("m")
		b := m.AddBehavior(spec.NewBehavior("oob"))
		mem := m.AddVariable(spec.NewVar("mem", spec.Array(4, spec.Integer)))
		b.Body = []spec.Stmt{
			spec.AssignVar(spec.At(spec.Ref(mem), spec.Int(9)), spec.Int(1)),
		}
		checkEquivalent(t, sys, func() Config { return Config{} })
	})
	t.Run("runaway", func(t *testing.T) {
		// Step counts differ by design, so only the error *kind* is
		// compared here, not the string.
		b := spec.NewBehavior("spin")
		b.Body = []spec.Stmt{&spec.Loop{Body: []spec.Stmt{&spec.Null{}}}}
		sys := oneModuleSystem(b)
		e, err := NewEngine(sys)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(Config{MaxStepsPerSlice: 1000}); err == nil || !strings.Contains(err.Error(), "without yielding") {
			t.Fatalf("err = %v, want runaway detection", err)
		}
	})
}

// TestEngineConcurrentRuns: one Engine, many goroutines — every run
// must be independent and identical (the campaign scheduler relies on
// this).
func TestEngineConcurrentRuns(t *testing.T) {
	sys, bus := buildPQ()
	if _, err := protogen.Generate(sys, bus, protogen.Config{Protocol: spec.FullHandshake}); err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(sys)
	if err != nil {
		t.Fatal(err)
	}
	want := traceEngine(e, Config{})
	var wg sync.WaitGroup
	diffs := make([]string, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 8; r++ {
				if d := diffTraces(want, traceEngine(e, Config{})); d != "" {
					diffs[g] = d
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, d := range diffs {
		if d != "" {
			t.Fatalf("goroutine %d diverged: %s", g, d)
		}
	}
}

// TestEngineAllocsPerRun pins the pooled kernel's per-run allocation
// count on the hardened PQ protocol. The pool exists so campaign runs
// allocate only what evaluation itself allocates (values, Result maps)
// — measured ~28 allocs/run (small-vector and box interning, owned
// in-place containers, compiled conditions) against ~3150 on the
// classic kernel. The bound has headroom for runtime jitter but
// catches a regression back to per-run rebuilds or goroutine setup.
func TestEngineAllocsPerRun(t *testing.T) {
	sys, bus := buildPQ()
	if _, err := protogen.Generate(sys, bus, protogen.Config{Protocol: spec.FullHandshake, Robust: true}); err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(sys)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the pool so the first runner's construction is not counted.
	if _, err := e.Run(Config{}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := e.Run(Config{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 80 {
		t.Errorf("pooled kernel allocates %.0f allocs/run, want <= 80", allocs)
	}
}

// TestEngineRejectsRecursion: the batch compiler inlines calls, so a
// recursive procedure must be a construction error (the caller then
// falls back to the classic kernel, which bounds recursion at runtime).
func TestEngineRejectsRecursion(t *testing.T) {
	sys := spec.NewSystem("t")
	m := sys.AddModule("m")
	b := m.AddBehavior(spec.NewBehavior("B"))
	pn := spec.NewVar("n", spec.Integer)
	proc := &spec.Procedure{Name: "rec", Params: []spec.Param{{Var: pn, Mode: spec.ModeIn}}}
	proc.Body = []spec.Stmt{
		&spec.Call{Proc: proc, Args: []spec.Expr{spec.Ref(pn)}},
	}
	b.Procedures = []*spec.Procedure{proc}
	b.Body = []spec.Stmt{&spec.Call{Proc: proc, Args: []spec.Expr{spec.Int(1)}}}
	if _, err := NewEngine(sys); err == nil || !strings.Contains(err.Error(), "recurses") {
		t.Fatalf("NewEngine = %v, want recursion rejection", err)
	}
}

// TestEngineCostFallback: a cost model needs the interpreter's lag
// accounting; Engine.Run must transparently produce the classic
// kernel's result.
func TestEngineCostFallback(t *testing.T) {
	sys, bus := buildPQ()
	if _, err := protogen.Generate(sys, bus, protogen.Config{Protocol: spec.FullHandshake}); err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(sys)
	if err != nil {
		t.Fatal(err)
	}
	model := estimate.DefaultModel()
	mkCfg := func() Config {
		return Config{Cost: &model}
	}
	classic := traceClassic(sys, mkCfg())
	pooled := traceEngine(e, mkCfg())
	if d := diffTraces(classic, pooled); d != "" {
		t.Fatalf("cost-model fallback diverges: %s", d)
	}
	if classic.clocks == 0 {
		t.Fatal("cost model charged no clocks; fallback not exercised")
	}
}
