package sim

import (
	"errors"
	"testing"

	"repro/internal/protogen"
	"repro/internal/spec"
)

// buildDoubleWrite returns a system whose accessor performs two
// back-to-back transactions on the SAME channel (two writes to V), over
// a two-channel bus so ID lines exist.
func buildDoubleWrite() (*spec.System, *spec.Bus) {
	sys := spec.NewSystem("dw")
	m1 := sys.AddModule("m1")
	m2 := sys.AddModule("m2")
	b := m1.AddBehavior(spec.NewBehavior("W"))
	v := m2.AddVariable(spec.NewVar("V", spec.BitVector(8)))
	u := m2.AddVariable(spec.NewVar("U", spec.BitVector(8)))
	b.Body = []spec.Stmt{
		spec.AssignVar(spec.Ref(v), spec.VecString("00000001")),
		spec.AssignVar(spec.Ref(v), spec.VecString("00000010")), // same channel again
		spec.AssignVar(spec.Ref(u), spec.VecString("00000011")),
	}
	cv := sys.AddChannel(&spec.Channel{Name: "cv", Accessor: b, Var: v, Dir: spec.Write})
	cu := sys.AddChannel(&spec.Channel{Name: "cu", Accessor: b, Var: u, Dir: spec.Write})
	bus := &spec.Bus{Name: "DB", Channels: []*spec.Channel{cv, cu}, Width: 8}
	sys.Buses = append(sys.Buses, bus)
	return sys, bus
}

// TestPaperIDDispatcherDeadlocks reproduces, as executable evidence, why
// this implementation deviates from the paper's Fig. 5 listing: a
// variable process that waits for *events on the ID lines* ("wait on
// B.ID") never wakes for the second of two back-to-back transactions on
// the same channel, because the ID lines do not change. After protocol
// generation we rewrite the generated dispatcher into the paper's
// ID-event form and show the simulation deadlocks; the generated
// START-strobe dispatcher handles the same workload fine.
func TestPaperIDDispatcherDeadlocks(t *testing.T) {
	// First: the generated dispatcher works.
	okSys, okBus := buildDoubleWrite()
	if _, err := protogen.Generate(okSys, okBus, protogen.Config{Protocol: spec.FullHandshake}); err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, okSys, Config{})
	if got := res.Final("m2", "V").(VecVal).V.Uint64(); got != 2 {
		t.Fatalf("V = %d, want 2", got)
	}

	// Second: the paper-faithful ID-event dispatcher deadlocks.
	sys, bus := buildDoubleWrite()
	ref, err := protogen.Generate(sys, bus, protogen.Config{Protocol: spec.FullHandshake})
	if err != nil {
		t.Fatal(err)
	}
	for _, server := range ref.Servers {
		loop, ok := server.Body[0].(*spec.Loop)
		if !ok {
			t.Fatal("dispatcher shape unexpected")
		}
		// Replace "wait until B.START = '1'" with the ID-event form:
		//   idPrev := B.ID;  wait until B.ID /= idPrev;
		idPrev := server.AddVar("idPrev", spec.BitVector(bus.IDBits()))
		idField := spec.FieldOf(spec.Ref(ref.BusSignal), "ID")
		loop.Body = append([]spec.Stmt{
			spec.AssignVar(spec.Ref(idPrev), idField),
			spec.WaitUntil(spec.Neq(idField, spec.Ref(idPrev))),
		}, loop.Body[1:]...)
	}
	s, err := New(sys, Config{MaxClocks: 100000})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("paper-style dispatcher did not deadlock: err = %v", err)
	}
}
