package sim

import (
	"testing"

	"repro/internal/estimate"
	"repro/internal/protogen"
	"repro/internal/spec"
)

// buildPQ constructs the paper's Fig. 3 system. Q is staggered behind P
// by a timed wait because the DAC'94 flow leaves bus arbitration to
// future work: two accessors must not open transactions concurrently.
func buildPQ() (*spec.System, *spec.Bus) {
	sys := spec.NewSystem("PQ")
	comp1 := sys.AddModule("comp1")
	comp2 := sys.AddModule("comp2")

	p := comp1.AddBehavior(spec.NewBehavior("P"))
	q := comp1.AddBehavior(spec.NewBehavior("Q"))
	x := comp2.AddVariable(spec.NewVar("X", spec.BitVector(16)))
	mem := comp2.AddVariable(spec.NewVar("MEM", spec.Array(64, spec.BitVector(16))))

	ad := p.AddVar("AD", spec.Integer)
	count := q.AddVar("COUNT", spec.BitVector(16))

	// P: AD := 5; X <= 32; MEM(AD) := X + 7;
	p.Body = []spec.Stmt{
		spec.AssignVar(spec.Ref(ad), spec.Int(5)),
		spec.AssignVar(spec.Ref(x), spec.ToVec(spec.Int(32), 16)),
		spec.AssignVar(spec.At(spec.Ref(mem), spec.Ref(ad)),
			spec.Add(spec.Ref(x), spec.ToVec(spec.Int(7), 16))),
	}
	// Q: COUNT := 9; MEM(60) := COUNT;
	q.Body = []spec.Stmt{
		spec.WaitFor(500),
		spec.AssignVar(spec.Ref(count), spec.ToVec(spec.Int(9), 16)),
		spec.AssignVar(spec.At(spec.Ref(mem), spec.Int(60)), spec.Ref(count)),
	}

	ch0 := sys.AddChannel(&spec.Channel{Name: "CH0", Accessor: p, Var: x, Dir: spec.Write})
	ch1 := sys.AddChannel(&spec.Channel{Name: "CH1", Accessor: p, Var: x, Dir: spec.Read})
	ch2 := sys.AddChannel(&spec.Channel{Name: "CH2", Accessor: p, Var: mem, Dir: spec.Write})
	ch3 := sys.AddChannel(&spec.Channel{Name: "CH3", Accessor: q, Var: mem, Dir: spec.Write})

	bus := &spec.Bus{Name: "B", Channels: []*spec.Channel{ch0, ch1, ch2, ch3}, Width: 8}
	sys.Buses = append(sys.Buses, bus)
	return sys, bus
}

// TestOriginalVsRefinedEquivalence is the reproduction's core functional
// claim: after protocol generation the refined specification simulates
// and computes the same final variable values as the original — here,
// X = 32, MEM(5) = 39, MEM(60) = 9.
func TestOriginalVsRefinedEquivalence(t *testing.T) {
	for _, proto := range []spec.Protocol{spec.FullHandshake, spec.HalfHandshake} {
		t.Run(proto.String(), func(t *testing.T) {
			orig, _ := buildPQ()
			origRes := mustRun(t, orig, Config{})

			refined, bus := buildPQ()
			ref, err := protogen.Generate(refined, bus, protogen.Config{Protocol: proto})
			if err != nil {
				t.Fatal(err)
			}
			if len(ref.Servers) != 2 {
				t.Fatalf("servers = %d", len(ref.Servers))
			}
			refRes := mustRun(t, refined, Config{})

			for _, key := range []string{"comp2.X", "comp2.MEM"} {
				if !origRes.Finals[key].Equal(refRes.Finals[key]) {
					t.Errorf("%s differs:\n original: %s\n refined:  %s",
						key, origRes.Finals[key], refRes.Finals[key])
				}
			}
			// Sanity against hand-computed values.
			x := refRes.Final("comp2", "X").(VecVal)
			if x.V.Uint64() != 32 {
				t.Errorf("X = %d, want 32", x.V.Uint64())
			}
			mem := refRes.Final("comp2", "MEM").(ArrayVal)
			if mem.Elems[5].(VecVal).V.Uint64() != 39 {
				t.Errorf("MEM(5) = %d, want 39", mem.Elems[5].(VecVal).V.Uint64())
			}
			if mem.Elems[60].(VecVal).V.Uint64() != 9 {
				t.Errorf("MEM(60) = %d, want 9", mem.Elems[60].(VecVal).V.Uint64())
			}
			if refRes.Clocks == 0 {
				t.Error("refined simulation consumed no bus time")
			}
		})
	}
}

// TestRefinedBusWordCount checks the wire-level activity: CH0 moves a
// 16-bit message over the 8-bit bus in exactly two word handshakes
// (Fig. 4), observable as START events.
func TestRefinedBusWordCount(t *testing.T) {
	refined, bus := buildPQ()
	_, err := protogen.Generate(refined, bus, protogen.Config{Protocol: spec.FullHandshake})
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, refined, Config{})
	// Word handshakes: CH0 send = 2 words; CH1 read = 1 request word
	// + 2 data words; CH2 = 3 words (22-bit msg); CH3 = 3 words.
	// Accessor-driven words toggle START twice each; server-driven
	// data words toggle DONE twice and START twice (ack).
	// Total START rise+fall events: accessor words (2+1+3+3)=9 words
	// -> 18 edges, plus CH1's 2 data-word acks -> 4 edges. 22 total.
	if got := res.SignalEvents["B"]; got < 22 {
		t.Errorf("bus events = %d, want >= 22 (record-level events)", got)
	}
}

// TestRefinedAtWidth16 re-refines with a bus as wide as the messages'
// data: CH0 needs a single word.
func TestRefinedAtOtherWidths(t *testing.T) {
	for _, w := range []int{1, 3, 8, 16, 22} {
		refined, bus := buildPQ()
		bus.Width = w
		if _, err := protogen.Generate(refined, bus, protogen.Config{Protocol: spec.FullHandshake}); err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		res := mustRun(t, refined, Config{})
		mem := res.Final("comp2", "MEM").(ArrayVal)
		if mem.Elems[5].(VecVal).V.Uint64() != 39 || mem.Elems[60].(VecVal).V.Uint64() != 9 {
			t.Errorf("width %d: MEM wrong: mem[5]=%s mem[60]=%s", w, mem.Elems[5], mem.Elems[60])
		}
	}
}

// TestRefinedWithCostModel runs the refined system with computation
// costs charged; results must be unchanged and time strictly larger.
func TestRefinedWithCostModel(t *testing.T) {
	refined, bus := buildPQ()
	if _, err := protogen.Generate(refined, bus, protogen.Config{Protocol: spec.FullHandshake}); err != nil {
		t.Fatal(err)
	}
	base := mustRun(t, refined, Config{})

	refined2, bus2 := buildPQ()
	if _, err := protogen.Generate(refined2, bus2, protogen.Config{Protocol: spec.FullHandshake}); err != nil {
		t.Fatal(err)
	}
	model := estimate.DefaultModel()
	costed := mustRun(t, refined2, Config{Cost: &model})
	if !base.Final("comp2", "MEM").Equal(costed.Final("comp2", "MEM")) {
		t.Error("cost model changed functional results")
	}
	if costed.Clocks <= base.Clocks {
		t.Errorf("costed run (%d clocks) not slower than uncosted (%d)", costed.Clocks, base.Clocks)
	}
}

// TestRefinedIntegerArray exercises signed integer data through the
// bus: negative values must round-trip via two's complement.
func TestRefinedIntegerArray(t *testing.T) {
	sys := spec.NewSystem("ints")
	m1 := sys.AddModule("m1")
	m2 := sys.AddModule("m2")
	b := m1.AddBehavior(spec.NewBehavior("W"))
	arr := m2.AddVariable(spec.NewVar("arr", spec.Array(16, spec.Integer)))
	i := b.AddVar("i", spec.Integer)
	b.Body = []spec.Stmt{
		&spec.For{Var: i, From: spec.Int(0), To: spec.Int(15), Body: []spec.Stmt{
			spec.AssignVar(spec.At(spec.Ref(arr), spec.Ref(i)),
				spec.Sub(spec.Int(0), spec.Ref(i))),
		}},
	}
	ch := sys.AddChannel(&spec.Channel{Name: "c0", Accessor: b, Var: arr, Dir: spec.Write})
	bus := &spec.Bus{Name: "IB", Channels: []*spec.Channel{ch}, Width: 9}
	sys.Buses = append(sys.Buses, bus)
	if _, err := protogen.Generate(sys, bus, protogen.Config{Protocol: spec.FullHandshake}); err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, sys, Config{})
	got := res.Final("m2", "arr").(ArrayVal)
	for j := 0; j < 16; j++ {
		if !got.Elems[j].Equal(IntVal{V: int64(-j)}) {
			t.Fatalf("arr[%d] = %s, want %d", j, got.Elems[j], -j)
		}
	}
}

// TestRefinedReadModifyWriteLoop drives repeated read+write transactions
// on the same channel pair — the case that would deadlock a dispatcher
// waiting on ID events (the paper's Fig. 5 form) and that our
// START-strobe dispatcher must handle.
func TestRefinedReadModifyWriteLoop(t *testing.T) {
	sys := spec.NewSystem("rmw")
	m1 := sys.AddModule("m1")
	m2 := sys.AddModule("m2")
	b := m1.AddBehavior(spec.NewBehavior("RMW"))
	acc := m2.AddVariable(spec.NewVar("ACC", spec.BitVector(16)))
	i := b.AddVar("i", spec.Integer)
	// for i in 1..10: ACC <= ACC + i  (each iteration = read + write)
	b.Body = []spec.Stmt{
		&spec.For{Var: i, From: spec.Int(1), To: spec.Int(10), Body: []spec.Stmt{
			spec.AssignVar(spec.Ref(acc),
				spec.Add(spec.Ref(acc), spec.ToVec(spec.Ref(i), 16))),
		}},
	}
	chR := sys.AddChannel(&spec.Channel{Name: "cr", Accessor: b, Var: acc, Dir: spec.Read})
	chW := sys.AddChannel(&spec.Channel{Name: "cw", Accessor: b, Var: acc, Dir: spec.Write})
	bus := &spec.Bus{Name: "RB", Channels: []*spec.Channel{chR, chW}, Width: 8}
	sys.Buses = append(sys.Buses, bus)
	if _, err := protogen.Generate(sys, bus, protogen.Config{Protocol: spec.FullHandshake}); err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, sys, Config{})
	got := res.Final("m2", "ACC").(VecVal)
	if got.V.Uint64() != 55 {
		t.Fatalf("ACC = %d, want 55", got.V.Uint64())
	}
}

// TestRefinedHalfHandshakeAtWidths sweeps the half-handshake protocol
// across bus widths; the refined system must compute the same finals at
// every word count.
func TestRefinedHalfHandshakeAtWidths(t *testing.T) {
	for _, w := range []int{3, 8, 16, 22} {
		refined, bus := buildPQ()
		bus.Width = w
		if _, err := protogen.Generate(refined, bus, protogen.Config{Protocol: spec.HalfHandshake}); err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		res := mustRun(t, refined, Config{})
		x := res.Final("comp2", "X").(VecVal)
		mem := res.Final("comp2", "MEM").(ArrayVal)
		if x.V.Uint64() != 32 || mem.Elems[5].(VecVal).V.Uint64() != 39 || mem.Elems[60].(VecVal).V.Uint64() != 9 {
			t.Errorf("width %d: finals wrong: X=%s mem[5]=%s mem[60]=%s",
				w, x, mem.Elems[5], mem.Elems[60])
		}
	}
}

// TestRefinedFixedDelay exercises the fixed-delay protocol on a
// single-word scalar write: the receiver samples the data lines a fixed
// number of clocks after the strobe, with no acknowledgement.
func TestRefinedFixedDelay(t *testing.T) {
	sys := spec.NewSystem("fd")
	m1 := sys.AddModule("m1")
	m2 := sys.AddModule("m2")
	w := m1.AddBehavior(spec.NewBehavior("W"))
	x := m2.AddVariable(spec.NewVar("X", spec.BitVector(8)))
	w.Body = []spec.Stmt{
		spec.AssignVar(spec.Ref(x), spec.ToVec(spec.Int(42), 8)),
	}
	ch := sys.AddChannel(&spec.Channel{Name: "CH", Accessor: w, Var: x, Dir: spec.Write})
	bus := &spec.Bus{Name: "B", Channels: []*spec.Channel{ch}, Width: 8}
	sys.Buses = append(sys.Buses, bus)
	if _, err := protogen.Generate(sys, bus, protogen.Config{Protocol: spec.FixedDelay}); err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, sys, Config{})
	if got := res.Final("m2", "X").(VecVal); got.V.Uint64() != 42 {
		t.Errorf("X = %s, want 42", got)
	}
	if res.Clocks == 0 {
		t.Error("fixed-delay transfer consumed no bus time")
	}
}
