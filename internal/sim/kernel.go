package sim

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/estimate"
	"repro/internal/spec"
)

// Config parameterizes a simulation run.
type Config struct {
	// MaxClocks aborts the run when simulated time exceeds it; zero
	// means the default of 10 million clocks.
	MaxClocks int64
	// MaxStepsPerSlice aborts a process that executes this many
	// statements without yielding (a runaway zero-delay loop); zero
	// means the default of 5 million.
	MaxStepsPerSlice int64
	// Cost, when non-nil, charges every executed statement its
	// cost-model clocks, so measured process times include computation
	// as the estimator models it. When nil, computation is
	// instantaneous and only explicit waits advance time.
	Cost *estimate.CostModel
	// OnEvent, when non-nil, is called for every signal value change,
	// after the change takes effect.
	OnEvent func(now int64, sig *spec.Variable, val Value)
	// Mutate, when non-nil, intercepts every pending signal update just
	// before it commits, receiving the signal's current value and the
	// proposed next value. Fault injectors use it to corrupt, suppress
	// or delay wire transitions (see internal/fault). The hook must be
	// deterministic for reproducible runs (VerifyDeterministic replays a
	// run twice and reports divergence); it is never invoked for the
	// delayed re-commits it schedules itself. The hook must not retain
	// old or next (or their containers) past the call — the batch
	// kernel recycles record containers between deltas; Copy what must
	// outlive the hook, as Mutation.Later merging does.
	Mutate func(now int64, sig *spec.Variable, old, next Value) Mutation
	// Schedule, when non-nil, reorders the runnable processes of each
	// delta cycle. It receives the behavior names in the default
	// execution order (process creation order) and returns the names in
	// the desired order; names it omits run after the ones it lists, in
	// default order. Counterexample replay uses it to force a specific
	// interleaving (see internal/verify). Like Mutate, it must be
	// deterministic for reproducible runs.
	Schedule func(now int64, runnable []string) []string
	// FinalsOnly skips building Result.ProcessEnd and
	// Result.SignalEvents (both left nil) for callers that consume only
	// Clocks/Deltas/Steps/Finals — fault campaigns classify millions of
	// transient Results and the unread maps dominate their per-run
	// allocation.
	FinalsOnly bool
}

// Mutation is the outcome of a Config.Mutate call.
type Mutation struct {
	// Now replaces the proposed value for this commit; nil keeps the
	// proposed value. Returning a copy of the current value suppresses
	// the change entirely (no event fires).
	Now Value
	// Later, when non-nil and Delay > 0, is committed to the signal
	// Delay clocks from now, modeling a slow or glitching driver. For
	// record signals only the components that differ from this commit's
	// outcome are re-driven then, merged over the signal's then-current
	// value — the late transition must not revert unrelated wires that
	// moved during the delay.
	Later Value
	Delay int64
	// Done promises the hook will never mutate again this run (every
	// scheduled fault fired or expired); the kernel stops calling it.
	// Purely an optimization: a hook that keeps returning empty
	// Mutations without Done behaves identically, just slower. Done
	// must not accompany a mutation — it is only honored on a call
	// that returned no Now and no Later.
	Done bool
	// SkipSig promises the hook will never mutate THIS signal for the
	// rest of the run; the kernel stops calling it for commits of this
	// signal only. Like Done, purely an optimization and only honored
	// on a call that returned no Now and no Later.
	SkipSig bool
}

// Result summarizes a completed simulation.
type Result struct {
	// Clocks is the simulated time at which the last foreground
	// (non-server) process finished.
	Clocks int64
	// Deltas counts executed delta cycles.
	Deltas int64
	// Steps counts executed statements across all processes.
	Steps int64
	// ProcessEnd maps each foreground behavior to its finish time.
	ProcessEnd map[string]int64
	// Finals holds the final values of all module-level variables,
	// keyed "module.variable".
	Finals map[string]Value
	// SignalEvents counts value-change events per signal name.
	SignalEvents map[string]int64
}

// Final returns the final value of a module variable, or nil.
func (r *Result) Final(module, variable string) Value {
	return r.Finals[module+"."+variable]
}

// DeadlockError reports a simulation that can make no further progress
// while foreground processes are still running.
type DeadlockError struct {
	Now     int64
	Waiting []string // "behavior: wait description"
	// Bus snapshots the control-line state of every global record
	// signal (the generated buses) at deadlock time — entries like
	// `B.START='1'` — so a deadlock caused by a lost or stuck strobe is
	// diagnosable from the error alone. DATA lines are included last.
	Bus []string
}

func (e *DeadlockError) Error() string {
	msg := fmt.Sprintf("sim: deadlock at clock %d; waiting: %s", e.Now, strings.Join(e.Waiting, "; "))
	if len(e.Bus) > 0 {
		msg += "; bus: " + strings.Join(e.Bus, " ")
	}
	return msg
}

// maxDeltas bounds total delta cycles as a livelock backstop.
const maxDeltas = 50_000_000

// procState is a process's scheduling state.
type procState int

const (
	stateReady procState = iota
	stateWaiting
	stateFinished
	stateKilled
	stateError
)

// waitSpec describes why a process is suspended.
type waitSpec struct {
	sensitivity []*spec.Variable
	check       func() bool
	deadline    int64 // -1: none
	forever     bool
	desc        string
	condStr     string
}

// process is one executing behavior.
type process struct {
	id     int
	beh    *spec.Behavior
	k      *kernel
	resume chan bool // true = continue, false = abort
	frames []frame
	ev     Evaluator
	state  procState
	wait   waitSpec
	err    error
	endAt  int64
	steps  int64
	// lag accumulates cost-model clocks not yet converted into a timed
	// yield (flushed at the next wait).
	lag int64
	// timedOut records whether the last bounded wait expired before its
	// condition held (consumed by execWait for Wait.TimedOut).
	timedOut bool
}

// signalState is the kernel-side storage of one signal.
type signalState struct {
	v       *spec.Variable
	current Value
	pending Value // nil if no update scheduled this delta
	events  int64
	// skipMutate marks a pending update that came from a Mutation's
	// delayed re-commit, which must not pass through Config.Mutate
	// again.
	skipMutate bool
	// muteHook is set when a Mutation returned SkipSig: the hook
	// promised to never touch this signal, so flush stops calling it.
	muteHook bool
}

// delayedUpdate is a signal value a Mutation deferred to a later clock.
// base records the commit's actual outcome at schedule time, so the
// apply can re-drive only the components the mutation suppressed.
type delayedUpdate struct {
	at   int64
	sig  *signalState
	val  Value
	base Value
}

// effective is the value a reader in the *same* delta as a writer
// observes for scheduling follow-up field updates: pending if scheduled,
// else current. (Reads via eval always see current.)
func (s *signalState) effective() Value {
	if s.pending != nil {
		return s.pending
	}
	return s.current
}

// kernel owns simulation state and runs the delta-cycle loop.
type kernel struct {
	sys     *spec.System
	cfg     Config
	procs   []*process
	signals map[*spec.Variable]*signalState
	shared  map[*spec.Variable]Value // module-level variables
	now     int64
	deltas  int64
	steps   int64
	yieldCh chan *process
	dirty   []*signalState // signals with pending updates this delta
	delayed []delayedUpdate
	// graceEnd is the clock at which the post-completion grace window
	// closes; -1 until every foreground process has finished.
	graceEnd int64
}

// graceClocks is the settle window granted to server processes after the
// last foreground process finishes.
const graceClocks = 8

// Simulator executes a specification system.
type Simulator struct {
	k *kernel
}

// New builds a simulator for the system. The system must validate.
func New(sys *spec.System, cfg Config) (*Simulator, error) {
	if errs := sys.Validate(); len(errs) > 0 {
		return nil, fmt.Errorf("sim: invalid system: %w", errs[0])
	}
	if cfg.MaxClocks <= 0 {
		cfg.MaxClocks = 10_000_000
	}
	if cfg.MaxStepsPerSlice <= 0 {
		cfg.MaxStepsPerSlice = 5_000_000
	}
	k := &kernel{
		sys:      sys,
		cfg:      cfg,
		signals:  make(map[*spec.Variable]*signalState),
		shared:   make(map[*spec.Variable]Value),
		yieldCh:  make(chan *process),
		graceEnd: -1,
	}
	// Global signals.
	for _, g := range sys.Globals {
		if g.Kind != spec.KindSignal {
			k.shared[g] = InitialValue(g)
			continue
		}
		k.signals[g] = &signalState{v: g, current: InitialValue(g)}
	}
	// Module variables (shared storage) and processes.
	for _, m := range sys.Modules {
		for _, v := range m.Variables {
			if v.Kind == spec.KindSignal {
				k.signals[v] = &signalState{v: v, current: InitialValue(v)}
			} else {
				k.shared[v] = InitialValue(v)
			}
		}
	}
	for _, b := range sys.Behaviors() {
		p := &process{
			id:     len(k.procs),
			beh:    b,
			k:      k,
			resume: make(chan bool),
			state:  stateReady,
		}
		p.ev = p.evaluator()
		base := frame{vars: make(map[*spec.Variable]Value)}
		for _, v := range b.Variables {
			base.vars[v] = InitialValue(v)
		}
		p.frames = []frame{base}
		k.procs = append(k.procs, p)
	}
	return &Simulator{k: k}, nil
}

// Run executes the system to completion: every non-server process
// finished, or an error (deadlock, runaway process, time limit, runtime
// fault).
func (s *Simulator) Run() (*Result, error) {
	return s.k.run()
}

func (k *kernel) run() (*Result, error) {
	// Launch the process goroutines; each blocks on its resume channel.
	for _, p := range k.procs {
		go p.top()
	}
	defer k.killAll()

	runnable := append([]*process{}, k.procs...)
	for {
		// Delta cycles.
		for len(runnable) > 0 {
			k.deltas++
			if k.deltas > maxDeltas {
				return nil, fmt.Errorf("sim: exceeded %d delta cycles at clock %d (livelock?)", int64(maxDeltas), k.now)
			}
			sort.Slice(runnable, func(i, j int) bool { return runnable[i].id < runnable[j].id })
			k.reorder(runnable)
			for _, p := range runnable {
				if err := k.step(p); err != nil {
					return nil, err
				}
			}
			runnable = runnable[:0]
			events := k.flush()
			if len(events) > 0 {
				runnable = append(runnable, k.wakeOnEvents(events)...)
			}
		}

		// When every foreground process has finished, keep simulating
		// for a short grace window so variable processes can complete
		// in-flight commits (a server latches the last bus word one
		// clock after the accessor's handshake completes).
		if k.foregroundDone() {
			if k.graceEnd < 0 {
				k.graceEnd = k.now + graceClocks
			}
		}

		// Advance time to the earliest deadline (process wait deadlines
		// and delayed signal commits alike).
		next := int64(-1)
		for _, p := range k.procs {
			if p.state == stateWaiting && !p.wait.forever && p.wait.deadline >= 0 {
				if next < 0 || p.wait.deadline < next {
					next = p.wait.deadline
				}
			}
		}
		for _, d := range k.delayed {
			if next < 0 || d.at < next {
				next = d.at
			}
		}
		if k.graceEnd >= 0 && (next < 0 || next > k.graceEnd) {
			return k.result(), nil
		}
		if next < 0 {
			return nil, k.deadlock()
		}
		if next > k.cfg.MaxClocks {
			return nil, fmt.Errorf("sim: exceeded MaxClocks=%d at clock %d", k.cfg.MaxClocks, k.now)
		}
		k.now = next
		// Delayed signal commits due now bypass Config.Mutate (they are
		// the hook's own doing) and wake sensitive processes like any
		// other event.
		if n := k.applyDelayed(); n {
			runnable = append(runnable, k.wakeOnEvents(k.flush())...)
		}
		for _, p := range k.procs {
			if p.state == stateWaiting && !p.wait.forever && p.wait.deadline == k.now {
				p.timedOut = p.wait.check != nil && !p.wait.check()
				p.state = stateReady
				p.wait = waitSpec{deadline: -1}
				runnable = append(runnable, p)
			}
		}
	}
}

// reorder applies the Config.Schedule hook to one delta cycle's
// runnable set (already in default id order). Listed processes run in
// the hook's order; unlisted ones keep their relative default order and
// run after every listed one.
func (k *kernel) reorder(runnable []*process) {
	if k.cfg.Schedule == nil || len(runnable) < 2 {
		return
	}
	names := make([]string, len(runnable))
	for i, p := range runnable {
		names[i] = p.beh.Name
	}
	rank := make(map[string]int, len(runnable))
	for _, n := range k.cfg.Schedule(k.now, names) {
		if _, ok := rank[n]; !ok {
			rank[n] = len(rank)
		}
	}
	sort.SliceStable(runnable, func(i, j int) bool {
		ri, iok := rank[runnable[i].beh.Name]
		rj, jok := rank[runnable[j].beh.Name]
		if iok != jok {
			return iok
		}
		return iok && ri < rj
	})
}

// applyDelayed schedules every delayed signal commit due at the current
// clock, reporting whether any was applied.
func (k *kernel) applyDelayed() bool {
	applied := false
	rest := k.delayed[:0]
	for _, d := range k.delayed {
		if d.at > k.now {
			rest = append(rest, d)
			continue
		}
		if d.sig.pending == nil {
			k.dirty = append(k.dirty, d.sig)
		}
		d.sig.pending = mergeDelayed(d.sig.effective(), d.base, d.val)
		d.sig.skipMutate = true
		applied = true
	}
	k.delayed = rest
	return applied
}

// mergeDelayed builds the value a delayed re-commit drives: for records,
// the current value with only the suppressed components (where val
// differs from base) overwritten; other shapes re-drive val wholesale.
func mergeDelayed(cur, base, val Value) Value {
	cv, okC := cur.(RecordVal)
	bv, okB := base.(RecordVal)
	vv, okV := val.(RecordVal)
	if !okC || !okB || !okV || len(cv.Fields) != len(vv.Fields) || len(bv.Fields) != len(vv.Fields) {
		return val
	}
	out := RecordVal{Type: cv.Type, Fields: append([]Value{}, cv.Fields...)}
	for i := range vv.Fields {
		if !vv.Fields[i].Equal(bv.Fields[i]) {
			out.Fields[i] = vv.Fields[i]
		}
	}
	return out
}

// step resumes one process and waits for it to yield.
func (k *kernel) step(p *process) error {
	p.steps = 0
	p.resume <- true
	<-k.yieldCh
	if p.state == stateError {
		return fmt.Errorf("sim: process %s failed at clock %d: %w", p.beh.Name, k.now, p.err)
	}
	return nil
}

// flush applies pending signal updates, returning the signals whose
// values changed (events).
func (k *kernel) flush() []*signalState {
	var events []*signalState
	for _, s := range k.dirty {
		if s.pending == nil {
			continue
		}
		if k.cfg.Mutate != nil && !s.skipMutate && !s.muteHook {
			m := k.cfg.Mutate(k.now, s.v, s.current, s.pending)
			if m.Now == nil && m.Later == nil {
				if m.Done {
					k.cfg.Mutate = nil
				}
				if m.SkipSig {
					s.muteHook = true
				}
			}
			if m.Now != nil {
				s.pending = m.Now
			}
			if m.Later != nil && m.Delay > 0 {
				k.delayed = append(k.delayed, delayedUpdate{
					at: k.now + m.Delay, sig: s, val: m.Later, base: s.pending.Copy(),
				})
			}
		}
		s.skipMutate = false
		if !s.pending.Equal(s.current) {
			s.current = s.pending
			s.events++
			events = append(events, s)
			if k.cfg.OnEvent != nil {
				k.cfg.OnEvent(k.now, s.v, s.current)
			}
		}
		s.pending = nil
	}
	k.dirty = k.dirty[:0]
	return events
}

// wakeOnEvents returns the processes to wake: sensitive to one of the
// events and (for wait-until) whose condition now holds.
func (k *kernel) wakeOnEvents(events []*signalState) []*process {
	changed := make(map[*spec.Variable]bool, len(events))
	for _, e := range events {
		changed[e.v] = true
	}
	var woken []*process
	for _, p := range k.procs {
		if p.state != stateWaiting || p.wait.forever {
			continue
		}
		hit := false
		for _, s := range p.wait.sensitivity {
			if changed[s] {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		if p.wait.check != nil && !p.wait.check() {
			continue
		}
		p.timedOut = false
		p.state = stateReady
		p.wait = waitSpec{deadline: -1}
		woken = append(woken, p)
	}
	return woken
}

// schedule registers a pending signal update for the current delta.
func (k *kernel) schedule(v *spec.Variable, val Value) {
	s := k.signals[v]
	if s.pending == nil {
		k.dirty = append(k.dirty, s)
	}
	s.pending = val
}

func (k *kernel) foregroundDone() bool {
	for _, p := range k.procs {
		if !p.beh.Server && p.state != stateFinished && p.state != stateError {
			return false
		}
	}
	return true
}

func (k *kernel) deadlock() error {
	var waiting []string
	for _, p := range k.procs {
		if p.state != stateWaiting {
			continue
		}
		name := p.beh.Name
		if p.beh.Server {
			name += " (server)"
		}
		waiting = append(waiting, fmt.Sprintf("%s: %s", name, p.wait.desc))
	}
	return &DeadlockError{Now: k.now, Waiting: waiting, Bus: k.busState()}
}

// busState renders the value of every global record signal (the
// generated buses) field by field, control lines first, for deadlock
// diagnostics.
func (k *kernel) busState() []string {
	return busStateOf(k.sys, func(v *spec.Variable) (Value, bool) {
		s, ok := k.signals[v]
		if !ok {
			return nil, false
		}
		return s.current, true
	})
}

// busStateOf is the kernel-independent bus renderer: get reports the
// current value of a signal variable, or ok=false if v is not a signal.
// Both the classic and the pooled kernel build their DeadlockError bus
// dumps through it so the diagnostics stay byte-identical.
func busStateOf(sys *spec.System, get func(v *spec.Variable) (Value, bool)) []string {
	globals := append([]*spec.Variable{}, sys.Globals...)
	sort.Slice(globals, func(i, j int) bool { return globals[i].Name < globals[j].Name })
	var out []string
	for _, g := range globals {
		cur, ok := get(g)
		if !ok {
			continue
		}
		n := g.Name
		rv, ok := cur.(RecordVal)
		if !ok {
			continue
		}
		var data []string
		for i, f := range rv.Type.Fields {
			val := rv.Fields[i].String()
			// Single wires read better in VHDL bit style: '1', not "1".
			if vv, ok := rv.Fields[i].(VecVal); ok && vv.V.Width() == 1 {
				val = "'" + vv.V.String() + "'"
			}
			entry := fmt.Sprintf("%s.%s=%s", n, f.Name, val)
			if f.Name == "DATA" {
				data = append(data, entry)
			} else {
				out = append(out, entry)
			}
		}
		out = append(out, data...)
	}
	return out
}

func (k *kernel) result() *Result {
	res := &Result{
		Clocks: k.now,
		Deltas: k.deltas,
		Steps:  k.steps,
		Finals: make(map[string]Value),
	}
	for _, m := range k.sys.Modules {
		for _, v := range m.Variables {
			if val, ok := k.shared[v]; ok {
				res.Finals[m.Name+"."+v.Name] = val.Copy()
			}
		}
	}
	if k.cfg.FinalsOnly {
		return res
	}
	res.ProcessEnd = make(map[string]int64)
	res.SignalEvents = make(map[string]int64)
	for _, p := range k.procs {
		if !p.beh.Server && p.state == stateFinished {
			res.ProcessEnd[p.beh.Name] = p.endAt
		}
	}
	for v, s := range k.signals {
		res.SignalEvents[v.Name] = s.events
	}
	return res
}

// killAll aborts every unfinished process goroutine.
func (k *kernel) killAll() {
	for _, p := range k.procs {
		if p.state == stateWaiting || p.state == stateReady {
			p.resume <- false
			<-k.yieldCh
		}
	}
}

// ---- process side ----

// top is the process goroutine body.
func (p *process) top() {
	defer func() {
		if r := recover(); r != nil {
			switch e := r.(type) {
			case abortSentinel:
				p.state = stateKilled
			case simError:
				p.state = stateError
				p.err = e.err
			default:
				p.state = stateError
				p.err = fmt.Errorf("internal fault: %v", r)
			}
			p.k.yieldCh <- p
		}
	}()
	if !<-p.resume {
		panic(abortSentinel{})
	}
	p.execStmts(p.beh.Body)
	p.flushLag()
	p.state = stateFinished
	p.endAt = p.k.now
	p.k.yieldCh <- p
}

// yield suspends the process with the given wait and blocks until the
// kernel resumes it.
func (p *process) yield(w waitSpec) {
	p.flushLagInto(&w)
	p.state = stateWaiting
	w.desc = p.describeWait(w)
	p.wait = w
	p.k.yieldCh <- p
	if !<-p.resume {
		panic(abortSentinel{})
	}
}

func (p *process) describeWait(w waitSpec) string {
	var names []string
	if len(w.sensitivity) > 0 {
		names = make([]string, len(w.sensitivity))
		for i, s := range w.sensitivity {
			names[i] = s.Name
		}
	}
	return formatWait(names, w.check != nil, w.condStr, w.deadline, w.forever)
}

// formatWait renders a suspended wait for deadlock diagnostics; shared
// by both kernels so the DeadlockError text is identical.
func formatWait(sens []string, hasCheck bool, condStr string, deadline int64, forever bool) string {
	var parts []string
	if len(sens) > 0 {
		parts = append(parts, "on "+strings.Join(sens, ","))
	}
	if hasCheck {
		parts = append(parts, "until "+condStr)
	}
	if deadline >= 0 {
		parts = append(parts, fmt.Sprintf("for t=%d", deadline))
	}
	if forever {
		parts = append(parts, "forever")
	}
	return strings.Join(parts, " ")
}

// countStep enforces the runaway-process guard and counts statements.
func (p *process) countStep() {
	p.steps++
	p.k.steps++
	if p.steps > p.k.cfg.MaxStepsPerSlice {
		fail("process %s executed %d statements without yielding (runaway zero-delay loop?)",
			p.beh.Name, p.steps)
	}
}

// ---- cost charging ----

// charge accumulates cost-model clocks; they are realized as simulated
// time at the next wait (flushLag) so computation does not interleave
// extra delta cycles into handshakes.
func (p *process) charge(c int64) {
	if c > 0 {
		p.lag += c
	}
}

// flushLag converts accumulated computation clocks into a timed wait.
func (p *process) flushLag() {
	if p.lag == 0 {
		return
	}
	d := p.lag
	p.lag = 0
	p.yield(waitSpec{deadline: p.k.now + d})
}

// flushLagInto folds pending computation clocks into an about-to-happen
// pure timed wait; event waits have already been flushed by execWait.
func (p *process) flushLagInto(w *waitSpec) {
	if p.lag == 0 {
		return
	}
	if w.deadline >= 0 && len(w.sensitivity) == 0 && w.check == nil {
		w.deadline += p.lag
		p.lag = 0
		return
	}
	// Defensive: an event wait with unflushed lag (should not happen —
	// execWait flushes first). Realize it as a timed suspension.
	d := p.lag
	p.lag = 0
	p.yield(waitSpec{deadline: p.k.now + d})
}

func (p *process) costAssign(s *spec.Assign) int64 {
	m := p.k.cfg.Cost
	if m == nil {
		return 0
	}
	return m.AssignClocks + m.ExprCost(s.RHS) + m.LValueCost(s.LHS)
}

func (p *process) costBranch(cond spec.Expr) int64 {
	m := p.k.cfg.Cost
	if m == nil {
		return 0
	}
	return m.BranchClocks + m.ExprCost(cond)
}

func (p *process) costLoop() int64 {
	m := p.k.cfg.Cost
	if m == nil {
		return 0
	}
	return m.LoopClocks
}

func (p *process) costCall() int64 {
	m := p.k.cfg.Cost
	if m == nil {
		return 0
	}
	return m.CallClocks
}
