package sim

import (
	"fmt"

	"repro/internal/spec"
)

// This file compiles behaviors into flat programs for the pooled batch
// kernel (batch.go). The classic kernel (kernel.go) interprets the
// statement tree directly and suspends processes by blocking their
// goroutines; that costs one goroutine plus two channel handoffs per
// delta-cycle step, and a fresh set of frame maps per run — fine for a
// single simulation, ruinous for fault campaigns that need millions of
// short runs. Compilation flattens control flow so that a process's
// entire continuation is a single program counter, which lets a plain
// in-loop scheduler suspend and resume processes with an integer store,
// and resolves every variable to a dense slot index so a run needs no
// per-run maps at all.
//
// The compiler must preserve the tree interpreter's semantics exactly —
// the batch kernel's runs are required to be bit-identical to the
// classic kernel's (see batch_test.go, and the pooled-vs-unpooled
// campaign cross-check in internal/fault). Where the interpreter is
// subtle — for-loop counters survive body writes to the loop variable;
// `exit` outside a loop unwinds the enclosing procedure like `return`
// (the call's copy-out still runs); scratch variables come into scope
// on first setLocal-style write — the lowering reproduces it statement
// by statement. The constructs it cannot reproduce (recursive
// procedures, non-lvalue assignment targets) are compile errors, and
// NewEngine's caller falls back to the classic kernel, which handles
// them at runtime.

// bop is the instruction set of a compiled behavior.
type bop uint8

const (
	bopAssign bop = iota // evaluate rhs, store into the lvalue
	bopBranch            // fall through when cond holds, else jump to target
	bopJump              // jump to target
	bopClear             // local slot := zero value (procedure activation entry)
	bopWait              // suspend per waitMeta
	bopEnd               // process finished
)

// slotSpace says which storage array a resolved variable lives in.
type slotSpace uint8

const (
	slotLocal slotSpace = iota
	slotShared
	slotSignal
)

// slotRef is a resolved variable: storage space plus dense index.
type slotRef struct {
	sp  slotSpace
	idx int32
}

// binstr is one compiled instruction.
type binstr struct {
	op     bop
	target int32 // bopBranch (taken when cond is false), bopJump
	cond   spec.Expr
	ccond  *cexpr // compiled cond; nil falls back to the tree walker
	fcond  *fcond // fast boolean form; nil falls back to ccond/cond

	// bopAssign: the lvalue pre-flattened to base slot + accessor path,
	// so the runtime store is a slot write (plain) or one applyPath
	// rebuild (indexed/field/slice), with no per-statement closures.
	rhs  spec.Expr
	crhs *cexpr // compiled rhs; nil falls back to the tree walker
	base *spec.Variable
	lref slotRef
	// aOwn marks an element store into an array variable whose container
	// the escape analysis proved unaliased; once the run owns the
	// container (first copy-on-write store), such stores mutate it in
	// place. Set in a post-pass over all compiled programs, because a
	// shared array could escape in another behavior.
	aOwn bool
	path []accessor
	// create marks compiler-synthesized assigns with the interpreter's
	// setLocal semantics (loop counters, wait timeout flags, parameter
	// copy-in): they may initialize a scratch local, where an ordinary
	// assignment to a never-written scratch variable fails "not
	// writable".
	create bool

	wait *waitMeta // bopWait

	// bopClear: slot re-initialized to clearVal (an immutable zero-value
	// template shared by every activation and every pooled run).
	slot     int32
	clearVal Value
}

// waitMeta is the precomputed static part of a wait statement: the
// sensitivity list in the interpreter's order (the `on` signals, then
// the signals read by the `until` condition), the rendered condition,
// and the failure cases the interpreter detects at runtime.
type waitMeta struct {
	w *spec.Wait
	// sensNames are the sensitivity names for deadlock descriptions —
	// including condition signals absent from the system, which the
	// interpreter lists even though they can never fire.
	sensNames []string
	// sensIdx are the signal slots that can actually wake the process.
	sensIdx []int32
	condStr string
	// cuntil is the compiled until condition; nil falls back to the
	// tree walker. funtil is its fast boolean form, when it has one.
	cuntil *cexpr
	funtil *fcond
	// badOn, when non-nil, is the first non-signal variable in the `on`
	// list; executing the wait fails exactly like the interpreter.
	badOn *spec.Variable
	// noSense marks a `wait until` with no sensitivity and no timeout:
	// legal if the condition holds immediately, a runtime error
	// otherwise (matching execWait).
	noSense bool
	forever bool
	// timedOut, when non-nil, receives the timeout flag on resume.
	timedOut    *spec.Variable
	timedOutRef slotRef
}

// bprogram is one behavior compiled for the batch kernel. It is
// immutable after compilation and shared by every runner of an Engine.
type bprogram struct {
	beh  *spec.Behavior
	code []binstr
	// locals are this process's dense variable slots: declared behavior
	// variables (localInit holds their initial values), inlined
	// procedure parameters and locals (initialized per activation by the
	// compiled copy-in/clear prologue), and scratch variables — nil in
	// localInit and at reset, like the interpreter's created-on-first-
	// set frame entries; reading a still-nil slot fails "not in scope".
	locals    []*spec.Variable
	localInit []Value
	// res resolves every variable the program can touch to its slot.
	res   map[*spec.Variable]slotRef
	temps int
	// maxStack is the deepest operand stack any compiled expression of
	// this program needs; the runner pre-sizes bproc.stack with it.
	maxStack int
}

// scope is one enclosing loop or inlined call during compilation. Exit
// jumps to the end of the innermost scope of either kind (a loop ends
// at its bottom; the interpreter swallows ctrlExit at the call
// boundary, so exiting a call is returning from it). Return jumps to
// the end of the innermost call scope, skipping loops.
type scope struct {
	isCall  bool
	patches []int
}

// bcompiler compiles one behavior against an Engine's global layout.
type bcompiler struct {
	e       *Engine
	prog    *bprogram
	scopes  []scope
	endRefs []int // jumps to the final bopEnd
	active  map[*spec.Procedure]bool
	err     error
}

func (e *Engine) compile(beh *spec.Behavior) (*bprogram, error) {
	prog := &bprogram{
		beh: beh,
		res: make(map[*spec.Variable]slotRef),
	}
	c := &bcompiler{e: e, prog: prog, active: make(map[*spec.Procedure]bool)}
	for _, v := range beh.Variables {
		c.addLocal(v, InitialValue(v))
	}
	c.stmts(beh.Body)
	end := c.emit(binstr{op: bopEnd})
	for _, at := range c.endRefs {
		prog.code[at].target = int32(end)
	}
	if c.err != nil {
		return nil, fmt.Errorf("behavior %s: %w", beh.Name, c.err)
	}
	return prog, nil
}

func (c *bcompiler) emit(i binstr) int {
	c.prog.code = append(c.prog.code, i)
	return len(c.prog.code) - 1
}

func (c *bcompiler) here() int32 { return int32(len(c.prog.code)) }

func (c *bcompiler) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf(format, args...)
	}
}

// addLocal registers a local slot; init is nil for activation-scoped
// and scratch slots.
func (c *bcompiler) addLocal(v *spec.Variable, init Value) slotRef {
	if ref, ok := c.prog.res[v]; ok {
		return ref
	}
	ref := slotRef{sp: slotLocal, idx: int32(len(c.prog.locals))}
	c.prog.res[v] = ref
	c.prog.locals = append(c.prog.locals, v)
	c.prog.localInit = append(c.prog.localInit, init)
	return ref
}

// resolve maps a variable to its slot, mirroring the interpreter's
// lookup order: process frames first (our local slots), then module
// variables and non-signal globals, then signals. A variable known
// nowhere becomes a scratch local, nil until first written — reading it
// fails "not in scope" at runtime exactly like the interpreter.
func (c *bcompiler) resolve(v *spec.Variable) slotRef {
	if ref, ok := c.prog.res[v]; ok {
		return ref
	}
	if idx, ok := c.e.sharedIdx[v]; ok {
		ref := slotRef{sp: slotShared, idx: int32(idx)}
		c.prog.res[v] = ref
		return ref
	}
	if idx, ok := c.e.sigIdx[v]; ok {
		ref := slotRef{sp: slotSignal, idx: int32(idx)}
		c.prog.res[v] = ref
		return ref
	}
	return c.addLocal(v, nil)
}

// resolveStorage resolves a setLocal-style target (loop variable,
// timeout flag): locals, then shared storage, never signals — matching
// the interpreter's storageCell order with frame-creation fallback.
func (c *bcompiler) resolveStorage(v *spec.Variable) slotRef {
	if ref, ok := c.prog.res[v]; ok {
		return ref
	}
	if idx, ok := c.e.sharedIdx[v]; ok {
		ref := slotRef{sp: slotShared, idx: int32(idx)}
		c.prog.res[v] = ref
		return ref
	}
	return c.addLocal(v, nil)
}

// scanExpr resolves every variable an expression references so runtime
// lookups are single map hits into the program's resolution table.
func (c *bcompiler) scanExpr(e spec.Expr) {
	spec.WalkExpr(e, func(x spec.Expr) bool {
		if r, ok := x.(*spec.VarRef); ok {
			c.resolve(r.Var)
		}
		return true
	})
}

// markEscapes records variables whose whole container an expression
// can observe. A record-typed signal escapes when a VarRef appears
// anywhere but the X of a FieldRef: a field read extracts one immutable
// leaf and discards the container, so signals only ever read field-wise
// can be driven through reusable buffers (see execAssign); any other
// appearance could copy the container into a variable or a Result,
// which must never alias a buffer the kernel will overwrite. Likewise
// an array-typed variable escapes when a VarRef appears anywhere but
// the Arr of an Index: an element read extracts one immutable value, so
// arrays only ever read element-wise have provably unaliased containers
// and element stores may mutate them in place once the run owns the
// container. Unknown node kinds poison the whole engine (bufUnsafe)
// rather than guess.
func (c *bcompiler) markEscapes(e spec.Expr) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *spec.IntLit, *spec.VecLit, *spec.BoolLit:
	case *spec.VarRef:
		if e.Var.Kind == spec.KindSignal {
			if _, ok := e.Var.Type.(spec.RecordType); ok {
				c.e.recEscapes[e.Var] = true
			}
		}
		if _, ok := e.Var.Type.(spec.ArrayType); ok {
			c.e.arrEscapes[e.Var] = true
		}
	case *spec.FieldRef:
		if _, ok := e.X.(*spec.VarRef); ok {
			return
		}
		c.markEscapes(e.X)
	case *spec.Index:
		if _, ok := e.Arr.(*spec.VarRef); !ok {
			c.markEscapes(e.Arr)
		}
		c.markEscapes(e.Index)
	case *spec.SliceExpr:
		c.markEscapes(e.X)
		c.markEscapes(e.Hi)
		c.markEscapes(e.Lo)
	case *spec.Binary:
		c.markEscapes(e.X)
		c.markEscapes(e.Y)
	case *spec.Unary:
		c.markEscapes(e.X)
	case *spec.Conv:
		c.markEscapes(e.X)
	default:
		c.e.bufUnsafe = true
	}
}

func (c *bcompiler) newTemp(name string) *spec.Variable {
	v := spec.NewVar(fmt.Sprintf("__%s_%d", name, c.prog.temps), spec.Integer)
	c.prog.temps++
	c.addLocal(v, nil)
	return v
}

func (c *bcompiler) stmts(list []spec.Stmt) {
	for _, s := range list {
		if c.err != nil {
			return
		}
		c.stmt(s)
	}
}

func (c *bcompiler) stmt(s spec.Stmt) {
	switch s := s.(type) {
	case *spec.Assign:
		c.compileAssign(s.LHS, s.RHS, false)
	case *spec.If:
		c.compileIf(s)
	case *spec.For:
		c.compileFor(s)
	case *spec.While:
		c.compileWhile(s)
	case *spec.Loop:
		c.compileLoop(s)
	case *spec.Exit:
		c.jumpOut(false)
	case *spec.Return:
		c.jumpOut(true)
	case *spec.Wait:
		c.compileWait(s)
	case *spec.Call:
		c.compileCall(s)
	case *spec.Null:
		// nothing
	default:
		c.fail("cannot compile %T", s)
	}
}

// jumpOut emits the forward jump for Exit (callsOnly=false: innermost
// loop or call scope) or Return (callsOnly=true: innermost call scope);
// with no matching scope both end the behavior.
func (c *bcompiler) jumpOut(callsOnly bool) {
	j := c.emit(binstr{op: bopJump})
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if callsOnly && !c.scopes[i].isCall {
			continue
		}
		c.scopes[i].patches = append(c.scopes[i].patches, j)
		return
	}
	c.endRefs = append(c.endRefs, j)
}

// popScope patches the scope's collected jumps to land here.
func (c *bcompiler) popScope() {
	top := len(c.scopes) - 1
	for _, j := range c.scopes[top].patches {
		c.prog.code[j].target = c.here()
	}
	c.scopes = c.scopes[:top]
}

func (c *bcompiler) compileAssign(lhs, rhs spec.Expr, create bool) {
	base, path := flattenLValue(lhs)
	if base == nil {
		// The interpreter fails at runtime only if the statement is
		// reached; the compiler cannot tell a reachable bad store from a
		// dead one, so it refuses the behavior and the classic kernel
		// (via fallback) produces the faithful runtime error.
		c.fail("assignment to non-lvalue %s", lhs)
		return
	}
	c.scanExpr(rhs)
	c.scanExpr(lhs)
	c.markEscapes(rhs)
	for _, a := range path {
		c.markEscapes(a.index)
		c.markEscapes(a.hi)
		c.markEscapes(a.lo)
	}
	var ref slotRef
	if create {
		ref = c.resolveStorage(base)
	} else {
		ref = c.resolve(base)
	}
	fillPathHints(path, base.Type)
	c.emit(binstr{op: bopAssign, rhs: rhs, crhs: c.compileExpr(rhs), base: base, lref: ref, path: path, create: create})
}

func (c *bcompiler) compileIf(s *spec.If) {
	var toEnd []int
	arm := func(cond spec.Expr, body []spec.Stmt, last bool) {
		c.scanExpr(cond)
		c.markEscapes(cond)
		br := c.emit(binstr{op: bopBranch, cond: cond, ccond: c.compileExpr(cond), fcond: c.compileCond(cond)})
		c.stmts(body)
		if !last {
			toEnd = append(toEnd, c.emit(binstr{op: bopJump}))
		}
		c.prog.code[br].target = c.here()
	}
	lastArm := len(s.Elifs)
	arm(s.Cond, s.Then, lastArm == 0 && len(s.Else) == 0)
	for i, e := range s.Elifs {
		arm(e.Cond, e.Body, i == lastArm-1 && len(s.Else) == 0)
	}
	c.stmts(s.Else)
	for _, j := range toEnd {
		c.prog.code[j].target = c.here()
	}
}

// compileFor reproduces the interpreter's for loop exactly: From and To
// are evaluated once into hidden integer counters before the first
// iteration, and the loop variable is (re)assigned from the hidden
// counter at the top of every iteration — a body that writes the loop
// variable does not change the iteration count.
func (c *bcompiler) compileFor(s *spec.For) {
	i := c.newTemp("i")
	to := c.newTemp("to")
	c.compileAssign(spec.Ref(i), s.From, true)
	c.compileAssign(spec.Ref(to), s.To, true)
	head := c.here()
	forCond := spec.Le(spec.Ref(i), spec.Ref(to))
	br := c.emit(binstr{op: bopBranch, cond: forCond, ccond: c.compileExpr(forCond), fcond: c.compileCond(forCond)})
	c.compileAssign(spec.Ref(s.Var), spec.Ref(i), true)
	c.scopes = append(c.scopes, scope{})
	c.stmts(s.Body)
	c.compileAssign(spec.Ref(i), spec.Add(spec.Ref(i), spec.Int(1)), true)
	c.emit(binstr{op: bopJump, target: head})
	c.prog.code[br].target = c.here()
	c.popScope()
}

func (c *bcompiler) compileWhile(s *spec.While) {
	head := c.here()
	c.scanExpr(s.Cond)
	c.markEscapes(s.Cond)
	br := c.emit(binstr{op: bopBranch, cond: s.Cond, ccond: c.compileExpr(s.Cond), fcond: c.compileCond(s.Cond)})
	c.scopes = append(c.scopes, scope{})
	c.stmts(s.Body)
	c.emit(binstr{op: bopJump, target: head})
	c.prog.code[br].target = c.here()
	c.popScope()
}

func (c *bcompiler) compileLoop(s *spec.Loop) {
	head := c.here()
	c.scopes = append(c.scopes, scope{})
	c.stmts(s.Body)
	c.emit(binstr{op: bopJump, target: head})
	c.popScope()
}

func (c *bcompiler) compileWait(s *spec.Wait) {
	m := &waitMeta{w: s}
	for _, v := range s.On {
		if idx, ok := c.e.sigIdx[v]; ok {
			m.sensNames = append(m.sensNames, v.Name)
			m.sensIdx = append(m.sensIdx, int32(idx))
		} else if m.badOn == nil {
			m.badOn = v
		}
	}
	if s.Until != nil {
		c.scanExpr(s.Until)
		c.markEscapes(s.Until)
		m.cuntil = c.compileExpr(s.Until)
		m.funtil = c.compileCond(s.Until)
		m.condStr = s.Until.String()
		for _, v := range spec.SignalsRead(s.Until) {
			// The interpreter lists every signal the condition reads in
			// the sensitivity (and so in deadlock descriptions), but only
			// system signals generate events and can wake the process.
			m.sensNames = append(m.sensNames, v.Name)
			if idx, ok := c.e.sigIdx[v]; ok {
				m.sensIdx = append(m.sensIdx, int32(idx))
			}
		}
		if len(m.sensNames) == 0 && !s.HasFor {
			m.noSense = true
		}
	}
	if len(m.sensNames) == 0 && s.Until == nil && !s.HasFor {
		m.forever = true
	}
	if s.TimedOut != nil {
		m.timedOut = s.TimedOut
		m.timedOutRef = c.resolveStorage(s.TimedOut)
	}
	c.emit(binstr{op: bopWait, wait: m})
}

// batchCallDepth bounds static call nesting. The batch compiler inlines
// calls, so recursion (and pathological nesting) must be rejected at
// compile time; the classic kernel's runtime guard handles it after the
// fallback.
const batchCallDepth = 64

// compileCall inlines the procedure: copy-in assignments for in/inout
// parameters, zero-cleared out parameters and locals, the body (with
// Return lowered to a jump past it), then copy-out assignments — in
// exactly the interpreter's frame-setup order. Distinct call sites
// share the procedure's slots, which is safe because every activation
// re-initializes each one on entry.
func (c *bcompiler) compileCall(s *spec.Call) {
	proc := s.Proc
	if proc == nil {
		c.fail("call to nil procedure")
		return
	}
	if len(s.Args) != len(proc.Params) {
		c.fail("call %s arity mismatch", proc.Name)
		return
	}
	if c.active[proc] {
		c.fail("procedure %s recurses; the batch compiler inlines calls", proc.Name)
		return
	}
	if len(c.active) >= batchCallDepth {
		c.fail("procedure nesting exceeds %d", batchCallDepth)
		return
	}
	c.active[proc] = true
	defer delete(c.active, proc)

	for _, prm := range proc.Params {
		c.addLocal(prm.Var, nil)
	}
	for _, l := range proc.Locals {
		c.addLocal(l, nil)
	}
	for i, prm := range proc.Params {
		switch prm.Mode {
		case spec.ModeIn, spec.ModeInOut:
			c.compileAssign(spec.Ref(prm.Var), s.Args[i], true)
		default:
			ref := c.prog.res[prm.Var]
			c.emit(binstr{op: bopClear, slot: ref.idx, clearVal: ZeroValue(prm.Var.Type)})
		}
	}
	for _, l := range proc.Locals {
		ref := c.prog.res[l]
		c.emit(binstr{op: bopClear, slot: ref.idx, clearVal: ZeroValue(l.Type)})
	}
	c.scopes = append(c.scopes, scope{isCall: true})
	c.stmts(proc.Body)
	c.popScope()
	for i, prm := range proc.Params {
		if prm.Mode == spec.ModeOut || prm.Mode == spec.ModeInOut {
			c.compileAssign(s.Args[i], spec.Ref(prm.Var), false)
		}
	}
}
