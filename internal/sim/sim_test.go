package sim

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/bits"
	"repro/internal/estimate"
	"repro/internal/spec"
)

// oneModuleSystem wraps a single behavior in a runnable system.
func oneModuleSystem(b *spec.Behavior) *spec.System {
	sys := spec.NewSystem("t")
	m := sys.AddModule("m")
	m.AddBehavior(b)
	return sys
}

func mustRun(t *testing.T, sys *spec.System, cfg Config) *Result {
	t.Helper()
	s, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestStraightLineComputation(t *testing.T) {
	sys := spec.NewSystem("t")
	m := sys.AddModule("m")
	b := m.AddBehavior(spec.NewBehavior("B"))
	out := m.AddVariable(spec.NewVar("out", spec.Integer))
	x := b.AddVar("x", spec.Integer)
	b.Body = []spec.Stmt{
		spec.AssignVar(spec.Ref(x), spec.Int(5)),
		spec.AssignVar(spec.Ref(x), spec.Add(spec.Ref(x), spec.Int(37))),
		spec.AssignVar(spec.Ref(out), spec.Ref(x)),
	}
	res := mustRun(t, sys, Config{})
	if got := res.Final("m", "out"); !got.Equal(IntVal{V: 42}) {
		t.Fatalf("out = %s", got)
	}
	if res.Clocks != 0 {
		t.Fatalf("pure computation advanced time to %d", res.Clocks)
	}
}

func TestForLoopAndArray(t *testing.T) {
	sys := spec.NewSystem("t")
	m := sys.AddModule("m")
	b := m.AddBehavior(spec.NewBehavior("B"))
	mem := m.AddVariable(spec.NewVar("mem", spec.Array(8, spec.Integer)))
	i := b.AddVar("i", spec.Integer)
	b.Body = []spec.Stmt{
		&spec.For{Var: i, From: spec.Int(0), To: spec.Int(7), Body: []spec.Stmt{
			spec.AssignVar(spec.At(spec.Ref(mem), spec.Ref(i)), spec.Mul(spec.Ref(i), spec.Ref(i))),
		}},
	}
	res := mustRun(t, sys, Config{})
	got := res.Final("m", "mem").(ArrayVal)
	for j := 0; j < 8; j++ {
		if !got.Elems[j].Equal(IntVal{V: int64(j * j)}) {
			t.Fatalf("mem[%d] = %s", j, got.Elems[j])
		}
	}
}

func TestWhileExitAndIf(t *testing.T) {
	sys := spec.NewSystem("t")
	m := sys.AddModule("m")
	b := m.AddBehavior(spec.NewBehavior("B"))
	n := m.AddVariable(spec.NewVar("n", spec.Integer))
	b.Body = []spec.Stmt{
		&spec.Loop{Body: []spec.Stmt{
			spec.AssignVar(spec.Ref(n), spec.Add(spec.Ref(n), spec.Int(1))),
			&spec.If{
				Cond: spec.Ge(spec.Ref(n), spec.Int(10)),
				Then: []spec.Stmt{&spec.Exit{}},
			},
		}},
	}
	res := mustRun(t, sys, Config{})
	if got := res.Final("m", "n"); !got.Equal(IntVal{V: 10}) {
		t.Fatalf("n = %s", got)
	}
}

func TestWaitForAdvancesTime(t *testing.T) {
	b := spec.NewBehavior("B")
	b.Body = []spec.Stmt{spec.WaitFor(10), spec.WaitFor(32)}
	res := mustRun(t, oneModuleSystem(b), Config{})
	if res.Clocks != 42 {
		t.Fatalf("clocks = %d, want 42", res.Clocks)
	}
	if res.ProcessEnd["B"] != 42 {
		t.Fatalf("process end = %d", res.ProcessEnd["B"])
	}
}

func TestSignalDeltaSemantics(t *testing.T) {
	// A signal assignment is not visible until the next delta: a
	// process that writes then immediately reads sees the old value.
	sys := spec.NewSystem("t")
	m := sys.AddModule("m")
	b := m.AddBehavior(spec.NewBehavior("B"))
	sig := sys.AddGlobal(spec.NewSignal("S", spec.Integer))
	seen := m.AddVariable(spec.NewVar("seen", spec.Integer))
	after := m.AddVariable(spec.NewVar("after", spec.Integer))
	b.Body = []spec.Stmt{
		spec.AssignSig(spec.Ref(sig), spec.Int(7)),
		spec.AssignVar(spec.Ref(seen), spec.Ref(sig)), // still 0
		spec.WaitFor(1),
		spec.AssignVar(spec.Ref(after), spec.Ref(sig)), // now 7
	}
	res := mustRun(t, sys, Config{})
	if !res.Final("m", "seen").Equal(IntVal{V: 0}) {
		t.Fatalf("seen = %s, want 0 (delta delay)", res.Final("m", "seen"))
	}
	if !res.Final("m", "after").Equal(IntVal{V: 7}) {
		t.Fatalf("after = %s, want 7", res.Final("m", "after"))
	}
}

func TestTwoProcessHandshake(t *testing.T) {
	// Producer raises REQ, consumer copies DATA and raises ACK, four
	// phase handshake; repeated 3 times.
	sys := spec.NewSystem("t")
	m := sys.AddModule("m")
	m2 := sys.AddModule("m2")
	prod := m.AddBehavior(spec.NewBehavior("prod"))
	cons := m2.AddBehavior(spec.NewBehavior("cons"))
	req := sys.AddGlobal(spec.NewSignal("REQ", spec.Bit))
	ack := sys.AddGlobal(spec.NewSignal("ACK", spec.Bit))
	data := sys.AddGlobal(spec.NewSignal("DATA", spec.BitVector(8)))
	sum := m2.AddVariable(spec.NewVar("sum", spec.Integer))
	done := m2.AddVariable(spec.NewVar("done", spec.Integer))

	i := prod.AddVar("i", spec.Integer)
	one := spec.VecString("1")
	zero := spec.VecString("0")
	prod.Body = []spec.Stmt{
		&spec.For{Var: i, From: spec.Int(1), To: spec.Int(3), Body: []spec.Stmt{
			spec.AssignSig(spec.Ref(data), spec.ToVec(spec.Ref(i), 8)),
			spec.AssignSig(spec.Ref(req), one),
			spec.WaitUntil(spec.Eq(spec.Ref(ack), one)),
			spec.AssignSig(spec.Ref(req), zero),
			spec.WaitUntil(spec.Eq(spec.Ref(ack), zero)),
		}},
	}
	j := cons.AddVar("j", spec.Integer)
	cons.Body = []spec.Stmt{
		&spec.For{Var: j, From: spec.Int(1), To: spec.Int(3), Body: []spec.Stmt{
			spec.WaitUntil(spec.Eq(spec.Ref(req), one)),
			spec.AssignVar(spec.Ref(sum), spec.Add(spec.Ref(sum), spec.ToInt(spec.Ref(data)))),
			spec.AssignSig(spec.Ref(ack), one),
			spec.WaitUntil(spec.Eq(spec.Ref(req), zero)),
			spec.AssignSig(spec.Ref(ack), zero),
		}},
		spec.AssignVar(spec.Ref(done), spec.Int(1)),
	}
	res := mustRun(t, sys, Config{})
	if !res.Final("m2", "sum").Equal(IntVal{V: 6}) {
		t.Fatalf("sum = %s, want 6", res.Final("m2", "sum"))
	}
	if res.SignalEvents["REQ"] != 6 { // 3 rises + 3 falls
		t.Fatalf("REQ events = %d, want 6", res.SignalEvents["REQ"])
	}
}

func TestWaitUntilImmediateCheck(t *testing.T) {
	// The condition already holds when the wait executes: the process
	// must pass straight through instead of deadlocking.
	sys := spec.NewSystem("t")
	m := sys.AddModule("m")
	b := m.AddBehavior(spec.NewBehavior("B"))
	sig := sys.AddGlobal(spec.NewSignal("S", spec.Bit))
	okv := m.AddVariable(spec.NewVar("ok", spec.Integer))
	b.Body = []spec.Stmt{
		spec.AssignSig(spec.Ref(sig), spec.VecString("1")),
		spec.WaitFor(1), // let it take effect
		spec.WaitUntil(spec.Eq(spec.Ref(sig), spec.VecString("1"))), // already true
		spec.AssignVar(spec.Ref(okv), spec.Int(1)),
	}
	res := mustRun(t, sys, Config{})
	if !res.Final("m", "ok").Equal(IntVal{V: 1}) {
		t.Fatal("immediate-true wait until blocked")
	}
}

func TestDeadlockDetected(t *testing.T) {
	sys := spec.NewSystem("t")
	m := sys.AddModule("m")
	b := m.AddBehavior(spec.NewBehavior("stuck"))
	sig := sys.AddGlobal(spec.NewSignal("NEVER", spec.Bit))
	b.Body = []spec.Stmt{
		spec.WaitUntil(spec.Eq(spec.Ref(sig), spec.VecString("1"))),
	}
	s, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(dl.Waiting) != 1 || !strings.Contains(dl.Waiting[0], "stuck") {
		t.Fatalf("deadlock report: %v", dl.Waiting)
	}
}

func TestRunawayProcessDetected(t *testing.T) {
	b := spec.NewBehavior("spin")
	b.Body = []spec.Stmt{&spec.Loop{Body: []spec.Stmt{&spec.Null{}}}}
	s, err := New(oneModuleSystem(b), Config{MaxStepsPerSlice: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil || !strings.Contains(err.Error(), "without yielding") {
		t.Fatalf("err = %v, want runaway detection", err)
	}
}

func TestMaxClocksEnforced(t *testing.T) {
	b := spec.NewBehavior("slow")
	b.Body = []spec.Stmt{&spec.Loop{Body: []spec.Stmt{spec.WaitFor(1000)}}}
	s, err := New(oneModuleSystem(b), Config{MaxClocks: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil || !strings.Contains(err.Error(), "MaxClocks") {
		t.Fatalf("err = %v, want MaxClocks error", err)
	}
}

func TestIndexOutOfRangeReported(t *testing.T) {
	sys := spec.NewSystem("t")
	m := sys.AddModule("m")
	b := m.AddBehavior(spec.NewBehavior("B"))
	mem := m.AddVariable(spec.NewVar("mem", spec.Array(4, spec.Integer)))
	b.Body = []spec.Stmt{
		spec.AssignVar(spec.At(spec.Ref(mem), spec.Int(9)), spec.Int(1)),
	}
	s, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("err = %v, want index error", err)
	}
}

func TestProcedureCopyInOut(t *testing.T) {
	sys := spec.NewSystem("t")
	m := sys.AddModule("m")
	b := m.AddBehavior(spec.NewBehavior("B"))
	out := m.AddVariable(spec.NewVar("out", spec.Integer))
	a := spec.NewVar("a", spec.Integer)
	r := spec.NewVar("r", spec.Integer)
	double := &spec.Procedure{
		Name:   "double",
		Params: []spec.Param{{Var: a, Mode: spec.ModeIn}, {Var: r, Mode: spec.ModeOut}},
		Body: []spec.Stmt{
			spec.AssignVar(spec.Ref(r), spec.Mul(spec.Ref(a), spec.Int(2))),
		},
	}
	b.AddProc(double)
	res := b.AddVar("res", spec.Integer)
	b.Body = []spec.Stmt{
		spec.CallProc(double, spec.Int(21), spec.Ref(res)),
		spec.AssignVar(spec.Ref(out), spec.Ref(res)),
	}
	result := mustRun(t, sys, Config{})
	if !result.Final("m", "out").Equal(IntVal{V: 42}) {
		t.Fatalf("out = %s", result.Final("m", "out"))
	}
}

func TestProcedureInOutParam(t *testing.T) {
	sys := spec.NewSystem("t")
	m := sys.AddModule("m")
	b := m.AddBehavior(spec.NewBehavior("B"))
	out := m.AddVariable(spec.NewVar("out", spec.Integer))
	a := spec.NewVar("a", spec.Integer)
	inc := &spec.Procedure{
		Name:   "inc",
		Params: []spec.Param{{Var: a, Mode: spec.ModeInOut}},
		Body:   []spec.Stmt{spec.AssignVar(spec.Ref(a), spec.Add(spec.Ref(a), spec.Int(1)))},
	}
	b.AddProc(inc)
	v := b.AddVar("v", spec.Integer)
	b.Body = []spec.Stmt{
		spec.AssignVar(spec.Ref(v), spec.Int(10)),
		spec.CallProc(inc, spec.Ref(v)),
		spec.CallProc(inc, spec.Ref(v)),
		spec.AssignVar(spec.Ref(out), spec.Ref(v)),
	}
	result := mustRun(t, sys, Config{})
	if !result.Final("m", "out").Equal(IntVal{V: 12}) {
		t.Fatalf("out = %s, want 12", result.Final("m", "out"))
	}
}

func TestSliceAssignAndRead(t *testing.T) {
	sys := spec.NewSystem("t")
	m := sys.AddModule("m")
	b := m.AddBehavior(spec.NewBehavior("B"))
	v := m.AddVariable(spec.NewVar("v", spec.BitVector(16)))
	lo := m.AddVariable(spec.NewVar("lo", spec.BitVector(8)))
	b.Body = []spec.Stmt{
		spec.AssignVar(spec.SliceBits(spec.Ref(v), 15, 8), spec.VecString("10100101")),
		spec.AssignVar(spec.SliceBits(spec.Ref(v), 7, 0), spec.VecString("00001111")),
		spec.AssignVar(spec.Ref(lo), spec.SliceBits(spec.Ref(v), 7, 0)),
	}
	res := mustRun(t, sys, Config{})
	if got := res.Final("m", "v").(VecVal).V.String(); got != "1010010100001111" {
		t.Fatalf("v = %s", got)
	}
	if got := res.Final("m", "lo").(VecVal).V.String(); got != "00001111" {
		t.Fatalf("lo = %s", got)
	}
}

func TestRecordSignalFieldUpdates(t *testing.T) {
	// Two field updates in the same delta must both land (applied
	// against the pending value).
	rec := spec.RecordType{Name: "R", Fields: []spec.Field{
		{Name: "A", Type: spec.Bit}, {Name: "D", Type: spec.BitVector(8)},
	}}
	sys := spec.NewSystem("t")
	m := sys.AddModule("m")
	b := m.AddBehavior(spec.NewBehavior("B"))
	sig := sys.AddGlobal(spec.NewSignal("R", rec))
	gotA := m.AddVariable(spec.NewVar("gotA", spec.BitVector(1)))
	gotD := m.AddVariable(spec.NewVar("gotD", spec.BitVector(8)))
	b.Body = []spec.Stmt{
		spec.AssignSig(spec.FieldOf(spec.Ref(sig), "A"), spec.VecString("1")),
		spec.AssignSig(spec.FieldOf(spec.Ref(sig), "D"), spec.VecString("11000011")),
		spec.WaitFor(1),
		spec.AssignVar(spec.Ref(gotA), spec.FieldOf(spec.Ref(sig), "A")),
		spec.AssignVar(spec.Ref(gotD), spec.FieldOf(spec.Ref(sig), "D")),
	}
	res := mustRun(t, sys, Config{})
	if got := res.Final("m", "gotA").(VecVal).V.String(); got != "1" {
		t.Fatalf("A = %s", got)
	}
	if got := res.Final("m", "gotD").(VecVal).V.String(); got != "11000011" {
		t.Fatalf("D = %s", got)
	}
}

func TestCostModelChargesComputation(t *testing.T) {
	sys := spec.NewSystem("t")
	m := sys.AddModule("m")
	b := m.AddBehavior(spec.NewBehavior("B"))
	out := m.AddVariable(spec.NewVar("out", spec.Integer))
	i := b.AddVar("i", spec.Integer)
	b.Body = []spec.Stmt{
		&spec.For{Var: i, From: spec.Int(1), To: spec.Int(10), Body: []spec.Stmt{
			spec.AssignVar(spec.Ref(out), spec.Add(spec.Ref(out), spec.Ref(i))),
		}},
	}
	model := estimate.DefaultModel()
	res := mustRun(t, sys, Config{Cost: &model})
	if !res.Final("m", "out").Equal(IntVal{V: 55}) {
		t.Fatalf("out = %s", res.Final("m", "out"))
	}
	// 10 iterations * (loop 1 + assign 1 + add 1) = 30 clocks.
	if res.Clocks != 30 {
		t.Fatalf("clocks = %d, want 30", res.Clocks)
	}
	// Estimator agreement on the same body:
	e := estimate.New(nil)
	if ct := e.CompTime(b); ct != res.Clocks {
		t.Fatalf("estimator CompTime = %d, simulator measured %d", ct, res.Clocks)
	}
}

func TestInitializers(t *testing.T) {
	sys := spec.NewSystem("t")
	m := sys.AddModule("m")
	b := m.AddBehavior(spec.NewBehavior("B"))
	v := spec.NewVar("v", spec.Integer)
	v.Init = spec.Int(99)
	m.AddVariable(v)
	arr := spec.NewVar("arr", spec.Array(3, spec.BitVector(4)))
	arr.InitArray = []bits.Vector{
		bits.MustParse("0001"), bits.MustParse("0010"), bits.MustParse("0100"),
	}
	m.AddVariable(arr)
	b.Body = []spec.Stmt{&spec.Null{}}
	res := mustRun(t, sys, Config{})
	if !res.Final("m", "v").Equal(IntVal{V: 99}) {
		t.Fatalf("v = %s", res.Final("m", "v"))
	}
	got := res.Final("m", "arr").(ArrayVal)
	if got.Elems[2].(VecVal).V.String() != "0100" {
		t.Fatalf("arr[2] = %s", got.Elems[2])
	}
}

func TestServerProcessDoesNotBlockTermination(t *testing.T) {
	sys := spec.NewSystem("t")
	m := sys.AddModule("m")
	fg := m.AddBehavior(spec.NewBehavior("fg"))
	srv := m.AddBehavior(spec.NewBehavior("srv"))
	srv.Server = true
	sig := sys.AddGlobal(spec.NewSignal("S", spec.Bit))
	srv.Body = []spec.Stmt{&spec.Loop{Body: []spec.Stmt{
		spec.WaitOn(sig),
	}}}
	fg.Body = []spec.Stmt{spec.WaitFor(5)}
	res := mustRun(t, sys, Config{})
	if res.Clocks != 5 {
		t.Fatalf("clocks = %d", res.Clocks)
	}
	if _, ok := res.ProcessEnd["srv"]; ok {
		t.Fatal("server listed in ProcessEnd")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	build := func() *spec.System {
		sys := spec.NewSystem("t")
		m := sys.AddModule("m")
		a := m.AddBehavior(spec.NewBehavior("A"))
		b := m.AddBehavior(spec.NewBehavior("B"))
		sh := m.AddVariable(spec.NewVar("sh", spec.Integer))
		for _, beh := range []*spec.Behavior{a, b} {
			i := beh.AddVar("i", spec.Integer)
			beh.Body = []spec.Stmt{
				&spec.For{Var: i, From: spec.Int(0), To: spec.Int(9), Body: []spec.Stmt{
					spec.AssignVar(spec.Ref(sh), spec.Add(spec.Mul(spec.Ref(sh), spec.Int(3)), spec.Int(1))),
					spec.WaitFor(1),
				}},
			}
		}
		return sys
	}
	r1 := mustRun(t, build(), Config{})
	r2 := mustRun(t, build(), Config{})
	if !r1.Final("m", "sh").Equal(r2.Final("m", "sh")) {
		t.Fatalf("nondeterministic: %s vs %s", r1.Final("m", "sh"), r2.Final("m", "sh"))
	}
	if r1.Deltas != r2.Deltas {
		t.Fatalf("delta counts differ: %d vs %d", r1.Deltas, r2.Deltas)
	}
}

func TestOnEventHook(t *testing.T) {
	sys := spec.NewSystem("t")
	m := sys.AddModule("m")
	b := m.AddBehavior(spec.NewBehavior("B"))
	sig := sys.AddGlobal(spec.NewSignal("S", spec.Bit))
	b.Body = []spec.Stmt{
		spec.AssignSig(spec.Ref(sig), spec.VecString("1")),
		spec.WaitFor(1),
		spec.AssignSig(spec.Ref(sig), spec.VecString("0")),
		spec.WaitFor(1),
	}
	var events int
	s, err := New(sys, Config{OnEvent: func(now int64, v *spec.Variable, val Value) {
		events++
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if events != 2 {
		t.Fatalf("events = %d, want 2", events)
	}
}

func TestRedundantSignalAssignNoEvent(t *testing.T) {
	sys := spec.NewSystem("t")
	m := sys.AddModule("m")
	b := m.AddBehavior(spec.NewBehavior("B"))
	sig := sys.AddGlobal(spec.NewSignal("S", spec.Bit))
	b.Body = []spec.Stmt{
		spec.AssignSig(spec.Ref(sig), spec.VecString("0")), // already 0
		spec.WaitFor(1),
	}
	res := mustRun(t, sys, Config{})
	if res.SignalEvents["S"] != 0 {
		t.Fatalf("events = %d, want 0", res.SignalEvents["S"])
	}
}

func TestWaitUntilWithTimeoutFires(t *testing.T) {
	// "wait until cond for n": the condition never holds, the timeout
	// resumes the process.
	sys := spec.NewSystem("t")
	m := sys.AddModule("m")
	b := m.AddBehavior(spec.NewBehavior("B"))
	sig := sys.AddGlobal(spec.NewSignal("S", spec.Bit))
	hit := m.AddVariable(spec.NewVar("hit", spec.Integer))
	b.Body = []spec.Stmt{
		&spec.Wait{Until: spec.Eq(spec.Ref(sig), spec.VecString("1")), For: 25, HasFor: true},
		spec.AssignVar(spec.Ref(hit), spec.Int(1)),
	}
	res := mustRun(t, sys, Config{})
	if !res.Final("m", "hit").Equal(IntVal{V: 1}) {
		t.Fatal("timeout did not fire")
	}
	if res.Clocks != 25 {
		t.Fatalf("clocks = %d, want 25", res.Clocks)
	}
}

func TestWaitUntilWithTimeoutEventWins(t *testing.T) {
	// The event arrives before the timeout: resume early.
	sys := spec.NewSystem("t")
	m := sys.AddModule("m")
	b := m.AddBehavior(spec.NewBehavior("B"))
	src := m.AddBehavior(spec.NewBehavior("SRC"))
	sig := sys.AddGlobal(spec.NewSignal("S", spec.Bit))
	b.Body = []spec.Stmt{
		&spec.Wait{Until: spec.Eq(spec.Ref(sig), spec.VecString("1")), For: 1000, HasFor: true},
	}
	src.Body = []spec.Stmt{
		spec.WaitFor(7),
		spec.AssignSig(spec.Ref(sig), spec.VecString("1")),
	}
	res := mustRun(t, sys, Config{})
	if res.ProcessEnd["B"] != 7 {
		t.Fatalf("B ended at %d, want 7 (event before timeout)", res.ProcessEnd["B"])
	}
}

func TestWaitForeverDeadlocks(t *testing.T) {
	b := spec.NewBehavior("B")
	b.Body = []spec.Stmt{&spec.Wait{}}
	s, err := New(oneModuleSystem(b), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Fatal("wait-forever foreground process did not deadlock")
	}
}

func TestNegativeWaitRejected(t *testing.T) {
	b := spec.NewBehavior("B")
	b.Body = []spec.Stmt{spec.WaitFor(-5)}
	s, err := New(oneModuleSystem(b), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Fatal("negative wait accepted")
	}
}

func TestRecursionDepthGuard(t *testing.T) {
	b := spec.NewBehavior("B")
	rec := &spec.Procedure{Name: "rec"}
	rec.Body = []spec.Stmt{spec.CallProc(rec)}
	b.AddProc(rec)
	b.Body = []spec.Stmt{spec.CallProc(rec)}
	s, err := New(oneModuleSystem(b), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil || !strings.Contains(err.Error(), "recursion") {
		t.Fatalf("err = %v, want recursion guard", err)
	}
}

func TestSameDeltaSignalWritesLastProcessWins(t *testing.T) {
	// Two processes write the same signal in the same delta; process
	// run order is creation order, so the later process's value lands.
	// (The flow guarantees single drivers; this pins the documented
	// resolution for when that is violated.)
	sys := spec.NewSystem("t")
	m := sys.AddModule("m")
	a := m.AddBehavior(spec.NewBehavior("A"))
	b := m.AddBehavior(spec.NewBehavior("B"))
	sig := sys.AddGlobal(spec.NewSignal("S", spec.Integer))
	got := m.AddVariable(spec.NewVar("got", spec.Integer))
	a.Body = []spec.Stmt{spec.AssignSig(spec.Ref(sig), spec.Int(1))}
	b.Body = []spec.Stmt{
		spec.AssignSig(spec.Ref(sig), spec.Int(2)),
		spec.WaitFor(1),
		spec.AssignVar(spec.Ref(got), spec.Ref(sig)),
	}
	res := mustRun(t, sys, Config{})
	if !res.Final("m", "got").Equal(IntVal{V: 2}) {
		t.Fatalf("got = %s, want 2 (last writer in id order)", res.Final("m", "got"))
	}
}

func TestSameDeltaDisjointRecordFieldsMerge(t *testing.T) {
	// Two processes updating different fields of one record signal in
	// the same delta must both land (updates chain on the pending
	// value).
	rec := spec.RecordType{Name: "R", Fields: []spec.Field{
		{Name: "A", Type: spec.Bit}, {Name: "B", Type: spec.Bit},
	}}
	sys := spec.NewSystem("t")
	m := sys.AddModule("m")
	pa := m.AddBehavior(spec.NewBehavior("PA"))
	pb := m.AddBehavior(spec.NewBehavior("PB"))
	sig := sys.AddGlobal(spec.NewSignal("R", rec))
	gotA := m.AddVariable(spec.NewVar("gotA", spec.BitVector(1)))
	gotB := m.AddVariable(spec.NewVar("gotB", spec.BitVector(1)))
	pa.Body = []spec.Stmt{
		spec.AssignSig(spec.FieldOf(spec.Ref(sig), "A"), spec.VecString("1")),
	}
	pb.Body = []spec.Stmt{
		spec.AssignSig(spec.FieldOf(spec.Ref(sig), "B"), spec.VecString("1")),
		spec.WaitFor(1),
		spec.AssignVar(spec.Ref(gotA), spec.FieldOf(spec.Ref(sig), "A")),
		spec.AssignVar(spec.Ref(gotB), spec.FieldOf(spec.Ref(sig), "B")),
	}
	res := mustRun(t, sys, Config{})
	if res.Final("m", "gotA").(VecVal).V.String() != "1" ||
		res.Final("m", "gotB").(VecVal).V.String() != "1" {
		t.Fatalf("field merge failed: A=%s B=%s", res.Final("m", "gotA"), res.Final("m", "gotB"))
	}
}

func TestVectorArithmeticOps(t *testing.T) {
	// Exercise the vector-operand binary ops end to end.
	sys := spec.NewSystem("t")
	m := sys.AddModule("m")
	b := m.AddBehavior(spec.NewBehavior("B"))
	a8 := func(name string) *spec.Variable { return m.AddVariable(spec.NewVar(name, spec.BitVector(8))) }
	x := a8("x")
	sum := a8("sum")
	diff := a8("diff")
	prod := a8("prod")
	quot := a8("quot")
	rem := a8("rem")
	shl := a8("shl")
	shr := a8("shr")
	cmp := m.AddVariable(spec.NewVar("cmp", spec.Integer))
	b.Body = []spec.Stmt{
		spec.AssignVar(spec.Ref(x), spec.VecString("00001100")), // 12
		spec.AssignVar(spec.Ref(sum), spec.Add(spec.Ref(x), spec.VecString("00000101"))),
		spec.AssignVar(spec.Ref(diff), spec.Sub(spec.Ref(x), spec.VecString("00000101"))),
		spec.AssignVar(spec.Ref(prod), spec.Mul(spec.Ref(x), spec.VecString("00000011"))),
		spec.AssignVar(spec.Ref(quot), spec.Bin(spec.OpDiv, spec.Ref(x), spec.VecString("00000101"))),
		spec.AssignVar(spec.Ref(rem), spec.Bin(spec.OpMod, spec.Ref(x), spec.VecString("00000101"))),
		spec.AssignVar(spec.Ref(shl), spec.Bin(spec.OpShl, spec.Ref(x), spec.Int(2))),
		spec.AssignVar(spec.Ref(shr), spec.Bin(spec.OpShr, spec.Ref(x), spec.Int(2))),
		&spec.If{
			Cond: spec.LogicalAnd(
				spec.Lt(spec.Ref(x), spec.VecString("00001101")),
				spec.LogicalAnd(
					spec.Le(spec.Ref(x), spec.Ref(x)),
					spec.LogicalAnd(
						spec.Gt(spec.Ref(x), spec.VecString("00000001")),
						spec.Ge(spec.Ref(x), spec.Ref(x))))),
			Then: []spec.Stmt{spec.AssignVar(spec.Ref(cmp), spec.Int(1))},
		},
	}
	res := mustRun(t, sys, Config{})
	want := map[string]uint64{
		"sum": 17, "diff": 7, "prod": 36, "quot": 2, "rem": 2, "shl": 48, "shr": 3,
	}
	for name, w := range want {
		got := res.Final("m", name).(VecVal).V.Uint64()
		if got != w {
			t.Errorf("%s = %d, want %d", name, got, w)
		}
	}
	if !res.Final("m", "cmp").Equal(IntVal{V: 1}) {
		t.Error("vector comparisons failed")
	}
}

func TestVectorDivisionByZeroReported(t *testing.T) {
	sys := spec.NewSystem("t")
	m := sys.AddModule("m")
	b := m.AddBehavior(spec.NewBehavior("B"))
	x := m.AddVariable(spec.NewVar("x", spec.BitVector(8)))
	b.Body = []spec.Stmt{
		spec.AssignVar(spec.Ref(x), spec.Bin(spec.OpDiv, spec.Ref(x), spec.VecString("00000000"))),
	}
	s, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v", err)
	}
}

func TestConcatAndXorInSim(t *testing.T) {
	sys := spec.NewSystem("t")
	m := sys.AddModule("m")
	b := m.AddBehavior(spec.NewBehavior("B"))
	wide := m.AddVariable(spec.NewVar("wide", spec.BitVector(8)))
	xo := m.AddVariable(spec.NewVar("xo", spec.BitVector(4)))
	b.Body = []spec.Stmt{
		spec.AssignVar(spec.Ref(wide), spec.Bin(spec.OpConcat, spec.VecString("1100"), spec.VecString("0011"))),
		spec.AssignVar(spec.Ref(xo), spec.Bin(spec.OpXor, spec.VecString("1100"), spec.VecString("1010"))),
	}
	res := mustRun(t, sys, Config{})
	if got := res.Final("m", "wide").(VecVal).V.String(); got != "11000011" {
		t.Errorf("concat = %s", got)
	}
	if got := res.Final("m", "xo").(VecVal).V.String(); got != "0110" {
		t.Errorf("xor = %s", got)
	}
}
