package sim

import (
	"strings"
	"testing"

	"repro/internal/spec"
)

// twoWriterSystem builds two processes that race to drive the same
// signal in the same delta cycle: last writer wins, so the scheduling
// order is directly observable in the final value of "seen".
func twoWriterSystem() (*spec.System, *spec.Variable) {
	sys := spec.NewSystem("t")
	m := sys.AddModule("m")
	sig := spec.NewSignal("S", spec.BitVector(8))
	sys.AddGlobal(sig)
	seen := m.AddVariable(spec.NewVar("seen", spec.Integer))

	a := m.AddBehavior(spec.NewBehavior("A"))
	a.Body = []spec.Stmt{
		spec.AssignSig(spec.Ref(sig), spec.Int(1)),
		spec.WaitFor(1),
	}
	b := m.AddBehavior(spec.NewBehavior("B"))
	b.Body = []spec.Stmt{
		spec.AssignSig(spec.Ref(sig), spec.Int(2)),
		spec.WaitFor(1),
	}
	w := m.AddBehavior(spec.NewBehavior("W"))
	w.Body = []spec.Stmt{
		spec.WaitFor(2),
		spec.AssignVar(spec.Ref(seen), &spec.Conv{X: spec.Ref(sig), To: spec.Integer}),
	}
	return sys, sig
}

func TestScheduleHookOrdersDelta(t *testing.T) {
	// Default order: A then B, so B's write wins the delta.
	sys, _ := twoWriterSystem()
	res := mustRun(t, sys, Config{})
	if got := res.Final("m", "seen"); !got.Equal(IntVal{V: 2}) {
		t.Fatalf("default order: seen = %s, want 2", got)
	}

	// Forcing B before A makes A the last writer.
	sys, _ = twoWriterSystem()
	res = mustRun(t, sys, Config{
		Schedule: func(now int64, runnable []string) []string { return []string{"B", "A"} },
	})
	if got := res.Final("m", "seen"); !got.Equal(IntVal{V: 1}) {
		t.Fatalf("forced order: seen = %s, want 1", got)
	}

	// Names the hook omits keep running (after the listed ones).
	sys, _ = twoWriterSystem()
	res = mustRun(t, sys, Config{
		Schedule: func(now int64, runnable []string) []string { return []string{"B"} },
	})
	if got := res.Final("m", "seen"); !got.Equal(IntVal{V: 1}) {
		t.Fatalf("partial order: seen = %s, want 1", got)
	}
}

func TestVerifyDeterministicPasses(t *testing.T) {
	sys, _ := twoWriterSystem()
	err := VerifyDeterministic(sys, func() Config { return Config{} })
	if err != nil {
		t.Fatalf("plain config flagged as nondeterministic: %v", err)
	}
	// A deterministic Schedule hook is fine too.
	err = VerifyDeterministic(sys, func() Config {
		return Config{Schedule: func(now int64, runnable []string) []string { return []string{"B", "A"} }}
	})
	if err != nil {
		t.Fatalf("deterministic Schedule flagged: %v", err)
	}
}

func TestVerifyDeterministicCatchesStatefulHook(t *testing.T) {
	// A Schedule hook sharing mutable state across runs is exactly the
	// bug VerifyDeterministic exists to catch: the second run sees a
	// different order than the first.
	sys, _ := twoWriterSystem()
	calls := 0
	hook := func(now int64, runnable []string) []string {
		calls++
		if calls > 1 {
			return []string{"B", "A"}
		}
		return []string{"A", "B"}
	}
	err := VerifyDeterministic(sys, func() Config { return Config{Schedule: hook} })
	if err == nil {
		t.Fatal("divergent runs not detected")
	}
	if !strings.Contains(err.Error(), "nondeterministic") {
		t.Fatalf("unexpected error: %v", err)
	}
}
