package sim

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/spec"
)

// Engine is a reusable, pooled simulator for one system: behaviors are
// compiled to flat programs and every variable is resolved to a dense
// slot index once, at construction; each Run then borrows a runner from
// an internal pool, resets its slot arrays from shared immutable
// templates, and executes the delta-cycle loop inline — no goroutines,
// no channels, no per-run maps. Fault campaigns run the same system
// 10⁵–10⁷ times, which is exactly the regime where sim.New's per-run
// setup (goroutine + resume channel per process, fresh map tables)
// dominates wall time.
//
// An Engine run is bit-identical to the classic kernel on everything a
// caller can observe except Result.Steps: Clocks, Deltas, ProcessEnd,
// Finals, SignalEvents, the OnEvent/Mutate/Schedule hook sequences, and
// error strings all match (batch_test.go enforces this). Steps counts
// executed *instructions* of the compiled program rather than source
// statements, so its value differs; the MaxStepsPerSlice runaway guard
// correspondingly trips on instruction counts.
//
// Engine is safe for concurrent Run calls: runners are pooled and each
// call uses its own.
type Engine struct {
	sys *spec.System

	sigVars []*spec.Variable
	sigInit []Value
	sigIdx  map[*spec.Variable]int

	sharedVars []*spec.Variable
	sharedInit []Value
	sharedIdx  map[*spec.Variable]int

	// finalKeys/finalSlots precompute the Result.Finals map: the
	// "Module.Var" key and shared-slot index of every module variable,
	// so building a run's result concatenates no strings.
	finalKeys  []string
	finalSlots []int

	// recEscapes/bufUnsafe collect the compiler's container-escape
	// analysis; sigBufOK marks the record signals whose containers
	// provably never leave the kernel, so runners may drive them
	// through reusable double buffers instead of allocating a fresh
	// record per partial store.
	recEscapes map[*spec.Variable]bool
	arrEscapes map[*spec.Variable]bool
	bufUnsafe  bool
	sigBufOK   []bool

	// sigRecFields holds each record signal's declared field list (nil
	// for non-records). A committed value whose RecordType.Fields IS
	// this slice (pointer-equal) provably has the declared layout, so
	// per-read field-index and field-name guards can be settled once per
	// commit instead of once per evaluation (bsignal.curFields).
	sigRecFields [][]spec.Field

	progs []*bprogram
	pool  sync.Pool
}

// NewEngine compiles the system for pooled execution. It returns an
// error if the system does not validate or uses a construct the batch
// compiler cannot lower faithfully (recursive procedures, non-lvalue
// assignment targets); callers should fall back to New, whose
// interpreter handles every construct with runtime checks.
func NewEngine(sys *spec.System) (*Engine, error) {
	if errs := sys.Validate(); len(errs) > 0 {
		return nil, fmt.Errorf("sim: invalid system: %w", errs[0])
	}
	e := &Engine{
		sys:        sys,
		sigIdx:     make(map[*spec.Variable]int),
		sharedIdx:  make(map[*spec.Variable]int),
		recEscapes: make(map[*spec.Variable]bool),
		arrEscapes: make(map[*spec.Variable]bool),
	}
	addVar := func(v *spec.Variable) {
		if v.Kind == spec.KindSignal {
			e.sigIdx[v] = len(e.sigVars)
			e.sigVars = append(e.sigVars, v)
			e.sigInit = append(e.sigInit, InitialValue(v))
		} else {
			e.sharedIdx[v] = len(e.sharedVars)
			e.sharedVars = append(e.sharedVars, v)
			e.sharedInit = append(e.sharedInit, InitialValue(v))
		}
	}
	for _, g := range sys.Globals {
		addVar(g)
	}
	for _, m := range sys.Modules {
		for _, v := range m.Variables {
			addVar(v)
		}
	}
	for _, m := range sys.Modules {
		for _, v := range m.Variables {
			if idx, ok := e.sharedIdx[v]; ok {
				e.finalKeys = append(e.finalKeys, m.Name+"."+v.Name)
				e.finalSlots = append(e.finalSlots, idx)
			}
		}
	}
	for _, b := range sys.Behaviors() {
		prog, err := e.compile(b)
		if err != nil {
			return nil, fmt.Errorf("sim: batch compile: %w", err)
		}
		e.progs = append(e.progs, prog)
	}
	e.sigRecFields = make([][]spec.Field, len(e.sigVars))
	for i, v := range e.sigVars {
		if rt, ok := v.Type.(spec.RecordType); ok && len(rt.Fields) > 0 {
			e.sigRecFields[i] = rt.Fields
		}
	}
	e.sigBufOK = make([]bool, len(e.sigVars))
	for i, v := range e.sigVars {
		if e.bufUnsafe {
			break
		}
		if rt, ok := v.Type.(spec.RecordType); ok && !e.recEscapes[v] && len(rt.Fields) > 0 {
			e.sigBufOK[i] = true
		}
	}
	// Element stores into never-aliased array variables may mutate the
	// container in place once the run owns it; decided only now, because
	// a shared array could escape in a behavior compiled later.
	if !e.bufUnsafe {
		for _, prog := range e.progs {
			for i := range prog.code {
				in := &prog.code[i]
				if in.op != bopAssign || in.lref.sp == slotSignal || len(in.path) == 0 || in.path[0].kind != 0 {
					continue
				}
				if _, ok := in.base.Type.(spec.ArrayType); ok && !e.arrEscapes[in.base] {
					in.aOwn = true
				}
			}
		}
	}
	e.pool.New = func() any { return newRunner(e) }
	return e, nil
}

// System returns the system the engine was compiled for.
func (e *Engine) System() *spec.System { return e.sys }

// Run executes the system once under cfg, exactly like New(sys,
// cfg).Run() but on a pooled runner. Configurations with a cost model
// need the interpreter's statement-level lag accounting and are
// delegated to the classic kernel.
func (e *Engine) Run(cfg Config) (*Result, error) {
	if cfg.Cost != nil {
		s, err := New(e.sys, cfg)
		if err != nil {
			return nil, err
		}
		return s.Run()
	}
	r := e.pool.Get().(*runner)
	r.reset(cfg)
	res, err := r.run()
	e.pool.Put(r)
	return res, err
}

// bsignal is the runner-side storage of one signal slot.
type bsignal struct {
	current Value
	// curFields caches current's field slice when current is a
	// RecordVal in the signal's exact declared layout (see
	// Engine.sigRecFields); nil otherwise. Readers holding a
	// compile-time field index may index it directly — the layout
	// check already happened at commit.
	curFields []Value
	pending   Value // nil if no update scheduled this delta
	events    int64
	// skipMutate marks a pending update that came from a Mutation's
	// delayed re-commit, which must not pass through Config.Mutate
	// again.
	skipMutate bool
	// muteHook is set when a Mutation returned SkipSig: the hook
	// promised to never touch this signal, so flush stops calling it
	// for the rest of the run (cleared by reset).
	muteHook bool
	// pendingOwned marks a pending value whose top-level container was
	// freshly built by this run's own partial store (applyPath) and has
	// never been visible outside the runner: until flush hands it to
	// hooks or commits it, further single-level field stores may mutate
	// it in place instead of rebuilding the record. Handshake processes
	// drive individual bus record fields every delta, so this turns the
	// kernel's dominant allocation into a slot write.
	pendingOwned bool
}

// recFieldsOf returns v's field slice when v is a RecordVal whose type
// holds exactly the declared field list (pointer-equal slice), nil
// otherwise. Pointer equality proves the layout: every compile-time
// index and name derived from the declared type is valid for v.
func recFieldsOf(decl []spec.Field, v Value) []Value {
	if decl == nil {
		return nil
	}
	if rv, ok := v.(RecordVal); ok && len(rv.Type.Fields) > 0 && len(decl) > 0 && &rv.Type.Fields[0] == &decl[0] && len(rv.Fields) == len(decl) {
		return rv.Fields
	}
	return nil
}

func (s *bsignal) effective() Value {
	if s.pending != nil {
		return s.pending
	}
	return s.current
}

// recBuf is one reusable record container for a buffered signal: the
// mutable fields slice and its pre-boxed RecordVal, so a buffered store
// allocates nothing at all.
type recBuf struct {
	fields []Value
	val    Value
}

// bdelayed is a signal value a Mutation deferred to a later clock.
type bdelayed struct {
	at   int64
	idx  int32
	val  Value
	base Value
}

// bproc is one compiled process within a runner.
type bproc struct {
	r      *runner
	prog   *bprogram
	ev     Evaluator
	locals []Value
	pc     int32
	state  procState
	err    error
	endAt  int64
	// wait state, valid while state == stateWaiting:
	wMeta     *waitMeta
	wDeadline int64 // -1: none
	wForever  bool
	wHasCheck bool
	// inWait marks that the next exec resumes a suspended wait (assign
	// the timeout flag, advance past the instruction).
	inWait     bool
	timedOut   bool
	sliceSteps int64
	// stack is the reusable operand stack for compiled expressions.
	stack []Value
	// localOwn marks local slots whose container this run built itself
	// (copy-on-write store); eligible aOwn stores then mutate in place.
	localOwn []bool
}

// runner is one pooled run context. All slices are sized once at
// construction; reset re-fills them from the engine's immutable
// templates, so repeated runs allocate only what evaluation itself
// allocates.
type runner struct {
	e   *Engine
	cfg Config

	sig     []bsignal
	shared  []Value
	procs   []*bproc
	dirty   []int32
	delayed []bdelayed

	// recBufs double-buffers eligible record signals (Engine.sigBufOK):
	// a pending value is always built in the buffer that is not the
	// current value, so the committed container is never overwritten.
	// useBufs gates them per run: an OnEvent hook receives committed
	// values and may legitimately retain them, which buffer recycling
	// would corrupt.
	recBufs [][2]recBuf
	useBufs bool

	// sharedOwn is localOwn for the shared slots (module variables).
	sharedOwn []bool

	// changedAt stamps the flush in which each signal last changed;
	// stamps are monotonic across runs so reset never needs to clear it.
	changedAt []int64
	stamp     int64

	runnableBuf []int32

	now      int64
	deltas   int64
	steps    int64
	graceEnd int64
}

func newRunner(e *Engine) *runner {
	r := &runner{
		e:         e,
		sig:       make([]bsignal, len(e.sigVars)),
		shared:    make([]Value, len(e.sharedVars)),
		sharedOwn: make([]bool, len(e.sharedVars)),
		changedAt: make([]int64, len(e.sigVars)),
		graceEnd:  -1,
	}
	r.recBufs = make([][2]recBuf, len(e.sigVars))
	for i, ok := range e.sigBufOK {
		if !ok {
			continue
		}
		rt := e.sigVars[i].Type.(spec.RecordType)
		for k := 0; k < 2; k++ {
			f := make([]Value, len(rt.Fields))
			r.recBufs[i][k] = recBuf{fields: f, val: RecordVal{Type: rt, Fields: f}}
		}
	}
	for _, prog := range e.progs {
		p := &bproc{
			r: r, prog: prog,
			locals:    make([]Value, len(prog.locals)),
			localOwn:  make([]bool, len(prog.locals)),
			stack:     make([]Value, 0, prog.maxStack),
			wDeadline: -1,
		}
		p.ev = Evaluator{Lookup: p.lookup, Fail: p.evFail}
		r.procs = append(r.procs, p)
	}
	return r
}

// reset restores the runner to the system's initial state. Initial
// values are shared with the engine's templates (and between runs):
// runtime updates either build new containers (applyPath, persistent
// bit vectors) or mutate in place only containers the ownership flags
// prove this run built itself, so templates are never mutated. What survives a reset:
// the compiled programs, the slot arrays' capacity, the evaluator
// closures, and the changedAt stamps (monotonic, so stale marks never
// match). What is re-derived: all values, scheduling state, and time.
func (r *runner) reset(cfg Config) {
	if cfg.MaxClocks <= 0 {
		cfg.MaxClocks = 10_000_000
	}
	if cfg.MaxStepsPerSlice <= 0 {
		cfg.MaxStepsPerSlice = 5_000_000
	}
	r.cfg = cfg
	r.useBufs = cfg.OnEvent == nil
	for i := range r.sig {
		r.sig[i] = bsignal{current: r.e.sigInit[i], curFields: recFieldsOf(r.e.sigRecFields[i], r.e.sigInit[i])}
	}
	copy(r.shared, r.e.sharedInit)
	// Slot containers now come from the engine's shared templates; no
	// slot owns its container until a copy-on-write store replaces it.
	for i := range r.sharedOwn {
		r.sharedOwn[i] = false
	}
	for _, p := range r.procs {
		copy(p.locals, p.prog.localInit)
		for i := range p.localOwn {
			p.localOwn[i] = false
		}
		p.pc = 0
		p.state = stateReady
		p.err = nil
		p.endAt = 0
		p.wMeta = nil
		p.wDeadline = -1
		p.wForever = false
		p.wHasCheck = false
		p.inWait = false
		p.timedOut = false
		p.sliceSteps = 0
	}
	r.dirty = r.dirty[:0]
	r.delayed = r.delayed[:0]
	r.now = 0
	r.deltas = 0
	r.steps = 0
	r.graceEnd = -1
}

// run is the delta-cycle loop — a direct port of kernel.run with the
// goroutine ping-pong replaced by inline stepProc calls.
func (r *runner) run() (*Result, error) {
	runnable := r.runnableBuf[:0]
	for i := range r.procs {
		runnable = append(runnable, int32(i))
	}
	defer func() { r.runnableBuf = runnable[:0] }()
	for {
		// Delta cycles.
		for len(runnable) > 0 {
			r.deltas++
			if r.deltas > maxDeltas {
				return nil, fmt.Errorf("sim: exceeded %d delta cycles at clock %d (livelock?)", int64(maxDeltas), r.now)
			}
			insertionSortInt32(runnable)
			r.reorder(runnable)
			for _, pi := range runnable {
				if err := r.stepProc(r.procs[pi]); err != nil {
					return nil, err
				}
			}
			runnable = runnable[:0]
			if r.flush() {
				runnable = r.wake(runnable)
			}
		}

		if r.foregroundDone() {
			if r.graceEnd < 0 {
				r.graceEnd = r.now + graceClocks
			}
		}

		next := int64(-1)
		for _, p := range r.procs {
			if p.state == stateWaiting && !p.wForever && p.wDeadline >= 0 {
				if next < 0 || p.wDeadline < next {
					next = p.wDeadline
				}
			}
		}
		for i := range r.delayed {
			if next < 0 || r.delayed[i].at < next {
				next = r.delayed[i].at
			}
		}
		if r.graceEnd >= 0 && (next < 0 || next > r.graceEnd) {
			return r.result(), nil
		}
		if next < 0 {
			return nil, r.deadlock()
		}
		if next > r.cfg.MaxClocks {
			return nil, fmt.Errorf("sim: exceeded MaxClocks=%d at clock %d", r.cfg.MaxClocks, r.now)
		}
		r.now = next
		if r.applyDelayed() {
			if r.flush() {
				runnable = r.wake(runnable)
			}
		}
		for i, p := range r.procs {
			if p.state == stateWaiting && !p.wForever && p.wDeadline == r.now {
				p.timedOut = p.wHasCheck && !p.condBool(p.wMeta.funtil, p.wMeta.cuntil, p.wMeta.w.Until)
				p.state = stateReady
				runnable = append(runnable, int32(i))
			}
		}
	}
}

// reorder applies the Config.Schedule hook, matching kernel.reorder.
func (r *runner) reorder(runnable []int32) {
	if r.cfg.Schedule == nil || len(runnable) < 2 {
		return
	}
	names := make([]string, len(runnable))
	for i, pi := range runnable {
		names[i] = r.procs[pi].prog.beh.Name
	}
	rank := make(map[string]int, len(runnable))
	for _, n := range r.cfg.Schedule(r.now, names) {
		if _, ok := rank[n]; !ok {
			rank[n] = len(rank)
		}
	}
	sort.SliceStable(runnable, func(i, j int) bool {
		ri, iok := rank[r.procs[runnable[i]].prog.beh.Name]
		rj, jok := rank[r.procs[runnable[j]].prog.beh.Name]
		if iok != jok {
			return iok
		}
		return iok && ri < rj
	})
}

func (r *runner) stepProc(p *bproc) error {
	p.sliceSteps = 0
	p.exec()
	if p.state == stateError {
		return fmt.Errorf("sim: process %s failed at clock %d: %w", p.prog.beh.Name, r.now, p.err)
	}
	return nil
}

// flush applies pending signal updates (kernel.flush), stamping changed
// slots for wake; reports whether any event fired.
func (r *runner) flush() bool {
	r.stamp++
	any := false
	for _, idx := range r.dirty {
		s := &r.sig[idx]
		if s.pending == nil {
			continue
		}
		if r.cfg.Mutate != nil && !s.skipMutate && !s.muteHook {
			m := r.cfg.Mutate(r.now, r.e.sigVars[idx], s.current, s.pending)
			if m.Now == nil && m.Later == nil {
				if m.Done {
					r.cfg.Mutate = nil
				}
				if m.SkipSig {
					s.muteHook = true
				}
			}
			if m.Now != nil {
				s.pending = m.Now
			}
			if m.Later != nil && m.Delay > 0 {
				r.delayed = append(r.delayed, bdelayed{
					at: r.now + m.Delay, idx: idx, val: m.Later, base: s.pending.Copy(),
				})
			}
		}
		s.skipMutate = false
		// The pending value is about to be committed (visible via hooks
		// and reads) or dropped; either way it is no longer private.
		s.pendingOwned = false
		if !s.pending.Equal(s.current) {
			s.current = s.pending
			s.curFields = recFieldsOf(r.e.sigRecFields[idx], s.current)
			s.events++
			s.pending = nil
			r.changedAt[idx] = r.stamp
			any = true
			if r.cfg.OnEvent != nil {
				r.cfg.OnEvent(r.now, r.e.sigVars[idx], s.current)
			}
			continue
		}
		s.pending = nil
	}
	r.dirty = r.dirty[:0]
	return any
}

// wake appends the processes woken by the last flush's events
// (kernel.wakeOnEvents).
func (r *runner) wake(runnable []int32) []int32 {
	for i, p := range r.procs {
		if p.state != stateWaiting || p.wForever {
			continue
		}
		hit := false
		for _, si := range p.wMeta.sensIdx {
			if r.changedAt[si] == r.stamp {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		if p.wHasCheck && !p.condBool(p.wMeta.funtil, p.wMeta.cuntil, p.wMeta.w.Until) {
			continue
		}
		p.timedOut = false
		p.state = stateReady
		runnable = append(runnable, int32(i))
	}
	return runnable
}

// applyDelayed commits due delayed updates (kernel.applyDelayed).
func (r *runner) applyDelayed() bool {
	applied := false
	rest := r.delayed[:0]
	for _, d := range r.delayed {
		if d.at > r.now {
			rest = append(rest, d)
			continue
		}
		s := &r.sig[d.idx]
		if s.pending == nil {
			r.dirty = append(r.dirty, d.idx)
		}
		s.pending = mergeDelayed(s.effective(), d.base, d.val)
		s.skipMutate = true
		s.pendingOwned = false
		applied = true
	}
	r.delayed = rest
	return applied
}

// schedule registers a pending signal update for the current delta
// (kernel.schedule).
func (r *runner) schedule(idx int32, val Value) {
	s := &r.sig[idx]
	if s.pending == nil {
		r.dirty = append(r.dirty, idx)
	}
	s.pending = val
}

func (r *runner) foregroundDone() bool {
	for _, p := range r.procs {
		if !p.prog.beh.Server && p.state != stateFinished && p.state != stateError {
			return false
		}
	}
	return true
}

func (r *runner) deadlock() error {
	var waiting []string
	for _, p := range r.procs {
		if p.state != stateWaiting {
			continue
		}
		name := p.prog.beh.Name
		if p.prog.beh.Server {
			name += " (server)"
		}
		m := p.wMeta
		waiting = append(waiting, fmt.Sprintf("%s: %s",
			name, formatWait(m.sensNames, p.wHasCheck, m.condStr, p.wDeadline, p.wForever)))
	}
	bus := busStateOf(r.e.sys, func(v *spec.Variable) (Value, bool) {
		idx, ok := r.e.sigIdx[v]
		if !ok {
			return nil, false
		}
		return r.sig[idx].current, true
	})
	return &DeadlockError{Now: r.now, Waiting: waiting, Bus: bus}
}

func (r *runner) result() *Result {
	res := &Result{
		Clocks: r.now,
		Deltas: r.deltas,
		Steps:  r.steps,
		Finals: make(map[string]Value, len(r.e.finalKeys)),
	}
	// Values are immutable at runtime, so the Result can share them with
	// the (about to be re-pooled) runner without copying.
	for i, key := range r.e.finalKeys {
		res.Finals[key] = r.shared[r.e.finalSlots[i]]
	}
	if r.cfg.FinalsOnly {
		return res
	}
	res.ProcessEnd = make(map[string]int64, len(r.procs))
	res.SignalEvents = make(map[string]int64, len(r.e.sigVars))
	for _, p := range r.procs {
		if !p.prog.beh.Server && p.state == stateFinished {
			res.ProcessEnd[p.prog.beh.Name] = p.endAt
		}
	}
	for i, v := range r.e.sigVars {
		res.SignalEvents[v.Name] = r.sig[i].events
	}
	return res
}

// ---- process execution ----

func (p *bproc) failf(format string, args ...any) {
	fail("process "+p.prog.beh.Name+": "+format, args...)
}

func (p *bproc) evFail(format string, args ...any) {
	fail("process "+p.prog.beh.Name+": "+format, args...)
}

// lookup resolves a variable read against the program's slot table,
// with the interpreter's error for never-initialized scratch slots.
func (p *bproc) lookup(v *spec.Variable) Value {
	ref, ok := p.prog.res[v]
	if !ok {
		// Every compiled expression was scanned, so its variables are
		// resolved; this is reachable only from hook-supplied expressions.
		p.failf("variable %s not in scope", v.Name)
	}
	switch ref.sp {
	case slotShared:
		return p.r.shared[ref.idx]
	case slotSignal:
		return p.r.sig[ref.idx].current
	}
	val := p.locals[ref.idx]
	if val == nil {
		p.failf("variable %s not in scope", v.Name)
	}
	return val
}

// exec runs the process until it suspends, finishes or fails, starting
// from the program counter it last yielded at.
func (p *bproc) exec() {
	defer func() {
		if rec := recover(); rec != nil {
			if se, ok := rec.(simError); ok {
				p.state = stateError
				p.err = se.err
			} else {
				p.state = stateError
				p.err = fmt.Errorf("internal fault: %v", rec)
			}
		}
	}()
	code := p.prog.code
	if p.inWait {
		p.inWait = false
		m := code[p.pc].wait
		p.wMeta = nil
		p.wDeadline = -1
		p.wForever = false
		p.wHasCheck = false
		if m.timedOut != nil {
			p.setStorage(m.timedOutRef, m.timedOut, BoolVal{V: p.timedOut})
		}
		p.pc++
	}
	for {
		p.sliceSteps++
		p.r.steps++
		if p.sliceSteps > p.r.cfg.MaxStepsPerSlice {
			// Counts compiled instructions, not source statements, so the
			// reported number differs from the classic kernel's.
			fail("process %s executed %d statements without yielding (runaway zero-delay loop?)",
				p.prog.beh.Name, p.sliceSteps)
		}
		in := &code[p.pc]
		switch in.op {
		case bopAssign:
			p.execAssign(in)
			p.pc++
		case bopBranch:
			if p.condBool(in.fcond, in.ccond, in.cond) {
				p.pc++
			} else {
				p.pc = in.target
			}
		case bopJump:
			p.pc = in.target
		case bopClear:
			p.locals[in.slot] = in.clearVal
			p.pc++
		case bopWait:
			if p.execWait(in.wait) {
				p.pc++
				continue
			}
			p.state = stateWaiting
			p.inWait = true
			return
		default: // bopEnd
			p.state = stateFinished
			p.endAt = p.r.now
			return
		}
	}
}

// execAssign evaluates the right-hand side and stores it, replicating
// interp.go's assign: signal targets are delta-scheduled (partial
// stores build on the pending value), variable targets update in place,
// and a plain store to a never-initialized scratch slot fails "not
// writable" like the interpreter's missing storage cell.
func (p *bproc) execAssign(in *binstr) {
	val := p.evalExpr(in.crhs, in.rhs)
	ref := in.lref
	if ref.sp == slotSignal {
		s := &p.r.sig[ref.idx]
		if len(in.path) == 0 {
			p.r.schedule(ref.idx, Coerce(val, in.base.Type))
			// A plain store's value may be shared (interned box, another
			// variable's container) — never mutable in place.
			s.pendingOwned = false
			return
		}
		if a := &in.path[0]; len(in.path) == 1 && a.kind == 1 {
			if s.pending != nil && s.pendingOwned {
				if rv, ok := s.pending.(RecordVal); ok {
					i := int(a.fieldIdx)
					if i < 0 || i >= len(rv.Type.Fields) || rv.Type.Fields[i].Name != a.field {
						i = rv.FieldIndex(a.field)
					}
					if i >= 0 {
						rv.Fields[i] = Coerce(val, rv.Type.Fields[i].Type)
						return
					}
					// Unknown field: fall through so applyPath raises the
					// interpreter's exact error.
				}
			} else if s.pending == nil && p.r.useBufs {
				// First field store of this delta on a buffer-eligible
				// signal: build the pending value in the recycled buffer
				// that is not the current container, copying the committed
				// fields and overwriting the target — an allocation-free
				// equivalent of applyPath's rebuild. curFields is the
				// commit-time proof that current has the declared layout,
				// which also validates the compile-time field hint (both
				// derive from the same declared type).
				if flds := s.curFields; flds != nil {
					if bufs := &p.r.recBufs[ref.idx]; bufs[0].fields != nil && len(flds) == len(bufs[0].fields) {
						if i := int(a.fieldIdx); i >= 0 && i < len(flds) {
							k := 0
							if &flds[0] == &bufs[0].fields[0] {
								k = 1
							}
							copy(bufs[k].fields, flds)
							bufs[k].fields[i] = Coerce(val, p.r.e.sigRecFields[ref.idx][i].Type)
							p.r.schedule(ref.idx, bufs[k].val)
							s.pendingOwned = true
							return
						}
					}
				}
			}
		}
		p.r.schedule(ref.idx, p.ev.applyPath(s.effective(), in.path, val))
		s.pendingOwned = true
		return
	}
	if len(in.path) == 0 {
		if ref.sp == slotLocal && !in.create && p.locals[ref.idx] == nil {
			p.failf("variable %s not writable", in.base.Name)
		}
		p.setRaw(ref, Coerce(val, in.base.Type))
		// A whole store may install a container shared with another
		// variable; the slot no longer owns it.
		p.setOwn(ref, false)
		return
	}
	cur := p.getRaw(ref)
	if cur == nil {
		p.failf("variable %s not writable", in.base.Name)
	}
	if in.aOwn && p.ownSlot(ref) {
		if av, ok := cur.(ArrayVal); ok {
			// The slot owns its container and the escape analysis proved
			// no read ever exposes it: mutate the element in place —
			// applyPath's rebuild without the per-store container copy.
			a := &in.path[0]
			idx := int(asInt(p.ev.Eval(a.index))) - av.Lo
			if idx < 0 || idx >= len(av.Elems) {
				p.ev.fail("store index %d out of range (len %d)", idx+av.Lo, len(av.Elems))
			}
			if len(in.path) == 1 {
				av.Elems[idx] = coerceLeafLike(val, av.Elems[idx])
			} else {
				av.Elems[idx] = p.ev.applyPath(av.Elems[idx], in.path[1:], val)
			}
			return
		}
	}
	p.setRaw(ref, p.ev.applyPath(cur, in.path, val))
	if in.aOwn {
		p.setOwn(ref, true)
	}
}

// ownSlot reports whether a non-signal slot's container was built by
// this run (so eligible stores may mutate it in place).
func (p *bproc) ownSlot(ref slotRef) bool {
	if ref.sp == slotShared {
		return p.r.sharedOwn[ref.idx]
	}
	return p.localOwn[ref.idx]
}

func (p *bproc) setOwn(ref slotRef, own bool) {
	if ref.sp == slotShared {
		p.r.sharedOwn[ref.idx] = own
	} else {
		p.localOwn[ref.idx] = own
	}
}

func (p *bproc) getRaw(ref slotRef) Value {
	if ref.sp == slotShared {
		return p.r.shared[ref.idx]
	}
	return p.locals[ref.idx]
}

func (p *bproc) setRaw(ref slotRef, val Value) {
	if ref.sp == slotShared {
		p.r.shared[ref.idx] = val
	} else {
		p.locals[ref.idx] = val
	}
}

// setStorage writes a setLocal-style target (timeout flag), coercing to
// the variable's declared type like the interpreter.
func (p *bproc) setStorage(ref slotRef, v *spec.Variable, val Value) {
	p.setRaw(ref, Coerce(val, v.Type))
}

// execWait replicates interp.go's execWait. It reports true when the
// process continues without suspending (immediate-check hit), false
// when it suspends with the wait state recorded on the process.
func (p *bproc) execWait(m *waitMeta) bool {
	s := m.w
	if m.badOn != nil {
		p.failf("wait on non-signal %s", m.badOn.Name)
	}
	if s.Until != nil {
		if p.condBool(m.funtil, m.cuntil, s.Until) {
			if m.timedOut != nil {
				p.setStorage(m.timedOutRef, m.timedOut, BoolVal{V: false})
			}
			return true
		}
		if m.noSense {
			p.failf("wait until %s has no signal sensitivity and no timeout", s.Until)
		}
	}
	p.wDeadline = -1
	if s.HasFor {
		if s.For < 0 {
			p.failf("negative wait duration %d", s.For)
		}
		p.wDeadline = p.r.now + s.For
	}
	p.wMeta = m
	p.wForever = m.forever
	p.wHasCheck = s.Until != nil
	return false
}

// insertionSortInt32 sorts a small id slice ascending; runnable sets
// are at most the process count, where insertion sort beats sort.Slice
// and allocates nothing.
func insertionSortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
