// Package bits implements fixed-width bit vectors with VHDL bit_vector
// semantics: a vector of width N models "bit_vector(N-1 downto 0)", bit 0
// being the least significant. Vectors are values; all operations return
// fresh vectors and never alias their operands.
//
// The package is the value substrate for the specification IR
// (internal/spec) and the discrete-event simulator (internal/sim): channel
// messages, bus data lines and memory words are all bit vectors.
package bits

import (
	"fmt"
	"strings"
)

const wordBits = 64

// Vector is a fixed-width bit vector. The zero value is a zero-width
// vector. Bit 0 is the least significant bit.
type Vector struct {
	width int
	words []uint64 // little-endian; bits above width are always zero
}

// New returns an all-zero vector of the given width. It panics if width is
// negative.
func New(width int) Vector {
	if width < 0 {
		panic(fmt.Sprintf("bits: negative width %d", width))
	}
	return Vector{width: width, words: make([]uint64, wordCount(width))}
}

func wordCount(width int) int { return (width + wordBits - 1) / wordBits }

// Small interned vectors: every vector of width 1..smallVecW whose
// value is below smallVecV is a shared immutable instance. Simulated
// protocols move flags, opcodes and byte-wide data words — the same few
// thousand small values sliced and rebuilt millions of times per fault
// campaign — and vector operations are persistent (no method mutates a
// vector once returned), so constructors can hand out shared instances
// instead of allocating.
const (
	smallVecW = 16
	smallVecV = 256
)

var smallVecs [smallVecW][smallVecV]Vector

func init() {
	// One backing array for the whole table keeps it a single
	// allocation and cache-dense.
	backing := make([]uint64, smallVecW*smallVecV)
	for w := 1; w <= smallVecW; w++ {
		for v := 0; v < smallVecV; v++ {
			if w < 8 && v>>uint(w) != 0 {
				continue // value does not fit the width
			}
			words := backing[:1:1]
			backing = backing[1:]
			words[0] = uint64(v)
			smallVecs[w-1][v] = Vector{width: w, words: words}
		}
	}
}

// smallVec returns the interned vector for (width, value) when the
// table covers it.
func smallVec(width int, v uint64) (Vector, bool) {
	if width < 1 || width > smallVecW || v >= smallVecV {
		return Vector{}, false
	}
	if width < 8 && v>>uint(width) != 0 {
		return Vector{}, false
	}
	return smallVecs[width-1][v], true
}

// FromUint returns a vector of the given width holding v truncated to
// width bits.
func FromUint(v uint64, width int) Vector {
	if width >= 1 && width <= smallVecW {
		if sv, ok := smallVec(width, v&maskLow(width)); ok {
			return sv
		}
	}
	x := New(width)
	if width == 0 {
		return x
	}
	x.words[0] = v
	x.mask()
	return x
}

// FromInt returns a vector of the given width holding the two's-complement
// encoding of v truncated to width bits.
func FromInt(v int64, width int) Vector {
	if width >= 1 && width <= smallVecW {
		if sv, ok := smallVec(width, uint64(v)&maskLow(width)); ok {
			return sv
		}
	}
	x := New(width)
	if width == 0 {
		return x
	}
	for i := range x.words {
		x.words[i] = uint64(v) // sign-extends across words
		if v < 0 {
			x.words[i] = ^uint64(0)
		}
	}
	x.words[0] = uint64(v)
	if v >= 0 {
		for i := 1; i < len(x.words); i++ {
			x.words[i] = 0
		}
	}
	x.mask()
	return x
}

// Parse parses a binary string such as "1010" (most significant bit first,
// optional '_' separators) into a vector whose width equals the number of
// binary digits.
func Parse(s string) (Vector, error) {
	digits := 0
	for _, c := range s {
		switch c {
		case '0', '1':
			digits++
		case '_':
		default:
			return Vector{}, fmt.Errorf("bits: invalid character %q in %q", c, s)
		}
	}
	x := New(digits)
	i := digits - 1
	for _, c := range s {
		switch c {
		case '0':
			i--
		case '1':
			x.words[i/wordBits] |= 1 << (i % wordBits)
			i--
		}
	}
	return x, nil
}

// MustParse is Parse but panics on error. Intended for literals in tests
// and generated code.
func MustParse(s string) Vector {
	x, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return x
}

// mask clears any bits above the width.
func (x *Vector) mask() {
	if x.width == 0 {
		return
	}
	if r := x.width % wordBits; r != 0 {
		x.words[len(x.words)-1] &= (1 << r) - 1
	}
}

// Width reports the number of bits in the vector.
func (x Vector) Width() int { return x.width }

// Bit reports bit i (0 = least significant). It panics if i is out of
// range.
func (x Vector) Bit(i int) bool {
	if i < 0 || i >= x.width {
		panic(fmt.Sprintf("bits: bit index %d out of range [0,%d)", i, x.width))
	}
	return x.words[i/wordBits]&(1<<(i%wordBits)) != 0
}

// SetBit returns a copy of x with bit i set to b.
func (x Vector) SetBit(i int, b bool) Vector {
	if i < 0 || i >= x.width {
		panic(fmt.Sprintf("bits: bit index %d out of range [0,%d)", i, x.width))
	}
	y := x.Clone()
	if b {
		y.words[i/wordBits] |= 1 << (i % wordBits)
	} else {
		y.words[i/wordBits] &^= 1 << (i % wordBits)
	}
	return y
}

// Clone returns an independent copy of x.
func (x Vector) Clone() Vector {
	y := Vector{width: x.width, words: make([]uint64, len(x.words))}
	copy(y.words, x.words)
	return y
}

// AppendBytes appends x's packed bits to dst little-endian — exactly
// ceil(width/8) bytes, low byte first; bits above the width are zero
// (the representation invariant masks them). For equal-width vectors
// the appended bytes are equal iff the vectors are Equal, which makes
// the rendering usable as a hash/dedup key without going through
// String; the tight byte count matters because callers hash and
// compare millions of these.
func (x Vector) AppendBytes(dst []byte) []byte {
	n := (x.width + 7) / 8
	for _, w := range x.words {
		for k := 0; k < 8 && n > 0; k++ {
			dst = append(dst, byte(w))
			w >>= 8
			n--
		}
	}
	return dst
}

// FromBytes rebuilds a vector of the given width from its AppendBytes
// rendering: exactly ceil(width/8) little-endian bytes. It is the
// decode half of the spill-store record codec — FromBytes(AppendBytes
// nil, w) must Equal the original for every vector. Small values route
// through FromUint so decoded vectors hit the interning table like
// freshly constructed ones.
func FromBytes(b []byte, width int) (Vector, error) {
	n := (width + 7) / 8
	if len(b) != n {
		return Vector{}, fmt.Errorf("bits: FromBytes got %d bytes for width %d (want %d)", len(b), width, n)
	}
	if width <= 64 {
		var v uint64
		for i := n - 1; i >= 0; i-- {
			v = v<<8 | uint64(b[i])
		}
		if v&^maskLow(width) != 0 {
			return Vector{}, fmt.Errorf("bits: FromBytes width-%d encoding has bits above the width", width)
		}
		return FromUint(v, width), nil
	}
	x := New(width)
	for i, c := range b {
		x.words[i/8] |= uint64(c) << (8 * (i % 8))
	}
	before := x.words[len(x.words)-1]
	x.mask()
	if x.words[len(x.words)-1] != before {
		return Vector{}, fmt.Errorf("bits: FromBytes width-%d encoding has bits above the width", width)
	}
	return x, nil
}

// Uint64 returns the value of the low 64 bits of x, zero-extended.
func (x Vector) Uint64() uint64 {
	if len(x.words) == 0 {
		return 0
	}
	return x.words[0]
}

// Int64 interprets x as a two's-complement signed number and returns its
// value. Vectors wider than 64 bits are truncated to their low 64 bits
// before sign interpretation of bit width-1.
func (x Vector) Int64() int64 {
	if x.width == 0 {
		return 0
	}
	v := x.Uint64()
	if x.width < 64 {
		if x.Bit(x.width - 1) { // sign extend
			v |= ^uint64(0) << x.width
		}
	}
	return int64(v)
}

// IsZero reports whether every bit of x is zero.
func (x Vector) IsZero() bool {
	for _, w := range x.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether x and y have the same width and bits.
func (x Vector) Equal(y Vector) bool {
	if x.width != y.width {
		return false
	}
	for i := range x.words {
		if x.words[i] != y.words[i] {
			return false
		}
	}
	return true
}

// Slice returns bits hi downto lo of x as a new vector of width hi-lo+1,
// mirroring the VHDL slice x(hi downto lo). It panics unless
// 0 <= lo <= hi < x.Width().
func (x Vector) Slice(hi, lo int) Vector {
	if lo < 0 || hi < lo || hi >= x.width {
		panic(fmt.Sprintf("bits: slice (%d downto %d) out of range for width %d", hi, lo, x.width))
	}
	w := hi - lo + 1
	if w <= smallVecW {
		word, off := lo/wordBits, uint(lo%wordBits)
		v := x.words[word] >> off
		if off != 0 && word+1 < len(x.words) {
			v |= x.words[word+1] << (wordBits - off)
		}
		if sv, ok := smallVec(w, v&maskLow(w)); ok {
			return sv
		}
	}
	y := New(w)
	// Word-at-a-time extraction: each output word is one or two input
	// words shifted into place.
	word, off := lo/wordBits, uint(lo%wordBits)
	for i := range y.words {
		v := x.words[word+i] >> off
		if off != 0 && word+i+1 < len(x.words) {
			v |= x.words[word+i+1] << (wordBits - off)
		}
		y.words[i] = v
	}
	y.mask()
	return y
}

// SetSlice returns a copy of x with bits hi downto lo replaced by v, which
// must have width hi-lo+1.
func (x Vector) SetSlice(hi, lo int, v Vector) Vector {
	if lo < 0 || hi < lo || hi >= x.width {
		panic(fmt.Sprintf("bits: slice (%d downto %d) out of range for width %d", hi, lo, x.width))
	}
	if v.width != hi-lo+1 {
		panic(fmt.Sprintf("bits: slice width mismatch: slot %d, value %d", hi-lo+1, v.width))
	}
	y := x.Clone()
	// Word-at-a-time store: within each word the slot spans, mask out the
	// slot bits and or in the corresponding word of v shifted into place.
	word, off := lo/wordBits, uint(lo%wordBits)
	lastWord := hi / wordBits
	for j := word; j <= lastWord; j++ {
		start := 0
		if j == word {
			start = int(off)
		}
		end := wordBits - 1
		if j == lastWord {
			end = hi % wordBits
		}
		msk := maskLow(end-start+1) << uint(start)
		// Word j of v<<off: the low part of v.words[k] plus the carry out
		// of v.words[k-1].
		k := j - word
		var val uint64
		if k < len(v.words) {
			val = v.words[k] << off
		}
		if off != 0 && k > 0 {
			val |= v.words[k-1] >> (wordBits - off)
		}
		y.words[j] = y.words[j]&^msk | val&msk
	}
	return y
}

// maskLow returns a mask of the n lowest bits (n in [0,64]).
func maskLow(n int) uint64 {
	if n >= wordBits {
		return ^uint64(0)
	}
	return (1 << uint(n)) - 1
}

// Concat returns the vector hi & lo (hi occupying the most significant
// bits), of width hi.Width()+lo.Width().
func Concat(hi, lo Vector) Vector {
	y := New(hi.width + lo.width)
	for i := 0; i < lo.width; i++ {
		if lo.Bit(i) {
			y.words[i/wordBits] |= 1 << (i % wordBits)
		}
	}
	for i := 0; i < hi.width; i++ {
		if hi.Bit(i) {
			j := lo.width + i
			y.words[j/wordBits] |= 1 << (j % wordBits)
		}
	}
	return y
}

// Resize returns x truncated or zero-extended to the given width.
func (x Vector) Resize(width int) Vector {
	if width == x.width {
		// Vectors are persistent; an identity resize can share x.
		return x
	}
	if width >= 1 && width <= smallVecW && len(x.words) > 0 {
		if sv, ok := smallVec(width, x.words[0]&maskLow(min(width, x.width))); ok {
			return sv
		}
	}
	y := New(width)
	n := min(width, x.width)
	for i := 0; i < n; i++ {
		if x.Bit(i) {
			y.words[i/wordBits] |= 1 << (i % wordBits)
		}
	}
	return y
}

// Add returns x+y modulo 2^width. Both operands must have equal width.
func (x Vector) Add(y Vector) Vector {
	x.checkSameWidth(y, "Add")
	z := New(x.width)
	var carry uint64
	for i := range x.words {
		s := x.words[i] + y.words[i]
		c1 := boolToU64(s < x.words[i])
		s2 := s + carry
		c2 := boolToU64(s2 < s)
		z.words[i] = s2
		carry = c1 | c2
	}
	z.mask()
	return z
}

// Sub returns x-y modulo 2^width. Both operands must have equal width.
func (x Vector) Sub(y Vector) Vector {
	x.checkSameWidth(y, "Sub")
	return x.Add(y.Not()).Add(FromUint(1, x.width))
}

// Not returns the bitwise complement of x.
func (x Vector) Not() Vector {
	z := New(x.width)
	for i := range x.words {
		z.words[i] = ^x.words[i]
	}
	z.mask()
	return z
}

// And returns x AND y. Both operands must have equal width.
func (x Vector) And(y Vector) Vector {
	x.checkSameWidth(y, "And")
	z := New(x.width)
	for i := range x.words {
		z.words[i] = x.words[i] & y.words[i]
	}
	return z
}

// Or returns x OR y. Both operands must have equal width.
func (x Vector) Or(y Vector) Vector {
	x.checkSameWidth(y, "Or")
	z := New(x.width)
	for i := range x.words {
		z.words[i] = x.words[i] | y.words[i]
	}
	return z
}

// Xor returns x XOR y. Both operands must have equal width.
func (x Vector) Xor(y Vector) Vector {
	x.checkSameWidth(y, "Xor")
	z := New(x.width)
	for i := range x.words {
		z.words[i] = x.words[i] ^ y.words[i]
	}
	return z
}

// CompareUnsigned compares x and y as unsigned numbers, returning -1, 0 or
// +1. Operands of different widths are compared by value.
func (x Vector) CompareUnsigned(y Vector) int {
	n := max(len(x.words), len(y.words))
	for i := n - 1; i >= 0; i-- {
		var xv, yv uint64
		if i < len(x.words) {
			xv = x.words[i]
		}
		if i < len(y.words) {
			yv = y.words[i]
		}
		switch {
		case xv < yv:
			return -1
		case xv > yv:
			return 1
		}
	}
	return 0
}

func (x Vector) checkSameWidth(y Vector, op string) {
	if x.width != y.width {
		panic(fmt.Sprintf("bits: %s width mismatch: %d vs %d", op, x.width, y.width))
	}
}

// String renders x as a binary string, most significant bit first, e.g.
// "1010" for a 4-bit vector holding 10. A zero-width vector renders as "".
func (x Vector) String() string {
	var b strings.Builder
	b.Grow(x.width)
	for i := x.width - 1; i >= 0; i-- {
		if x.Bit(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Hex renders x as X"..." in the VHDL style, padding the width up to a
// multiple of four bits.
func (x Vector) Hex() string {
	n := (x.width + 3) / 4
	var b strings.Builder
	b.WriteString(`X"`)
	for i := n - 1; i >= 0; i-- {
		var nib uint64
		for j := 3; j >= 0; j-- {
			bit := i*4 + j
			nib <<= 1
			if bit < x.width && x.Bit(bit) {
				nib |= 1
			}
		}
		fmt.Fprintf(&b, "%X", nib)
	}
	b.WriteString(`"`)
	return b.String()
}

// Words splits x into ceil(width/w) vectors of width w each, least
// significant word first; the final word is zero-padded. This is exactly
// the word slicing performed by generated SendCH/ReceiveCH procedures when
// a message wider than the bus is transferred in several bus cycles.
func (x Vector) Words(w int) []Vector {
	if w <= 0 {
		panic(fmt.Sprintf("bits: invalid word width %d", w))
	}
	n := (x.width + w - 1) / w
	if n == 0 {
		return nil
	}
	out := make([]Vector, n)
	for i := 0; i < n; i++ {
		lo := i * w
		hi := min(lo+w-1, x.width-1)
		out[i] = x.Slice(hi, lo).Resize(w)
	}
	return out
}

// Join reassembles a message of the given width from bus words produced by
// Words(w): the inverse of Words up to the zero padding of the final word.
func Join(words []Vector, width int) Vector {
	x := New(width)
	pos := 0
	for _, wv := range words {
		for i := 0; i < wv.Width() && pos < width; i++ {
			if wv.Bit(i) {
				x.words[pos/wordBits] |= 1 << (pos % wordBits)
			}
			pos++
		}
	}
	return x
}

func boolToU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Lsh returns x shifted left by n bits (zero fill, width preserved).
func (x Vector) Lsh(n int) Vector {
	if n < 0 {
		panic(fmt.Sprintf("bits: negative shift %d", n))
	}
	y := New(x.width)
	for i := x.width - 1; i >= n; i-- {
		if x.Bit(i - n) {
			y.words[i/wordBits] |= 1 << (i % wordBits)
		}
	}
	return y
}

// Rsh returns x shifted right by n bits (zero fill, width preserved).
func (x Vector) Rsh(n int) Vector {
	if n < 0 {
		panic(fmt.Sprintf("bits: negative shift %d", n))
	}
	y := New(x.width)
	for i := 0; i+n < x.width; i++ {
		if x.Bit(i + n) {
			y.words[i/wordBits] |= 1 << (i % wordBits)
		}
	}
	return y
}
