package bits

import "testing"

// FuzzSliceRoundTrip checks the algebra connecting Slice, SetSlice,
// Concat, Parse and String on arbitrary vectors and ranges:
//
//   - writing a slice back into its own slot is the identity;
//   - a vector is the concatenation of its parts around any cut;
//   - Slice yields the declared width and survives String/Parse.
//
// Slicing underpins every word transfer the protocol generators emit
// (wordSpans splits messages into bus words and reassembles them), so a
// hole here silently corrupts multi-word transactions.
func FuzzSliceRoundTrip(f *testing.F) {
	f.Add("1010", 3, 1)
	f.Add("1", 0, 0)
	f.Add("00100000", 7, 0)
	f.Add("1111000010100101", 11, 4)
	f.Add("1_0000000000000000000000000000000000000000000000000000000000000001", 64, 1)
	f.Fuzz(func(t *testing.T, s string, hi, lo int) {
		x, err := Parse(s)
		if err != nil || x.Width() == 0 {
			t.Skip()
		}
		if lo < 0 || hi < lo || hi >= x.Width() {
			t.Skip()
		}
		sl := x.Slice(hi, lo)
		if sl.Width() != hi-lo+1 {
			t.Fatalf("Slice(%d,%d) of width-%d vector has width %d", hi, lo, x.Width(), sl.Width())
		}
		if y := x.SetSlice(hi, lo, sl); !y.Equal(x) {
			t.Fatalf("SetSlice(Slice) not identity: %s -> %s", x, y)
		}
		// Reassemble x from the three parts around the cut.
		re := sl
		if hi+1 <= x.Width()-1 {
			re = Concat(x.Slice(x.Width()-1, hi+1), re)
		}
		if lo > 0 {
			re = Concat(re, x.Slice(lo-1, 0))
		}
		if !re.Equal(x) {
			t.Fatalf("concat of slices differs: %s -> %s", x, re)
		}
		// The textual form round-trips.
		rt, err := Parse(sl.String())
		if err != nil {
			t.Fatalf("Parse(String(%s)): %v", sl, err)
		}
		if !rt.Equal(sl) {
			t.Fatalf("String/Parse round trip: %s -> %s", sl, rt)
		}
		// An all-zero write then restore also round-trips (SetSlice must
		// clear bits, not just set them).
		z := x.SetSlice(hi, lo, New(hi-lo+1))
		if !z.Slice(hi, lo).IsZero() {
			t.Fatalf("SetSlice(zero) left bits set: %s", z)
		}
		if y := z.SetSlice(hi, lo, sl); !y.Equal(x) {
			t.Fatalf("restore after zeroing differs: %s -> %s", x, y)
		}
	})
}
