package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZero(t *testing.T) {
	for _, w := range []int{0, 1, 7, 8, 63, 64, 65, 128, 1919} {
		x := New(w)
		if x.Width() != w {
			t.Fatalf("New(%d).Width() = %d", w, x.Width())
		}
		if !x.IsZero() {
			t.Fatalf("New(%d) not zero: %s", w, x)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestFromUintRoundTrip(t *testing.T) {
	cases := []struct {
		v     uint64
		width int
		want  uint64
	}{
		{0, 8, 0},
		{255, 8, 255},
		{256, 8, 0},
		{0x1234, 16, 0x1234},
		{0xFFFF_FFFF_FFFF_FFFF, 64, 0xFFFF_FFFF_FFFF_FFFF},
		{0xFFFF_FFFF_FFFF_FFFF, 63, 0x7FFF_FFFF_FFFF_FFFF},
		{7, 3, 7},
		{8, 3, 0},
	}
	for _, c := range cases {
		if got := FromUint(c.v, c.width).Uint64(); got != c.want {
			t.Errorf("FromUint(%#x,%d).Uint64() = %#x, want %#x", c.v, c.width, got, c.want)
		}
	}
}

func TestFromIntTwosComplement(t *testing.T) {
	cases := []struct {
		v     int64
		width int
		want  int64
	}{
		{0, 8, 0},
		{1, 8, 1},
		{-1, 8, -1},
		{127, 8, 127},
		{-128, 8, -128},
		{128, 8, -128}, // wraps
		{-1, 16, -1},
		{-1, 64, -1},
		{1 << 40, 64, 1 << 40},
		{-5, 100, -5},
	}
	for _, c := range cases {
		x := FromInt(c.v, c.width)
		if got := x.Int64(); got != c.want {
			t.Errorf("FromInt(%d,%d).Int64() = %d, want %d (bits %s)", c.v, c.width, got, c.want, x)
		}
	}
}

func TestFromIntWideNegativeHighBits(t *testing.T) {
	x := FromInt(-1, 130)
	for i := 0; i < 130; i++ {
		if !x.Bit(i) {
			t.Fatalf("FromInt(-1,130) bit %d is 0", i)
		}
	}
	y := FromInt(5, 130)
	for i := 3; i < 130; i++ {
		if y.Bit(i) {
			t.Fatalf("FromInt(5,130) bit %d is 1", i)
		}
	}
}

func TestParse(t *testing.T) {
	x, err := Parse("1010_0011")
	if err != nil {
		t.Fatal(err)
	}
	if x.Width() != 8 || x.Uint64() != 0xA3 {
		t.Fatalf("Parse: width=%d value=%#x", x.Width(), x.Uint64())
	}
	if _, err := Parse("10x"); err == nil {
		t.Fatal("Parse accepted invalid character")
	}
	empty, err := Parse("")
	if err != nil || empty.Width() != 0 {
		t.Fatalf("Parse empty: %v width=%d", err, empty.Width())
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, s := range []string{"", "0", "1", "1010", "11111111", "100000000000000000000000000000000000000000000000000000000000000001"} {
		x := MustParse(s)
		if x.String() != s {
			t.Errorf("String round trip: %q -> %q", s, x.String())
		}
	}
}

func TestHex(t *testing.T) {
	if got := FromUint(0x0A, 8).Hex(); got != `X"0A"` {
		t.Errorf("Hex = %s", got)
	}
	if got := FromUint(0x1F, 5).Hex(); got != `X"1F"` {
		t.Errorf("Hex(5-bit) = %s", got)
	}
}

func TestBitAndSetBit(t *testing.T) {
	x := New(70)
	x = x.SetBit(0, true).SetBit(69, true)
	if !x.Bit(0) || !x.Bit(69) || x.Bit(35) {
		t.Fatalf("SetBit/Bit wrong: %s", x)
	}
	y := x.SetBit(69, false)
	if y.Bit(69) {
		t.Fatal("SetBit clear failed")
	}
	if !x.Bit(69) {
		t.Fatal("SetBit mutated receiver")
	}
}

func TestSliceBasic(t *testing.T) {
	x := MustParse("11010110")
	s := x.Slice(5, 2) // bits 5..2 = 0101
	if s.String() != "0101" {
		t.Fatalf("Slice(5,2) = %s", s.String())
	}
	whole := x.Slice(7, 0)
	if !whole.Equal(x) {
		t.Fatal("Slice(7,0) != x")
	}
}

func TestSetSlice(t *testing.T) {
	x := New(8)
	x = x.SetSlice(7, 4, MustParse("1011"))
	if x.String() != "10110000" {
		t.Fatalf("SetSlice = %s", x.String())
	}
	// receiver unchanged by further SetSlice on copy
	y := x.SetSlice(3, 0, MustParse("1111"))
	if x.String() != "10110000" || y.String() != "10111111" {
		t.Fatalf("SetSlice aliasing: x=%s y=%s", x, y)
	}
}

func TestSetSliceWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(8).SetSlice(3, 0, New(5))
}

func TestConcat(t *testing.T) {
	hi := MustParse("101")
	lo := MustParse("0011")
	z := Concat(hi, lo)
	if z.Width() != 7 || z.String() != "1010011" {
		t.Fatalf("Concat = %s (width %d)", z, z.Width())
	}
}

func TestResize(t *testing.T) {
	x := MustParse("1111")
	if got := x.Resize(6).String(); got != "001111" {
		t.Errorf("extend: %s", got)
	}
	if got := x.Resize(2).String(); got != "11" {
		t.Errorf("truncate: %s", got)
	}
	if got := x.Resize(4); !got.Equal(x) {
		t.Errorf("same width: %s", got)
	}
}

func TestAddSub(t *testing.T) {
	a := FromUint(200, 8)
	b := FromUint(100, 8)
	if got := a.Add(b).Uint64(); got != 44 { // 300 mod 256
		t.Errorf("Add wrap = %d", got)
	}
	if got := b.Sub(a).Int64(); got != -100 {
		t.Errorf("Sub = %d", got)
	}
	// multiword carry propagation
	x := FromUint(0xFFFF_FFFF_FFFF_FFFF, 128)
	one := FromUint(1, 128)
	s := x.Add(one)
	if !s.Bit(64) {
		t.Error("carry did not propagate into word 1")
	}
	for i := 0; i < 64; i++ {
		if s.Bit(i) {
			t.Fatalf("low bit %d set after carry", i)
		}
	}
}

func TestLogic(t *testing.T) {
	a := MustParse("1100")
	b := MustParse("1010")
	if got := a.And(b).String(); got != "1000" {
		t.Errorf("And = %s", got)
	}
	if got := a.Or(b).String(); got != "1110" {
		t.Errorf("Or = %s", got)
	}
	if got := a.Xor(b).String(); got != "0110" {
		t.Errorf("Xor = %s", got)
	}
	if got := a.Not().String(); got != "0011" {
		t.Errorf("Not = %s", got)
	}
}

func TestCompareUnsigned(t *testing.T) {
	a := FromUint(5, 8)
	b := FromUint(6, 16)
	if a.CompareUnsigned(b) != -1 || b.CompareUnsigned(a) != 1 || a.CompareUnsigned(FromUint(5, 32)) != 0 {
		t.Fatal("CompareUnsigned wrong ordering")
	}
}

func TestWordsJoinExact(t *testing.T) {
	// 23-bit message over an 8-bit bus: 3 words, as in the paper's
	// 16-bit X transferred over an 8-bit bus in two transfers.
	msg := FromUint(0x5ABCDE, 23)
	words := msg.Words(8)
	if len(words) != 3 {
		t.Fatalf("Words: %d words", len(words))
	}
	for _, w := range words {
		if w.Width() != 8 {
			t.Fatalf("word width %d", w.Width())
		}
	}
	back := Join(words, 23)
	if !back.Equal(msg) {
		t.Fatalf("Join(Words) = %s, want %s", back, msg)
	}
}

func TestWordsCountMatchesCeil(t *testing.T) {
	for width := 1; width <= 64; width++ {
		for w := 1; w <= 32; w++ {
			msg := New(width)
			want := (width + w - 1) / w
			if got := len(msg.Words(w)); got != want {
				t.Fatalf("Words(%d) of %d-bit msg: %d words, want %d", w, width, got, want)
			}
		}
	}
}

// Property: splitting any message into bus words and rejoining is the
// identity. This is the invariant that makes generated SendCH/ReceiveCH
// procedure pairs correct for every bus width.
func TestQuickWordsJoinIdentity(t *testing.T) {
	f := func(v uint64, widthSeed, busSeed uint8) bool {
		width := int(widthSeed)%96 + 1 // 1..96
		bus := int(busSeed)%24 + 1     // 1..24
		msg := FromUint(v, width)
		if width > 64 {
			// scatter some high bits too
			msg = msg.SetBit(width-1, v&1 != 0)
		}
		return Join(msg.Words(bus), width).Equal(msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Add is commutative and Sub inverts Add at any width.
func TestQuickAddSubProperties(t *testing.T) {
	f := func(a, b uint64, widthSeed uint8) bool {
		w := int(widthSeed)%128 + 1
		x := FromUint(a, w)
		y := FromUint(b, w)
		if !x.Add(y).Equal(y.Add(x)) {
			return false
		}
		return x.Add(y).Sub(y).Equal(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan on random vectors.
func TestQuickDeMorgan(t *testing.T) {
	f := func(a, b uint64, widthSeed uint8) bool {
		w := int(widthSeed)%64 + 1
		x := FromUint(a, w)
		y := FromUint(b, w)
		return x.And(y).Not().Equal(x.Not().Or(y.Not()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Slice then SetSlice back is the identity.
func TestQuickSliceSetSliceIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		w := rng.Intn(100) + 1
		x := New(w)
		for j := 0; j < w; j++ {
			if rng.Intn(2) == 1 {
				x = x.SetBit(j, true)
			}
		}
		lo := rng.Intn(w)
		hi := lo + rng.Intn(w-lo)
		if got := x.SetSlice(hi, lo, x.Slice(hi, lo)); !got.Equal(x) {
			t.Fatalf("SetSlice(Slice) != id at w=%d hi=%d lo=%d", w, hi, lo)
		}
	}
}

func TestQuickParseStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		w := rng.Intn(90) + 1
		x := New(w)
		for j := 0; j < w; j++ {
			if rng.Intn(2) == 1 {
				x = x.SetBit(j, true)
			}
		}
		y := MustParse(x.String())
		if !y.Equal(x) {
			t.Fatalf("round trip failed for %s", x)
		}
	}
}

func TestInt64SignEdge(t *testing.T) {
	x := FromUint(1, 1) // single bit set: value -1 signed
	if x.Int64() != -1 {
		t.Errorf("1-bit signed = %d", x.Int64())
	}
	y := FromUint(0x8000, 16)
	if y.Int64() != -32768 {
		t.Errorf("16-bit sign = %d", y.Int64())
	}
}

func BenchmarkAdd64(b *testing.B) {
	x := FromUint(0xDEADBEEF, 64)
	y := FromUint(0x12345678, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = x.Add(y)
	}
}

func BenchmarkWordsJoin23Over8(b *testing.B) {
	msg := FromUint(0x5ABCDE, 23)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Join(msg.Words(8), 23)
	}
}

func TestShifts(t *testing.T) {
	x := MustParse("00110101")
	if got := x.Lsh(2).String(); got != "11010100" {
		t.Errorf("Lsh = %s", got)
	}
	if got := x.Rsh(3).String(); got != "00000110" {
		t.Errorf("Rsh = %s", got)
	}
	if got := x.Lsh(0); !got.Equal(x) {
		t.Error("Lsh(0) != id")
	}
	if got := x.Rsh(100); !got.IsZero() {
		t.Error("over-shift not zero")
	}
	// across word boundaries
	wide := New(100).SetBit(0, true)
	if !wide.Lsh(99).Bit(99) {
		t.Error("Lsh across words")
	}
	if !wide.Lsh(99).Rsh(99).Bit(0) {
		t.Error("Rsh across words")
	}
}

func TestShiftNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(4).Lsh(-1)
}

// Property: shifting matches uint64 arithmetic within 64 bits.
func TestQuickShiftsMatchUint64(t *testing.T) {
	f := func(v uint64, widthSeed, shiftSeed uint8) bool {
		w := int(widthSeed)%64 + 1
		n := int(shiftSeed) % 70
		x := FromUint(v, w)
		wantL := FromUint(v<<uint(min(n, 63)), w)
		if n > 63 {
			wantL = New(w)
		}
		wantR := New(w)
		if n <= 63 {
			wantR = FromUint(x.Uint64()>>uint(n), w)
		}
		return x.Lsh(n).Equal(wantL) && x.Rsh(n).Equal(wantR)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestFromBytesRoundTrip: FromBytes must invert AppendBytes at every
// width (the spill-store codec depends on it) and reject renderings
// with bits set above the width or the wrong byte count.
func TestFromBytesRoundTrip(t *testing.T) {
	for _, w := range []int{1, 5, 8, 9, 16, 33, 63, 64, 65, 70, 100, 128, 129} {
		x := New(w)
		for i := 0; i < w; i += 3 {
			x = x.SetBit(i, true)
		}
		got, err := FromBytes(x.AppendBytes(nil), w)
		if err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		if !got.Equal(x) || got.Width() != w {
			t.Fatalf("width %d: round-trip %s != %s", w, got, x)
		}
	}
	f := func(v uint64, widthSeed uint8) bool {
		w := int(widthSeed)%64 + 1
		x := FromUint(v, w)
		got, err := FromBytes(x.AppendBytes(nil), w)
		return err == nil && got.Equal(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	if _, err := FromBytes([]byte{1, 2}, 8); err == nil {
		t.Fatal("wrong byte count accepted")
	}
	// Width 12 leaves the top 4 bits of the second byte dead; a set
	// dead bit is a corrupt encoding, not a value.
	if _, err := FromBytes([]byte{0xff, 0xf0}, 12); err == nil {
		t.Fatal("bits above the width accepted (narrow path)")
	}
	if _, err := FromBytes(append(make([]byte, 8), 0xf0), 68); err == nil {
		t.Fatal("bits above the width accepted (wide path)")
	}
}
