package experiments

import (
	"strings"
	"testing"
)

func TestFig2MatchesPaper(t *testing.T) {
	r := Fig2()
	if r.Rates["A"] != 4 || r.Rates["B"] != 12 {
		t.Fatalf("rates = %v, want A:4 B:12", r.Rates)
	}
	if r.BusRate != 16 {
		t.Fatalf("bus rate = %g, want 16", r.BusRate)
	}
	if !r.MakespanPreserved {
		t.Fatal("makespan not preserved at the Eq. 1 rate")
	}
	// B2 is delayed from t=1 to t=1.5 (the figure's key detail).
	for _, s := range r.Schedule {
		if s.Label == "B2" && s.Start != 1.5 {
			t.Fatalf("B2 start = %v, want 1.5", s.Start)
		}
	}
	if !strings.Contains(r.String(), "16 bits/second") {
		t.Error("rendering missing bus rate")
	}
}

func TestFig7Shape(t *testing.T) {
	r := Fig7()
	if len(r.Points) != 24 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Monotone non-increasing in width for both processes.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].EvalR3 > r.Points[i-1].EvalR3 {
			t.Fatalf("EVAL_R3 increased at width %d", r.Points[i].Width)
		}
		if r.Points[i].ConvR2 > r.Points[i-1].ConvR2 {
			t.Fatalf("CONV_R2 increased at width %d", r.Points[i].Width)
		}
	}
	// Plateau: widths 23 and 24 identical (no further parallelization
	// of a 23-bit message).
	if r.Points[22].EvalR3 != r.Points[23].EvalR3 {
		t.Error("EVAL_R3 did not plateau at 23 pins")
	}
	if r.Points[22].ConvR2 != r.Points[23].ConvR2 {
		t.Error("CONV_R2 did not plateau at 23 pins")
	}
	// The paper's worked constraint: CONV_R2 <= 2000 clocks only for
	// widths > 4.
	if r.MinWidthMeetingConstraint != 5 {
		t.Errorf("constraint first met at width %d, want 5 (paper: widths > 4)",
			r.MinWidthMeetingConstraint)
	}
	// EVAL_R3 runs longer than CONV_R2 across the sweep (its per-point
	// computation is heavier), as in the paper's plot.
	for _, p := range r.Points {
		if p.EvalR3 <= p.ConvR2 {
			t.Fatalf("EVAL_R3 (%d) <= CONV_R2 (%d) at width %d", p.EvalR3, p.ConvR2, p.Width)
		}
	}
}

func TestFig7SimCheckShape(t *testing.T) {
	points, err := Fig7SimCheck([]int{1, 2, 4, 8, 16, 23, 24})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Clocks > points[i-1].Clocks {
			t.Fatalf("simulated clocks increased from width %d (%d) to %d (%d)",
				points[i-1].Width, points[i-1].Clocks, points[i].Width, points[i].Clocks)
		}
	}
	last, prev := points[len(points)-1], points[len(points)-2]
	if prev.Width == 23 && last.Width == 24 && last.Clocks != prev.Clocks {
		t.Errorf("simulated plateau violated: %d clocks at 23, %d at 24", prev.Clocks, last.Clocks)
	}
}

func TestFig8MatchesPaper(t *testing.T) {
	r, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		design string
		width  int
		rate   float64
		redLo  float64
		redHi  float64
	}{
		{"A", 20, 10, 55, 58}, // paper: 56 %
		{"B", 18, 9, 60, 62},  // paper: 61 %
		{"C", 16, 8, 64, 67},  // paper: 66 %
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for i, w := range want {
		row := r.Rows[i]
		if row.Design != w.design || row.Width != w.width || row.BusRate != w.rate {
			t.Errorf("design %s: width %d rate %g, want %d/%g",
				row.Design, row.Width, row.BusRate, w.width, w.rate)
		}
		if row.SeparateLines != 46 {
			t.Errorf("design %s: separate lines %d, want 46", row.Design, row.SeparateLines)
		}
		if row.ReductionPct < w.redLo || row.ReductionPct > w.redHi {
			t.Errorf("design %s: reduction %.1f%%, want within [%g, %g]",
				row.Design, row.ReductionPct, w.redLo, w.redHi)
		}
	}
	if !strings.Contains(r.String(), "Design A") {
		t.Error("rendering broken")
	}
}
