// Package experiments regenerates the evaluation artifacts of Narayan &
// Gajski (DAC'94): the channel-merging illustration (Fig. 2), the
// performance-versus-buswidth sweep for the FLC's EVAL_R3 and CONV_R2
// processes (Fig. 7), and the three constrained bus designs with their
// selected widths, rates and interconnect reductions (Fig. 8).
//
// Each experiment returns a structured result plus a text rendering that
// matches the paper's presentation; cmd/experiments prints them and
// bench_test.go regenerates them under the benchmark harness.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/busgen"
	"repro/internal/estimate"
	"repro/internal/explore"
	"repro/internal/flc"
	"repro/internal/protogen"
	"repro/internal/sim"
	"repro/internal/spec"
)

// ---- Fig. 2: merging channels A and B into bus AB ----

// Fig2Result captures the channel-merging arithmetic of Fig. 2.
type Fig2Result struct {
	// Window is the observation interval in seconds (4 s in the paper).
	Window float64
	// Rates holds each channel's average rate in bits/second
	// (A: 4 b/s, B: 12 b/s).
	Rates map[string]float64
	// BusRate is the required merged rate (16 b/s, Eq. 1).
	BusRate float64
	// Schedule is the serialized bus schedule; item B2 is delayed from
	// t=1 to t=1.5 by the bus conflict, as the figure shows.
	Schedule []busgen.ScheduledTransfer
	// MakespanPreserved reports that all transfers still complete
	// within the window.
	MakespanPreserved bool
}

// Fig2 reproduces the channel-merging example.
func Fig2() *Fig2Result {
	transfers := []busgen.Transfer{
		{Channel: "A", Label: "A1", Time: 0, Bits: 8},
		{Channel: "A", Label: "A2", Time: 2, Bits: 8},
		{Channel: "B", Label: "B1", Time: 0, Bits: 16},
		{Channel: "B", Label: "B2", Time: 1, Bits: 16},
		{Channel: "B", Label: "B3", Time: 3, Bits: 16},
	}
	const window = 4.0
	rate := busgen.RequiredBusRate(transfers, window)
	sched := busgen.MergeSchedule(transfers, rate)
	return &Fig2Result{
		Window:            window,
		Rates:             busgen.ChannelRates(transfers, window),
		BusRate:           rate,
		Schedule:          sched,
		MakespanPreserved: busgen.MakespanPreserved(sched, window),
	}
}

func (r *Fig2Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 2 — merging channels A and B into bus AB\n\n")
	names := make([]string, 0, len(r.Rates))
	for n := range r.Rates {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  AveRate(%s) = %g bits/second\n", n, r.Rates[n])
	}
	fmt.Fprintf(&b, "  required BusRate(AB) >= %g bits/second (Eq. 1)\n\n", r.BusRate)
	b.WriteString(busgen.FormatSchedule(r.Schedule))
	fmt.Fprintf(&b, "\n  makespan preserved within %.0f s window: %t\n", r.Window, r.MakespanPreserved)
	return b.String()
}

// ---- Fig. 7: FLC performance vs bus width ----

// Fig7Point is one sweep sample.
type Fig7Point struct {
	Width  int
	EvalR3 int64 // execution time in clocks
	ConvR2 int64
}

// Fig7Result is the performance-versus-buswidth sweep.
type Fig7Result struct {
	Points []Fig7Point
	// PlateauWidth is the width beyond which no improvement is
	// possible (23 pins: 16 data + 7 address).
	PlateauWidth int
	// ConstraintClocks is the example constraint the paper discusses
	// (2000 clocks on CONV_R2).
	ConstraintClocks int64
	// MinWidthMeetingConstraint is the narrowest width at which
	// CONV_R2 meets the constraint (the paper: widths greater than 4).
	MinWidthMeetingConstraint int
}

// Fig7 sweeps bus widths 1..24 and estimates the execution time of
// processes EVAL_R3 and CONV_R2 with their channels implemented on a
// full-handshake bus of each width. The sweep runs on the exploration
// engine (memoized estimator, parallel candidate evaluation); the
// per-point execution times are identical to querying the estimator
// width by width.
func Fig7() *Fig7Result {
	f := flc.New(flc.DefaultConfig())
	est := estimate.New([]*spec.Channel{f.Ch1, f.Ch2})
	space, err := explore.Sweep([]*spec.Channel{f.Ch1, f.Ch2}, est, explore.Config{
		Protocols: []spec.Protocol{spec.FullHandshake},
		MinWidth:  1,
		MaxWidth:  24,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: Fig7 sweep: %v", err)) // static FLC input cannot fail
	}
	res := &Fig7Result{PlateauWidth: f.Ch1.MessageBits(), ConstraintClocks: 2000}
	for _, pt := range space.Points {
		p := Fig7Point{
			Width:  pt.Width,
			EvalR3: pt.ExecTime[f.EvalR3],
			ConvR2: pt.ExecTime[f.ConvR2],
		}
		res.Points = append(res.Points, p)
		if res.MinWidthMeetingConstraint == 0 && p.ConvR2 <= res.ConstraintClocks {
			res.MinWidthMeetingConstraint = p.Width
		}
	}
	return res
}

func (r *Fig7Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 7 — FLC performance vs. bus width (full handshake)\n\n")
	fmt.Fprintf(&b, "  %5s  %12s  %12s\n", "width", "EVAL_R3", "CONV_R2")
	for _, p := range r.Points {
		mark := ""
		if p.ConvR2 <= r.ConstraintClocks && p.Width == r.MinWidthMeetingConstraint {
			mark = "  <- CONV_R2 meets 2000-clock constraint"
		}
		fmt.Fprintf(&b, "  %5d  %12d  %12d%s\n", p.Width, p.EvalR3, p.ConvR2, mark)
	}
	fmt.Fprintf(&b, "\n  plateau: widths beyond %d pins buy nothing (16 data + 7 address bits)\n", r.PlateauWidth)
	fmt.Fprintf(&b, "  CONV_R2 meets a %d-clock constraint only for widths >= %d (paper: widths > 4)\n",
		r.ConstraintClocks, r.MinWidthMeetingConstraint)
	return b.String()
}

// Fig7SimPoint is one simulator cross-check sample.
type Fig7SimPoint struct {
	Width int
	// Clocks is the simulated completion time of the whole FLC with
	// bus B refined at this width and computation charged by the cost
	// model.
	Clocks int64
}

// Fig7SimCheck cross-validates the estimator's Fig. 7 shape on the
// cycle-counting simulator: bus B is protocol-generated at each width,
// the refined FLC is executed, and total completion time is reported.
// The shape — monotone non-increasing, flat past 23 pins — must match
// the estimator's.
func Fig7SimCheck(widths []int) ([]Fig7SimPoint, error) {
	var out []Fig7SimPoint
	for _, w := range widths {
		f := flc.New(flc.DefaultConfig())
		bus := f.BusB(w)
		if _, err := protogen.Generate(f.Sys, bus, protogen.Config{Protocol: spec.FullHandshake}); err != nil {
			return nil, err
		}
		model := estimate.DefaultModel()
		s, err := sim.New(f.Sys, sim.Config{Cost: &model})
		if err != nil {
			return nil, err
		}
		res, err := s.Run()
		if err != nil {
			return nil, fmt.Errorf("width %d: %w", w, err)
		}
		out = append(out, Fig7SimPoint{Width: w, Clocks: res.Clocks})
	}
	return out, nil
}

// ---- Fig. 8: three constrained bus designs ----

// Fig8Row is one design row of the paper's table.
type Fig8Row struct {
	Design      string
	Constraints []busgen.Constraint
	// SeparateLines is the total bitwidth of the channels implemented
	// separately (46 pins).
	SeparateLines int
	// Width is the selected bus width in pins.
	Width int
	// BusRate is the selected bus rate in bits/clock.
	BusRate float64
	// ReductionPct is the interconnect reduction percentage.
	ReductionPct float64
}

// Fig8Result is the three-design table.
type Fig8Result struct {
	Rows []Fig8Row
}

// Fig8Designs returns the paper's three constraint sets.
func Fig8Designs() map[string][]busgen.Constraint {
	return map[string][]busgen.Constraint{
		"A": {
			{Kind: busgen.MinPeakRate, Channel: "ch2", Value: 10, Weight: 10},
		},
		"B": {
			{Kind: busgen.MinPeakRate, Channel: "ch2", Value: 10, Weight: 2},
			{Kind: busgen.MinBusWidth, Value: 14, Weight: 1},
			{Kind: busgen.MaxBusWidth, Value: 18, Weight: 1},
		},
		"C": {
			{Kind: busgen.MinPeakRate, Channel: "ch2", Value: 10, Weight: 1},
			{Kind: busgen.MinBusWidth, Value: 16, Weight: 5},
			{Kind: busgen.MaxBusWidth, Value: 16, Weight: 5},
		},
	}
}

// Fig8 runs bus generation on the FLC's ch1+ch2 group under the three
// constraint sets of the paper's Fig. 8.
func Fig8() (*Fig8Result, error) {
	designs := Fig8Designs()
	out := &Fig8Result{}
	for _, name := range []string{"A", "B", "C"} {
		f := flc.New(flc.DefaultConfig())
		est := estimate.New([]*spec.Channel{f.Ch1, f.Ch2})
		cfg := busgen.DefaultConfig()
		cfg.Constraints = designs[name]
		res, err := busgen.Generate([]*spec.Channel{f.Ch1, f.Ch2}, est, cfg)
		if err != nil {
			return nil, fmt.Errorf("design %s: %w", name, err)
		}
		out.Rows = append(out.Rows, Fig8Row{
			Design:        name,
			Constraints:   designs[name],
			SeparateLines: res.SeparateLines,
			Width:         res.Width,
			BusRate:       res.BusRate,
			ReductionPct:  res.InterconnectReduction * 100,
		})
	}
	return out, nil
}

func (r *Fig8Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 8 — bus constraints, selected widths and rates (FLC ch1+ch2)\n\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  Design %s:\n", row.Design)
		for _, c := range row.Constraints {
			fmt.Fprintf(&b, "    constraint: %s\n", c)
		}
		fmt.Fprintf(&b, "    total bitwidth of the channels : %d pins\n", row.SeparateLines)
		fmt.Fprintf(&b, "    selected bus rate              : %g bits/clock\n", row.BusRate)
		fmt.Fprintf(&b, "    selected buswidth              : %d pins\n", row.Width)
		fmt.Fprintf(&b, "    interconnect reduction         : %.0f %%\n\n", row.ReductionPct)
	}
	b.WriteString("  (paper: widths 20/18/16, rates 10/9/8 bits/clock, reductions 56/61/66 %)\n")
	return b.String()
}
