package spec

import (
	"fmt"
	"strings"

	"repro/internal/bits"
)

// Expr is the interface implemented by all expression nodes.
type Expr interface {
	// Type reports the static type of the expression.
	Type() Type
	// String renders the expression in VHDL-like syntax.
	String() string
	exprNode()
}

// Op enumerates binary and unary operators.
type Op int

// Operator kinds.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNeq
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpXor
	OpNot
	OpNeg
	OpConcat
	OpShl
	OpShr
)

var opNames = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "mod",
	OpEq: "=", OpNeq: "/=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpNot: "not", OpNeg: "-",
	OpConcat: "&", OpShl: "sll", OpShr: "srl",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsComparison reports whether the operator yields a boolean.
func (o Op) IsComparison() bool {
	switch o {
	case OpEq, OpNeq, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

// IntLit is an integer literal.
type IntLit struct {
	Value int64
	Typ   Type // IntegerType unless overridden
}

// Int returns an integer literal of the canonical integer type.
func Int(v int64) *IntLit { return &IntLit{Value: v, Typ: Integer} }

func (e *IntLit) Type() Type {
	if e.Typ == nil {
		return Integer
	}
	return e.Typ
}
func (e *IntLit) String() string { return fmt.Sprintf("%d", e.Value) }
func (*IntLit) exprNode()        {}

// VecLit is a bit or bit_vector literal.
type VecLit struct {
	Value bits.Vector
}

// Vec returns a bit-vector literal.
func Vec(v bits.Vector) *VecLit { return &VecLit{Value: v} }

// VecString returns a bit-vector literal parsed from a binary string such
// as "0101". It panics on malformed input (literals are written by hand or
// by generators, so errors are programming mistakes).
func VecString(s string) *VecLit { return &VecLit{Value: bits.MustParse(s)} }

func (e *VecLit) Type() Type {
	if e.Value.Width() == 1 {
		return Bit
	}
	return BitVector(e.Value.Width())
}
func (e *VecLit) String() string {
	if e.Value.Width() == 1 {
		return fmt.Sprintf("'%s'", e.Value)
	}
	return fmt.Sprintf("%q", e.Value.String())
}
func (*VecLit) exprNode() {}

// BoolLit is a boolean literal.
type BoolLit struct {
	Value bool
}

// True and False are the boolean literals.
var (
	True  = &BoolLit{Value: true}
	False = &BoolLit{Value: false}
)

func (e *BoolLit) Type() Type     { return Bool }
func (e *BoolLit) String() string { return fmt.Sprintf("%t", e.Value) }
func (*BoolLit) exprNode()        {}

// VarRef references a variable, signal or procedure parameter.
type VarRef struct {
	Var *Variable
}

// Ref returns a reference to v.
func Ref(v *Variable) *VarRef { return &VarRef{Var: v} }

func (e *VarRef) Type() Type     { return e.Var.Type }
func (e *VarRef) String() string { return e.Var.Name }
func (*VarRef) exprNode()        {}

// Index is an array element access: Array(IndexExpr).
type Index struct {
	Arr   Expr
	Index Expr
}

// At returns arr(idx).
func At(arr Expr, idx Expr) *Index { return &Index{Arr: arr, Index: idx} }

func (e *Index) Type() Type {
	if a, ok := e.Arr.Type().(ArrayType); ok {
		return a.Elem
	}
	return e.Arr.Type()
}
func (e *Index) String() string { return fmt.Sprintf("%s(%s)", e.Arr, e.Index) }
func (*Index) exprNode()        {}

// SliceExpr selects bits Hi downto Lo of a bit-vector expression. The
// bounds may be expressions (generated send/receive procedures slice with
// loop-dependent bounds, e.g. txdata(8*J-1 downto 8*(J-1))).
type SliceExpr struct {
	X      Expr
	Hi, Lo Expr
	// Width is the static width of the slice (Hi-Lo+1), which must be
	// loop-invariant even when the bounds are not.
	Width int
}

// SliceBits returns x(hi downto lo) with constant bounds.
func SliceBits(x Expr, hi, lo int) *SliceExpr {
	return &SliceExpr{X: x, Hi: Int(int64(hi)), Lo: Int(int64(lo)), Width: hi - lo + 1}
}

func (e *SliceExpr) Type() Type { return BitVector(e.Width) }
func (e *SliceExpr) String() string {
	return fmt.Sprintf("%s(%s downto %s)", e.X, e.Hi, e.Lo)
}
func (*SliceExpr) exprNode() {}

// FieldRef accesses a record field, e.g. B.START.
type FieldRef struct {
	X     Expr
	Field string
}

// FieldOf returns x.field.
func FieldOf(x Expr, field string) *FieldRef { return &FieldRef{X: x, Field: field} }

func (e *FieldRef) Type() Type {
	if r, ok := e.X.Type().(RecordType); ok {
		if t := r.FieldType(e.Field); t != nil {
			return t
		}
	}
	return Bit
}
func (e *FieldRef) String() string { return fmt.Sprintf("%s.%s", e.X, e.Field) }
func (*FieldRef) exprNode()        {}

// Binary is a binary operation.
type Binary struct {
	Op   Op
	X, Y Expr
}

// Bin returns the binary expression x op y.
func Bin(op Op, x, y Expr) *Binary { return &Binary{Op: op, X: x, Y: y} }

// Add returns x + y.
func Add(x, y Expr) *Binary { return Bin(OpAdd, x, y) }

// Sub returns x - y.
func Sub(x, y Expr) *Binary { return Bin(OpSub, x, y) }

// Mul returns x * y.
func Mul(x, y Expr) *Binary { return Bin(OpMul, x, y) }

// Eq returns x = y.
func Eq(x, y Expr) *Binary { return Bin(OpEq, x, y) }

// Neq returns x /= y.
func Neq(x, y Expr) *Binary { return Bin(OpNeq, x, y) }

// Lt returns x < y.
func Lt(x, y Expr) *Binary { return Bin(OpLt, x, y) }

// Le returns x <= y.
func Le(x, y Expr) *Binary { return Bin(OpLe, x, y) }

// Gt returns x > y.
func Gt(x, y Expr) *Binary { return Bin(OpGt, x, y) }

// Ge returns x >= y.
func Ge(x, y Expr) *Binary { return Bin(OpGe, x, y) }

// LogicalAnd returns x and y.
func LogicalAnd(x, y Expr) *Binary { return Bin(OpAnd, x, y) }

// LogicalOr returns x or y.
func LogicalOr(x, y Expr) *Binary { return Bin(OpOr, x, y) }

func (e *Binary) Type() Type {
	if e.Op.IsComparison() {
		return Bool
	}
	if e.Op == OpConcat {
		return BitVector(e.X.Type().BitWidth() + e.Y.Type().BitWidth())
	}
	return e.X.Type()
}

func (e *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", e.X, e.Op, e.Y)
}
func (*Binary) exprNode() {}

// Unary is a unary operation (not, negate).
type Unary struct {
	Op Op
	X  Expr
}

// Not returns not x.
func Not(x Expr) *Unary { return &Unary{Op: OpNot, X: x} }

// Neg returns -x.
func Neg(x Expr) *Unary { return &Unary{Op: OpNeg, X: x} }

func (e *Unary) Type() Type {
	if e.Op == OpNot {
		if _, ok := e.X.Type().(BoolType); ok {
			return Bool
		}
	}
	return e.X.Type()
}
func (e *Unary) String() string { return fmt.Sprintf("(%s %s)", e.Op, e.X) }
func (*Unary) exprNode()        {}

// Conv converts between integer and bit-vector representations (VHDL
// conv_integer / conv_std_logic_vector analogue). Vector-to-integer
// conversion is unsigned unless Signed is set (addresses are unsigned;
// integer-typed channel data is two's complement).
type Conv struct {
	X      Expr
	To     Type
	Signed bool
}

// ToInt converts a bit-vector expression to integer, interpreting the
// vector as unsigned.
func ToInt(x Expr) *Conv { return &Conv{X: x, To: Integer} }

// ToIntSigned converts a bit-vector expression to integer, interpreting
// the vector as two's complement.
func ToIntSigned(x Expr) *Conv { return &Conv{X: x, To: Integer, Signed: true} }

// ToVec converts an integer expression to a bit vector of the given width.
func ToVec(x Expr, width int) *Conv { return &Conv{X: x, To: BitVector(width)} }

func (e *Conv) Type() Type     { return e.To }
func (e *Conv) String() string { return fmt.Sprintf("conv<%s>(%s)", e.To, e.X) }
func (*Conv) exprNode()        {}

// ExprString renders a list of expressions separated by commas.
func ExprString(exprs []Expr) string {
	parts := make([]string, len(exprs))
	for i, e := range exprs {
		parts[i] = e.String()
	}
	return strings.Join(parts, ", ")
}
