package spec

import (
	"testing"

	"repro/internal/bits"
)

// richSystem builds a system exercising every hashed node family:
// modules with variables and behaviors, procedures with params and
// locals, channels with IDs, a protocol-annotated bus, globals, and a
// body covering the statement and expression grammars.
func richSystem() *System {
	sys := NewSystem("rich")

	mem := sys.AddModule("MEM")
	arr := mem.AddVariable(NewVar("X", Array(8, BitVector(16))))
	flag := mem.AddVariable(NewVar("F", Bool))
	flag.Init = &BoolLit{Value: true}

	cpu := sys.AddModule("CPU")
	b := NewBehavior("A")
	cpu.AddBehavior(b)
	i := b.AddVar("i", Integer)
	i.Init = Int(3)
	tmp := b.AddVar("tmp", BitVector(16))

	send := &Procedure{Name: "SendCH0"}
	pv := NewVar("d", BitVector(16))
	send.Params = []Param{{Var: pv, Mode: ModeIn}}
	lv := NewVar("scratch", Bit)
	send.Locals = []*Variable{lv}
	send.Body = []Stmt{
		AssignVar(Ref(lv), &Unary{Op: OpNot, X: Ref(lv)}),
		&Return{},
	}
	b.AddProc(send)

	g := NewSignal("B", BitVector(19))
	sys.AddGlobal(g)

	b.Body = []Stmt{
		&For{Var: i, From: Int(0), To: Int(7), Body: []Stmt{
			AssignVar(Ref(tmp), At(Ref(arr), Ref(i))),
			&If{
				Cond:  Eq(Ref(i), Int(4)),
				Then:  []Stmt{CallProc(send, Ref(tmp))},
				Elifs: []ElseIf{{Cond: Ref(flag), Body: []Stmt{&Null{}}}},
				Else:  []Stmt{&While{Cond: Ref(flag), Body: []Stmt{&Exit{}}}},
			},
			AssignSig(Ref(g), &Conv{X: Ref(tmp), To: BitVector(19)}),
			WaitUntilFor(Not(Ref(flag)), 12, lv),
			AssignVar(Ref(tmp), SliceBits(Ref(g), 15, 0)),
		}},
		&Loop{Body: []Stmt{WaitOn(g), &Exit{}}},
	}

	ch := &Channel{
		Name: "CH0", Accessor: b, Var: arr, Dir: Read,
		ID: bits.FromUint(1, 1), IDBits: 1, Accesses: 8, LifetimeClocks: 64,
	}
	sys.AddChannel(ch)
	ch2 := &Channel{Name: "CH1", Accessor: b, Var: flag, Dir: Write, ID: bits.FromUint(0, 1), IDBits: 1}
	sys.AddChannel(ch2)

	sys.Buses = append(sys.Buses, &Bus{
		Name: "BUS0", Channels: []*Channel{ch, ch2}, Width: 16,
		Protocol: FullHandshake, Signal: g, Robust: true,
	})
	return sys
}

func TestHashStableAcrossCalls(t *testing.T) {
	sys := richSystem()
	if a, b := Hash(sys), Hash(sys); a != b {
		t.Fatalf("same system hashed twice: %s vs %s", a, b)
	}
}

// TestHashCloneIdentical pins the cache-key contract the serve layer
// relies on: Clone produces a semantically identical system, so its
// digest must match byte for byte even though every pointer differs.
func TestHashCloneIdentical(t *testing.T) {
	sys := richSystem()
	cl := Clone(sys)
	if a, b := Hash(sys), Hash(cl); a != b {
		t.Fatalf("clone digest differs:\n  orig  %s\n  clone %s", a, b)
	}
	// Hashing must not perturb either system: repeat after the clone.
	if a, b := Hash(sys), Hash(cl); a != b {
		t.Fatalf("re-hash after clone differs: %s vs %s", a, b)
	}
}

// TestHashOrderIndependence: permuting name-keyed sets — module list,
// module variables, globals, behavior procedures — leaves the digest
// unchanged, because declaration order carries no semantics there.
func TestHashOrderIndependence(t *testing.T) {
	base := Hash(richSystem())

	t.Run("modules", func(t *testing.T) {
		sys := richSystem()
		sys.Modules[0], sys.Modules[1] = sys.Modules[1], sys.Modules[0]
		if got := Hash(sys); got != base {
			t.Fatalf("module order changed the digest: %s vs %s", got, base)
		}
	})
	t.Run("module-variables", func(t *testing.T) {
		sys := richSystem()
		vs := sys.Modules[0].Variables
		vs[0], vs[1] = vs[1], vs[0]
		if got := Hash(sys); got != base {
			t.Fatalf("module variable order changed the digest: %s vs %s", got, base)
		}
	})
	t.Run("globals", func(t *testing.T) {
		sys := richSystem()
		sys.AddGlobal(NewSignal("Z", Bit))
		a := Hash(sys)
		sys2 := richSystem()
		sys2.Globals = append([]*Variable{NewSignal("Z", Bit)}, sys2.Globals...)
		if b := Hash(sys2); a != b {
			t.Fatalf("global order changed the digest: %s vs %s", a, b)
		}
	})
	t.Run("procedures", func(t *testing.T) {
		mk := func(order []string) Digest {
			sys := richSystem()
			b := sys.Modules[1].Behaviors[0]
			extra := &Procedure{Name: "ReceiveCH1", Body: []Stmt{&Null{}}}
			if order[0] == "extra" {
				b.Procedures = append([]*Procedure{extra}, b.Procedures...)
			} else {
				b.AddProc(extra)
			}
			return Hash(sys)
		}
		if a, b := mk([]string{"extra"}), mk([]string{"send"}); a != b {
			t.Fatalf("procedure order changed the digest: %s vs %s", a, b)
		}
	})
}

// TestHashSensitivity: every semantically meaningful edit must move the
// digest — literals, names, types, flags, and the orders that DO carry
// semantics (bus channel order assigns IDs; behavior order schedules
// processes).
func TestHashSensitivity(t *testing.T) {
	base := Hash(richSystem())
	mutate := func(name string, fn func(*System)) {
		t.Run(name, func(t *testing.T) {
			sys := richSystem()
			fn(sys)
			if got := Hash(sys); got == base {
				t.Fatalf("%s: digest unchanged (%s)", name, got)
			}
		})
	}

	mutate("int-literal", func(s *System) {
		s.Modules[1].Behaviors[0].Variables[0].Init = Int(4)
	})
	mutate("rename-module-variable", func(s *System) {
		s.Modules[0].Variables[0].Name = "Y"
	})
	mutate("rename-module", func(s *System) { s.Modules[0].Name = "MEM2" })
	mutate("variable-type", func(s *System) {
		s.Modules[0].Variables[1].Type = Bit
	})
	mutate("bus-channel-order", func(s *System) {
		cs := s.Buses[0].Channels
		cs[0], cs[1] = cs[1], cs[0]
	})
	mutate("bus-protocol", func(s *System) { s.Buses[0].Protocol = HalfHandshake })
	mutate("bus-flag", func(s *System) { s.Buses[0].Parity = true })
	mutate("channel-direction", func(s *System) { s.Channels[0].Dir = Write })
	mutate("channel-id", func(s *System) { s.Channels[0].ID = bits.FromUint(0, 1) })
	mutate("statement-order", func(s *System) {
		b := s.Modules[1].Behaviors[0]
		b.Body[0], b.Body[1] = b.Body[1], b.Body[0]
	})
	mutate("server-flag", func(s *System) {
		s.Modules[1].Behaviors[0].Server = true
	})
	mutate("wait-timeout", func(s *System) {
		body := s.Modules[1].Behaviors[0].Body[0].(*For).Body
		body[3].(*Wait).For = 13
	})
}

// TestHashBehaviorOrderSignificant: behaviors schedule as concurrent
// processes in declaration order, so unlike module order their order
// must move the digest.
func TestHashBehaviorOrderSignificant(t *testing.T) {
	mk := func(prepend bool) Digest {
		sys := richSystem()
		m := sys.Modules[1]
		b := NewBehavior("B")
		b.Body = []Stmt{&Null{}}
		b.Owner = m
		if prepend {
			m.Behaviors = append([]*Behavior{b}, m.Behaviors...)
		} else {
			m.Behaviors = append(m.Behaviors, b)
		}
		return Hash(sys)
	}
	if a, b := mk(true), mk(false); a == b {
		t.Fatalf("behavior order must be order-significant, both hash %s", a)
	}
}

// TestHashLocalIdentity: two references to one local must hash
// differently from references to two distinct same-named locals —
// identity, not name, is what the digest encodes.
func TestHashLocalIdentity(t *testing.T) {
	mk := func(alias bool) Digest {
		sys := richSystem()
		b := sys.Modules[1].Behaviors[0]
		dup := NewVar("tmp", BitVector(16))
		b.Variables = append(b.Variables, dup)
		target := dup
		if alias {
			target = b.Variables[1] // the original tmp
		}
		b.Body = append(b.Body, AssignVar(Ref(target), Ref(target)))
		return Hash(sys)
	}
	if a, b := mk(false), mk(true); a == b {
		t.Fatalf("aliasing two same-named locals must change the digest, both hash %s", a)
	}
}
