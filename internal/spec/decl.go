package spec

import (
	"fmt"

	"repro/internal/bits"
)

// VarKind distinguishes sequential variables from signals. Signals have
// VHDL signal semantics in the simulator (assignments take effect at the
// next delta cycle and generate events); variables update immediately.
type VarKind int

// Variable kinds.
const (
	KindVariable VarKind = iota
	KindSignal
)

func (k VarKind) String() string {
	if k == KindSignal {
		return "signal"
	}
	return "variable"
}

// Variable declares a named storage object: a behavior-local variable, a
// module-level variable (memory), a global signal (bus wires), or a
// procedure parameter.
type Variable struct {
	Name string
	Type Type
	Kind VarKind
	// Init optionally gives the initial value for scalar variables.
	Init Expr
	// InitArray optionally gives per-element initial values for arrays.
	InitArray []bits.Vector
	// Owner is the module the variable was assigned to by partitioning;
	// nil for behavior-local variables, parameters and global signals.
	Owner *Module
}

// NewVar returns a variable of the given name and type.
func NewVar(name string, t Type) *Variable { return &Variable{Name: name, Type: t} }

// NewSignal returns a signal of the given name and type.
func NewSignal(name string, t Type) *Variable {
	return &Variable{Name: name, Type: t, Kind: KindSignal}
}

func (v *Variable) String() string { return fmt.Sprintf("%s %s : %s", v.Kind, v.Name, v.Type) }

// ParamMode is the direction of a procedure parameter.
type ParamMode int

// Parameter modes.
const (
	ModeIn ParamMode = iota
	ModeOut
	ModeInOut
)

func (m ParamMode) String() string {
	switch m {
	case ModeOut:
		return "out"
	case ModeInOut:
		return "inout"
	}
	return "in"
}

// Param is a formal procedure parameter. Param.Var holds the storage used
// while the procedure executes; out/inout parameters are copied back to
// the actual argument on return.
type Param struct {
	Var  *Variable
	Mode ParamMode
}

// Procedure is a named sequence of statements with formal parameters,
// declared within a behavior. Protocol generation emits one send or
// receive procedure per channel (SendCH0, ReceiveCH0, ...).
type Procedure struct {
	Name   string
	Params []Param
	Locals []*Variable
	Body   []Stmt
	// Channel, when non-nil, records that the procedure implements the
	// data transfer of that channel (set by protocol generation).
	Channel *Channel
}

func (p *Procedure) String() string { return fmt.Sprintf("procedure %s/%d", p.Name, len(p.Params)) }

// FindParam returns the formal parameter with the given name, or nil.
func (p *Procedure) FindParam(name string) *Param {
	for i := range p.Params {
		if p.Params[i].Var.Name == name {
			return &p.Params[i]
		}
	}
	return nil
}

// Behavior is a concurrent process: local declarations plus a sequential
// statement body. A behavior's body runs once to completion unless Server
// is set; generated variable processes (Xproc, MEMproc) are servers whose
// bodies loop forever, and the simulator stops when every non-server
// behavior has finished.
type Behavior struct {
	Name       string
	Variables  []*Variable
	Procedures []*Procedure
	Body       []Stmt
	// Server marks generated variable processes.
	Server bool
	// Owner is the module the behavior was assigned to by partitioning.
	Owner *Module
}

// NewBehavior returns an empty behavior with the given name.
func NewBehavior(name string) *Behavior { return &Behavior{Name: name} }

// AddVar declares and returns a behavior-local variable.
func (b *Behavior) AddVar(name string, t Type) *Variable {
	v := NewVar(name, t)
	b.Variables = append(b.Variables, v)
	return v
}

// AddProc attaches a procedure to the behavior.
func (b *Behavior) AddProc(p *Procedure) *Procedure {
	b.Procedures = append(b.Procedures, p)
	return p
}

// FindProc returns the behavior's procedure with the given name, or nil.
func (b *Behavior) FindProc(name string) *Procedure {
	for _, p := range b.Procedures {
		if p.Name == name {
			return p
		}
	}
	return nil
}

func (b *Behavior) String() string { return "behavior " + b.Name }

// Module is a system component produced by partitioning: a chip holding
// behaviors, or a memory holding variables, or both.
type Module struct {
	Name      string
	Behaviors []*Behavior
	Variables []*Variable
}

// NewModule returns an empty module.
func NewModule(name string) *Module { return &Module{Name: name} }

// AddBehavior assigns b to the module.
func (m *Module) AddBehavior(b *Behavior) *Behavior {
	b.Owner = m
	m.Behaviors = append(m.Behaviors, b)
	return b
}

// AddVariable assigns v to the module.
func (m *Module) AddVariable(v *Variable) *Variable {
	v.Owner = m
	m.Variables = append(m.Variables, v)
	return v
}

func (m *Module) String() string { return "module " + m.Name }

// Direction is the data-flow direction of a channel, seen from the
// accessing behavior.
type Direction int

// Channel directions.
const (
	// Read: the accessor reads the remote variable (data flows from the
	// variable's module to the accessor; ch1 : A < MEM in Fig. 1).
	Read Direction = iota
	// Write: the accessor writes the remote variable (ch2 : A > MEM).
	Write
)

func (d Direction) String() string {
	if d == Write {
		return "write"
	}
	return "read"
}

// Channel is an abstract communication medium created by partitioning:
// one behavior accessing one remote variable in one direction. A channel
// is virtual — free of implementation detail — until bus and protocol
// generation implement it.
type Channel struct {
	Name     string
	Accessor *Behavior
	Var      *Variable
	Dir      Direction

	// ID is the channel's address on its bus (assigned by protocol
	// generation); IDBits is the width of the bus ID field.
	ID     bits.Vector
	IDBits int

	// Accesses estimates the number of transfers over the lifetime of
	// the accessor (e.g. 128 for a loop over a 128-entry array). When
	// zero, estimators derive it from the accessor's body.
	Accesses int

	// LifetimeClocks estimates the accessor's total execution time in
	// clocks over which the transfers are spread (used for average-rate
	// estimation). When zero, estimators derive it.
	LifetimeClocks int64
}

// DataBits reports the number of data bits per message: the element width
// for arrays, the full width otherwise.
func (c *Channel) DataBits() int {
	if a, ok := IsArray(c.Var.Type); ok {
		return a.Elem.BitWidth()
	}
	return c.Var.Type.BitWidth()
}

// AddrBits reports the number of address bits per message: nonzero only
// for array accesses.
func (c *Channel) AddrBits() int {
	if a, ok := IsArray(c.Var.Type); ok {
		return a.AddrBits()
	}
	return 0
}

// MessageBits reports the total bits moved per access: data plus address.
// The paper's FLC channels carry 16 bits of data and 7 bits of address,
// so MessageBits is 23 and bus widths above 23 cannot help.
func (c *Channel) MessageBits() int { return c.DataBits() + c.AddrBits() }

func (c *Channel) String() string {
	arrow := "<"
	if c.Dir == Write {
		arrow = ">"
	}
	return fmt.Sprintf("%s : %s %s %s", c.Name, c.Accessor.Name, arrow, c.Var.Name)
}

// Protocol enumerates the communication protocols protocol generation can
// select (Section 4, step 1).
type Protocol int

// Supported protocols.
const (
	// FullHandshake uses START/DONE with a four-phase handshake:
	// 2 clocks per bus word (paper Eq. 2).
	FullHandshake Protocol = iota
	// HalfHandshake acknowledges implicitly: 1 clock per word plus a
	// 1-clock turnaround per message.
	HalfHandshake
	// FixedDelay transfers one word per clock with no control lines;
	// both sides must be rate-matched.
	FixedDelay
	// HardwiredPort dedicates wires to the channel: one message per
	// clock, no sharing, no control or ID lines.
	HardwiredPort
)

func (p Protocol) String() string {
	switch p {
	case HalfHandshake:
		return "half-handshake"
	case FixedDelay:
		return "fixed-delay"
	case HardwiredPort:
		return "hardwired"
	}
	return "full-handshake"
}

// ControlLines reports the number of control wires the protocol needs.
func (p Protocol) ControlLines() int {
	switch p {
	case FullHandshake:
		return 2 // START, DONE
	case HalfHandshake:
		return 1 // START
	default:
		return 0
	}
}

// ClocksPerWord reports the protocol's transfer delay per bus word, in
// clocks. FullHandshake's 2 clocks/word is Eq. 2 of the paper.
func (p Protocol) ClocksPerWord() float64 {
	switch p {
	case FullHandshake:
		return 2
	case HalfHandshake:
		return 1.5
	default:
		return 1
	}
}

// Bus is an implemented channel group: a set of wires (data, control, ID)
// plus a protocol defining behavior over them.
type Bus struct {
	Name     string
	Channels []*Channel
	Width    int // data lines
	Protocol Protocol

	// Filled by protocol generation:
	Record RecordType // bus record type (e.g. HandShakeBus)
	Signal *Variable  // the global bus signal B
	// Arbitrated records that protocol generation added REQ/GRANT
	// arbitration hardware and an arbiter process.
	Arbitrated bool
	// Robust records that protocol generation hardened the wire
	// sequences (timeouts, retransmission); full-handshake robust buses
	// carry an extra RST resynchronization line.
	Robust bool
	// Parity records that the bus carries PAR/NACK parity lines.
	Parity bool
	// AckSeq records that the bus carries a SEQ word-parity line
	// (protogen repair grammar: sequence-numbered acks).
	AckSeq bool
	// EpochResync records that the bus carries an EPOCH line pulsed
	// alongside RST (protogen repair grammar: dual-rail resync).
	EpochResync bool
}

// IDBits reports the number of ID lines needed to address the bus's
// channels: ceil(log2(N)) for N > 1, otherwise 0.
func (b *Bus) IDBits() int {
	if len(b.Channels) <= 1 {
		return 0
	}
	return AddrBits(len(b.Channels))
}

// TotalLines reports all wires of the bus: data + control + ID, plus
// the REQ/GRANT/GVALID arbitration wires when present, plus the
// RST/PAR/NACK hardening wires when present.
func (b *Bus) TotalLines() int {
	n := b.Width + b.Protocol.ControlLines() + b.IDBits()
	if b.Robust && b.Protocol == FullHandshake {
		n++ // RST
		if b.AckSeq {
			n++ // SEQ
		}
		if b.EpochResync {
			n++ // EPOCH
		}
	}
	if b.Parity {
		n += 2 // PAR, NACK
	}
	if b.Arbitrated {
		accs := make(map[*Behavior]bool)
		for _, c := range b.Channels {
			accs[c.Accessor] = true
		}
		if len(accs) > 1 {
			n += len(accs) + AddrBits(len(accs)) + 1
		}
	}
	return n
}

func (b *Bus) String() string {
	return fmt.Sprintf("bus %s: %d channels, width %d, %s", b.Name, len(b.Channels), b.Width, b.Protocol)
}

// System is a complete specification: modules with their behaviors and
// variables, the channels produced by partitioning, global signals, and
// the buses implementing channel groups.
type System struct {
	Name     string
	Modules  []*Module
	Channels []*Channel
	Buses    []*Bus
	// Globals are system-wide signals, such as generated bus records.
	Globals []*Variable
}

// NewSystem returns an empty system.
func NewSystem(name string) *System { return &System{Name: name} }

// AddModule creates, attaches and returns a new module.
func (s *System) AddModule(name string) *Module {
	m := NewModule(name)
	s.Modules = append(s.Modules, m)
	return m
}

// AddChannel attaches a channel.
func (s *System) AddChannel(c *Channel) *Channel {
	s.Channels = append(s.Channels, c)
	return c
}

// AddGlobal attaches a global signal.
func (s *System) AddGlobal(v *Variable) *Variable {
	s.Globals = append(s.Globals, v)
	return v
}

// Behaviors returns every behavior in the system, in module order.
func (s *System) Behaviors() []*Behavior {
	var out []*Behavior
	for _, m := range s.Modules {
		out = append(out, m.Behaviors...)
	}
	return out
}

// FindBehavior returns the behavior with the given name, or nil.
func (s *System) FindBehavior(name string) *Behavior {
	for _, m := range s.Modules {
		for _, b := range m.Behaviors {
			if b.Name == name {
				return b
			}
		}
	}
	return nil
}

// FindModule returns the module with the given name, or nil.
func (s *System) FindModule(name string) *Module {
	for _, m := range s.Modules {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// FindVariable returns the module-level variable with the given name, or
// nil.
func (s *System) FindVariable(name string) *Variable {
	for _, m := range s.Modules {
		for _, v := range m.Variables {
			if v.Name == name {
				return v
			}
		}
	}
	return nil
}

// FindChannel returns the channel with the given name, or nil.
func (s *System) FindChannel(name string) *Channel {
	for _, c := range s.Channels {
		if c.Name == name {
			return c
		}
	}
	return nil
}
