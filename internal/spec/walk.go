package spec

// WalkExpr calls fn for e and every sub-expression of e, parents first.
// If fn returns false the walk does not descend into the expression.
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch e := e.(type) {
	case *Index:
		WalkExpr(e.Arr, fn)
		WalkExpr(e.Index, fn)
	case *SliceExpr:
		WalkExpr(e.X, fn)
		WalkExpr(e.Hi, fn)
		WalkExpr(e.Lo, fn)
	case *FieldRef:
		WalkExpr(e.X, fn)
	case *Binary:
		WalkExpr(e.X, fn)
		WalkExpr(e.Y, fn)
	case *Unary:
		WalkExpr(e.X, fn)
	case *Conv:
		WalkExpr(e.X, fn)
	}
}

// WalkStmts calls fn for every statement in stmts, recursively, parents
// first. If fn returns false the walk does not descend into the
// statement's bodies.
func WalkStmts(stmts []Stmt, fn func(Stmt) bool) {
	for _, s := range stmts {
		if !fn(s) {
			continue
		}
		switch s := s.(type) {
		case *If:
			WalkStmts(s.Then, fn)
			for _, e := range s.Elifs {
				WalkStmts(e.Body, fn)
			}
			WalkStmts(s.Else, fn)
		case *For:
			WalkStmts(s.Body, fn)
		case *While:
			WalkStmts(s.Body, fn)
		case *Loop:
			WalkStmts(s.Body, fn)
		}
	}
}

// WalkStmtExprs calls fn for every expression appearing in the statement
// list (conditions, bounds, assignment sides, call arguments), including
// sub-expressions.
func WalkStmtExprs(stmts []Stmt, fn func(Expr) bool) {
	WalkStmts(stmts, func(s Stmt) bool {
		for _, e := range stmtExprs(s) {
			WalkExpr(e, fn)
		}
		return true
	})
}

func stmtExprs(s Stmt) []Expr {
	switch s := s.(type) {
	case *Assign:
		return []Expr{s.LHS, s.RHS}
	case *If:
		exprs := []Expr{s.Cond}
		for _, e := range s.Elifs {
			exprs = append(exprs, e.Cond)
		}
		return exprs
	case *For:
		return []Expr{s.From, s.To}
	case *While:
		return []Expr{s.Cond}
	case *Wait:
		if s.Until != nil {
			return []Expr{s.Until}
		}
	case *Call:
		return s.Args
	}
	return nil
}

// RewriteStmts returns a new statement list in which every statement s has
// been replaced by fn(s). fn may return the statement unchanged (wrapped
// in a one-element slice), a replacement sequence, or nil to delete the
// statement. Bodies of compound statements are rewritten first (bottom
// up); the compound statement handed to fn already carries the rewritten
// bodies. Compound statements are copied, so the input list is not
// mutated.
func RewriteStmts(stmts []Stmt, fn func(Stmt) []Stmt) []Stmt {
	var out []Stmt
	for _, s := range stmts {
		switch s := s.(type) {
		case *If:
			cp := &If{Cond: s.Cond, Then: RewriteStmts(s.Then, fn), Else: RewriteStmts(s.Else, fn)}
			for _, e := range s.Elifs {
				cp.Elifs = append(cp.Elifs, ElseIf{Cond: e.Cond, Body: RewriteStmts(e.Body, fn)})
			}
			out = append(out, fn(cp)...)
		case *For:
			cp := &For{Var: s.Var, From: s.From, To: s.To, Body: RewriteStmts(s.Body, fn)}
			out = append(out, fn(cp)...)
		case *While:
			cp := &While{Cond: s.Cond, Body: RewriteStmts(s.Body, fn)}
			out = append(out, fn(cp)...)
		case *Loop:
			cp := &Loop{Body: RewriteStmts(s.Body, fn)}
			out = append(out, fn(cp)...)
		default:
			out = append(out, fn(s)...)
		}
	}
	return out
}

// Keep wraps a statement as the identity result for RewriteStmts.
func Keep(s Stmt) []Stmt { return []Stmt{s} }

// VarsRead returns every variable read anywhere in the statement list
// (including array bases that are indexed for reading). Writes to a plain
// variable do not count as reads, but an indexed or sliced write reads the
// index expression.
func VarsRead(stmts []Stmt) map[*Variable]int {
	counts := make(map[*Variable]int)
	WalkStmts(stmts, func(s Stmt) bool {
		switch s := s.(type) {
		case *Assign:
			countReads(s.RHS, counts)
			// index/slice/field components of the LHS are reads
			countLValueIndexReads(s.LHS, counts)
		default:
			for _, e := range stmtExprs(s) {
				countReads(e, counts)
			}
		}
		return true
	})
	return counts
}

// VarsWritten returns every variable assigned anywhere in the statement
// list, with assignment counts. For indexed, sliced or field lvalues the
// base variable is reported.
func VarsWritten(stmts []Stmt) map[*Variable]int {
	counts := make(map[*Variable]int)
	WalkStmts(stmts, func(s Stmt) bool {
		if a, ok := s.(*Assign); ok {
			if v := BaseVar(a.LHS); v != nil {
				counts[v]++
			}
		}
		if f, ok := s.(*For); ok {
			counts[f.Var]++
		}
		return true
	})
	return counts
}

func countReads(e Expr, counts map[*Variable]int) {
	WalkExpr(e, func(e Expr) bool {
		if r, ok := e.(*VarRef); ok {
			counts[r.Var]++
		}
		return true
	})
}

func countLValueIndexReads(lhs Expr, counts map[*Variable]int) {
	switch lhs := lhs.(type) {
	case *Index:
		countReads(lhs.Index, counts)
		countLValueIndexReads(lhs.Arr, counts)
	case *SliceExpr:
		countReads(lhs.Hi, counts)
		countReads(lhs.Lo, counts)
		countLValueIndexReads(lhs.X, counts)
	case *FieldRef:
		countLValueIndexReads(lhs.X, counts)
	}
}

// BaseVar returns the variable at the root of an lvalue expression
// (unwrapping Index, SliceExpr and FieldRef), or nil if the expression is
// not rooted at a variable.
func BaseVar(e Expr) *Variable {
	for {
		switch x := e.(type) {
		case *VarRef:
			return x.Var
		case *Index:
			e = x.Arr
		case *SliceExpr:
			e = x.X
		case *FieldRef:
			e = x.X
		default:
			return nil
		}
	}
}

// SignalsRead returns the signals referenced by the expression, used to
// build the implicit sensitivity list of "wait until".
func SignalsRead(e Expr) []*Variable {
	var out []*Variable
	seen := make(map[*Variable]bool)
	WalkExpr(e, func(e Expr) bool {
		if r, ok := e.(*VarRef); ok && r.Var.Kind == KindSignal && !seen[r.Var] {
			seen[r.Var] = true
			out = append(out, r.Var)
		}
		return true
	})
	return out
}

// References reports whether the statement list references (reads or
// writes) the given variable anywhere.
func References(stmts []Stmt, v *Variable) bool {
	found := false
	WalkStmtExprs(stmts, func(e Expr) bool {
		if r, ok := e.(*VarRef); ok && r.Var == v {
			found = true
			return false
		}
		return !found
	})
	return found
}
