package spec

import (
	"fmt"
)

// Validate checks the structural consistency of a system and returns every
// problem found. A valid system is safe to estimate, synthesize and
// simulate. The checks mirror the assumptions the rest of the flow makes:
//
//   - names of modules, behaviors and module variables are unique;
//   - channels connect an existing behavior to a module variable on a
//     *different* module (a channel is inter-module by definition);
//   - every channel of a bus exists in the system;
//   - procedure calls match the callee's arity, and out/inout arguments
//     are lvalues;
//   - assignment targets are lvalues.
func (s *System) Validate() []error {
	var errs []error
	report := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	modNames := make(map[string]bool)
	behNames := make(map[string]*Behavior)
	varNames := make(map[string]*Variable)
	for _, m := range s.Modules {
		if modNames[m.Name] {
			report("duplicate module name %q", m.Name)
		}
		modNames[m.Name] = true
		for _, b := range m.Behaviors {
			if behNames[b.Name] != nil {
				report("duplicate behavior name %q", b.Name)
			}
			behNames[b.Name] = b
			if b.Owner != m {
				report("behavior %q owner pointer does not match module %q", b.Name, m.Name)
			}
			errs = append(errs, validateBody(b)...)
		}
		for _, v := range m.Variables {
			if varNames[v.Name] != nil {
				report("duplicate module variable name %q", v.Name)
			}
			varNames[v.Name] = v
			if v.Owner != m {
				report("variable %q owner pointer does not match module %q", v.Name, m.Name)
			}
		}
	}

	chanNames := make(map[string]bool)
	for _, c := range s.Channels {
		if chanNames[c.Name] {
			report("duplicate channel name %q", c.Name)
		}
		chanNames[c.Name] = true
		if c.Accessor == nil || c.Var == nil {
			report("channel %q missing accessor or variable", c.Name)
			continue
		}
		if behNames[c.Accessor.Name] != c.Accessor {
			report("channel %q accessor %q not in system", c.Name, c.Accessor.Name)
		}
		if c.Var.Owner == nil {
			report("channel %q variable %q not assigned to a module", c.Name, c.Var.Name)
		} else if c.Accessor.Owner == c.Var.Owner {
			report("channel %q is intra-module (%q): channels must cross module boundaries",
				c.Name, c.Var.Owner.Name)
		}
	}

	inSystem := make(map[*Channel]bool)
	for _, c := range s.Channels {
		inSystem[c] = true
	}
	for _, bus := range s.Buses {
		if len(bus.Channels) == 0 {
			report("bus %q has no channels", bus.Name)
		}
		for _, c := range bus.Channels {
			if !inSystem[c] {
				report("bus %q references channel %q not in system", bus.Name, c.Name)
			}
		}
		if bus.Width < 0 {
			report("bus %q has negative width %d", bus.Name, bus.Width)
		}
	}
	return errs
}

func validateBody(b *Behavior) []error {
	var errs []error
	check := func(stmts []Stmt, where string) {
		WalkStmts(stmts, func(s Stmt) bool {
			switch s := s.(type) {
			case *Assign:
				if BaseVar(s.LHS) == nil {
					errs = append(errs, fmt.Errorf("%s: assignment target %s is not an lvalue", where, s.LHS))
				}
				if s.RHS == nil {
					errs = append(errs, fmt.Errorf("%s: assignment with nil RHS", where))
				}
			case *Call:
				if s.Proc == nil {
					errs = append(errs, fmt.Errorf("%s: call with nil procedure", where))
					return true
				}
				if len(s.Args) != len(s.Proc.Params) {
					errs = append(errs, fmt.Errorf("%s: call %s has %d args, procedure takes %d",
						where, s.Proc.Name, len(s.Args), len(s.Proc.Params)))
					return true
				}
				for i, p := range s.Proc.Params {
					if p.Mode != ModeIn && BaseVar(s.Args[i]) == nil {
						errs = append(errs, fmt.Errorf("%s: call %s arg %d for %s param %q is not an lvalue",
							where, s.Proc.Name, i, p.Mode, p.Var.Name))
					}
				}
			case *For:
				if s.Var == nil {
					errs = append(errs, fmt.Errorf("%s: for loop with nil loop variable", where))
				}
			case *Wait:
				if s.TimedOut != nil && (s.Until == nil || !s.HasFor) {
					errs = append(errs, fmt.Errorf("%s: wait records a timed-out result but lacks %s",
						where, missingWaitClause(s)))
				}
			}
			return true
		})
	}
	check(b.Body, "behavior "+b.Name)
	for _, p := range b.Procedures {
		check(p.Body, fmt.Sprintf("behavior %s procedure %s", b.Name, p.Name))
	}
	return errs
}

func missingWaitClause(s *Wait) string {
	if s.Until == nil && !s.HasFor {
		return "a condition and a deadline"
	}
	if s.Until == nil {
		return "a condition"
	}
	return "a deadline"
}

// MustValidate panics if the system is invalid. Intended for construction
// of known-good workloads in tests and examples.
func (s *System) MustValidate() *System {
	if errs := s.Validate(); len(errs) > 0 {
		panic(fmt.Sprintf("spec: invalid system %s: %v", s.Name, errs[0]))
	}
	return s
}
