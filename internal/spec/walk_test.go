package spec

import (
	"math/rand"
	"testing"
)

// randStmts builds a random statement tree over the given variables.
func randStmts(rng *rand.Rand, vars []*Variable, depth int) []Stmt {
	n := 1 + rng.Intn(4)
	out := make([]Stmt, 0, n)
	for i := 0; i < n; i++ {
		v := vars[rng.Intn(len(vars))]
		w := vars[rng.Intn(len(vars))]
		switch k := rng.Intn(7); {
		case k == 0 && depth > 0:
			out = append(out, &If{
				Cond: Gt(Ref(v), Int(int64(rng.Intn(10)))),
				Then: randStmts(rng, vars, depth-1),
				Else: randStmts(rng, vars, depth-1),
			})
		case k == 1 && depth > 0:
			lv := NewVar("i", Integer)
			out = append(out, &For{Var: lv, From: Int(0), To: Int(int64(rng.Intn(5))),
				Body: randStmts(rng, vars, depth-1)})
		case k == 2 && depth > 0:
			out = append(out, &Loop{Body: append(randStmts(rng, vars, depth-1), &Exit{})})
		case k == 3:
			out = append(out, WaitFor(int64(rng.Intn(5)+1)))
		case k == 4:
			out = append(out, &Null{})
		default:
			out = append(out, AssignVar(Ref(v), Add(Ref(w), Int(int64(rng.Intn(100))))))
		}
	}
	return out
}

func countStmts(stmts []Stmt) int {
	n := 0
	WalkStmts(stmts, func(Stmt) bool { n++; return true })
	return n
}

// Property: RewriteStmts with Keep preserves the statement count and
// leaves reference sets intact, over random trees.
func TestQuickRewriteKeepIsIdentityShape(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vars := []*Variable{NewVar("a", Integer), NewVar("b", Integer), NewVar("c", Integer)}
	for trial := 0; trial < 200; trial++ {
		body := randStmts(rng, vars, 3)
		before := countStmts(body)
		reads := VarsRead(body)
		out := RewriteStmts(body, Keep)
		if got := countStmts(out); got != before {
			t.Fatalf("trial %d: stmt count %d -> %d", trial, before, got)
		}
		after := VarsRead(out)
		for v, n := range reads {
			if after[v] != n {
				t.Fatalf("trial %d: reads of %s changed %d -> %d", trial, v.Name, n, after[v])
			}
		}
	}
}

// Property: deleting every Null strictly reduces (or keeps) the count
// and leaves no Null behind.
func TestQuickRewriteDeleteNulls(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vars := []*Variable{NewVar("a", Integer), NewVar("b", Integer)}
	for trial := 0; trial < 200; trial++ {
		body := randStmts(rng, vars, 3)
		out := RewriteStmts(body, func(s Stmt) []Stmt {
			if _, ok := s.(*Null); ok {
				return nil
			}
			return Keep(s)
		})
		WalkStmts(out, func(s Stmt) bool {
			if _, ok := s.(*Null); ok {
				t.Fatalf("trial %d: Null survived", trial)
			}
			return true
		})
		if countStmts(out) > countStmts(body) {
			t.Fatalf("trial %d: deletion grew the tree", trial)
		}
	}
}

// Property: rewriting never mutates the input tree.
func TestQuickRewriteDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	vars := []*Variable{NewVar("a", Integer), NewVar("b", Integer)}
	for trial := 0; trial < 100; trial++ {
		body := randStmts(rng, vars, 3)
		before := FormatStmts(body, "")
		RewriteStmts(body, func(s Stmt) []Stmt {
			if a, ok := s.(*Assign); ok {
				return []Stmt{AssignVar(a.LHS, Int(0))}
			}
			return nil // delete everything else
		})
		if FormatStmts(body, "") != before {
			t.Fatalf("trial %d: input mutated", trial)
		}
	}
}
