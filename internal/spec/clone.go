package spec

// Clone returns a deep copy of the system: modules, behaviors,
// procedures, variables, statements, expressions, channels, buses and
// globals are all fresh nodes, with internal cross-references (a VarRef
// inside a body pointing at a behavior-local variable, a channel's
// Accessor, a bus's Channels) remapped onto the copies.
//
// Protocol generation refines a system in place — it rewrites accessor
// bodies, attaches server processes and declares bus signals — so any
// flow that wants to generate several protocol variants from one
// template (the repair loop, core's Repair mode) must clone the
// unrefined template before each Generate call.
//
// Two deliberate sharings: Type values are copied as values (RecordType
// field slices are duplicated so a later in-place edit cannot alias),
// and bits.Vector values are shared, matching the immutability
// convention used across sim and verify.
func Clone(sys *System) *System {
	if sys == nil {
		return nil
	}
	c := &cloner{
		mods:  make(map[*Module]*Module),
		behs:  make(map[*Behavior]*Behavior),
		procs: make(map[*Procedure]*Procedure),
		vars:  make(map[*Variable]*Variable),
		chans: make(map[*Channel]*Channel),
	}
	out := &System{Name: sys.Name}

	// Phase 1: allocate every named node so cross-references resolve no
	// matter the declaration order (a dispatcher body may call another
	// behavior's procedure; a channel may name an accessor declared
	// later).
	for _, m := range sys.Modules {
		nm := &Module{Name: m.Name}
		c.mods[m] = nm
		out.Modules = append(out.Modules, nm)
	}
	for _, m := range sys.Modules {
		nm := c.mods[m]
		for _, v := range m.Variables {
			nv := c.variable(v)
			nv.Owner = nm
			nm.Variables = append(nm.Variables, nv)
		}
		for _, b := range m.Behaviors {
			nb := &Behavior{Name: b.Name, Server: b.Server, Owner: nm}
			c.behs[b] = nb
			nm.Behaviors = append(nm.Behaviors, nb)
			for _, v := range b.Variables {
				nb.Variables = append(nb.Variables, c.variable(v))
			}
			for _, p := range b.Procedures {
				np := &Procedure{Name: p.Name}
				c.procs[p] = np
				nb.Procedures = append(nb.Procedures, np)
			}
		}
	}
	for _, g := range sys.Globals {
		out.Globals = append(out.Globals, c.variable(g))
	}
	for _, ch := range sys.Channels {
		nch := &Channel{
			Name:           ch.Name,
			Accessor:       c.behs[ch.Accessor],
			Var:            c.variable(ch.Var),
			Dir:            ch.Dir,
			ID:             ch.ID,
			IDBits:         ch.IDBits,
			Accesses:       ch.Accesses,
			LifetimeClocks: ch.LifetimeClocks,
		}
		c.chans[ch] = nch
		out.Channels = append(out.Channels, nch)
	}

	// Phase 2: fill bodies now that every referent exists.
	for _, m := range sys.Modules {
		for _, b := range m.Behaviors {
			nb := c.behs[b]
			for i, p := range b.Procedures {
				np := nb.Procedures[i]
				for _, prm := range p.Params {
					np.Params = append(np.Params, Param{Var: c.variable(prm.Var), Mode: prm.Mode})
				}
				for _, l := range p.Locals {
					np.Locals = append(np.Locals, c.variable(l))
				}
				np.Body = c.stmts(p.Body)
				np.Channel = c.chans[p.Channel]
			}
			nb.Body = c.stmts(b.Body)
		}
	}
	for _, b := range sys.Buses {
		nb := &Bus{
			Name:        b.Name,
			Width:       b.Width,
			Protocol:    b.Protocol,
			Record:      cloneRecord(b.Record),
			Signal:      c.variable(b.Signal),
			Arbitrated:  b.Arbitrated,
			Robust:      b.Robust,
			Parity:      b.Parity,
			AckSeq:      b.AckSeq,
			EpochResync: b.EpochResync,
		}
		for _, ch := range b.Channels {
			nb.Channels = append(nb.Channels, c.chans[ch])
		}
		out.Buses = append(out.Buses, nb)
	}
	return out
}

type cloner struct {
	mods  map[*Module]*Module
	behs  map[*Behavior]*Behavior
	procs map[*Procedure]*Procedure
	vars  map[*Variable]*Variable
	chans map[*Channel]*Channel
}

// variable clones lazily: variables not registered on any declaration
// list (ad-hoc loop counters, timeout flags) are still remapped
// consistently the first time a statement mentions them.
func (c *cloner) variable(v *Variable) *Variable {
	if v == nil {
		return nil
	}
	if nv, ok := c.vars[v]; ok {
		return nv
	}
	nv := &Variable{
		Name: v.Name,
		Type: cloneType(v.Type),
		Kind: v.Kind,
	}
	c.vars[v] = nv // register before Init in case of (degenerate) self-reference
	nv.Init = c.expr(v.Init)
	if v.InitArray != nil {
		nv.InitArray = append(nv.InitArray[:0:0], v.InitArray...)
	}
	if v.Owner != nil {
		nv.Owner = c.mods[v.Owner]
	}
	return nv
}

func (c *cloner) stmts(list []Stmt) []Stmt {
	if list == nil {
		return nil
	}
	out := make([]Stmt, len(list))
	for i, s := range list {
		out[i] = c.stmt(s)
	}
	return out
}

func (c *cloner) stmt(s Stmt) Stmt {
	switch s := s.(type) {
	case *Assign:
		return &Assign{Kind: s.Kind, LHS: c.expr(s.LHS), RHS: c.expr(s.RHS)}
	case *If:
		ns := &If{Cond: c.expr(s.Cond), Then: c.stmts(s.Then), Else: c.stmts(s.Else)}
		for _, e := range s.Elifs {
			ns.Elifs = append(ns.Elifs, ElseIf{Cond: c.expr(e.Cond), Body: c.stmts(e.Body)})
		}
		return ns
	case *For:
		return &For{Var: c.variable(s.Var), From: c.expr(s.From), To: c.expr(s.To), Body: c.stmts(s.Body)}
	case *While:
		return &While{Cond: c.expr(s.Cond), Body: c.stmts(s.Body)}
	case *Loop:
		return &Loop{Body: c.stmts(s.Body)}
	case *Exit:
		return &Exit{}
	case *Wait:
		ns := &Wait{Until: c.expr(s.Until), For: s.For, HasFor: s.HasFor, TimedOut: c.variable(s.TimedOut)}
		for _, v := range s.On {
			ns.On = append(ns.On, c.variable(v))
		}
		return ns
	case *Call:
		ns := &Call{Proc: c.procedure(s.Proc)}
		for _, a := range s.Args {
			ns.Args = append(ns.Args, c.expr(a))
		}
		return ns
	case *Return:
		return &Return{}
	case *Null:
		return &Null{}
	case nil:
		return nil
	default:
		panic("spec.Clone: unknown statement type " + s.String())
	}
}

// procedure resolves through the memo; a Call naming a procedure that is
// not attached to any behavior (never happens in generated systems) is
// cloned shallowly on demand so the reference at least stays consistent.
func (c *cloner) procedure(p *Procedure) *Procedure {
	if p == nil {
		return nil
	}
	if np, ok := c.procs[p]; ok {
		return np
	}
	np := &Procedure{Name: p.Name}
	c.procs[p] = np
	for _, prm := range p.Params {
		np.Params = append(np.Params, Param{Var: c.variable(prm.Var), Mode: prm.Mode})
	}
	for _, l := range p.Locals {
		np.Locals = append(np.Locals, c.variable(l))
	}
	np.Body = c.stmts(p.Body)
	np.Channel = c.chans[p.Channel]
	return np
}

func (c *cloner) expr(e Expr) Expr {
	switch e := e.(type) {
	case *IntLit:
		return &IntLit{Value: e.Value, Typ: cloneType(e.Typ)}
	case *VecLit:
		return &VecLit{Value: e.Value}
	case *BoolLit:
		return &BoolLit{Value: e.Value}
	case *VarRef:
		return &VarRef{Var: c.variable(e.Var)}
	case *Index:
		return &Index{Arr: c.expr(e.Arr), Index: c.expr(e.Index)}
	case *SliceExpr:
		return &SliceExpr{X: c.expr(e.X), Hi: c.expr(e.Hi), Lo: c.expr(e.Lo), Width: e.Width}
	case *FieldRef:
		return &FieldRef{X: c.expr(e.X), Field: e.Field}
	case *Binary:
		return &Binary{Op: e.Op, X: c.expr(e.X), Y: c.expr(e.Y)}
	case *Unary:
		return &Unary{Op: e.Op, X: c.expr(e.X)}
	case *Conv:
		return &Conv{X: c.expr(e.X), To: cloneType(e.To), Signed: e.Signed}
	case nil:
		return nil
	default:
		panic("spec.Clone: unknown expression type " + e.String())
	}
}

// cloneType copies type values. Most types are plain values; RecordType
// carries a Fields slice that must not alias the original.
func cloneType(t Type) Type {
	if r, ok := t.(RecordType); ok {
		return cloneRecord(r)
	}
	return t
}

func cloneRecord(r RecordType) RecordType {
	nr := RecordType{Name: r.Name}
	if r.Fields != nil {
		nr.Fields = append(nr.Fields[:0:0], r.Fields...)
	}
	return nr
}
