package spec

import (
	"strings"
	"testing"

	"repro/internal/bits"
)

// TestExprStringsAndTypes pins the rendering and static type of every
// expression node.
func TestExprStringsAndTypes(t *testing.T) {
	v := NewVar("v", BitVector(8))
	n := NewVar("n", Integer)
	arr := NewVar("arr", Array(4, BitVector(8)))
	rec := NewSignal("B", RecordType{Name: "R", Fields: []Field{{Name: "D", Type: BitVector(8)}}})

	cases := []struct {
		e        Expr
		wantStr  string
		wantType Type
	}{
		{Int(5), "5", Integer},
		{Vec(bits.MustParse("1010")), `"1010"`, BitVector(4)},
		{VecString("1"), "'1'", Bit},
		{True, "true", Bool},
		{False, "false", Bool},
		{Ref(v), "v", BitVector(8)},
		{At(Ref(arr), Int(2)), "arr(2)", BitVector(8)},
		{SliceBits(Ref(v), 7, 4), "v(7 downto 4)", BitVector(4)},
		{FieldOf(Ref(rec), "D"), "B.D", BitVector(8)},
		{Add(Ref(n), Int(1)), "(n + 1)", Integer},
		{Sub(Ref(n), Int(1)), "(n - 1)", Integer},
		{Mul(Ref(n), Int(2)), "(n * 2)", Integer},
		{Eq(Ref(n), Int(0)), "(n = 0)", Bool},
		{Neq(Ref(n), Int(0)), "(n /= 0)", Bool},
		{Lt(Ref(n), Int(0)), "(n < 0)", Bool},
		{Le(Ref(n), Int(0)), "(n <= 0)", Bool},
		{Gt(Ref(n), Int(0)), "(n > 0)", Bool},
		{Ge(Ref(n), Int(0)), "(n >= 0)", Bool},
		{LogicalAnd(True, False), "(true and false)", Bool},
		{LogicalOr(True, False), "(true or false)", Bool},
		{Not(True), "(not true)", Bool},
		{Neg(Ref(n)), "(- n)", Integer},
		{Bin(OpConcat, Ref(v), Ref(v)), "(v & v)", BitVector(16)},
		{ToInt(Ref(v)), "conv<integer>(v)", Integer},
		{ToIntSigned(Ref(v)), "conv<integer>(v)", Integer},
		{ToVec(Ref(n), 8), "conv<bit_vector(7 downto 0)>(n)", BitVector(8)},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.wantStr {
			t.Errorf("String = %q, want %q", got, c.wantStr)
		}
		if got := c.e.Type(); !got.Equal(c.wantType) {
			t.Errorf("%s: Type = %v, want %v", c.wantStr, got, c.wantType)
		}
	}
}

func TestStmtStrings(t *testing.T) {
	v := NewVar("v", Integer)
	proc := &Procedure{Name: "p"}
	cases := []struct {
		s    Stmt
		want string
	}{
		{AssignVar(Ref(v), Int(1)), "v := 1"},
		{AssignSig(Ref(v), Int(1)), "v <= 1"},
		{&If{Cond: True}, "if true then ... end if"},
		{&For{Var: v, From: Int(0), To: Int(3)}, "for v in 0 to 3 loop ... end loop"},
		{&While{Cond: True}, "while true loop ... end loop"},
		{&Loop{}, "loop ... end loop"},
		{&Exit{}, "exit"},
		{&Return{}, "return"},
		{&Null{}, "null"},
		{CallProc(proc, Int(1), Int(2)), "p(1, 2)"},
		{WaitFor(7), "wait for 7"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestDeclStrings(t *testing.T) {
	v := NewVar("v", BitVector(4))
	if got := v.String(); got != "variable v : bit_vector(3 downto 0)" {
		t.Errorf("var String = %q", got)
	}
	s := NewSignal("s", Bit)
	if !strings.HasPrefix(s.String(), "signal s") {
		t.Errorf("signal String = %q", s.String())
	}
	b := NewBehavior("B")
	if b.String() != "behavior B" {
		t.Errorf("behavior String = %q", b.String())
	}
	m := NewModule("M")
	if m.String() != "module M" {
		t.Errorf("module String = %q", m.String())
	}
	p := &Procedure{Name: "p", Params: []Param{{Var: v, Mode: ModeOut}}}
	if p.String() != "procedure p/1" {
		t.Errorf("proc String = %q", p.String())
	}
	if p.FindParam("v") == nil || p.FindParam("ghost") != nil {
		t.Error("FindParam wrong")
	}
	if ModeIn.String() != "in" || ModeOut.String() != "out" || ModeInOut.String() != "inout" {
		t.Error("mode strings")
	}
	if KindVariable.String() != "variable" || KindSignal.String() != "signal" {
		t.Error("kind strings")
	}
	if Read.String() != "read" || Write.String() != "write" {
		t.Error("direction strings")
	}
}

func TestChannelAndBusStrings(t *testing.T) {
	sys := NewSystem("s")
	m1 := sys.AddModule("m1")
	m2 := sys.AddModule("m2")
	b := m1.AddBehavior(NewBehavior("A"))
	v := m2.AddVariable(NewVar("MEM", Array(4, Bit)))
	cr := &Channel{Name: "ch1", Accessor: b, Var: v, Dir: Read}
	cw := &Channel{Name: "ch2", Accessor: b, Var: v, Dir: Write}
	if cr.String() != "ch1 : A < MEM" {
		t.Errorf("read channel String = %q", cr.String())
	}
	if cw.String() != "ch2 : A > MEM" {
		t.Errorf("write channel String = %q", cw.String())
	}
	bus := &Bus{Name: "B", Channels: []*Channel{cr, cw}, Width: 8}
	if !strings.Contains(bus.String(), "bus B") || !strings.Contains(bus.String(), "width 8") {
		t.Errorf("bus String = %q", bus.String())
	}
	if !strings.Contains(FullHandshake.String(), "handshake") {
		t.Error("protocol string")
	}
}

func TestOpHelpers(t *testing.T) {
	if !OpEq.IsComparison() || OpAdd.IsComparison() {
		t.Error("IsComparison wrong")
	}
	if Op(999).String() == "" {
		t.Error("unknown op String empty")
	}
	if OpMod.String() != "mod" || OpShl.String() != "sll" {
		t.Error("op names")
	}
}

func TestExprStringList(t *testing.T) {
	if got := ExprString([]Expr{Int(1), Int(2)}); got != "1, 2" {
		t.Errorf("ExprString = %q", got)
	}
}

func TestIntLitDefaultType(t *testing.T) {
	lit := &IntLit{Value: 3} // no explicit type
	if !lit.Type().Equal(Integer) {
		t.Error("IntLit default type not integer")
	}
}

func TestVecHelper(t *testing.T) {
	e := Vec(bits.FromUint(5, 4))
	if e.Value.Uint64() != 5 {
		t.Error("Vec helper wrong")
	}
}

func TestAddGlobalAndTotalLinesArbitrated(t *testing.T) {
	sys := NewSystem("s")
	g := sys.AddGlobal(NewSignal("G", Bit))
	if len(sys.Globals) != 1 || sys.Globals[0] != g {
		t.Error("AddGlobal wrong")
	}
	m1 := sys.AddModule("m1")
	m2 := sys.AddModule("m2")
	a := m1.AddBehavior(NewBehavior("A"))
	b := m1.AddBehavior(NewBehavior("Bb"))
	v := m2.AddVariable(NewVar("V", BitVector(8)))
	bus := &Bus{
		Name: "B", Width: 8, Protocol: FullHandshake, Arbitrated: true,
		Channels: []*Channel{
			{Name: "c1", Accessor: a, Var: v, Dir: Write},
			{Name: "c2", Accessor: b, Var: v, Dir: Write},
		},
	}
	// 8 data + 2 ctrl + 1 id + (2 REQ + 1 GRANT + 1 GVALID) = 15.
	if got := bus.TotalLines(); got != 15 {
		t.Errorf("arbitrated TotalLines = %d, want 15", got)
	}
}
