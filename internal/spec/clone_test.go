package spec

import (
	"testing"

	"repro/internal/bits"
)

// buildCloneFixture assembles a small system that touches every
// statement and expression node, procedure params/locals, module and
// behavior variables, globals, channels and a bus record.
func buildCloneFixture() *System {
	sys := NewSystem("fix")
	m1 := sys.AddModule("m1")
	m2 := sys.AddModule("m2")

	mem := m2.AddVariable(NewVar("MEM", Array(4, BitVector(8))))
	mem.InitArray = []bits.Vector{bits.FromUint(1, 8), bits.FromUint(2, 8)}

	b := m1.AddBehavior(NewBehavior("A"))
	i := b.AddVar("I", Integer)
	tmo := b.AddVar("TMO", Bool)
	d := b.AddVar("D", BitVector(8))

	rec := RecordType{Name: "BusRec", Fields: []Field{{Name: "START", Type: Bit}, {Name: "DATA", Type: BitVector(8)}}}
	busSig := sys.AddGlobal(NewSignal("B", rec))

	p := b.AddProc(&Procedure{Name: "SendCH0"})
	arg := NewVar("V", BitVector(8))
	p.Params = []Param{{Var: arg, Mode: ModeIn}}
	loc := NewVar("OK", Bool)
	p.Locals = []*Variable{loc}
	p.Body = []Stmt{
		AssignSig(FieldOf(Ref(busSig), "DATA"), SliceBits(Ref(arg), 7, 0)),
		AssignVar(Ref(loc), Eq(FieldOf(Ref(busSig), "START"), VecString("1"))),
		WaitUntilFor(Not(Ref(loc)), 8, tmo),
		&If{
			Cond:  Ref(tmo),
			Then:  []Stmt{&Return{}},
			Elifs: []ElseIf{{Cond: Ref(loc), Body: []Stmt{&Null{}}}},
			Else:  []Stmt{&Exit{}},
		},
	}

	b.Body = []Stmt{
		&For{Var: i, From: Int(0), To: Int(3), Body: []Stmt{
			AssignVar(At(Ref(mem), Ref(i)), ToVec(Add(ToInt(Ref(d)), Int(1)), 8)),
			CallProc(p, Ref(d)),
		}},
		&While{Cond: Lt(Ref(i), Int(2)), Body: []Stmt{WaitFor(1)}},
		&Loop{Body: []Stmt{WaitOn(busSig), &Exit{}}},
		WaitUntil(Neq(Ref(d), Vec(bits.FromUint(0, 8)))),
	}

	ch := sys.AddChannel(&Channel{Name: "CH0", Accessor: b, Var: mem, Dir: Write, ID: bits.FromUint(1, 2), IDBits: 2, Accesses: 4})
	p.Channel = ch
	sys.Buses = append(sys.Buses, &Bus{
		Name: "B", Channels: []*Channel{ch}, Width: 8, Protocol: FullHandshake,
		Record: rec, Signal: busSig, Robust: true,
	})
	return sys
}

func TestCloneStructurallyEqual(t *testing.T) {
	orig := buildCloneFixture()
	cp := Clone(orig)

	if cp == orig {
		t.Fatal("Clone returned the same pointer")
	}
	ob, cb := orig.Modules[0].Behaviors[0], cp.Modules[0].Behaviors[0]
	if got, want := FormatStmts(cb.Body, ""), FormatStmts(ob.Body, ""); got != want {
		t.Errorf("cloned behavior body differs:\n got %q\nwant %q", got, want)
	}
	if got, want := FormatStmts(cb.Procedures[0].Body, ""), FormatStmts(ob.Procedures[0].Body, ""); got != want {
		t.Errorf("cloned procedure body differs:\n got %q\nwant %q", got, want)
	}
	if !cp.Buses[0].Record.Equal(orig.Buses[0].Record) {
		t.Error("cloned bus record type differs")
	}
}

func TestCloneRemapsReferences(t *testing.T) {
	orig := buildCloneFixture()
	cp := Clone(orig)

	ob, cb := orig.Modules[0].Behaviors[0], cp.Modules[0].Behaviors[0]
	if cb == ob {
		t.Fatal("behavior not cloned")
	}
	if cb.Owner != cp.Modules[0] {
		t.Error("behavior Owner not remapped to cloned module")
	}

	// The For loop variable reference inside the body must resolve to
	// the clone's variable, not the original's.
	cf := cb.Body[0].(*For)
	of := ob.Body[0].(*For)
	if cf.Var == of.Var {
		t.Error("loop variable shared between clone and original")
	}
	if cf.Var != cb.Variables[0] {
		t.Error("loop variable not remapped onto the cloned behavior's declaration")
	}
	idx := cf.Body[0].(*Assign).LHS.(*Index)
	if idx.Arr.(*VarRef).Var != cp.Modules[1].Variables[0] {
		t.Error("MEM reference not remapped onto cloned module variable")
	}
	if idx.Arr.(*VarRef).Var.Owner != cp.Modules[1] {
		t.Error("cloned MEM Owner not remapped")
	}

	// Call statements must target the cloned procedure.
	call := cf.Body[1].(*Call)
	if call.Proc != cb.Procedures[0] {
		t.Error("Call.Proc not remapped onto cloned procedure")
	}
	if call.Proc.Channel != cp.Channels[0] {
		t.Error("Procedure.Channel not remapped onto cloned channel")
	}

	// Bounded-wait TimedOut flag and wait-on sensitivity lists.
	w := cb.Procedures[0].Body[2].(*Wait)
	if w.TimedOut != cb.Variables[1] {
		t.Error("Wait.TimedOut not remapped")
	}
	loop := cb.Body[2].(*Loop)
	if loop.Body[0].(*Wait).On[0] != cp.Globals[0] {
		t.Error("Wait.On not remapped onto cloned global signal")
	}

	// Channel and bus endpoints.
	if cp.Channels[0].Accessor != cb || cp.Channels[0].Var != cp.Modules[1].Variables[0] {
		t.Error("channel endpoints not remapped")
	}
	if cp.Buses[0].Channels[0] != cp.Channels[0] {
		t.Error("bus channel list not remapped")
	}
	if cp.Buses[0].Signal != cp.Globals[0] {
		t.Error("bus signal not remapped onto cloned global")
	}
}

func TestCloneIsolatesMutation(t *testing.T) {
	orig := buildCloneFixture()
	before := FormatStmts(orig.Modules[0].Behaviors[0].Body, "")
	beforeRec := orig.Buses[0].Record.String()

	cp := Clone(orig)
	cb := cp.Modules[0].Behaviors[0]
	cb.Body = append(cb.Body, &Null{})
	cb.Body[0].(*For).Body[0] = &Null{}
	cp.Buses[0].Record.Fields[0].Name = "MUTATED"
	cp.Modules[1].Variables[0].InitArray[0] = bits.FromUint(99, 8)
	cp.Globals[0].Name = "MUTATED"

	if got := FormatStmts(orig.Modules[0].Behaviors[0].Body, ""); got != before {
		t.Errorf("mutating clone changed original body:\n got %q\nwant %q", got, before)
	}
	if got := orig.Buses[0].Record.String(); got != beforeRec {
		t.Errorf("mutating clone record changed original: %q", got)
	}
	if orig.Modules[1].Variables[0].InitArray[0].Uint64() != 1 {
		t.Error("mutating clone InitArray changed original")
	}
	if orig.Globals[0].Name != "B" {
		t.Error("mutating clone global changed original")
	}
}
