// Package spec defines the specification-level intermediate representation
// used throughout the interface-synthesis flow: a system is a set of
// modules, each holding behaviors (concurrent processes) and variables
// (scalars, arrays, memories); behaviors execute sequential statements over
// typed expressions. Inter-module variable accesses are abstracted as
// channels, and channel groups are implemented as buses.
//
// This is the in-memory form of the SpecSyn-style specification of
// Narayan & Gajski (DAC'94): the input to system partitioning, bus
// generation and protocol generation, and the output ("refined
// specification") of protocol generation, which internal/sim can execute.
package spec

import (
	"fmt"
	"strings"
)

// Type is the interface implemented by all specification types.
type Type interface {
	// BitWidth reports the number of bits a value of this type occupies
	// when transferred over a channel (the "message size" of the paper).
	BitWidth() int
	// String renders the type in VHDL-like syntax.
	String() string
	// Equal reports structural type equality.
	Equal(Type) bool
}

// BitType is the VHDL 'bit' type: a single wire.
type BitType struct{}

// BoolType is the boolean type used by conditions.
type BoolType struct{}

// IntegerType is a signed integer of the given width (VHDL 'integer' is 32
// bits).
type IntegerType struct {
	Width int
}

// BitVectorType is bit_vector(Width-1 downto 0).
type BitVectorType struct {
	Width int
}

// ArrayType is array(Lo to Lo+Length-1) of Elem. Arrays model memories; an
// access to a remote array carries an address of AddrBits() bits alongside
// the data, exactly as in the paper's FLC channels (16-bit data + 7-bit
// address for a 128-entry array).
type ArrayType struct {
	Length int
	Lo     int
	Elem   Type
}

// Field is one component of a RecordType.
type Field struct {
	Name string
	Type Type
}

// RecordType is a VHDL record; protocol generation declares the bus as a
// record of control, ID and data lines (e.g. type HandShakeBus).
type RecordType struct {
	Name   string
	Fields []Field
}

// Bit is the canonical BitType instance.
var Bit = BitType{}

// Bool is the canonical BoolType instance.
var Bool = BoolType{}

// Integer is the canonical 32-bit IntegerType instance.
var Integer = IntegerType{Width: 32}

// BitVector returns a BitVectorType of the given width.
func BitVector(width int) BitVectorType { return BitVectorType{Width: width} }

// Array returns array(0 to length-1) of elem.
func Array(length int, elem Type) ArrayType { return ArrayType{Length: length, Elem: elem} }

func (BitType) BitWidth() int  { return 1 }
func (BitType) String() string { return "bit" }
func (BitType) Equal(o Type) bool {
	_, ok := o.(BitType)
	return ok
}

func (BoolType) BitWidth() int  { return 1 }
func (BoolType) String() string { return "boolean" }
func (BoolType) Equal(o Type) bool {
	_, ok := o.(BoolType)
	return ok
}

func (t IntegerType) BitWidth() int { return t.Width }
func (t IntegerType) String() string {
	if t.Width == 32 {
		return "integer"
	}
	return fmt.Sprintf("integer<%d>", t.Width)
}
func (t IntegerType) Equal(o Type) bool {
	v, ok := o.(IntegerType)
	return ok && v.Width == t.Width
}

func (t BitVectorType) BitWidth() int { return t.Width }
func (t BitVectorType) String() string {
	return fmt.Sprintf("bit_vector(%d downto 0)", t.Width-1)
}
func (t BitVectorType) Equal(o Type) bool {
	v, ok := o.(BitVectorType)
	return ok && v.Width == t.Width
}

func (t ArrayType) BitWidth() int { return t.Length * t.Elem.BitWidth() }
func (t ArrayType) String() string {
	return fmt.Sprintf("array(%d to %d) of %s", t.Lo, t.Lo+t.Length-1, t.Elem)
}
func (t ArrayType) Equal(o Type) bool {
	v, ok := o.(ArrayType)
	return ok && v.Length == t.Length && v.Lo == t.Lo && v.Elem.Equal(t.Elem)
}

// AddrBits reports the number of address bits needed to index the array:
// ceil(log2(Length)), at least 1.
func (t ArrayType) AddrBits() int {
	return AddrBits(t.Length)
}

// AddrBits reports ceil(log2(n)) clamped to at least 1: the number of ID
// or address lines needed to distinguish n items.
func AddrBits(n int) int {
	if n <= 1 {
		return 1
	}
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	return b
}

func (t RecordType) BitWidth() int {
	sum := 0
	for _, f := range t.Fields {
		sum += f.Type.BitWidth()
	}
	return sum
}

func (t RecordType) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "record %s {", t.Name)
	for i, f := range t.Fields {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s: %s", f.Name, f.Type)
	}
	b.WriteString("}")
	return b.String()
}

func (t RecordType) Equal(o Type) bool {
	v, ok := o.(RecordType)
	if !ok || len(v.Fields) != len(t.Fields) {
		return false
	}
	for i, f := range t.Fields {
		if v.Fields[i].Name != f.Name || !v.Fields[i].Type.Equal(f.Type) {
			return false
		}
	}
	return true
}

// FieldType returns the type of the named field, or nil if absent.
func (t RecordType) FieldType(name string) Type {
	for _, f := range t.Fields {
		if f.Name == name {
			return f.Type
		}
	}
	return nil
}

// IsArray reports whether t is an array type and returns it.
func IsArray(t Type) (ArrayType, bool) {
	a, ok := t.(ArrayType)
	return a, ok
}
