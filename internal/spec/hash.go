package spec

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"sort"
)

// Digest is a canonical content hash of a System — the cache key of the
// synthesis service (internal/serve): two systems with equal digests
// describe the same specification, so a synthesize/verify/repair result
// computed for one answers a query about the other.
type Digest [sha256.Size]byte

// String renders the digest as lowercase hex.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// Hash computes the system's canonical content digest. The digest is
// stable across processes (no pointer values, no map iteration) and
// invariant under spec.Clone.
//
// Declaration order is folded out exactly where it carries no
// semantics: the module list, each module's variable list and the
// global-signal list are sets keyed by name (every lookup is by name
// and the declared objects are concurrent storage), so they hash as
// sorted sub-digest sets. Everything with execution or addressing
// semantics stays order-sensitive: behaviors within a module (process
// creation order), statements and procedure bodies, a bus's channel
// list (protocol generation assigns channel IDs by position) and the
// bus list itself.
//
// Identity of referenced objects never uses addresses: module-owned
// variables hash as module.name, globals as their (unique) name, and
// behavior-local storage — including procedure parameters, locals and
// ad-hoc loop counters — by a first-encounter sequence number in the
// module's deterministic walk, which distinguishes same-named locals
// in different scopes while staying clone- and process-invariant.
func Hash(sys *System) Digest {
	hs := newHasher(sys)
	top := sha256.New()
	w := writer{top}
	w.str(sys.Name)

	mds := make([]Digest, len(sys.Modules))
	for i, m := range sys.Modules {
		mds[i] = hs.module(m)
	}
	w.digestSet(mds)

	gds := make([]Digest, len(sys.Globals))
	for i, g := range sys.Globals {
		gds[i] = hs.subDigest(func(sw *scopeWriter) { sw.variableDecl(g) })
	}
	w.digestSet(gds)

	sw := &scopeWriter{writer: w, hs: hs, local: map[*Variable]int{}}
	sw.tag('C')
	sw.num(int64(len(sys.Channels)))
	for _, ch := range sys.Channels {
		sw.channel(ch)
	}
	sw.tag('B')
	sw.num(int64(len(sys.Buses)))
	for _, b := range sys.Buses {
		sw.bus(b)
	}

	var d Digest
	top.Sum(d[:0])
	return d
}

// hasher carries the system-wide identity tables shared by every scope.
type hasher struct {
	globals  map[*Variable]bool
	behOwner map[*Behavior]string
}

func newHasher(sys *System) *hasher {
	hs := &hasher{
		globals:  make(map[*Variable]bool, len(sys.Globals)),
		behOwner: make(map[*Behavior]string),
	}
	for _, g := range sys.Globals {
		hs.globals[g] = true
	}
	for _, m := range sys.Modules {
		for _, b := range m.Behaviors {
			hs.behOwner[b] = m.Name
		}
	}
	return hs
}

// module hashes one module into its own digest; the module set combines
// these order-independently. Locals are numbered within the module's
// walk: behaviors, their declarations and bodies hash in declaration
// order, so the numbering is deterministic.
func (hs *hasher) module(m *Module) Digest {
	return hs.subDigest(func(sw *scopeWriter) {
		sw.str(m.Name)
		vds := make([]Digest, len(m.Variables))
		for i, v := range m.Variables {
			vds[i] = hs.subDigestShared(sw, func(inner *scopeWriter) { inner.variableDecl(v) })
		}
		sw.digestSet(vds)
		sw.num(int64(len(m.Behaviors)))
		for _, b := range m.Behaviors {
			sw.behavior(b)
		}
	})
}

// subDigest runs fn against a fresh hash sink with a fresh local scope.
func (hs *hasher) subDigest(fn func(*scopeWriter)) Digest {
	h := sha256.New()
	sw := &scopeWriter{writer: writer{h}, hs: hs, local: map[*Variable]int{}}
	fn(sw)
	var d Digest
	h.Sum(d[:0])
	return d
}

// subDigestShared runs fn against a fresh sink but the caller's local
// numbering, so sibling declarations keep one consistent namespace.
func (hs *hasher) subDigestShared(outer *scopeWriter, fn func(*scopeWriter)) Digest {
	h := sha256.New()
	sw := &scopeWriter{writer: writer{h}, hs: hs, local: outer.local, nextLocal: outer.nextLocal}
	fn(sw)
	outer.nextLocal = sw.nextLocal
	var d Digest
	h.Sum(d[:0])
	return d
}

// writer frames primitive values unambiguously: strings are
// length-prefixed, numbers fixed-width, every node starts with a tag
// byte.
type writer struct{ h hash.Hash }

func (w writer) tag(b byte) { w.h.Write([]byte{b}) }

func (w writer) num(v int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	w.h.Write(buf[:])
}

func (w writer) str(s string) {
	w.num(int64(len(s)))
	w.h.Write([]byte(s))
}

func (w writer) boolean(b bool) {
	if b {
		w.tag(1)
	} else {
		w.tag(0)
	}
}

// digestSet writes a set of sub-digests order-independently: sorted,
// with the count framing the set.
func (w writer) digestSet(ds []Digest) {
	sort.Slice(ds, func(i, j int) bool {
		for k := range ds[i] {
			if ds[i][k] != ds[j][k] {
				return ds[i][k] < ds[j][k]
			}
		}
		return false
	})
	w.num(int64(len(ds)))
	for _, d := range ds {
		w.h.Write(d[:])
	}
}

// scopeWriter hashes nodes, resolving variable identity through the
// enclosing scope's first-encounter numbering.
type scopeWriter struct {
	writer
	hs        *hasher
	local     map[*Variable]int
	nextLocal int
}

// varRef writes a variable's identity: module-owned and global storage
// by name, everything else by local sequence number.
func (sw *scopeWriter) varRef(v *Variable) {
	switch {
	case v == nil:
		sw.tag('0')
	case v.Owner != nil:
		sw.tag('M')
		sw.str(v.Owner.Name)
		sw.str(v.Name)
	case sw.hs.globals[v]:
		sw.tag('G')
		sw.str(v.Name)
	default:
		id, ok := sw.local[v]
		if !ok {
			id = sw.nextLocal
			sw.nextLocal++
			sw.local[v] = id
		}
		sw.tag('L')
		sw.num(int64(id))
	}
}

// variableDecl writes a variable's full declaration: identity, kind,
// type and initializers.
func (sw *scopeWriter) variableDecl(v *Variable) {
	sw.tag('v')
	sw.varRef(v)
	sw.str(v.Name) // locals carry their name only at the declaration
	sw.num(int64(v.Kind))
	sw.typ(v.Type)
	sw.expr(v.Init)
	sw.num(int64(len(v.InitArray)))
	for _, b := range v.InitArray {
		sw.vec(b)
	}
}

func (sw *scopeWriter) vec(v interface {
	Width() int
	AppendBytes([]byte) []byte
}) {
	sw.num(int64(v.Width()))
	sw.h.Write(v.AppendBytes(nil))
}

func (sw *scopeWriter) typ(t Type) {
	switch t := t.(type) {
	case nil:
		sw.tag('0')
	case BitType:
		sw.tag('b')
	case BoolType:
		sw.tag('o')
	case IntegerType:
		sw.tag('i')
		sw.num(int64(t.Width))
	case BitVectorType:
		sw.tag('V')
		sw.num(int64(t.Width))
	case ArrayType:
		sw.tag('a')
		sw.num(int64(t.Length))
		sw.num(int64(t.Lo))
		sw.typ(t.Elem)
	case RecordType:
		sw.tag('r')
		sw.str(t.Name)
		sw.num(int64(len(t.Fields)))
		for _, f := range t.Fields {
			sw.str(f.Name)
			sw.typ(f.Type)
		}
	default:
		panic("spec.Hash: unknown type " + t.String())
	}
}

func (sw *scopeWriter) behavior(b *Behavior) {
	sw.tag('h')
	sw.str(b.Name)
	sw.boolean(b.Server)
	sw.num(int64(len(b.Variables)))
	for _, v := range b.Variables {
		sw.variableDecl(v)
	}
	// Procedures are looked up by name; hash the list as a named set so
	// attachment order cannot perturb the digest.
	pds := make([]Digest, len(b.Procedures))
	for i, p := range b.Procedures {
		pds[i] = sw.hs.subDigestShared(sw, func(inner *scopeWriter) { inner.procedure(p) })
	}
	sw.digestSet(pds)
	sw.stmts(b.Body)
}

func (sw *scopeWriter) procedure(p *Procedure) {
	sw.tag('p')
	sw.str(p.Name)
	sw.num(int64(len(p.Params)))
	for _, prm := range p.Params {
		sw.variableDecl(prm.Var)
		sw.num(int64(prm.Mode))
	}
	sw.num(int64(len(p.Locals)))
	for _, l := range p.Locals {
		sw.variableDecl(l)
	}
	if p.Channel != nil {
		sw.str(p.Channel.Name)
	} else {
		sw.tag('0')
	}
	sw.stmts(p.Body)
}

func (sw *scopeWriter) channel(c *Channel) {
	sw.tag('c')
	sw.str(c.Name)
	if c.Accessor != nil {
		sw.str(sw.hs.behOwner[c.Accessor])
		sw.str(c.Accessor.Name)
	} else {
		sw.tag('0')
	}
	sw.varRef(c.Var)
	sw.num(int64(c.Dir))
	sw.vec(c.ID)
	sw.num(int64(c.IDBits))
	sw.num(int64(c.Accesses))
	sw.num(c.LifetimeClocks)
}

func (sw *scopeWriter) bus(b *Bus) {
	sw.tag('u')
	sw.str(b.Name)
	sw.num(int64(len(b.Channels)))
	for _, c := range b.Channels {
		sw.str(c.Name) // bus channel order assigns IDs: order-sensitive
	}
	sw.num(int64(b.Width))
	sw.num(int64(b.Protocol))
	sw.typ(b.Record)
	sw.varRef(b.Signal)
	sw.boolean(b.Arbitrated)
	sw.boolean(b.Robust)
	sw.boolean(b.Parity)
	sw.boolean(b.AckSeq)
	sw.boolean(b.EpochResync)
}

func (sw *scopeWriter) stmts(list []Stmt) {
	sw.num(int64(len(list)))
	for _, s := range list {
		sw.stmt(s)
	}
}

func (sw *scopeWriter) stmt(s Stmt) {
	switch s := s.(type) {
	case nil:
		sw.tag('0')
	case *Assign:
		sw.tag('=')
		sw.num(int64(s.Kind))
		sw.expr(s.LHS)
		sw.expr(s.RHS)
	case *If:
		sw.tag('?')
		sw.expr(s.Cond)
		sw.stmts(s.Then)
		sw.num(int64(len(s.Elifs)))
		for _, e := range s.Elifs {
			sw.expr(e.Cond)
			sw.stmts(e.Body)
		}
		sw.stmts(s.Else)
	case *For:
		sw.tag('F')
		sw.varRef(s.Var)
		sw.expr(s.From)
		sw.expr(s.To)
		sw.stmts(s.Body)
	case *While:
		sw.tag('W')
		sw.expr(s.Cond)
		sw.stmts(s.Body)
	case *Loop:
		sw.tag('O')
		sw.stmts(s.Body)
	case *Exit:
		sw.tag('X')
	case *Wait:
		sw.tag('w')
		sw.num(int64(len(s.On)))
		for _, v := range s.On {
			sw.varRef(v)
		}
		sw.expr(s.Until)
		sw.boolean(s.HasFor)
		sw.num(s.For)
		sw.varRef(s.TimedOut)
	case *Call:
		sw.tag('(')
		if s.Proc != nil {
			sw.str(s.Proc.Name)
		} else {
			sw.tag('0')
		}
		sw.num(int64(len(s.Args)))
		for _, a := range s.Args {
			sw.expr(a)
		}
	case *Return:
		sw.tag('R')
	case *Null:
		sw.tag('N')
	default:
		panic("spec.Hash: unknown statement type " + s.String())
	}
}

func (sw *scopeWriter) expr(e Expr) {
	switch e := e.(type) {
	case nil:
		sw.tag('0')
	case *IntLit:
		sw.tag('n')
		sw.num(e.Value)
		sw.typ(e.Typ)
	case *VecLit:
		sw.tag('l')
		sw.vec(e.Value)
	case *BoolLit:
		sw.tag('t')
		sw.boolean(e.Value)
	case *VarRef:
		sw.tag('x')
		sw.varRef(e.Var)
	case *Index:
		sw.tag('[')
		sw.expr(e.Arr)
		sw.expr(e.Index)
	case *SliceExpr:
		sw.tag('s')
		sw.expr(e.X)
		sw.expr(e.Hi)
		sw.expr(e.Lo)
		sw.num(int64(e.Width))
	case *FieldRef:
		sw.tag('.')
		sw.expr(e.X)
		sw.str(e.Field)
	case *Binary:
		sw.tag('+')
		sw.num(int64(e.Op))
		sw.expr(e.X)
		sw.expr(e.Y)
	case *Unary:
		sw.tag('-')
		sw.num(int64(e.Op))
		sw.expr(e.X)
	case *Conv:
		sw.tag('>')
		sw.expr(e.X)
		sw.typ(e.To)
		sw.boolean(e.Signed)
	default:
		panic("spec.Hash: unknown expression type " + e.String())
	}
}
