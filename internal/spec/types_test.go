package spec

import "testing"

func TestTypeBitWidths(t *testing.T) {
	cases := []struct {
		typ  Type
		want int
	}{
		{Bit, 1},
		{Bool, 1},
		{Integer, 32},
		{IntegerType{Width: 16}, 16},
		{BitVector(16), 16},
		{Array(128, BitVector(16)), 128 * 16},
		{Array(1920, Integer), 1920 * 32},
		{RecordType{Name: "R", Fields: []Field{{"START", Bit}, {"DATA", BitVector(8)}}}, 9},
	}
	for _, c := range cases {
		if got := c.typ.BitWidth(); got != c.want {
			t.Errorf("%s.BitWidth() = %d, want %d", c.typ, got, c.want)
		}
	}
}

func TestAddrBits(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 1}, {1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3},
		{64, 6}, {127, 7}, {128, 7}, {129, 8}, {1920, 11},
	}
	for _, c := range cases {
		if got := AddrBits(c.n); got != c.want {
			t.Errorf("AddrBits(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestArrayAddrBitsMatchPaper(t *testing.T) {
	// The FLC trru arrays: 128 entries of 16-bit data need a 7-bit
	// address, so a channel message is 23 bits (Section 5).
	trru := Array(128, BitVector(16))
	if trru.AddrBits() != 7 {
		t.Fatalf("trru AddrBits = %d, want 7", trru.AddrBits())
	}
}

func TestTypeEquality(t *testing.T) {
	if !BitVector(8).Equal(BitVector(8)) {
		t.Error("BitVector(8) != BitVector(8)")
	}
	if BitVector(8).Equal(BitVector(9)) {
		t.Error("BitVector(8) == BitVector(9)")
	}
	if Bit.Equal(Bool) {
		t.Error("bit == boolean")
	}
	a := Array(4, BitVector(8))
	if !a.Equal(Array(4, BitVector(8))) || a.Equal(Array(5, BitVector(8))) || a.Equal(Array(4, BitVector(9))) {
		t.Error("array equality wrong")
	}
	r1 := RecordType{Name: "X", Fields: []Field{{"A", Bit}}}
	r2 := RecordType{Name: "Y", Fields: []Field{{"A", Bit}}}
	if !r1.Equal(r2) { // structural: name does not matter
		t.Error("structural record equality should ignore the record name")
	}
	r3 := RecordType{Fields: []Field{{"B", Bit}}}
	if r1.Equal(r3) {
		t.Error("records with different field names compared equal")
	}
}

func TestRecordFieldType(t *testing.T) {
	r := RecordType{Name: "HandShakeBus", Fields: []Field{
		{"START", Bit}, {"DONE", Bit}, {"ID", BitVector(2)}, {"DATA", BitVector(8)},
	}}
	if ft := r.FieldType("DATA"); !ft.Equal(BitVector(8)) {
		t.Errorf("DATA type = %v", ft)
	}
	if r.FieldType("MISSING") != nil {
		t.Error("missing field returned a type")
	}
	if r.BitWidth() != 12 {
		t.Errorf("record width = %d", r.BitWidth())
	}
}

func TestTypeStrings(t *testing.T) {
	cases := []struct {
		typ  Type
		want string
	}{
		{BitVector(16), "bit_vector(15 downto 0)"},
		{Integer, "integer"},
		{Array(128, BitVector(16)), "array(0 to 127) of bit_vector(15 downto 0)"},
	}
	for _, c := range cases {
		if got := c.typ.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}
