package spec

import (
	"fmt"
	"strings"
)

// Stmt is the interface implemented by all statement nodes.
type Stmt interface {
	String() string
	stmtNode()
}

// AssignKind distinguishes VHDL variable assignment (":=") from signal
// assignment ("<="). Signal assignments take effect at the next delta
// cycle of the simulator; variable assignments are immediate.
type AssignKind int

// Assignment kinds.
const (
	AssignVariable AssignKind = iota // :=
	AssignSignal                     // <=
)

func (k AssignKind) String() string {
	if k == AssignSignal {
		return "<="
	}
	return ":="
}

// Assign assigns RHS to the lvalue LHS (a VarRef, Index, SliceExpr or
// FieldRef).
type Assign struct {
	Kind AssignKind
	LHS  Expr
	RHS  Expr
}

// AssignVar returns the statement "lhs := rhs".
func AssignVar(lhs, rhs Expr) *Assign { return &Assign{Kind: AssignVariable, LHS: lhs, RHS: rhs} }

// AssignSig returns the statement "lhs <= rhs".
func AssignSig(lhs, rhs Expr) *Assign { return &Assign{Kind: AssignSignal, LHS: lhs, RHS: rhs} }

func (s *Assign) String() string { return fmt.Sprintf("%s %s %s", s.LHS, s.Kind, s.RHS) }
func (*Assign) stmtNode()        {}

// If is a conditional with optional elsif arms and else body.
type If struct {
	Cond  Expr
	Then  []Stmt
	Elifs []ElseIf
	Else  []Stmt
}

// ElseIf is one elsif arm of an If.
type ElseIf struct {
	Cond Expr
	Body []Stmt
}

func (s *If) String() string { return fmt.Sprintf("if %s then ... end if", s.Cond) }
func (*If) stmtNode()        {}

// For is a counted loop: for Var in From to To loop Body end loop. The
// loop variable is a behavior-local integer variable.
type For struct {
	Var      *Variable
	From, To Expr
	Body     []Stmt
}

func (s *For) String() string {
	return fmt.Sprintf("for %s in %s to %s loop ... end loop", s.Var.Name, s.From, s.To)
}
func (*For) stmtNode() {}

// While loops while Cond holds.
type While struct {
	Cond Expr
	Body []Stmt
}

func (s *While) String() string { return fmt.Sprintf("while %s loop ... end loop", s.Cond) }
func (*While) stmtNode()        {}

// Loop is an unconditional loop ("loop ... end loop"), exited only by an
// Exit statement or by simulation shutdown. Generated variable-server
// processes use it.
type Loop struct {
	Body []Stmt
}

func (s *Loop) String() string { return "loop ... end loop" }
func (*Loop) stmtNode()        {}

// Exit exits the innermost enclosing loop.
type Exit struct{}

func (s *Exit) String() string { return "exit" }
func (*Exit) stmtNode()        {}

// Wait suspends the process. Forms (combinable, as in VHDL):
//
//	wait on a, b;          — resume on any event on the listed signals
//	wait until cond;       — resume when an event makes cond true
//	wait for n;            — resume after n clocks
//
// A Wait with no clauses suspends forever.
//
// A bounded wait ("wait until cond for n") may additionally record
// whether it expired: when TimedOut is set, the simulator assigns true
// to that (boolean) variable if the deadline fired before the condition
// held, false otherwise. Hardened generated protocols use this to detect
// lost handshake strobes. The VHDL back end renders it as the standard
// idiom "wait until cond for n ns; t := not (cond);".
type Wait struct {
	On     []*Variable // signals to be sensitive to
	Until  Expr        // optional condition, re-evaluated on events
	For    int64       // optional clock count; <= 0 means none
	HasFor bool
	// TimedOut, when non-nil, receives whether the bounded wait expired.
	// Only meaningful with both Until and HasFor set.
	TimedOut *Variable
}

// WaitOn returns "wait on sigs...".
func WaitOn(sigs ...*Variable) *Wait { return &Wait{On: sigs} }

// WaitUntil returns "wait until cond". The simulator derives the
// sensitivity list from the signals read by cond.
func WaitUntil(cond Expr) *Wait { return &Wait{Until: cond} }

// WaitFor returns "wait for n" (n clocks of simulated time).
func WaitFor(n int64) *Wait { return &Wait{For: n, HasFor: true} }

// WaitUntilFor returns the bounded wait "wait until cond for n",
// recording into timedOut (a boolean variable, may be nil) whether the
// deadline expired before an event made cond true.
func WaitUntilFor(cond Expr, n int64, timedOut *Variable) *Wait {
	return &Wait{Until: cond, For: n, HasFor: true, TimedOut: timedOut}
}

func (s *Wait) String() string {
	var parts []string
	if len(s.On) > 0 {
		names := make([]string, len(s.On))
		for i, v := range s.On {
			names[i] = v.Name
		}
		parts = append(parts, "on "+strings.Join(names, ", "))
	}
	if s.Until != nil {
		parts = append(parts, "until "+s.Until.String())
	}
	if s.HasFor {
		parts = append(parts, fmt.Sprintf("for %d", s.For))
	}
	if s.TimedOut != nil {
		parts = append(parts, "-> "+s.TimedOut.Name)
	}
	return "wait " + strings.Join(parts, " ")
}
func (*Wait) stmtNode() {}

// Call invokes a procedure. Arguments bind positionally to the
// procedure's parameters; arguments for out/inout parameters must be
// lvalues.
type Call struct {
	Proc *Procedure
	Args []Expr
}

// CallProc returns the statement "proc(args...)".
func CallProc(p *Procedure, args ...Expr) *Call { return &Call{Proc: p, Args: args} }

func (s *Call) String() string { return fmt.Sprintf("%s(%s)", s.Proc.Name, ExprString(s.Args)) }
func (*Call) stmtNode()        {}

// Return returns from the enclosing procedure.
type Return struct{}

func (s *Return) String() string { return "return" }
func (*Return) stmtNode()        {}

// Null is the VHDL null statement.
type Null struct{}

func (s *Null) String() string { return "null" }
func (*Null) stmtNode()        {}

// FormatStmts renders statements one per line with the given indent, for
// debugging. The VHDL back end (internal/vhdlgen) produces the full
// listing form.
func FormatStmts(stmts []Stmt, indent string) string {
	var b strings.Builder
	writeStmts(&b, stmts, indent)
	return b.String()
}

func writeStmts(b *strings.Builder, stmts []Stmt, indent string) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *If:
			fmt.Fprintf(b, "%sif %s then\n", indent, s.Cond)
			writeStmts(b, s.Then, indent+"  ")
			for _, e := range s.Elifs {
				fmt.Fprintf(b, "%selsif %s then\n", indent, e.Cond)
				writeStmts(b, e.Body, indent+"  ")
			}
			if len(s.Else) > 0 {
				fmt.Fprintf(b, "%selse\n", indent)
				writeStmts(b, s.Else, indent+"  ")
			}
			fmt.Fprintf(b, "%send if;\n", indent)
		case *For:
			fmt.Fprintf(b, "%sfor %s in %s to %s loop\n", indent, s.Var.Name, s.From, s.To)
			writeStmts(b, s.Body, indent+"  ")
			fmt.Fprintf(b, "%send loop;\n", indent)
		case *While:
			fmt.Fprintf(b, "%swhile %s loop\n", indent, s.Cond)
			writeStmts(b, s.Body, indent+"  ")
			fmt.Fprintf(b, "%send loop;\n", indent)
		case *Loop:
			fmt.Fprintf(b, "%sloop\n", indent)
			writeStmts(b, s.Body, indent+"  ")
			fmt.Fprintf(b, "%send loop;\n", indent)
		default:
			fmt.Fprintf(b, "%s%s;\n", indent, s)
		}
	}
}
