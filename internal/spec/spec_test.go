package spec

import (
	"strings"
	"testing"
)

// buildPQ constructs the Fig. 3 system of the paper: behaviors P and Q on
// one component, variables X and MEM on another, four channels.
func buildPQ() (*System, *Behavior, *Behavior, *Variable, *Variable) {
	sys := NewSystem("PQ")
	comp1 := sys.AddModule("comp1")
	comp2 := sys.AddModule("comp2")

	p := comp1.AddBehavior(NewBehavior("P"))
	q := comp1.AddBehavior(NewBehavior("Q"))
	x := comp2.AddVariable(NewVar("X", BitVector(16)))
	mem := comp2.AddVariable(NewVar("MEM", Array(64, BitVector(16))))

	ad := p.AddVar("AD", Integer)
	count := q.AddVar("COUNT", BitVector(16))

	// P: X <= 32; MEM(AD) := X + 7;
	p.Body = []Stmt{
		AssignSig(Ref(x), ToVec(Int(32), 16)),
		AssignVar(At(Ref(mem), Ref(ad)), Add(Ref(x), ToVec(Int(7), 16))),
	}
	// Q: MEM(60) := COUNT;
	q.Body = []Stmt{
		AssignVar(At(Ref(mem), Int(60)), Ref(count)),
	}

	sys.AddChannel(&Channel{Name: "CH0", Accessor: p, Var: x, Dir: Write})
	sys.AddChannel(&Channel{Name: "CH1", Accessor: p, Var: x, Dir: Read})
	sys.AddChannel(&Channel{Name: "CH2", Accessor: p, Var: mem, Dir: Write})
	sys.AddChannel(&Channel{Name: "CH3", Accessor: q, Var: mem, Dir: Write})
	return sys, p, q, x, mem
}

func TestChannelGeometry(t *testing.T) {
	sys, _, _, _, _ := buildPQ()
	ch0 := sys.FindChannel("CH0")
	if ch0.DataBits() != 16 || ch0.AddrBits() != 0 || ch0.MessageBits() != 16 {
		t.Errorf("CH0 geometry: data=%d addr=%d msg=%d", ch0.DataBits(), ch0.AddrBits(), ch0.MessageBits())
	}
	ch2 := sys.FindChannel("CH2")
	if ch2.DataBits() != 16 || ch2.AddrBits() != 6 || ch2.MessageBits() != 22 {
		t.Errorf("CH2 geometry: data=%d addr=%d msg=%d", ch2.DataBits(), ch2.AddrBits(), ch2.MessageBits())
	}
}

func TestValidatePQ(t *testing.T) {
	sys, _, _, _, _ := buildPQ()
	if errs := sys.Validate(); len(errs) != 0 {
		t.Fatalf("valid system rejected: %v", errs)
	}
}

func TestValidateRejectsIntraModuleChannel(t *testing.T) {
	sys := NewSystem("bad")
	m := sys.AddModule("m")
	b := m.AddBehavior(NewBehavior("B"))
	v := m.AddVariable(NewVar("V", BitVector(8)))
	sys.AddChannel(&Channel{Name: "c", Accessor: b, Var: v, Dir: Read})
	errs := sys.Validate()
	if len(errs) == 0 {
		t.Fatal("intra-module channel accepted")
	}
	if !strings.Contains(errs[0].Error(), "intra-module") {
		t.Errorf("unexpected error: %v", errs[0])
	}
}

func TestValidateRejectsDuplicateNames(t *testing.T) {
	sys := NewSystem("dup")
	m1 := sys.AddModule("m")
	sys.AddModule("m")
	m1.AddBehavior(NewBehavior("B"))
	found := false
	for _, err := range sys.Validate() {
		if strings.Contains(err.Error(), "duplicate module") {
			found = true
		}
	}
	if !found {
		t.Fatal("duplicate module name not reported")
	}
}

func TestValidateRejectsArityMismatch(t *testing.T) {
	sys := NewSystem("arity")
	m := sys.AddModule("m")
	b := m.AddBehavior(NewBehavior("B"))
	proc := &Procedure{Name: "p", Params: []Param{{Var: NewVar("a", Integer), Mode: ModeIn}}}
	b.AddProc(proc)
	b.Body = []Stmt{CallProc(proc)} // no args
	errs := sys.Validate()
	if len(errs) == 0 || !strings.Contains(errs[0].Error(), "args") {
		t.Fatalf("arity mismatch not reported: %v", errs)
	}
}

func TestValidateRejectsNonLValueOutArg(t *testing.T) {
	sys := NewSystem("lvalue")
	m := sys.AddModule("m")
	b := m.AddBehavior(NewBehavior("B"))
	proc := &Procedure{Name: "recv", Params: []Param{{Var: NewVar("rx", BitVector(8)), Mode: ModeOut}}}
	b.AddProc(proc)
	b.Body = []Stmt{CallProc(proc, ToVec(Int(1), 8))} // constant for an out param
	errs := sys.Validate()
	if len(errs) == 0 || !strings.Contains(errs[0].Error(), "lvalue") {
		t.Fatalf("out-mode non-lvalue not reported: %v", errs)
	}
}

func TestVarsReadWritten(t *testing.T) {
	sys, p, _, x, mem := buildPQ()
	_ = sys
	reads := VarsRead(p.Body)
	if reads[x] != 1 {
		t.Errorf("X read count = %d, want 1", reads[x])
	}
	writes := VarsWritten(p.Body)
	if writes[x] != 1 || writes[mem] != 1 {
		t.Errorf("writes: X=%d MEM=%d", writes[x], writes[mem])
	}
	// AD is read as the index of the MEM write
	var ad *Variable
	for _, v := range p.Variables {
		if v.Name == "AD" {
			ad = v
		}
	}
	if reads[ad] != 1 {
		t.Errorf("AD read count = %d, want 1 (index of LHS)", reads[ad])
	}
}

func TestBaseVar(t *testing.T) {
	v := NewVar("MEM", Array(8, BitVector(4)))
	e := At(Ref(v), Int(3))
	if BaseVar(e) != v {
		t.Error("BaseVar through Index failed")
	}
	s := SliceBits(Ref(NewVar("D", BitVector(16))), 7, 0)
	if BaseVar(s) == nil {
		t.Error("BaseVar through Slice failed")
	}
	if BaseVar(Int(3)) != nil {
		t.Error("BaseVar of literal should be nil")
	}
}

func TestSignalsRead(t *testing.T) {
	b := NewSignal("B", Bit)
	v := NewVar("x", Bit)
	cond := LogicalAnd(Eq(Ref(b), VecString("1")), Eq(Ref(v), VecString("1")))
	sigs := SignalsRead(cond)
	if len(sigs) != 1 || sigs[0] != b {
		t.Fatalf("SignalsRead = %v", sigs)
	}
}

func TestRewriteStmtsReplaces(t *testing.T) {
	v := NewVar("v", Integer)
	w := NewVar("w", Integer)
	body := []Stmt{
		&Loop{Body: []Stmt{
			AssignVar(Ref(v), Int(1)),
			&If{Cond: True, Then: []Stmt{AssignVar(Ref(v), Int(2))}},
		}},
	}
	out := RewriteStmts(body, func(s Stmt) []Stmt {
		if a, ok := s.(*Assign); ok && BaseVar(a.LHS) == v {
			return []Stmt{AssignVar(Ref(w), a.RHS)}
		}
		return Keep(s)
	})
	// all assignments now target w
	if References(out, v) {
		t.Fatal("rewrite left references to v")
	}
	if !References(out, w) {
		t.Fatal("rewrite dropped replacement")
	}
	// original untouched
	if !References(body, v) {
		t.Fatal("rewrite mutated input")
	}
}

func TestRewriteStmtsDeletesAndExpands(t *testing.T) {
	v := NewVar("v", Integer)
	body := []Stmt{
		AssignVar(Ref(v), Int(1)),
		&Null{},
		AssignVar(Ref(v), Int(2)),
	}
	out := RewriteStmts(body, func(s Stmt) []Stmt {
		switch s.(type) {
		case *Null:
			return nil // delete
		case *Assign:
			return []Stmt{s, &Null{}} // expand
		}
		return Keep(s)
	})
	if len(out) != 4 {
		t.Fatalf("rewrite produced %d stmts, want 4", len(out))
	}
}

func TestBusLineAccounting(t *testing.T) {
	sys, _, _, _, _ := buildPQ()
	bus := &Bus{Name: "B", Channels: sys.Channels, Width: 8, Protocol: FullHandshake}
	if bus.IDBits() != 2 {
		t.Errorf("IDBits = %d, want 2 for 4 channels", bus.IDBits())
	}
	if bus.TotalLines() != 8+2+2 {
		t.Errorf("TotalLines = %d, want 12", bus.TotalLines())
	}
	single := &Bus{Name: "S", Channels: sys.Channels[:1], Width: 8, Protocol: HalfHandshake}
	if single.IDBits() != 0 {
		t.Errorf("single-channel bus IDBits = %d, want 0", single.IDBits())
	}
	if single.TotalLines() != 9 {
		t.Errorf("single TotalLines = %d", single.TotalLines())
	}
}

func TestProtocolModels(t *testing.T) {
	if FullHandshake.ControlLines() != 2 || FullHandshake.ClocksPerWord() != 2 {
		t.Error("full handshake model wrong (paper: START/DONE, 2 clocks)")
	}
	if HalfHandshake.ControlLines() != 1 {
		t.Error("half handshake control lines")
	}
	if FixedDelay.ControlLines() != 0 || FixedDelay.ClocksPerWord() != 1 {
		t.Error("fixed delay model wrong")
	}
}

func TestFormatStmtsSmoke(t *testing.T) {
	sys, p, _, _, _ := buildPQ()
	_ = sys
	out := FormatStmts(p.Body, "")
	if !strings.Contains(out, "X <= ") || !strings.Contains(out, "MEM(AD) := ") {
		t.Errorf("FormatStmts output unexpected:\n%s", out)
	}
}

func TestSystemLookups(t *testing.T) {
	sys, p, _, _, _ := buildPQ()
	if sys.FindBehavior("P") != p {
		t.Error("FindBehavior failed")
	}
	if sys.FindBehavior("missing") != nil {
		t.Error("FindBehavior ghost")
	}
	if sys.FindVariable("MEM") == nil || sys.FindVariable("nope") != nil {
		t.Error("FindVariable wrong")
	}
	if sys.FindModule("comp2") == nil {
		t.Error("FindModule failed")
	}
	if len(sys.Behaviors()) != 2 {
		t.Errorf("Behaviors() = %d", len(sys.Behaviors()))
	}
}

func TestWaitString(t *testing.T) {
	b := NewSignal("B", Bit)
	w := WaitOn(b)
	if w.String() != "wait on B" {
		t.Errorf("WaitOn string = %q", w.String())
	}
	u := WaitUntil(Eq(Ref(b), VecString("1")))
	if !strings.Contains(u.String(), "until") {
		t.Errorf("WaitUntil string = %q", u.String())
	}
}
