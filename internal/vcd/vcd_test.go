package vcd

import (
	"strings"
	"testing"

	"repro/internal/protogen"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/workloads"
)

func TestHeaderDeclaresFlattenedBusFields(t *testing.T) {
	sys, bus := workloads.PQ()
	if _, err := protogen.Generate(sys, bus, protogen.Config{Protocol: spec.FullHandshake}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	w, err := NewWriter(&sb, sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$scope module PQ $end",
		"$var wire 1 ! B.START $end",
		"$var wire 1 \" B.DONE $end",
		"$var wire 2 # B.ID $end",
		"$var wire 8 $ B.DATA $end",
		"$enddefinitions $end",
		"$dumpvars",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("header missing %q:\n%s", want, out)
		}
	}
}

func TestDumpCapturesHandshakeEdges(t *testing.T) {
	sys, bus := workloads.PQ()
	if _, err := protogen.Generate(sys, bus, protogen.Config{Protocol: spec.FullHandshake}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	w, err := NewWriter(&sb, sys)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(sys, sim.Config{OnEvent: w.OnEvent})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(res.Clocks); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// START is VCD id "!": count its rising edges; the PQ run does 9
	// accessor-driven words + 2 read-data acks = 11 START pulses.
	rises := strings.Count(out, "\n1!\n") + strings.Count(out, "\n1!")
	if rises < 11 {
		t.Errorf("START rises = %d, want >= 11\n", rises)
	}
	// Data words appear: 32 = "100000" on DATA (id $).
	if !strings.Contains(out, "b100000 $") {
		t.Error("DATA never carried the value 32")
	}
	// Time advances.
	if !strings.Contains(out, "#1\n") {
		t.Error("no timestamps emitted")
	}
	lastMark := strings.LastIndex(out, "#")
	if lastMark < 0 || !strings.Contains(out[lastMark:], "506") {
		t.Errorf("final timestamp missing; tail: %q", out[lastMark:])
	}
}

func TestScalarSignalsAndRepeatSuppression(t *testing.T) {
	sys := spec.NewSystem("t")
	m := sys.AddModule("m")
	b := m.AddBehavior(spec.NewBehavior("B"))
	sig := sys.AddGlobal(spec.NewSignal("S", spec.BitVector(4)))
	cnt := m.AddVariable(spec.NewSignal("CNT", spec.Integer))
	b.Body = []spec.Stmt{
		spec.AssignSig(spec.Ref(sig), spec.VecString("0101")),
		spec.WaitFor(3),
		spec.AssignSig(spec.Ref(sig), spec.VecString("0101")), // no event
		spec.AssignSig(spec.Ref(cnt), spec.Int(7)),
		spec.WaitFor(1),
	}
	var sb strings.Builder
	w, err := NewWriter(&sb, sys)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(sys, sim.Config{OnEvent: w.OnEvent})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	w.Close(res.Clocks)
	out := sb.String()
	if strings.Count(out, "b101 ") != 1 {
		t.Errorf("S=0101 emitted %d times, want 1:\n%s", strings.Count(out, "b101 "), out)
	}
	if !strings.Contains(out, "b111 ") { // CNT = 7
		t.Errorf("integer signal value missing:\n%s", out)
	}
}

func TestCloseIdempotent(t *testing.T) {
	sys := spec.NewSystem("t")
	sys.AddModule("m").AddBehavior(spec.NewBehavior("B")).Body = []spec.Stmt{&spec.Null{}}
	var sb strings.Builder
	w, err := NewWriter(&sb, sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(5); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(9); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "#9") {
		t.Error("write after close")
	}
}
