// Package vcd writes IEEE 1364 Value Change Dump files from simulation
// runs, so the generated bus protocols can be inspected in any standard
// waveform viewer (GTKWave etc.). Record signals — like the generated
// HandShakeBus — are flattened into one VCD variable per field, which
// makes the START/DONE handshakes and ID/DATA sequencing directly
// visible.
//
// Usage:
//
//	w, _ := vcd.NewWriter(file, sys)
//	s, _ := sim.New(sys, sim.Config{OnEvent: w.OnEvent})
//	res, err := s.Run()
//	w.Close(res.Clocks)
package vcd

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
	"repro/internal/spec"
)

// Writer streams VCD output for a system's signals.
type Writer struct {
	out *bufio.Writer
	// vars maps (signal, field index) to a VCD identifier; field index
	// -1 addresses a whole non-record signal.
	ids    map[varKey]string
	widths map[varKey]int
	last   map[varKey]string // last emitted value, to suppress no-ops
	sigs   []*spec.Variable
	now    int64
	nowSet bool
	closed bool
}

type varKey struct {
	sig   *spec.Variable
	field int
}

// NewWriter writes the VCD header and variable declarations for every
// signal in the system (globals and module-level signals).
func NewWriter(w io.Writer, sys *spec.System) (*Writer, error) {
	vw := &Writer{
		out:    bufio.NewWriter(w),
		ids:    make(map[varKey]string),
		widths: make(map[varKey]int),
		last:   make(map[varKey]string),
	}
	for _, g := range sys.Globals {
		if g.Kind == spec.KindSignal {
			vw.sigs = append(vw.sigs, g)
		}
	}
	for _, m := range sys.Modules {
		for _, v := range m.Variables {
			if v.Kind == spec.KindSignal {
				vw.sigs = append(vw.sigs, v)
			}
		}
	}
	sort.Slice(vw.sigs, func(i, j int) bool { return vw.sigs[i].Name < vw.sigs[j].Name })

	fmt.Fprintf(vw.out, "$version interface-synthesis simulator $end\n")
	fmt.Fprintf(vw.out, "$timescale 1ns $end\n")
	fmt.Fprintf(vw.out, "$scope module %s $end\n", sys.Name)
	seq := 0
	nextID := func() string {
		// Printable VCD identifiers: ! .. ~
		id := ""
		n := seq
		seq++
		for {
			id = string(rune('!'+n%94)) + id
			n = n/94 - 1
			if n < 0 {
				break
			}
		}
		return id
	}
	for _, s := range vw.sigs {
		if rec, ok := s.Type.(spec.RecordType); ok {
			for fi, f := range rec.Fields {
				k := varKey{sig: s, field: fi}
				vw.ids[k] = nextID()
				vw.widths[k] = f.Type.BitWidth()
				fmt.Fprintf(vw.out, "$var wire %d %s %s.%s $end\n",
					f.Type.BitWidth(), vw.ids[k], s.Name, f.Name)
			}
			continue
		}
		k := varKey{sig: s, field: -1}
		vw.ids[k] = nextID()
		vw.widths[k] = s.Type.BitWidth()
		fmt.Fprintf(vw.out, "$var wire %d %s %s $end\n", s.Type.BitWidth(), vw.ids[k], s.Name)
	}
	fmt.Fprintf(vw.out, "$upscope $end\n$enddefinitions $end\n")

	// Initial values: everything zero.
	fmt.Fprintf(vw.out, "$dumpvars\n")
	for _, s := range vw.sigs {
		if rec, ok := s.Type.(spec.RecordType); ok {
			for fi, f := range rec.Fields {
				k := varKey{sig: s, field: fi}
				vw.emit(k, zeroes(f.Type.BitWidth()))
			}
			continue
		}
		k := varKey{sig: s, field: -1}
		vw.emit(k, zeroes(s.Type.BitWidth()))
	}
	fmt.Fprintf(vw.out, "$end\n")
	return vw, vw.out.Flush()
}

func zeroes(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '0'
	}
	return string(b)
}

// OnEvent is the sim.Config hook: emits the changed fields of the
// signal at the current simulated time.
func (w *Writer) OnEvent(now int64, sig *spec.Variable, val sim.Value) {
	if w.closed {
		return
	}
	if !w.nowSet || now != w.now {
		fmt.Fprintf(w.out, "#%d\n", now)
		w.now = now
		w.nowSet = true
	}
	if rv, ok := val.(sim.RecordVal); ok {
		for fi := range rv.Fields {
			w.emit(varKey{sig: sig, field: fi}, valueBits(rv.Fields[fi], w.widths[varKey{sig: sig, field: fi}]))
		}
		return
	}
	k := varKey{sig: sig, field: -1}
	w.emit(k, valueBits(val, w.widths[k]))
}

func valueBits(v sim.Value, width int) string {
	switch v := v.(type) {
	case sim.VecVal:
		return v.V.String()
	case sim.IntVal:
		s := ""
		u := uint64(v.V)
		for i := width - 1; i >= 0; i-- {
			if u&(1<<uint(i)) != 0 {
				s += "1"
			} else {
				s += "0"
			}
		}
		return s
	case sim.BoolVal:
		if v.V {
			return "1"
		}
		return "0"
	}
	return zeroes(width)
}

// emit writes one value change, suppressing repeats.
func (w *Writer) emit(k varKey, bits string) {
	id, ok := w.ids[k]
	if !ok {
		return
	}
	if w.last[k] == bits {
		return
	}
	w.last[k] = bits
	if len(bits) == 1 {
		fmt.Fprintf(w.out, "%s%s\n", bits, id)
		return
	}
	fmt.Fprintf(w.out, "b%s %s\n", trimLeadingZeroes(bits), id)
}

func trimLeadingZeroes(s string) string {
	for len(s) > 1 && s[0] == '0' {
		s = s[1:]
	}
	return s
}

// Close emits the final timestamp and flushes.
func (w *Writer) Close(finalTime int64) error {
	if w.closed {
		return nil
	}
	w.closed = true
	if !w.nowSet || finalTime > w.now {
		fmt.Fprintf(w.out, "#%d\n", finalTime)
	}
	return w.out.Flush()
}
