package vcd

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/protogen"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenRobustHandshakeDump pins the complete VCD dump of the
// robust full-handshake PQ refinement byte for byte. The simulator is
// deterministic and the writer must be too — header ordering, id
// assignment, repeat suppression, timestamp placement. Any drift in
// protocol generation, kernel scheduling or the writer shows up here
// as a diff against testdata/robust_pq.vcd (regenerate deliberately
// with -update after verifying the new waveform is right).
func TestGoldenRobustHandshakeDump(t *testing.T) {
	sys, bus := workloads.PQ()
	if _, err := protogen.Generate(sys, bus, protogen.Config{
		Protocol:      spec.FullHandshake,
		Robust:        true,
		TimeoutClocks: 8,
		MaxRetries:    2,
	}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	w, err := NewWriter(&sb, sys)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(sys, sim.Config{OnEvent: w.OnEvent})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(res.Clocks); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	// The robust refinement's extra wires must be in the dump at all —
	// a golden match against a stale file should not pass silently.
	for _, want := range []string{"B.RST", "B.START", "B.DONE"} {
		if !strings.Contains(got, want) {
			t.Fatalf("dump missing %s declaration", want)
		}
	}

	golden := filepath.Join("testdata", "robust_pq.vcd")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if got != string(want) {
		t.Fatalf("VCD dump drifted from %s (%d vs %d bytes); first divergence at byte %d.\nIf the change is intended, re-run with -update.",
			golden, len(got), len(want), firstDiff(got, string(want)))
	}
}

func firstDiff(a, b string) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
