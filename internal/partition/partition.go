// Package partition implements SpecSyn-style system partitioning (Vahid
// & Gajski, "Specification partitioning for system design", DAC'92 — the
// paper's reference [1]): grouping the behaviors and variables of a
// specification into modules (chips and memories), deriving the abstract
// communication channels created by cross-module variable accesses, and
// grouping channels for bus implementation.
//
// Two usage modes:
//
//   - Manual: construct the modules yourself with the spec builder API
//     (as the paper's figures do) and call DeriveChannels to materialize
//     the channels implied by remote accesses.
//   - Automatic: hand Cluster the flat lists of behaviors and variables;
//     it builds a closeness graph (trip-weighted access counts between
//     behaviors and variables, communication affinity between behaviors)
//     and agglomerates the closest clusters until the requested module
//     count is reached.
package partition

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/busgen"
	"repro/internal/estimate"
	"repro/internal/spec"
)

// DeriveChannels scans every behavior for accesses to variables owned by
// other modules and creates one channel per (behavior, variable,
// direction) triple, attaching them to the system. Channels are named
// ch1, ch2, ... in deterministic traversal order, following the paper's
// naming. Existing channels are preserved; duplicates are not created.
func DeriveChannels(sys *spec.System) ([]*spec.Channel, error) {
	type key struct {
		b   *spec.Behavior
		v   *spec.Variable
		dir spec.Direction
	}
	existing := make(map[key]bool)
	for _, c := range sys.Channels {
		existing[key{c.Accessor, c.Var, c.Dir}] = true
	}

	var created []*spec.Channel
	seq := len(sys.Channels)
	for _, m := range sys.Modules {
		for _, b := range m.Behaviors {
			stmts := allStmts(b)
			reads := spec.VarsRead(stmts)
			writes := spec.VarsWritten(stmts)
			for _, ref := range orderedVars(reads, writes) {
				v := ref.v
				if v.Owner == nil || v.Owner == m {
					continue // local or behavior-scoped
				}
				if ref.reads > 0 && !existing[key{b, v, spec.Read}] {
					seq++
					c := &spec.Channel{
						Name: fmt.Sprintf("ch%d", seq), Accessor: b, Var: v, Dir: spec.Read,
					}
					sys.AddChannel(c)
					created = append(created, c)
					existing[key{b, v, spec.Read}] = true
				}
				if ref.writes > 0 && !existing[key{b, v, spec.Write}] {
					seq++
					c := &spec.Channel{
						Name: fmt.Sprintf("ch%d", seq), Accessor: b, Var: v, Dir: spec.Write,
					}
					sys.AddChannel(c)
					created = append(created, c)
					existing[key{b, v, spec.Write}] = true
				}
			}
		}
	}
	if errs := sys.Validate(); len(errs) > 0 {
		return created, fmt.Errorf("partition: derived channels leave system invalid: %w", errs[0])
	}
	return created, nil
}

func allStmts(b *spec.Behavior) []spec.Stmt {
	stmts := append([]spec.Stmt{}, b.Body...)
	for _, p := range b.Procedures {
		stmts = append(stmts, p.Body...)
	}
	return stmts
}

type varRefCount struct {
	v             *spec.Variable
	reads, writes int
}

// orderedVars merges read/write counts into a deterministic list (by
// variable name).
func orderedVars(reads, writes map[*spec.Variable]int) []varRefCount {
	merged := make(map[*spec.Variable]*varRefCount)
	for v, n := range reads {
		merged[v] = &varRefCount{v: v, reads: n}
	}
	for v, n := range writes {
		if rc, ok := merged[v]; ok {
			rc.writes = n
		} else {
			merged[v] = &varRefCount{v: v, writes: n}
		}
	}
	out := make([]varRefCount, 0, len(merged))
	for _, rc := range merged {
		out = append(out, *rc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].v.Name < out[j].v.Name })
	return out
}

// ---- automatic clustering ----

// Item is one partitionable object: a behavior or a variable.
type Item struct {
	Behavior *spec.Behavior
	Variable *spec.Variable
}

func (it Item) name() string {
	if it.Behavior != nil {
		return "b:" + it.Behavior.Name
	}
	return "v:" + it.Variable.Name
}

// Config parameterizes automatic clustering.
type Config struct {
	// Modules is the target module count (>= 1).
	Modules int
	// Model is the cost model used to weight accesses by loop trip
	// counts; zero value means the default model.
	Model estimate.CostModel
	// MaxItems softly caps the number of items per module: merges that
	// would exceed it are deferred while any legal merge exists. Zero
	// means no cap; Balanced sets it to ceil(items/Modules).
	MaxItems int
	// Balanced derives MaxItems from the item count, yielding modules
	// of roughly equal size (SpecSyn's constraint-driven flavor).
	Balanced bool
}

// Clusters is the outcome of automatic partitioning: Groups[i] lists the
// items of module i.
type Clusters struct {
	Groups [][]Item
}

// Cluster partitions behaviors and variables into cfg.Modules groups by
// agglomerating the closest clusters. Closeness between a behavior and a
// variable is the behavior's trip-weighted access count to the variable;
// closeness between two behaviors is their communication affinity (the
// smaller of their access counts summed over shared variables). Pairwise
// cluster closeness is normalized by cluster sizes so merging large
// clusters is not self-reinforcing.
func Cluster(behaviors []*spec.Behavior, vars []*spec.Variable, cfg Config) (*Clusters, error) {
	if cfg.Modules < 1 {
		return nil, errors.New("partition: Modules must be >= 1")
	}
	n := len(behaviors) + len(vars)
	if n == 0 {
		return nil, errors.New("partition: nothing to cluster")
	}
	if cfg.Modules > n {
		return nil, fmt.Errorf("partition: %d modules requested for %d items", cfg.Modules, n)
	}
	model := cfg.Model
	if model == (estimate.CostModel{}) {
		model = estimate.DefaultModel()
	}

	items := make([]Item, 0, n)
	for _, b := range behaviors {
		items = append(items, Item{Behavior: b})
	}
	for _, v := range vars {
		items = append(items, Item{Variable: v})
	}

	// access[b][v]: trip-weighted access count.
	access := make(map[*spec.Behavior]map[*spec.Variable]float64)
	for _, b := range behaviors {
		access[b] = accessWeights(b, model)
	}

	// Base closeness between items.
	base := func(a, c Item) float64 {
		switch {
		case a.Behavior != nil && c.Variable != nil:
			return access[a.Behavior][c.Variable]
		case a.Variable != nil && c.Behavior != nil:
			return access[c.Behavior][a.Variable]
		case a.Behavior != nil && c.Behavior != nil:
			var sum float64
			for v, wa := range access[a.Behavior] {
				if wb, ok := access[c.Behavior][v]; ok {
					sum += min(wa, wb)
				}
			}
			return sum
		default:
			return 0 // variable-variable: no direct affinity
		}
	}

	// Agglomerate.
	clusters := make([][]Item, n)
	for i, it := range items {
		clusters[i] = []Item{it}
	}
	closeness := func(A, B []Item) float64 {
		var sum float64
		for _, a := range A {
			for _, b := range B {
				sum += base(a, b)
			}
		}
		return sum / float64(len(A)*len(B))
	}
	maxItems := cfg.MaxItems
	if cfg.Balanced && maxItems == 0 {
		maxItems = (n + cfg.Modules - 1) / cfg.Modules
	}
	for len(clusters) > cfg.Modules {
		bi, bj, best := -1, -1, -1.0
		fbI, fbJ, fbBest := -1, -1, -1.0 // fallback ignoring the cap
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				c := closeness(clusters[i], clusters[j])
				if c > fbBest {
					fbI, fbJ, fbBest = i, j, c
				}
				if maxItems > 0 && len(clusters[i])+len(clusters[j]) > maxItems {
					continue
				}
				if c > best {
					bi, bj, best = i, j, c
				}
			}
		}
		if bi < 0 {
			// No merge fits the cap: relax it rather than fail, so the
			// requested module count is always reached (soft cap).
			bi, bj = fbI, fbJ
		}
		clusters[bi] = append(clusters[bi], clusters[bj]...)
		clusters = append(clusters[:bj], clusters[bj+1:]...)
	}
	// Deterministic group ordering: by first item name.
	for _, g := range clusters {
		sort.Slice(g, func(i, j int) bool { return g[i].name() < g[j].name() })
	}
	sort.Slice(clusters, func(i, j int) bool { return clusters[i][0].name() < clusters[j][0].name() })
	return &Clusters{Groups: clusters}, nil
}

// accessWeights computes the behavior's trip-weighted reference counts
// per module-candidate variable (i.e. every variable it references that
// it does not declare locally).
func accessWeights(b *spec.Behavior, model estimate.CostModel) map[*spec.Variable]float64 {
	local := make(map[*spec.Variable]bool)
	for _, v := range b.Variables {
		local[v] = true
	}
	w := make(map[*spec.Variable]float64)
	var walk func(stmts []spec.Stmt, scale float64)
	count := func(e spec.Expr, scale float64) {
		spec.WalkExpr(e, func(sub spec.Expr) bool {
			if r, ok := sub.(*spec.VarRef); ok && !local[r.Var] {
				w[r.Var] += scale
			}
			return true
		})
	}
	walk = func(stmts []spec.Stmt, scale float64) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *spec.Assign:
				count(s.RHS, scale)
				count(s.LHS, scale)
			case *spec.If:
				count(s.Cond, scale)
				walk(s.Then, scale/2)
				for _, arm := range s.Elifs {
					count(arm.Cond, scale)
					walk(arm.Body, scale/2)
				}
				walk(s.Else, scale/2)
			case *spec.For:
				trips := float64(model.DefaultTrips)
				if lo, ok1 := estimate.ConstInt(s.From); ok1 {
					if hi, ok2 := estimate.ConstInt(s.To); ok2 && hi >= lo {
						trips = float64(hi - lo + 1)
					}
				}
				walk(s.Body, scale*trips)
			case *spec.While:
				count(s.Cond, scale)
				walk(s.Body, scale*float64(model.DefaultTrips))
			case *spec.Loop:
				walk(s.Body, scale*float64(model.DefaultTrips))
			case *spec.Call:
				for _, a := range s.Args {
					count(a, scale)
				}
			case *spec.Wait:
				if s.Until != nil {
					count(s.Until, scale)
				}
			}
		}
	}
	walk(allStmts(b), 1)
	return w
}

// BuildSystem materializes a clustering as a system: module m<i> per
// group, with channels derived. Behaviors and variables must not already
// be owned.
func BuildSystem(name string, groups [][]Item) (*spec.System, error) {
	sys := spec.NewSystem(name)
	for i, g := range groups {
		m := sys.AddModule(fmt.Sprintf("m%d", i))
		for _, it := range g {
			switch {
			case it.Behavior != nil:
				if it.Behavior.Owner != nil {
					return nil, fmt.Errorf("partition: behavior %s already assigned", it.Behavior.Name)
				}
				m.AddBehavior(it.Behavior)
			case it.Variable != nil:
				if it.Variable.Owner != nil {
					return nil, fmt.Errorf("partition: variable %s already assigned", it.Variable.Name)
				}
				m.AddVariable(it.Variable)
			}
		}
	}
	if _, err := DeriveChannels(sys); err != nil {
		return nil, err
	}
	return sys, nil
}

// ---- channel grouping ----

// GroupingPolicy selects how channels are grouped into buses.
type GroupingPolicy int

// Grouping policies.
const (
	// SingleBus merges every channel into one bus (maximum interconnect
	// reduction; the paper's FLC experiment).
	SingleBus GroupingPolicy = iota
	// ByModulePair groups channels connecting the same pair of modules.
	ByModulePair
	// RateFeasible starts from a single bus and splits only when Eq. 1
	// cannot be satisfied (busgen.Split).
	RateFeasible
)

// GroupBuses partitions the system's channels into buses under the given
// policy, attaches the buses to the system (named B, B2, B3, ...) and
// returns them. Widths are left 0 — bus generation assigns them.
func GroupBuses(sys *spec.System, est *estimate.Estimator, policy GroupingPolicy, cfg busgen.Config) ([]*spec.Bus, error) {
	if len(sys.Channels) == 0 {
		return nil, errors.New("partition: no channels to group")
	}
	var groups [][]*spec.Channel
	switch policy {
	case SingleBus:
		groups = [][]*spec.Channel{append([]*spec.Channel{}, sys.Channels...)}
	case ByModulePair:
		byPair := make(map[string][]*spec.Channel)
		var order []string
		for _, c := range sys.Channels {
			a, b := c.Accessor.Owner.Name, c.Var.Owner.Name
			if a > b {
				a, b = b, a
			}
			k := a + "|" + b
			if _, ok := byPair[k]; !ok {
				order = append(order, k)
			}
			byPair[k] = append(byPair[k], c)
		}
		for _, k := range order {
			groups = append(groups, byPair[k])
		}
	case RateFeasible:
		gs, ok := busgen.Split(sys.Channels, est, cfg)
		if !ok {
			return nil, errors.New("partition: some channels individually infeasible")
		}
		groups = gs
	default:
		return nil, fmt.Errorf("partition: unknown grouping policy %d", policy)
	}
	var buses []*spec.Bus
	for i, g := range groups {
		name := "B"
		if i > 0 {
			name = fmt.Sprintf("B%d", i+1)
		}
		bus := &spec.Bus{Name: name, Channels: g, Protocol: cfg.Protocol}
		sys.Buses = append(sys.Buses, bus)
		buses = append(buses, bus)
	}
	return buses, nil
}

// Repartition re-runs automatic partitioning on an existing system: all
// behaviors and module-level variables are pooled, clustered into the
// requested number of modules by closeness, and reassigned; channels are
// dropped and re-derived against the new module boundaries. Generated
// refinement artifacts (buses, global signals) must not exist yet —
// repartitioning is a front-of-flow operation.
func Repartition(sys *spec.System, modules int, cfg Config) error {
	if len(sys.Buses) > 0 || len(sys.Globals) > 0 {
		return errors.New("partition: cannot repartition a refined system")
	}
	var behaviors []*spec.Behavior
	var vars []*spec.Variable
	for _, m := range sys.Modules {
		behaviors = append(behaviors, m.Behaviors...)
		vars = append(vars, m.Variables...)
	}
	for _, b := range behaviors {
		b.Owner = nil
	}
	for _, v := range vars {
		v.Owner = nil
	}
	cfg.Modules = modules
	clusters, err := Cluster(behaviors, vars, cfg)
	if err != nil {
		return err
	}
	sys.Modules = nil
	sys.Channels = nil
	for i, g := range clusters.Groups {
		m := sys.AddModule(fmt.Sprintf("m%d", i))
		for _, it := range g {
			switch {
			case it.Behavior != nil:
				m.AddBehavior(it.Behavior)
			case it.Variable != nil:
				m.AddVariable(it.Variable)
			}
		}
	}
	if _, err := DeriveChannels(sys); err != nil {
		return err
	}
	return nil
}
