package partition

import (
	"strings"
	"testing"

	"repro/internal/busgen"
	"repro/internal/estimate"
	"repro/internal/spec"
)

// buildFig1 models Fig. 1 of the paper: process A on module 1 accessing
// MEM (read+write) and STATUS (write) on module 2.
func buildFig1() *spec.System {
	sys := spec.NewSystem("fig1")
	m1 := sys.AddModule("module1")
	m2 := sys.AddModule("module2")
	a := m1.AddBehavior(spec.NewBehavior("A"))
	mem := m2.AddVariable(spec.NewVar("MEM", spec.Array(256, spec.BitVector(8))))
	status := m2.AddVariable(spec.NewVar("STATUS", spec.BitVector(8)))
	ir := a.AddVar("IR", spec.BitVector(8))
	pc := a.AddVar("PC", spec.Integer)
	ar := a.AddVar("AR", spec.Integer)
	accum := a.AddVar("ACCUM", spec.BitVector(8))
	// IR <= MEM(PC); STATUS <= X"0A"; MEM(AR) <= ACCUM;
	a.Body = []spec.Stmt{
		spec.AssignVar(spec.Ref(ir), spec.At(spec.Ref(mem), spec.Ref(pc))),
		spec.AssignVar(spec.Ref(status), spec.VecString("00001010")),
		spec.AssignVar(spec.At(spec.Ref(mem), spec.Ref(ar)), spec.Ref(accum)),
	}
	return sys
}

func TestDeriveChannelsFig1(t *testing.T) {
	sys := buildFig1()
	created, err := DeriveChannels(sys)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 1: ch1 A < MEM (read), ch2 A > MEM (write), ch3 A > STATUS.
	if len(created) != 3 {
		t.Fatalf("created %d channels, want 3: %v", len(created), created)
	}
	var haveMemR, haveMemW, haveStatusW bool
	for _, c := range created {
		switch {
		case c.Var.Name == "MEM" && c.Dir == spec.Read:
			haveMemR = true
		case c.Var.Name == "MEM" && c.Dir == spec.Write:
			haveMemW = true
		case c.Var.Name == "STATUS" && c.Dir == spec.Write:
			haveStatusW = true
		}
		if c.Accessor.Name != "A" {
			t.Errorf("channel %s accessor = %s", c.Name, c.Accessor.Name)
		}
	}
	if !haveMemR || !haveMemW || !haveStatusW {
		t.Fatalf("channel directions wrong: %v", created)
	}
	// Names are sequential.
	if created[0].Name != "ch1" {
		t.Errorf("first channel named %s", created[0].Name)
	}
}

func TestDeriveChannelsIdempotent(t *testing.T) {
	sys := buildFig1()
	if _, err := DeriveChannels(sys); err != nil {
		t.Fatal(err)
	}
	again, err := DeriveChannels(sys)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 0 {
		t.Fatalf("second derivation created %d channels", len(again))
	}
	if len(sys.Channels) != 3 {
		t.Fatalf("system has %d channels", len(sys.Channels))
	}
}

func TestDeriveChannelsIgnoresLocalAccess(t *testing.T) {
	sys := spec.NewSystem("local")
	m := sys.AddModule("m")
	sys.AddModule("m2")
	b := m.AddBehavior(spec.NewBehavior("B"))
	v := m.AddVariable(spec.NewVar("V", spec.Bit)) // same module
	b.Body = []spec.Stmt{spec.AssignVar(spec.Ref(v), spec.VecString("1"))}
	created, err := DeriveChannels(sys)
	if err != nil {
		t.Fatal(err)
	}
	if len(created) != 0 {
		t.Fatalf("intra-module access created channels: %v", created)
	}
}

func TestClusterPullsAccessorsToTheirData(t *testing.T) {
	// Two independent producer/consumer pairs; clustering into two
	// modules must keep each behavior with its heavily-accessed array.
	b1 := spec.NewBehavior("B1")
	b2 := spec.NewBehavior("B2")
	v1 := spec.NewVar("V1", spec.Array(64, spec.BitVector(8)))
	v2 := spec.NewVar("V2", spec.Array(64, spec.BitVector(8)))
	i1 := b1.AddVar("i", spec.Integer)
	i2 := b2.AddVar("i", spec.Integer)
	b1.Body = []spec.Stmt{&spec.For{Var: i1, From: spec.Int(0), To: spec.Int(63), Body: []spec.Stmt{
		spec.AssignVar(spec.At(spec.Ref(v1), spec.Ref(i1)), spec.ToVec(spec.Ref(i1), 8)),
	}}}
	b2.Body = []spec.Stmt{&spec.For{Var: i2, From: spec.Int(0), To: spec.Int(63), Body: []spec.Stmt{
		spec.AssignVar(spec.At(spec.Ref(v2), spec.Ref(i2)), spec.ToVec(spec.Ref(i2), 8)),
	}}}
	res, err := Cluster([]*spec.Behavior{b1, b2}, []*spec.Variable{v1, v2}, Config{Modules: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("groups = %d", len(res.Groups))
	}
	find := func(name string) int {
		for gi, g := range res.Groups {
			for _, it := range g {
				if it.name() == name {
					return gi
				}
			}
		}
		return -1
	}
	if find("b:B1") != find("v:V1") {
		t.Error("B1 separated from V1")
	}
	if find("b:B2") != find("v:V2") {
		t.Error("B2 separated from V2")
	}
	if find("b:B1") == find("b:B2") {
		t.Error("independent pairs merged")
	}
}

func TestClusterCommunicatingBehaviorsMerge(t *testing.T) {
	// Three behaviors; A and B share a variable heavily, C is isolated
	// with its own. Two modules: {A, B, shared} vs {C, own}.
	a := spec.NewBehavior("A")
	b := spec.NewBehavior("B")
	c := spec.NewBehavior("C")
	shared := spec.NewVar("SHARED", spec.BitVector(8))
	own := spec.NewVar("OWN", spec.BitVector(8))
	ia := a.AddVar("i", spec.Integer)
	ib := b.AddVar("i", spec.Integer)
	for _, pair := range []struct {
		beh *spec.Behavior
		i   *spec.Variable
	}{{a, ia}, {b, ib}} {
		pair.beh.Body = []spec.Stmt{&spec.For{Var: pair.i, From: spec.Int(0), To: spec.Int(31), Body: []spec.Stmt{
			spec.AssignVar(spec.Ref(shared), spec.ToVec(spec.Ref(pair.i), 8)),
		}}}
	}
	c.Body = []spec.Stmt{spec.AssignVar(spec.Ref(own), spec.VecString("00000001"))}
	res, err := Cluster([]*spec.Behavior{a, b, c}, []*spec.Variable{shared, own}, Config{Modules: 2})
	if err != nil {
		t.Fatal(err)
	}
	find := func(name string) int {
		for gi, g := range res.Groups {
			for _, it := range g {
				if it.name() == name {
					return gi
				}
			}
		}
		return -1
	}
	if find("b:A") != find("b:B") || find("b:A") != find("v:SHARED") {
		t.Errorf("communicating cluster split: %v", res.Groups)
	}
	if find("b:C") != find("v:OWN") {
		t.Errorf("C separated from OWN: %v", res.Groups)
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := Cluster(nil, nil, Config{Modules: 1}); err == nil {
		t.Error("empty cluster accepted")
	}
	b := spec.NewBehavior("B")
	if _, err := Cluster([]*spec.Behavior{b}, nil, Config{Modules: 0}); err == nil {
		t.Error("zero modules accepted")
	}
	if _, err := Cluster([]*spec.Behavior{b}, nil, Config{Modules: 5}); err == nil {
		t.Error("more modules than items accepted")
	}
}

func TestBuildSystemFromClusters(t *testing.T) {
	b1 := spec.NewBehavior("B1")
	v1 := spec.NewVar("V1", spec.BitVector(8))
	b1.Body = []spec.Stmt{spec.AssignVar(spec.Ref(v1), spec.VecString("00000001"))}
	sys, err := BuildSystem("auto", [][]Item{
		{{Behavior: b1}},
		{{Variable: v1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Modules) != 2 {
		t.Fatalf("modules = %d", len(sys.Modules))
	}
	if len(sys.Channels) != 1 || sys.Channels[0].Dir != spec.Write {
		t.Fatalf("channels = %v", sys.Channels)
	}
	if errs := sys.Validate(); len(errs) != 0 {
		t.Fatal(errs[0])
	}
}

func TestGroupBusesSingle(t *testing.T) {
	sys := buildFig1()
	if _, err := DeriveChannels(sys); err != nil {
		t.Fatal(err)
	}
	est := estimate.New(sys.Channels)
	buses, err := GroupBuses(sys, est, SingleBus, busgen.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(buses) != 1 || len(buses[0].Channels) != 3 {
		t.Fatalf("buses = %v", buses)
	}
	if buses[0].Name != "B" {
		t.Errorf("bus name = %s", buses[0].Name)
	}
}

func TestGroupBusesByModulePair(t *testing.T) {
	// Three modules: A on m1 accesses X on m2 and Y on m3 -> two buses.
	sys := spec.NewSystem("pairs")
	m1 := sys.AddModule("m1")
	m2 := sys.AddModule("m2")
	m3 := sys.AddModule("m3")
	a := m1.AddBehavior(spec.NewBehavior("A"))
	x := m2.AddVariable(spec.NewVar("X", spec.BitVector(8)))
	y := m3.AddVariable(spec.NewVar("Y", spec.BitVector(8)))
	l := a.AddVar("l", spec.BitVector(8))
	a.Body = []spec.Stmt{
		spec.AssignVar(spec.Ref(x), spec.Ref(l)),
		spec.AssignVar(spec.Ref(y), spec.Ref(l)),
	}
	if _, err := DeriveChannels(sys); err != nil {
		t.Fatal(err)
	}
	est := estimate.New(sys.Channels)
	buses, err := GroupBuses(sys, est, ByModulePair, busgen.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(buses) != 2 {
		t.Fatalf("buses = %d, want 2", len(buses))
	}
	if buses[1].Name != "B2" {
		t.Errorf("second bus name = %s", buses[1].Name)
	}
}

func TestGroupBusesRateFeasibleSplits(t *testing.T) {
	sys := buildFig1()
	if _, err := DeriveChannels(sys); err != nil {
		t.Fatal(err)
	}
	// Force infeasibility of the merged group.
	for _, c := range sys.Channels {
		c.Accesses = 1000
		c.LifetimeClocks = 2000 // ~8-12.5 b/clk each
	}
	est := estimate.New(sys.Channels)
	buses, err := GroupBuses(sys, est, RateFeasible, busgen.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(buses) < 2 {
		t.Fatalf("rate-feasible grouping kept %d bus(es) for overloaded channels", len(buses))
	}
}

func TestGroupBusesEmpty(t *testing.T) {
	sys := spec.NewSystem("empty")
	est := estimate.New(nil)
	if _, err := GroupBuses(sys, est, SingleBus, busgen.DefaultConfig()); err == nil {
		t.Error("empty channel list accepted")
	}
}

func TestDeriveChannelNamesSequential(t *testing.T) {
	sys := buildFig1()
	created, _ := DeriveChannels(sys)
	names := make([]string, len(created))
	for i, c := range created {
		names[i] = c.Name
	}
	joined := strings.Join(names, ",")
	if joined != "ch1,ch2,ch3" {
		t.Errorf("names = %s", joined)
	}
}

func TestRepartitionSingleModuleSystem(t *testing.T) {
	// One flat module holding two independent producer/memory pairs;
	// repartitioning into two modules must separate the pairs and
	// derive fresh channels at the new boundaries.
	sys := spec.NewSystem("flat")
	m := sys.AddModule("all")
	b1 := m.AddBehavior(spec.NewBehavior("B1"))
	b2 := m.AddBehavior(spec.NewBehavior("B2"))
	v1 := m.AddVariable(spec.NewVar("V1", spec.Array(64, spec.BitVector(8))))
	v2 := m.AddVariable(spec.NewVar("V2", spec.Array(64, spec.BitVector(8))))
	for _, pair := range []struct {
		b *spec.Behavior
		v *spec.Variable
	}{{b1, v1}, {b2, v2}} {
		i := pair.b.AddVar("i", spec.Integer)
		pair.b.Body = []spec.Stmt{
			&spec.For{Var: i, From: spec.Int(0), To: spec.Int(63), Body: []spec.Stmt{
				spec.AssignVar(spec.At(spec.Ref(pair.v), spec.Ref(i)), spec.ToVec(spec.Ref(i), 8)),
			}},
		}
	}
	if err := Repartition(sys, 2, Config{}); err != nil {
		t.Fatal(err)
	}
	if len(sys.Modules) != 2 {
		t.Fatalf("modules = %d", len(sys.Modules))
	}
	if errs := sys.Validate(); len(errs) != 0 {
		t.Fatal(errs[0])
	}
	// The clustering keeps each behavior with its array, so the only
	// channels are those crossing the new boundary — ideally none
	// (each pair is self-contained) or symmetric if split that way.
	for _, c := range sys.Channels {
		if c.Accessor.Owner == c.Var.Owner {
			t.Fatalf("intra-module channel derived: %s", c)
		}
	}
	// Each behavior must be co-located with its own array.
	if b1.Owner != v1.Owner || b2.Owner != v2.Owner {
		t.Error("behavior separated from its data")
	}
	if b1.Owner == b2.Owner {
		t.Error("independent pairs not separated")
	}
}

func TestRepartitionIntoMoreModulesCreatesChannels(t *testing.T) {
	// One behavior with its memory, split into two modules: the memory
	// lands apart from the behavior and channels appear.
	sys := spec.NewSystem("flat")
	m := sys.AddModule("all")
	b := m.AddBehavior(spec.NewBehavior("B"))
	v := m.AddVariable(spec.NewVar("V", spec.Array(32, spec.BitVector(8))))
	i := b.AddVar("i", spec.Integer)
	b.Body = []spec.Stmt{
		&spec.For{Var: i, From: spec.Int(0), To: spec.Int(31), Body: []spec.Stmt{
			spec.AssignVar(spec.At(spec.Ref(v), spec.Ref(i)), spec.ToVec(spec.Ref(i), 8)),
		}},
	}
	if err := Repartition(sys, 2, Config{}); err != nil {
		t.Fatal(err)
	}
	if len(sys.Channels) != 1 || sys.Channels[0].Dir != spec.Write {
		t.Fatalf("channels = %v", sys.Channels)
	}
}

func TestRepartitionRejectsRefinedSystem(t *testing.T) {
	sys := buildFig1()
	sys.AddGlobal(spec.NewSignal("B", spec.Bit))
	if err := Repartition(sys, 2, Config{}); err == nil {
		t.Fatal("refined system accepted")
	}
}
