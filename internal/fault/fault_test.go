package fault

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/protogen"
	"repro/internal/sim"
	"repro/internal/spec"
)

// buildPQ constructs the paper's Fig. 3 system (P and Q on comp1
// accessing X and MEM on comp2), the fixture the sim tests use.
func buildPQ() (*spec.System, *spec.Bus) {
	sys := spec.NewSystem("PQ")
	comp1 := sys.AddModule("comp1")
	comp2 := sys.AddModule("comp2")

	p := comp1.AddBehavior(spec.NewBehavior("P"))
	q := comp1.AddBehavior(spec.NewBehavior("Q"))
	x := comp2.AddVariable(spec.NewVar("X", spec.BitVector(16)))
	mem := comp2.AddVariable(spec.NewVar("MEM", spec.Array(64, spec.BitVector(16))))

	ad := p.AddVar("AD", spec.Integer)
	count := q.AddVar("COUNT", spec.BitVector(16))

	p.Body = []spec.Stmt{
		spec.AssignVar(spec.Ref(ad), spec.Int(5)),
		spec.AssignVar(spec.Ref(x), spec.ToVec(spec.Int(32), 16)),
		spec.AssignVar(spec.At(spec.Ref(mem), spec.Ref(ad)),
			spec.Add(spec.Ref(x), spec.ToVec(spec.Int(7), 16))),
	}
	q.Body = []spec.Stmt{
		spec.WaitFor(500),
		spec.AssignVar(spec.Ref(count), spec.ToVec(spec.Int(9), 16)),
		spec.AssignVar(spec.At(spec.Ref(mem), spec.Int(60)), spec.Ref(count)),
	}

	ch0 := sys.AddChannel(&spec.Channel{Name: "CH0", Accessor: p, Var: x, Dir: spec.Write})
	ch1 := sys.AddChannel(&spec.Channel{Name: "CH1", Accessor: p, Var: x, Dir: spec.Read})
	ch2 := sys.AddChannel(&spec.Channel{Name: "CH2", Accessor: p, Var: mem, Dir: spec.Write})
	ch3 := sys.AddChannel(&spec.Channel{Name: "CH3", Accessor: q, Var: mem, Dir: spec.Write})

	bus := &spec.Bus{Name: "B", Channels: []*spec.Channel{ch0, ch1, ch2, ch3}, Width: 8}
	sys.Buses = append(sys.Buses, bus)
	return sys, bus
}

func refinePQ(t *testing.T, cfg protogen.Config) (*spec.System, *spec.Bus, *protogen.Refinement) {
	t.Helper()
	sys, bus := buildPQ()
	ref, err := protogen.Generate(sys, bus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys, bus, ref
}

func runWith(t *testing.T, sys *spec.System, faults []Fault) (*sim.Result, error) {
	t.Helper()
	cfg := sim.Config{MaxClocks: 200_000}
	NewInjector(faults).Attach(&cfg)
	s, err := sim.New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s.Run()
}

func checkPQFinals(t *testing.T, res *sim.Result) {
	t.Helper()
	if x := res.Final("comp2", "X").(sim.VecVal); x.V.Uint64() != 32 {
		t.Errorf("X = %d, want 32", x.V.Uint64())
	}
	mem := res.Final("comp2", "MEM").(sim.ArrayVal)
	if got := mem.Elems[5].(sim.VecVal).V.Uint64(); got != 39 {
		t.Errorf("MEM(5) = %d, want 39", got)
	}
	if got := mem.Elems[60].(sim.VecVal).V.Uint64(); got != 9 {
		t.Errorf("MEM(60) = %d, want 9", got)
	}
}

// droppedDone suppresses the first DONE rise on the bus — the canonical
// lost-strobe fault of the issue's demo.
func droppedDone() []Fault {
	return []Fault{{Class: DropEvent, Signal: "B", Field: "DONE", AfterEvents: 0}}
}

// TestDroppedDoneDeadlocksBaseline: under the paper's ideal-wire
// protocol, losing a single DONE strobe hangs the whole system, and the
// deadlock report carries the bus control-line state for diagnosis.
func TestDroppedDoneDeadlocksBaseline(t *testing.T) {
	sys, _, _ := refinePQ(t, protogen.Config{Protocol: spec.FullHandshake})
	_, err := runWith(t, sys, droppedDone())
	var dl *sim.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("want deadlock, got %v", err)
	}
	if len(dl.Bus) == 0 {
		t.Fatal("DeadlockError.Bus is empty, want control-line state")
	}
	state := strings.Join(dl.Bus, " ")
	// P raised START and is waiting for the acknowledgement that was
	// dropped on the wire.
	if !strings.Contains(state, "B.START='1'") || !strings.Contains(state, "B.DONE='0'") {
		t.Errorf("bus state %q does not show the half-open handshake", state)
	}
}

// TestDroppedDoneRobustRecovers: the hardened protocol times out the
// lost strobe, resynchronizes the server over RST, retransmits, and
// finishes with exactly the fault-free finals.
func TestDroppedDoneRobustRecovers(t *testing.T) {
	for _, parity := range []bool{false, true} {
		name := "robust"
		if parity {
			name = "robust+parity"
		}
		t.Run(name, func(t *testing.T) {
			sys, _, ref := refinePQ(t, protogen.Config{
				Protocol: spec.FullHandshake, Robust: true, Parity: parity,
			})
			res, err := runWith(t, sys, droppedDone())
			if err != nil {
				t.Fatal(err)
			}
			checkPQFinals(t, res)
			for _, key := range ref.AbortKeys() {
				if n := res.Finals[key].(sim.IntVal).V; n != 0 {
					t.Errorf("%s = %d, want 0 (recovery, not abort)", key, n)
				}
			}
		})
	}
}

// TestRobustFaultFree: hardening must not change fault-free semantics.
func TestRobustFaultFree(t *testing.T) {
	for _, cfg := range []protogen.Config{
		{Protocol: spec.FullHandshake, Robust: true},
		{Protocol: spec.FullHandshake, Robust: true, Parity: true},
		{Protocol: spec.HalfHandshake, Robust: true},
	} {
		sys, _, _ := refinePQ(t, cfg)
		res, err := runWith(t, sys, nil)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		checkPQFinals(t, res)
	}
}

// TestTransientIDFlipRobustRecovers: a flipped ID line misroutes a
// word; with parity the corruption is caught by NACK, the ID lines are
// re-driven on retry, and the run completes correctly.
func TestTransientIDFlipRobustRecovers(t *testing.T) {
	sys, _, ref := refinePQ(t, protogen.Config{
		Protocol: spec.FullHandshake, Robust: true, Parity: true,
	})
	faults := []Fault{{Class: BitFlip, Signal: "B", Field: "ID", Bit: 0, AfterEvents: 1}}
	res, err := runWith(t, sys, faults)
	if err != nil {
		t.Fatal(err)
	}
	checkPQFinals(t, res)
	for _, key := range ref.AbortKeys() {
		if n := res.Finals[key].(sim.IntVal).V; n != 0 {
			t.Errorf("%s = %d, want 0", key, n)
		}
	}
}

// TestStuckStartAbortsCleanly: a permanently stuck-low START line makes
// every transaction impossible; the hardened accessors must exhaust
// their retries and count aborts instead of hanging or corrupting.
func TestStuckStartAbortsCleanly(t *testing.T) {
	sys, _, ref := refinePQ(t, protogen.Config{Protocol: spec.FullHandshake, Robust: true})
	faults := []Fault{{Class: StuckAt0, Signal: "B", Field: "START", AfterEvents: 0}}
	res, err := runWith(t, sys, faults)
	if err != nil {
		t.Fatalf("hardened run hung: %v", err)
	}
	var aborts int64
	for _, key := range ref.AbortKeys() {
		aborts += res.Finals[key].(sim.IntVal).V
	}
	if aborts == 0 {
		t.Error("no aborts counted under a dead START line")
	}
}

// TestArbiterUnderFault: arbitration and hardening compose — with
// REQ/GRANT arbitration generated, a dropped DONE still resolves via
// retry and both accessors' transactions commit.
func TestArbiterUnderFault(t *testing.T) {
	sys, _, _ := refinePQ(t, protogen.Config{
		Protocol: spec.FullHandshake, Robust: true, Arbitrate: true,
	})
	res, err := runWith(t, sys, droppedDone())
	if err != nil {
		t.Fatal(err)
	}
	checkPQFinals(t, res)
}

// TestCampaignReproducible: the acceptance criterion — the same seed
// yields byte-for-byte identical campaign results, including under
// parallel execution.
func TestCampaignReproducible(t *testing.T) {
	run := func(workers int) *Report {
		sys, bus, ref := refinePQ(t, protogen.Config{Protocol: spec.FullHandshake, Robust: true})
		rep, err := Campaign(sys, bus, Config{
			Runs: 24, Seed: 42, AbortVars: ref.AbortKeys(), Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(1), run(8)
	if !reflect.DeepEqual(a.Exemplars, b.Exemplars) {
		t.Fatal("same seed produced different campaign exemplars")
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different campaign reports")
	}
	var total int
	for _, n := range a.Totals {
		total += n
	}
	if total != 24 {
		t.Fatalf("totals sum %d, want 24", total)
	}
}

// TestCampaignWorkerInvariance is the streaming scheduler's determinism
// claim at scale: 10k runs sharded across 1, 4 and 16 workers must
// produce byte-identical reports — same outcome counts, same per-class
// table, same exemplar runs in the same order.
func TestCampaignWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-run campaign")
	}
	sys, bus, ref := refinePQ(t, protogen.Config{Protocol: spec.FullHandshake, Robust: true})
	run := func(workers int) *Report {
		rep, err := Campaign(sys, bus, Config{
			Runs: 10_000, Seed: 1234, AbortVars: ref.AbortKeys(), Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base := run(1)
	for _, workers := range []int{4, 16} {
		rep := run(workers)
		if rep.String() != base.String() {
			t.Errorf("workers=%d report differs:\n%s\nvs workers=1:\n%s", workers, rep.String(), base.String())
		}
		if !reflect.DeepEqual(rep.Exemplars, base.Exemplars) {
			t.Errorf("workers=%d exemplars differ from workers=1", workers)
		}
	}
	var total int
	for _, n := range base.Totals {
		total += n
	}
	if total != 10_000 {
		t.Fatalf("totals sum %d, want 10000", total)
	}
}

// TestCampaignPooledMatchesUnpooled: the pooled batch kernel and the
// classic kernel must classify identically — same report, same
// exemplars — on the hardened scenarios the acceptance criteria name.
func TestCampaignPooledMatchesUnpooled(t *testing.T) {
	for _, pc := range []struct {
		name string
		cfg  protogen.Config
	}{
		{"robust", protogen.Config{Protocol: spec.FullHandshake, Robust: true}},
		{"robust-parity", protogen.Config{Protocol: spec.FullHandshake, Robust: true, Parity: true}},
	} {
		t.Run(pc.name, func(t *testing.T) {
			sys, bus, ref := refinePQ(t, pc.cfg)
			run := func(unpooled bool) *Report {
				rep, err := Campaign(sys, bus, Config{
					Runs: 64, Seed: 99, AbortVars: ref.AbortKeys(), Unpooled: unpooled,
				})
				if err != nil {
					t.Fatal(err)
				}
				return rep
			}
			pooled, unpooled := run(false), run(true)
			if pooled.String() != unpooled.String() {
				t.Errorf("pooled report differs from unpooled:\n%s\nvs:\n%s", pooled.String(), unpooled.String())
			}
			if !reflect.DeepEqual(pooled.Exemplars, unpooled.Exemplars) {
				t.Error("pooled exemplars differ from unpooled")
			}
		})
	}
}

// TestCampaignConfigValidation: broken configurations must fail up
// front with a clear error, not silently run zero-fault campaigns.
func TestCampaignConfigValidation(t *testing.T) {
	sys, bus, _ := refinePQ(t, protogen.Config{Protocol: spec.FullHandshake})
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"negative-runs", Config{Runs: -1}, "negative Runs"},
		{"negative-faults-per-run", Config{FaultsPerRun: -2}, "negative FaultsPerRun"},
		{"negative-window", Config{Window: -5}, "negative fault window"},
		{"negative-max-clocks", Config{MaxClocks: -1}, "negative MaxClocks"},
		{"negative-max-exemplars", Config{MaxExemplars: -3}, "negative MaxExemplars"},
		{"empty-classes", Config{Classes: []Class{}}, "Classes is empty"},
		{"unknown-class", Config{Classes: []Class{DelayJitter, Class(99)}}, "unknown fault class"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Campaign(sys, bus, tc.cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

// TestCampaignExemplarRetention: exemplars are the first K runs of each
// outcome by run index, bounded by MaxExemplars, and consistent with
// Totals.
func TestCampaignExemplarRetention(t *testing.T) {
	sys, bus, ref := refinePQ(t, protogen.Config{Protocol: spec.FullHandshake, Robust: true})
	rep, err := Campaign(sys, bus, Config{
		Runs: 100, Seed: 5, AbortVars: ref.AbortKeys(), MaxExemplars: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for o, exs := range rep.Exemplars {
		if len(exs) > 3 {
			t.Errorf("%s: %d exemplars retained, want <= 3", o, len(exs))
		}
		want := rep.Totals[o]
		if want > 3 {
			want = 3
		}
		if len(exs) != want {
			t.Errorf("%s: %d exemplars for %d total runs, want %d", o, len(exs), rep.Totals[o], want)
		}
		for i := 1; i < len(exs); i++ {
			if exs[i-1].Run >= exs[i].Run {
				t.Errorf("%s: exemplar runs out of order: %d then %d", o, exs[i-1].Run, exs[i].Run)
			}
			if exs[i].Outcome != o {
				t.Errorf("exemplar under %s has outcome %s", o, exs[i].Outcome)
			}
		}
	}
}

// TestCampaignRobustNeverCorrupts: on the hardened protocol no injected
// single fault may silently corrupt data — every run either survives,
// aborts cleanly, or (for faults outside the protocol's fault model,
// e.g. a permanently stuck RST) hangs detectably.
func TestCampaignRobustNeverCorrupts(t *testing.T) {
	sys, bus, ref := refinePQ(t, protogen.Config{
		Protocol: spec.FullHandshake, Robust: true, Parity: true,
	})
	rep, err := Campaign(sys, bus, Config{Runs: 40, Seed: 7, AbortVars: ref.AbortKeys()})
	if err != nil {
		t.Fatal(err)
	}
	if n := rep.Totals[Corrupted]; n > 0 {
		for _, rr := range rep.Exemplars[Corrupted] {
			t.Errorf("run %d corrupted under %v (err=%q)", rr.Run, rr.Faults, rr.Err)
		}
		t.Fatalf("%d corrupted runs on the hardened+parity protocol", n)
	}
}

// TestInjectorEventCounting: AfterEvents addresses the Nth transition of
// the targeted field, independent of other fields' traffic.
func TestInjectorEventCounting(t *testing.T) {
	sys, _, _ := refinePQ(t, protogen.Config{Protocol: spec.FullHandshake})
	// Dropping the 100th DONE transition: the PQ workload produces far
	// fewer, so the fault never fires and the run matches fault-free.
	faults := []Fault{{Class: DropEvent, Signal: "B", Field: "DONE", AfterEvents: 100}}
	res, err := runWith(t, sys, faults)
	if err != nil {
		t.Fatal(err)
	}
	checkPQFinals(t, res)
}
