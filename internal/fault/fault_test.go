package fault

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/protogen"
	"repro/internal/sim"
	"repro/internal/spec"
)

// buildPQ constructs the paper's Fig. 3 system (P and Q on comp1
// accessing X and MEM on comp2), the fixture the sim tests use.
func buildPQ() (*spec.System, *spec.Bus) {
	sys := spec.NewSystem("PQ")
	comp1 := sys.AddModule("comp1")
	comp2 := sys.AddModule("comp2")

	p := comp1.AddBehavior(spec.NewBehavior("P"))
	q := comp1.AddBehavior(spec.NewBehavior("Q"))
	x := comp2.AddVariable(spec.NewVar("X", spec.BitVector(16)))
	mem := comp2.AddVariable(spec.NewVar("MEM", spec.Array(64, spec.BitVector(16))))

	ad := p.AddVar("AD", spec.Integer)
	count := q.AddVar("COUNT", spec.BitVector(16))

	p.Body = []spec.Stmt{
		spec.AssignVar(spec.Ref(ad), spec.Int(5)),
		spec.AssignVar(spec.Ref(x), spec.ToVec(spec.Int(32), 16)),
		spec.AssignVar(spec.At(spec.Ref(mem), spec.Ref(ad)),
			spec.Add(spec.Ref(x), spec.ToVec(spec.Int(7), 16))),
	}
	q.Body = []spec.Stmt{
		spec.WaitFor(500),
		spec.AssignVar(spec.Ref(count), spec.ToVec(spec.Int(9), 16)),
		spec.AssignVar(spec.At(spec.Ref(mem), spec.Int(60)), spec.Ref(count)),
	}

	ch0 := sys.AddChannel(&spec.Channel{Name: "CH0", Accessor: p, Var: x, Dir: spec.Write})
	ch1 := sys.AddChannel(&spec.Channel{Name: "CH1", Accessor: p, Var: x, Dir: spec.Read})
	ch2 := sys.AddChannel(&spec.Channel{Name: "CH2", Accessor: p, Var: mem, Dir: spec.Write})
	ch3 := sys.AddChannel(&spec.Channel{Name: "CH3", Accessor: q, Var: mem, Dir: spec.Write})

	bus := &spec.Bus{Name: "B", Channels: []*spec.Channel{ch0, ch1, ch2, ch3}, Width: 8}
	sys.Buses = append(sys.Buses, bus)
	return sys, bus
}

func refinePQ(t *testing.T, cfg protogen.Config) (*spec.System, *spec.Bus, *protogen.Refinement) {
	t.Helper()
	sys, bus := buildPQ()
	ref, err := protogen.Generate(sys, bus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys, bus, ref
}

func runWith(t *testing.T, sys *spec.System, faults []Fault) (*sim.Result, error) {
	t.Helper()
	cfg := sim.Config{MaxClocks: 200_000}
	NewInjector(faults).Attach(&cfg)
	s, err := sim.New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s.Run()
}

func checkPQFinals(t *testing.T, res *sim.Result) {
	t.Helper()
	if x := res.Final("comp2", "X").(sim.VecVal); x.V.Uint64() != 32 {
		t.Errorf("X = %d, want 32", x.V.Uint64())
	}
	mem := res.Final("comp2", "MEM").(sim.ArrayVal)
	if got := mem.Elems[5].(sim.VecVal).V.Uint64(); got != 39 {
		t.Errorf("MEM(5) = %d, want 39", got)
	}
	if got := mem.Elems[60].(sim.VecVal).V.Uint64(); got != 9 {
		t.Errorf("MEM(60) = %d, want 9", got)
	}
}

// droppedDone suppresses the first DONE rise on the bus — the canonical
// lost-strobe fault of the issue's demo.
func droppedDone() []Fault {
	return []Fault{{Class: DropEvent, Signal: "B", Field: "DONE", AfterEvents: 0}}
}

// TestDroppedDoneDeadlocksBaseline: under the paper's ideal-wire
// protocol, losing a single DONE strobe hangs the whole system, and the
// deadlock report carries the bus control-line state for diagnosis.
func TestDroppedDoneDeadlocksBaseline(t *testing.T) {
	sys, _, _ := refinePQ(t, protogen.Config{Protocol: spec.FullHandshake})
	_, err := runWith(t, sys, droppedDone())
	var dl *sim.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("want deadlock, got %v", err)
	}
	if len(dl.Bus) == 0 {
		t.Fatal("DeadlockError.Bus is empty, want control-line state")
	}
	state := strings.Join(dl.Bus, " ")
	// P raised START and is waiting for the acknowledgement that was
	// dropped on the wire.
	if !strings.Contains(state, "B.START='1'") || !strings.Contains(state, "B.DONE='0'") {
		t.Errorf("bus state %q does not show the half-open handshake", state)
	}
}

// TestDroppedDoneRobustRecovers: the hardened protocol times out the
// lost strobe, resynchronizes the server over RST, retransmits, and
// finishes with exactly the fault-free finals.
func TestDroppedDoneRobustRecovers(t *testing.T) {
	for _, parity := range []bool{false, true} {
		name := "robust"
		if parity {
			name = "robust+parity"
		}
		t.Run(name, func(t *testing.T) {
			sys, _, ref := refinePQ(t, protogen.Config{
				Protocol: spec.FullHandshake, Robust: true, Parity: parity,
			})
			res, err := runWith(t, sys, droppedDone())
			if err != nil {
				t.Fatal(err)
			}
			checkPQFinals(t, res)
			for _, key := range ref.AbortKeys() {
				if n := res.Finals[key].(sim.IntVal).V; n != 0 {
					t.Errorf("%s = %d, want 0 (recovery, not abort)", key, n)
				}
			}
		})
	}
}

// TestRobustFaultFree: hardening must not change fault-free semantics.
func TestRobustFaultFree(t *testing.T) {
	for _, cfg := range []protogen.Config{
		{Protocol: spec.FullHandshake, Robust: true},
		{Protocol: spec.FullHandshake, Robust: true, Parity: true},
		{Protocol: spec.HalfHandshake, Robust: true},
	} {
		sys, _, _ := refinePQ(t, cfg)
		res, err := runWith(t, sys, nil)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		checkPQFinals(t, res)
	}
}

// TestTransientIDFlipRobustRecovers: a flipped ID line misroutes a
// word; with parity the corruption is caught by NACK, the ID lines are
// re-driven on retry, and the run completes correctly.
func TestTransientIDFlipRobustRecovers(t *testing.T) {
	sys, _, ref := refinePQ(t, protogen.Config{
		Protocol: spec.FullHandshake, Robust: true, Parity: true,
	})
	faults := []Fault{{Class: BitFlip, Signal: "B", Field: "ID", Bit: 0, AfterEvents: 1}}
	res, err := runWith(t, sys, faults)
	if err != nil {
		t.Fatal(err)
	}
	checkPQFinals(t, res)
	for _, key := range ref.AbortKeys() {
		if n := res.Finals[key].(sim.IntVal).V; n != 0 {
			t.Errorf("%s = %d, want 0", key, n)
		}
	}
}

// TestStuckStartAbortsCleanly: a permanently stuck-low START line makes
// every transaction impossible; the hardened accessors must exhaust
// their retries and count aborts instead of hanging or corrupting.
func TestStuckStartAbortsCleanly(t *testing.T) {
	sys, _, ref := refinePQ(t, protogen.Config{Protocol: spec.FullHandshake, Robust: true})
	faults := []Fault{{Class: StuckAt0, Signal: "B", Field: "START", AfterEvents: 0}}
	res, err := runWith(t, sys, faults)
	if err != nil {
		t.Fatalf("hardened run hung: %v", err)
	}
	var aborts int64
	for _, key := range ref.AbortKeys() {
		aborts += res.Finals[key].(sim.IntVal).V
	}
	if aborts == 0 {
		t.Error("no aborts counted under a dead START line")
	}
}

// TestArbiterUnderFault: arbitration and hardening compose — with
// REQ/GRANT arbitration generated, a dropped DONE still resolves via
// retry and both accessors' transactions commit.
func TestArbiterUnderFault(t *testing.T) {
	sys, _, _ := refinePQ(t, protogen.Config{
		Protocol: spec.FullHandshake, Robust: true, Arbitrate: true,
	})
	res, err := runWith(t, sys, droppedDone())
	if err != nil {
		t.Fatal(err)
	}
	checkPQFinals(t, res)
}

// TestCampaignReproducible: the acceptance criterion — the same seed
// yields byte-for-byte identical campaign results, including under
// parallel execution.
func TestCampaignReproducible(t *testing.T) {
	run := func(workers int) *Report {
		sys, bus, ref := refinePQ(t, protogen.Config{Protocol: spec.FullHandshake, Robust: true})
		rep, err := Campaign(sys, bus, Config{
			Runs: 24, Seed: 42, AbortVars: ref.AbortKeys(), Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(1), run(8)
	if !reflect.DeepEqual(a.Runs, b.Runs) {
		t.Fatal("same seed produced different campaign runs")
	}
	if a.Format() != b.Format() {
		t.Fatal("same seed produced different campaign reports")
	}
	var total int
	for _, n := range a.Totals {
		total += n
	}
	if total != 24 {
		t.Fatalf("totals sum %d, want 24", total)
	}
}

// TestCampaignRobustNeverCorrupts: on the hardened protocol no injected
// single fault may silently corrupt data — every run either survives,
// aborts cleanly, or (for faults outside the protocol's fault model,
// e.g. a permanently stuck RST) hangs detectably.
func TestCampaignRobustNeverCorrupts(t *testing.T) {
	sys, bus, ref := refinePQ(t, protogen.Config{
		Protocol: spec.FullHandshake, Robust: true, Parity: true,
	})
	rep, err := Campaign(sys, bus, Config{Runs: 40, Seed: 7, AbortVars: ref.AbortKeys()})
	if err != nil {
		t.Fatal(err)
	}
	if n := rep.Totals[Corrupted]; n > 0 {
		for _, rr := range rep.Runs {
			if rr.Outcome == Corrupted {
				t.Errorf("run %d corrupted under %v (err=%q)", rr.Run, rr.Faults, rr.Err)
			}
		}
		t.Fatalf("%d corrupted runs on the hardened+parity protocol", n)
	}
}

// TestInjectorEventCounting: AfterEvents addresses the Nth transition of
// the targeted field, independent of other fields' traffic.
func TestInjectorEventCounting(t *testing.T) {
	sys, _, _ := refinePQ(t, protogen.Config{Protocol: spec.FullHandshake})
	// Dropping the 100th DONE transition: the PQ workload produces far
	// fewer, so the fault never fires and the run matches fault-free.
	faults := []Fault{{Class: DropEvent, Signal: "B", Field: "DONE", AfterEvents: 100}}
	res, err := runWith(t, sys, faults)
	if err != nil {
		t.Fatal(err)
	}
	checkPQFinals(t, res)
}
