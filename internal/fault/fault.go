// Package fault implements deterministic wire-fault injection for
// refined specifications: seeded campaigns that mutate bus signal
// transitions inside the simulation kernel and classify how the
// generated protocols cope.
//
// The fault model targets the artifact protocol generation creates — the
// global bus record signal. Each Fault names one record field (a control
// line like START or DONE, the ID lines, or the DATA word) and a fault
// class:
//
//	StuckAt0/StuckAt1 — from its AfterEvents-th transition on, the field
//	                    is clamped low/high for Duration clocks
//	                    (0 = forever);
//	BitFlip           — one transition has one bit inverted;
//	DropEvent         — one transition is suppressed (the field keeps
//	                    its old value);
//	DelayJitter       — one transition is deferred by Duration clocks.
//
// Faults are scheduled by *event count*, not wall-clock: "the third DONE
// transition" is a property of the protocol's behavior, so the same
// fault hits the same handshake phase regardless of when it happens.
// Injection is a pure function of the simulated event sequence — no
// clocks, no randomness inside the hook — which makes every faulty run
// reproducible bit for bit. Randomness lives only in Randomize, which
// expands a seed into a concrete fault list before the run starts.
package fault

import (
	"fmt"
	"math/rand"

	"repro/internal/bits"
	"repro/internal/sim"
	"repro/internal/spec"
)

// Class enumerates the wire-fault classes.
type Class int

// Fault classes.
const (
	StuckAt0 Class = iota
	StuckAt1
	BitFlip
	DropEvent
	DelayJitter
	numClasses
)

func (c Class) String() string {
	switch c {
	case StuckAt0:
		return "stuck-at-0"
	case StuckAt1:
		return "stuck-at-1"
	case BitFlip:
		return "bit-flip"
	case DropEvent:
		return "drop-event"
	case DelayJitter:
		return "delay-jitter"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// AllClasses lists every fault class.
func AllClasses() []Class {
	return []Class{StuckAt0, StuckAt1, BitFlip, DropEvent, DelayJitter}
}

// Fault is one scheduled fault on a field of a bus record signal.
type Fault struct {
	Class Class
	// Signal is the global record signal's name (the bus, e.g. "B").
	Signal string
	// Field is the targeted record field ("START", "DONE", "ID", ...).
	Field string
	// Bit is the bit flipped within the field (BitFlip only).
	Bit int
	// AfterEvents is how many transitions of the field to let pass
	// unharmed; 0 strikes the field's first transition.
	AfterEvents int64
	// Duration is the clamp window in clocks for StuckAt0/StuckAt1
	// (0 = forever) and the deferral in clocks for DelayJitter
	// (0 = one clock).
	Duration int64
}

func (f Fault) String() string {
	s := fmt.Sprintf("%s %s.%s", f.Class, f.Signal, f.Field)
	if f.Class == BitFlip {
		s += fmt.Sprintf("[%d]", f.Bit)
	}
	s += fmt.Sprintf(" after %d events", f.AfterEvents)
	if f.Duration > 0 && (f.Class == StuckAt0 || f.Class == StuckAt1 || f.Class == DelayJitter) {
		s += fmt.Sprintf(" for %d clocks", f.Duration)
	}
	return s
}

// armedFault is a Fault plus its per-run firing state.
type armedFault struct {
	Fault
	fired     bool
	stuckFrom int64 // clock the clamp armed at; -1 = not armed yet
}

// Injector realizes a fault list as a simulator mutation hook. One
// injector serves one run: it accumulates per-field event counts.
type Injector struct {
	faults []*armedFault
	counts map[string]int64 // "SIG.FIELD" -> transitions seen
}

// NewInjector builds an injector for the given faults.
func NewInjector(faults []Fault) *Injector {
	in := &Injector{counts: make(map[string]int64)}
	for _, f := range faults {
		in.faults = append(in.faults, &armedFault{Fault: f, stuckFrom: -1})
	}
	return in
}

// Attach installs the injector on a simulator configuration.
func (in *Injector) Attach(cfg *sim.Config) { cfg.Mutate = in.Mutate }

// Mutate is the sim.Config.Mutate hook: given a proposed commit of a
// record signal, it applies every armed fault and returns the mutated
// value (plus a deferred commit for delay jitter).
func (in *Injector) Mutate(now int64, sig *spec.Variable, old, next sim.Value) sim.Mutation {
	ov, ook := old.(sim.RecordVal)
	nv, nok := next.(sim.RecordVal)
	if !ook || !nok || len(ov.Fields) != len(nv.Fields) {
		return sim.Mutation{}
	}
	out := nv
	mutated := false
	ensure := func() sim.RecordVal {
		if !mutated {
			out = sim.RecordVal{Type: nv.Type, Fields: append([]sim.Value{}, nv.Fields...)}
			mutated = true
		}
		return out
	}
	var m sim.Mutation
	for i, fld := range nv.Type.Fields {
		key := sig.Name + "." + fld.Name
		changed := !ov.Fields[i].Equal(nv.Fields[i])
		for _, af := range in.faults {
			if af.Signal != sig.Name || af.Field != fld.Name {
				continue
			}
			switch af.Class {
			case StuckAt0, StuckAt1:
				if af.stuckFrom < 0 && changed && in.counts[key] >= af.AfterEvents {
					af.stuckFrom = now
				}
				if af.stuckFrom >= 0 && (af.Duration <= 0 || now < af.stuckFrom+af.Duration) {
					if w := fieldWidth(nv.Fields[i]); w > 0 {
						v := bits.New(w)
						if af.Class == StuckAt1 {
							v = v.Not()
						}
						ensure().Fields[i] = sim.VecVal{V: v}
					}
				}
			case BitFlip:
				if !af.fired && changed && in.counts[key] >= af.AfterEvents {
					af.fired = true
					if vv, ok := nv.Fields[i].(sim.VecVal); ok {
						b := af.Bit
						if w := vv.V.Width(); w > 0 {
							b %= w
							flipped := vv.V.Clone().SetSlice(b, b, vv.V.Slice(b, b).Not())
							ensure().Fields[i] = sim.VecVal{V: flipped}
						}
					}
				}
			case DropEvent:
				if !af.fired && changed && in.counts[key] >= af.AfterEvents {
					af.fired = true
					ensure().Fields[i] = ov.Fields[i].Copy()
				}
			case DelayJitter:
				if !af.fired && changed && in.counts[key] >= af.AfterEvents {
					af.fired = true
					// Suppress the transition now; re-drive the whole
					// intended record value Duration clocks later.
					ensure().Fields[i] = ov.Fields[i].Copy()
					m.Later = nv.Copy()
					m.Delay = af.Duration
					if m.Delay <= 0 {
						m.Delay = 1
					}
				}
			}
		}
		if changed {
			in.counts[key]++
		}
	}
	if mutated {
		m.Now = out
	}
	return m
}

func fieldWidth(v sim.Value) int {
	if vv, ok := v.(sim.VecVal); ok {
		return vv.V.Width()
	}
	return 0
}

// Plan parameterizes random fault drawing for one bus.
type Plan struct {
	Seed int64
	// Count is the number of faults to draw; 0 means 1.
	Count int
	// Classes restricts the classes drawn from; empty means all.
	Classes []Class
	// Window bounds AfterEvents: each fault arms after a uniformly
	// drawn number of field transitions in [0, Window). 0 means
	// DefaultWindow.
	Window int64
}

// DefaultWindow is the default AfterEvents range: wide enough to strike
// any handshake phase of a multi-transaction workload's first dozens of
// words.
const DefaultWindow = 48

// Randomize expands a seed into concrete faults against the bus's record
// signal. The same bus and plan always yield the same faults.
func Randomize(bus *spec.Bus, plan Plan) []Fault {
	if bus.Signal == nil || len(bus.Record.Fields) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(plan.Seed))
	classes := plan.Classes
	if len(classes) == 0 {
		classes = AllClasses()
	}
	count := plan.Count
	if count <= 0 {
		count = 1
	}
	window := plan.Window
	if window <= 0 {
		window = DefaultWindow
	}
	faults := make([]Fault, count)
	for i := range faults {
		fld := bus.Record.Fields[rng.Intn(len(bus.Record.Fields))]
		f := Fault{
			Class:       classes[rng.Intn(len(classes))],
			Signal:      bus.Signal.Name,
			Field:       fld.Name,
			AfterEvents: rng.Int63n(window),
		}
		switch f.Class {
		case BitFlip:
			if w := fld.Type.BitWidth(); w > 0 {
				f.Bit = rng.Intn(w)
			}
		case StuckAt0, StuckAt1:
			// Transient clamps half the time, permanent otherwise.
			if rng.Intn(2) == 0 {
				f.Duration = 4 + rng.Int63n(28)
			}
		case DelayJitter:
			f.Duration = 1 + rng.Int63n(6)
		}
		faults[i] = f
	}
	return faults
}
