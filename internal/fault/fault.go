// Package fault implements deterministic wire-fault injection for
// refined specifications: seeded campaigns that mutate bus signal
// transitions inside the simulation kernel and classify how the
// generated protocols cope.
//
// The fault model targets the artifact protocol generation creates — the
// global bus record signal. Each Fault names one record field (a control
// line like START or DONE, the ID lines, or the DATA word) and a fault
// class:
//
//	StuckAt0/StuckAt1 — from its AfterEvents-th transition on, the field
//	                    is clamped low/high for Duration clocks
//	                    (0 = forever);
//	BitFlip           — one transition has one bit inverted;
//	DropEvent         — one transition is suppressed (the field keeps
//	                    its old value);
//	DelayJitter       — one transition is deferred by Duration clocks.
//
// Faults are scheduled by *event count*, not wall-clock: "the third DONE
// transition" is a property of the protocol's behavior, so the same
// fault hits the same handshake phase regardless of when it happens.
// Injection is a pure function of the simulated event sequence — no
// clocks, no randomness inside the hook — which makes every faulty run
// reproducible bit for bit. Randomness lives only in Randomize, which
// expands a seed into a concrete fault list before the run starts.
package fault

import (
	"fmt"
	"math/rand"

	"repro/internal/bits"
	"repro/internal/sim"
	"repro/internal/spec"
)

// Class enumerates the wire-fault classes.
type Class int

// Fault classes.
const (
	StuckAt0 Class = iota
	StuckAt1
	BitFlip
	DropEvent
	DelayJitter
	numClasses
)

func (c Class) String() string {
	switch c {
	case StuckAt0:
		return "stuck-at-0"
	case StuckAt1:
		return "stuck-at-1"
	case BitFlip:
		return "bit-flip"
	case DropEvent:
		return "drop-event"
	case DelayJitter:
		return "delay-jitter"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// AllClasses lists every fault class.
func AllClasses() []Class {
	return []Class{StuckAt0, StuckAt1, BitFlip, DropEvent, DelayJitter}
}

// Fault is one scheduled fault on a field of a bus record signal.
type Fault struct {
	Class Class
	// Signal is the global record signal's name (the bus, e.g. "B").
	Signal string
	// Field is the targeted record field ("START", "DONE", "ID", ...).
	Field string
	// Bit is the bit flipped within the field (BitFlip only).
	Bit int
	// AfterEvents is how many transitions of the field to let pass
	// unharmed; 0 strikes the field's first transition.
	AfterEvents int64
	// Duration is the clamp window in clocks for StuckAt0/StuckAt1
	// (0 = forever) and the deferral in clocks for DelayJitter
	// (0 = one clock).
	Duration int64
}

func (f Fault) String() string {
	s := fmt.Sprintf("%s %s.%s", f.Class, f.Signal, f.Field)
	if f.Class == BitFlip {
		s += fmt.Sprintf("[%d]", f.Bit)
	}
	s += fmt.Sprintf(" after %d events", f.AfterEvents)
	if f.Duration > 0 && (f.Class == StuckAt0 || f.Class == StuckAt1 || f.Class == DelayJitter) {
		s += fmt.Sprintf(" for %d clocks", f.Duration)
	}
	return s
}

// armedFault is a Fault plus its per-run firing state.
type armedFault struct {
	Fault
	fired     bool
	dead      bool  // will never mutate again; counted out of Injector.live
	stuckFrom int64 // clock the clamp armed at; -1 = not armed yet
	// stuckVal caches the clamp value (StuckAt0/StuckAt1): a permanent
	// clamp rewrites the field on every committed event in its window,
	// and the all-zeros/all-ones vector never changes.
	stuckVal sim.Value
}

// sigFaults is the injector's per-signal resolution: the faults
// targeting each record field (as indices into Injector.faults, so
// rearming the injector never invalidates a bucket), plus that field's
// transition count. Resolving names to indices once per signal keeps
// the Mutate hook — which runs on every committed signal event of every
// faulty run — free of string building and map lookups.
type sigFaults struct {
	sig     *spec.Variable
	typ     spec.RecordType
	byField [][]int32
	counts  []int64
	any     bool
}

// Injector realizes a fault list as a simulator mutation hook. One
// injector serves one run at a time: it accumulates per-field event
// counts. Reset rearms it for the next run reusing all of its storage,
// which is what lets a campaign chunk drive tens of thousands of runs
// through one injector without allocating.
type Injector struct {
	faults []armedFault
	sigs   []sigFaults
	// live counts faults that can still mutate; at zero the injector
	// reports Mutation.Done so the kernel stops calling the hook. A
	// one-shot fault (flip, drop, jitter) dies when it fires, a
	// transient clamp when its window closes; a permanent clamp never
	// dies.
	live int
}

// NewInjector builds an injector for the given faults.
func NewInjector(faults []Fault) *Injector {
	in := &Injector{}
	in.Reset(faults)
	return in
}

// Reset rearms the injector with a new fault list, reusing its fault
// and per-signal bucket storage. Event counts and firing state restart
// from zero, exactly as a fresh injector's would.
func (in *Injector) Reset(faults []Fault) {
	in.faults = in.faults[:0]
	for _, f := range faults {
		in.faults = append(in.faults, armedFault{Fault: f, stuckFrom: -1})
	}
	in.live = len(in.faults)
	for si := range in.sigs {
		in.rearm(&in.sigs[si])
	}
}

// rearm rebuilds one signal's fault buckets from the current fault list
// into the bucket storage it already owns.
func (in *Injector) rearm(sf *sigFaults) {
	sf.any = false
	for i := range sf.counts {
		sf.counts[i] = 0
	}
	for i := range sf.typ.Fields {
		b := sf.byField[i][:0]
		for fi := range in.faults {
			f := &in.faults[fi]
			if f.Signal == sf.sig.Name && f.Field == sf.typ.Fields[i].Name {
				b = append(b, int32(fi))
				sf.any = true
			}
		}
		sf.byField[i] = b
	}
}

// Attach installs the injector on a simulator configuration.
func (in *Injector) Attach(cfg *sim.Config) { cfg.Mutate = in.Mutate }

// resolve returns the per-field fault buckets for sig, building them on
// the signal's first committed event.
func (in *Injector) resolve(sig *spec.Variable, typ spec.RecordType) *sigFaults {
	for i := range in.sigs {
		if in.sigs[i].sig == sig && len(in.sigs[i].counts) == len(typ.Fields) {
			return &in.sigs[i]
		}
	}
	in.sigs = append(in.sigs, sigFaults{
		sig:     sig,
		typ:     typ,
		byField: make([][]int32, len(typ.Fields)),
		counts:  make([]int64, len(typ.Fields)),
	})
	sf := &in.sigs[len(in.sigs)-1]
	in.rearm(sf)
	return sf
}

// Mutate is the sim.Config.Mutate hook: given a proposed commit of a
// record signal, it applies every armed fault and returns the mutated
// value (plus a deferred commit for delay jitter).
func (in *Injector) Mutate(now int64, sig *spec.Variable, old, next sim.Value) sim.Mutation {
	ov, ook := old.(sim.RecordVal)
	nv, nok := next.(sim.RecordVal)
	if !ook || !nok || len(ov.Fields) != len(nv.Fields) {
		if _, isRec := sig.Type.(spec.RecordType); !isRec {
			// Faults only target record fields; a signal whose declared
			// type is not a record can never be mutated.
			return sim.Mutation{SkipSig: true}
		}
		return sim.Mutation{}
	}
	if in.live == 0 {
		return sim.Mutation{Done: true}
	}
	sf := in.resolve(sig, nv.Type)
	if !sf.any {
		// No armed fault targets this signal, and the fault list is
		// fixed for the whole run: opt out of further calls for it.
		return sim.Mutation{SkipSig: true}
	}
	out := nv
	mutated := false
	// ensure switches out to a private copy of next's fields on the
	// first actual mutation (kept a named function, not a closure, so
	// the common no-fire call allocates nothing).
	ensure := func() sim.RecordVal {
		if !mutated {
			out = sim.RecordVal{Type: nv.Type, Fields: append([]sim.Value{}, nv.Fields...)}
			mutated = true
		}
		return out
	}
	var m sim.Mutation
	for i := range nv.Type.Fields {
		affs := sf.byField[i]
		if len(affs) == 0 {
			// Transition counts only feed fault arming, so fields no
			// fault targets need no edge detection at all.
			continue
		}
		changed := !ov.Fields[i].Equal(nv.Fields[i])
		for _, fi := range affs {
			af := &in.faults[fi]
			switch af.Class {
			case StuckAt0, StuckAt1:
				if af.stuckFrom < 0 && changed && sf.counts[i] >= af.AfterEvents {
					af.stuckFrom = now
				}
				if af.stuckFrom >= 0 && af.Duration > 0 && now >= af.stuckFrom+af.Duration && !af.dead {
					af.dead = true
					in.live--
				}
				if af.stuckFrom >= 0 && (af.Duration <= 0 || now < af.stuckFrom+af.Duration) {
					if af.stuckVal == nil {
						if w := fieldWidth(nv.Fields[i]); w > 0 {
							v := bits.New(w)
							if af.Class == StuckAt1 {
								v = v.Not()
							}
							af.stuckVal = sim.VecVal{V: v}
						}
					}
					// Skip the rewrite when the field already holds the
					// clamp value (the steady state of a long window:
					// the previous commit was itself clamped), so an
					// armed clamp costs nothing until the program
					// actually drives the line.
					if af.stuckVal != nil && !nv.Fields[i].Equal(af.stuckVal) {
						ensure().Fields[i] = af.stuckVal
					}
				}
			case BitFlip:
				if !af.fired && changed && sf.counts[i] >= af.AfterEvents {
					af.fired = true
					af.dead = true
					in.live--
					if vv, ok := nv.Fields[i].(sim.VecVal); ok {
						b := af.Bit
						if w := vv.V.Width(); w > 0 {
							b %= w
							flipped := vv.V.Clone().SetSlice(b, b, vv.V.Slice(b, b).Not())
							ensure().Fields[i] = sim.VecVal{V: flipped}
						}
					}
				}
			case DropEvent:
				if !af.fired && changed && sf.counts[i] >= af.AfterEvents {
					af.fired = true
					af.dead = true
					in.live--
					ensure().Fields[i] = ov.Fields[i].Copy()
				}
			case DelayJitter:
				if !af.fired && changed && sf.counts[i] >= af.AfterEvents {
					af.fired = true
					af.dead = true
					in.live--
					// Suppress the transition now; re-drive the whole
					// intended record value Duration clocks later.
					ensure().Fields[i] = ov.Fields[i].Copy()
					m.Later = nv.Copy()
					m.Delay = af.Duration
					if m.Delay <= 0 {
						m.Delay = 1
					}
				}
			}
		}
		if changed {
			sf.counts[i]++
		}
	}
	if mutated {
		m.Now = out
	}
	return m
}

func fieldWidth(v sim.Value) int {
	if vv, ok := v.(sim.VecVal); ok {
		return vv.V.Width()
	}
	return 0
}

// Plan parameterizes random fault drawing for one bus.
type Plan struct {
	Seed int64
	// Count is the number of faults to draw; 0 means 1.
	Count int
	// Classes restricts the classes drawn from; empty means all.
	Classes []Class
	// Window bounds AfterEvents: each fault arms after a uniformly
	// drawn number of field transitions in [0, Window). 0 means
	// DefaultWindow.
	Window int64
}

// DefaultWindow is the default AfterEvents range: wide enough to strike
// any handshake phase of a multi-transaction workload's first dozens of
// words.
const DefaultWindow = 48

// smSource is a splitmix64 rand.Source64. Campaigns seed one generator
// per run, and math/rand's default source fills a 607-word state array
// on every Seed — per-run cost that dwarfs the handful of draws a fault
// plan needs. splitmix64 has one word of state and O(1) seeding.
type smSource struct{ state uint64 }

func (s *smSource) Seed(seed int64) { s.state = uint64(seed) }

func (s *smSource) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (s *smSource) Int63() int64 { return int64(s.Uint64() >> 1) }

// Randomize expands a seed into concrete faults against the bus's record
// signal. The same bus and plan always yield the same faults.
func Randomize(bus *spec.Bus, plan Plan) []Fault {
	return randomizeInto(nil, rand.New(&smSource{state: uint64(plan.Seed)}), bus, plan)
}

// randomizeInto is Randomize with caller-owned storage: dst's backing
// array is reused when it fits and rng is re-seeded from the plan, so a
// campaign loop draws each run's faults without allocating. The draw
// sequence is identical to Randomize's.
func randomizeInto(dst []Fault, rng *rand.Rand, bus *spec.Bus, plan Plan) []Fault {
	if bus.Signal == nil || len(bus.Record.Fields) == 0 {
		return nil
	}
	rng.Seed(plan.Seed)
	classes := plan.Classes
	if len(classes) == 0 {
		classes = AllClasses()
	}
	count := plan.Count
	if count <= 0 {
		count = 1
	}
	window := plan.Window
	if window <= 0 {
		window = DefaultWindow
	}
	faults := dst[:0]
	if cap(faults) < count {
		faults = make([]Fault, 0, count)
	}
	faults = faults[:count]
	for i := range faults {
		fld := bus.Record.Fields[rng.Intn(len(bus.Record.Fields))]
		f := Fault{
			Class:       classes[rng.Intn(len(classes))],
			Signal:      bus.Signal.Name,
			Field:       fld.Name,
			AfterEvents: rng.Int63n(window),
		}
		switch f.Class {
		case BitFlip:
			if w := fld.Type.BitWidth(); w > 0 {
				f.Bit = rng.Intn(w)
			}
		case StuckAt0, StuckAt1:
			// Transient clamps half the time, permanent otherwise.
			if rng.Intn(2) == 0 {
				f.Duration = 4 + rng.Int63n(28)
			}
		case DelayJitter:
			f.Duration = 1 + rng.Int63n(6)
		}
		faults[i] = f
	}
	return faults
}
