package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/spec"
)

// Outcome classifies one faulty run against the fault-free golden run.
type Outcome int

// Outcomes, ordered from best to worst.
const (
	// Survived: the run completed and every final variable value
	// matches the golden run — the protocol absorbed the fault.
	Survived Outcome = iota
	// AbortedCleanly: finals differ from golden, but the hardened
	// accessors reported the loss on their abort counters; no silent
	// corruption, no hang.
	AbortedCleanly
	// Corrupted: the run completed (or crashed on a poisoned value)
	// with wrong finals and no abort report — the worst kind of
	// failure, silent data corruption.
	Corrupted
	// Deadlocked: the run hung (deadlock or clock-budget blowout).
	Deadlocked
	numOutcomes
)

func (o Outcome) String() string {
	switch o {
	case Survived:
		return "survived"
	case AbortedCleanly:
		return "aborted-cleanly"
	case Corrupted:
		return "corrupted"
	case Deadlocked:
		return "deadlocked"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// Config parameterizes a campaign.
type Config struct {
	// Runs is the number of seeded faulty runs; 0 means 20.
	Runs int
	// Seed seeds the campaign; run i draws its faults from a sub-seed
	// derived deterministically from it.
	Seed int64
	// FaultsPerRun is the number of faults injected per run; 0 means 1.
	FaultsPerRun int
	// Classes restricts fault classes; empty means all.
	Classes []Class
	// Window is the fault-arming event window (see Plan.Window).
	Window int64
	// Sim is the base simulator configuration shared by all runs.
	Sim sim.Config
	// MaxClocks bounds each faulty run; 0 derives 16x the golden run's
	// clocks (plus slack), so a livelocked run terminates quickly.
	MaxClocks int64
	// AbortVars names the Result.Finals entries holding abort counters
	// ("Module.Var", see protogen.Refinement.AbortKeys). They are
	// excluded from the finals comparison; a nonzero counter turns a
	// mismatch into AbortedCleanly.
	AbortVars []string
	// Workers bounds campaign parallelism; 0 means GOMAXPROCS.
	Workers int
}

// RunResult is the outcome of one faulty run.
type RunResult struct {
	Run     int
	Seed    int64
	Faults  []Fault
	Outcome Outcome
	// Clocks is the faulty run's simulated duration (0 if it failed to
	// complete).
	Clocks int64
	// Aborts is the sum over AbortVars at the end of the run.
	Aborts int64
	// Err holds the simulator error for hung or crashed runs.
	Err string
}

// Report aggregates a campaign.
type Report struct {
	// Golden is the fault-free reference run.
	Golden *sim.Result
	Runs   []RunResult
	// Totals counts runs per outcome.
	Totals map[Outcome]int
	// ByClass counts runs per fault class and outcome; a run injecting
	// several classes is counted once under each.
	ByClass map[Class]map[Outcome]int
}

// Campaign runs a seeded fault-injection campaign: one golden run, then
// cfg.Runs faulty runs in parallel, each injecting freshly drawn faults
// into its own simulator instance. Everything is derived from cfg.Seed,
// so a campaign is reproducible byte for byte.
func Campaign(sys *spec.System, bus *spec.Bus, cfg Config) (*Report, error) {
	if bus == nil || bus.Signal == nil {
		return nil, fmt.Errorf("fault: bus is not refined (no bus signal; run protocol generation first)")
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 20
	}

	golden, err := runOnce(sys, cfg.Sim, nil)
	if err != nil {
		return nil, fmt.Errorf("fault: golden run failed: %w", err)
	}
	maxClocks := cfg.MaxClocks
	if maxClocks <= 0 {
		maxClocks = 16*golden.Clocks + 4096
	}

	// Per-run sub-seeds, drawn up front in run order so the campaign's
	// determinism does not depend on scheduling.
	rng := rand.New(rand.NewSource(cfg.Seed))
	seeds := make([]int64, cfg.Runs)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}

	runs := make([]RunResult, cfg.Runs)
	par.For(cfg.Runs, cfg.Workers, func(i int) {
		faults := Randomize(bus, Plan{
			Seed:    seeds[i],
			Count:   cfg.FaultsPerRun,
			Classes: cfg.Classes,
			Window:  cfg.Window,
		})
		rr := RunResult{Run: i, Seed: seeds[i], Faults: faults}
		scfg := cfg.Sim
		scfg.MaxClocks = maxClocks
		NewInjector(faults).Attach(&scfg)
		res, rerr := runOnce(sys, scfg, nil)
		if rerr != nil {
			rr.Err = rerr.Error()
			rr.Outcome = classifyError(rerr)
		} else {
			rr.Clocks = res.Clocks
			rr.Aborts = sumAborts(res, cfg.AbortVars)
			rr.Outcome = classifyFinals(golden, res, cfg.AbortVars, rr.Aborts)
		}
		runs[i] = rr
	})

	rep := &Report{
		Golden:  golden,
		Runs:    runs,
		Totals:  make(map[Outcome]int),
		ByClass: make(map[Class]map[Outcome]int),
	}
	for _, rr := range runs {
		rep.Totals[rr.Outcome]++
		seen := make(map[Class]bool)
		for _, f := range rr.Faults {
			if seen[f.Class] {
				continue
			}
			seen[f.Class] = true
			if rep.ByClass[f.Class] == nil {
				rep.ByClass[f.Class] = make(map[Outcome]int)
			}
			rep.ByClass[f.Class][rr.Outcome]++
		}
	}
	return rep, nil
}

func runOnce(sys *spec.System, cfg sim.Config, _ any) (*sim.Result, error) {
	s, err := sim.New(sys, cfg)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// classifyError maps a failed run to an outcome: hangs (deadlock, clock
// budget) are Deadlocked; anything else crashed on poisoned data and is
// counted as Corrupted.
func classifyError(err error) Outcome {
	var dl *sim.DeadlockError
	if errors.As(err, &dl) || strings.Contains(err.Error(), "MaxClocks") {
		return Deadlocked
	}
	return Corrupted
}

func sumAborts(res *sim.Result, abortVars []string) int64 {
	var n int64
	for _, key := range abortVars {
		if iv, ok := res.Finals[key].(sim.IntVal); ok {
			n += iv.V
		}
	}
	return n
}

func classifyFinals(golden, got *sim.Result, abortVars []string, aborts int64) Outcome {
	skip := make(map[string]bool, len(abortVars))
	for _, k := range abortVars {
		skip[k] = true
	}
	match := true
	for k, gv := range golden.Finals {
		if skip[k] {
			continue
		}
		fv, ok := got.Finals[k]
		if !ok || !gv.Equal(fv) {
			match = false
			break
		}
	}
	switch {
	case match:
		return Survived
	case aborts > 0:
		return AbortedCleanly
	}
	return Corrupted
}

// Format renders the report as an aligned per-class outcome table.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign: %d runs, golden %d clocks\n", len(r.Runs), r.Golden.Clocks)
	outcomes := []Outcome{Survived, AbortedCleanly, Corrupted, Deadlocked}
	fmt.Fprintf(&b, "%-14s", "class")
	for _, o := range outcomes {
		fmt.Fprintf(&b, " %15s", o)
	}
	b.WriteByte('\n')
	classes := make([]Class, 0, len(r.ByClass))
	for c := range r.ByClass {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, c := range classes {
		fmt.Fprintf(&b, "%-14s", c)
		for _, o := range outcomes {
			fmt.Fprintf(&b, " %15d", r.ByClass[c][o])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-14s", "total")
	for _, o := range outcomes {
		fmt.Fprintf(&b, " %15d", r.Totals[o])
	}
	b.WriteByte('\n')
	return b.String()
}
