package fault

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/spec"
)

// Outcome classifies one faulty run against the fault-free golden run.
type Outcome int

// Outcomes, ordered from best to worst.
const (
	// Survived: the run completed and every final variable value
	// matches the golden run — the protocol absorbed the fault.
	Survived Outcome = iota
	// AbortedCleanly: finals differ from golden, but the hardened
	// accessors reported the loss on their abort counters; no silent
	// corruption, no hang.
	AbortedCleanly
	// Corrupted: the run completed (or crashed on a poisoned value)
	// with wrong finals and no abort report — the worst kind of
	// failure, silent data corruption.
	Corrupted
	// Deadlocked: the run hung (deadlock or clock-budget blowout).
	Deadlocked
	numOutcomes
)

func (o Outcome) String() string {
	switch o {
	case Survived:
		return "survived"
	case AbortedCleanly:
		return "aborted-cleanly"
	case Corrupted:
		return "corrupted"
	case Deadlocked:
		return "deadlocked"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// Config parameterizes a campaign.
type Config struct {
	// Runs is the number of seeded faulty runs; 0 means 20.
	Runs int
	// Seed seeds the campaign; run i draws its faults from a sub-seed
	// derived deterministically (and statelessly) from it.
	Seed int64
	// FaultsPerRun is the number of faults injected per run; 0 means 1.
	FaultsPerRun int
	// Classes restricts fault classes; nil means all. A non-nil empty
	// slice is a configuration error (it would draw no faults at all),
	// as is any class outside the known range.
	Classes []Class
	// Window is the fault-arming event window (see Plan.Window).
	Window int64
	// Sim is the base simulator configuration shared by all runs.
	Sim sim.Config
	// MaxClocks bounds each faulty run; 0 derives 16x the golden run's
	// clocks (plus slack), so a livelocked run terminates quickly.
	MaxClocks int64
	// AbortVars names the Result.Finals entries holding abort counters
	// ("Module.Var", see protogen.Refinement.AbortKeys). They are
	// excluded from the finals comparison; a nonzero counter turns a
	// mismatch into AbortedCleanly.
	AbortVars []string
	// Workers bounds campaign parallelism; 0 means GOMAXPROCS.
	Workers int
	// MaxExemplars bounds per-outcome exemplar retention in the report:
	// for each outcome the first MaxExemplars runs (by run index) are
	// kept as full RunResults, everything else is only counted. 0 means
	// DefaultExemplars. This is what lets a 10⁷-run campaign hold its
	// report in O(classes + exemplars) memory instead of O(runs).
	MaxExemplars int
	// Unpooled forces every run onto the classic goroutine-per-process
	// kernel instead of the pooled batch engine. The two kernels are
	// bit-identical (and cross-checked in tests); this exists for
	// benchmark baselines and as an escape hatch.
	Unpooled bool
}

// DefaultExemplars is the per-outcome exemplar retention bound.
const DefaultExemplars = 4

// validate rejects configurations that would otherwise silently run a
// meaningless campaign (zero-fault runs, no runs, inverted windows).
func (cfg *Config) validate() error {
	if cfg.Runs < 0 {
		return fmt.Errorf("fault: negative Runs %d", cfg.Runs)
	}
	if cfg.FaultsPerRun < 0 {
		return fmt.Errorf("fault: negative FaultsPerRun %d", cfg.FaultsPerRun)
	}
	if cfg.Window < 0 {
		return fmt.Errorf("fault: negative fault window %d", cfg.Window)
	}
	if cfg.MaxClocks < 0 {
		return fmt.Errorf("fault: negative MaxClocks %d", cfg.MaxClocks)
	}
	if cfg.MaxExemplars < 0 {
		return fmt.Errorf("fault: negative MaxExemplars %d", cfg.MaxExemplars)
	}
	if cfg.Classes != nil && len(cfg.Classes) == 0 {
		return errors.New("fault: Classes is empty (nil means all classes)")
	}
	for _, c := range cfg.Classes {
		if c < 0 || c >= numClasses {
			return fmt.Errorf("fault: unknown fault class %d", int(c))
		}
	}
	return nil
}

// RunResult is the outcome of one faulty run.
type RunResult struct {
	Run     int
	Seed    int64
	Faults  []Fault
	Outcome Outcome
	// Clocks is the faulty run's simulated duration (0 if it failed to
	// complete).
	Clocks int64
	// Aborts is the sum over AbortVars at the end of the run.
	Aborts int64
	// Err holds the simulator error for hung or crashed runs.
	Err string
}

// Report aggregates a campaign. Classification is folded incrementally
// as runs complete: the report never materializes per-run state beyond
// the bounded exemplar lists, so its memory footprint is independent of
// the run count.
type Report struct {
	// Golden is the fault-free reference run.
	Golden *sim.Result
	// Runs is the number of faulty runs executed.
	Runs int
	// Totals counts runs per outcome.
	Totals map[Outcome]int
	// ByClass counts runs per fault class and outcome; a run injecting
	// several classes is counted once under each.
	ByClass map[Class]map[Outcome]int
	// Exemplars holds, per outcome, the first MaxExemplars runs (by run
	// index) that produced it — the counterexamples a repair loop or a
	// human debugger starts from.
	Exemplars map[Outcome][]RunResult
}

// runSeed derives run i's fault seed from the campaign seed via a
// splitmix64 step. Unlike drawing seeds from one sequential generator,
// the derivation is stateless, so a worker can seed run i without
// having drawn seeds 0..i-1 — the property that lets chunks of runs
// execute in any order on any worker count and still be byte-identical.
func runSeed(campaignSeed int64, run int) int64 {
	z := uint64(campaignSeed) + (uint64(run)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	// Keep seeds non-negative like the rand.Int63 draws they replace.
	return int64(z >> 1)
}

// chunkAgg is one seed-chunk's partial aggregation. Workers fold their
// chunk locally with no sharing; the campaign merges chunks in index
// order, which makes every report field independent of worker count and
// scheduling.
type chunkAgg struct {
	totals    [numOutcomes]int
	byClass   [numClasses][numOutcomes]int
	exemplars [numOutcomes][]RunResult
}

// Campaign runs a seeded fault-injection campaign: one golden run, then
// cfg.Runs faulty runs sharded in chunks across workers, each injecting
// freshly drawn faults into its own simulator run. Runs execute on the
// pooled batch kernel (sim.NewEngine) when the system compiles for it,
// falling back to the classic kernel otherwise; both produce identical
// reports. Everything is derived from cfg.Seed, so a campaign is
// reproducible byte for byte at any worker count.
func Campaign(sys *spec.System, bus *spec.Bus, cfg Config) (*Report, error) {
	return CampaignCtx(context.Background(), sys, bus, cfg)
}

// CampaignCtx is Campaign with cooperative cancellation: once ctx is
// done no further seed chunk starts and CampaignCtx returns ctx.Err()
// with a nil report. A canceled campaign never yields partial counts —
// the per-class probabilities it feeds would silently change meaning.
func CampaignCtx(ctx context.Context, sys *spec.System, bus *spec.Bus, cfg Config) (*Report, error) {
	if bus == nil || bus.Signal == nil {
		return nil, fmt.Errorf("fault: bus is not refined (no bus signal; run protocol generation first)")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Runs == 0 {
		cfg.Runs = 20
	}
	maxEx := cfg.MaxExemplars
	if maxEx == 0 {
		maxEx = DefaultExemplars
	}

	var eng *sim.Engine
	if !cfg.Unpooled {
		// A compile failure (recursive procedure, exotic construct) is
		// not a campaign error: the classic kernel runs everything.
		eng, _ = sim.NewEngine(sys)
	}
	golden, err := execute(eng, sys, cfg.Sim)
	if err != nil {
		return nil, fmt.Errorf("fault: golden run failed: %w", err)
	}
	maxClocks := cfg.MaxClocks
	if maxClocks <= 0 {
		maxClocks = 16*golden.Clocks + 4096
	}

	// Chunk size balances dispatch overhead against load balance; the
	// report is invariant to it (chunks merge in index order), so it can
	// depend on the worker count without costing determinism.
	chunk := cfg.Runs / (8 * effectiveWorkers(cfg.Workers))
	if chunk < 1 {
		chunk = 1
	}
	if chunk > 4096 {
		chunk = 4096
	}
	partials := make([]chunkAgg, (cfg.Runs+chunk-1)/chunk)
	golds := goldenFinals(golden, cfg.AbortVars)

	cerr := par.ForChunksCtx(ctx, cfg.Runs, cfg.Workers, chunk, func(lo, hi int) {
		agg := &partials[lo/chunk]
		// One injector, RNG and fault buffer serve the whole chunk:
		// Reset rearms them per run without allocating, and the
		// simulator configuration (hook binding included) is built
		// once. Fault draws and injection state are byte-identical to
		// fresh per-run objects.
		inj := &Injector{}
		rng := rand.New(&smSource{})
		var faults []Fault
		scfg := cfg.Sim
		scfg.MaxClocks = maxClocks
		// Classification reads only Clocks and Finals; skip the rest of
		// the Result.
		scfg.FinalsOnly = true
		inj.Attach(&scfg)
		for i := lo; i < hi; i++ {
			seed := runSeed(cfg.Seed, i)
			faults = randomizeInto(faults, rng, bus, Plan{
				Seed:    seed,
				Count:   cfg.FaultsPerRun,
				Classes: cfg.Classes,
				Window:  cfg.Window,
			})
			rr := RunResult{Run: i, Seed: seed, Faults: faults}
			inj.Reset(faults)
			res, rerr := execute(eng, sys, scfg)
			if rerr != nil {
				rr.Err = rerr.Error()
				rr.Outcome = classifyError(rerr)
			} else {
				rr.Clocks = res.Clocks
				rr.Aborts = sumAborts(res, cfg.AbortVars)
				rr.Outcome = classifyFinals(golds, res, rr.Aborts)
			}
			agg.totals[rr.Outcome]++
			var seen [numClasses]bool
			for _, f := range rr.Faults {
				if seen[f.Class] {
					continue
				}
				seen[f.Class] = true
				agg.byClass[f.Class][rr.Outcome]++
			}
			if len(agg.exemplars[rr.Outcome]) < maxEx {
				// The fault buffer is recycled next run; an exemplar
				// that outlives the loop gets its own copy.
				rr.Faults = append([]Fault(nil), faults...)
				agg.exemplars[rr.Outcome] = append(agg.exemplars[rr.Outcome], rr)
			}
		}
	})
	if cerr != nil {
		return nil, cerr
	}

	rep := &Report{
		Golden:    golden,
		Runs:      cfg.Runs,
		Totals:    make(map[Outcome]int),
		ByClass:   make(map[Class]map[Outcome]int),
		Exemplars: make(map[Outcome][]RunResult),
	}
	for ci := range partials {
		agg := &partials[ci]
		for o := Outcome(0); o < numOutcomes; o++ {
			if n := agg.totals[o]; n > 0 {
				rep.Totals[o] += n
			}
			// Chunks are merged in index order and each chunk keeps its
			// exemplars in run order, so the global list is exactly the
			// first maxEx runs with this outcome.
			for _, rr := range agg.exemplars[o] {
				if len(rep.Exemplars[o]) < maxEx {
					rep.Exemplars[o] = append(rep.Exemplars[o], rr)
				}
			}
			for c := Class(0); c < numClasses; c++ {
				if n := agg.byClass[c][o]; n > 0 {
					if rep.ByClass[c] == nil {
						rep.ByClass[c] = make(map[Outcome]int)
					}
					rep.ByClass[c][o] += n
				}
			}
		}
	}
	return rep, nil
}

// execute runs one simulation on the pooled engine when available, the
// classic kernel otherwise.
func execute(eng *sim.Engine, sys *spec.System, cfg sim.Config) (*sim.Result, error) {
	if eng != nil {
		return eng.Run(cfg)
	}
	s, err := sim.New(sys, cfg)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

func effectiveWorkers(workers int) int {
	if workers <= 0 {
		workers = par.DefaultWorkers()
	}
	if workers <= 0 {
		workers = 1
	}
	return workers
}

// classifyError maps a failed run to an outcome: hangs (deadlock, clock
// budget) are Deadlocked; anything else crashed on poisoned data and is
// counted as Corrupted.
func classifyError(err error) Outcome {
	var dl *sim.DeadlockError
	if errors.As(err, &dl) || strings.Contains(err.Error(), "MaxClocks") {
		return Deadlocked
	}
	return Corrupted
}

func sumAborts(res *sim.Result, abortVars []string) int64 {
	var n int64
	for _, key := range abortVars {
		if iv, ok := res.Finals[key].(sim.IntVal); ok {
			n += iv.V
		}
	}
	return n
}

// goldenEntry is one golden final to compare faulty runs against; the
// abort counters are excluded up front so the per-run comparison is a
// flat scan with no skip-set rebuilding.
type goldenEntry struct {
	key string
	val sim.Value
}

func goldenFinals(golden *sim.Result, abortVars []string) []goldenEntry {
	skip := make(map[string]bool, len(abortVars))
	for _, k := range abortVars {
		skip[k] = true
	}
	entries := make([]goldenEntry, 0, len(golden.Finals))
	for k, gv := range golden.Finals {
		if skip[k] {
			continue
		}
		entries = append(entries, goldenEntry{key: k, val: gv})
	}
	return entries
}

func classifyFinals(entries []goldenEntry, got *sim.Result, aborts int64) Outcome {
	match := true
	for _, e := range entries {
		fv, ok := got.Finals[e.key]
		if !ok || !e.val.Equal(fv) {
			match = false
			break
		}
	}
	switch {
	case match:
		return Survived
	case aborts > 0:
		return AbortedCleanly
	}
	return Corrupted
}

// String renders the report as an aligned per-class outcome table with
// rows in ascending class order, so the output is stable for golden
// tests and CI logs.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign: %d runs, golden %d clocks\n", r.Runs, r.Golden.Clocks)
	outcomes := []Outcome{Survived, AbortedCleanly, Corrupted, Deadlocked}
	fmt.Fprintf(&b, "%-14s", "class")
	for _, o := range outcomes {
		fmt.Fprintf(&b, " %15s", o)
	}
	b.WriteByte('\n')
	classes := make([]Class, 0, len(r.ByClass))
	for c := range r.ByClass {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, c := range classes {
		fmt.Fprintf(&b, "%-14s", c)
		for _, o := range outcomes {
			fmt.Fprintf(&b, " %15d", r.ByClass[c][o])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-14s", "total")
	for _, o := range outcomes {
		fmt.Fprintf(&b, " %15d", r.Totals[o])
	}
	b.WriteByte('\n')
	return b.String()
}

// Format renders the report.
//
// Deprecated: use String.
func (r *Report) Format() string { return r.String() }
