package hdl

import (
	"strings"
	"testing"

	"repro/internal/spec"
)

const pqSource = `
-- The paper's Fig. 3 system.
system PQ is
  module comp1 is
    behavior P is
      variable AD : integer;
    begin
      AD := 5;
      X <= 32;
      MEM(AD) := X + 7;
    end behavior;
    behavior Q is
      variable COUNT : bit_vector(15 downto 0);
    begin
      COUNT := 9;
      MEM(60) := COUNT;
    end behavior;
  end module;
  module comp2 is
    variable X : bit_vector(15 downto 0);
    variable MEM : array(0 to 63) of bit_vector(15 downto 0);
  end module;
  channel CH0 : P writes X;
  channel CH1 : P reads X;
  channel CH2 : P writes MEM;
  channel CH3 : Q writes MEM;
end system;
`

func TestParsePQ(t *testing.T) {
	sys, err := Parse(pqSource)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Name != "PQ" || len(sys.Modules) != 2 {
		t.Fatalf("system shape wrong: %s, %d modules", sys.Name, len(sys.Modules))
	}
	p := sys.FindBehavior("P")
	if p == nil || len(p.Body) != 3 {
		t.Fatalf("P body = %v", p)
	}
	mem := sys.FindVariable("MEM")
	at, ok := mem.Type.(spec.ArrayType)
	if !ok || at.Length != 64 || at.Elem.BitWidth() != 16 {
		t.Fatalf("MEM type = %v", mem.Type)
	}
	if len(sys.Channels) != 4 {
		t.Fatalf("channels = %d", len(sys.Channels))
	}
	if sys.Channels[1].Dir != spec.Read {
		t.Error("CH1 direction wrong")
	}
}

func TestLexerBasics(t *testing.T) {
	toks, err := lex(`x := "1010"; y <= X"0A"; -- comment
z := '1';`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokKind{}
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	want := []tokKind{
		tokIdent, tokSymbol, tokVecLit, tokSymbol,
		tokIdent, tokSymbol, tokHexVecLit, tokSymbol,
		tokIdent, tokSymbol, tokBitLit, tokSymbol, tokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(kinds), len(want), toks)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d kind = %d, want %d (%v)", i, kinds[i], want[i], toks[i])
		}
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{`x := "01`, `'2'`, `@`, `y := X"0`} {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q) accepted", src)
		}
	}
}

func TestLexerPositions(t *testing.T) {
	toks, err := lex("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].line != 2 || toks[1].col != 3 {
		t.Fatalf("position = %d:%d", toks[1].line, toks[1].col)
	}
}

func TestParseErrorsCarryPositions(t *testing.T) {
	src := "system S is\n  module M is\n    variable v : badtype;\n  end module;\nend system;"
	_, err := Parse(src)
	if err == nil {
		t.Fatal("bad type accepted")
	}
	if !strings.Contains(err.Error(), "3:") {
		t.Errorf("error lacks line info: %v", err)
	}
}

func TestParseRejectsUnknownName(t *testing.T) {
	src := `system S is
  module M is
    behavior B is
    begin
      ghost := 1;
    end behavior;
  end module;
end system;`
	_, err := Parse(src)
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("err = %v", err)
	}
}

func TestParseRejectsIntraModuleChannelViaValidate(t *testing.T) {
	src := `system S is
  module M is
    variable V : bit;
    behavior B is
    begin
      V := '1';
    end behavior;
  end module;
  channel c : B writes V;
end system;`
	if _, err := Parse(src); err == nil {
		t.Fatal("intra-module channel accepted")
	}
}

func TestParseControlFlow(t *testing.T) {
	src := `system S is
  module M is
    behavior B is
      variable n : integer;
      variable flag : boolean;
    begin
      for i in 0 to 9 loop
        n := n + i;
      end loop;
      while n > 0 loop
        n := n - 2;
      end loop;
      loop
        n := n + 1;
        if n >= 5 then
          exit;
        elsif n = 3 then
          null;
        else
          flag := true;
        end if;
      end loop;
      wait for 10;
    end behavior;
  end module;
end system;`
	sys, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	b := sys.FindBehavior("B")
	if len(b.Body) != 4 {
		t.Fatalf("body stmts = %d", len(b.Body))
	}
	if _, ok := b.Body[0].(*spec.For); !ok {
		t.Error("first stmt not a for")
	}
	// Loop var i was implicitly declared.
	found := false
	for _, v := range b.Variables {
		if v.Name == "i" {
			found = true
		}
	}
	if !found {
		t.Error("loop variable not auto-declared")
	}
}

func TestParseProcedures(t *testing.T) {
	src := `system S is
  module M is
    variable out1 : integer;
    behavior B is
      variable r : integer;
      procedure double(a : in integer; res : out integer) is
        variable tmp : integer;
      begin
        tmp := a * 2;
        res := tmp;
      end procedure;
    begin
      double(21, r);
      out1 := r;
    end behavior;
  end module;
end system;`
	sys, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	b := sys.FindBehavior("B")
	proc := b.FindProc("double")
	if proc == nil || len(proc.Params) != 2 || proc.Params[1].Mode != spec.ModeOut {
		t.Fatalf("procedure shape wrong: %v", proc)
	}
	if len(proc.Locals) != 1 {
		t.Errorf("locals = %d", len(proc.Locals))
	}
}

func TestParseRejectsArityMismatch(t *testing.T) {
	src := `system S is
  module M is
    behavior B is
      procedure p(a : in integer) is
      begin
        null;
      end procedure;
    begin
      p(1, 2);
    end behavior;
  end module;
end system;`
	if _, err := Parse(src); err == nil || !strings.Contains(err.Error(), "argument") {
		t.Fatalf("err = %v", err)
	}
}

func TestParseSlicesAndConcat(t *testing.T) {
	src := `system S is
  module M is
    behavior B is
      variable v : bit_vector(15 downto 0);
      variable hi : bit_vector(7 downto 0);
    begin
      hi := v(15 downto 8);
      v := hi & hi;
      v(3 downto 0) := "1111";
    end behavior;
  end module;
end system;`
	sys, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	b := sys.FindBehavior("B")
	if len(b.Body) != 3 {
		t.Fatal("body")
	}
	a0 := b.Body[0].(*spec.Assign)
	if _, ok := a0.RHS.(*spec.SliceExpr); !ok {
		t.Errorf("rhs not a slice: %T", a0.RHS)
	}
	a1 := b.Body[1].(*spec.Assign)
	bin, ok := a1.RHS.(*spec.Binary)
	if !ok || bin.Op != spec.OpConcat {
		t.Errorf("concat not parsed: %v", a1.RHS)
	}
}

func TestParseSliceOutOfRangeRejected(t *testing.T) {
	src := `system S is
  module M is
    behavior B is
      variable v : bit_vector(7 downto 0);
      variable w : bit_vector(7 downto 0);
    begin
      w := v(12 downto 5);
    end behavior;
  end module;
end system;`
	if _, err := Parse(src); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("err = %v", err)
	}
}

func TestParseConversions(t *testing.T) {
	src := `system S is
  module M is
    behavior B is
      variable v : bit_vector(7 downto 0);
      variable n : integer;
    begin
      n := conv_integer(v);
      v := conv_bit_vector(n, 8);
      n := conv_integer_signed(v);
    end behavior;
  end module;
end system;`
	sys, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	b := sys.FindBehavior("B")
	c0 := b.Body[0].(*spec.Assign).RHS.(*spec.Conv)
	if c0.Signed {
		t.Error("conv_integer should be unsigned")
	}
	c2 := b.Body[2].(*spec.Assign).RHS.(*spec.Conv)
	if !c2.Signed {
		t.Error("conv_integer_signed should be signed")
	}
}

func TestParseWaitForms(t *testing.T) {
	src := `system S is
  module M is
    signal REQ : bit;
    behavior B is
    begin
      wait on REQ;
      wait until REQ = '1';
      wait for 42;
      wait until REQ = '0' for 10;
    end behavior;
  end module;
end system;`
	sys, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	b := sys.FindBehavior("B")
	w0 := b.Body[0].(*spec.Wait)
	if len(w0.On) != 1 {
		t.Error("wait on wrong")
	}
	w3 := b.Body[3].(*spec.Wait)
	if w3.Until == nil || !w3.HasFor || w3.For != 10 {
		t.Error("combined wait wrong")
	}
}

func TestParseServerBehavior(t *testing.T) {
	src := `system S is
  module M is
    behavior Srv server is
    begin
      loop
        wait for 1;
      end loop;
    end behavior;
    behavior Fg is
    begin
      null;
    end behavior;
  end module;
end system;`
	sys, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !sys.FindBehavior("Srv").Server {
		t.Error("server flag not set")
	}
	if sys.FindBehavior("Fg").Server {
		t.Error("foreground flagged as server")
	}
}

func TestParseInitializers(t *testing.T) {
	src := `system S is
  module M is
    variable n : integer := 42;
    variable v : bit_vector(7 downto 0) := X"A5";
    behavior B is
    begin
      null;
    end behavior;
  end module;
end system;`
	sys, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	n := sys.FindVariable("n")
	if lit, ok := n.Init.(*spec.IntLit); !ok || lit.Value != 42 {
		t.Errorf("n init = %v", n.Init)
	}
	v := sys.FindVariable("v")
	if lit, ok := v.Init.(*spec.VecLit); !ok || lit.Value.String() != "10100101" {
		t.Errorf("v init = %v", v.Init)
	}
}

func TestHexLiteralElaboration(t *testing.T) {
	toks, err := lex(`X"0A"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokHexVecLit || toks[0].text != "0A" {
		t.Fatalf("hex token = %v", toks[0])
	}
	v, err := vecOf(&astVec{v: "0A", hex: true})
	if err != nil {
		t.Fatal(err)
	}
	if v.Width() != 8 || v.Uint64() != 0x0A {
		t.Fatalf("hex value = %s", v)
	}
}

func TestParseMixedIntVecComparison(t *testing.T) {
	src := `system S is
  module M is
    behavior B is
      variable v : bit_vector(7 downto 0);
      variable ok : boolean;
    begin
      if v = 32 then
        ok := true;
      end if;
    end behavior;
  end module;
end system;`
	sys, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	b := sys.FindBehavior("B")
	ifStmt := b.Body[0].(*spec.If)
	bin := ifStmt.Cond.(*spec.Binary)
	if _, ok := bin.Y.(*spec.Conv); !ok {
		t.Errorf("integer literal not harmonized to vector: %v", bin.Y)
	}
}

func TestParseErrorCoverage(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"missing-system", "module M is end module;", "system"},
		{"missing-is", "system S module M is end module; end system;", "is"},
		{"bad-channel-dir", `system S is
  module M is
    behavior B is begin null; end behavior;
  end module;
  module N is
    variable V : bit;
  end module;
  channel c : B touches V;
end system;`, "reads"},
		{"unknown-channel-behavior", `system S is
  module M is
    variable V : bit;
  end module;
  module N is
    behavior B is begin null; end behavior;
  end module;
  channel c : GHOST writes V;
end system;`, "unknown behavior"},
		{"trailing-junk", "system S is end system; extra", "trailing"},
		{"unterminated-if", `system S is
  module M is
    behavior B is begin
      if true then null;
    end behavior;
  end module;
end system;`, ""},
		{"empty-vector-range", `system S is
  module M is
    variable v : bit_vector(-1 downto 0);
  end module;
end system;`, "empty"},
		{"array-backwards", `system S is
  module M is
    variable v : array(7 to 0) of bit;
  end module;
end system;`, "empty array"},
		{"call-unknown-proc", `system S is
  module M is
    behavior B is begin
      ghostproc(1);
    end behavior;
  end module;
end system;`, "unknown"},
		{"slice-nonvector", `system S is
  module M is
    behavior B is
      variable n : integer;
      variable m : integer;
    begin
      n := m(3 downto 0);
    end behavior;
  end module;
end system;`, "non-bit_vector"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("accepted:\n%s", c.src)
			}
			if c.want != "" && !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestParseDeepExpressionPrecedence(t *testing.T) {
	src := `system S is
  module M is
    behavior B is
      variable a : integer;
      variable b : integer;
      variable c : integer;
      variable ok : boolean;
    begin
      a := 1 + 2 * 3;
      b := (1 + 2) * 3;
      ok := a < b and b > 0 or a = 7;
      c := a mod 4 - b / 2;
    end behavior;
  end module;
end system;`
	sys, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	beh := sys.FindBehavior("B")
	// a := 1 + (2*3): top op must be +.
	a0 := beh.Body[0].(*spec.Assign).RHS.(*spec.Binary)
	if a0.Op != spec.OpAdd {
		t.Errorf("precedence: top of 1+2*3 is %v", a0.Op)
	}
	if inner, ok := a0.Y.(*spec.Binary); !ok || inner.Op != spec.OpMul {
		t.Errorf("precedence: rhs of + is %v", a0.Y)
	}
	a1 := beh.Body[1].(*spec.Assign).RHS.(*spec.Binary)
	if a1.Op != spec.OpMul {
		t.Errorf("parens: top of (1+2)*3 is %v", a1.Op)
	}
	// or binds loosest: top of the boolean expr is or.
	a2 := beh.Body[2].(*spec.Assign).RHS.(*spec.Binary)
	if a2.Op != spec.OpOr {
		t.Errorf("boolean precedence: top is %v", a2.Op)
	}
}

func TestConstantTypeExpressions(t *testing.T) {
	// Width and range expressions computed at elaboration time.
	src := `system S is
  module M is
    variable v : bit_vector(2 * 8 - 1 downto 0);
    variable a : array(0 to 4 + 3) of bit;
    variable w : bit_vector((16 / 2) - 1 downto 0);
  end module;
end system;`
	sys, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if sys.FindVariable("v").Type.BitWidth() != 16 {
		t.Errorf("v width = %d", sys.FindVariable("v").Type.BitWidth())
	}
	if sys.FindVariable("a").Type.(spec.ArrayType).Length != 8 {
		t.Errorf("a length = %d", sys.FindVariable("a").Type.(spec.ArrayType).Length)
	}
	if sys.FindVariable("w").Type.BitWidth() != 8 {
		t.Errorf("w width = %d", sys.FindVariable("w").Type.BitWidth())
	}
}

func TestNegativeConstantInInit(t *testing.T) {
	src := `system S is
  module M is
    variable n : integer := -7;
  end module;
end system;`
	sys, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if lit, ok := sys.FindVariable("n").Init.(*spec.IntLit); !ok || lit.Value != -7 {
		t.Errorf("init = %v", sys.FindVariable("n").Init)
	}
}

func TestBitSelectOfVector(t *testing.T) {
	src := `system S is
  module M is
    behavior B is
      variable v : bit_vector(7 downto 0);
      variable b0 : bit;
    begin
      b0 := v(3);
    end behavior;
  end module;
end system;`
	sys, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a := sys.FindBehavior("B").Body[0].(*spec.Assign)
	sl, ok := a.RHS.(*spec.SliceExpr)
	if !ok || sl.Width != 1 {
		t.Fatalf("bit select = %v", a.RHS)
	}
}
