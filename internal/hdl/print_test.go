package hdl

import (
	"strings"
	"testing"

	"repro/internal/difftest"
	"repro/internal/protogen"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/workloads"
)

// TestPrintParseFixedPoint: printing a parsed system and re-parsing it
// must reach a fixed point (print(parse(print(x))) == print(x)).
func TestPrintParseFixedPoint(t *testing.T) {
	for _, file := range []string{"pq.sys", "dma.sys"} {
		sys, err := ParseFile(testdata(t, file))
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		once, err := Print(sys)
		if err != nil {
			t.Fatalf("%s: print: %v", file, err)
		}
		sys2, err := Parse(once)
		if err != nil {
			t.Fatalf("%s: reparse: %v\n%s", file, err, once)
		}
		twice, err := Print(sys2)
		if err != nil {
			t.Fatalf("%s: reprint: %v", file, err)
		}
		if once != twice {
			t.Errorf("%s: print not a fixed point:\n--- once ---\n%s\n--- twice ---\n%s", file, once, twice)
		}
	}
}

// TestPrintedSystemSimulatesIdentically round-trips randomly generated
// systems through the printer and parser and compares simulations —
// end-to-end verification that the textual form loses nothing.
func TestPrintedSystemSimulatesIdentically(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		orig := difftest.Generate(seed, difftest.DefaultGenConfig())
		src, err := Print(orig)
		if err != nil {
			t.Fatalf("seed %d: print: %v", seed, err)
		}
		reparsed, err := Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
		}

		run := func(sys *spec.System) *sim.Result {
			s, err := sim.New(sys, sim.Config{})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			res, err := s.Run()
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return res
		}
		a := run(orig)
		b := run(reparsed)
		if len(a.Finals) != len(b.Finals) {
			t.Fatalf("seed %d: final sets differ in size", seed)
		}
		for key, want := range a.Finals {
			if got, ok := b.Finals[key]; !ok || !got.Equal(want) {
				t.Errorf("seed %d: %s differs after text round trip", seed, key)
			}
		}
	}
}

// TestPrintRejectsRefinedSystems: record types and generated constructs
// are outside the input grammar.
func TestPrintRejectsRefinedSystems(t *testing.T) {
	sys, bus := workloads.PQ()
	if _, err := protogen.Generate(sys, bus, protogen.Config{Protocol: spec.FullHandshake}); err != nil {
		t.Fatal(err)
	}
	if _, err := Print(sys); err == nil {
		t.Fatal("refined system printed without error")
	}
}

func TestPrintRejectsArrayInitializers(t *testing.T) {
	sys := workloads.AnsweringMachine(1) // GREETING has an InitArray
	if _, err := Print(sys); err == nil || !strings.Contains(err.Error(), "initializer") {
		t.Fatalf("err = %v", err)
	}
}
