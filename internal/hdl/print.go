package hdl

import (
	"fmt"
	"strings"

	"repro/internal/spec"
)

// Print renders a specification system back into the textual input
// language, such that Parse(Print(sys)) reproduces an equivalent
// system. Only *abstract* (pre-refinement) systems are printable: the
// input grammar has no record types or generated bus constructs, so
// refined systems must be emitted with internal/vhdlgen instead. Print
// returns an error when it meets a construct the grammar cannot
// express.
func Print(sys *spec.System) (string, error) {
	p := &printer{}
	p.printf("system %s is", sys.Name)
	p.push()
	for _, m := range sys.Modules {
		p.printf("module %s is", m.Name)
		p.push()
		for _, v := range m.Variables {
			if err := p.varDecl(v); err != nil {
				return "", err
			}
		}
		for _, b := range m.Behaviors {
			if err := p.behavior(b); err != nil {
				return "", err
			}
		}
		p.pop()
		p.printf("end module;")
	}
	for _, c := range sys.Channels {
		dir := "reads"
		if c.Dir == spec.Write {
			dir = "writes"
		}
		p.printf("channel %s : %s %s %s;", c.Name, c.Accessor.Name, dir, c.Var.Name)
	}
	p.pop()
	p.printf("end system;")
	if p.err != nil {
		return "", p.err
	}
	return p.b.String(), nil
}

type printer struct {
	b      strings.Builder
	indent string
	err    error
}

func (p *printer) push() { p.indent += "  " }
func (p *printer) pop()  { p.indent = p.indent[:len(p.indent)-2] }

func (p *printer) printf(format string, args ...any) {
	p.b.WriteString(p.indent)
	fmt.Fprintf(&p.b, format, args...)
	p.b.WriteByte('\n')
}

func (p *printer) fail(format string, args ...any) {
	if p.err == nil {
		p.err = fmt.Errorf("hdl: unprintable system: "+format, args...)
	}
}

func (p *printer) varDecl(v *spec.Variable) error {
	t, err := typeText(v.Type)
	if err != nil {
		return err
	}
	kw := "variable"
	if v.Kind == spec.KindSignal {
		kw = "signal"
	}
	init := ""
	if v.Init != nil {
		init = " := " + p.expr(v.Init)
	}
	if len(v.InitArray) > 0 {
		return fmt.Errorf("hdl: unprintable system: array initializer on %s has no textual form", v.Name)
	}
	p.printf("%s %s : %s%s;", kw, v.Name, t, init)
	return nil
}

func typeText(t spec.Type) (string, error) {
	switch t := t.(type) {
	case spec.BitType:
		return "bit", nil
	case spec.BoolType:
		return "boolean", nil
	case spec.IntegerType:
		if t.Width != 32 {
			return "", fmt.Errorf("hdl: unprintable system: integer<%d> has no textual form", t.Width)
		}
		return "integer", nil
	case spec.BitVectorType:
		return fmt.Sprintf("bit_vector(%d downto 0)", t.Width-1), nil
	case spec.ArrayType:
		elem, err := typeText(t.Elem)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("array(%d to %d) of %s", t.Lo, t.Lo+t.Length-1, elem), nil
	}
	return "", fmt.Errorf("hdl: unprintable system: type %s has no textual form", t)
}

func (p *printer) behavior(b *spec.Behavior) error {
	server := ""
	if b.Server {
		server = " server"
	}
	p.printf("behavior %s%s is", b.Name, server)
	p.push()
	for _, v := range b.Variables {
		if err := p.varDecl(v); err != nil {
			return err
		}
	}
	for _, proc := range b.Procedures {
		if err := p.procedure(proc); err != nil {
			return err
		}
	}
	p.pop()
	p.printf("begin")
	p.push()
	p.stmts(b.Body)
	p.pop()
	p.printf("end behavior;")
	return p.err
}

func (p *printer) procedure(proc *spec.Procedure) error {
	params := make([]string, len(proc.Params))
	for i, prm := range proc.Params {
		t, err := typeText(prm.Var.Type)
		if err != nil {
			return err
		}
		params[i] = fmt.Sprintf("%s : %s %s", prm.Var.Name, prm.Mode, t)
	}
	p.printf("procedure %s(%s) is", proc.Name, strings.Join(params, "; "))
	p.push()
	for _, l := range proc.Locals {
		if err := p.varDecl(l); err != nil {
			return err
		}
	}
	p.pop()
	p.printf("begin")
	p.push()
	p.stmts(proc.Body)
	p.pop()
	p.printf("end procedure;")
	return p.err
}

func (p *printer) stmts(stmts []spec.Stmt) {
	if len(stmts) == 0 {
		p.printf("null;")
		return
	}
	for _, s := range stmts {
		p.stmt(s)
	}
}

func (p *printer) stmt(s spec.Stmt) {
	switch s := s.(type) {
	case *spec.Assign:
		op := ":="
		if s.Kind == spec.AssignSignal {
			op = "<="
		}
		p.printf("%s %s %s;", p.expr(s.LHS), op, p.expr(s.RHS))
	case *spec.If:
		p.printf("if %s then", p.expr(s.Cond))
		p.push()
		p.stmts(s.Then)
		p.pop()
		for _, arm := range s.Elifs {
			p.printf("elsif %s then", p.expr(arm.Cond))
			p.push()
			p.stmts(arm.Body)
			p.pop()
		}
		if len(s.Else) > 0 {
			p.printf("else")
			p.push()
			p.stmts(s.Else)
			p.pop()
		}
		p.printf("end if;")
	case *spec.For:
		p.printf("for %s in %s to %s loop", s.Var.Name, p.expr(s.From), p.expr(s.To))
		p.push()
		p.stmts(s.Body)
		p.pop()
		p.printf("end loop;")
	case *spec.While:
		p.printf("while %s loop", p.expr(s.Cond))
		p.push()
		p.stmts(s.Body)
		p.pop()
		p.printf("end loop;")
	case *spec.Loop:
		p.printf("loop")
		p.push()
		p.stmts(s.Body)
		p.pop()
		p.printf("end loop;")
	case *spec.Exit:
		p.printf("exit;")
	case *spec.Return:
		p.printf("return;")
	case *spec.Null:
		p.printf("null;")
	case *spec.Wait:
		var parts []string
		if len(s.On) > 0 {
			names := make([]string, len(s.On))
			for i, v := range s.On {
				names[i] = v.Name
			}
			parts = append(parts, "on "+strings.Join(names, ", "))
		}
		if s.Until != nil {
			parts = append(parts, "until "+p.expr(s.Until))
		}
		if s.HasFor {
			parts = append(parts, fmt.Sprintf("for %d", s.For))
		}
		if len(parts) == 0 {
			p.fail("bare wait has no textual form")
			return
		}
		p.printf("wait %s;", strings.Join(parts, " "))
	case *spec.Call:
		args := make([]string, len(s.Args))
		for i, a := range s.Args {
			args[i] = p.expr(a)
		}
		p.printf("%s(%s);", s.Proc.Name, strings.Join(args, ", "))
	default:
		p.fail("statement %T has no textual form", s)
	}
}

var opText = map[spec.Op]string{
	spec.OpAdd: "+", spec.OpSub: "-", spec.OpMul: "*", spec.OpDiv: "/",
	spec.OpMod: "mod", spec.OpEq: "=", spec.OpNeq: "/=",
	spec.OpLt: "<", spec.OpLe: "<=", spec.OpGt: ">", spec.OpGe: ">=",
	spec.OpAnd: "and", spec.OpOr: "or", spec.OpXor: "xor",
	spec.OpConcat: "&", spec.OpShl: "sll", spec.OpShr: "srl",
}

func (p *printer) expr(e spec.Expr) string {
	switch e := e.(type) {
	case *spec.IntLit:
		if e.Value < 0 {
			return fmt.Sprintf("(-%d)", -e.Value)
		}
		return fmt.Sprintf("%d", e.Value)
	case *spec.VecLit:
		if e.Value.Width() == 1 {
			return fmt.Sprintf("'%s'", e.Value)
		}
		return fmt.Sprintf("%q", e.Value.String())
	case *spec.BoolLit:
		if e.Value {
			return "true"
		}
		return "false"
	case *spec.VarRef:
		return e.Var.Name
	case *spec.Index:
		return fmt.Sprintf("%s(%s)", p.expr(e.Arr), p.expr(e.Index))
	case *spec.SliceExpr:
		return fmt.Sprintf("%s(%s downto %s)", p.expr(e.X), p.expr(e.Hi), p.expr(e.Lo))
	case *spec.Binary:
		op, ok := opText[e.Op]
		if !ok {
			p.fail("operator %v has no textual form", e.Op)
			return "?"
		}
		return fmt.Sprintf("(%s %s %s)", p.expr(e.X), op, p.expr(e.Y))
	case *spec.Unary:
		if e.Op == spec.OpNot {
			return fmt.Sprintf("(not %s)", p.expr(e.X))
		}
		return fmt.Sprintf("(-%s)", p.expr(e.X))
	case *spec.Conv:
		switch t := e.To.(type) {
		case spec.IntegerType:
			if e.Signed {
				return fmt.Sprintf("conv_integer_signed(%s)", p.expr(e.X))
			}
			return fmt.Sprintf("conv_integer(%s)", p.expr(e.X))
		case spec.BitVectorType:
			return fmt.Sprintf("conv_bit_vector(%s, %d)", p.expr(e.X), t.Width)
		case spec.BitType:
			return fmt.Sprintf("conv_bit_vector(%s, 1)", p.expr(e.X))
		}
		p.fail("conversion to %s has no textual form", e.To)
		return "?"
	case *spec.FieldRef:
		p.fail("record field access has no textual form (refined system?)")
		return "?"
	}
	p.fail("expression %T has no textual form", e)
	return "?"
}
