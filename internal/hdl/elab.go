package hdl

import (
	"fmt"
	"os"

	"repro/internal/bits"
	"repro/internal/spec"
)

// Parse parses and elaborates a source text into a specification system.
func Parse(src string) (*spec.System, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	ast, err := p.parseSystem()
	if err != nil {
		return nil, err
	}
	return elaborate(ast)
}

// ParseFile reads and parses a source file.
func ParseFile(path string) (*spec.System, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sys, err := Parse(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s:%w", path, err)
	}
	return sys, nil
}

// elaborator resolves names and types, producing spec IR.
type elaborator struct {
	sys *spec.System
	// moduleVars maps module-level variable names (globally visible, as
	// the paper's processes reference remote variables directly).
	moduleVars map[string]*spec.Variable
	behaviors  map[string]*spec.Behavior
}

// scope is a lexical scope for behavior/procedure elaboration.
type scope struct {
	vars   map[string]*spec.Variable
	parent *scope
	e      *elaborator
	beh    *spec.Behavior
	proc   *spec.Procedure
}

func (s *scope) lookup(name string) *spec.Variable {
	for sc := s; sc != nil; sc = sc.parent {
		if v, ok := sc.vars[name]; ok {
			return v
		}
	}
	return s.e.moduleVars[name]
}

func (s *scope) child() *scope {
	return &scope{vars: make(map[string]*spec.Variable), parent: s, e: s.e, beh: s.beh, proc: s.proc}
}

func elaborate(ast *astSystem) (*spec.System, error) {
	e := &elaborator{
		sys:        spec.NewSystem(ast.name),
		moduleVars: make(map[string]*spec.Variable),
		behaviors:  make(map[string]*spec.Behavior),
	}

	// Pass 1: modules, variables, behavior shells with locals and
	// procedure signatures, so bodies can reference anything declared
	// anywhere.
	type behWork struct {
		astB  *astBehavior
		beh   *spec.Behavior
		scope *scope
		procs []*astProc
	}
	var work []behWork
	for _, am := range ast.modules {
		m := e.sys.AddModule(am.name)
		for _, av := range am.vars {
			t, err := e.typeOf(av.typ)
			if err != nil {
				return nil, err
			}
			if _, dup := e.moduleVars[av.name]; dup {
				return nil, errAt(av.pos, "duplicate module variable %q", av.name)
			}
			v := spec.NewVar(av.name, t)
			if av.isSignal {
				v.Kind = spec.KindSignal
			}
			m.AddVariable(v)
			e.moduleVars[av.name] = v
			if av.init != nil {
				init, err := e.constExpr(av.init, t)
				if err != nil {
					return nil, err
				}
				v.Init = init
			}
		}
		for _, ab := range am.behaviors {
			if _, dup := e.behaviors[ab.name]; dup {
				return nil, errAt(ab.pos, "duplicate behavior %q", ab.name)
			}
			b := spec.NewBehavior(ab.name)
			b.Server = ab.server
			m.AddBehavior(b)
			e.behaviors[ab.name] = b
			sc := &scope{vars: make(map[string]*spec.Variable), e: e, beh: b}
			for _, av := range ab.vars {
				t, err := e.typeOf(av.typ)
				if err != nil {
					return nil, err
				}
				if _, dup := sc.vars[av.name]; dup {
					return nil, errAt(av.pos, "duplicate variable %q in behavior %s", av.name, ab.name)
				}
				v := b.AddVar(av.name, t)
				if av.isSignal {
					v.Kind = spec.KindSignal
				}
				if av.init != nil {
					init, err := e.constExpr(av.init, t)
					if err != nil {
						return nil, err
					}
					v.Init = init
				}
				sc.vars[av.name] = v
			}
			for _, ap := range ab.procs {
				proc := &spec.Procedure{Name: ap.name}
				for _, prm := range ap.params {
					t, err := e.typeOf(prm.typ)
					if err != nil {
						return nil, err
					}
					mode := spec.ModeIn
					switch prm.mode {
					case "out":
						mode = spec.ModeOut
					case "inout":
						mode = spec.ModeInOut
					}
					proc.Params = append(proc.Params, spec.Param{Var: spec.NewVar(prm.name, t), Mode: mode})
				}
				for _, av := range ap.vars {
					t, err := e.typeOf(av.typ)
					if err != nil {
						return nil, err
					}
					proc.Locals = append(proc.Locals, spec.NewVar(av.name, t))
				}
				b.AddProc(proc)
			}
			work = append(work, behWork{astB: ab, beh: b, scope: sc, procs: ab.procs})
		}
	}

	// Pass 2: bodies.
	for _, w := range work {
		for i, ap := range w.procs {
			proc := w.beh.Procedures[i]
			psc := w.scope.child()
			psc.proc = proc
			for _, prm := range proc.Params {
				psc.vars[prm.Var.Name] = prm.Var
			}
			for _, l := range proc.Locals {
				psc.vars[l.Name] = l
			}
			body, err := e.stmts(psc, ap.body)
			if err != nil {
				return nil, err
			}
			proc.Body = body
		}
		body, err := e.stmts(w.scope, w.astB.body)
		if err != nil {
			return nil, err
		}
		w.beh.Body = body
	}

	// Channels.
	for _, ac := range ast.channels {
		b := e.behaviors[ac.behavior]
		if b == nil {
			return nil, errAt(ac.pos, "channel %s: unknown behavior %q", ac.name, ac.behavior)
		}
		v := e.moduleVars[ac.variable]
		if v == nil {
			return nil, errAt(ac.pos, "channel %s: unknown module variable %q", ac.name, ac.variable)
		}
		dir := spec.Read
		if ac.write {
			dir = spec.Write
		}
		e.sys.AddChannel(&spec.Channel{Name: ac.name, Accessor: b, Var: v, Dir: dir})
	}

	if errs := e.sys.Validate(); len(errs) > 0 {
		return nil, fmt.Errorf("elaborated system invalid: %w", errs[0])
	}
	return e.sys, nil
}

func (e *elaborator) typeOf(t *astType) (spec.Type, error) {
	switch t.kind {
	case "bit":
		return spec.Bit, nil
	case "boolean":
		return spec.Bool, nil
	case "integer":
		return spec.Integer, nil
	case "bit_vector":
		hi, err := e.constInt(t.hi)
		if err != nil {
			return nil, err
		}
		lo, err := e.constInt(t.lo)
		if err != nil {
			return nil, err
		}
		if lo != 0 {
			return nil, errAt(t.pos, "bit_vector must end at 0 (got %d downto %d)", hi, lo)
		}
		if hi < lo {
			return nil, errAt(t.pos, "empty bit_vector range (%d downto %d)", hi, lo)
		}
		return spec.BitVector(int(hi + 1)), nil
	case "array":
		lo, err := e.constInt(t.aLo)
		if err != nil {
			return nil, err
		}
		hi, err := e.constInt(t.aHi)
		if err != nil {
			return nil, err
		}
		if hi < lo {
			return nil, errAt(t.pos, "empty array range (%d to %d)", lo, hi)
		}
		elem, err := e.typeOf(t.elem)
		if err != nil {
			return nil, err
		}
		return spec.ArrayType{Length: int(hi - lo + 1), Lo: int(lo), Elem: elem}, nil
	}
	return nil, errAt(t.pos, "unknown type %q", t.kind)
}

// constInt evaluates a compile-time integer expression (literals and
// arithmetic).
func (e *elaborator) constInt(x astExpr) (int64, error) {
	switch x := x.(type) {
	case *astNum:
		return x.v, nil
	case *astBinary:
		a, err := e.constInt(x.x)
		if err != nil {
			return 0, err
		}
		b, err := e.constInt(x.y)
		if err != nil {
			return 0, err
		}
		switch x.op {
		case "+":
			return a + b, nil
		case "-":
			return a - b, nil
		case "*":
			return a * b, nil
		case "/":
			if b == 0 {
				return 0, errAt(x.tok, "division by zero in constant")
			}
			return a / b, nil
		}
	case *astUnary:
		if x.op == "-" {
			v, err := e.constInt(x.x)
			return -v, err
		}
	}
	return 0, errAt(x.pos(), "expected constant integer expression")
}

// constExpr elaborates a constant initializer against the declared type.
func (e *elaborator) constExpr(x astExpr, t spec.Type) (spec.Expr, error) {
	switch x := x.(type) {
	case *astNum:
		if bt, ok := t.(spec.BitVectorType); ok {
			return spec.Vec(bits.FromInt(x.v, bt.Width)), nil
		}
		return spec.Int(x.v), nil
	case *astVec:
		v, err := vecOf(x)
		if err != nil {
			return nil, err
		}
		return spec.Vec(v), nil
	case *astBit:
		return spec.VecString(x.v), nil
	case *astBool:
		if x.v {
			return spec.True, nil
		}
		return spec.False, nil
	}
	v, err := e.constInt(x)
	if err != nil {
		return nil, errAt(x.pos(), "initializer must be constant")
	}
	return spec.Int(v), nil
}

func vecOf(x *astVec) (bits.Vector, error) {
	if !x.hex {
		return bits.Parse(x.v)
	}
	v := bits.New(4 * len(x.v))
	for i, c := range x.v {
		var nib uint64
		switch {
		case c >= '0' && c <= '9':
			nib = uint64(c - '0')
		case c >= 'A' && c <= 'F':
			nib = uint64(c-'A') + 10
		case c >= 'a' && c <= 'f':
			nib = uint64(c-'a') + 10
		default:
			return bits.Vector{}, fmt.Errorf("invalid hex digit %q", c)
		}
		pos := (len(x.v) - 1 - i) * 4
		for b := 0; b < 4; b++ {
			if nib&(1<<b) != 0 {
				v = v.SetBit(pos+b, true)
			}
		}
	}
	return v, nil
}

// ---- statements ----

func (e *elaborator) stmts(sc *scope, in []astStmt) ([]spec.Stmt, error) {
	var out []spec.Stmt
	for _, s := range in {
		st, err := e.stmt(sc, s)
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}

func (e *elaborator) stmt(sc *scope, s astStmt) (spec.Stmt, error) {
	switch s := s.(type) {
	case *astAssign:
		lhs, err := e.expr(sc, s.lhs)
		if err != nil {
			return nil, err
		}
		if spec.BaseVar(lhs) == nil {
			return nil, errAt(s.tok, "assignment target is not a variable")
		}
		rhs, err := e.expr(sc, s.rhs)
		if err != nil {
			return nil, err
		}
		rhs = coerceTo(rhs, lhs.Type())
		kind := spec.AssignVariable
		if s.signal {
			kind = spec.AssignSignal
		}
		return &spec.Assign{Kind: kind, LHS: lhs, RHS: rhs}, nil
	case *astIf:
		cond, err := e.boolExpr(sc, s.cond)
		if err != nil {
			return nil, err
		}
		then, err := e.stmts(sc, s.then)
		if err != nil {
			return nil, err
		}
		st := &spec.If{Cond: cond, Then: then}
		for _, arm := range s.elifs {
			c, err := e.boolExpr(sc, arm.cond)
			if err != nil {
				return nil, err
			}
			body, err := e.stmts(sc, arm.body)
			if err != nil {
				return nil, err
			}
			st.Elifs = append(st.Elifs, spec.ElseIf{Cond: c, Body: body})
		}
		if s.els != nil {
			body, err := e.stmts(sc, s.els)
			if err != nil {
				return nil, err
			}
			st.Else = body
		}
		return st, nil
	case *astFor:
		from, err := e.expr(sc, s.from)
		if err != nil {
			return nil, err
		}
		to, err := e.expr(sc, s.to)
		if err != nil {
			return nil, err
		}
		// The loop variable is implicitly a behavior-local integer if
		// not already declared.
		v := sc.lookup(s.v)
		if v == nil {
			v = sc.beh.AddVar(s.v, spec.Integer)
			sc.vars[s.v] = v
		}
		body, err := e.stmts(sc, s.body)
		if err != nil {
			return nil, err
		}
		return &spec.For{Var: v, From: from, To: to, Body: body}, nil
	case *astWhile:
		cond, err := e.boolExpr(sc, s.cond)
		if err != nil {
			return nil, err
		}
		body, err := e.stmts(sc, s.body)
		if err != nil {
			return nil, err
		}
		return &spec.While{Cond: cond, Body: body}, nil
	case *astLoop:
		body, err := e.stmts(sc, s.body)
		if err != nil {
			return nil, err
		}
		return &spec.Loop{Body: body}, nil
	case *astExit:
		return &spec.Exit{}, nil
	case *astRet:
		return &spec.Return{}, nil
	case *astNull:
		return &spec.Null{}, nil
	case *astWait:
		w := &spec.Wait{}
		for _, n := range s.on {
			v := sc.lookup(n.text)
			if v == nil {
				return nil, errAt(n, "wait on unknown name %q", n.text)
			}
			w.On = append(w.On, v)
		}
		if s.until != nil {
			c, err := e.boolExpr(sc, s.until)
			if err != nil {
				return nil, err
			}
			w.Until = c
		}
		if s.dur != nil {
			d, err := e.constInt(s.dur)
			if err != nil {
				return nil, err
			}
			w.For = d
			w.HasFor = true
		}
		return w, nil
	case *astCall:
		proc := sc.beh.FindProc(s.name)
		if proc == nil {
			return nil, errAt(s.tok, "unknown procedure %q in behavior %s", s.name, sc.beh.Name)
		}
		if len(s.args) != len(proc.Params) {
			return nil, errAt(s.tok, "procedure %s takes %d arguments, got %d",
				s.name, len(proc.Params), len(s.args))
		}
		args := make([]spec.Expr, len(s.args))
		for i, a := range s.args {
			x, err := e.expr(sc, a)
			if err != nil {
				return nil, err
			}
			if proc.Params[i].Mode == spec.ModeIn {
				x = coerceTo(x, proc.Params[i].Var.Type)
			} else if spec.BaseVar(x) == nil {
				return nil, errAt(a.pos(), "argument %d of %s must be a variable (%s parameter)",
					i+1, s.name, proc.Params[i].Mode)
			}
			args[i] = x
		}
		return spec.CallProc(proc, args...), nil
	}
	return nil, fmt.Errorf("hdl: cannot elaborate %T", s)
}

// ---- expressions ----

func (e *elaborator) boolExpr(sc *scope, x astExpr) (spec.Expr, error) {
	c, err := e.expr(sc, x)
	if err != nil {
		return nil, err
	}
	return c, nil
}

var binOps = map[string]spec.Op{
	"+": spec.OpAdd, "-": spec.OpSub, "*": spec.OpMul, "/": spec.OpDiv,
	"mod": spec.OpMod, "=": spec.OpEq, "/=": spec.OpNeq,
	"<": spec.OpLt, "<=": spec.OpLe, ">": spec.OpGt, ">=": spec.OpGe,
	"and": spec.OpAnd, "or": spec.OpOr, "xor": spec.OpXor, "&": spec.OpConcat,
	"sll": spec.OpShl, "srl": spec.OpShr,
}

func (e *elaborator) expr(sc *scope, x astExpr) (spec.Expr, error) {
	switch x := x.(type) {
	case *astNum:
		return spec.Int(x.v), nil
	case *astBit:
		return spec.VecString(x.v), nil
	case *astVec:
		v, err := vecOf(x)
		if err != nil {
			return nil, errAt(x.tok, "%v", err)
		}
		return spec.Vec(v), nil
	case *astBool:
		if x.v {
			return spec.True, nil
		}
		return spec.False, nil
	case *astName:
		v := sc.lookup(x.tok.text)
		if v == nil {
			return nil, errAt(x.tok, "unknown name %q", x.tok.text)
		}
		return spec.Ref(v), nil
	case *astField:
		base, err := e.expr(sc, x.x)
		if err != nil {
			return nil, err
		}
		r, ok := base.Type().(spec.RecordType)
		if !ok {
			return nil, errAt(x.tok, "field access on non-record value")
		}
		if r.FieldType(x.field) == nil {
			return nil, errAt(x.tok, "no field %q on record %s", x.field, r.Name)
		}
		return spec.FieldOf(base, x.field), nil
	case *astUnary:
		sub, err := e.expr(sc, x.x)
		if err != nil {
			return nil, err
		}
		if x.op == "not" {
			return spec.Not(sub), nil
		}
		return spec.Neg(sub), nil
	case *astBinary:
		a, err := e.expr(sc, x.x)
		if err != nil {
			return nil, err
		}
		b, err := e.expr(sc, x.y)
		if err != nil {
			return nil, err
		}
		op, ok := binOps[x.op]
		if !ok {
			return nil, errAt(x.tok, "unsupported operator %q", x.op)
		}
		a, b = harmonize(op, a, b)
		return spec.Bin(op, a, b), nil
	case *astApply:
		return e.apply(sc, x)
	}
	return nil, fmt.Errorf("hdl: cannot elaborate expression %T", x)
}

// apply disambiguates name(args): slice, array index, or a builtin
// conversion (conv_integer, conv_bit_vector).
func (e *elaborator) apply(sc *scope, x *astApply) (spec.Expr, error) {
	// Builtin conversions.
	if name, ok := x.fn.(*astName); ok && x.hi == nil {
		switch name.tok.text {
		case "conv_integer":
			if len(x.args) != 1 {
				return nil, errAt(name.tok, "conv_integer takes one argument")
			}
			a, err := e.expr(sc, x.args[0])
			if err != nil {
				return nil, err
			}
			return spec.ToInt(a), nil
		case "conv_integer_signed":
			if len(x.args) != 1 {
				return nil, errAt(name.tok, "conv_integer_signed takes one argument")
			}
			a, err := e.expr(sc, x.args[0])
			if err != nil {
				return nil, err
			}
			return spec.ToIntSigned(a), nil
		case "conv_bit_vector":
			if len(x.args) != 2 {
				return nil, errAt(name.tok, "conv_bit_vector takes (value, width)")
			}
			a, err := e.expr(sc, x.args[0])
			if err != nil {
				return nil, err
			}
			w, err := e.constInt(x.args[1])
			if err != nil {
				return nil, err
			}
			return spec.ToVec(a, int(w)), nil
		}
	}

	base, err := e.expr(sc, x.fn)
	if err != nil {
		return nil, err
	}
	// Slice form.
	if x.hi != nil {
		hi, err := e.constInt(x.hi)
		if err != nil {
			return nil, errAt(x.hi.pos(), "slice bounds must be constant")
		}
		lo, err := e.constInt(x.lo)
		if err != nil {
			return nil, errAt(x.lo.pos(), "slice bounds must be constant")
		}
		bt, ok := base.Type().(spec.BitVectorType)
		if !ok {
			return nil, errAt(x.fn.pos(), "slicing a non-bit_vector value")
		}
		if lo < 0 || hi < lo || int(hi) >= bt.Width {
			return nil, errAt(x.fn.pos(), "slice (%d downto %d) out of range for width %d", hi, lo, bt.Width)
		}
		return spec.SliceBits(base, int(hi), int(lo)), nil
	}
	// Index form.
	if _, ok := base.Type().(spec.ArrayType); ok {
		if len(x.args) != 1 {
			return nil, errAt(x.fn.pos(), "array index takes one subscript")
		}
		idx, err := e.expr(sc, x.args[0])
		if err != nil {
			return nil, err
		}
		if _, isVec := idx.Type().(spec.BitVectorType); isVec {
			idx = spec.ToInt(idx)
		}
		return spec.At(base, idx), nil
	}
	// Single-bit select of a vector: v(i) with constant i.
	if bt, ok := base.Type().(spec.BitVectorType); ok && len(x.args) == 1 {
		i, err := e.constInt(x.args[0])
		if err == nil {
			if i < 0 || int(i) >= bt.Width {
				return nil, errAt(x.fn.pos(), "bit index %d out of range for width %d", i, bt.Width)
			}
			return spec.SliceBits(base, int(i), int(i)), nil
		}
	}
	return nil, errAt(x.fn.pos(), "cannot apply arguments to a %s value", base.Type())
}

// coerceTo inserts a conversion so rhs matches the target type.
func coerceTo(rhs spec.Expr, target spec.Type) spec.Expr {
	switch t := target.(type) {
	case spec.BitVectorType:
		if _, ok := rhs.Type().(spec.IntegerType); ok {
			return spec.ToVec(rhs, t.Width)
		}
	case spec.BitType:
		if _, ok := rhs.Type().(spec.IntegerType); ok {
			return spec.ToVec(rhs, 1)
		}
	case spec.IntegerType:
		if _, ok := rhs.Type().(spec.BitVectorType); ok {
			return spec.ToIntSigned(rhs)
		}
	}
	return rhs
}

// harmonize coerces mixed integer/bit-vector operands: the integer side
// is converted to the vector side's width (except for shifts, whose
// right operand stays integral).
func harmonize(op spec.Op, a, b spec.Expr) (spec.Expr, spec.Expr) {
	if op == spec.OpShl || op == spec.OpShr || op == spec.OpConcat {
		return a, b
	}
	av, aIsVec := a.Type().(spec.BitVectorType)
	bv, bIsVec := b.Type().(spec.BitVectorType)
	_, aIsInt := a.Type().(spec.IntegerType)
	_, bIsInt := b.Type().(spec.IntegerType)
	switch {
	case aIsVec && bIsInt:
		return a, spec.ToVec(b, av.Width)
	case aIsInt && bIsVec:
		return spec.ToVec(a, bv.Width), b
	}
	return a, b
}
