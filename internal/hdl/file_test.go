package hdl

import (
	"path/filepath"
	"testing"
)

func testdata(t *testing.T, name string) string {
	t.Helper()
	p, err := filepath.Abs(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseFilePQ(t *testing.T) {
	sys, err := ParseFile(testdata(t, "pq.sys"))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Name != "PQ" || len(sys.Channels) != 4 {
		t.Fatalf("parsed shape wrong: %s, %d channels", sys.Name, len(sys.Channels))
	}
}

func TestParseFileDMA(t *testing.T) {
	sys, err := ParseFile(testdata(t, "dma.sys"))
	if err != nil {
		t.Fatal(err)
	}
	eng := sys.FindBehavior("ENGINE")
	if eng == nil || eng.FindProc("step") == nil {
		t.Fatal("ENGINE or its procedure missing")
	}
	if len(eng.FindProc("step").Params) != 2 {
		t.Fatal("procedure params wrong")
	}
	if sys.FindVariable("SRC") == nil {
		t.Fatal("SRC missing")
	}
}

func TestParseFileMissing(t *testing.T) {
	if _, err := ParseFile(testdata(t, "nope.sys")); err == nil {
		t.Fatal("missing file accepted")
	}
}
