package hdl

import (
	"testing"

	"repro/internal/spec"
)

// TestParsedSpecHashesStably pins the serve-layer cache key on a real
// input: parsing testdata/pqsolo.sys twice yields two structurally
// independent systems with identical content digests, and cloning the
// parsed system preserves the digest too. A regression here silently
// turns every daemon cache lookup into a miss.
func TestParsedSpecHashesStably(t *testing.T) {
	const path = "../../testdata/pqsolo.sys"
	a, err := ParseFile(path)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	b, err := ParseFile(path)
	if err != nil {
		t.Fatalf("re-parse %s: %v", path, err)
	}
	ha, hb := spec.Hash(a), spec.Hash(b)
	if ha != hb {
		t.Fatalf("two parses of the same file hash differently:\n  %s\n  %s", ha, hb)
	}
	if hc := spec.Hash(spec.Clone(a)); hc != ha {
		t.Fatalf("clone of parsed system hashes differently: %s vs %s", hc, ha)
	}
}
