package hdl

import "fmt"

// ---- AST ----

type astSystem struct {
	name     string
	modules  []*astModule
	channels []*astChannel
}

type astModule struct {
	name      string
	vars      []*astVar
	behaviors []*astBehavior
}

type astVar struct {
	pos      token
	name     string
	isSignal bool
	typ      *astType
	init     astExpr
}

type astBehavior struct {
	pos    token
	name   string
	server bool
	vars   []*astVar
	procs  []*astProc
	body   []astStmt
}

type astProc struct {
	pos    token
	name   string
	params []astParam
	vars   []*astVar
	body   []astStmt
}

type astParam struct {
	pos  token
	name string
	mode string // "in", "out", "inout"
	typ  *astType
}

type astChannel struct {
	pos      token
	name     string
	behavior string
	variable string
	write    bool
}

// astType is a parsed type: kind is one of bit, boolean, integer,
// bit_vector, array.
type astType struct {
	pos    token
	kind   string
	hi, lo astExpr  // bit_vector bounds (hi downto lo)
	aLo    astExpr  // array lower bound
	aHi    astExpr  // array upper bound
	elem   *astType // array element
}

// astExpr is an expression node.
type astExpr interface{ pos() token }

type astNum struct {
	tok token
	v   int64
}

type astBit struct {
	tok token
	v   string
}

type astVec struct {
	tok token
	v   string // binary digits
	hex bool
}

type astBool struct {
	tok token
	v   bool
}

type astName struct{ tok token }

// astApply is name-or-expression applied to parenthesized arguments:
// array index, slice (downto form) or procedure/conversion call; the
// elaborator disambiguates.
type astApply struct {
	fn     astExpr
	args   []astExpr
	hi, lo astExpr // non-nil for the slice form
}

type astField struct {
	x     astExpr
	field string
	tok   token
}

type astBinary struct {
	op   string
	x, y astExpr
	tok  token
}

type astUnary struct {
	op  string
	x   astExpr
	tok token
}

func (e *astNum) pos() token    { return e.tok }
func (e *astBit) pos() token    { return e.tok }
func (e *astVec) pos() token    { return e.tok }
func (e *astBool) pos() token   { return e.tok }
func (e *astName) pos() token   { return e.tok }
func (e *astApply) pos() token  { return e.fn.pos() }
func (e *astField) pos() token  { return e.tok }
func (e *astBinary) pos() token { return e.tok }
func (e *astUnary) pos() token  { return e.tok }

// astStmt is a statement node.
type astStmt interface{ stmtPos() token }

type astAssign struct {
	tok      token
	lhs, rhs astExpr
	signal   bool // "<=" spelling
}

type astIf struct {
	tok   token
	cond  astExpr
	then  []astStmt
	elifs []astElif
	els   []astStmt
}

type astElif struct {
	cond astExpr
	body []astStmt
}

type astFor struct {
	tok      token
	v        string
	from, to astExpr
	body     []astStmt
}

type astWhile struct {
	tok  token
	cond astExpr
	body []astStmt
}

type astLoop struct {
	tok  token
	body []astStmt
}

type astExit struct{ tok token }
type astRet struct{ tok token }
type astNull struct{ tok token }

type astWait struct {
	tok   token
	on    []token // signal names
	until astExpr
	dur   astExpr
}

type astCall struct {
	tok  token
	name string
	args []astExpr
}

func (s *astAssign) stmtPos() token { return s.tok }
func (s *astIf) stmtPos() token     { return s.tok }
func (s *astFor) stmtPos() token    { return s.tok }
func (s *astWhile) stmtPos() token  { return s.tok }
func (s *astLoop) stmtPos() token   { return s.tok }
func (s *astExit) stmtPos() token   { return s.tok }
func (s *astRet) stmtPos() token    { return s.tok }
func (s *astNull) stmtPos() token   { return s.tok }
func (s *astWait) stmtPos() token   { return s.tok }
func (s *astCall) stmtPos() token   { return s.tok }

// ---- parser ----

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token  { return p.toks[p.pos] }
func (p *parser) peek2() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) accept(kind tokKind, text string) bool {
	t := p.peek()
	if t.kind == kind && (text == "" || t.text == text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	t := p.peek()
	if t.kind != kind || (text != "" && t.text != text) {
		want := text
		if want == "" {
			want = map[tokKind]string{tokIdent: "identifier", tokNumber: "number"}[kind]
		}
		return t, errAt(t, "expected %s, found %s", want, t)
	}
	return p.next(), nil
}

func (p *parser) keyword(k string) error {
	_, err := p.expect(tokKeyword, k)
	return err
}

func (p *parser) symbol(s string) error {
	_, err := p.expect(tokSymbol, s)
	return err
}

func (p *parser) ident() (token, error) { return p.expect(tokIdent, "") }

// parseSystem parses "system <name> is ... end system ;".
func (p *parser) parseSystem() (*astSystem, error) {
	if err := p.keyword("system"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.keyword("is"); err != nil {
		return nil, err
	}
	sys := &astSystem{name: name.text}
	for {
		switch {
		case p.peek().kind == tokKeyword && p.peek().text == "module":
			m, err := p.parseModule()
			if err != nil {
				return nil, err
			}
			sys.modules = append(sys.modules, m)
		case p.peek().kind == tokKeyword && p.peek().text == "channel":
			c, err := p.parseChannel()
			if err != nil {
				return nil, err
			}
			sys.channels = append(sys.channels, c)
		default:
			if err := p.keyword("end"); err != nil {
				return nil, err
			}
			p.accept(tokKeyword, "system")
			p.accept(tokIdent, name.text)
			if err := p.symbol(";"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokEOF, ""); err != nil {
				return nil, errAt(p.peek(), "trailing input after end system")
			}
			return sys, nil
		}
	}
}

// parseChannel parses "channel <name> : <behavior> reads|writes <var> ;".
func (p *parser) parseChannel() (*astChannel, error) {
	tok, _ := p.expect(tokKeyword, "channel")
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.symbol(":"); err != nil {
		return nil, err
	}
	beh, err := p.ident()
	if err != nil {
		return nil, err
	}
	dir := p.next()
	if dir.kind != tokKeyword || (dir.text != "reads" && dir.text != "writes") {
		return nil, errAt(dir, "expected 'reads' or 'writes', found %s", dir)
	}
	v, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.symbol(";"); err != nil {
		return nil, err
	}
	return &astChannel{pos: tok, name: name.text, behavior: beh.text, variable: v.text, write: dir.text == "writes"}, nil
}

// parseModule parses "module <name> is <decls> end module ;".
func (p *parser) parseModule() (*astModule, error) {
	if err := p.keyword("module"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.keyword("is"); err != nil {
		return nil, err
	}
	m := &astModule{name: name.text}
	for {
		t := p.peek()
		switch {
		case t.kind == tokKeyword && (t.text == "variable" || t.text == "signal"):
			v, err := p.parseVarDecl()
			if err != nil {
				return nil, err
			}
			m.vars = append(m.vars, v)
		case t.kind == tokKeyword && (t.text == "behavior" || t.text == "process"):
			b, err := p.parseBehavior()
			if err != nil {
				return nil, err
			}
			m.behaviors = append(m.behaviors, b)
		case t.kind == tokKeyword && t.text == "end":
			p.next()
			p.accept(tokKeyword, "module")
			p.accept(tokIdent, name.text)
			if err := p.symbol(";"); err != nil {
				return nil, err
			}
			return m, nil
		default:
			return nil, errAt(t, "expected variable, behavior or end module, found %s", t)
		}
	}
}

// parseVarDecl parses "variable <name> : <type> [:= init] ;".
func (p *parser) parseVarDecl() (*astVar, error) {
	kw := p.next() // variable | signal
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.symbol(":"); err != nil {
		return nil, err
	}
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	v := &astVar{pos: name, name: name.text, isSignal: kw.text == "signal", typ: typ}
	if p.accept(tokSymbol, ":=") {
		v.init, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if err := p.symbol(";"); err != nil {
		return nil, err
	}
	return v, nil
}

// parseType parses bit | boolean | integer | bit_vector(h downto l) |
// array(l to h) of <type>.
func (p *parser) parseType() (*astType, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, errAt(t, "expected type, found %s", t)
	}
	switch t.text {
	case "bit", "boolean", "integer":
		p.next()
		return &astType{pos: t, kind: t.text}, nil
	case "bit_vector":
		p.next()
		if err := p.symbol("("); err != nil {
			return nil, err
		}
		hi, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.keyword("downto"); err != nil {
			return nil, err
		}
		lo, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.symbol(")"); err != nil {
			return nil, err
		}
		return &astType{pos: t, kind: "bit_vector", hi: hi, lo: lo}, nil
	case "array":
		p.next()
		if err := p.symbol("("); err != nil {
			return nil, err
		}
		lo, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.keyword("to"); err != nil {
			return nil, err
		}
		hi, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.symbol(")"); err != nil {
			return nil, err
		}
		if err := p.keyword("of"); err != nil {
			return nil, err
		}
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		return &astType{pos: t, kind: "array", aLo: lo, aHi: hi, elem: elem}, nil
	}
	return nil, errAt(t, "expected type, found %s", t)
}

// parseBehavior parses
// "behavior <name> [server] is <decls> begin <stmts> end behavior ;".
func (p *parser) parseBehavior() (*astBehavior, error) {
	kw := p.next() // behavior | process
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	b := &astBehavior{pos: kw, name: name.text}
	if p.accept(tokKeyword, "server") {
		b.server = true
	}
	if err := p.keyword("is"); err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokKeyword && (t.text == "variable" || t.text == "signal") {
			v, err := p.parseVarDecl()
			if err != nil {
				return nil, err
			}
			b.vars = append(b.vars, v)
			continue
		}
		if t.kind == tokKeyword && t.text == "procedure" {
			proc, err := p.parseProcedure()
			if err != nil {
				return nil, err
			}
			b.procs = append(b.procs, proc)
			continue
		}
		break
	}
	if err := p.keyword("begin"); err != nil {
		return nil, err
	}
	body, err := p.parseStmts()
	if err != nil {
		return nil, err
	}
	b.body = body
	if err := p.keyword("end"); err != nil {
		return nil, err
	}
	if !p.accept(tokKeyword, "behavior") {
		p.accept(tokKeyword, "process")
	}
	p.accept(tokIdent, name.text)
	if err := p.symbol(";"); err != nil {
		return nil, err
	}
	return b, nil
}

// parseProcedure parses
// "procedure <name> ( params ) is <decls> begin <stmts> end [procedure] ;".
func (p *parser) parseProcedure() (*astProc, error) {
	kw := p.next()
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	proc := &astProc{pos: kw, name: name.text}
	if p.accept(tokSymbol, "(") {
		for !p.accept(tokSymbol, ")") {
			pn, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.symbol(":"); err != nil {
				return nil, err
			}
			mode := "in"
			t := p.peek()
			if t.kind == tokKeyword && (t.text == "in" || t.text == "out" || t.text == "inout") {
				mode = t.text
				p.next()
			}
			typ, err := p.parseType()
			if err != nil {
				return nil, err
			}
			proc.params = append(proc.params, astParam{pos: pn, name: pn.text, mode: mode, typ: typ})
			if !p.accept(tokSymbol, ";") && !p.accept(tokSymbol, ",") {
				if err := p.symbol(")"); err != nil {
					return nil, err
				}
				break
			}
		}
	}
	if err := p.keyword("is"); err != nil {
		return nil, err
	}
	for p.peek().kind == tokKeyword && (p.peek().text == "variable" || p.peek().text == "signal") {
		v, err := p.parseVarDecl()
		if err != nil {
			return nil, err
		}
		proc.vars = append(proc.vars, v)
	}
	if err := p.keyword("begin"); err != nil {
		return nil, err
	}
	body, err := p.parseStmts()
	if err != nil {
		return nil, err
	}
	proc.body = body
	if err := p.keyword("end"); err != nil {
		return nil, err
	}
	p.accept(tokKeyword, "procedure")
	p.accept(tokIdent, name.text)
	if err := p.symbol(";"); err != nil {
		return nil, err
	}
	return proc, nil
}

// parseStmts parses statements until a closing keyword (end, elsif,
// else) is seen.
func (p *parser) parseStmts() ([]astStmt, error) {
	var out []astStmt
	for {
		t := p.peek()
		if t.kind == tokEOF {
			return nil, errAt(t, "unexpected end of input in statement list")
		}
		if t.kind == tokKeyword && (t.text == "end" || t.text == "elsif" || t.text == "else") {
			return out, nil
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

func (p *parser) parseStmt() (astStmt, error) {
	t := p.peek()
	if t.kind == tokKeyword {
		switch t.text {
		case "if":
			return p.parseIf()
		case "for":
			return p.parseFor()
		case "while":
			return p.parseWhile()
		case "loop":
			return p.parseLoop()
		case "exit":
			p.next()
			return &astExit{tok: t}, p.symbol(";")
		case "return":
			p.next()
			return &astRet{tok: t}, p.symbol(";")
		case "null":
			p.next()
			return &astNull{tok: t}, p.symbol(";")
		case "wait":
			return p.parseWait()
		}
		return nil, errAt(t, "unexpected %s at start of statement", t)
	}
	// Assignment or procedure call: parse a postfix expression first.
	lhs, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	switch {
	case p.accept(tokSymbol, ":="), func() bool {
		if p.peek().kind == tokSymbol && p.peek().text == "<=" {
			p.next()
			return true
		}
		return false
	}():
		signal := p.toks[p.pos-1].text == "<="
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.symbol(";"); err != nil {
			return nil, err
		}
		return &astAssign{tok: t, lhs: lhs, rhs: rhs, signal: signal}, nil
	default:
		// Procedure call statement: lhs must be name(args) or name.
		switch e := lhs.(type) {
		case *astApply:
			if name, ok := e.fn.(*astName); ok && e.hi == nil {
				if err := p.symbol(";"); err != nil {
					return nil, err
				}
				return &astCall{tok: t, name: name.tok.text, args: e.args}, nil
			}
		case *astName:
			if err := p.symbol(";"); err != nil {
				return nil, err
			}
			return &astCall{tok: t, name: e.tok.text}, nil
		}
		return nil, errAt(p.peek(), "expected ':=', '<=' or procedure call, found %s", p.peek())
	}
}

func (p *parser) parseIf() (astStmt, error) {
	tok := p.next()
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.keyword("then"); err != nil {
		return nil, err
	}
	then, err := p.parseStmts()
	if err != nil {
		return nil, err
	}
	st := &astIf{tok: tok, cond: cond, then: then}
	for p.accept(tokKeyword, "elsif") {
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.keyword("then"); err != nil {
			return nil, err
		}
		body, err := p.parseStmts()
		if err != nil {
			return nil, err
		}
		st.elifs = append(st.elifs, astElif{cond: c, body: body})
	}
	if p.accept(tokKeyword, "else") {
		body, err := p.parseStmts()
		if err != nil {
			return nil, err
		}
		st.els = body
	}
	if err := p.keyword("end"); err != nil {
		return nil, err
	}
	if err := p.keyword("if"); err != nil {
		return nil, err
	}
	return st, p.symbol(";")
}

func (p *parser) parseFor() (astStmt, error) {
	tok := p.next()
	v, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.keyword("in"); err != nil {
		return nil, err
	}
	from, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.keyword("to"); err != nil {
		return nil, err
	}
	to, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.keyword("loop"); err != nil {
		return nil, err
	}
	body, err := p.parseStmts()
	if err != nil {
		return nil, err
	}
	if err := p.endLoop(); err != nil {
		return nil, err
	}
	return &astFor{tok: tok, v: v.text, from: from, to: to, body: body}, nil
}

func (p *parser) parseWhile() (astStmt, error) {
	tok := p.next()
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.keyword("loop"); err != nil {
		return nil, err
	}
	body, err := p.parseStmts()
	if err != nil {
		return nil, err
	}
	if err := p.endLoop(); err != nil {
		return nil, err
	}
	return &astWhile{tok: tok, cond: cond, body: body}, nil
}

func (p *parser) parseLoop() (astStmt, error) {
	tok := p.next()
	body, err := p.parseStmts()
	if err != nil {
		return nil, err
	}
	if err := p.endLoop(); err != nil {
		return nil, err
	}
	return &astLoop{tok: tok, body: body}, nil
}

func (p *parser) endLoop() error {
	if err := p.keyword("end"); err != nil {
		return err
	}
	if err := p.keyword("loop"); err != nil {
		return err
	}
	return p.symbol(";")
}

func (p *parser) parseWait() (astStmt, error) {
	tok := p.next()
	w := &astWait{tok: tok}
	if p.accept(tokKeyword, "on") {
		for {
			n, err := p.ident()
			if err != nil {
				return nil, err
			}
			w.on = append(w.on, n)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "until") {
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		w.until = c
	}
	if p.accept(tokKeyword, "for") {
		d, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		w.dur = d
	}
	return w, p.symbol(";")
}

// ---- expressions ----

// parseExpr parses with precedence: or < and < relational < additive
// (+, -, &) < multiplicative (*, /, mod, sll, srl) < unary < postfix.
func (p *parser) parseExpr() (astExpr, error) { return p.parseOr() }

func (p *parser) parseOr() (astExpr, error) {
	x, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokKeyword && (t.text == "or" || t.text == "xor") {
			p.next()
			y, err := p.parseAnd()
			if err != nil {
				return nil, err
			}
			x = &astBinary{op: t.text, x: x, y: y, tok: t}
			continue
		}
		return x, nil
	}
}

func (p *parser) parseAnd() (astExpr, error) {
	x, err := p.parseRel()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokKeyword && p.peek().text == "and" {
		t := p.next()
		y, err := p.parseRel()
		if err != nil {
			return nil, err
		}
		x = &astBinary{op: "and", x: x, y: y, tok: t}
	}
	return x, nil
}

func (p *parser) parseRel() (astExpr, error) {
	x, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokSymbol {
		switch t.text {
		case "=", "/=", "<", "<=", ">", ">=":
			p.next()
			y, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &astBinary{op: t.text, x: x, y: y, tok: t}, nil
		}
	}
	return x, nil
}

func (p *parser) parseAdd() (astExpr, error) {
	x, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-" || t.text == "&") {
			p.next()
			y, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			x = &astBinary{op: t.text, x: x, y: y, tok: t}
			continue
		}
		return x, nil
	}
}

func (p *parser) parseMul() (astExpr, error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		isMul := (t.kind == tokSymbol && (t.text == "*" || t.text == "/")) ||
			(t.kind == tokKeyword && (t.text == "mod" || t.text == "sll" || t.text == "srl"))
		if !isMul {
			return x, nil
		}
		p.next()
		y, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		x = &astBinary{op: t.text, x: x, y: y, tok: t}
	}
}

func (p *parser) parseUnary() (astExpr, error) {
	t := p.peek()
	if t.kind == tokKeyword && t.text == "not" {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &astUnary{op: "not", x: x, tok: t}, nil
	}
	if t.kind == tokSymbol && t.text == "-" {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &astUnary{op: "-", x: x, tok: t}, nil
	}
	return p.parsePostfix()
}

// parsePostfix parses a primary followed by application/field suffixes.
func (p *parser) parsePostfix() (astExpr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		switch {
		case t.kind == tokSymbol && t.text == "(":
			p.next()
			first, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if p.accept(tokKeyword, "downto") {
				lo, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if err := p.symbol(")"); err != nil {
					return nil, err
				}
				x = &astApply{fn: x, hi: first, lo: lo}
				continue
			}
			args := []astExpr{first}
			for p.accept(tokSymbol, ",") {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
			}
			if err := p.symbol(")"); err != nil {
				return nil, err
			}
			x = &astApply{fn: x, args: args}
		case t.kind == tokSymbol && t.text == ".":
			p.next()
			f, err := p.ident()
			if err != nil {
				return nil, err
			}
			x = &astField{x: x, field: f.text, tok: t}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (astExpr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		var v int64
		if _, err := fmt.Sscanf(t.text, "%d", &v); err != nil {
			return nil, errAt(t, "invalid number %q", t.text)
		}
		return &astNum{tok: t, v: v}, nil
	case tokBitLit:
		p.next()
		return &astBit{tok: t, v: t.text}, nil
	case tokVecLit:
		p.next()
		return &astVec{tok: t, v: t.text}, nil
	case tokHexVecLit:
		p.next()
		return &astVec{tok: t, v: t.text, hex: true}, nil
	case tokIdent:
		p.next()
		return &astName{tok: t}, nil
	case tokKeyword:
		switch t.text {
		case "true", "false":
			p.next()
			return &astBool{tok: t, v: t.text == "true"}, nil
		}
	case tokSymbol:
		if t.text == "(" {
			p.next()
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return x, p.symbol(")")
		}
	}
	return nil, errAt(t, "expected expression, found %s", t)
}
