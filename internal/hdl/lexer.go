// Package hdl implements the textual front end of the flow: a lexer,
// recursive-descent parser and elaborator for a SpecSyn-flavored
// specification language (a VHDL subset extended with system/module/
// behavior structure), producing specification IR (internal/spec).
//
// A small example:
//
//	system PQ is
//	  module comp1 is
//	    behavior P is
//	      variable AD : integer;
//	    begin
//	      X <= 32;
//	      MEM(AD) := X + 7;
//	    end behavior;
//	  end module;
//	  module comp2 is
//	    variable X : bit_vector(15 downto 0);
//	    variable MEM : array(0 to 63) of bit_vector(15 downto 0);
//	  end module;
//	end system;
//
// Module-level variables are visible to every behavior (the paper's
// processes name remote variables directly); partitioning derives the
// channels implied by the cross-module references.
package hdl

import (
	"fmt"
	"strings"
)

// tokKind enumerates token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokBitLit    // '0' or '1'
	tokVecLit    // "0101"
	tokHexVecLit // X"0A"
	tokSymbol
)

// token is one lexeme with its position.
type token struct {
	kind tokKind
	text string // keywords lowercased; identifiers preserved
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokVecLit, tokHexVecLit:
		return fmt.Sprintf("%q", t.text)
	case tokBitLit:
		return fmt.Sprintf("'%s'", t.text)
	}
	return fmt.Sprintf("%q", t.text)
}

var keywords = map[string]bool{
	"system": true, "module": true, "behavior": true, "process": true,
	"variable": true, "signal": true, "procedure": true, "channel": true,
	"server": true, "is": true, "begin": true, "end": true,
	"if": true, "then": true, "elsif": true, "else": true,
	"for": true, "in": true, "to": true, "downto": true, "loop": true,
	"while": true, "exit": true, "return": true, "null": true,
	"wait": true, "on": true, "until": true,
	"and": true, "or": true, "xor": true, "not": true, "mod": true,
	"bit": true, "bit_vector": true, "integer": true, "boolean": true,
	"array": true, "of": true, "true": true, "false": true,
	"out": true, "inout": true, "reads": true, "writes": true,
	"sll": true, "srl": true,
}

// Error is a front-end diagnostic with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(t token, format string, args ...any) *Error {
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

// lex tokenizes the source. Comments run from "--" to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	n := len(src)
	advance := func(k int) {
		for j := 0; j < k; j++ {
			if src[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '-' && i+1 < n && src[i+1] == '-':
			for i < n && src[i] != '\n' {
				advance(1)
			}
		case isLetter(c):
			start, sl, sc := i, line, col
			for i < n && (isLetter(src[i]) || isDigit(src[i])) {
				advance(1)
			}
			word := src[start:i]
			lower := strings.ToLower(word)
			// X"AB" hex bit-vector literal
			if lower == "x" && i < n && src[i] == '"' {
				advance(1)
				hstart := i
				for i < n && src[i] != '"' {
					advance(1)
				}
				if i >= n {
					return nil, &Error{Line: sl, Col: sc, Msg: "unterminated hex literal"}
				}
				hex := src[hstart:i]
				advance(1)
				toks = append(toks, token{kind: tokHexVecLit, text: hex, line: sl, col: sc})
				continue
			}
			if keywords[lower] {
				toks = append(toks, token{kind: tokKeyword, text: lower, line: sl, col: sc})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, line: sl, col: sc})
			}
		case isDigit(c):
			start, sl, sc := i, line, col
			for i < n && (isDigit(src[i]) || src[i] == '_') {
				advance(1)
			}
			toks = append(toks, token{kind: tokNumber, text: strings.ReplaceAll(src[start:i], "_", ""), line: sl, col: sc})
		case c == '\'':
			sl, sc := line, col
			if i+2 < n && (src[i+1] == '0' || src[i+1] == '1') && src[i+2] == '\'' {
				toks = append(toks, token{kind: tokBitLit, text: string(src[i+1]), line: sl, col: sc})
				advance(3)
			} else {
				return nil, &Error{Line: sl, Col: sc, Msg: "invalid bit literal (expected '0' or '1')"}
			}
		case c == '"':
			sl, sc := line, col
			advance(1)
			start := i
			for i < n && src[i] != '"' {
				advance(1)
			}
			if i >= n {
				return nil, &Error{Line: sl, Col: sc, Msg: "unterminated string literal"}
			}
			lit := src[start:i]
			advance(1)
			for _, ch := range lit {
				if ch != '0' && ch != '1' && ch != '_' {
					return nil, &Error{Line: sl, Col: sc, Msg: fmt.Sprintf("invalid bit-vector literal %q", lit)}
				}
			}
			toks = append(toks, token{kind: tokVecLit, text: strings.ReplaceAll(lit, "_", ""), line: sl, col: sc})
		default:
			sl, sc := line, col
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case ":=", "<=", ">=", "/=", "=>", "**":
				toks = append(toks, token{kind: tokSymbol, text: two, line: sl, col: sc})
				advance(2)
				continue
			}
			switch c {
			case '(', ')', ';', ':', ',', '.', '&', '+', '-', '*', '/', '=', '<', '>':
				toks = append(toks, token{kind: tokSymbol, text: string(c), line: sl, col: sc})
				advance(1)
			default:
				return nil, &Error{Line: sl, Col: sc, Msg: fmt.Sprintf("unexpected character %q", c)}
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line, col: col})
	return toks, nil
}

func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
