package difftest

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/spec"
)

func simulate(t *testing.T, sys *spec.System, seed int64) *sim.Result {
	t.Helper()
	s, err := sim.New(sys, sim.Config{MaxClocks: 2_000_000})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return res
}

// TestDifferentialRandomSystems generates random systems and checks
// that the fully synthesized (bus + protocol + arbitration) refinement
// computes exactly the same final memory state as the abstract system,
// across widths chosen by bus generation.
func TestDifferentialRandomSystems(t *testing.T) {
	cfg := DefaultGenConfig()
	for seed := int64(1); seed <= 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			abstract := Generate(seed, cfg)
			if errs := abstract.Validate(); len(errs) > 0 {
				t.Fatalf("generator produced invalid system: %v", errs[0])
			}
			base := simulate(t, abstract, seed)

			refined := Generate(seed, cfg)
			// RateFeasible grouping: groups too rate-hungry for one
			// bus are split (the paper's remedy for infeasibility).
			rep, err := core.Synthesize(refined, core.Options{
				Arbitrate: true,
				Grouping:  partition.RateFeasible,
			})
			if err != nil {
				t.Fatalf("synthesize: %v", err)
			}
			if len(rep.Buses) == 0 {
				t.Fatal("no buses synthesized")
			}
			got := simulate(t, refined, seed)

			for key, want := range base.Finals {
				if gotV, ok := got.Finals[key]; !ok || !gotV.Equal(want) {
					t.Errorf("final %s differs:\n abstract: %s\n refined:  %s", key, want, got.Finals[key])
				}
			}
		})
	}
}

// TestDifferentialForcedNarrowWidth re-runs a handful of seeds with a
// deliberately hostile 1-bit bus: every message needs the maximum
// number of word handshakes.
func TestDifferentialForcedNarrowWidth(t *testing.T) {
	cfg := DefaultGenConfig()
	for seed := int64(1); seed <= 8; seed++ {
		abstract := Generate(seed, cfg)
		base := simulate(t, abstract, seed)

		refined := Generate(seed, cfg)
		if _, err := core.Synthesize(refined, core.Options{Arbitrate: true, ForceWidth: 1}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got := simulate(t, refined, seed)
		for key, want := range base.Finals {
			if gotV, ok := got.Finals[key]; !ok || !gotV.Equal(want) {
				t.Errorf("seed %d: final %s differs (width 1)", seed, key)
			}
		}
	}
}

// TestGeneratorDeterministic pins the generator: same seed, same
// system.
func TestGeneratorDeterministic(t *testing.T) {
	a := Generate(7, DefaultGenConfig())
	b := Generate(7, DefaultGenConfig())
	if len(a.Behaviors()) != len(b.Behaviors()) {
		t.Fatal("behavior counts differ")
	}
	ra := simulate(t, a, 7)
	rb := simulate(t, b, 7)
	for key, want := range ra.Finals {
		if !rb.Finals[key].Equal(want) {
			t.Fatalf("nondeterministic generator at %s", key)
		}
	}
}
