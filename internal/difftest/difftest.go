// Package difftest provides randomized differential testing of the
// interface-synthesis flow: it generates random partitioned systems,
// runs the full flow (channel derivation, bus generation, protocol
// generation with arbitration), simulates both the abstract and the
// refined system, and demands identical final memory state.
//
// The generator constrains systems so the abstract and refined runs are
// deterministic and comparable: every remote variable is touched by
// exactly one behavior (so no cross-behavior write races exist), but
// several behaviors run concurrently over the same arbitrated bus,
// which exercises the grant handoff, the ID decoding and the word
// slicing across random geometries.
package difftest

import (
	"fmt"
	"math/rand"

	"repro/internal/spec"
)

// GenConfig bounds the random system generator.
type GenConfig struct {
	MaxBehaviors int // per system (>= 1)
	MaxVarsPer   int // remote variables per behavior (>= 1)
	MaxStmts     int // top-level operations per behavior
}

// DefaultGenConfig returns the bounds used by the differential tests.
func DefaultGenConfig() GenConfig {
	return GenConfig{MaxBehaviors: 3, MaxVarsPer: 2, MaxStmts: 5}
}

// Generate builds a random partitioned system from the seed. The
// returned system validates and has no declared channels (the flow
// derives them).
func Generate(seed int64, cfg GenConfig) *spec.System {
	rng := rand.New(rand.NewSource(seed))
	sys := spec.NewSystem(fmt.Sprintf("rand%d", seed))
	procs := sys.AddModule("procs")
	mem := sys.AddModule("mem")

	nBeh := 1 + rng.Intn(cfg.MaxBehaviors)
	for bi := 0; bi < nBeh; bi++ {
		b := procs.AddBehavior(spec.NewBehavior(fmt.Sprintf("P%d", bi)))
		acc := b.AddVar("acc", spec.Integer)

		// Each behavior owns its remote variables: some data vars plus
		// a scratch result register the behavior writes its checksum
		// to (so read paths are observable in the final state).
		nVars := 1 + rng.Intn(cfg.MaxVarsPer)
		var vars []*spec.Variable
		for vi := 0; vi < nVars; vi++ {
			name := fmt.Sprintf("v%d_%d", bi, vi)
			var t spec.Type
			if rng.Intn(2) == 0 {
				t = spec.BitVector(4 + rng.Intn(20)) // 4..23 bits
			} else {
				length := 4 + rng.Intn(12) // 4..15 entries
				width := 4 + rng.Intn(12)  // 4..15 bits
				t = spec.Array(length, spec.BitVector(width))
			}
			vars = append(vars, mem.AddVariable(spec.NewVar(name, t)))
		}
		result := mem.AddVariable(spec.NewVar(fmt.Sprintf("result%d", bi), spec.BitVector(24)))

		var body []spec.Stmt
		nStmts := 1 + rng.Intn(cfg.MaxStmts)
		for si := 0; si < nStmts; si++ {
			v := vars[rng.Intn(len(vars))]
			body = append(body, randOp(rng, b, v, acc)...)
		}
		// Publish the checksum.
		body = append(body, spec.AssignVar(spec.Ref(result), spec.ToVec(spec.Ref(acc), 24)))
		b.Body = body
	}
	return sys
}

// randOp emits one random remote operation on v, folding any read data
// into acc.
func randOp(rng *rand.Rand, b *spec.Behavior, v *spec.Variable, acc *spec.Variable) []spec.Stmt {
	if at, ok := spec.IsArray(v.Type); ok {
		switch rng.Intn(4) {
		case 0: // single-element write
			idx := rng.Intn(at.Length)
			val := rng.Int63n(1 << min(at.Elem.BitWidth(), 30))
			return []spec.Stmt{
				spec.AssignVar(spec.At(spec.Ref(v), spec.Int(int64(idx))),
					spec.ToVec(spec.Int(val), at.Elem.BitWidth())),
			}
		case 1: // loop write
			i := b.AddVar(fmt.Sprintf("i%d", len(b.Variables)), spec.Integer)
			k := 1 + rng.Int63n(7)
			return []spec.Stmt{
				&spec.For{Var: i, From: spec.Int(0), To: spec.Int(int64(at.Length - 1)), Body: []spec.Stmt{
					spec.AssignVar(spec.At(spec.Ref(v), spec.Ref(i)),
						spec.ToVec(spec.Mul(spec.Ref(i), spec.Int(k)), at.Elem.BitWidth())),
				}},
			}
		case 2: // read element into acc
			idx := rng.Intn(at.Length)
			return []spec.Stmt{
				spec.AssignVar(spec.Ref(acc),
					spec.Add(spec.Ref(acc), spec.ToInt(spec.At(spec.Ref(v), spec.Int(int64(idx)))))),
			}
		default: // remote read inside a condition (exercises hoisting)
			idx := rng.Intn(at.Length)
			thr := rng.Int63n(64)
			return []spec.Stmt{
				&spec.If{
					Cond: spec.Gt(spec.ToInt(spec.At(spec.Ref(v), spec.Int(int64(idx)))), spec.Int(thr)),
					Then: []spec.Stmt{spec.AssignVar(spec.Ref(acc), spec.Add(spec.Ref(acc), spec.Int(1)))},
					Else: []spec.Stmt{spec.AssignVar(spec.Ref(acc), spec.Add(spec.Ref(acc), spec.Int(2)))},
				},
			}
		}
	}
	w := v.Type.BitWidth()
	if rng.Intn(2) == 0 { // scalar write
		val := rng.Int63n(1 << min(w, 30))
		return []spec.Stmt{
			spec.AssignVar(spec.Ref(v), spec.ToVec(spec.Int(val), w)),
		}
	}
	// scalar read-modify: acc += v (reads the remote scalar)
	return []spec.Stmt{
		spec.AssignVar(spec.Ref(acc), spec.Add(spec.Ref(acc), spec.ToInt(spec.Ref(v)))),
	}
}
