package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"

	"repro/internal/spec"
	"repro/internal/vhdlgen"
	"repro/internal/workloads"
)

// synthesisFingerprint renders everything observable about one
// synthesis run: the refined system's emitted VHDL plus the verify
// verdict, as bytes, so runs can be compared for exact equality.
func synthesisFingerprint(t *testing.T, sys *spec.System, rep *Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString(vhdlgen.Emit(sys))
	if rep.Verify != nil {
		b, err := json.Marshal(struct {
			Clean       bool
			States      int
			Transitions int64
			Depth       int
			Violations  int
		}{rep.Verify.Clean(), rep.Verify.States, rep.Verify.Transitions, rep.Verify.Depth, len(rep.Verify.Violations)})
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
	}
	return buf.Bytes()
}

// TestSynthesizeReentrant is satellite 4's engine half: two Synthesize
// runs on cloned specs, concurrently, must produce byte-identical
// refinements and verdicts — the property that lets the daemon run
// jobs in parallel and content-address their results. Run under
// -race, this also proves the engine shares no mutable state across
// concurrent invocations.
func TestSynthesizeReentrant(t *testing.T) {
	base, _ := workloads.PQ()
	const runs = 4
	systems := make([]*spec.System, runs)
	for i := range systems {
		systems[i] = spec.Clone(base)
	}

	opts := Options{Verify: true, VerifyDrops: 1, Workers: 2}
	fingerprints := make([][]byte, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := SynthesizeCtx(context.Background(), systems[i], opts)
			if err != nil {
				errs[i] = err
				return
			}
			fingerprints[i] = synthesisFingerprint(t, systems[i], rep)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	for i := 1; i < runs; i++ {
		if !bytes.Equal(fingerprints[0], fingerprints[i]) {
			t.Fatalf("concurrent run %d diverged from run 0 (%d vs %d bytes)", i, len(fingerprints[i]), len(fingerprints[0]))
		}
	}

	// The concurrent runs must also match a sequential run: concurrency
	// invisible in the result, not merely self-consistent.
	seq := spec.Clone(base)
	rep, err := SynthesizeCtx(context.Background(), seq, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fingerprints[0], synthesisFingerprint(t, seq, rep)) {
		t.Fatal("concurrent result differs from sequential result")
	}
}

// TestSynthesizeCancel: a canceled context aborts synthesis mid-verify
// with ctx.Err() and no partial report — the contract that keeps
// canceled runs out of the daemon's cache.
func TestSynthesizeCancel(t *testing.T) {
	sys, _ := workloads.PQ()
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel from inside the verify progress hook: deterministic — the
	// run is provably mid-exploration when the cancel lands.
	opts := Options{
		Verify: true, VerifyDrops: 1,
		VerifyProgress: func(states, depth int) { cancel() },
	}
	rep, err := SynthesizeCtx(ctx, sys, opts)
	if err == nil {
		t.Fatal("canceled synthesis returned no error")
	}
	if ctx.Err() == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep != nil {
		t.Fatalf("canceled synthesis returned a partial report: %+v", rep)
	}

	// Pre-canceled context: rejected before any work.
	sys2, _ := workloads.PQSolo()
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if rep, err := SynthesizeCtx(ctx2, sys2, Options{Verify: true}); err == nil || rep != nil {
		t.Fatalf("pre-canceled synthesis: rep=%v err=%v", rep, err)
	}
}
