package core

import (
	"strings"
	"testing"

	"repro/internal/busgen"
	"repro/internal/hdl"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/spec"
)

const pqSource = `
system PQ is
  module comp1 is
    behavior P is
      variable AD : integer;
    begin
      AD := 5;
      X <= 32;
      MEM(AD) := X + 7;
    end behavior;
    behavior Q is
      variable COUNT : bit_vector(15 downto 0);
    begin
      wait for 500;
      COUNT := 9;
      MEM(60) := COUNT;
    end behavior;
  end module;
  module comp2 is
    variable X : bit_vector(15 downto 0);
    variable MEM : array(0 to 63) of bit_vector(15 downto 0);
  end module;
end system;
`

// TestEndToEndParseSynthesizeSimulate is the complete flow: text
// specification in, channels derived, bus generated, protocol generated,
// refined system simulated, functional results checked.
func TestEndToEndParseSynthesizeSimulate(t *testing.T) {
	sys, err := hdl.Parse(pqSource)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Synthesize(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ChannelsDerived) != 4 {
		t.Fatalf("derived %d channels, want 4 (P:X rw, P:MEM w, Q:MEM w)", len(rep.ChannelsDerived))
	}
	if len(rep.Buses) != 1 {
		t.Fatalf("buses = %d", len(rep.Buses))
	}
	bus := rep.Buses[0].Bus
	if bus.Width <= 0 || bus.Width > 22 {
		t.Fatalf("generated width = %d", bus.Width)
	}
	if rep.Buses[0].Gen == nil {
		t.Fatal("no bus-generation trace")
	}

	s, err := sim.New(sys, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	mem := res.Final("comp2", "MEM").(sim.ArrayVal)
	if mem.Elems[5].(sim.VecVal).V.Uint64() != 39 {
		t.Errorf("MEM(5) = %s, want 39", mem.Elems[5])
	}
	if mem.Elems[60].(sim.VecVal).V.Uint64() != 9 {
		t.Errorf("MEM(60) = %s, want 9", mem.Elems[60])
	}
	x := res.Final("comp2", "X").(sim.VecVal)
	if x.V.Uint64() != 32 {
		t.Errorf("X = %s, want 32", x)
	}
}

func TestSynthesizeForcedWidth(t *testing.T) {
	sys, err := hdl.Parse(pqSource)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Synthesize(sys, Options{ForceWidth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Buses[0].Bus.Width != 8 {
		t.Fatalf("width = %d", rep.Buses[0].Bus.Width)
	}
	if rep.Buses[0].Gen != nil {
		t.Error("forced width still ran bus generation")
	}
}

func TestSynthesizeWithConstraints(t *testing.T) {
	sys, err := hdl.Parse(pqSource)
	if err != nil {
		t.Fatal(err)
	}
	cfg := busgen.DefaultConfig()
	cfg.Constraints = []busgen.Constraint{
		{Kind: busgen.MinBusWidth, Value: 16, Weight: 5},
		{Kind: busgen.MaxBusWidth, Value: 16, Weight: 5},
	}
	rep, err := Synthesize(sys, Options{Bus: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Buses[0].Bus.Width; got != 16 {
		t.Fatalf("constrained width = %d, want 16", got)
	}
}

func TestSynthesizeHalfHandshake(t *testing.T) {
	sys, err := hdl.Parse(pqSource)
	if err != nil {
		t.Fatal(err)
	}
	cfg := busgen.DefaultConfig()
	cfg.Protocol = spec.HalfHandshake
	rep, err := Synthesize(sys, Options{Bus: cfg, ForceWidth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Buses[0].Bus.Protocol != spec.HalfHandshake {
		t.Error("protocol not propagated")
	}
	s, err := sim.New(sys, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	mem := res.Final("comp2", "MEM").(sim.ArrayVal)
	if mem.Elems[5].(sim.VecVal).V.Uint64() != 39 {
		t.Errorf("MEM(5) = %s", mem.Elems[5])
	}
}

func TestSynthesizeRejectsNoCommunication(t *testing.T) {
	sys := spec.NewSystem("lonely")
	m := sys.AddModule("m")
	b := m.AddBehavior(spec.NewBehavior("B"))
	b.Body = []spec.Stmt{&spec.Null{}}
	_, err := Synthesize(sys, Options{})
	if err == nil || !strings.Contains(err.Error(), "no inter-module communication") {
		t.Fatalf("err = %v", err)
	}
}

func TestSynthesizeRespectsPrebuiltBuses(t *testing.T) {
	sys, err := hdl.Parse(pqSource)
	if err != nil {
		t.Fatal(err)
	}
	// Derive channels manually, then pre-group into one bus of width 4.
	rep1, err := Synthesize(sys, Options{ForceWidth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Buses[0].Bus.Width != 4 {
		t.Fatal("prebuilt width ignored")
	}
}

func TestDMAFileFlow(t *testing.T) {
	sys, err := hdl.ParseFile("../../testdata/dma.sys")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Synthesize(sys, Options{}); err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(sys, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// checksum = sum(7*i, i=0..31) = 3472; low byte = 144.
	csum := res.Final("memchip", "CSUM").(sim.VecVal)
	if csum.V.Uint64() != 3472 {
		t.Errorf("CSUM = %d, want 3472", csum.V.Uint64())
	}
	if got := res.Final("memchip", "OBSERVED").(sim.IntVal); got.V != 144 {
		t.Errorf("OBSERVED = %d, want 144", got.V)
	}
	dst := res.Final("memchip", "DST").(sim.ArrayVal)
	if dst.Elems[31].(sim.VecVal).V.Uint64() != 31*7 {
		t.Errorf("DST[31] = %s", dst.Elems[31])
	}
}

func TestMultiBusSynthesis(t *testing.T) {
	// Three modules: behaviors on m1 talking to variables on m2 and
	// m3; ByModulePair grouping yields two buses, both refined and
	// simulated together.
	src := `
system Tri is
  module m1 is
    behavior W2 is
      variable i : integer;
    begin
      for i in 0 to 7 loop
        A2(i) := i * 3;
      end loop;
    end behavior;
    behavior W3 is
      variable i : integer;
    begin
      for i in 0 to 7 loop
        A3(i) := i * 5;
      end loop;
    end behavior;
  end module;
  module m2 is
    variable A2 : array(0 to 7) of bit_vector(8 downto 0);
  end module;
  module m3 is
    variable A3 : array(0 to 7) of bit_vector(8 downto 0);
  end module;
end system;`
	sys, err := hdl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Synthesize(sys, Options{Grouping: partition.ByModulePair})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Buses) != 2 {
		t.Fatalf("buses = %d, want 2", len(rep.Buses))
	}
	s, err := sim.New(sys, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	a2 := res.Final("m2", "A2").(sim.ArrayVal)
	a3 := res.Final("m3", "A3").(sim.ArrayVal)
	for i := 0; i < 8; i++ {
		if a2.Elems[i].(sim.VecVal).V.Uint64() != uint64(i*3) {
			t.Errorf("A2[%d] = %s", i, a2.Elems[i])
		}
		if a3.Elems[i].(sim.VecVal).V.Uint64() != uint64(i*5) {
			t.Errorf("A3[%d] = %s", i, a3.Elems[i])
		}
	}
}

func TestAutopartitionedFlatSystem(t *testing.T) {
	// The flat single-module DSP spec: automatic partitioning splits it
	// in two, channel derivation finds the cut's communication, and the
	// arbitrated synthesis still computes outA = 240, outB = 600.
	sys, err := hdl.ParseFile("../../testdata/flat.sys")
	if err != nil {
		t.Fatal(err)
	}
	if err := partition.Repartition(sys, 2, partition.Config{Balanced: true}); err != nil {
		t.Fatal(err)
	}
	if len(sys.Modules) != 2 {
		t.Fatalf("modules = %d", len(sys.Modules))
	}
	if len(sys.Channels) == 0 {
		t.Fatal("partition cut produced no channels")
	}
	if _, err := Synthesize(sys, Options{Arbitrate: true}); err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(sys, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	var outA, outB sim.Value
	for key, v := range res.Finals {
		if strings.HasSuffix(key, ".outA") {
			outA = v
		}
		if strings.HasSuffix(key, ".outB") {
			outB = v
		}
	}
	if outA == nil || !outA.Equal(sim.IntVal{V: 240}) {
		t.Errorf("outA = %v, want 240", outA)
	}
	if outB == nil || !outB.Equal(sim.IntVal{V: 600}) {
		t.Errorf("outB = %v, want 600", outB)
	}
}
