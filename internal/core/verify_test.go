package core

import (
	"testing"

	"repro/internal/repair"
	"repro/internal/sim"
	"repro/internal/verify"
	"repro/internal/workloads"
)

// TestSynthesizeWithVerifyPass: Options.Verify bolts the model checker
// onto the synthesis flow — the fault-free baseline PQ refinement must
// come back provably clean.
func TestSynthesizeWithVerifyPass(t *testing.T) {
	sys, _ := workloads.PQ()
	rep, err := Synthesize(sys, Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verify == nil {
		t.Fatal("Options.Verify set but Report.Verify is nil")
	}
	if !rep.Verify.Clean() {
		t.Fatalf("baseline PQ refinement not clean:\n%s", rep.Verify.Format())
	}
	if rep.Verify.States == 0 || rep.Verify.Transitions == 0 {
		t.Fatalf("degenerate exploration: %+v", rep.Verify)
	}
}

// TestSynthesizeVerifyFindsDropDeadlock: the same flow with a 1-drop
// wire-fault budget must surface the ideal-wire protocol's fragility —
// a dropped strobe wedges the handshake — as a deadlock counterexample,
// without failing synthesis itself.
func TestSynthesizeVerifyFindsDropDeadlock(t *testing.T) {
	sys, _ := workloads.PQ()
	rep, err := Synthesize(sys, Options{Verify: true, VerifyDrops: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verify == nil {
		t.Fatal("Options.Verify set but Report.Verify is nil")
	}
	for _, v := range rep.Verify.Violations {
		if v.Kind == verify.Deadlock {
			return
		}
	}
	t.Fatalf("no deadlock found under a 1-drop budget:\n%s", rep.Verify.Format())
}

// TestSynthesizeRepairMode: Options.Repair turns the verify pass into
// the CEGIS loop. The hardened PQSolo refinement silently corrupts at
// drop budget 1; the flow must converge on the repaired variant, hand
// back its exhaustively clean verdict, and refine the caller's system
// in place to that variant.
func TestSynthesizeRepairMode(t *testing.T) {
	sys, _ := workloads.PQSolo()
	rep, err := Synthesize(sys, Options{
		Robust: true, TimeoutClocks: 8, MaxRetries: 2,
		Repair: true, VerifyDrops: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repair == nil {
		t.Fatal("Options.Repair set but Report.Repair is nil")
	}
	if !rep.Repair.Verified() {
		t.Fatalf("repair did not converge:\n%s", rep.Repair.Format())
	}
	want := []repair.Mutation{repair.CommitAck, repair.ReleaseStale}
	if len(rep.Repair.Mutations) != len(want) || rep.Repair.Mutations[0] != want[0] || rep.Repair.Mutations[1] != want[1] {
		t.Fatalf("mutations = %v, want %v", rep.Repair.Mutations, want)
	}
	if rep.Verify == nil || !rep.Verify.Clean() {
		t.Fatalf("post-repair verdict not clean: %+v", rep.Verify)
	}
	if !rep.Repair.Config.CommitAck || !rep.Repair.Config.ReleaseStale {
		t.Fatalf("final config missing repair knobs: %+v", rep.Repair.Config)
	}
	// The caller's system was refined with the repaired config: it must
	// execute fault-free to completion and deliver.
	s, err := sim.New(sys, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("repaired refinement does not run: %v", err)
	}
	if got := res.Finals["comp2.X"].String(); got != `"0000000000100000"` {
		t.Fatalf("repaired refinement delivered X = %s", got)
	}
}
