package core

import (
	"testing"

	"repro/internal/verify"
	"repro/internal/workloads"
)

// TestSynthesizeWithVerifyPass: Options.Verify bolts the model checker
// onto the synthesis flow — the fault-free baseline PQ refinement must
// come back provably clean.
func TestSynthesizeWithVerifyPass(t *testing.T) {
	sys, _ := workloads.PQ()
	rep, err := Synthesize(sys, Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verify == nil {
		t.Fatal("Options.Verify set but Report.Verify is nil")
	}
	if !rep.Verify.Clean() {
		t.Fatalf("baseline PQ refinement not clean:\n%s", rep.Verify.Format())
	}
	if rep.Verify.States == 0 || rep.Verify.Transitions == 0 {
		t.Fatalf("degenerate exploration: %+v", rep.Verify)
	}
}

// TestSynthesizeVerifyFindsDropDeadlock: the same flow with a 1-drop
// wire-fault budget must surface the ideal-wire protocol's fragility —
// a dropped strobe wedges the handshake — as a deadlock counterexample,
// without failing synthesis itself.
func TestSynthesizeVerifyFindsDropDeadlock(t *testing.T) {
	sys, _ := workloads.PQ()
	rep, err := Synthesize(sys, Options{Verify: true, VerifyDrops: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verify == nil {
		t.Fatal("Options.Verify set but Report.Verify is nil")
	}
	for _, v := range rep.Verify.Violations {
		if v.Kind == verify.Deadlock {
			return
		}
	}
	t.Fatalf("no deadlock found under a 1-drop budget:\n%s", rep.Verify.Format())
}
