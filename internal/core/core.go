// Package core is the top-level interface-synthesis API, composing the
// stages of Narayan & Gajski's DAC'94 flow:
//
//  1. channel derivation — cross-module variable accesses become
//     abstract channels (internal/partition);
//  2. channel grouping — channels are grouped for bus implementation;
//  3. bus generation — each group gets a minimum-cost width satisfying
//     the channels' rate requirements (internal/busgen);
//  4. protocol generation — each bus gets wires, IDs, send/receive
//     procedures and variable processes, yielding a simulatable refined
//     specification (internal/protogen).
//
// The refined system can be executed with internal/sim and printed with
// internal/vhdlgen.
package core

import (
	"context"
	"fmt"

	"repro/internal/busgen"
	"repro/internal/estimate"
	"repro/internal/partition"
	"repro/internal/protogen"
	"repro/internal/repair"
	"repro/internal/spec"
	"repro/internal/verify"
)

// Options parameterizes Synthesize.
type Options struct {
	// Grouping selects the channel-grouping policy (default SingleBus,
	// as in the paper's experiments).
	Grouping partition.GroupingPolicy
	// Bus parameterizes bus generation: protocol, constraints,
	// penalties. The zero value is upgraded to busgen.DefaultConfig().
	Bus busgen.Config
	// ForceWidth, when positive, skips bus generation and implements
	// every bus at this width (used for width sweeps like Fig. 7).
	ForceWidth int
	// Arbitrate adds REQ/GRANT bus arbitration to every generated bus,
	// allowing accessors to open transactions concurrently.
	Arbitrate bool
	// BusSignalPrefix optionally prefixes generated bus signal names.
	BusSignalPrefix string
	// Robust hardens every generated protocol: bounded handshake waits,
	// transaction retransmission and watchdog variable processes (see
	// protogen.Config.Robust).
	Robust bool
	// Parity adds PAR/NACK parity lines to every bus; requires Robust
	// and the full handshake.
	Parity bool
	// TimeoutClocks and MaxRetries tune the hardened protocols; zero
	// selects the protogen defaults.
	TimeoutClocks int64
	MaxRetries    int
	// Workers bounds the goroutines used by the estimation and
	// bus-generation sweeps: 0 means GOMAXPROCS, 1 means serial. The
	// synthesized result is identical either way.
	Workers int
	// Verify model-checks the refined system after synthesis: exhaustive
	// interleaving exploration for deadlocks, driver conflicts, bounded
	// response and end-to-end delivery (internal/verify). The report's
	// Verify field carries the verdict; synthesis itself still succeeds
	// when violations are found — callers decide how to react.
	Verify bool
	// VerifyDepth bounds the model checker's search depth (0 =
	// unbounded; the state bound still applies).
	VerifyDepth int
	// VerifyDrops is the model checker's wire-fault budget: how many
	// strobe transitions may be dropped along any one explored path.
	VerifyDrops int
	// VerifyStates bounds the model checker's stored states (0 = the
	// checker's default).
	VerifyStates int
	// VerifyMemBudget bounds the checker's resident state bytes; past
	// it, sealed BFS layers spill to disk under VerifySpillDir (0 =
	// fully in RAM). Verdicts and counts are identical at any budget,
	// so this knob is excluded from the serve layer's cache key.
	VerifyMemBudget int64
	// VerifySpillDir hosts the checker's spill scratch ("" = system
	// temp directory); only consulted when VerifyMemBudget > 0.
	VerifySpillDir string
	// VerifyLossy switches the checker's dedup store to hash-compaction
	// mode: hash matches are accepted unconfirmed and the verdict
	// reports an omission probability. Result-affecting — it IS part of
	// the serve layer's cache key.
	VerifyLossy bool
	// Repair runs the counterexample-guided repair loop (internal/repair)
	// when verification finds violations: the flow re-generates the
	// protocols with targeted hardening knobs until the properties hold
	// or the repair grammar is exhausted, and the refined system is the
	// final (possibly repaired) variant. Implies Verify; the Report's
	// Repair field carries the iteration trace and Verify the final
	// verdict.
	Repair bool
	// RepairBudget bounds repair iterations (0 = repair.DefaultBudget).
	RepairBudget int
	// RepairTiers caps how far the repair loop may escalate (0 =
	// repair.MaxTier): 1 restricts it to the local tier-1 knobs, 2 adds
	// the arbitration mutations, 3 allows protocol reselection. Each
	// escalation is taken only after every cheaper tier is exhausted,
	// and a tier-3 reselection is priced through the estimator in the
	// repair trace.
	RepairTiers int
	// VerifyProgress, when non-nil, observes the model checker's BFS:
	// called after each merged layer with the stored-state count and
	// depth (see verify.Config.Progress). Observation only — it cannot
	// change any result, which is why it is excluded from JSON encodings
	// and from the serve layer's cache key.
	VerifyProgress func(states, depth int) `json:"-"`
}

// BusReport describes the synthesis of one bus.
type BusReport struct {
	Bus *spec.Bus
	// Gen is the bus-generation result (nil when ForceWidth was used).
	Gen *busgen.Result
	// Ref is the protocol-generation refinement report.
	Ref *protogen.Refinement
}

// Report summarizes a complete interface synthesis.
type Report struct {
	// ChannelsDerived lists channels created by step 1 (empty when the
	// system already declared its channels).
	ChannelsDerived []*spec.Channel
	// Buses holds one report per synthesized bus.
	Buses []BusReport
	// Estimator is the estimator used, for follow-up queries.
	Estimator *estimate.Estimator
	// Verify is the model-checking report (nil unless Options.Verify or
	// Options.Repair). With Repair it is the final iteration's report —
	// the verdict on the system actually delivered.
	Verify *verify.Report
	// Repair is the repair loop's result (nil unless Options.Repair).
	Repair *repair.Result
}

// Synthesize runs the full interface-synthesis flow on the system,
// mutating it into its refined form.
//
// Synthesize is re-entrant: concurrent calls on distinct systems (clone
// a shared spec first — the flow mutates its input) share no state, and
// their reports are byte-identical to serial runs at any worker count.
func Synthesize(sys *spec.System, opts Options) (*Report, error) {
	return SynthesizeCtx(context.Background(), sys, opts)
}

// SynthesizeCtx is Synthesize with cooperative cancellation: the ctx
// reaches the verify BFS and the repair loop, so an abandoned request
// stops burning workers mid-search instead of completing the flow. A
// canceled call returns ctx.Err() (possibly wrapped) and a nil report;
// the input system may have been partially refined — cancellation is
// for requests whose system is about to be discarded.
func SynthesizeCtx(ctx context.Context, sys *spec.System, opts Options) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if errs := sys.Validate(); len(errs) > 0 {
		return nil, fmt.Errorf("core: invalid input system: %w", errs[0])
	}
	if !opts.Bus.QuantizeRates && opts.Bus.Constraints == nil && opts.Bus.MaxWidth == 0 {
		// Zero value: upgrade to the paper's defaults.
		def := busgen.DefaultConfig()
		def.Protocol = opts.Bus.Protocol
		def.Workers = opts.Bus.Workers
		opts.Bus = def
	}
	if opts.Workers != 0 {
		opts.Bus.Workers = opts.Workers
	}

	rep := &Report{}

	// Step 1: derive channels if the specification declared none.
	if len(sys.Channels) == 0 {
		created, err := partition.DeriveChannels(sys)
		if err != nil {
			return nil, err
		}
		rep.ChannelsDerived = created
	}
	if len(sys.Channels) == 0 {
		return nil, fmt.Errorf("core: system %s has no inter-module communication", sys.Name)
	}
	rep.Estimator = estimate.New(sys.Channels)

	// Step 2: group channels into buses (unless the caller pre-built
	// the buses).
	buses := sys.Buses
	if len(buses) == 0 {
		var err error
		buses, err = partition.GroupBuses(sys, rep.Estimator, opts.Grouping, opts.Bus)
		if err != nil {
			return nil, err
		}
	}

	// Step 3: select every bus's width first, while the specification is
	// still unrefined. Protocol generation (step 4) rewrites behavior
	// bodies in place, and the estimator memoizes its statement walks,
	// so all estimation-driven decisions must precede the first
	// refinement — this also matches the paper, where bus generation for
	// every group reads the original specification.
	for _, bus := range buses {
		br := BusReport{Bus: bus}
		if opts.ForceWidth > 0 {
			bus.Width = opts.ForceWidth
		} else if bus.Width == 0 {
			gen, err := busgen.Generate(bus.Channels, rep.Estimator, opts.Bus)
			if err != nil {
				return nil, fmt.Errorf("core: bus %s: %w", bus.Name, err)
			}
			bus.Width = gen.Width
			br.Gen = gen
		}
		rep.Buses = append(rep.Buses, br)
	}

	// baseCfg is the protocol-generation config for one bus; the repair
	// loop mutates copies of it.
	baseCfg := func(busName string) protogen.Config {
		return protogen.Config{
			Protocol:      opts.Bus.Protocol,
			BusSignalName: opts.BusSignalPrefix + busName,
			Arbitrate:     opts.Arbitrate,
			Robust:        opts.Robust,
			Parity:        opts.Parity,
			TimeoutClocks: opts.TimeoutClocks,
			MaxRetries:    opts.MaxRetries,
		}
	}
	vcfg := verify.Config{
		MaxDepth:  opts.VerifyDepth,
		MaxStates: opts.VerifyStates,
		MaxDrops:  opts.VerifyDrops,
		Workers:   opts.Workers,
		MemBudget: opts.VerifyMemBudget,
		SpillDir:  opts.VerifySpillDir,
		Lossy:     opts.VerifyLossy,
		Progress:  opts.VerifyProgress,
	}

	// Optional repair mode replaces steps 4-5: verify each candidate
	// refinement on a fresh clone (protocol generation rewrites behavior
	// bodies in place) and let the CEGIS loop harden the generation
	// config until the properties hold. The winning config then refines
	// the caller's system, keeping Synthesize's mutate-in-place contract.
	if opts.Repair {
		build := func(cfg protogen.Config) (*spec.System, []string, error) {
			c := spec.Clone(sys)
			var aborts []string
			for _, bus := range c.Buses {
				bcfg := cfg
				bcfg.BusSignalName = opts.BusSignalPrefix + bus.Name
				ref, err := protogen.Generate(c, bus, bcfg)
				if err != nil {
					return nil, nil, err
				}
				aborts = append(aborts, ref.AbortKeys()...)
			}
			return c, aborts, nil
		}
		// Price tier-3 protocol reselections against the first bus (the
		// default grouping is single-bus): the trace then reports the
		// pin/area/performance cost of every escalation it takes.
		var cost *repair.CostModel
		if len(rep.Buses) > 0 {
			cost = &repair.CostModel{
				Channels: rep.Buses[0].Bus.Channels,
				Width:    rep.Buses[0].Bus.Width,
				Est:      rep.Estimator,
			}
		}
		rres, err := repair.RunCtx(ctx, build, baseCfg(""), repair.Config{
			Verify:  vcfg,
			Budget:  opts.RepairBudget,
			MaxTier: opts.RepairTiers,
			Cost:    cost,
		})
		if err != nil {
			return nil, fmt.Errorf("core: repair: %w", err)
		}
		rep.Repair = rres
		rep.Verify = rres.Report
		for i := range rep.Buses {
			br := &rep.Buses[i]
			bcfg := rres.Config
			bcfg.BusSignalName = opts.BusSignalPrefix + br.Bus.Name
			ref, err := protogen.Generate(sys, br.Bus, bcfg)
			if err != nil {
				return nil, fmt.Errorf("core: bus %s: %w", br.Bus.Name, err)
			}
			br.Ref = ref
		}
		if errs := sys.Validate(); len(errs) > 0 {
			return nil, fmt.Errorf("core: refined system invalid: %w", errs[0])
		}
		return rep, nil
	}

	// Step 4: refine each bus at its selected width.
	for i := range rep.Buses {
		br := &rep.Buses[i]
		ref, err := protogen.Generate(sys, br.Bus, baseCfg(br.Bus.Name))
		if err != nil {
			return nil, fmt.Errorf("core: bus %s: %w", br.Bus.Name, err)
		}
		br.Ref = ref
	}

	if errs := sys.Validate(); len(errs) > 0 {
		return nil, fmt.Errorf("core: refined system invalid: %w", errs[0])
	}

	// Optional step 5: model-check the refined system. Abort counters
	// introduced by robust refinement excuse cleanly-aborted runs from
	// the delivery check.
	if opts.Verify {
		abortCfg := vcfg
		for _, br := range rep.Buses {
			abortCfg.AbortVars = append(abortCfg.AbortVars, br.Ref.AbortKeys()...)
		}
		vr, err := verify.CheckCtx(ctx, sys, abortCfg)
		if err != nil {
			return nil, fmt.Errorf("core: verify: %w", err)
		}
		rep.Verify = vr
	}
	return rep, nil
}
