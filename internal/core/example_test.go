package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hdl"
	"repro/internal/sim"
)

// ExampleSynthesize runs the complete interface-synthesis flow on a tiny
// textual specification and simulates the refined result.
func ExampleSynthesize() {
	src := `
system Demo is
  module cpu is
    behavior writer is
      variable i : integer;
    begin
      for i in 0 to 3 loop
        REG(i) := i * 10;
      end loop;
    end behavior;
  end module;
  module io is
    variable REG : array(0 to 3) of bit_vector(7 downto 0);
  end module;
end system;`
	sys, err := hdl.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := core.Synthesize(sys, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("channels: %d, bus width: %d pins\n",
		len(rep.ChannelsDerived), rep.Buses[0].Bus.Width)

	s, err := sim.New(sys, sim.Config{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	reg := res.Final("io", "REG").(sim.ArrayVal)
	fmt.Printf("REG(3) = %d\n", reg.Elems[3].(sim.VecVal).V.Uint64())
	// Output:
	// channels: 1, bus width: 1 pins
	// REG(3) = 30
}
