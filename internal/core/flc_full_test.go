package core

import (
	"testing"

	"repro/internal/flc"
	"repro/internal/partition"
	"repro/internal/sim"
)

// TestFLCFullySynthesizedWithArbitration pushes the whole case study
// through the flow at maximum stress: every channel of the FLC —
// including the membership-function memory traffic of INITIALIZE, the
// EVAL processes' table reads and the rule-parameter reads — is merged
// onto ONE arbitrated bus, protocol-generated, and simulated. The
// controller must compute exactly the same output as the abstract
// specification even though four EVAL processes contend for the bus
// concurrently.
func TestFLCFullySynthesizedWithArbitration(t *testing.T) {
	run := func(build func() *flc.System, synthesize bool) *sim.Result {
		f := build()
		if synthesize {
			if _, err := Synthesize(f.Sys, Options{
				Grouping:  partition.SingleBus,
				Arbitrate: true,
			}); err != nil {
				t.Fatal(err)
			}
		}
		s, err := sim.New(f.Sys, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	mk := func() *flc.System { return flc.New(flc.DefaultConfig()) }
	abstract := run(mk, false)
	refined := run(mk, true)
	for _, key := range []string{"chip1.control", "chip1.centroid",
		"chip2.trru0", "chip2.trru1", "chip2.trru2", "chip2.trru3",
		"chip2.InitMemberFunct", "chip2.rule1", "chip2.rule3"} {
		if !abstract.Finals[key].Equal(refined.Finals[key]) {
			t.Errorf("%s differs after full synthesis", key)
		}
	}
	if refined.Clocks <= abstract.Clocks {
		t.Error("fully synthesized FLC not slower than abstract")
	}
}
