package busgen

import (
	"fmt"
	"sort"
	"strings"
)

// Transfer is one data transfer on an abstract channel before merging:
// Bits sent at time Time (seconds) on channel Channel, item label Label
// ("A1", "B2" in Fig. 2 of the paper).
type Transfer struct {
	Channel string
	Label   string
	Time    float64
	Bits    int
}

// ScheduledTransfer is one transfer as carried by the merged bus: it
// starts no earlier than its original time and occupies the bus for
// Bits/rate seconds.
type ScheduledTransfer struct {
	Transfer
	Start, End float64
}

// ChannelRates reports each channel's average rate over the observation
// window: total bits sent divided by the window length (the "channel
// average rate" AveRate(C) of Section 2).
func ChannelRates(transfers []Transfer, window float64) map[string]float64 {
	bits := make(map[string]int)
	for _, tr := range transfers {
		bits[tr.Channel] += tr.Bits
	}
	rates := make(map[string]float64, len(bits))
	for ch, b := range bits {
		rates[ch] = float64(b) / window
	}
	return rates
}

// RequiredBusRate reports the minimum rate the merged bus must sustain:
// the sum of the channel average rates (Eq. 1). For Fig. 2's channels A
// (4 b/s) and B (12 b/s) this is 16 b/s.
func RequiredBusRate(transfers []Transfer, window float64) float64 {
	var sum float64
	for _, r := range ChannelRates(transfers, window) {
		sum += r
	}
	return sum
}

// MergeSchedule serializes the channels' transfers onto a single bus of
// the given rate (bits/second). Transfers are taken in original time
// order (ties broken by channel then label, keeping the schedule
// deterministic); each starts at the later of its original time and the
// bus becoming free. While individual transfers may be delayed by bus
// access conflicts, a bus rate satisfying Eq. 1 guarantees the same
// amount of data moves in the same total time.
func MergeSchedule(transfers []Transfer, busRate float64) []ScheduledTransfer {
	if busRate <= 0 {
		panic(fmt.Sprintf("busgen: invalid bus rate %g", busRate))
	}
	sorted := make([]Transfer, len(transfers))
	copy(sorted, transfers)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Time != sorted[j].Time {
			return sorted[i].Time < sorted[j].Time
		}
		if sorted[i].Channel != sorted[j].Channel {
			return sorted[i].Channel < sorted[j].Channel
		}
		return sorted[i].Label < sorted[j].Label
	})
	out := make([]ScheduledTransfer, 0, len(sorted))
	free := 0.0
	for _, tr := range sorted {
		start := tr.Time
		if free > start {
			start = free
		}
		end := start + float64(tr.Bits)/busRate
		out = append(out, ScheduledTransfer{Transfer: tr, Start: start, End: end})
		free = end
	}
	return out
}

// MakespanPreserved reports whether the merged schedule finishes every
// transfer no later than the observation window — the property Fig. 2
// illustrates: the bits transferred over the individual channels are
// still sent over the shared bus in the same amount of time.
func MakespanPreserved(sched []ScheduledTransfer, window float64) bool {
	const eps = 1e-9
	for _, s := range sched {
		if s.End > window+eps {
			return false
		}
	}
	return true
}

// FormatSchedule renders the merged schedule as a table.
func FormatSchedule(sched []ScheduledTransfer) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-6s %10s %10s %10s %6s\n", "channel", "item", "orig time", "start", "end", "bits")
	for _, s := range sched {
		fmt.Fprintf(&b, "%-8s %-6s %10.2f %10.2f %10.2f %6d\n",
			s.Channel, s.Label, s.Time, s.Start, s.End, s.Bits)
	}
	return b.String()
}
