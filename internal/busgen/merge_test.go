package busgen

import (
	"math"
	"testing"
	"testing/quick"
)

// fig2Transfers reproduces the transfer pattern of Fig. 2: channel A
// sends two 8-bit items at t=0 and t=2; channel B sends three 16-bit
// items at t=0, 1 and 3, over a 4-second window.
func fig2Transfers() []Transfer {
	return []Transfer{
		{Channel: "A", Label: "A1", Time: 0, Bits: 8},
		{Channel: "A", Label: "A2", Time: 2, Bits: 8},
		{Channel: "B", Label: "B1", Time: 0, Bits: 16},
		{Channel: "B", Label: "B2", Time: 1, Bits: 16},
		{Channel: "B", Label: "B3", Time: 3, Bits: 16},
	}
}

func TestFig2ChannelRates(t *testing.T) {
	rates := ChannelRates(fig2Transfers(), 4)
	if rates["A"] != 4 {
		t.Errorf("AveRate(A) = %v, want 4 b/s", rates["A"])
	}
	if rates["B"] != 12 {
		t.Errorf("AveRate(B) = %v, want 12 b/s", rates["B"])
	}
	if got := RequiredBusRate(fig2Transfers(), 4); got != 16 {
		t.Errorf("RequiredBusRate = %v, want 16 b/s", got)
	}
}

func TestFig2MergeSchedule(t *testing.T) {
	sched := MergeSchedule(fig2Transfers(), 16)
	if len(sched) != 5 {
		t.Fatalf("schedule has %d entries", len(sched))
	}
	// Items serialize deterministically: A1, B1, B2, A2, B3. B2 is
	// delayed from t=1 to t=1.5 by the bus conflict, exactly as the
	// figure shows.
	wantOrder := []string{"A1", "B1", "B2", "A2", "B3"}
	for i, want := range wantOrder {
		if sched[i].Label != want {
			t.Fatalf("position %d = %s, want %s", i, sched[i].Label, want)
		}
	}
	b2 := sched[2]
	if b2.Start != 1.5 {
		t.Errorf("B2 start = %v, want 1.5 (delayed by bus conflict)", b2.Start)
	}
	if !MakespanPreserved(sched, 4) {
		t.Error("merged schedule exceeded the 4-second window")
	}
	last := sched[len(sched)-1]
	if last.End != 4 {
		t.Errorf("schedule ends at %v, want exactly 4 (100%% utilization)", last.End)
	}
}

func TestMergeScheduleUndercapacityOverrunsWindow(t *testing.T) {
	// Below the Eq. 1 rate the transfers cannot fit the window.
	sched := MergeSchedule(fig2Transfers(), 15)
	if MakespanPreserved(sched, 4) {
		t.Error("15 b/s bus should not preserve the 4-second makespan")
	}
}

func TestMergeScheduleNoOverlap(t *testing.T) {
	sched := MergeSchedule(fig2Transfers(), 16)
	for i := 1; i < len(sched); i++ {
		if sched[i].Start < sched[i-1].End-1e-9 {
			t.Fatalf("transfers %d and %d overlap on the bus", i-1, i)
		}
	}
}

func TestMergeScheduleRespectsReleaseTimes(t *testing.T) {
	sched := MergeSchedule(fig2Transfers(), 1000) // effectively infinite rate
	for _, s := range sched {
		if s.Start < s.Time {
			t.Fatalf("%s started at %v before its release %v", s.Label, s.Start, s.Time)
		}
	}
}

func TestMergeScheduleInvalidRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MergeSchedule(fig2Transfers(), 0)
}

// Property: at any rate satisfying Eq. 1 for a random transfer set whose
// releases leave enough slack, the bus conserves bits: total scheduled
// bits equals total offered bits, and the schedule is serialized.
func TestQuickMergeConservesBitsAndSerializes(t *testing.T) {
	f := func(seeds []uint8) bool {
		if len(seeds) == 0 {
			return true
		}
		if len(seeds) > 12 {
			seeds = seeds[:12]
		}
		var transfers []Transfer
		total := 0
		for i, s := range seeds {
			bits := int(s)%32 + 1
			total += bits
			transfers = append(transfers, Transfer{
				Channel: string(rune('A' + i%3)),
				Label:   string(rune('a' + i)),
				Time:    float64(int(s) % 5),
				Bits:    bits,
			})
		}
		sched := MergeSchedule(transfers, 8)
		got := 0
		for i, s := range sched {
			got += s.Bits
			if i > 0 && s.Start < sched[i-1].End-1e-9 {
				return false
			}
			wantDur := float64(s.Bits) / 8
			if math.Abs((s.End-s.Start)-wantDur) > 1e-9 {
				return false
			}
		}
		return got == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatScheduleSmoke(t *testing.T) {
	out := FormatSchedule(MergeSchedule(fig2Transfers(), 16))
	if len(out) == 0 {
		t.Fatal("empty format")
	}
}
