// Package busgen implements bus generation (Section 3 of Narayan &
// Gajski, DAC'94; algorithm from their EDAC'92 paper): given a group of
// channels to be implemented as a single bus and a set of designer
// constraints, determine the minimum-cost bus width whose transfer rate
// satisfies the data-transfer requirements of every channel.
//
// The algorithm examines every candidate width in [1, largest message].
// A width is *feasible* when the bus rate at that width is at least the
// sum of the channels' average rates (Eq. 1) — otherwise the processes
// communicating over the bus would be progressively delayed. Among
// feasible widths, the one minimizing the weighted sum of squared
// constraint violations is selected.
package busgen

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/estimate"
	"repro/internal/par"
	"repro/internal/spec"
)

// ConstraintKind enumerates the constraint types the designer may attach
// to a channel group (Section 3, step 4).
type ConstraintKind int

// Constraint kinds. Width constraints apply to the bus; rate constraints
// apply to a named channel.
const (
	MinBusWidth ConstraintKind = iota
	MaxBusWidth
	MinAveRate
	MaxAveRate
	MinPeakRate
	MaxPeakRate
)

func (k ConstraintKind) String() string {
	switch k {
	case MinBusWidth:
		return "min buswidth"
	case MaxBusWidth:
		return "max buswidth"
	case MinAveRate:
		return "min averate"
	case MaxAveRate:
		return "max averate"
	case MinPeakRate:
		return "min peakrate"
	case MaxPeakRate:
		return "max peakrate"
	}
	return "constraint"
}

// Constraint is one designer constraint with its relative weight.
type Constraint struct {
	Kind ConstraintKind
	// Channel names the channel a rate constraint applies to; empty for
	// bus-width constraints.
	Channel string
	// Value is the bound, in pins for width constraints and bits/clock
	// for rate constraints.
	Value float64
	// Weight is the designer's relative weight for this constraint.
	Weight float64
}

func (c Constraint) String() string {
	if c.Channel != "" {
		return fmt.Sprintf("%s(%s) = %g (weight %g)", c.Kind, c.Channel, c.Value, c.Weight)
	}
	return fmt.Sprintf("%s = %g (weight %g)", c.Kind, c.Value, c.Weight)
}

// Penalty maps a constraint violation magnitude to a cost contribution.
type Penalty int

// Penalty functions. The paper uses the square of the violation; the
// linear form is provided for the cost-function ablation.
const (
	SquaredPenalty Penalty = iota
	LinearPenalty
)

// Config parameterizes bus generation.
type Config struct {
	// Protocol selects the transfer protocol used for the rate model;
	// the default (zero value) is the paper's full handshake.
	Protocol spec.Protocol
	// Constraints are the designer constraints and weights.
	Constraints []Constraint
	// MinWidth/MaxWidth optionally narrow the examined range; zero
	// means the paper's default (1 .. largest message).
	MinWidth, MaxWidth int
	// Penalty selects the violation penalty shape (default squared).
	Penalty Penalty
	// QuantizeRates, when true, evaluates rate constraints on whole
	// bits/clock (floor of the fractional rate), matching the paper's
	// integer rate tables (Fig. 8 reports 10/9/8 bits/clock). Set by
	// DefaultConfig.
	QuantizeRates bool
	// Workers bounds the number of goroutines evaluating candidate
	// widths: 0 means GOMAXPROCS, 1 means serial. Evaluation order in
	// the trace, and the selected width, are identical either way.
	Workers int
}

// DefaultConfig returns the configuration used for the paper's
// experiments: full handshake, squared penalties, quantized rates.
func DefaultConfig() Config {
	return Config{Protocol: spec.FullHandshake, Penalty: SquaredPenalty, QuantizeRates: true}
}

// WidthEval records the evaluation of one candidate width — one row of
// the algorithm's search trace.
type WidthEval struct {
	Width       int
	BusRate     float64 // bits/clock at this width (Eq. 2)
	SumAveRates float64 // Σ AveRate(C) at this width
	Feasible    bool    // BusRate >= SumAveRates (Eq. 1)
	Cost        float64 // weighted sum of penalized violations
}

// Result is the outcome of bus generation.
type Result struct {
	// Width is the selected bus width in data lines (pins).
	Width int
	// BusRate is the bus transfer rate at the selected width.
	BusRate float64
	// Cost is the cost of the selected width.
	Cost float64
	// SeparateLines is the number of data lines the channels would need
	// if each were implemented separately (Σ message bits).
	SeparateLines int
	// InterconnectReduction is the fractional reduction in data lines
	// versus separate implementation: (separate - width) / separate.
	InterconnectReduction float64
	// Trace holds the per-width evaluations, in width order.
	Trace []WidthEval
}

// ErrInfeasible reports that no width in the examined range satisfies
// Eq. 1. The paper's remedy is to split the channel group across more
// than one bus (see Split).
var ErrInfeasible = errors.New("busgen: no feasible bus width for channel group")

// Generate runs the bus-generation algorithm for the channel group.
// Candidate widths are evaluated across cfg.Workers goroutines into
// their trace slots, then scanned serially for the minimum-cost
// feasible width, so the result is independent of scheduling. The
// channel group must come from the pre-refinement specification (the
// estimator memoizes statement walks; see estimate.Estimator).
func Generate(channels []*spec.Channel, est *estimate.Estimator, cfg Config) (*Result, error) {
	if len(channels) == 0 {
		return nil, errors.New("busgen: empty channel group")
	}
	lo, hi := widthRange(channels, cfg)

	res := &Result{SeparateLines: SeparateLines(channels)}
	if hi >= lo {
		res.Trace = make([]WidthEval, hi-lo+1)
		par.For(len(res.Trace), cfg.Workers, func(i int) {
			w := lo + i
			ev := WidthEval{
				Width:       w,
				BusRate:     estimate.BusRate(w, cfg.Protocol),
				SumAveRates: est.SumAveRates(channels, w, cfg.Protocol),
			}
			ev.Feasible = ev.BusRate >= ev.SumAveRates
			ev.Cost = cost(channels, est, cfg, w)
			res.Trace[i] = ev
		})
	}
	bestIdx := -1
	for i, ev := range res.Trace {
		if ev.Feasible && (bestIdx < 0 || ev.Cost < res.Trace[bestIdx].Cost) {
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		return res, ErrInfeasible
	}
	best := res.Trace[bestIdx]
	res.Width = best.Width
	res.BusRate = best.BusRate
	res.Cost = best.Cost
	res.InterconnectReduction = 1 - float64(best.Width)/float64(res.SeparateLines)
	return res, nil
}

// widthRange determines the candidate range: 1 to the largest message
// sent by any channel (Section 3, step 1), clipped by the config.
func widthRange(channels []*spec.Channel, cfg Config) (lo, hi int) {
	lo, hi = 1, 1
	for _, c := range channels {
		if m := c.MessageBits(); m > hi {
			hi = m
		}
	}
	if cfg.MinWidth > 0 {
		lo = cfg.MinWidth
	}
	if cfg.MaxWidth > 0 {
		hi = cfg.MaxWidth
	}
	return lo, hi
}

// SeparateLines reports the data lines needed to implement every channel
// with its own dedicated wires — the baseline against which interconnect
// reduction is measured (46 pins for the FLC's two 23-bit channels).
func SeparateLines(channels []*spec.Channel) int {
	total := 0
	for _, c := range channels {
		total += c.MessageBits()
	}
	return total
}

// cost computes the weighted penalty of width w against the constraints
// (Section 3, step 4).
func cost(channels []*spec.Channel, est *estimate.Estimator, cfg Config, w int) float64 {
	quant := func(r float64) float64 {
		if cfg.QuantizeRates {
			return math.Floor(r)
		}
		return r
	}
	var total float64
	for _, con := range cfg.Constraints {
		var violation float64
		switch con.Kind {
		case MinBusWidth:
			violation = math.Max(0, con.Value-float64(w))
		case MaxBusWidth:
			violation = math.Max(0, float64(w)-con.Value)
		case MinPeakRate:
			violation = math.Max(0, con.Value-quant(estimate.PeakRate(w, cfg.Protocol)))
		case MaxPeakRate:
			violation = math.Max(0, quant(estimate.PeakRate(w, cfg.Protocol))-con.Value)
		case MinAveRate:
			if c := findChannel(channels, con.Channel); c != nil {
				violation = math.Max(0, con.Value-quant(est.AveRate(c, w, cfg.Protocol)))
			}
		case MaxAveRate:
			if c := findChannel(channels, con.Channel); c != nil {
				violation = math.Max(0, quant(est.AveRate(c, w, cfg.Protocol))-con.Value)
			}
		}
		switch cfg.Penalty {
		case LinearPenalty:
			total += con.Weight * violation
		default:
			total += con.Weight * violation * violation
		}
	}
	return total
}

func findChannel(channels []*spec.Channel, name string) *spec.Channel {
	for _, c := range channels {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Split partitions an infeasible channel group into the smallest number
// of subgroups that each admit a feasible bus, the remedy the paper
// suggests when no single bus can sustain the channels' rates. Channels
// are considered in decreasing average-rate order and placed first-fit
// into an existing feasible group. Channels that are infeasible even
// alone are returned as singleton groups with ok=false.
func Split(channels []*spec.Channel, est *estimate.Estimator, cfg Config) (groups [][]*spec.Channel, ok bool) {
	sorted := make([]*spec.Channel, len(channels))
	copy(sorted, channels)
	sort.SliceStable(sorted, func(i, j int) bool {
		wi := widestMsg(sorted[i])
		wj := widestMsg(sorted[j])
		return est.AveRate(sorted[i], wi, cfg.Protocol) > est.AveRate(sorted[j], wj, cfg.Protocol)
	})
	ok = true
	for _, c := range sorted {
		placed := false
		for gi, g := range groups {
			candidate := append(append([]*spec.Channel{}, g...), c)
			if _, err := Generate(candidate, est, cfg); err == nil {
				groups[gi] = candidate
				placed = true
				break
			}
		}
		if !placed {
			if _, err := Generate([]*spec.Channel{c}, est, cfg); err != nil {
				ok = false
			}
			groups = append(groups, []*spec.Channel{c})
		}
	}
	return groups, ok
}

func widestMsg(c *spec.Channel) int {
	if m := c.MessageBits(); m > 0 {
		return m
	}
	return 1
}

// FormatTrace renders the search trace as an aligned table for reports.
func FormatTrace(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%5s  %10s  %12s  %8s  %10s\n", "width", "bus rate", "sum averate", "feasible", "cost")
	for _, ev := range res.Trace {
		fmt.Fprintf(&b, "%5d  %10.3f  %12.3f  %8t  %10.3f\n",
			ev.Width, ev.BusRate, ev.SumAveRates, ev.Feasible, ev.Cost)
	}
	return b.String()
}

// Utilization reports the fraction of the bus's transfer capacity the
// channel group would consume at the given width: Σ AveRate / BusRate.
// The paper's stated goal is a bus that is never idle (utilization 1.0);
// values above 1.0 mean Eq. 1 is violated and the processes would be
// progressively delayed.
func Utilization(channels []*spec.Channel, est *estimate.Estimator, width int, p spec.Protocol) float64 {
	return est.SumAveRates(channels, width, p) / estimate.BusRate(width, p)
}
