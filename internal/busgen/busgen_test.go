package busgen

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/estimate"
	"repro/internal/spec"
)

// flcChannels builds two channels shaped like the FLC's ch1/ch2: 23-bit
// messages (16-bit data + 7-bit address into a 128-entry array), with
// explicit access counts and lifetimes so rate arithmetic is exact.
func flcChannels(accesses int, lifetime int64) (*spec.Channel, *spec.Channel, *estimate.Estimator) {
	sys := spec.NewSystem("flc")
	chip1 := sys.AddModule("chip1")
	chip2 := sys.AddModule("chip2")
	eval := chip1.AddBehavior(spec.NewBehavior("EVAL_R3"))
	conv := chip1.AddBehavior(spec.NewBehavior("CONV_R2"))
	trru0 := chip2.AddVariable(spec.NewVar("trru0", spec.Array(128, spec.BitVector(16))))
	trru2 := chip2.AddVariable(spec.NewVar("trru2", spec.Array(128, spec.BitVector(16))))
	ch1 := &spec.Channel{Name: "ch1", Accessor: eval, Var: trru0, Dir: spec.Write,
		Accesses: accesses, LifetimeClocks: lifetime}
	ch2 := &spec.Channel{Name: "ch2", Accessor: conv, Var: trru2, Dir: spec.Read,
		Accesses: accesses, LifetimeClocks: lifetime}
	sys.AddChannel(ch1)
	sys.AddChannel(ch2)
	return ch1, ch2, estimate.New([]*spec.Channel{ch1, ch2})
}

func TestWidthRangeDefault(t *testing.T) {
	ch1, ch2, est := flcChannels(128, 4000)
	res, err := Generate([]*spec.Channel{ch1, ch2}, est, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 23 {
		t.Fatalf("examined %d widths, want 23 (1..largest message)", len(res.Trace))
	}
	if res.Trace[0].Width != 1 || res.Trace[22].Width != 23 {
		t.Fatalf("range = [%d..%d]", res.Trace[0].Width, res.Trace[22].Width)
	}
}

func TestNoConstraintsPicksNarrowestFeasible(t *testing.T) {
	// With no constraints every feasible width costs zero and the
	// first (narrowest) feasible width wins.
	ch1, ch2, est := flcChannels(128, 4000)
	res, err := Generate([]*spec.Channel{ch1, ch2}, est, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// sum of ave rates = 2 * 128*23/4000 = 1.472 b/clk; narrowest
	// feasible width under the full handshake: w/2 >= 1.472 -> w = 3.
	if res.Width != 3 {
		t.Fatalf("selected %d, want 3\n%s", res.Width, FormatTrace(res))
	}
	if res.Cost != 0 {
		t.Fatalf("cost = %f", res.Cost)
	}
}

func TestEq1FeasibilityBoundary(t *testing.T) {
	// Lifetime chosen so the sum of ave rates is exactly 2.0 b/clk:
	// width 4 (rate 2.0) is feasible, width 3 (1.5) is not.
	ch1, ch2, est := flcChannels(100, 2300) // each rate = 2300/2300 = 1.0
	res, err := Generate([]*spec.Channel{ch1, ch2}, est, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Width != 4 {
		t.Fatalf("selected %d, want 4\n%s", res.Width, FormatTrace(res))
	}
	if res.Trace[2].Feasible { // width 3
		t.Fatal("width 3 should be infeasible (1.5 < 2.0)")
	}
	if !res.Trace[3].Feasible {
		t.Fatal("width 4 should be feasible (2.0 >= 2.0)")
	}
}

// fig8Config returns the constraint set of one of the paper's three
// designs (Fig. 8).
func fig8Config(design string) Config {
	cfg := DefaultConfig()
	switch design {
	case "A":
		cfg.Constraints = []Constraint{
			{Kind: MinPeakRate, Channel: "ch2", Value: 10, Weight: 10},
		}
	case "B":
		cfg.Constraints = []Constraint{
			{Kind: MinPeakRate, Channel: "ch2", Value: 10, Weight: 2},
			{Kind: MinBusWidth, Value: 14, Weight: 1},
			{Kind: MaxBusWidth, Value: 18, Weight: 1},
		}
	case "C":
		cfg.Constraints = []Constraint{
			{Kind: MinPeakRate, Channel: "ch2", Value: 10, Weight: 1},
			{Kind: MinBusWidth, Value: 16, Weight: 5},
			{Kind: MaxBusWidth, Value: 16, Weight: 5},
		}
	}
	return cfg
}

func TestFig8Designs(t *testing.T) {
	// The headline bus-generation result: three constraint sets over
	// the same two FLC channels select widths 20, 18 and 16, with bus
	// rates 10, 9 and 8 bits/clock.
	cases := []struct {
		design    string
		wantWidth int
		wantRate  float64
	}{
		{"A", 20, 10},
		{"B", 18, 9},
		{"C", 16, 8},
	}
	for _, c := range cases {
		ch1, ch2, est := flcChannels(128, 4000)
		res, err := Generate([]*spec.Channel{ch1, ch2}, est, fig8Config(c.design))
		if err != nil {
			t.Fatalf("design %s: %v", c.design, err)
		}
		if res.Width != c.wantWidth {
			t.Errorf("design %s: width %d, want %d\n%s", c.design, res.Width, c.wantWidth, FormatTrace(res))
		}
		if res.BusRate != c.wantRate {
			t.Errorf("design %s: rate %v, want %v", c.design, res.BusRate, c.wantRate)
		}
		if res.SeparateLines != 46 {
			t.Errorf("design %s: separate lines %d, want 46", c.design, res.SeparateLines)
		}
		wantRed := 1 - float64(c.wantWidth)/46
		if math.Abs(res.InterconnectReduction-wantRed) > 1e-9 {
			t.Errorf("design %s: reduction %f, want %f", c.design, res.InterconnectReduction, wantRed)
		}
	}
}

func TestInterconnectReductionMatchesPaperBand(t *testing.T) {
	// Paper reports 56/61/66 %; our exact fractions are 56.5/60.9/65.2.
	for _, c := range []struct {
		width  int
		lo, hi float64
	}{{20, 55, 58}, {18, 60, 62}, {16, 64, 67}} {
		red := (1 - float64(c.width)/46) * 100
		if red < c.lo || red > c.hi {
			t.Errorf("width %d: reduction %.1f%% outside paper band [%v,%v]", c.width, red, c.lo, c.hi)
		}
	}
}

func TestInfeasibleGroupReturnsError(t *testing.T) {
	// Rates so high no width can satisfy Eq. 1: each channel wants
	// 20 b/clk, bus max rate is 23/2 = 11.5.
	ch1, ch2, est := flcChannels(1000, 1150)
	_, err := Generate([]*spec.Channel{ch1, ch2}, est, DefaultConfig())
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestSplitRecoversInfeasibleGroup(t *testing.T) {
	// Each channel alone needs 2.56 b/clk (feasible: max 11.5), but
	// together they need 5.12 > what a shared 23-bit bus can do only
	// if > 11.5... craft rates so pair infeasible but singles fine.
	ch1, ch2, est := flcChannels(1000, 2300) // each 10 b/clk; sum 20 > 11.5
	groups, ok := Split([]*spec.Channel{ch1, ch2}, est, DefaultConfig())
	if !ok {
		t.Fatal("Split reported failure")
	}
	if len(groups) != 2 {
		t.Fatalf("Split produced %d groups, want 2", len(groups))
	}
}

func TestSplitKeepsFeasiblePairTogether(t *testing.T) {
	ch1, ch2, est := flcChannels(128, 4000)
	groups, ok := Split([]*spec.Channel{ch1, ch2}, est, DefaultConfig())
	if !ok || len(groups) != 1 || len(groups[0]) != 2 {
		t.Fatalf("Split broke up a feasible pair: %d groups", len(groups))
	}
}

func TestSplitFlagsHopelessChannel(t *testing.T) {
	ch1, _, est := flcChannels(10000, 2300) // 100 b/clk alone: hopeless
	_, ok := Split([]*spec.Channel{ch1}, est, DefaultConfig())
	if ok {
		t.Fatal("Split accepted an individually infeasible channel")
	}
}

func TestPenaltyAblationShiftsSelection(t *testing.T) {
	// Squared penalties punish large violations disproportionately;
	// under design B the linear penalty moves the optimum.
	ch1, ch2, est := flcChannels(128, 4000)
	sq := fig8Config("B")
	lin := fig8Config("B")
	lin.Penalty = LinearPenalty
	rSq, err1 := Generate([]*spec.Channel{ch1, ch2}, est, sq)
	rLin, err2 := Generate([]*spec.Channel{ch1, ch2}, est, lin)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	// Under the linear penalty, w=14 costs 2*3+0+0=6 while w=18 costs
	// 2*1=2 and w=20 costs 1*2=2 -> first minimum at 18 still; verify
	// the cost landscape differs even if the argmin coincides.
	same := true
	for i := range rSq.Trace {
		if rSq.Trace[i].Cost != rLin.Trace[i].Cost {
			same = false
			break
		}
	}
	if same {
		t.Fatal("penalty ablation produced identical cost landscapes")
	}
	if rSq.Width != 18 {
		t.Fatalf("squared design B width = %d", rSq.Width)
	}
}

func TestQuantizeRatesOffChangesDesignB(t *testing.T) {
	// With fractional rates, width 19 (peak 9.5) beats width 18 under
	// design B: 2*0.25 + 1 = 1.5 < 2. The quantized (paper) table
	// keeps 18.
	ch1, ch2, est := flcChannels(128, 4000)
	cfg := fig8Config("B")
	cfg.QuantizeRates = false
	res, err := Generate([]*spec.Channel{ch1, ch2}, est, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Width != 19 {
		t.Fatalf("unquantized design B width = %d, want 19\n%s", res.Width, FormatTrace(res))
	}
}

func TestExplicitWidthRange(t *testing.T) {
	ch1, ch2, est := flcChannels(128, 4000)
	cfg := DefaultConfig()
	cfg.MinWidth, cfg.MaxWidth = 8, 16
	res, err := Generate([]*spec.Channel{ch1, ch2}, est, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 9 || res.Trace[0].Width != 8 {
		t.Fatalf("range trace wrong: %d entries from %d", len(res.Trace), res.Trace[0].Width)
	}
}

func TestEmptyGroupRejected(t *testing.T) {
	_, _, est := flcChannels(1, 100)
	if _, err := Generate(nil, est, DefaultConfig()); err == nil {
		t.Fatal("empty group accepted")
	}
}

func TestConstraintString(t *testing.T) {
	c := Constraint{Kind: MinPeakRate, Channel: "ch2", Value: 10, Weight: 2}
	if !strings.Contains(c.String(), "ch2") || !strings.Contains(c.String(), "10") {
		t.Errorf("Constraint.String = %q", c.String())
	}
	w := Constraint{Kind: MaxBusWidth, Value: 18, Weight: 1}
	if strings.Contains(w.String(), "()") {
		t.Errorf("bus constraint rendered channel: %q", w.String())
	}
}

func TestUtilization(t *testing.T) {
	ch1, ch2, est := flcChannels(100, 2300) // each 1.0 b/clk
	group := []*spec.Channel{ch1, ch2}
	// At width 4 (rate 2.0) the two 1.0 b/clk channels use the bus
	// fully: utilization exactly 1.0 — the paper's ideal.
	if got := Utilization(group, est, 4, spec.FullHandshake); got != 1.0 {
		t.Errorf("utilization at width 4 = %v, want 1.0", got)
	}
	// Narrower: overloaded (> 1). Wider: idle capacity (< 1).
	if got := Utilization(group, est, 2, spec.FullHandshake); got <= 1.0 {
		t.Errorf("utilization at width 2 = %v, want > 1", got)
	}
	if got := Utilization(group, est, 8, spec.FullHandshake); got >= 1.0 {
		t.Errorf("utilization at width 8 = %v, want < 1", got)
	}
	// Feasibility and utilization agree: feasible iff utilization <= 1.
	res, err := Generate(group, est, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range res.Trace {
		u := Utilization(group, est, ev.Width, spec.FullHandshake)
		if ev.Feasible != (u <= 1.0) {
			t.Errorf("width %d: feasible=%t but utilization=%v", ev.Width, ev.Feasible, u)
		}
	}
}
