package busgen_test

import (
	"fmt"
	"log"

	"repro/internal/busgen"
	"repro/internal/estimate"
	"repro/internal/spec"
)

// ExampleGenerate reproduces design A of the paper's Fig. 8: two FLC
// channels (16-bit data + 7-bit address, 128 accesses each) under a
// minimum peak-rate constraint of 10 bits/clock on ch2.
func ExampleGenerate() {
	sys := spec.NewSystem("flc")
	chip1 := sys.AddModule("chip1")
	chip2 := sys.AddModule("chip2")
	eval := chip1.AddBehavior(spec.NewBehavior("EVAL_R3"))
	conv := chip1.AddBehavior(spec.NewBehavior("CONV_R2"))
	trru0 := chip2.AddVariable(spec.NewVar("trru0", spec.Array(128, spec.BitVector(16))))
	trru2 := chip2.AddVariable(spec.NewVar("trru2", spec.Array(128, spec.BitVector(16))))
	ch1 := &spec.Channel{Name: "ch1", Accessor: eval, Var: trru0, Dir: spec.Write,
		Accesses: 128, LifetimeClocks: 4000}
	ch2 := &spec.Channel{Name: "ch2", Accessor: conv, Var: trru2, Dir: spec.Read,
		Accesses: 128, LifetimeClocks: 4000}
	sys.AddChannel(ch1)
	sys.AddChannel(ch2)

	cfg := busgen.DefaultConfig()
	cfg.Constraints = []busgen.Constraint{
		{Kind: busgen.MinPeakRate, Channel: "ch2", Value: 10, Weight: 10},
	}
	res, err := busgen.Generate([]*spec.Channel{ch1, ch2}, estimate.New([]*spec.Channel{ch1, ch2}), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("width %d pins, rate %g bits/clock, reduction %.0f%%\n",
		res.Width, res.BusRate, res.InterconnectReduction*100)
	// Output:
	// width 20 pins, rate 10 bits/clock, reduction 57%
}
