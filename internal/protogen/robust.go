// Robust (fault-tolerant) wire sequences for protocol generation.
//
// The paper's Fig. 4 protocol assumes ideal wires: every strobe
// transition arrives, so every "wait until" eventually fires. Under wire
// faults (a dropped DONE, a stuck START, a flipped DATA bit) those waits
// hang and the refined system deadlocks. Config.Robust replaces the
// generated sequences with hardened variants built here:
//
//   - every handshake wait becomes a bounded wait ("wait until cond for
//     T"), so a lost strobe surfaces as a timeout instead of a hang;
//   - full-handshake accessors wrap the whole transaction in a retry
//     loop: on a timeout (or a parity NACK) the accessor pulses a
//     dedicated RST line — resynchronizing the server back to its
//     dispatch loop — and retransmits from the first word, up to
//     MaxRetries times; exhausted budgets increment a per-module abort
//     counter (<bus>_ABORTS) and give up cleanly;
//   - variable processes get a watchdog: any expired wait (or an
//     observed RST pulse) returns the serve procedure to the dispatch
//     loop, which first clears the server-driven lines (DONE, NACK), so
//     a half-finished transaction never wedges the server or the bus;
//   - with Config.Parity, the sender additionally drives PAR (even
//     parity over the DATA word and the ID lines) and the receiver
//     answers a mismatch on NACK instead of acknowledging, folding
//     corruption detection into the same retransmission path.
//
// Retries restart the *transaction*, not the word: after a lost strobe
// the two sides cannot agree on which word failed, but a transaction
// retried from word zero against a freshly resynchronized server is
// idempotent (writes re-commit the same message, reads re-read).
//
// The half handshake has no acknowledgement wire, so the accessor never
// blocks and cannot detect loss; Robust there reduces to the server
// watchdog (hardenServeProc), which bounds every serve-side wait.
package protogen

import (
	"repro/internal/bits"
	"repro/internal/spec"
)

// robustRetry reports whether the full retransmission machinery (RST
// line, retry loops, abort counters) is generated. It needs a
// sender-visible acknowledgement, i.e. the full handshake.
func (g *generator) robustRetry() bool {
	return g.cfg.Robust && g.cfg.Protocol == spec.FullHandshake
}

// timeout returns the bounded-wait deadline in clocks.
func (g *generator) timeout() int64 {
	if g.cfg.TimeoutClocks > 0 {
		return g.cfg.TimeoutClocks
	}
	return DefaultTimeoutClocks
}

// retries returns the retransmission budget per transaction.
func (g *generator) retries() int {
	if g.cfg.MaxRetries > 0 {
		return g.cfg.MaxRetries
	}
	return DefaultMaxRetries
}

// abortVarFor returns (creating on first use) the module-level counter
// of cleanly aborted transactions for accessors on module m.
func (g *generator) abortVarFor(m *spec.Module) *spec.Variable {
	if v, ok := g.abortVars[m]; ok {
		return v
	}
	name := g.bus.Signal.Name + "_ABORTS"
	if g.sys.FindVariable(name) != nil {
		name += "_" + m.Name
	}
	v := spec.NewVar(name, spec.Integer)
	m.AddVariable(v)
	g.abortVars[m] = v
	g.ref.AbortCounters = append(g.ref.AbortCounters, v)
	return v
}

// parityExpr XOR-reduces the low width bits of a vector expression to a
// single parity bit (a 1-wide vector, comparable against B.PAR).
func parityExpr(x spec.Expr, width int) spec.Expr {
	terms := make([]spec.Expr, width)
	for i := 0; i < width; i++ {
		terms[i] = spec.SliceBits(x, i, i)
	}
	// Balanced XOR tree, log2(width) levels deep like the hardware.
	for len(terms) > 1 {
		var next []spec.Expr
		for i := 0; i+1 < len(terms); i += 2 {
			next = append(next, spec.Bin(spec.OpXor, terms[i], terms[i+1]))
		}
		if len(terms)%2 == 1 {
			next = append(next, terms[len(terms)-1])
		}
		terms = next
	}
	return terms[0]
}

// driveParity returns the PAR value the sender computes from the values
// it intends to put on the wires: the (padded) word and the channel's ID
// constant. Using the intended — not observed — values means a fault on
// any covered line shows up at the receiver as a mismatch.
func (g *generator) driveParity(word spec.Expr, c *spec.Channel) spec.Expr {
	x := g.padToBus(word)
	w := g.bus.Width
	if c.IDBits > 0 {
		x = spec.Bin(spec.OpConcat, x, spec.Vec(c.ID))
		w += c.IDBits
	}
	return parityExpr(x, w)
}

// serverDriveParity is the server-side counterpart for the data phase of
// a read: the server drives the word but the ID lines stay under the
// accessor, so it reads them off the bus.
func (g *generator) serverDriveParity(word spec.Expr) spec.Expr {
	x := g.padToBus(word)
	w := g.bus.Width
	if idb := g.bus.IDBits(); idb > 0 {
		x = spec.Bin(spec.OpConcat, x, g.busField("ID"))
		w += idb
	}
	return parityExpr(x, w)
}

// checkParityMismatch returns the receiver's check: parity recomputed
// from the observed DATA and ID lines differs from the observed PAR.
func (g *generator) checkParityMismatch() spec.Expr {
	x := g.busField("DATA")
	w := g.bus.Width
	if idb := g.bus.IDBits(); idb > 0 {
		x = spec.Bin(spec.OpConcat, x, g.busField("ID"))
		w += idb
	}
	return spec.Neq(parityExpr(x, w), g.busField("PAR"))
}

// hardenServeProc bounds every handshake wait of a serve procedure and
// returns to the dispatch loop when one expires — the watchdog, for
// protocols whose serve sequences are otherwise kept (half handshake).
func (g *generator) hardenServeProc(p *spec.Procedure) {
	tmo := spec.NewVar("tmo", spec.Bool)
	used := false
	p.Body = spec.RewriteStmts(p.Body, func(s spec.Stmt) []spec.Stmt {
		w, ok := s.(*spec.Wait)
		if !ok || w.Until == nil || w.HasFor {
			return spec.Keep(s)
		}
		used = true
		return []spec.Stmt{
			spec.WaitUntilFor(w.Until, g.timeout(), tmo),
			&spec.If{Cond: spec.Ref(tmo), Then: []spec.Stmt{&spec.Return{}}},
		}
	})
	if used {
		p.Locals = append(p.Locals, tmo)
	}
}

// abortWatch is the server-side bail-out condition after a bounded wait:
// the wait expired, or the accessor is pulsing RST (or, with
// EpochResync, EPOCH) to resynchronize.
func (g *generator) abortWatch(tmo *spec.Variable) spec.Expr {
	return g.orRST(spec.Ref(tmo))
}

// orRST widens a server wait condition to also wake on the RST pulse —
// and, with EpochResync, on the EPOCH pulse mirroring it, so the resync
// survives the loss of either edge.
func (g *generator) orRST(cond spec.Expr) spec.Expr {
	cond = spec.LogicalOr(cond, spec.Eq(g.busField("RST"), spec.VecString("1")))
	if g.cfg.EpochResync {
		cond = spec.LogicalOr(cond, spec.Eq(g.busField("EPOCH"), spec.VecString("1")))
	}
	return cond
}

// resyncStmts emits the accessor's RST pulse opening a retransmission:
// long enough (two clocks high) that every bounded server wait observes
// it, followed by one clock of recovery. With EpochResync the EPOCH
// line pulses in lockstep, so dropping one of the two rise events still
// resynchronizes every server.
func (g *generator) resyncStmts() []spec.Stmt {
	stmts := []spec.Stmt{
		spec.AssignSig(g.busField("RST"), spec.VecString("1")),
	}
	if g.cfg.EpochResync {
		stmts = append(stmts, spec.AssignSig(g.busField("EPOCH"), spec.VecString("1")))
	}
	stmts = append(stmts,
		spec.WaitFor(2),
		spec.AssignSig(g.busField("RST"), spec.VecString("0")),
	)
	if g.cfg.EpochResync {
		stmts = append(stmts, spec.AssignSig(g.busField("EPOCH"), spec.VecString("0")))
	}
	return append(stmts, spec.WaitFor(1))
}

// seqBit is the SEQ line value for accessor-driven word idx: the word
// index's parity.
func seqBit(idx int) spec.Expr {
	if idx%2 == 1 {
		return spec.VecString("1")
	}
	return spec.VecString("0")
}

// seqDrive emits the accessor's SEQ assignment for word idx (nil slice
// without AckSeq). It lands in the same delta batch as the START rise,
// so the server observes both together.
func (g *generator) seqDrive(idx int) []spec.Stmt {
	if !g.cfg.AckSeq {
		return nil
	}
	return []spec.Stmt{spec.AssignSig(g.busField("SEQ"), seqBit(idx))}
}

// seqMatch narrows a server's word-idx accept condition to the matching
// SEQ parity (nil without AckSeq): a stale strobe left over from the
// previous word carries the wrong parity and is not re-served.
func (g *generator) seqMatch(idx int) spec.Expr {
	if !g.cfg.AckSeq {
		return nil
	}
	return spec.Eq(g.busField("SEQ"), seqBit(idx))
}

// retryLoop wraps the per-word transfer groups of one transaction in the
// bounded retransmission loop:
//
//	ok := false; attempt := 0;
//	while not ok and attempt <= MaxRetries loop
//	  if attempt > 0 then <RST pulse>; end if;
//	  ok := true;
//	  B.ID <= <id>;                      -- re-driven: heals flipped IDs
//	  if ok then <word 0>; end if;       -- each word clears ok on failure
//	  ...
//	  attempt := attempt + 1;
//	end loop;
func (g *generator) retryLoop(c *spec.Channel, ok, attempt *spec.Variable, words [][]spec.Stmt) []spec.Stmt {
	inner := []spec.Stmt{
		&spec.If{Cond: spec.Gt(spec.Ref(attempt), spec.Int(0)), Then: g.resyncStmts()},
		spec.AssignVar(spec.Ref(ok), &spec.BoolLit{Value: true}),
	}
	inner = append(inner, g.setID(c)...)
	for _, w := range words {
		inner = append(inner, &spec.If{Cond: spec.Ref(ok), Then: w})
	}
	inner = append(inner, spec.AssignVar(spec.Ref(attempt), spec.Add(spec.Ref(attempt), spec.Int(1))))
	return []spec.Stmt{
		spec.AssignVar(spec.Ref(ok), &spec.BoolLit{Value: false}),
		spec.AssignVar(spec.Ref(attempt), spec.Int(0)),
		&spec.While{
			Cond: spec.LogicalAnd(spec.Not(spec.Ref(ok)), spec.Le(spec.Ref(attempt), spec.Int(int64(g.retries())))),
			Body: inner,
		},
	}
}

// abortStmts counts an exhausted retry budget. Deliberately not a
// Return: the arbitration release (wrapArbitration) must still run so an
// aborting accessor does not hold the bus grant forever.
func (g *generator) abortStmts(c *spec.Channel, ok *spec.Variable) []spec.Stmt {
	ab := g.abortVarFor(c.Accessor.Owner)
	return []spec.Stmt{
		&spec.If{
			Cond: spec.Not(spec.Ref(ok)),
			Then: []spec.Stmt{spec.AssignVar(spec.Ref(ab), spec.Add(spec.Ref(ab), spec.Int(1)))},
		},
	}
}

// robustSendWordStmts emits one hardened accessor-driven word:
//
//	B.DATA <= <word>; [B.PAR <= parity;]
//	B.START <= '1';
//	wait until B.DONE = '1' [or B.NACK = '1'] for T -> tmo;
//	if tmo [or B.NACK = '1'] then
//	  ok := false; B.START <= '0'; wait for 1;
//	else
//	  B.START <= '0';
//	  wait until B.DONE = '0' for T -> tmo;
//	  if tmo then ok := false; end if;
//	end if;
func (g *generator) robustSendWordStmts(c *spec.Channel, idx int, word spec.Expr, ok, tmo *spec.Variable) []spec.Stmt {
	one := spec.VecString("1")
	zero := spec.VecString("0")
	waitCond := spec.Eq(g.busField("DONE"), one)
	failCond := spec.Expr(spec.Ref(tmo))
	if g.cfg.Parity {
		nack := spec.Eq(g.busField("NACK"), one)
		waitCond = spec.LogicalOr(waitCond, nack)
		failCond = spec.LogicalOr(failCond, nack)
	}
	stmts := []spec.Stmt{
		spec.AssignSig(g.busField("DATA"), g.padToBus(word)),
	}
	if g.cfg.Parity {
		stmts = append(stmts, spec.AssignSig(g.busField("PAR"), g.driveParity(word, c)))
	}
	stmts = append(stmts, g.seqDrive(idx)...)
	stmts = append(stmts,
		spec.AssignSig(g.busField("START"), one),
		spec.WaitUntilFor(waitCond, g.timeout(), tmo),
		&spec.If{
			Cond: failCond,
			Then: []spec.Stmt{
				spec.AssignVar(spec.Ref(ok), &spec.BoolLit{Value: false}),
				spec.AssignSig(g.busField("START"), zero),
				spec.WaitFor(1),
			},
			Else: []spec.Stmt{
				spec.AssignSig(g.busField("START"), zero),
				spec.WaitUntilFor(spec.Eq(g.busField("DONE"), zero), g.timeout(), tmo),
				&spec.If{Cond: spec.Ref(tmo), Then: []spec.Stmt{
					spec.AssignVar(spec.Ref(ok), &spec.BoolLit{Value: false}),
					spec.WaitFor(1),
				}},
			},
		},
	)
	return stmts
}

// robustServeWordStmts emits the hardened server side of one
// accessor-driven word: the baseline sequence with every wait bounded,
// watching RST, and bailing to the dispatch loop on any anomaly. With
// parity, a corrupted word is answered on NACK instead of DONE.
func (g *generator) robustServeWordStmts(c *spec.Channel, idx int, latch []spec.Stmt, tmo *spec.Variable) []spec.Stmt {
	one := spec.VecString("1")
	zero := spec.VecString("0")
	startHigh := andOpt(andOpt(spec.Eq(g.busField("START"), one), g.idMatches(c)), g.seqMatch(idx))
	startLow := spec.Eq(g.busField("START"), zero)
	stmts := []spec.Stmt{
		spec.WaitUntilFor(g.orRST(startHigh), g.timeout(), tmo),
		&spec.If{Cond: g.abortWatch(tmo), Then: []spec.Stmt{&spec.Return{}}},
		spec.WaitFor(1),
	}
	if g.cfg.Parity {
		stmts = append(stmts, &spec.If{
			Cond: g.checkParityMismatch(),
			Then: []spec.Stmt{
				spec.AssignSig(g.busField("NACK"), one),
				spec.WaitUntilFor(g.orRST(startLow), g.timeout(), nil),
				spec.AssignSig(g.busField("NACK"), zero),
				spec.WaitFor(1),
				&spec.Return{},
			},
		})
	}
	stmts = append(stmts, latch...)
	stmts = append(stmts,
		spec.AssignSig(g.busField("DONE"), one),
		spec.WaitUntilFor(g.orRST(startLow), g.timeout(), tmo),
		spec.AssignSig(g.busField("DONE"), zero),
		spec.WaitFor(1),
		&spec.If{Cond: g.abortWatch(tmo), Then: []spec.Stmt{&spec.Return{}}},
	)
	return stmts
}

// robustServerSendWordStmts emits one hardened server-driven word (the
// data phase of a read): roles swapped, same guards.
func (g *generator) robustServerSendWordStmts(word spec.Expr, tmo *spec.Variable) []spec.Stmt {
	one := spec.VecString("1")
	zero := spec.VecString("0")
	ackCond := spec.Expr(spec.Eq(g.busField("START"), one))
	if g.cfg.Parity {
		ackCond = spec.LogicalOr(ackCond, spec.Eq(g.busField("NACK"), one))
	}
	stmts := []spec.Stmt{
		spec.AssignSig(g.busField("DATA"), g.padToBus(word)),
	}
	if g.cfg.Parity {
		stmts = append(stmts, spec.AssignSig(g.busField("PAR"), g.serverDriveParity(word)))
	}
	stmts = append(stmts,
		spec.WaitFor(1),
		spec.AssignSig(g.busField("DONE"), one),
		spec.WaitUntilFor(g.orRST(ackCond), g.timeout(), tmo),
		spec.AssignSig(g.busField("DONE"), zero),
		&spec.If{Cond: g.abortWatch(tmo), Then: []spec.Stmt{
			spec.WaitFor(1),
			&spec.Return{},
		}},
	)
	if g.cfg.Parity {
		stmts = append(stmts, &spec.If{
			Cond: spec.Eq(g.busField("NACK"), one),
			Then: []spec.Stmt{
				spec.WaitUntilFor(g.orRST(spec.Eq(g.busField("NACK"), zero)), g.timeout(), nil),
				spec.WaitFor(1),
				&spec.Return{},
			},
		})
	}
	stmts = append(stmts,
		spec.WaitFor(1),
		spec.WaitUntilFor(g.orRST(spec.Eq(g.busField("START"), zero)), g.timeout(), tmo),
		&spec.If{Cond: g.abortWatch(tmo), Then: []spec.Stmt{&spec.Return{}}},
	)
	return stmts
}

// robustRecvWordStmts emits the hardened accessor side of one
// server-driven word. With parity, a corrupted word is rejected on NACK,
// failing the transaction into the retry loop.
func (g *generator) robustRecvWordStmts(latch []spec.Stmt, ok, tmo *spec.Variable) []spec.Stmt {
	one := spec.VecString("1")
	zero := spec.VecString("0")
	fail := spec.AssignVar(spec.Ref(ok), &spec.BoolLit{Value: false})
	accept := append([]spec.Stmt{}, latch...)
	accept = append(accept,
		spec.AssignSig(g.busField("START"), one),
		spec.WaitUntilFor(spec.Eq(g.busField("DONE"), zero), g.timeout(), tmo),
		spec.AssignSig(g.busField("START"), zero),
		spec.WaitFor(1),
		&spec.If{Cond: spec.Ref(tmo), Then: []spec.Stmt{fail}},
	)
	var consume []spec.Stmt
	if g.cfg.Parity {
		consume = []spec.Stmt{&spec.If{
			Cond: g.checkParityMismatch(),
			Then: []spec.Stmt{
				spec.AssignSig(g.busField("NACK"), one),
				spec.WaitUntilFor(spec.Eq(g.busField("DONE"), zero), g.timeout(), tmo),
				spec.AssignSig(g.busField("NACK"), zero),
				spec.WaitFor(1),
				fail,
			},
			Else: accept,
		}}
	} else {
		consume = accept
	}
	stmts := []spec.Stmt{
		spec.WaitUntilFor(spec.Eq(g.busField("DONE"), one), g.timeout(), tmo),
		&spec.If{
			Cond: spec.Ref(tmo),
			Then: []spec.Stmt{fail},
			Else: consume,
		},
	}
	return stmts
}

// buildRobustSendProc is the hardened buildSendProc: same parameters and
// message layout, with the word transfers wrapped in the retry loop.
func (g *generator) buildRobustSendProc(c *spec.Channel) *spec.Procedure {
	p := &spec.Procedure{Name: "Send" + c.Name}
	dataBits, addrBits := c.DataBits(), c.AddrBits()
	txdata := spec.NewVar("txdata", spec.BitVector(dataBits))
	var addr *spec.Variable
	if addrBits > 0 {
		addr = spec.NewVar("addr", spec.BitVector(addrBits))
		p.Params = append(p.Params, spec.Param{Var: addr, Mode: spec.ModeIn})
	}
	p.Params = append(p.Params, spec.Param{Var: txdata, Mode: spec.ModeIn})

	mBits := dataBits + addrBits
	msg := spec.NewVar("msg", spec.BitVector(mBits))
	ok := spec.NewVar("ok", spec.Bool)
	attempt := spec.NewVar("attempt", spec.Integer)
	tmo := spec.NewVar("tmo", spec.Bool)
	p.Locals = append(p.Locals, msg, ok, attempt, tmo)

	var body []spec.Stmt
	if addrBits > 0 {
		body = append(body, spec.AssignVar(spec.Ref(msg), spec.Bin(spec.OpConcat, spec.Ref(addr), spec.Ref(txdata))))
	} else {
		body = append(body, spec.AssignVar(spec.Ref(msg), spec.Ref(txdata)))
	}
	var words [][]spec.Stmt
	for i, span := range wordSpans(mBits, g.bus.Width) {
		words = append(words, g.robustSendWordStmts(c, i, spec.SliceBits(spec.Ref(msg), span[0], span[1]), ok, tmo))
	}
	body = append(body, g.retryLoop(c, ok, attempt, words)...)
	body = append(body, g.abortStmts(c, ok)...)
	body = append(body, g.turnaround()...)
	p.Body = g.wrapArbitration(c.Accessor, body)
	return p
}

// buildRobustReceiveProc is the hardened buildReceiveProc: the request
// phase and the data phase together form one retried transaction, so a
// fault anywhere re-requests from scratch (re-reading is idempotent).
func (g *generator) buildRobustReceiveProc(c *spec.Channel) *spec.Procedure {
	p := &spec.Procedure{Name: "Receive" + c.Name}
	dataBits, addrBits := c.DataBits(), c.AddrBits()
	var addr *spec.Variable
	if addrBits > 0 {
		addr = spec.NewVar("addr", spec.BitVector(addrBits))
		p.Params = append(p.Params, spec.Param{Var: addr, Mode: spec.ModeIn})
	}
	rxdata := spec.NewVar("rxdata", spec.BitVector(dataBits))
	p.Params = append(p.Params, spec.Param{Var: rxdata, Mode: spec.ModeOut})
	ok := spec.NewVar("ok", spec.Bool)
	attempt := spec.NewVar("attempt", spec.Integer)
	tmo := spec.NewVar("tmo", spec.Bool)
	p.Locals = append(p.Locals, ok, attempt, tmo)

	var words [][]spec.Stmt
	if addrBits > 0 {
		for i, span := range wordSpans(addrBits, g.bus.Width) {
			words = append(words, g.robustSendWordStmts(c, i, spec.SliceBits(spec.Ref(addr), span[0], span[1]), ok, tmo))
		}
	} else {
		words = append(words, g.robustSendWordStmts(c, 0, spec.Vec(bits.New(min(g.bus.Width, 1))), ok, tmo))
	}
	for _, span := range wordSpans(dataBits, g.bus.Width) {
		w := span[0] - span[1] + 1
		latch := []spec.Stmt{
			spec.AssignVar(
				spec.SliceBits(spec.Ref(rxdata), span[0], span[1]),
				spec.SliceBits(g.busField("DATA"), w-1, 0),
			),
		}
		words = append(words, g.robustRecvWordStmts(latch, ok, tmo))
	}
	body := g.retryLoop(c, ok, attempt, words)
	body = append(body, g.abortStmts(c, ok)...)
	body = append(body, g.turnaround()...)
	p.Body = g.wrapArbitration(c.Accessor, body)
	return p
}

// buildRobustServeWriteProc is the hardened buildServeWriteProc. Any
// watchdog Return fires before the commit, so a faulted transaction
// never half-writes the variable.
func (g *generator) buildRobustServeWriteProc(c *spec.Channel) *spec.Procedure {
	p := &spec.Procedure{Name: "Recv" + c.Name}
	dataBits, addrBits := c.DataBits(), c.AddrBits()
	mBits := dataBits + addrBits
	msg := spec.NewVar("msg", spec.BitVector(mBits))
	tmo := spec.NewVar("tmo", spec.Bool)
	p.Locals = append(p.Locals, msg, tmo)

	var commit []spec.Stmt
	if addrBits > 0 {
		addrSlice := spec.SliceBits(spec.Ref(msg), mBits-1, dataBits)
		dataSlice := spec.SliceBits(spec.Ref(msg), dataBits-1, 0)
		elem := c.Var.Type.(spec.ArrayType).Elem
		commit = []spec.Stmt{spec.AssignVar(
			spec.At(spec.Ref(c.Var), spec.ToInt(addrSlice)), g.coerceToVar(dataSlice, elem))}
	} else {
		commit = []spec.Stmt{spec.AssignVar(spec.Ref(c.Var), g.coerceToVar(spec.Ref(msg), c.Var.Type))}
	}

	var body []spec.Stmt
	spans := wordSpans(mBits, g.bus.Width)
	for i, span := range spans {
		w := span[0] - span[1] + 1
		latch := []spec.Stmt{
			spec.AssignVar(
				spec.SliceBits(spec.Ref(msg), span[0], span[1]),
				spec.SliceBits(g.busField("DATA"), w-1, 0),
			),
		}
		if g.cfg.CommitAck && i == len(spans)-1 {
			// Ack-of-ack commit: the variable commits inside the final
			// word's latch, before that word's DONE rises. The closing
			// handshake then acknowledges a commit that already
			// happened — losing it can abort only the wire etiquette,
			// never the data — and a whole-transaction retransmission
			// re-latches and re-commits the identical message.
			latch = append(latch, commit...)
		}
		body = append(body, g.robustServeWordStmts(c, i, latch, tmo)...)
	}
	if !g.cfg.CommitAck {
		body = append(body, commit...)
	}
	p.Body = body
	return p
}

// buildRobustServeReadProc is the hardened buildServeReadProc.
func (g *generator) buildRobustServeReadProc(c *spec.Channel) *spec.Procedure {
	p := &spec.Procedure{Name: "Send" + c.Name}
	dataBits, addrBits := c.DataBits(), c.AddrBits()
	tmo := spec.NewVar("tmo", spec.Bool)

	var body []spec.Stmt
	var value spec.Expr
	if addrBits > 0 {
		addrBuf := spec.NewVar("addrbuf", spec.BitVector(addrBits))
		p.Locals = append(p.Locals, addrBuf)
		for i, span := range wordSpans(addrBits, g.bus.Width) {
			w := span[0] - span[1] + 1
			latch := []spec.Stmt{
				spec.AssignVar(
					spec.SliceBits(spec.Ref(addrBuf), span[0], span[1]),
					spec.SliceBits(g.busField("DATA"), w-1, 0),
				),
			}
			body = append(body, g.robustServeWordStmts(c, i, latch, tmo)...)
		}
		value = spec.At(spec.Ref(c.Var), spec.ToInt(spec.Ref(addrBuf)))
	} else {
		body = append(body, g.robustServeWordStmts(c, 0, nil, tmo)...)
		value = spec.Ref(c.Var)
	}

	dataBuf := spec.NewVar("databuf", spec.BitVector(dataBits))
	p.Locals = append(p.Locals, dataBuf, tmo)
	body = append(body, spec.AssignVar(spec.Ref(dataBuf), g.coerceToMsg(value, dataBits)))
	for _, span := range wordSpans(dataBits, g.bus.Width) {
		body = append(body, g.robustServerSendWordStmts(spec.SliceBits(spec.Ref(dataBuf), span[0], span[1]), tmo)...)
	}
	p.Body = body
	return p
}
