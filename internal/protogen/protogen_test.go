package protogen

import (
	"strings"
	"testing"

	"repro/internal/spec"
)

// buildPQ constructs the system of the paper's Fig. 3: behaviors P and Q,
// variables X (16-bit scalar) and MEM (64 x 16-bit array) on another
// component, four channels CH0..CH3.
func buildPQ() (*spec.System, *spec.Bus) {
	sys := spec.NewSystem("PQ")
	comp1 := sys.AddModule("comp1")
	comp2 := sys.AddModule("comp2")

	p := comp1.AddBehavior(spec.NewBehavior("P"))
	q := comp1.AddBehavior(spec.NewBehavior("Q"))
	x := comp2.AddVariable(spec.NewVar("X", spec.BitVector(16)))
	mem := comp2.AddVariable(spec.NewVar("MEM", spec.Array(64, spec.BitVector(16))))

	ad := p.AddVar("AD", spec.Integer)
	count := q.AddVar("COUNT", spec.BitVector(16))

	p.Body = []spec.Stmt{
		spec.AssignVar(spec.Ref(ad), spec.Int(5)),
		spec.AssignSig(spec.Ref(x), spec.ToVec(spec.Int(32), 16)),
		spec.AssignVar(spec.At(spec.Ref(mem), spec.Ref(ad)), spec.Add(spec.Ref(x), spec.ToVec(spec.Int(7), 16))),
	}
	q.Body = []spec.Stmt{
		spec.AssignVar(spec.Ref(count), spec.ToVec(spec.Int(9), 16)),
		spec.AssignVar(spec.At(spec.Ref(mem), spec.Int(60)), spec.Ref(count)),
	}

	ch0 := sys.AddChannel(&spec.Channel{Name: "CH0", Accessor: p, Var: x, Dir: spec.Write})
	ch1 := sys.AddChannel(&spec.Channel{Name: "CH1", Accessor: p, Var: x, Dir: spec.Read})
	ch2 := sys.AddChannel(&spec.Channel{Name: "CH2", Accessor: p, Var: mem, Dir: spec.Write})
	ch3 := sys.AddChannel(&spec.Channel{Name: "CH3", Accessor: q, Var: mem, Dir: spec.Write})

	bus := &spec.Bus{Name: "B", Channels: []*spec.Channel{ch0, ch1, ch2, ch3}, Width: 8}
	sys.Buses = append(sys.Buses, bus)
	return sys, bus
}

func generatePQ(t *testing.T) (*spec.System, *spec.Bus, *Refinement) {
	t.Helper()
	sys, bus := buildPQ()
	ref, err := Generate(sys, bus, Config{Protocol: spec.FullHandshake})
	if err != nil {
		t.Fatal(err)
	}
	return sys, bus, ref
}

func TestIDAssignment(t *testing.T) {
	sys, bus, _ := generatePQ(t)
	_ = sys
	wantIDs := []string{"00", "01", "10", "11"}
	for i, c := range bus.Channels {
		if c.IDBits != 2 {
			t.Errorf("%s IDBits = %d, want 2", c.Name, c.IDBits)
		}
		if got := c.ID.String(); got != wantIDs[i] {
			t.Errorf("%s ID = %q, want %q", c.Name, got, wantIDs[i])
		}
	}
}

func TestBusRecordStructure(t *testing.T) {
	sys, bus, ref := generatePQ(t)
	if bus.Record.Name != "HandShakeBus" {
		t.Errorf("record name = %q", bus.Record.Name)
	}
	wantFields := []struct {
		name  string
		width int
	}{{"START", 1}, {"DONE", 1}, {"ID", 2}, {"DATA", 8}}
	if len(bus.Record.Fields) != len(wantFields) {
		t.Fatalf("record has %d fields", len(bus.Record.Fields))
	}
	for i, w := range wantFields {
		f := bus.Record.Fields[i]
		if f.Name != w.name || f.Type.BitWidth() != w.width {
			t.Errorf("field %d = %s:%s, want %s:%d bits", i, f.Name, f.Type, w.name, w.width)
		}
	}
	if ref.BusSignal == nil || ref.BusSignal.Kind != spec.KindSignal {
		t.Fatal("bus signal not declared as a signal")
	}
	if len(sys.Globals) != 1 || sys.Globals[0] != ref.BusSignal {
		t.Error("bus signal not registered as a system global")
	}
	if bus.TotalLines() != 12 {
		t.Errorf("total lines = %d, want 12 (8 data + 2 ctrl + 2 id)", bus.TotalLines())
	}
}

func TestProceduresGenerated(t *testing.T) {
	sys, bus, ref := generatePQ(t)
	p := sys.FindBehavior("P")
	q := sys.FindBehavior("Q")
	if p.FindProc("SendCH0") == nil || p.FindProc("ReceiveCH1") == nil || p.FindProc("SendCH2") == nil {
		t.Fatalf("P procedures missing; have %v", procNames(p))
	}
	if q.FindProc("SendCH3") == nil {
		t.Fatalf("Q procedures missing; have %v", procNames(q))
	}
	for _, c := range bus.Channels {
		if ref.AccessorProcs[c] == nil || ref.ServerProcs[c] == nil {
			t.Errorf("channel %s missing generated procedures", c.Name)
		}
		if ref.AccessorProcs[c].Channel != c {
			t.Errorf("channel %s procedure not tagged", c.Name)
		}
	}
}

func procNames(b *spec.Behavior) []string {
	var out []string
	for _, p := range b.Procedures {
		out = append(out, p.Name)
	}
	return out
}

func TestVariableProcessesCreated(t *testing.T) {
	sys, _, ref := generatePQ(t)
	comp2 := sys.FindModule("comp2")
	xproc := sys.FindBehavior("Xproc")
	memproc := sys.FindBehavior("MEMproc")
	if xproc == nil || memproc == nil {
		t.Fatal("variable processes not created")
	}
	if !xproc.Server || !memproc.Server {
		t.Error("variable processes not marked Server")
	}
	if xproc.Owner != comp2 || memproc.Owner != comp2 {
		t.Error("variable processes not on the variable's module")
	}
	if len(ref.Servers) != 2 {
		t.Errorf("%d servers reported", len(ref.Servers))
	}
	// Xproc serves CH0 (write) and CH1 (read); MEMproc serves CH2, CH3.
	if xproc.FindProc("RecvCH0") == nil || xproc.FindProc("SendCH1") == nil {
		t.Errorf("Xproc procedures: %v", procNames(xproc))
	}
	if memproc.FindProc("RecvCH2") == nil || memproc.FindProc("RecvCH3") == nil {
		t.Errorf("MEMproc procedures: %v", procNames(memproc))
	}
}

func TestAccessorBodiesRewritten(t *testing.T) {
	sys, _, ref := generatePQ(t)
	p := sys.FindBehavior("P")
	q := sys.FindBehavior("Q")
	x := sys.FindVariable("X")
	mem := sys.FindVariable("MEM")

	// No direct references to the remote variables remain in P or Q.
	if spec.References(p.Body, x) || spec.References(p.Body, mem) {
		t.Errorf("P still references remote variables:\n%s", spec.FormatStmts(p.Body, ""))
	}
	if spec.References(q.Body, mem) {
		t.Errorf("Q still references MEM:\n%s", spec.FormatStmts(q.Body, ""))
	}
	// P gained the paper's Xtemp temporary.
	var found bool
	for _, v := range p.Variables {
		if v.Name == "Xtemp" {
			found = true
		}
	}
	if !found {
		t.Error("Xtemp not created in P")
	}
	if ref.RewrittenStmts == 0 {
		t.Error("no statements reported rewritten")
	}
	// The rewritten P body is: AD := 5; SendCH0(...); ReceiveCH1(Xtemp);
	// SendCH2(AD-as-addr, Xtemp + 7).
	text := spec.FormatStmts(p.Body, "")
	for _, want := range []string{"SendCH0", "ReceiveCH1(Xtemp)", "SendCH2"} {
		if !strings.Contains(text, want) {
			t.Errorf("P body missing %s:\n%s", want, text)
		}
	}
}

func TestRefinedSystemValidates(t *testing.T) {
	sys, _, _ := generatePQ(t)
	if errs := sys.Validate(); len(errs) != 0 {
		t.Fatalf("refined system invalid: %v", errs)
	}
}

func TestMessageSlicing16Over8(t *testing.T) {
	// Fig. 4: CH0's 16-bit message over the 8-bit bus takes two
	// transfers; the send procedure must carry two word handshakes.
	sys, bus, ref := generatePQ(t)
	_ = sys
	ch0 := bus.Channels[0]
	send := ref.AccessorProcs[ch0]
	waits := countWaits(send.Body)
	// Full handshake: 2 wait-untils per word, 2 words.
	if waits != 4 {
		t.Errorf("SendCH0 has %d waits, want 4 (two words)", waits)
	}
	// CH2 carries 6 addr + 16 data = 22 bits = 3 words over 8 bits.
	ch2 := bus.Channels[2]
	if got := countWaits(ref.AccessorProcs[ch2].Body); got != 6 {
		t.Errorf("SendCH2 has %d waits, want 6 (three words)", got)
	}
}

func countWaits(stmts []spec.Stmt) int {
	n := 0
	spec.WalkStmts(stmts, func(s spec.Stmt) bool {
		if w, ok := s.(*spec.Wait); ok && w.Until != nil {
			n++
		}
		return true
	})
	return n
}

func TestWordSpans(t *testing.T) {
	cases := []struct {
		m, w int
		want [][2]int
	}{
		{16, 8, [][2]int{{7, 0}, {15, 8}}},
		{23, 8, [][2]int{{7, 0}, {15, 8}, {22, 16}}},
		{8, 8, [][2]int{{7, 0}}},
		{3, 8, [][2]int{{2, 0}}},
		{23, 23, [][2]int{{22, 0}}},
	}
	for _, c := range cases {
		got := wordSpans(c.m, c.w)
		if len(got) != len(c.want) {
			t.Errorf("wordSpans(%d,%d) = %v", c.m, c.w, got)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("wordSpans(%d,%d)[%d] = %v, want %v", c.m, c.w, i, got[i], c.want[i])
			}
		}
	}
}

func TestSingleChannelBusHasNoIDLines(t *testing.T) {
	sys := spec.NewSystem("single")
	m1 := sys.AddModule("m1")
	m2 := sys.AddModule("m2")
	b := m1.AddBehavior(spec.NewBehavior("B"))
	v := m2.AddVariable(spec.NewVar("V", spec.BitVector(8)))
	l := b.AddVar("l", spec.BitVector(8))
	b.Body = []spec.Stmt{spec.AssignSig(spec.Ref(v), spec.Ref(l))}
	ch := sys.AddChannel(&spec.Channel{Name: "c0", Accessor: b, Var: v, Dir: spec.Write})
	bus := &spec.Bus{Name: "SB", Channels: []*spec.Channel{ch}, Width: 8}
	sys.Buses = append(sys.Buses, bus)
	ref, err := Generate(sys, bus, Config{Protocol: spec.FullHandshake})
	if err != nil {
		t.Fatal(err)
	}
	if bus.Record.FieldType("ID") != nil {
		t.Error("single-channel bus has ID lines")
	}
	if ch.IDBits != 0 {
		t.Error("channel has nonzero IDBits")
	}
	if len(ref.Servers) != 1 {
		t.Fatalf("servers = %d", len(ref.Servers))
	}
	if errs := sys.Validate(); len(errs) != 0 {
		t.Fatalf("refined invalid: %v", errs)
	}
}

func TestHalfHandshakeBusStructure(t *testing.T) {
	sys, bus := buildPQ()
	_, err := Generate(sys, bus, Config{Protocol: spec.HalfHandshake})
	if err != nil {
		t.Fatal(err)
	}
	if bus.Record.Name != "HalfHandShakeBus" {
		t.Errorf("record name = %q", bus.Record.Name)
	}
	if bus.Record.FieldType("DONE") != nil {
		t.Error("half handshake should have no DONE line")
	}
	if bus.TotalLines() != 8+1+2 {
		t.Errorf("total lines = %d", bus.TotalLines())
	}
}

func TestGenerateRejectsWidthlessBus(t *testing.T) {
	sys, bus := buildPQ()
	bus.Width = 0
	if _, err := Generate(sys, bus, Config{}); err == nil {
		t.Fatal("width-0 bus accepted")
	}
}

func TestGenerateRejectsForeignChannel(t *testing.T) {
	sys, bus := buildPQ()
	other := spec.NewSystem("other")
	om1 := other.AddModule("m1")
	om2 := other.AddModule("m2")
	ob := om1.AddBehavior(spec.NewBehavior("OB"))
	ov := om2.AddVariable(spec.NewVar("OV", spec.Bit))
	bus.Channels = append(bus.Channels, &spec.Channel{Name: "ghost", Accessor: ob, Var: ov, Dir: spec.Read})
	if _, err := Generate(sys, bus, Config{}); err == nil {
		t.Fatal("foreign channel accepted")
	}
}

func TestBusSignalNameOverride(t *testing.T) {
	sys, bus := buildPQ()
	ref, err := Generate(sys, bus, Config{BusSignalName: "SYSBUS"})
	if err != nil {
		t.Fatal(err)
	}
	if ref.BusSignal.Name != "SYSBUS" {
		t.Errorf("bus signal name = %q", ref.BusSignal.Name)
	}
}

func TestDispatcherShape(t *testing.T) {
	sys, _, _ := generatePQ(t)
	memproc := sys.FindBehavior("MEMproc")
	if len(memproc.Body) != 1 {
		t.Fatalf("MEMproc body = %d stmts", len(memproc.Body))
	}
	loop, ok := memproc.Body[0].(*spec.Loop)
	if !ok {
		t.Fatalf("MEMproc body is %T, want loop", memproc.Body[0])
	}
	if len(loop.Body) != 2 {
		t.Fatalf("dispatcher loop has %d stmts", len(loop.Body))
	}
	if _, ok := loop.Body[0].(*spec.Wait); !ok {
		t.Error("dispatcher does not begin with a wait")
	}
	ifStmt, ok := loop.Body[1].(*spec.If)
	if !ok {
		t.Fatal("dispatcher missing ID decode")
	}
	// MEMproc serves two channels: one elsif arm plus a foreign-ID else.
	if len(ifStmt.Elifs) != 1 || len(ifStmt.Else) != 1 {
		t.Errorf("dispatcher arms: %d elifs, %d else", len(ifStmt.Elifs), len(ifStmt.Else))
	}
}

func TestRemoteReadInIfCondition(t *testing.T) {
	sys := spec.NewSystem("cond")
	m1 := sys.AddModule("m1")
	m2 := sys.AddModule("m2")
	b := m1.AddBehavior(spec.NewBehavior("B"))
	status := m2.AddVariable(spec.NewVar("STATUS", spec.BitVector(8)))
	l := b.AddVar("l", spec.BitVector(8))
	b.Body = []spec.Stmt{
		&spec.If{
			Cond: spec.Eq(spec.Ref(status), spec.VecString("00000001")),
			Then: []spec.Stmt{spec.AssignVar(spec.Ref(l), spec.VecString("11111111"))},
		},
	}
	ch := sys.AddChannel(&spec.Channel{Name: "c0", Accessor: b, Var: status, Dir: spec.Read})
	bus := &spec.Bus{Name: "SB", Channels: []*spec.Channel{ch}, Width: 8}
	sys.Buses = append(sys.Buses, bus)
	if _, err := Generate(sys, bus, Config{}); err != nil {
		t.Fatal(err)
	}
	if spec.References(b.Body, status) {
		t.Fatalf("condition still reads STATUS:\n%s", spec.FormatStmts(b.Body, ""))
	}
	if len(b.Body) != 2 {
		t.Fatalf("want hoisted receive + if, got %d stmts:\n%s", len(b.Body), spec.FormatStmts(b.Body, ""))
	}
	if _, ok := b.Body[0].(*spec.Call); !ok {
		t.Error("hoisted receive missing before if")
	}
}

func TestRemoteReadInWhileReReceives(t *testing.T) {
	sys := spec.NewSystem("while")
	m1 := sys.AddModule("m1")
	m2 := sys.AddModule("m2")
	b := m1.AddBehavior(spec.NewBehavior("B"))
	flag := m2.AddVariable(spec.NewVar("FLAG", spec.BitVector(1)))
	b.Body = []spec.Stmt{
		&spec.While{
			Cond: spec.Eq(spec.Ref(flag), spec.VecString("0")),
			Body: []spec.Stmt{&spec.Null{}},
		},
	}
	ch := sys.AddChannel(&spec.Channel{Name: "c0", Accessor: b, Var: flag, Dir: spec.Read})
	bus := &spec.Bus{Name: "SB", Channels: []*spec.Channel{ch}, Width: 1}
	sys.Buses = append(sys.Buses, bus)
	if _, err := Generate(sys, bus, Config{}); err != nil {
		t.Fatal(err)
	}
	// hoisted receive + while whose body ends with a re-receive
	if len(b.Body) != 2 {
		t.Fatalf("body = %d stmts:\n%s", len(b.Body), spec.FormatStmts(b.Body, ""))
	}
	w, ok := b.Body[1].(*spec.While)
	if !ok {
		t.Fatalf("second stmt is %T", b.Body[1])
	}
	last := w.Body[len(w.Body)-1]
	if _, ok := last.(*spec.Call); !ok {
		t.Errorf("while body does not re-receive:\n%s", spec.FormatStmts(w.Body, ""))
	}
}

func TestTempNamesFollowPaperStyle(t *testing.T) {
	sys := spec.NewSystem("temps")
	m1 := sys.AddModule("m1")
	m2 := sys.AddModule("m2")
	b := m1.AddBehavior(spec.NewBehavior("B"))
	x := m2.AddVariable(spec.NewVar("X", spec.BitVector(8)))
	l := b.AddVar("l", spec.BitVector(8))
	b.Body = []spec.Stmt{
		spec.AssignVar(spec.Ref(l), spec.Bin(spec.OpAdd, spec.Ref(x), spec.Ref(x))),
	}
	ch := sys.AddChannel(&spec.Channel{Name: "c0", Accessor: b, Var: x, Dir: spec.Read})
	bus := &spec.Bus{Name: "SB", Channels: []*spec.Channel{ch}, Width: 8}
	sys.Buses = append(sys.Buses, bus)
	ref, err := Generate(sys, bus, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Temps) != 2 {
		t.Fatalf("temps = %d, want 2 (X read twice)", len(ref.Temps))
	}
	if ref.Temps[0].Name != "Xtemp" || ref.Temps[1].Name != "Xtemp2" {
		t.Errorf("temp names = %s, %s", ref.Temps[0].Name, ref.Temps[1].Name)
	}
}

func TestHardwiredPortSingleChannelOnly(t *testing.T) {
	sys, bus := buildPQ()
	_, err := Generate(sys, bus, Config{Protocol: spec.HardwiredPort})
	if err == nil || !strings.Contains(err.Error(), "hardwired") {
		t.Fatalf("err = %v, want hardwired-sharing rejection", err)
	}

	// A single-channel bus is fine: one message per clock, no control
	// or ID lines.
	sys2 := spec.NewSystem("hw")
	m1 := sys2.AddModule("m1")
	m2 := sys2.AddModule("m2")
	b := m1.AddBehavior(spec.NewBehavior("B"))
	v := m2.AddVariable(spec.NewVar("V", spec.BitVector(8)))
	l := b.AddVar("l", spec.BitVector(8))
	b.Body = []spec.Stmt{spec.AssignVar(spec.Ref(v), spec.Ref(l))}
	ch := sys2.AddChannel(&spec.Channel{Name: "c0", Accessor: b, Var: v, Dir: spec.Write})
	hwbus := &spec.Bus{Name: "HW", Channels: []*spec.Channel{ch}, Width: 8}
	sys2.Buses = append(sys2.Buses, hwbus)
	if _, err := Generate(sys2, hwbus, Config{Protocol: spec.HardwiredPort}); err != nil {
		t.Fatal(err)
	}
	if hwbus.TotalLines() != 8 {
		t.Errorf("hardwired port lines = %d, want 8 (data only)", hwbus.TotalLines())
	}
}
