package protogen

import (
	"strings"
	"testing"

	"repro/internal/spec"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr string // substring; "" means valid
	}{
		{"zero value", Config{}, ""},
		{"robust full", Config{Protocol: spec.FullHandshake, Robust: true}, ""},
		{"robust full parity", Config{Protocol: spec.FullHandshake, Robust: true, Parity: true}, ""},
		{"robust full tuned", Config{Protocol: spec.FullHandshake, Robust: true, TimeoutClocks: 32, MaxRetries: 5}, ""},
		{"robust half watchdog only", Config{Protocol: spec.HalfHandshake, Robust: true}, ""},
		{"arbitrate hardwired", Config{Protocol: spec.HardwiredPort, Arbitrate: true}, "nothing to arbitrate"},
		{"negative timeout", Config{Robust: true, TimeoutClocks: -1}, "negative TimeoutClocks"},
		{"negative retries", Config{Robust: true, MaxRetries: -2}, "negative MaxRetries"},
		{"parity without robust", Config{Protocol: spec.FullHandshake, Parity: true}, "Parity requires Robust"},
		{"timeout without robust", Config{Protocol: spec.FullHandshake, TimeoutClocks: 8}, "TimeoutClocks requires Robust"},
		{"retries without robust", Config{Protocol: spec.FullHandshake, MaxRetries: 2}, "MaxRetries requires Robust"},
		{"robust fixed delay", Config{Protocol: spec.FixedDelay, Robust: true}, "no handshake waits"},
		{"robust hardwired", Config{Protocol: spec.HardwiredPort, Robust: true}, "no handshake waits"},
		{"parity on half", Config{Protocol: spec.HalfHandshake, Robust: true, Parity: true}, "no receiver-to-sender feedback"},
		{"retries on half", Config{Protocol: spec.HalfHandshake, Robust: true, MaxRetries: 2}, "no acknowledgement to miss"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestGenerateRejectsInvalidConfig(t *testing.T) {
	sys, bus := buildPQ()
	_, err := Generate(sys, bus, Config{Protocol: spec.FullHandshake, Parity: true})
	if err == nil || !strings.Contains(err.Error(), "Parity requires Robust") {
		t.Fatalf("Generate with invalid config: err = %v, want Parity-requires-Robust error", err)
	}
}

func TestRobustBusStructure(t *testing.T) {
	sys, bus := buildPQ()
	ref, err := Generate(sys, bus, Config{Protocol: spec.FullHandshake, Robust: true, Parity: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bus.Robust || !bus.Parity {
		t.Fatalf("bus flags: Robust=%v Parity=%v, want both true", bus.Robust, bus.Parity)
	}
	rec, ok := bus.Signal.Type.(spec.RecordType)
	if !ok {
		t.Fatalf("bus signal type = %T, want RecordType", bus.Signal.Type)
	}
	want := map[string]bool{"RST": false, "PAR": false, "NACK": false}
	for _, f := range rec.Fields {
		if _, tracked := want[f.Name]; tracked {
			want[f.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("bus record is missing hardening field %s", name)
		}
	}
	if len(ref.AbortCounters) == 0 {
		t.Fatal("robust refinement registered no abort counters")
	}
	for _, k := range ref.AbortKeys() {
		if !strings.Contains(k, "_ABORTS") {
			t.Errorf("abort key %q does not name an _ABORTS counter", k)
		}
	}
}

func TestRobustLineCounts(t *testing.T) {
	sys, bus := buildPQ()
	base := bus.TotalLines()
	if _, err := Generate(sys, bus, Config{Protocol: spec.FullHandshake, Robust: true}); err != nil {
		t.Fatal(err)
	}
	if got := bus.TotalLines(); got != base+1 {
		t.Fatalf("robust TotalLines = %d, want %d (baseline %d + RST)", got, base+1, base)
	}
	_ = sys
}

func TestRobustHalfAddsNoLines(t *testing.T) {
	sys, bus := buildPQ()
	ref, err := Generate(sys, bus, Config{Protocol: spec.HalfHandshake, Robust: true})
	if err != nil {
		t.Fatal(err)
	}
	rec := bus.Signal.Type.(spec.RecordType)
	for _, f := range rec.Fields {
		if f.Name == "RST" || f.Name == "PAR" || f.Name == "NACK" {
			t.Errorf("half-handshake robust bus grew field %s; watchdogs need no wires", f.Name)
		}
	}
	if len(ref.AbortCounters) != 0 {
		t.Errorf("half-handshake robust registered %d abort counters, want 0", len(ref.AbortCounters))
	}
}
