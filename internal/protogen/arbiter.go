package protogen

import (
	"repro/internal/bits"
	"repro/internal/spec"
)

// Bus arbitration — the paper's Section 6 names "the effect of bus
// arbitration delays on the performance of processes" as future work;
// this file implements it. Without arbitration, two accessors opening
// transactions concurrently corrupt the shared ID/DATA/START lines, so
// the DAC'94 flow relies on the processes never overlapping their
// transfers. With Config.Arbitrate set, protocol generation adds:
//
//   - REQ    : bit_vector(numAccessors-1 downto 0) — request lines, one
//     per accessing behavior;
//   - GRANT  : bit_vector(ceil(log2(numAccessors))-1 downto 0) — the
//     granted accessor's index;
//   - GVALID : bit — grant strobe;
//
// plus a generated ARBITER process (fixed-priority, lowest index wins)
// on the bus's home module. Every accessor transaction is wrapped in an
// acquire/release pair:
//
//	B.REQ(i) <= '1';
//	wait until B.GVALID = '1' and B.GRANT = i;
//	  ... transaction words ...
//	B.REQ(i) <= '0';
//	wait until B.GVALID = '0' or B.GRANT /= i;
//
// The arbiter costs two clocks per transaction (grant setup and bus
// turnaround), which is the "arbitration delay" the ablation benchmark
// measures.
//
// Single-accessor buses never get arbitration hardware: there is
// nothing to arbitrate.

// accessors returns the distinct accessing behaviors of the bus, in
// first-channel order.
func (g *generator) accessors() []*spec.Behavior {
	var out []*spec.Behavior
	seen := make(map[*spec.Behavior]bool)
	for _, c := range g.bus.Channels {
		if !seen[c.Accessor] {
			seen[c.Accessor] = true
			out = append(out, c.Accessor)
		}
	}
	return out
}

// arbitrated reports whether this generation run adds arbitration.
func (g *generator) arbitrated() bool {
	return g.cfg.Arbitrate && len(g.accessors()) > 1
}

// arbiterFields returns the record fields arbitration adds.
func (g *generator) arbiterFields() []spec.Field {
	n := len(g.accessors())
	return []spec.Field{
		{Name: "REQ", Type: spec.BitVector(n)},
		{Name: "GRANT", Type: spec.BitVector(spec.AddrBits(n))},
		{Name: "GVALID", Type: spec.Bit},
	}
}

// accessorIndex returns the behavior's request-line index.
func (g *generator) accessorIndex(b *spec.Behavior) int {
	for i, a := range g.accessors() {
		if a == b {
			return i
		}
	}
	return -1
}

// acquireStmts opens a transaction for accessor index i.
func (g *generator) acquireStmts(i int) []spec.Stmt {
	one := spec.VecString("1")
	grantW := spec.AddrBits(len(g.accessors()))
	myGrant := spec.Vec(bits.FromUint(uint64(i), grantW))
	return []spec.Stmt{
		spec.AssignSig(spec.SliceBits(g.busField("REQ"), i, i), one),
		spec.WaitUntil(spec.LogicalAnd(
			spec.Eq(g.busField("GVALID"), one),
			spec.Eq(g.busField("GRANT"), myGrant),
		)),
	}
}

// releaseStmts closes a transaction for accessor index i.
func (g *generator) releaseStmts(i int) []spec.Stmt {
	zero := spec.VecString("0")
	grantW := spec.AddrBits(len(g.accessors()))
	myGrant := spec.Vec(bits.FromUint(uint64(i), grantW))
	return []spec.Stmt{
		spec.AssignSig(spec.SliceBits(g.busField("REQ"), i, i), zero),
		spec.WaitUntil(spec.LogicalOr(
			spec.Eq(g.busField("GVALID"), zero),
			spec.Neq(g.busField("GRANT"), myGrant),
		)),
	}
}

// wrapArbitration wraps a generated accessor procedure body in the
// acquire/release pair for its behavior.
func (g *generator) wrapArbitration(b *spec.Behavior, body []spec.Stmt) []spec.Stmt {
	if !g.arbitrated() {
		return body
	}
	i := g.accessorIndex(b)
	out := g.acquireStmts(i)
	out = append(out, body...)
	return append(out, g.releaseStmts(i)...)
}

// grantHoldStmts emits the extra held clock between the granted
// accessor's REQ fall and the GVALID deassert when Config.GrantHold is
// set: the grant outlives the request by one clock, covering the
// owner's commit/release edges before the bus can be re-granted.
func (g *generator) grantHoldStmts() []spec.Stmt {
	if !g.cfg.GrantHold {
		return nil
	}
	return []spec.Stmt{spec.WaitFor(1)}
}

// buildArbiter generates the ARBITER process under the configured grant
// policy. It is attached to the module owning the first channel's
// variable (the bus's home module) and marked Server.
func (g *generator) buildArbiter() *spec.Behavior {
	if g.cfg.ArbiterPolicy == RoundRobinArbiter {
		return g.buildRoundRobinArbiter()
	}
	return g.buildPriorityArbiter()
}

// buildPriorityArbiter generates a fixed-priority grant loop: the
// lowest-index requester wins every scan.
func (g *generator) buildPriorityArbiter() *spec.Behavior {
	accs := g.accessors()
	n := len(accs)
	grantW := spec.AddrBits(n)
	one := spec.VecString("1")
	zero := spec.VecString("0")

	arb := spec.NewBehavior(g.bus.Name + "arbiter")
	arb.Server = true

	// Bus parking needs the last owner's index; the priority policy has
	// no other use for it. GRANT resets to index 0, so last starts at 0.
	var last *spec.Variable
	if g.cfg.BusPark {
		last = arb.AddVar("last", spec.Integer)
	}

	anyReq := spec.Neq(g.busField("REQ"), spec.Vec(bits.New(n)))

	// Priority chain: lowest request index wins.
	arm := func(i int) []spec.Stmt {
		grant := []spec.Stmt{
			spec.AssignSig(g.busField("GRANT"), spec.Vec(bits.FromUint(uint64(i), grantW))),
			spec.WaitFor(1), // grant setup clock
		}
		var stmts []spec.Stmt
		if g.cfg.BusPark {
			// Parked fast path: the GRANT lines still select the last
			// owner, so a re-request from it skips the assignment and the
			// setup clock.
			stmts = append(stmts, &spec.If{
				Cond: spec.Neq(spec.Ref(last), spec.Int(int64(i))),
				Then: grant,
			})
		} else {
			stmts = append(stmts, grant...)
		}
		stmts = append(stmts,
			spec.AssignSig(g.busField("GVALID"), one),
			spec.WaitUntil(spec.Eq(spec.SliceBits(g.busField("REQ"), i, i), zero)),
		)
		stmts = append(stmts, g.grantHoldStmts()...)
		stmts = append(stmts, spec.AssignSig(g.busField("GVALID"), zero))
		if g.cfg.BusPark {
			stmts = append(stmts, spec.AssignVar(spec.Ref(last), spec.Int(int64(i))))
		}
		stmts = append(stmts, spec.WaitFor(1)) // bus turnaround clock
		return stmts
	}
	dispatch := &spec.If{
		Cond: spec.Eq(spec.SliceBits(g.busField("REQ"), 0, 0), one),
		Then: arm(0),
	}
	for i := 1; i < n; i++ {
		dispatch.Elifs = append(dispatch.Elifs, spec.ElseIf{
			Cond: spec.Eq(spec.SliceBits(g.busField("REQ"), i, i), one),
			Body: arm(i),
		})
	}
	arb.Body = []spec.Stmt{&spec.Loop{Body: []spec.Stmt{
		spec.WaitUntil(anyReq),
		dispatch,
	}}}
	return arb
}

// buildRoundRobinArbiter generates a rotating-priority grant loop: each
// scan starts just after the last granted index, so every persistent
// requester is served within one rotation:
//
//	loop
//	  wait until B.REQ /= 0;
//	  k := 1;
//	  while k <= N loop
//	    idx := (last + k) mod N;
//	    if B.REQ(idx downto idx) = "1" then
//	      B.GRANT <= idx; wait for 1; B.GVALID <= '1';
//	      wait until B.REQ(idx downto idx) = "0";
//	      B.GVALID <= '0'; last := idx; wait for 1;
//	      exit;
//	    end if;
//	    k := k + 1;
//	  end loop;
//	end loop
//
// The dynamic single-bit select uses the IR's expression-valued slice
// bounds (static width 1).
func (g *generator) buildRoundRobinArbiter() *spec.Behavior {
	accs := g.accessors()
	n := len(accs)
	grantW := spec.AddrBits(n)
	one := spec.VecString("1")
	zero := spec.VecString("0")

	arb := spec.NewBehavior(g.bus.Name + "arbiter")
	arb.Server = true
	last := arb.AddVar("last", spec.Integer)
	k := arb.AddVar("k", spec.Integer)
	idx := arb.AddVar("idx", spec.Integer)

	reqBit := &spec.SliceExpr{X: g.busField("REQ"), Hi: spec.Ref(idx), Lo: spec.Ref(idx), Width: 1}
	anyReq := spec.Neq(g.busField("REQ"), spec.Vec(bits.New(n)))

	grant := []spec.Stmt{
		spec.AssignSig(g.busField("GRANT"), spec.ToVec(spec.Ref(idx), grantW)),
		spec.WaitFor(1),
	}
	var open []spec.Stmt
	if g.cfg.BusPark {
		// Parked fast path: when the rotation lands back on the last
		// owner, the GRANT lines already select it — skip the assignment
		// and its setup clock.
		open = append(open, &spec.If{
			Cond: spec.Neq(spec.Ref(idx), spec.Ref(last)),
			Then: grant,
		})
	} else {
		open = append(open, grant...)
	}
	armBody := append(open,
		spec.AssignSig(g.busField("GVALID"), one),
		spec.WaitUntil(spec.Eq(reqBit, zero)),
	)
	armBody = append(armBody, g.grantHoldStmts()...)
	armBody = append(armBody,
		spec.AssignSig(g.busField("GVALID"), zero),
		spec.AssignVar(spec.Ref(last), spec.Ref(idx)),
		spec.WaitFor(1),
		&spec.Exit{},
	)
	scan := &spec.While{
		Cond: spec.Le(spec.Ref(k), spec.Int(int64(n))),
		Body: []spec.Stmt{
			spec.AssignVar(spec.Ref(idx),
				spec.Bin(spec.OpMod, spec.Add(spec.Ref(last), spec.Ref(k)), spec.Int(int64(n)))),
			&spec.If{
				Cond: spec.Eq(reqBit, one),
				Then: armBody,
			},
			spec.AssignVar(spec.Ref(k), spec.Add(spec.Ref(k), spec.Int(1))),
		},
	}
	arb.Body = []spec.Stmt{&spec.Loop{Body: []spec.Stmt{
		spec.WaitUntil(anyReq),
		spec.AssignVar(spec.Ref(k), spec.Int(1)),
		scan,
	}}}
	return arb
}

// attachArbiter creates and registers the arbiter process.
func (g *generator) attachArbiter() {
	if !g.arbitrated() {
		return
	}
	arb := g.buildArbiter()
	home := g.bus.Channels[0].Var.Owner
	home.AddBehavior(arb)
	g.ref.Arbiter = arb
	g.bus.Arbitrated = true
}

// ArbitrationLines reports the extra wires arbitration adds to a bus
// with the given number of accessors.
func ArbitrationLines(accessors int) int {
	if accessors <= 1 {
		return 0
	}
	return accessors + spec.AddrBits(accessors) + 1
}
