package protogen

import (
	"testing"

	"repro/internal/spec"
)

// oneChannelSystem builds a behavior on m1 and a remote 8-bit scalar on
// m2 with read and write channels, plus a bus over both.
func oneChannelSystem() (*spec.System, *spec.Behavior, *spec.Variable, *spec.Bus) {
	sys := spec.NewSystem("t")
	m1 := sys.AddModule("m1")
	m2 := sys.AddModule("m2")
	b := m1.AddBehavior(spec.NewBehavior("B"))
	v := m2.AddVariable(spec.NewVar("V", spec.BitVector(8)))
	cr := sys.AddChannel(&spec.Channel{Name: "cr", Accessor: b, Var: v, Dir: spec.Read})
	cw := sys.AddChannel(&spec.Channel{Name: "cw", Accessor: b, Var: v, Dir: spec.Write})
	bus := &spec.Bus{Name: "TB", Channels: []*spec.Channel{cr, cw}, Width: 8}
	sys.Buses = append(sys.Buses, bus)
	return sys, b, v, bus
}

func TestRewriteCallOutArgRemote(t *testing.T) {
	// A user procedure writes its out parameter; the call site passes
	// the remote variable. The rewrite must route through a temporary
	// followed by a send.
	sys, b, v, bus := oneChannelSystem()
	out := spec.NewVar("o", spec.BitVector(8))
	producer := b.AddProc(&spec.Procedure{
		Name:   "produce",
		Params: []spec.Param{{Var: out, Mode: spec.ModeOut}},
		Body:   []spec.Stmt{spec.AssignVar(spec.Ref(out), spec.VecString("10101010"))},
	})
	b.Body = []spec.Stmt{spec.CallProc(producer, spec.Ref(v))}
	ref, err := Generate(sys, bus, Config{Protocol: spec.FullHandshake})
	if err != nil {
		t.Fatal(err)
	}
	if spec.References(b.Body, v) {
		t.Fatalf("call arg still references remote var:\n%s", spec.FormatStmts(b.Body, ""))
	}
	// Body: produce(Vtemp); SendCw(Vtemp).
	if len(b.Body) != 2 {
		t.Fatalf("body = %d stmts:\n%s", len(b.Body), spec.FormatStmts(b.Body, ""))
	}
	send, ok := b.Body[1].(*spec.Call)
	if !ok || send.Proc != ref.AccessorProcs[bus.Channels[1]] {
		t.Fatalf("second stmt is not the send:\n%s", spec.FormatStmts(b.Body, ""))
	}
}

func TestRewriteCallInOutArgRemote(t *testing.T) {
	sys, b, v, bus := oneChannelSystem()
	x := spec.NewVar("x", spec.BitVector(8))
	bump := b.AddProc(&spec.Procedure{
		Name:   "bump",
		Params: []spec.Param{{Var: x, Mode: spec.ModeInOut}},
		Body: []spec.Stmt{
			spec.AssignVar(spec.Ref(x), spec.Add(spec.Ref(x), spec.VecString("00000001"))),
		},
	})
	b.Body = []spec.Stmt{spec.CallProc(bump, spec.Ref(v))}
	if _, err := Generate(sys, bus, Config{Protocol: spec.FullHandshake}); err != nil {
		t.Fatal(err)
	}
	if spec.References(b.Body, v) {
		t.Fatalf("inout arg still references remote var:\n%s", spec.FormatStmts(b.Body, ""))
	}
	// Body: ReceiveCr(Vtemp); bump(Vtemp); SendCw(Vtemp).
	if len(b.Body) != 3 {
		t.Fatalf("body = %d stmts:\n%s", len(b.Body), spec.FormatStmts(b.Body, ""))
	}
}

func TestRewriteRemoteReadInLocalIndex(t *testing.T) {
	// local(conv_integer(V)) := 1 — the remote read sits in the index
	// of a local array write.
	sys, b, v, bus := oneChannelSystem()
	local := b.AddVar("local", spec.Array(256, spec.BitVector(4)))
	b.Body = []spec.Stmt{
		spec.AssignVar(
			spec.At(spec.Ref(local), spec.ToInt(spec.Ref(v))),
			spec.VecString("1111")),
	}
	if _, err := Generate(sys, bus, Config{Protocol: spec.FullHandshake}); err != nil {
		t.Fatal(err)
	}
	if spec.References(b.Body, v) {
		t.Fatalf("index still references remote var:\n%s", spec.FormatStmts(b.Body, ""))
	}
	if len(b.Body) != 2 {
		t.Fatalf("want hoisted receive + assign, got:\n%s", spec.FormatStmts(b.Body, ""))
	}
}

func TestRewriteRemoteReadInForBounds(t *testing.T) {
	// for i in 0 to conv_integer(V) loop — bounds are evaluated once,
	// so a single hoisted receive before the loop is correct.
	sys, b, v, bus := oneChannelSystem()
	i := b.AddVar("i", spec.Integer)
	n := b.AddVar("n", spec.Integer)
	b.Body = []spec.Stmt{
		&spec.For{Var: i, From: spec.Int(0), To: spec.ToInt(spec.Ref(v)), Body: []spec.Stmt{
			spec.AssignVar(spec.Ref(n), spec.Add(spec.Ref(n), spec.Int(1))),
		}},
	}
	if _, err := Generate(sys, bus, Config{Protocol: spec.FullHandshake}); err != nil {
		t.Fatal(err)
	}
	if spec.References(b.Body, v) {
		t.Fatalf("bounds still reference remote var:\n%s", spec.FormatStmts(b.Body, ""))
	}
	if _, ok := b.Body[0].(*spec.Call); !ok {
		t.Fatalf("no hoisted receive before the loop:\n%s", spec.FormatStmts(b.Body, ""))
	}
}

func TestArbitrationLines(t *testing.T) {
	cases := []struct{ accs, want int }{
		{0, 0}, {1, 0}, {2, 2 + 1 + 1}, {3, 3 + 2 + 1}, {4, 4 + 2 + 1}, {5, 5 + 3 + 1},
	}
	for _, c := range cases {
		if got := ArbitrationLines(c.accs); got != c.want {
			t.Errorf("ArbitrationLines(%d) = %d, want %d", c.accs, got, c.want)
		}
	}
}

func TestArbiterGeneratedShape(t *testing.T) {
	// Direct protogen-side check of the arbiter artifacts (the
	// functional tests live with the simulator).
	sys, bus := buildPQ()
	ref, err := Generate(sys, bus, Config{Protocol: spec.FullHandshake, Arbitrate: true})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Arbiter == nil || ref.Arbiter.Name != "Barbiter" {
		t.Fatalf("arbiter = %v", ref.Arbiter)
	}
	if !ref.Arbiter.Server {
		t.Error("arbiter not a server")
	}
	if ref.Arbiter.Owner == nil || ref.Arbiter.Owner.Name != "comp2" {
		t.Error("arbiter not on the bus home module")
	}
	if bus.Record.FieldType("REQ").BitWidth() != 2 {
		t.Error("REQ width wrong for two accessors")
	}
	if bus.Record.FieldType("GRANT").BitWidth() != 1 {
		t.Error("GRANT width wrong")
	}
	// Round-robin variant has scan-loop locals.
	sys2, bus2 := buildPQ()
	ref2, err := Generate(sys2, bus2, Config{
		Protocol: spec.FullHandshake, Arbitrate: true, ArbiterPolicy: RoundRobinArbiter,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref2.Arbiter.Variables) != 3 { // last, k, idx
		t.Errorf("round-robin arbiter locals = %d", len(ref2.Arbiter.Variables))
	}
}

func TestArbiterPolicyString(t *testing.T) {
	if PriorityArbiter.String() != "priority" || RoundRobinArbiter.String() != "round-robin" {
		t.Error("policy strings wrong")
	}
}
