package protogen

import (
	"fmt"

	"repro/internal/spec"
)

// rewriteAccessors performs step 4 (update variable references): in every
// behavior that accesses a remote variable over one of the bus's
// channels, direct accesses are replaced by calls to the generated send
// and receive procedures.
//
//   - A write "X <= e" or "MEM(i) := e" becomes "SendCHw(e)" /
//     "SendCHw(i, e)".
//   - A read occurrence of X or MEM(i) nested in any expression is
//     hoisted: a fresh temporary is received into just before the
//     statement, and the occurrence is replaced by the temporary — the
//     paper's "ReceiveCH1(Xtemp); SendCH2(AD, Xtemp + 7)".
//
// Conditions of if statements are hoisted before the statement; while
// conditions are additionally re-received at the end of the loop body so
// the re-evaluation sees fresh data. For-loop bounds are hoisted once,
// matching VHDL's evaluate-once loop-range semantics.
func (g *generator) rewriteAccessors() {
	type key struct {
		beh *spec.Behavior
		v   *spec.Variable
		dir spec.Direction
	}
	chans := make(map[key]*spec.Channel)
	accessors := make(map[*spec.Behavior]bool)
	for _, c := range g.bus.Channels {
		chans[key{c.Accessor, c.Var, c.Dir}] = c
		accessors[c.Accessor] = true
	}
	for _, b := range g.sys.Behaviors() {
		if !accessors[b] {
			continue
		}
		rw := &rewriter{
			g:   g,
			beh: b,
			read: func(v *spec.Variable) *spec.Channel {
				return chans[key{b, v, spec.Read}]
			},
			write: func(v *spec.Variable) *spec.Channel {
				return chans[key{b, v, spec.Write}]
			},
		}
		b.Body = rw.rewriteBody(b.Body)
		for _, p := range b.Procedures {
			if p.Channel == nil { // skip the generated transfer procedures
				p.Body = rw.rewriteBody(p.Body)
			}
		}
	}
}

// rewriter rewrites one accessor behavior.
type rewriter struct {
	g           *generator
	beh         *spec.Behavior
	read, write func(*spec.Variable) *spec.Channel
	tempCount   map[*spec.Variable]int
}

func (rw *rewriter) rewriteBody(body []spec.Stmt) []spec.Stmt {
	return spec.RewriteStmts(body, rw.rewriteStmt)
}

func (rw *rewriter) rewriteStmt(s spec.Stmt) []spec.Stmt {
	switch s := s.(type) {
	case *spec.Assign:
		return rw.rewriteAssign(s)
	case *spec.If:
		// Hoist remote reads from all arm conditions before the if.
		var prelude []spec.Stmt
		cond, pre := rw.rewriteExpr(s.Cond)
		prelude = append(prelude, pre...)
		cp := &spec.If{Cond: cond, Then: s.Then, Else: s.Else}
		for _, arm := range s.Elifs {
			ac, apre := rw.rewriteExpr(arm.Cond)
			prelude = append(prelude, apre...)
			cp.Elifs = append(cp.Elifs, spec.ElseIf{Cond: ac, Body: arm.Body})
		}
		rw.g.noteRewritten(len(prelude))
		return append(prelude, cp)
	case *spec.While:
		cond, pre := rw.rewriteExpr(s.Cond)
		if len(pre) == 0 {
			return spec.Keep(s)
		}
		// Re-receive at the end of each iteration so the condition's
		// re-evaluation sees fresh remote data.
		body := append(append([]spec.Stmt{}, s.Body...), pre...)
		rw.g.noteRewritten(len(pre))
		return append(append([]spec.Stmt{}, pre...), &spec.While{Cond: cond, Body: body})
	case *spec.For:
		from, pre1 := rw.rewriteExpr(s.From)
		to, pre2 := rw.rewriteExpr(s.To)
		if len(pre1)+len(pre2) == 0 {
			return spec.Keep(s)
		}
		rw.g.noteRewritten(len(pre1) + len(pre2))
		prelude := append(pre1, pre2...)
		return append(prelude, &spec.For{Var: s.Var, From: from, To: to, Body: s.Body})
	case *spec.Call:
		return rw.rewriteCall(s)
	case *spec.Wait:
		if s.Until == nil {
			return spec.Keep(s)
		}
		cond, pre := rw.rewriteExpr(s.Until)
		if len(pre) == 0 {
			return spec.Keep(s)
		}
		rw.g.noteRewritten(len(pre))
		return append(pre, &spec.Wait{On: s.On, Until: cond, For: s.For, HasFor: s.HasFor})
	}
	return spec.Keep(s)
}

// rewriteAssign handles both sides of an assignment. The RHS and any
// index expressions of the LHS may contain remote reads; the LHS base may
// itself be a remote write target.
func (rw *rewriter) rewriteAssign(s *spec.Assign) []spec.Stmt {
	rhs, prelude := rw.rewriteExpr(s.RHS)

	base := spec.BaseVar(s.LHS)
	wc := rw.write(base)
	if wc == nil {
		// Local target; still rewrite remote reads inside LHS indices.
		lhs, pre := rw.rewriteLValueIndices(s.LHS)
		prelude = append(prelude, pre...)
		if len(prelude) == 0 {
			return spec.Keep(s)
		}
		rw.g.noteRewritten(len(prelude))
		return append(prelude, &spec.Assign{Kind: s.Kind, LHS: lhs, RHS: rhs})
	}

	// Remote write: replace the assignment with a SendCH call.
	send := rw.g.ref.AccessorProcs[wc]
	var args []spec.Expr
	switch lhs := s.LHS.(type) {
	case *spec.VarRef:
		// X <= e  ->  SendCHw(e)
	case *spec.Index:
		idx, pre := rw.rewriteExpr(lhs.Index)
		prelude = append(prelude, pre...)
		args = append(args, rw.addrArg(idx, wc.AddrBits()))
	default:
		panic(fmt.Sprintf("protogen: unsupported remote write target %s in behavior %s "+
			"(only whole-variable and indexed writes are supported)", s.LHS, rw.beh.Name))
	}
	args = append(args, rw.g.coerceToMsg(rhs, wc.DataBits()))
	rw.g.noteRewritten(1)
	return append(prelude, spec.CallProc(send, args...))
}

// rewriteLValueIndices rewrites remote reads inside the index/slice
// positions of a local lvalue, returning the new lvalue and the hoisted
// receive calls.
func (rw *rewriter) rewriteLValueIndices(lhs spec.Expr) (spec.Expr, []spec.Stmt) {
	switch lhs := lhs.(type) {
	case *spec.Index:
		arr, pre1 := rw.rewriteLValueIndices(lhs.Arr)
		idx, pre2 := rw.rewriteExpr(lhs.Index)
		return spec.At(arr, idx), append(pre1, pre2...)
	case *spec.SliceExpr:
		x, pre := rw.rewriteLValueIndices(lhs.X)
		return &spec.SliceExpr{X: x, Hi: lhs.Hi, Lo: lhs.Lo, Width: lhs.Width}, pre
	case *spec.FieldRef:
		x, pre := rw.rewriteLValueIndices(lhs.X)
		return spec.FieldOf(x, lhs.Field), pre
	}
	return lhs, nil
}

// rewriteCall hoists remote reads out of in-mode arguments and routes
// remote out-mode arguments through temporaries followed by a send.
func (rw *rewriter) rewriteCall(s *spec.Call) []spec.Stmt {
	var prelude, postlude []spec.Stmt
	args := make([]spec.Expr, len(s.Args))
	changed := false
	for i, a := range s.Args {
		mode := spec.ModeIn
		if s.Proc != nil && i < len(s.Proc.Params) {
			mode = s.Proc.Params[i].Mode
		}
		if mode == spec.ModeIn {
			na, pre := rw.rewriteExpr(a)
			args[i] = na
			prelude = append(prelude, pre...)
			changed = changed || len(pre) > 0
			continue
		}
		// out/inout: if the target is remote, pass a temporary and
		// forward it afterwards (and pre-fetch for inout).
		base := spec.BaseVar(a)
		wc := rw.write(base)
		if wc == nil {
			args[i] = a
			continue
		}
		tmp := rw.newTemp(base, wc.DataBits())
		if mode == spec.ModeInOut {
			if rc := rw.read(base); rc != nil {
				prelude = append(prelude, rw.receiveInto(rc, a, tmp)...)
			}
		}
		args[i] = spec.Ref(tmp)
		postlude = append(postlude, rw.sendFrom(wc, a, tmp)...)
		changed = true
	}
	if !changed {
		return spec.Keep(s)
	}
	rw.g.noteRewritten(1)
	out := append(prelude, spec.CallProc(s.Proc, args...))
	return append(out, postlude...)
}

// rewriteExpr returns a copy of e in which every remote read has been
// replaced by a temporary, plus the receive calls that fill those
// temporaries (in evaluation order).
func (rw *rewriter) rewriteExpr(e spec.Expr) (spec.Expr, []spec.Stmt) {
	if e == nil {
		return nil, nil
	}
	switch e := e.(type) {
	case *spec.VarRef:
		rc := rw.read(e.Var)
		if rc == nil {
			return e, nil
		}
		if rc.AddrBits() > 0 {
			// Whole-array read without an index: not a channel
			// transfer the paper defines; fetching element-wise is a
			// memory-copy transaction left to the caller.
			panic(fmt.Sprintf("protogen: whole-array read of remote %s in behavior %s "+
				"(read remote arrays element-wise)", e.Var.Name, rw.beh.Name))
		}
		tmp := rw.newTemp(e.Var, rc.DataBits())
		pre := []spec.Stmt{spec.CallProc(rw.g.ref.AccessorProcs[rc], spec.Ref(tmp))}
		return rw.castBack(spec.Ref(tmp), e.Var.Type), pre
	case *spec.Index:
		base := spec.BaseVar(e.Arr)
		rc := rw.read(base)
		idx, pre := rw.rewriteExpr(e.Index)
		if rc == nil || spec.BaseVar(e.Arr) != base || !isDirectRef(e.Arr) {
			arr, preArr := rw.rewriteExpr(e.Arr)
			return spec.At(arr, idx), append(preArr, pre...)
		}
		var elem spec.Type = spec.BitVector(rc.DataBits())
		if at, ok := spec.IsArray(base.Type); ok {
			elem = at.Elem
		}
		tmp := rw.newTemp(base, rc.DataBits())
		pre = append(pre, spec.CallProc(rw.g.ref.AccessorProcs[rc],
			rw.addrArg(idx, rc.AddrBits()), spec.Ref(tmp)))
		return rw.castBack(spec.Ref(tmp), elem), pre
	case *spec.Binary:
		x, p1 := rw.rewriteExpr(e.X)
		y, p2 := rw.rewriteExpr(e.Y)
		if len(p1)+len(p2) == 0 {
			return e, nil
		}
		return spec.Bin(e.Op, x, y), append(p1, p2...)
	case *spec.Unary:
		x, p := rw.rewriteExpr(e.X)
		if len(p) == 0 {
			return e, nil
		}
		return &spec.Unary{Op: e.Op, X: x}, p
	case *spec.Conv:
		x, p := rw.rewriteExpr(e.X)
		if len(p) == 0 {
			return e, nil
		}
		return &spec.Conv{X: x, To: e.To}, p
	case *spec.SliceExpr:
		x, p := rw.rewriteExpr(e.X)
		if len(p) == 0 {
			return e, nil
		}
		return &spec.SliceExpr{X: x, Hi: e.Hi, Lo: e.Lo, Width: e.Width}, p
	case *spec.FieldRef:
		x, p := rw.rewriteExpr(e.X)
		if len(p) == 0 {
			return e, nil
		}
		return spec.FieldOf(x, e.Field), p
	}
	return e, nil
}

func isDirectRef(e spec.Expr) bool {
	_, ok := e.(*spec.VarRef)
	return ok
}

// castBack adapts the received bit-vector temporary to the type the
// original occurrence had.
func (rw *rewriter) castBack(tmp spec.Expr, orig spec.Type) spec.Expr {
	switch orig.(type) {
	case spec.IntegerType:
		return spec.ToIntSigned(tmp)
	}
	return tmp
}

// addrArg adapts an index expression to the channel's address parameter.
func (rw *rewriter) addrArg(idx spec.Expr, addrBits int) spec.Expr {
	switch idx.Type().(type) {
	case spec.BitVectorType:
		if idx.Type().BitWidth() == addrBits {
			return idx
		}
		return &spec.Conv{X: idx, To: spec.BitVector(addrBits)}
	}
	return spec.ToVec(idx, addrBits)
}

// newTemp declares a fresh temporary in the accessor behavior, named
// after the remote variable in the paper's style: Xtemp, Xtemp2, ...
func (rw *rewriter) newTemp(v *spec.Variable, dataBits int) *spec.Variable {
	if rw.tempCount == nil {
		rw.tempCount = make(map[*spec.Variable]int)
	}
	rw.tempCount[v]++
	name := v.Name + "temp"
	if n := rw.tempCount[v]; n > 1 {
		name = fmt.Sprintf("%s%d", name, n)
	}
	tmp := rw.beh.AddVar(name, spec.BitVector(dataBits))
	rw.g.ref.Temps = append(rw.g.ref.Temps, tmp)
	return tmp
}

// receiveInto emits a receive of the remote value behind lvalue a into
// tmp (used for inout arguments).
func (rw *rewriter) receiveInto(rc *spec.Channel, a spec.Expr, tmp *spec.Variable) []spec.Stmt {
	recv := rw.g.ref.AccessorProcs[rc]
	if idx, ok := a.(*spec.Index); ok && rc.AddrBits() > 0 {
		i, pre := rw.rewriteExpr(idx.Index)
		return append(pre, spec.CallProc(recv, rw.addrArg(i, rc.AddrBits()), spec.Ref(tmp)))
	}
	return []spec.Stmt{spec.CallProc(recv, spec.Ref(tmp))}
}

// sendFrom emits a send of tmp to the remote target behind lvalue a.
func (rw *rewriter) sendFrom(wc *spec.Channel, a spec.Expr, tmp *spec.Variable) []spec.Stmt {
	send := rw.g.ref.AccessorProcs[wc]
	if idx, ok := a.(*spec.Index); ok && wc.AddrBits() > 0 {
		i, pre := rw.rewriteExpr(idx.Index)
		return append(pre, spec.CallProc(send, rw.addrArg(i, wc.AddrBits()), spec.Ref(tmp)))
	}
	return []spec.Stmt{spec.CallProc(send, spec.Ref(tmp))}
}

func (g *generator) noteRewritten(n int) { g.ref.RewrittenStmts += n }
