package protogen_test

import (
	"fmt"
	"log"

	"repro/internal/protogen"
	"repro/internal/spec"
	"repro/internal/vhdlgen"
	"repro/internal/workloads"
)

// ExampleGenerate runs protocol generation on the paper's Fig. 3 system
// and prints the artifacts its Fig. 4 shows: the bus record and channel
// IDs.
func ExampleGenerate() {
	sys, bus := workloads.PQ()
	ref, err := protogen.Generate(sys, bus, protogen.Config{Protocol: spec.FullHandshake})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("record %s with %d fields; %d variable processes\n",
		bus.Record.Name, len(bus.Record.Fields), len(ref.Servers))
	for _, c := range bus.Channels {
		fmt.Printf("%s id=%s\n", c.Name, c.ID)
	}
	_ = vhdlgen.Emit(sys) // full listing, Fig. 4/5 style
	// Output:
	// record HandShakeBus with 4 fields; 2 variable processes
	// CH0 id=00
	// CH1 id=01
	// CH2 id=10
	// CH3 id=11
}
