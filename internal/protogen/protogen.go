// Package protogen implements protocol generation (Section 4 of Narayan &
// Gajski, DAC'94): given a bus (a channel group with a selected width), it
// defines the exact mechanism of data transfer over the bus and refines
// the system specification so it is simulatable.
//
// The five steps of the paper:
//
//  1. Protocol selection — a communication protocol (full handshake,
//     half handshake, fixed delay, hardwired port) determines the bus's
//     control lines (START/DONE for the full handshake).
//  2. ID assignment — with N channels on the bus, ceil(log2(N)) ID lines
//     address the channel owning the bus at any time; each channel gets a
//     unique ID.
//  3. Bus structure and procedure definition — the bus is declared as a
//     global record signal (data + control + ID lines), and for each
//     channel send/receive procedures encapsulating the wire-level
//     transfer sequence are generated, slicing messages wider than the
//     bus into multiple bus words.
//  4. Variable-reference update — accesses to variables assigned to other
//     system components are replaced by calls to the generated send and
//     receive procedures ("X <= 32" becomes "SendCH0(32)"; reads nested in
//     expressions are hoisted into temporaries, "MEM(AD) := X + 7" becomes
//     "ReceiveCH1(Xtemp); SendCH2(AD, Xtemp + 7)").
//  5. Variable-process generation — for each remote variable a server
//     behavior (Xproc, MEMproc) is created that decodes the bus ID lines
//     and services read and write requests, making the refined
//     specification executable.
//
// Wire-level protocol. The paper's Fig. 4 fixes the write direction: the
// sender drives DATA and START and the receiver answers on DONE, two
// clocks per bus word (Eq. 2). For read channels — which Fig. 5 uses but
// does not detail — this package uses the mirror-image convention: the
// accessor first transfers the address (or a zero-data request word for
// scalar reads) exactly like a write, then the variable process streams
// the data words back driving DATA and DONE, with the accessor
// acknowledging on START. Each word costs two clocks in either direction.
//
// One deliberate deviation from the paper's listing: the generated
// variable processes dispatch on "wait until B.START = '1'" and then
// decode B.ID, rather than Fig. 5's "wait on B.ID". Waiting on ID events
// deadlocks when two consecutive transactions use the same channel (the
// ID lines never change); dispatching on the request strobe is
// insensitive to that and needs no extra wires.
package protogen

import (
	"fmt"
	"sort"

	"repro/internal/bits"
	"repro/internal/spec"
)

// Config parameterizes protocol generation.
type Config struct {
	// Protocol is the selected communication protocol (step 1). The
	// zero value is the paper's full handshake.
	Protocol spec.Protocol
	// BusSignalName optionally overrides the generated bus signal name;
	// empty means the bus's own name.
	BusSignalName string
	// Arbitrate adds REQ/GRANT bus arbitration and a generated arbiter
	// process, allowing multiple behaviors to open transactions
	// concurrently (the paper's Section 6 future work; see arbiter.go).
	Arbitrate bool
	// ArbiterPolicy selects the grant policy when Arbitrate is set; the
	// zero value is the fixed-priority arbiter.
	ArbiterPolicy ArbiterPolicy
	// Robust hardens the generated wire sequences against lost or
	// corrupted strobes (see robust.go): every handshake wait gets a
	// timeout, full-handshake accessors retransmit whole transactions
	// (up to MaxRetries, resynchronizing the server over an extra RST
	// line) before aborting cleanly, and variable processes get a
	// watchdog that returns to the dispatch loop when a transaction
	// stalls. Only handshake protocols can be hardened.
	Robust bool
	// TimeoutClocks bounds each hardened handshake wait; 0 means
	// DefaultTimeoutClocks. Requires Robust.
	TimeoutClocks int64
	// MaxRetries bounds transaction retransmission attempts on the full
	// handshake; 0 means DefaultMaxRetries. Requires Robust.
	MaxRetries int
	// Parity adds a PAR line carrying even parity over DATA and ID and
	// a NACK line on which the receiver rejects a corrupted word,
	// triggering retransmission. Requires Robust and the full handshake
	// (the only protocol with a receiver-to-sender feedback path).
	Parity bool
	// GrantHold makes the arbiter hold GVALID one extra clock after the
	// granted accessor's REQ falls, so the grant covers the transaction's
	// commit/release window: the master keeps the bus until its closing
	// edge has propagated, and a competing requester cannot be granted
	// into a bus whose previous owner is still driving its release.
	// Requires Arbitrate.
	GrantHold bool
	// BusPark parks the grant on the last bus owner: when the same
	// accessor re-requests, the arbiter skips the GRANT assignment and
	// its setup clock (the lines already select that owner) and re-raises
	// GVALID directly. Retries and back-to-back transactions from one
	// master re-acquire the bus without paying re-arbitration latency.
	// Requires Arbitrate.
	BusPark bool

	// The remaining knobs form the bounded repair grammar applied by
	// internal/repair: each closes one failure window the model checker
	// can exhibit in the hardened sequences. They are orthogonal and may
	// be combined freely.

	// CommitAck moves a write server's variable commit from after the
	// whole transaction into the final word's latch, before that word's
	// DONE rises. The accessor's last acknowledgement then confirms a
	// commit that has already happened, closing the lost-ack two-generals
	// window (DESIGN.md §5d): if the final strobe fall is lost and the
	// server's bounded wait aborts the tail of the handshake, the data is
	// already durable, and a retransmission merely re-commits the same
	// message (idempotent). Requires Robust and the full handshake.
	CommitAck bool
	// ReleaseStale lets a server's drain phase release a START strobe
	// that has been stuck high for a full timeout (the accessor's fall
	// event was lost on the wire): the dispatcher drives START to '0' —
	// deasserting a strobe is a release either side may perform — and
	// flushes one clock, restoring the bus to an armable state instead
	// of cycling drain timeouts forever (the watchdog lasso). Requires
	// Robust and the full handshake.
	ReleaseStale bool
	// AckSeq adds a SEQ line carrying the word-index parity of each
	// accessor-driven word; servers accept a word only when SEQ matches
	// the index they expect, so a stale strobe left over from the
	// previous word cannot be mistaken for the next one (word-framing
	// desynchronization). Requires Robust and the full handshake.
	AckSeq bool
	// EpochResync adds an EPOCH line pulsed alongside RST on every
	// retransmission; server bail-out conditions watch both lines, so a
	// resynchronization survives the loss of either edge within a
	// one-drop budget (dual-rail resync). Requires Robust and the full
	// handshake.
	EpochResync bool
	// TurnFlush appends a one-clock flush after the half handshake's
	// server-driven data phase lowers START, so the pending fall commits
	// before the server re-arms and the accessor opens its next
	// transaction — closing the read-turnaround driver contention
	// (DESIGN.md §5d). Requires the half handshake.
	TurnFlush bool
}

// Default hardening parameters, used when Config.Robust is set and the
// corresponding knob is zero.
const (
	// DefaultTimeoutClocks is the per-wait timeout: generously above
	// the two clocks a fault-free word transfer needs, small enough
	// that retries resolve quickly.
	DefaultTimeoutClocks = 16
	// DefaultMaxRetries is the retransmission budget per transaction.
	DefaultMaxRetries = 3
)

// Validate checks the configuration for internal contradictions and
// combinations the selected protocol cannot express. Generate calls it;
// callers assembling configurations from user input (flags) may want the
// error before running the whole flow.
func (c Config) Validate() error {
	if c.Arbitrate && c.Protocol == spec.HardwiredPort {
		return fmt.Errorf("protogen: hardwired ports are point-to-point wires with a single accessor: nothing to arbitrate")
	}
	if !c.Arbitrate {
		switch {
		case c.GrantHold:
			return fmt.Errorf("protogen: GrantHold extends the arbiter's grant policy: requires Arbitrate")
		case c.BusPark:
			return fmt.Errorf("protogen: BusPark extends the arbiter's grant policy: requires Arbitrate")
		}
	}
	if c.TimeoutClocks < 0 {
		return fmt.Errorf("protogen: negative TimeoutClocks %d", c.TimeoutClocks)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("protogen: negative MaxRetries %d", c.MaxRetries)
	}
	if c.TurnFlush && c.Protocol != spec.HalfHandshake {
		return fmt.Errorf("protogen: TurnFlush repairs the half handshake's read turnaround: meaningless on %s", c.Protocol)
	}
	if !c.Robust {
		switch {
		case c.Parity:
			return fmt.Errorf("protogen: Parity requires Robust (NACK-and-retry is part of the hardened sequence)")
		case c.TimeoutClocks != 0:
			return fmt.Errorf("protogen: TimeoutClocks requires Robust")
		case c.MaxRetries != 0:
			return fmt.Errorf("protogen: MaxRetries requires Robust")
		}
		if name := c.firstRetryKnob(); name != "" {
			return fmt.Errorf("protogen: %s repairs the hardened retransmission sequences: requires Robust", name)
		}
		return nil
	}
	switch c.Protocol {
	case spec.FixedDelay, spec.HardwiredPort:
		return fmt.Errorf("protogen: %s has no handshake waits to bound: timeouts, retransmission and parity are inexpressible (Robust needs a handshake protocol)", c.Protocol)
	case spec.HalfHandshake:
		if c.Parity {
			return fmt.Errorf("protogen: half handshake has no receiver-to-sender feedback path: parity NACK is inexpressible")
		}
		if c.MaxRetries != 0 {
			return fmt.Errorf("protogen: half handshake gives the sender no acknowledgement to miss: retransmission is inexpressible (Robust adds only the server watchdog)")
		}
		if name := c.firstRetryKnob(); name != "" {
			return fmt.Errorf("protogen: %s repairs the full handshake's retransmission machinery (RST, retry loops): inexpressible on the half handshake", name)
		}
	}
	return nil
}

// firstRetryKnob names the first set repair knob that presupposes the
// full-handshake retransmission machinery, or "" when none is set.
func (c Config) firstRetryKnob() string {
	switch {
	case c.CommitAck:
		return "CommitAck"
	case c.ReleaseStale:
		return "ReleaseStale"
	case c.AckSeq:
		return "AckSeq"
	case c.EpochResync:
		return "EpochResync"
	}
	return ""
}

// ArbiterPolicy enumerates generated arbiter grant policies.
type ArbiterPolicy int

// Arbiter policies.
const (
	// PriorityArbiter always grants the lowest-index requester: tiny
	// hardware, but a persistent low-index requester can starve others.
	PriorityArbiter ArbiterPolicy = iota
	// RoundRobinArbiter starts each grant scan after the last granted
	// index, guaranteeing every requester is served within one rotation.
	RoundRobinArbiter
)

func (p ArbiterPolicy) String() string {
	if p == RoundRobinArbiter {
		return "round-robin"
	}
	return "priority"
}

// Refinement reports what protocol generation added to the system.
type Refinement struct {
	Bus *spec.Bus
	// BusSignal is the generated global record signal.
	BusSignal *spec.Variable
	// AccessorProcs maps each channel to the send/receive procedure
	// generated into its accessing behavior.
	AccessorProcs map[*spec.Channel]*spec.Procedure
	// ServerProcs maps each channel to the serve procedure generated
	// into its variable process.
	ServerProcs map[*spec.Channel]*spec.Procedure
	// Servers lists the generated variable processes (Xproc, MEMproc),
	// in creation order.
	Servers []*spec.Behavior
	// Temps lists the temporaries created while hoisting remote reads.
	Temps []*spec.Variable
	// RewrittenStmts counts the accessor statements replaced in step 4.
	RewrittenStmts int
	// Arbiter is the generated bus arbiter process, nil unless
	// Config.Arbitrate was set and the bus has several accessors.
	Arbiter *spec.Behavior
	// AbortCounters lists the module variables counting cleanly aborted
	// transactions, one per module with hardened accessors (only when
	// Config.Robust enables retransmission). A fault campaign reads
	// them to tell a clean abort from silent corruption.
	AbortCounters []*spec.Variable
}

// AbortKeys returns the simulator Finals keys ("Module.Var") of the
// refinement's abort counters, in creation order.
func (r *Refinement) AbortKeys() []string {
	keys := make([]string, len(r.AbortCounters))
	for i, v := range r.AbortCounters {
		keys[i] = v.Owner.Name + "." + v.Name
	}
	return keys
}

// Generate runs protocol generation for one bus of the system, mutating
// the system in place (adding the bus signal, procedures and variable
// processes, and rewriting accessor bodies) and returning the refinement
// report. The bus must already have a positive width — normally chosen by
// bus generation — and its channels must belong to the system.
func Generate(sys *spec.System, bus *spec.Bus, cfg Config) (*Refinement, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if bus.Width <= 0 {
		return nil, fmt.Errorf("protogen: bus %s has no width (run bus generation first)", bus.Name)
	}
	if len(bus.Channels) == 0 {
		return nil, fmt.Errorf("protogen: bus %s has no channels", bus.Name)
	}
	for _, c := range bus.Channels {
		if sys.FindChannel(c.Name) != c {
			return nil, fmt.Errorf("protogen: channel %s of bus %s not in system", c.Name, bus.Name)
		}
		if c.Accessor == nil || c.Var == nil || c.Var.Owner == nil {
			return nil, fmt.Errorf("protogen: channel %s incompletely specified", c.Name)
		}
	}
	// Hardwired ports dedicate wires to a single channel; sharing them
	// defeats the point (and the wires carry no ID or control lines to
	// multiplex with). A group needing hardwired ports is one bus per
	// channel.
	if cfg.Protocol == spec.HardwiredPort && len(bus.Channels) > 1 {
		return nil, fmt.Errorf("protogen: bus %s: hardwired ports cannot be shared by %d channels "+
			"(split the group into one bus per channel)", bus.Name, len(bus.Channels))
	}

	g := &generator{
		sys: sys,
		bus: bus,
		cfg: cfg,
		ref: &Refinement{
			Bus:           bus,
			AccessorProcs: make(map[*spec.Channel]*spec.Procedure),
			ServerProcs:   make(map[*spec.Channel]*spec.Procedure),
		},
		servers:   make(map[*spec.Variable]*spec.Behavior),
		abortVars: make(map[*spec.Module]*spec.Variable),
	}

	// Step 1: protocol selection.
	bus.Protocol = cfg.Protocol
	bus.Robust = cfg.Robust
	bus.Parity = cfg.Parity
	bus.AckSeq = cfg.AckSeq && g.robustRetry()
	bus.EpochResync = cfg.EpochResync && g.robustRetry()

	// Step 2: ID assignment.
	g.assignIDs()

	// Step 3: bus structure and send/receive procedures.
	g.declareBus()
	for _, c := range bus.Channels {
		g.generateProcedures(c)
	}
	g.attachArbiter()

	// Step 4: update variable references in accessor behaviors.
	g.rewriteAccessors()

	// Step 5: dispatcher loops for the variable processes.
	g.finishServers()

	return g.ref, nil
}

type generator struct {
	sys     *spec.System
	bus     *spec.Bus
	cfg     Config
	ref     *Refinement
	servers map[*spec.Variable]*spec.Behavior
	// serverArms accumulates (channel, serve procedure) dispatch arms
	// per server, in channel order.
	serverArms map[*spec.Behavior][]dispatchArm
	// abortVars caches the per-module abort counter variables created
	// by hardened accessors (robust.go).
	abortVars map[*spec.Module]*spec.Variable
}

type dispatchArm struct {
	ch   *spec.Channel
	proc *spec.Procedure
}

// assignIDs gives each channel of the bus a unique ID of IDBits width
// (step 2). Channels are numbered in bus order: CH0 -> "00", CH1 -> "01"
// and so on, as in the paper's example.
func (g *generator) assignIDs() {
	idBits := g.bus.IDBits()
	for i, c := range g.bus.Channels {
		c.IDBits = idBits
		if idBits > 0 {
			c.ID = bits.FromUint(uint64(i), idBits)
		} else {
			c.ID = bits.New(0)
		}
	}
}

// declareBus builds the bus record type and the global bus signal
// (step 3, structure half). Field layout for the full handshake:
//
//	type HandShakeBus is record
//	  START, DONE : bit;
//	  ID   : bit_vector(idBits-1 downto 0);
//	  DATA : bit_vector(width-1 downto 0);
//	end record;
//	signal B : HandShakeBus;
func (g *generator) declareBus() {
	var fields []spec.Field
	switch g.cfg.Protocol {
	case spec.FullHandshake:
		fields = append(fields, spec.Field{Name: "START", Type: spec.Bit}, spec.Field{Name: "DONE", Type: spec.Bit})
	case spec.HalfHandshake:
		fields = append(fields, spec.Field{Name: "START", Type: spec.Bit})
	}
	if g.robustRetry() {
		fields = append(fields, spec.Field{Name: "RST", Type: spec.Bit})
		if g.cfg.AckSeq {
			fields = append(fields, spec.Field{Name: "SEQ", Type: spec.Bit})
		}
		if g.cfg.EpochResync {
			fields = append(fields, spec.Field{Name: "EPOCH", Type: spec.Bit})
		}
	}
	if g.cfg.Parity {
		fields = append(fields, spec.Field{Name: "PAR", Type: spec.Bit}, spec.Field{Name: "NACK", Type: spec.Bit})
	}
	if idb := g.bus.IDBits(); idb > 0 {
		fields = append(fields, spec.Field{Name: "ID", Type: spec.BitVector(idb)})
	}
	fields = append(fields, spec.Field{Name: "DATA", Type: spec.BitVector(g.bus.Width)})
	if g.arbitrated() {
		fields = append(fields, g.arbiterFields()...)
	}

	recName := recordName(g.cfg.Protocol)
	g.bus.Record = spec.RecordType{Name: recName, Fields: fields}

	name := g.cfg.BusSignalName
	if name == "" {
		name = g.bus.Name
	}
	sig := spec.NewSignal(name, g.bus.Record)
	g.sys.AddGlobal(sig)
	g.bus.Signal = sig
	g.ref.BusSignal = sig
}

func recordName(p spec.Protocol) string {
	switch p {
	case spec.HalfHandshake:
		return "HalfHandShakeBus"
	case spec.FixedDelay:
		return "FixedDelayBus"
	case spec.HardwiredPort:
		return "PortBus"
	}
	return "HandShakeBus"
}

// busField returns the lvalue/rvalue expression B.<field>.
func (g *generator) busField(field string) spec.Expr {
	return spec.FieldOf(spec.Ref(g.bus.Signal), field)
}

// idMatches returns the condition B.ID = "<id>"; for single-channel buses
// (no ID lines) it returns nil.
func (g *generator) idMatches(c *spec.Channel) spec.Expr {
	if c.IDBits == 0 {
		return nil
	}
	return spec.Eq(g.busField("ID"), spec.Vec(c.ID))
}

func andOpt(a, b spec.Expr) spec.Expr {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	return spec.LogicalAnd(a, b)
}

// generateProcedures builds the accessor-side and server-side procedures
// for one channel (step 3, behavior half) and registers the server
// dispatch arm (step 5 preparation).
func (g *generator) generateProcedures(c *spec.Channel) {
	server := g.serverFor(c.Var)
	var accessor, serve *spec.Procedure
	switch {
	case g.robustRetry():
		if c.Dir == spec.Write {
			accessor = g.buildRobustSendProc(c)
			serve = g.buildRobustServeWriteProc(c)
		} else {
			accessor = g.buildRobustReceiveProc(c)
			serve = g.buildRobustServeReadProc(c)
		}
	default:
		if c.Dir == spec.Write {
			accessor = g.buildSendProc(c)
			serve = g.buildServeWriteProc(c)
		} else {
			accessor = g.buildReceiveProc(c)
			serve = g.buildServeReadProc(c)
		}
		if g.cfg.Robust {
			// Half handshake: the accessor never blocks on an
			// acknowledgement, so only the server side can hang; harden
			// it with the watchdog alone.
			g.hardenServeProc(serve)
		}
	}
	accessor.Channel = c
	serve.Channel = c
	c.Accessor.AddProc(accessor)
	server.AddProc(serve)
	g.ref.AccessorProcs[c] = accessor
	g.ref.ServerProcs[c] = serve
	if g.serverArms == nil {
		g.serverArms = make(map[*spec.Behavior][]dispatchArm)
	}
	g.serverArms[server] = append(g.serverArms[server], dispatchArm{ch: c, proc: serve})
}

// serverFor returns (creating on first use) the variable process serving
// remote accesses to v: behavior "<v>proc" on v's module, marked Server.
// When a variable's channels are split across several buses (each bus
// generation run creates its own servers), later servers are suffixed
// with the bus name to keep behavior names unique.
func (g *generator) serverFor(v *spec.Variable) *spec.Behavior {
	if b, ok := g.servers[v]; ok {
		return b
	}
	name := v.Name + "proc"
	if g.sys.FindBehavior(name) != nil {
		name = v.Name + "proc_" + g.bus.Name
	}
	b := spec.NewBehavior(name)
	b.Server = true
	v.Owner.AddBehavior(b)
	g.servers[v] = b
	g.ref.Servers = append(g.ref.Servers, b)
	return b
}

// wordSpans returns the (hi,lo) bit spans slicing an mBits message into
// bus words, least significant word first. The final word may be
// narrower than the bus.
func wordSpans(mBits, width int) [][2]int {
	var spans [][2]int
	for lo := 0; lo < mBits; lo += width {
		hi := lo + width - 1
		if hi > mBits-1 {
			hi = mBits - 1
		}
		spans = append(spans, [2]int{hi, lo})
	}
	return spans
}

// padToBus widens a (possibly narrower) word expression to the bus width.
func (g *generator) padToBus(x spec.Expr) spec.Expr {
	if x.Type().BitWidth() == g.bus.Width {
		return x
	}
	return &spec.Conv{X: x, To: spec.BitVector(g.bus.Width)}
}

// sendWordStmts emits one accessor-driven word transfer:
//
//	B.DATA  <= <word>;
//	B.START <= '1';
//	wait until B.DONE = '1';
//	B.START <= '0';
//	wait until B.DONE = '0';
//
// For protocols without handshake wires the transfer degenerates to a
// DATA assignment plus a one-clock delay.
func (g *generator) sendWordStmts(word spec.Expr) []spec.Stmt {
	one := spec.VecString("1")
	zero := spec.VecString("0")
	switch g.cfg.Protocol {
	case spec.FullHandshake:
		return []spec.Stmt{
			spec.AssignSig(g.busField("DATA"), g.padToBus(word)),
			spec.AssignSig(g.busField("START"), one),
			spec.WaitUntil(spec.Eq(g.busField("DONE"), one)),
			spec.AssignSig(g.busField("START"), zero),
			spec.WaitUntil(spec.Eq(g.busField("DONE"), zero)),
		}
	case spec.HalfHandshake:
		return []spec.Stmt{
			spec.AssignSig(g.busField("DATA"), g.padToBus(word)),
			spec.AssignSig(g.busField("START"), one),
			spec.WaitFor(1),
			spec.AssignSig(g.busField("START"), zero),
			spec.WaitFor(1),
		}
	default: // FixedDelay, HardwiredPort
		return []spec.Stmt{
			spec.AssignSig(g.busField("DATA"), g.padToBus(word)),
			spec.WaitFor(1),
		}
	}
}

// serveWordStmts emits the server side of one accessor-driven word:
//
//	wait until B.START = '1' [and B.ID = id];
//	wait for 1;                    -- word setup (first clock of Eq. 2)
//	<latch>;
//	B.DONE <= '1';
//	wait until B.START = '0';
//	B.DONE <= '0';
//	wait for 1;                    -- recovery (second clock of Eq. 2)
//
// The timed waits both charge the paper's two clocks per word and act as
// delta-cycle flush points so back-to-back phases cannot merge their
// DONE transitions into a single delta.
func (g *generator) serveWordStmts(c *spec.Channel, latch []spec.Stmt) []spec.Stmt {
	one := spec.VecString("1")
	zero := spec.VecString("0")
	switch g.cfg.Protocol {
	case spec.FullHandshake:
		stmts := []spec.Stmt{
			spec.WaitUntil(andOpt(spec.Eq(g.busField("START"), one), g.idMatches(c))),
			spec.WaitFor(1),
		}
		stmts = append(stmts, latch...)
		stmts = append(stmts,
			spec.AssignSig(g.busField("DONE"), one),
			spec.WaitUntil(spec.Eq(g.busField("START"), zero)),
			spec.AssignSig(g.busField("DONE"), zero),
			spec.WaitFor(1),
		)
		return stmts
	case spec.HalfHandshake:
		stmts := []spec.Stmt{
			spec.WaitUntil(andOpt(spec.Eq(g.busField("START"), one), g.idMatches(c))),
			spec.WaitFor(1),
		}
		stmts = append(stmts, latch...)
		stmts = append(stmts, spec.WaitUntil(spec.Eq(g.busField("START"), zero)))
		return stmts
	default:
		stmts := []spec.Stmt{spec.WaitFor(1)}
		return append(stmts, latch...)
	}
}

// serverSendWordStmts emits one server-driven word (the data phase of a
// read): the roles of START and DONE swap — the server drives DATA and
// DONE, the accessor acknowledges on START.
func (g *generator) serverSendWordStmts(word spec.Expr) []spec.Stmt {
	one := spec.VecString("1")
	zero := spec.VecString("0")
	switch g.cfg.Protocol {
	case spec.FullHandshake:
		return []spec.Stmt{
			spec.AssignSig(g.busField("DATA"), g.padToBus(word)),
			spec.WaitFor(1),
			spec.AssignSig(g.busField("DONE"), one),
			spec.WaitUntil(spec.Eq(g.busField("START"), one)),
			spec.AssignSig(g.busField("DONE"), zero),
			spec.WaitFor(1),
			spec.WaitUntil(spec.Eq(g.busField("START"), zero)),
		}
	case spec.HalfHandshake:
		stmts := []spec.Stmt{
			spec.AssignSig(g.busField("DATA"), g.padToBus(word)),
			spec.WaitFor(1),
			spec.AssignSig(g.busField("START"), one),
			spec.WaitFor(1),
			spec.AssignSig(g.busField("START"), zero),
		}
		if g.cfg.TurnFlush {
			// Flush the pending START fall before the server re-arms:
			// without it the fall is still uncommitted when the
			// dispatcher re-checks the strobe and the accessor opens its
			// next transaction, and the two drivers collide on START
			// (the read-turnaround contention of DESIGN.md §5d).
			stmts = append(stmts, spec.WaitFor(1))
		}
		return stmts
	default:
		return []spec.Stmt{
			spec.AssignSig(g.busField("DATA"), g.padToBus(word)),
			spec.WaitFor(1),
		}
	}
}

// accessorRecvWordStmts emits the accessor side of one server-driven
// word.
func (g *generator) accessorRecvWordStmts(latch []spec.Stmt) []spec.Stmt {
	one := spec.VecString("1")
	zero := spec.VecString("0")
	switch g.cfg.Protocol {
	case spec.FullHandshake:
		stmts := []spec.Stmt{
			spec.WaitUntil(spec.Eq(g.busField("DONE"), one)),
		}
		stmts = append(stmts, latch...)
		stmts = append(stmts,
			spec.AssignSig(g.busField("START"), one),
			spec.WaitUntil(spec.Eq(g.busField("DONE"), zero)),
			spec.AssignSig(g.busField("START"), zero),
		)
		return stmts
	case spec.HalfHandshake:
		stmts := []spec.Stmt{
			spec.WaitUntil(spec.Eq(g.busField("START"), one)),
		}
		stmts = append(stmts, latch...)
		stmts = append(stmts, spec.WaitUntil(spec.Eq(g.busField("START"), zero)))
		return stmts
	default:
		stmts := []spec.Stmt{spec.WaitFor(1)}
		return append(stmts, latch...)
	}
}

// setID emits the ID-line assignment opening a transaction, if the bus
// has ID lines.
func (g *generator) setID(c *spec.Channel) []spec.Stmt {
	if c.IDBits == 0 {
		return nil
	}
	return []spec.Stmt{spec.AssignSig(g.busField("ID"), spec.Vec(c.ID))}
}

// buildSendProc generates the accessor's SendCHk procedure for a write
// channel: for arrays, SendCHk(addr, txdata); for scalars,
// SendCHk(txdata). The message (address high, data low) is sliced into
// bus words and each word is transferred with the accessor-driven
// handshake, as in the paper's Fig. 4.
func (g *generator) buildSendProc(c *spec.Channel) *spec.Procedure {
	p := &spec.Procedure{Name: "Send" + c.Name}
	dataBits, addrBits := c.DataBits(), c.AddrBits()
	txdata := spec.NewVar("txdata", spec.BitVector(dataBits))
	var addr *spec.Variable
	if addrBits > 0 {
		addr = spec.NewVar("addr", spec.BitVector(addrBits))
		p.Params = append(p.Params, spec.Param{Var: addr, Mode: spec.ModeIn})
	}
	p.Params = append(p.Params, spec.Param{Var: txdata, Mode: spec.ModeIn})

	// msg := addr & txdata (address in the high bits)
	mBits := dataBits + addrBits
	msg := spec.NewVar("msg", spec.BitVector(mBits))
	p.Locals = append(p.Locals, msg)
	var body []spec.Stmt
	if addrBits > 0 {
		body = append(body, spec.AssignVar(spec.Ref(msg), spec.Bin(spec.OpConcat, spec.Ref(addr), spec.Ref(txdata))))
	} else {
		body = append(body, spec.AssignVar(spec.Ref(msg), spec.Ref(txdata)))
	}
	body = append(body, g.setID(c)...)
	for _, span := range wordSpans(mBits, g.bus.Width) {
		body = append(body, g.sendWordStmts(spec.SliceBits(spec.Ref(msg), span[0], span[1]))...)
	}
	body = append(body, g.turnaround()...)
	p.Body = g.wrapArbitration(c.Accessor, body)
	return p
}

// turnaround closes an accessor transaction with a one-clock bus
// turnaround. Besides modeling the bus release cycle, the timed wait is
// a delta-cycle flush point: without it a back-to-back transaction from
// the same accessor would lower and re-raise START within a single
// delta, the transitions would coalesce, and the variable process
// waiting for the strobe to fall would hang.
func (g *generator) turnaround() []spec.Stmt {
	switch g.cfg.Protocol {
	case spec.FullHandshake:
		return []spec.Stmt{spec.WaitFor(1)}
	default:
		// Half-handshake word transfers already end in a timed wait;
		// fixed-delay and hardwired transfers have no strobe to
		// coalesce.
		return nil
	}
}

// buildServeWriteProc generates the variable process's serve procedure
// for a write channel: it assembles the incoming words into a message
// buffer and commits the data to the variable (indexed by the address
// bits for arrays).
func (g *generator) buildServeWriteProc(c *spec.Channel) *spec.Procedure {
	p := &spec.Procedure{Name: "Recv" + c.Name}
	dataBits, addrBits := c.DataBits(), c.AddrBits()
	mBits := dataBits + addrBits
	msg := spec.NewVar("msg", spec.BitVector(mBits))
	p.Locals = append(p.Locals, msg)

	var body []spec.Stmt
	for _, span := range wordSpans(mBits, g.bus.Width) {
		w := span[0] - span[1] + 1
		latch := []spec.Stmt{
			spec.AssignVar(
				spec.SliceBits(spec.Ref(msg), span[0], span[1]),
				spec.SliceBits(g.busField("DATA"), w-1, 0),
			),
		}
		body = append(body, g.serveWordStmts(c, latch)...)
	}
	// Commit.
	if addrBits > 0 {
		addrSlice := spec.SliceBits(spec.Ref(msg), mBits-1, dataBits)
		dataSlice := spec.SliceBits(spec.Ref(msg), dataBits-1, 0)
		elem := c.Var.Type.(spec.ArrayType).Elem
		body = append(body, spec.AssignVar(
			spec.At(spec.Ref(c.Var), spec.ToInt(addrSlice)), g.coerceToVar(dataSlice, elem)))
	} else {
		body = append(body, spec.AssignVar(spec.Ref(c.Var), g.coerceToVar(spec.Ref(msg), c.Var.Type)))
	}
	p.Body = body
	return p
}

// coerceToVar adapts a bit-vector message to the variable's declared
// type (identity for bit vectors, conversion for integers).
func (g *generator) coerceToVar(x spec.Expr, t spec.Type) spec.Expr {
	switch t.(type) {
	case spec.IntegerType:
		return spec.ToIntSigned(x)
	}
	return x
}

// coerceToMsg adapts a variable value to the channel's bit-vector
// message form.
func (g *generator) coerceToMsg(x spec.Expr, dataBits int) spec.Expr {
	switch x.Type().(type) {
	case spec.IntegerType:
		return spec.ToVec(x, dataBits)
	}
	return x
}

// buildReceiveProc generates the accessor's ReceiveCHk procedure for a
// read channel: ReceiveCHk(addr, rxdata) for arrays, ReceiveCHk(rxdata)
// for scalars. The address phase (or a zero-data request word for
// scalars) travels accessor-to-server like a write; the data phase
// travels back with the roles of START and DONE swapped.
func (g *generator) buildReceiveProc(c *spec.Channel) *spec.Procedure {
	p := &spec.Procedure{Name: "Receive" + c.Name}
	dataBits, addrBits := c.DataBits(), c.AddrBits()
	var addr *spec.Variable
	if addrBits > 0 {
		addr = spec.NewVar("addr", spec.BitVector(addrBits))
		p.Params = append(p.Params, spec.Param{Var: addr, Mode: spec.ModeIn})
	}
	rxdata := spec.NewVar("rxdata", spec.BitVector(dataBits))
	p.Params = append(p.Params, spec.Param{Var: rxdata, Mode: spec.ModeOut})

	body := g.setID(c)
	// Request/address phase.
	if addrBits > 0 {
		for _, span := range wordSpans(addrBits, g.bus.Width) {
			body = append(body, g.sendWordStmts(spec.SliceBits(spec.Ref(addr), span[0], span[1]))...)
		}
	} else {
		body = append(body, g.sendWordStmts(spec.Vec(bits.New(min(g.bus.Width, 1))))...)
	}
	// Data phase.
	for _, span := range wordSpans(dataBits, g.bus.Width) {
		w := span[0] - span[1] + 1
		latch := []spec.Stmt{
			spec.AssignVar(
				spec.SliceBits(spec.Ref(rxdata), span[0], span[1]),
				spec.SliceBits(g.busField("DATA"), w-1, 0),
			),
		}
		body = append(body, g.accessorRecvWordStmts(latch)...)
	}
	p.Body = g.wrapArbitration(c.Accessor, g.buildReceiveProcEnd(body))
	return p
}

// buildServeReadProc generates the variable process's serve procedure
// for a read channel: receive the address (or request) words, look the
// value up, and stream the data words back.
func (g *generator) buildServeReadProc(c *spec.Channel) *spec.Procedure {
	p := &spec.Procedure{Name: "Send" + c.Name}
	dataBits, addrBits := c.DataBits(), c.AddrBits()

	var body []spec.Stmt
	var value spec.Expr
	if addrBits > 0 {
		addrBuf := spec.NewVar("addrbuf", spec.BitVector(addrBits))
		p.Locals = append(p.Locals, addrBuf)
		for _, span := range wordSpans(addrBits, g.bus.Width) {
			w := span[0] - span[1] + 1
			latch := []spec.Stmt{
				spec.AssignVar(
					spec.SliceBits(spec.Ref(addrBuf), span[0], span[1]),
					spec.SliceBits(g.busField("DATA"), w-1, 0),
				),
			}
			body = append(body, g.serveWordStmts(c, latch)...)
		}
		value = spec.At(spec.Ref(c.Var), spec.ToInt(spec.Ref(addrBuf)))
	} else {
		body = append(body, g.serveWordStmts(c, nil)...) // request word, no latch
		value = spec.Ref(c.Var)
	}

	dataBuf := spec.NewVar("databuf", spec.BitVector(dataBits))
	p.Locals = append(p.Locals, dataBuf)
	body = append(body, spec.AssignVar(spec.Ref(dataBuf), g.coerceToMsg(value, dataBits)))
	for _, span := range wordSpans(dataBits, g.bus.Width) {
		body = append(body, g.serverSendWordStmts(spec.SliceBits(spec.Ref(dataBuf), span[0], span[1]))...)
	}
	p.Body = body
	return p
}

// buildReceiveProcEnd appends the transaction turnaround to a receive
// procedure body (separated for symmetry with buildSendProc).
func (g *generator) buildReceiveProcEnd(body []spec.Stmt) []spec.Stmt {
	return append(body, g.turnaround()...)
}

// finishServers builds each variable process's dispatcher body (step 5):
//
//	loop
//	  wait until B.START = '1';
//	  if    B.ID = "00" then RecvCH0;
//	  elsif B.ID = "01" then SendCH1;
//	  end if;
//	end loop;
func (g *generator) finishServers() {
	one := spec.VecString("1")
	// Deterministic server order: creation order.
	for _, server := range g.ref.Servers {
		arms := g.serverArms[server]
		sort.SliceStable(arms, func(i, j int) bool {
			return arms[i].ch.ID.CompareUnsigned(arms[j].ch.ID) < 0
		})
		var dispatch spec.Stmt
		if len(arms) == 1 && arms[0].ch.IDBits == 0 {
			dispatch = spec.CallProc(arms[0].proc)
		} else {
			ifStmt := &spec.If{Cond: g.idMatches(arms[0].ch), Then: []spec.Stmt{spec.CallProc(arms[0].proc)}}
			for _, arm := range arms[1:] {
				ifStmt.Elifs = append(ifStmt.Elifs, spec.ElseIf{
					Cond: g.idMatches(arm.ch),
					Body: []spec.Stmt{spec.CallProc(arm.proc)},
				})
			}
			// A request addressed to a channel served by another
			// variable process: wait out the current bus word so the
			// dispatcher does not spin on the still-asserted strobe.
			if g.cfg.Protocol == spec.FullHandshake || g.cfg.Protocol == spec.HalfHandshake {
				waitOut := spec.Expr(spec.Eq(g.busField("START"), spec.VecString("0")))
				if g.cfg.Robust {
					// Hardened: a stuck foreign strobe must not wedge
					// this server forever.
					if g.robustRetry() {
						waitOut = g.orRST(waitOut)
					}
					ifStmt.Else = []spec.Stmt{spec.WaitUntilFor(waitOut, g.timeout(), nil)}
				} else {
					ifStmt.Else = []spec.Stmt{spec.WaitUntil(waitOut)}
				}
			}
			dispatch = ifStmt
		}
		var trigger spec.Stmt
		switch g.cfg.Protocol {
		case spec.FullHandshake, spec.HalfHandshake:
			trigger = spec.WaitUntil(spec.Eq(g.busField("START"), one))
		default:
			// No strobe wires: dispatch on ID changes (fixed-delay
			// transfers are rate-matched by construction).
			if g.bus.IDBits() > 0 {
				trigger = spec.WaitOn(g.bus.Signal)
			} else {
				trigger = spec.WaitFor(1)
			}
		}
		var loop []spec.Stmt
		if g.robustRetry() {
			// Re-arm: a watchdog abort can return here with DONE (or
			// NACK) still asserted; clearing the server-driven lines
			// before the next dispatch keeps every abort path clean.
			loop = append(loop, spec.AssignSig(g.busField("DONE"), spec.VecString("0")))
			if g.cfg.Parity {
				loop = append(loop, spec.AssignSig(g.busField("NACK"), spec.VecString("0")))
			}
			// Drain before arming: dispatch only on a strobe that rises
			// *after* the previous one fell. Dispatching on the level —
			// fine with ideal wires — re-serves word 0 of a transaction
			// whose strobe is stuck high while the accessor is mid-way
			// through, silently desynchronizing the word framing.
			drained := server.AddVar("stale", spec.Bool)
			arm := &spec.If{Cond: spec.Not(spec.Ref(drained)), Then: []spec.Stmt{trigger, dispatch}}
			if g.cfg.ReleaseStale {
				// The strobe has been stuck high for a full timeout: the
				// accessor's fall event was lost on the wire and nobody
				// else will ever lower it. Deasserting a strobe to zero
				// is a release either side may perform; doing it here
				// restores an armable bus instead of cycling drain
				// timeouts forever. A fresh strobe clobbered by this
				// release recovers through the accessor's own
				// timeout-and-retransmit path.
				arm.Else = []spec.Stmt{
					spec.AssignSig(g.busField("START"), spec.VecString("0")),
					spec.WaitFor(1),
				}
			}
			loop = append(loop,
				spec.WaitUntilFor(spec.Eq(g.busField("START"), spec.VecString("0")), g.timeout(), drained),
				arm,
			)
		} else {
			loop = append(loop, trigger, dispatch)
		}
		server.Body = []spec.Stmt{&spec.Loop{Body: loop}}
	}
}
