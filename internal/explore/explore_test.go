package explore

import (
	"strings"
	"testing"

	"repro/internal/estimate"
	"repro/internal/flc"
	"repro/internal/protogen"
	"repro/internal/repair"
	"repro/internal/spec"
	"repro/internal/verify"
	"repro/internal/workloads"
)

func flcSpace(t *testing.T, cfg Config) (*Space, *flc.System) {
	t.Helper()
	f := flc.New(flc.DefaultConfig())
	est := estimate.New([]*spec.Channel{f.Ch1, f.Ch2})
	sp, err := Sweep([]*spec.Channel{f.Ch1, f.Ch2}, est, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sp, f
}

func TestSweepCoversSpace(t *testing.T) {
	sp, _ := flcSpace(t, Config{})
	// 23 widths x 2 protocols.
	if len(sp.Points) != 46 {
		t.Fatalf("points = %d, want 46", len(sp.Points))
	}
	for _, p := range sp.Points {
		if p.Pins < p.Width {
			t.Fatalf("pins %d < width %d", p.Pins, p.Width)
		}
		if len(p.ExecTime) != 2 {
			t.Fatalf("exec times for %d accessors", len(p.ExecTime))
		}
		if p.WorstExec <= 0 || p.InterfaceArea <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
}

func TestWiderIsFasterButBigger(t *testing.T) {
	sp, _ := flcSpace(t, Config{Protocols: []spec.Protocol{spec.FullHandshake}})
	pts := sp.Points
	for i := 1; i < len(pts); i++ {
		if pts[i].WorstExec > pts[i-1].WorstExec {
			t.Fatalf("worst exec increased at width %d", pts[i].Width)
		}
		if pts[i].Pins <= pts[i-1].Pins {
			t.Fatalf("pins not increasing at width %d", pts[i].Width)
		}
	}
}

func TestParetoIsNonDominatedAndFeasible(t *testing.T) {
	sp, _ := flcSpace(t, Config{})
	front := sp.Pareto()
	if len(front) == 0 {
		t.Fatal("empty Pareto front")
	}
	for _, p := range front {
		if !p.Feasible {
			t.Fatal("infeasible point on the front")
		}
		for _, q := range sp.Points {
			if q.Feasible && dominates(q, p) {
				t.Fatalf("front point (w=%d %s) dominated by (w=%d %s)",
					p.Width, p.Protocol, q.Width, q.Protocol)
			}
		}
	}
	// The front trades pins for time: sorted by pins, the worst-exec
	// must not increase then decrease arbitrarily — specifically the
	// cheapest point is slowest and the most expensive is fastest.
	first, last := front[0], front[len(front)-1]
	if first.Pins >= last.Pins {
		t.Fatal("front not spread over pins")
	}
	if first.WorstExec <= last.WorstExec {
		t.Fatal("cheap point not slower than expensive point")
	}
}

func TestBestRespectsConstraints(t *testing.T) {
	sp, f := flcSpace(t, Config{Protocols: []spec.Protocol{spec.FullHandshake}})
	// The paper's worked example constrains CONV_R2 under 2000 clocks,
	// excluding widths <= 4. Exploration additionally enforces Eq. 1
	// feasibility, which the FLC's rates fail below width 7, so the
	// cheapest admissible point is width 7 (where CONV_R2 needs 1559
	// clocks, inside the constraint).
	best, err := sp.Best(map[*spec.Behavior]int64{f.ConvR2: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if best.Width != 7 {
		t.Fatalf("best width = %d, want 7 (Eq. 1 + 2000-clock constraint)", best.Width)
	}
	if best.ExecTime[f.ConvR2] > 2000 {
		t.Fatalf("constraint violated: %d", best.ExecTime[f.ConvR2])
	}
	// Unsatisfiable constraint.
	if _, err := sp.Best(map[*spec.Behavior]int64{f.ConvR2: 10}); err == nil {
		t.Fatal("impossible constraint satisfied")
	}
}

func TestBestUnconstrainedPicksCheapestFeasible(t *testing.T) {
	sp, _ := flcSpace(t, Config{Protocols: []spec.Protocol{spec.FullHandshake}})
	best, err := sp.Best(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range sp.Points {
		if p.Feasible && p.Pins < best.Pins {
			t.Fatalf("cheaper feasible point exists: w=%d", p.Width)
		}
	}
}

func TestSweepEmptyGroupRejected(t *testing.T) {
	est := estimate.New(nil)
	if _, err := Sweep(nil, est, Config{}); err == nil {
		t.Fatal("empty group accepted")
	}
}

func TestSweepZeroMessageBitsRejected(t *testing.T) {
	// A channel whose variable carries no bits gives an empty default
	// width range; the sweep must say so rather than return an empty
	// space.
	b := spec.NewBehavior("B")
	v := spec.NewVar("V", spec.BitVector(0))
	ch := &spec.Channel{Name: "ch", Accessor: b, Var: v, Dir: spec.Write}
	est := estimate.New([]*spec.Channel{ch})
	if _, err := Sweep([]*spec.Channel{ch}, est, Config{}); err == nil {
		t.Fatal("zero-message-bits group accepted without MaxWidth")
	}
	// An explicit MaxWidth bounds the sweep and is accepted.
	sp, err := Sweep([]*spec.Channel{ch}, est, Config{MaxWidth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Points) != 8 { // 4 widths x 2 protocols
		t.Fatalf("points = %d, want 8", len(sp.Points))
	}
	// An inverted explicit range is an error, not an empty sweep.
	if _, err := Sweep([]*spec.Channel{ch}, est, Config{MinWidth: 5, MaxWidth: 4}); err == nil {
		t.Fatal("inverted width range accepted")
	}
}

func TestParallelSweepMatchesSerial(t *testing.T) {
	sys := workloads.Mesh(3)
	serialEst := estimate.New(sys.Channels)
	serial, err := Sweep(sys.Channels, serialEst, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallelEst := estimate.New(sys.Channels)
	parallel, err := Sweep(sys.Channels, parallelEst, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Points) != len(parallel.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(serial.Points), len(parallel.Points))
	}
	for i := range serial.Points {
		sp, pp := serial.Points[i], parallel.Points[i]
		if sp.Width != pp.Width || sp.Protocol != pp.Protocol || sp.Pins != pp.Pins ||
			sp.Feasible != pp.Feasible || sp.WorstExec != pp.WorstExec ||
			sp.InterfaceArea != pp.InterfaceArea {
			t.Fatalf("point %d differs:\nserial   %+v\nparallel %+v", i, sp, pp)
		}
		for b, v := range sp.ExecTime {
			if pp.ExecTime[b] != v {
				t.Fatalf("point %d: exec time of %s differs: %d vs %d", i, b.Name, v, pp.ExecTime[b])
			}
		}
	}
	sf, pf := serial.Pareto(), parallel.Pareto()
	if len(sf) != len(pf) {
		t.Fatalf("frontier sizes differ: %d vs %d", len(sf), len(pf))
	}
	for i := range sf {
		if sf[i].Width != pf[i].Width || sf[i].Protocol != pf[i].Protocol {
			t.Fatalf("frontier point %d differs: %+v vs %+v", i, sf[i], pf[i])
		}
	}
}

// TestParetoMatchesBruteForce pins the sort-based sweep against the
// naive all-pairs dominance scan on a large mixed space.
func TestParetoMatchesBruteForce(t *testing.T) {
	sys := workloads.Mesh(3)
	est := estimate.New(sys.Channels)
	sp, err := Sweep(sys.Channels, est, Config{
		Protocols: []spec.Protocol{spec.FullHandshake, spec.HalfHandshake, spec.FixedDelay},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := sp.Pareto()

	var feas []Point
	for _, p := range sp.Points {
		if p.Feasible {
			feas = append(feas, p)
		}
	}
	var want []Point
	for i, p := range feas {
		dominated := false
		for j, q := range feas {
			if i != j && dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			want = append(want, p)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("frontier size %d, brute force %d", len(got), len(want))
	}
	key := func(p Point) [2]int { return [2]int{p.Width, int(p.Protocol)} }
	wantSet := make(map[[2]int]bool, len(want))
	for _, p := range want {
		wantSet[key(p)] = true
	}
	for _, p := range got {
		if !wantSet[key(p)] {
			t.Fatalf("sweep kept (w=%d %s), brute force did not", p.Width, p.Protocol)
		}
	}
}

func TestParetoAllInfeasible(t *testing.T) {
	sp := &Space{Points: []Point{
		{Width: 1, Pins: 3, WorstExec: 10, InterfaceArea: 5},
		{Width: 2, Pins: 4, WorstExec: 8, InterfaceArea: 6},
	}}
	if front := sp.Pareto(); len(front) != 0 {
		t.Fatalf("all-infeasible space has a %d-point frontier", len(front))
	}
	if _, err := sp.Best(nil); err == nil {
		t.Fatal("Best succeeded on an all-infeasible space")
	}
}

func TestParetoSinglePoint(t *testing.T) {
	pt := Point{Width: 4, Pins: 6, Feasible: true, WorstExec: 100, InterfaceArea: 50}
	sp := &Space{Points: []Point{pt}}
	front := sp.Pareto()
	if len(front) != 1 || front[0].Width != 4 {
		t.Fatalf("single-point frontier = %+v", front)
	}
	best, err := sp.Best(nil)
	if err != nil {
		t.Fatal(err)
	}
	if best.Width != 4 {
		t.Fatalf("best = %+v", best)
	}
}

func TestParetoExactTiesAllKept(t *testing.T) {
	// Two points tied on every objective dominate neither; both stay on
	// the frontier. A third, strictly worse point is dropped.
	sp := &Space{Points: []Point{
		{Width: 4, Protocol: spec.FullHandshake, Pins: 6, Feasible: true, WorstExec: 100, InterfaceArea: 50},
		{Width: 5, Protocol: spec.HalfHandshake, Pins: 6, Feasible: true, WorstExec: 100, InterfaceArea: 50},
		{Width: 6, Protocol: spec.FullHandshake, Pins: 7, Feasible: true, WorstExec: 100, InterfaceArea: 50},
	}}
	front := sp.Pareto()
	if len(front) != 2 {
		t.Fatalf("frontier = %d points, want the 2 tied ones", len(front))
	}
	for _, p := range front {
		if p.Pins != 6 {
			t.Fatalf("dominated point on frontier: %+v", p)
		}
	}
}

func TestBestTieBreakOrder(t *testing.T) {
	// Cost order is pins, then area, then time: among equal-pin points
	// the smaller area wins even when it is slower; among fully tied
	// cost the earlier point in Points order is kept.
	a := Point{Width: 1, Protocol: spec.FullHandshake, Pins: 6, Feasible: true, WorstExec: 90, InterfaceArea: 60}
	b := Point{Width: 2, Protocol: spec.HalfHandshake, Pins: 6, Feasible: true, WorstExec: 100, InterfaceArea: 50}
	c := Point{Width: 3, Protocol: spec.FixedDelay, Pins: 6, Feasible: true, WorstExec: 80, InterfaceArea: 50}
	sp := &Space{Points: []Point{a, b, c}}
	best, err := sp.Best(nil)
	if err != nil {
		t.Fatal(err)
	}
	// b and c tie on pins and area; c is faster.
	if best.Width != 3 {
		t.Fatalf("best width = %d, want 3 (area then time tie-break)", best.Width)
	}
	// Exact ties on all cost components keep the first point examined.
	dup := c
	dup.Width = 9
	sp = &Space{Points: []Point{c, dup}}
	best, err = sp.Best(nil)
	if err != nil {
		t.Fatal(err)
	}
	if best.Width != 3 {
		t.Fatalf("exact tie resolved to width %d, want first-seen 3", best.Width)
	}
}

func TestFormatSmoke(t *testing.T) {
	sp, _ := flcSpace(t, Config{})
	out := Format(sp.Pareto())
	if !strings.Contains(out, "full-handshake") && !strings.Contains(out, "half-handshake") {
		t.Errorf("format output odd:\n%s", out)
	}
}

func TestNarrowWidthsInfeasibleForFLC(t *testing.T) {
	// Document the Eq. 1 boundary underpinning TestBestRespects-
	// Constraints: the FLC pair is infeasible below width 7 under the
	// full handshake.
	sp, _ := flcSpace(t, Config{Protocols: []spec.Protocol{spec.FullHandshake}})
	for _, p := range sp.Points {
		if p.Width < 7 && p.Feasible {
			t.Fatalf("width %d unexpectedly feasible", p.Width)
		}
		if p.Width >= 7 && !p.Feasible {
			t.Fatalf("width %d unexpectedly infeasible", p.Width)
		}
	}
}

func TestSweepRobustVariants(t *testing.T) {
	sp, _ := flcSpace(t, Config{IncludeRobust: true})
	// 23 widths x (full, full+robust, full+robust+parity, half).
	if len(sp.Points) != 23*4 {
		t.Fatalf("points = %d, want %d", len(sp.Points), 23*4)
	}
	var plain, robust, parity *Point
	for i := range sp.Points {
		p := &sp.Points[i]
		if p.Protocol != spec.FullHandshake || p.Width != 8 {
			continue
		}
		switch {
		case p.Parity:
			parity = p
		case p.Robust:
			robust = p
		default:
			plain = p
		}
	}
	if plain == nil || robust == nil || parity == nil {
		t.Fatal("missing full-handshake variant at width 8")
	}
	if robust.Pins != plain.Pins+1 {
		t.Errorf("robust pins = %d, want plain+1 = %d (RST)", robust.Pins, plain.Pins+1)
	}
	if parity.Pins != plain.Pins+3 {
		t.Errorf("parity pins = %d, want plain+3 = %d (RST+PAR+NACK)", parity.Pins, plain.Pins+3)
	}
	if robust.InterfaceArea <= plain.InterfaceArea {
		t.Error("hardening added no area")
	}
	if parity.InterfaceArea <= robust.InterfaceArea {
		t.Error("parity added no area over robust")
	}
	if robust.WorstExec != plain.WorstExec {
		t.Error("fault-free exec time should not change with hardening")
	}
}

func TestParetoKeepsRobustLevels(t *testing.T) {
	sp, _ := flcSpace(t, Config{IncludeRobust: true})
	front := sp.Pareto()
	levels := map[int]bool{}
	for _, p := range front {
		levels[p.robustLevel()] = true
		if !p.Feasible {
			t.Fatalf("infeasible point on front: %+v", p)
		}
	}
	// Hardened variants cost strictly more pins and area at equal speed,
	// so a single three-objective frontier would discard them all; the
	// per-level frontiers must keep every hardening level.
	for lvl := 0; lvl <= 2; lvl++ {
		if !levels[lvl] {
			t.Errorf("Pareto front lost hardening level %d", lvl)
		}
	}
	if s := Format(front); !strings.Contains(s, "+robust") || !strings.Contains(s, "+parity") {
		t.Error("Format does not label hardened variants")
	}
}

// TestSweepWidthRangeErrorsNameGroup: a degenerate width range must be
// reported against the channel group that produced it — sweeps run per
// group, and an anonymous error is undebuggable in a multi-bus flow.
func TestSweepWidthRangeErrorsNameGroup(t *testing.T) {
	b := spec.NewBehavior("B")
	mk := func(name string) *spec.Channel {
		return &spec.Channel{Name: name, Accessor: b, Var: spec.NewVar("V"+name, spec.BitVector(0)), Dir: spec.Write}
	}
	cases := []struct {
		name     string
		channels []*spec.Channel
		cfg      Config
		want     string
	}{
		{
			name:     "no message bits",
			channels: []*spec.Channel{mk("chA"), mk("chB")},
			cfg:      Config{},
			want:     "channel group {chA, chB} carries no message bits",
		},
		{
			name:     "inverted explicit range",
			channels: []*spec.Channel{mk("chA"), mk("chB")},
			cfg:      Config{MinWidth: 5, MaxWidth: 4},
			want:     "empty width range [5, 4] for channel group {chA, chB}",
		},
		{
			name:     "long group truncated",
			channels: []*spec.Channel{mk("c1"), mk("c2"), mk("c3"), mk("c4"), mk("c5"), mk("c6")},
			cfg:      Config{MinWidth: 2, MaxWidth: 1},
			want:     "channel group {c1, c2, c3, c4, … 2 more}",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			est := estimate.New(tc.channels)
			_, err := Sweep(tc.channels, est, tc.cfg)
			if err == nil {
				t.Fatal("degenerate range accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name the group (want substring %q)", err, tc.want)
			}
		})
	}
}

// TestAnnotateAndVerified: model-checking verdicts attached to sweep
// points separate estimated feasibility from verified correctness. The
// full-handshake PQ point checks clean; the half-handshake point's
// read-turnaround driver contention (a true finding, see
// internal/verify) must knock it out of the Verified set.
func TestAnnotateAndVerified(t *testing.T) {
	sys, bus := workloads.PQ()
	est := estimate.New(sys.Channels)
	sp, err := Sweep(bus.Channels, est, Config{MinWidth: 8, MaxWidth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Points) != 2 {
		t.Fatalf("points = %d, want 2 (full+half at width 8)", len(sp.Points))
	}
	build := func(p Point) (*spec.System, []string, error) {
		fresh, fbus := workloads.PQ()
		fbus.Width = p.Width
		ref, err := protogen.Generate(fresh, fbus, protogen.Config{
			Protocol: p.Protocol, Robust: p.Robust, Parity: p.Parity,
		})
		if err != nil {
			return nil, nil, err
		}
		return fresh, ref.AbortKeys(), nil
	}
	if err := Annotate(sp.Points, 0, build, verify.Config{}); err != nil {
		t.Fatal(err)
	}
	for i, p := range sp.Points {
		if p.Verdict == nil {
			t.Fatalf("point %d not annotated", i)
		}
	}
	ok := Verified(sp.Points)
	if len(ok) != 1 || ok[0].Protocol != spec.FullHandshake {
		t.Fatalf("Verified kept %d point(s), want exactly the full-handshake one:\n%s", len(ok), Format(ok))
	}
}

// TestAnnotateRepairUpgradesRobustPoints: under a 1-drop wire-fault
// budget no PQSolo sweep point verifies clean as generated — the plain
// handshakes wedge or corrupt, and even the hardened variants carry the
// lost-ack window. AnnotateRepair must repair the hardened points with
// tier-1 knobs, escalate the half-handshake point through the tier-3
// protocol reselection (pricing the move in the sweep's own units),
// leave each trace on its point, and hand Verified the post-repair
// verdicts. Only the plain full handshake — unhardened, nothing to
// escalate to — exhausts the grammar.
func TestAnnotateRepairUpgradesRobustPoints(t *testing.T) {
	sys, bus := workloads.PQSolo()
	est := estimate.New(sys.Channels)
	sp, err := Sweep(bus.Channels, est, Config{MinWidth: 8, MaxWidth: 8, IncludeRobust: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Points) != 4 {
		t.Fatalf("points = %d, want 4 (full, full+robust, full+parity, half at width 8)", len(sp.Points))
	}
	build := func(p Point) (repair.Builder, protogen.Config) {
		base := protogen.Config{Protocol: p.Protocol, Robust: p.Robust, Parity: p.Parity}
		if p.Robust {
			base.TimeoutClocks = 8
			base.MaxRetries = 2
		}
		return func(cfg protogen.Config) (*spec.System, []string, error) {
			fresh, fbus := workloads.PQSolo()
			fbus.Width = p.Width
			ref, err := protogen.Generate(fresh, fbus, cfg)
			if err != nil {
				return nil, nil, err
			}
			return fresh, ref.AbortKeys(), nil
		}, base
	}
	rcfg := repair.Config{
		Verify: verify.Config{MaxDrops: 1},
		Cost:   &repair.CostModel{Channels: bus.Channels, Est: est},
	}
	if err := AnnotateRepair(sp.Points, 0, build, rcfg); err != nil {
		t.Fatal(err)
	}
	for i, p := range sp.Points {
		if p.Verdict == nil || p.Repair == nil {
			t.Fatalf("point %d not annotated with a repair trace", i)
		}
	}
	ok := Verified(sp.Points)
	if len(ok) != 3 {
		t.Fatalf("Verified kept %d point(s), want the two hardened ones plus the escalated half handshake:\n%s", len(ok), Format(sp.Points))
	}
	for _, p := range ok {
		if !p.Repair.Verified() || len(p.Repair.Mutations) == 0 {
			t.Fatalf("surviving point not verified through repair:\n%s", p.Repair.Format())
		}
		if p.Robust {
			if p.Repair.FinalTier != 1 {
				t.Fatalf("hardened point escalated to tier %d, tier-1 knobs should suffice:\n%s", p.Repair.FinalTier, p.Repair.Format())
			}
			continue
		}
		// The surviving unhardened point is the half handshake, upgraded
		// by the tier-3 reselection; its trace must price the move in the
		// sweep's units against this point's width.
		if p.Protocol != spec.HalfHandshake {
			t.Fatalf("unhardened non-half point survived a 1-drop budget: %+v", p)
		}
		if p.Repair.FinalTier != 3 || !p.Repair.Config.Robust || p.Repair.Config.Protocol != spec.FullHandshake {
			t.Fatalf("half point did not escalate to the robust full handshake:\n%s", p.Repair.Format())
		}
		var cost *repair.EscalationCost
		for _, it := range p.Repair.Iterations {
			if it.Cost != nil {
				cost = it.Cost
			}
		}
		if cost == nil {
			t.Fatalf("escalated point carries no priced reselection:\n%s", p.Repair.Format())
		}
		if cost.PinsFrom != p.Pins {
			t.Fatalf("escalation priced from %d pins, sweep point has %d", cost.PinsFrom, p.Pins)
		}
		if cost.PinsTo <= cost.PinsFrom || cost.AreaTo <= cost.AreaFrom || cost.WorstExecTo <= cost.WorstExecFrom {
			t.Fatalf("reselection price not an upgrade cost: %+v", cost)
		}
	}
	for _, p := range sp.Points {
		if !p.Robust && p.Protocol == spec.FullHandshake && !p.Repair.ExhaustedGrammar {
			t.Fatalf("plain full-handshake point should exhaust the repair grammar:\n%s", p.Repair.Format())
		}
	}
}
