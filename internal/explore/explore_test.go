package explore

import (
	"strings"
	"testing"

	"repro/internal/estimate"
	"repro/internal/flc"
	"repro/internal/spec"
)

func flcSpace(t *testing.T, cfg Config) (*Space, *flc.System) {
	t.Helper()
	f := flc.New(flc.DefaultConfig())
	est := estimate.New([]*spec.Channel{f.Ch1, f.Ch2})
	sp, err := Sweep([]*spec.Channel{f.Ch1, f.Ch2}, est, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sp, f
}

func TestSweepCoversSpace(t *testing.T) {
	sp, _ := flcSpace(t, Config{})
	// 23 widths x 2 protocols.
	if len(sp.Points) != 46 {
		t.Fatalf("points = %d, want 46", len(sp.Points))
	}
	for _, p := range sp.Points {
		if p.Pins < p.Width {
			t.Fatalf("pins %d < width %d", p.Pins, p.Width)
		}
		if len(p.ExecTime) != 2 {
			t.Fatalf("exec times for %d accessors", len(p.ExecTime))
		}
		if p.WorstExec <= 0 || p.InterfaceArea <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
}

func TestWiderIsFasterButBigger(t *testing.T) {
	sp, _ := flcSpace(t, Config{Protocols: []spec.Protocol{spec.FullHandshake}})
	pts := sp.Points
	for i := 1; i < len(pts); i++ {
		if pts[i].WorstExec > pts[i-1].WorstExec {
			t.Fatalf("worst exec increased at width %d", pts[i].Width)
		}
		if pts[i].Pins <= pts[i-1].Pins {
			t.Fatalf("pins not increasing at width %d", pts[i].Width)
		}
	}
}

func TestParetoIsNonDominatedAndFeasible(t *testing.T) {
	sp, _ := flcSpace(t, Config{})
	front := sp.Pareto()
	if len(front) == 0 {
		t.Fatal("empty Pareto front")
	}
	for _, p := range front {
		if !p.Feasible {
			t.Fatal("infeasible point on the front")
		}
		for _, q := range sp.Points {
			if q.Feasible && dominates(q, p) {
				t.Fatalf("front point (w=%d %s) dominated by (w=%d %s)",
					p.Width, p.Protocol, q.Width, q.Protocol)
			}
		}
	}
	// The front trades pins for time: sorted by pins, the worst-exec
	// must not increase then decrease arbitrarily — specifically the
	// cheapest point is slowest and the most expensive is fastest.
	first, last := front[0], front[len(front)-1]
	if first.Pins >= last.Pins {
		t.Fatal("front not spread over pins")
	}
	if first.WorstExec <= last.WorstExec {
		t.Fatal("cheap point not slower than expensive point")
	}
}

func TestBestRespectsConstraints(t *testing.T) {
	sp, f := flcSpace(t, Config{Protocols: []spec.Protocol{spec.FullHandshake}})
	// The paper's worked example constrains CONV_R2 under 2000 clocks,
	// excluding widths <= 4. Exploration additionally enforces Eq. 1
	// feasibility, which the FLC's rates fail below width 7, so the
	// cheapest admissible point is width 7 (where CONV_R2 needs 1559
	// clocks, inside the constraint).
	best, err := sp.Best(map[*spec.Behavior]int64{f.ConvR2: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if best.Width != 7 {
		t.Fatalf("best width = %d, want 7 (Eq. 1 + 2000-clock constraint)", best.Width)
	}
	if best.ExecTime[f.ConvR2] > 2000 {
		t.Fatalf("constraint violated: %d", best.ExecTime[f.ConvR2])
	}
	// Unsatisfiable constraint.
	if _, err := sp.Best(map[*spec.Behavior]int64{f.ConvR2: 10}); err == nil {
		t.Fatal("impossible constraint satisfied")
	}
}

func TestBestUnconstrainedPicksCheapestFeasible(t *testing.T) {
	sp, _ := flcSpace(t, Config{Protocols: []spec.Protocol{spec.FullHandshake}})
	best, err := sp.Best(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range sp.Points {
		if p.Feasible && p.Pins < best.Pins {
			t.Fatalf("cheaper feasible point exists: w=%d", p.Width)
		}
	}
}

func TestSweepEmptyGroupRejected(t *testing.T) {
	est := estimate.New(nil)
	if _, err := Sweep(nil, est, Config{}); err == nil {
		t.Fatal("empty group accepted")
	}
}

func TestFormatSmoke(t *testing.T) {
	sp, _ := flcSpace(t, Config{})
	out := Format(sp.Pareto())
	if !strings.Contains(out, "full-handshake") && !strings.Contains(out, "half-handshake") {
		t.Errorf("format output odd:\n%s", out)
	}
}

func TestNarrowWidthsInfeasibleForFLC(t *testing.T) {
	// Document the Eq. 1 boundary underpinning TestBestRespects-
	// Constraints: the FLC pair is infeasible below width 7 under the
	// full handshake.
	sp, _ := flcSpace(t, Config{Protocols: []spec.Protocol{spec.FullHandshake}})
	for _, p := range sp.Points {
		if p.Width < 7 && p.Feasible {
			t.Fatalf("width %d unexpectedly feasible", p.Width)
		}
		if p.Width >= 7 && !p.Feasible {
			t.Fatalf("width %d unexpectedly infeasible", p.Width)
		}
	}
}
