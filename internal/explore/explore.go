// Package explore implements the design-space exploration step of the
// SpecSyn specify-explore-refine paradigm for interface synthesis: it
// sweeps candidate bus implementations (width × protocol) for a channel
// group, evaluating each point's pin count, per-process performance,
// interface area and Eq. 1 feasibility, and extracts the Pareto
// frontier the designer chooses from — the workflow behind the paper's
// Fig. 7 discussion ("if any performance constraints exist for these
// processes, the designer can select an appropriate buswidth").
package explore

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/estimate"
	"repro/internal/par"
	"repro/internal/protogen"
	"repro/internal/repair"
	"repro/internal/spec"
	"repro/internal/verify"
)

// Point is one candidate bus implementation.
type Point struct {
	Width    int
	Protocol spec.Protocol
	// Robust marks a hardened variant (bounded waits, retransmission,
	// RST resynchronization line); Parity additionally adds PAR/NACK
	// lines. See protogen.Config.Robust.
	Robust bool
	Parity bool
	// Pins is the total wire count (data + control + ID, plus the
	// hardening wires of robust variants).
	Pins int
	// Feasible reports Eq. 1 at this width/protocol.
	Feasible bool
	// ExecTime maps each accessing behavior to its estimated execution
	// time in clocks.
	ExecTime map[*spec.Behavior]int64
	// WorstExec is the maximum over ExecTime (the bus's slowest
	// process).
	WorstExec int64
	// InterfaceArea estimates the bus drivers plus a transfer FSM per
	// channel, in gates.
	InterfaceArea float64
	// Verdict is the model-checking report for this point, nil until
	// Annotate or AnnotateRepair has run. A clean verdict upgrades the
	// point from "estimated feasible" to "verified free of deadlocks,
	// driver conflicts and delivery faults" within the checked bounds.
	// Under AnnotateRepair it is the final (post-repair) iteration's
	// report — the verdict on the variant the point would actually ship.
	Verdict *verify.Report
	// Repair is the CEGIS repair trace for this point, nil unless
	// AnnotateRepair ran. A point that only verifies clean after repair
	// carries the applied mutations here; Verified treats it as verified
	// because Verdict describes the repaired variant.
	Repair *repair.Result
}

// Space is the evaluated design space.
type Space struct {
	Channels []*spec.Channel
	Points   []Point
}

// Config bounds the sweep.
type Config struct {
	// Protocols to examine; nil means full and half handshake.
	Protocols []spec.Protocol
	// IncludeRobust adds hardened variants to the sweep: for every
	// full-handshake candidate, a robust point (+1 RST pin, retry FSM
	// area) and a robust+parity point (+3 pins, plus the parity trees).
	// Fault-free execution time is unchanged, so these points trade
	// pins and area for fault tolerance — an objective the pins/time/
	// area dominance scan cannot see, which is why Pareto keeps a
	// separate frontier per hardening level.
	IncludeRobust bool
	// MinWidth/MaxWidth bound the width range; zero means the
	// bus-generation default (1 .. largest message).
	MinWidth, MaxWidth int
	// Area is the area model; zero value means the default model.
	Area estimate.AreaModel
	// Workers bounds the number of goroutines evaluating candidate
	// points: 0 means GOMAXPROCS, 1 means serial.
	Workers int
}

// Sweep evaluates every (width, protocol) candidate for the channel
// group. Candidates are fanned across cfg.Workers goroutines (default
// GOMAXPROCS); each point lands in its grid slot, so the result is
// byte-identical to a serial sweep regardless of scheduling. The
// estimator's memoized quantities make each point cheap after the
// first: only the communication terms depend on (width, protocol).
//
// Sweep must be given the pre-refinement specification: the estimator
// caches statement-tree walks, and protogen.Generate rewrites behavior
// bodies in place (see estimate.Estimator).
func Sweep(channels []*spec.Channel, est *estimate.Estimator, cfg Config) (*Space, error) {
	return SweepCtx(context.Background(), channels, est, cfg)
}

// SweepCtx is Sweep with cooperative cancellation: once ctx is done no
// further grid point is evaluated and SweepCtx returns ctx.Err() with a
// nil space — a partially evaluated grid is never returned, since
// downstream consumers (Pareto, Best, the serve cache) assume every
// slot is filled.
func SweepCtx(ctx context.Context, channels []*spec.Channel, est *estimate.Estimator, cfg Config) (*Space, error) {
	if len(channels) == 0 {
		return nil, errors.New("explore: empty channel group")
	}
	protocols := cfg.Protocols
	if len(protocols) == 0 {
		protocols = []spec.Protocol{spec.FullHandshake, spec.HalfHandshake}
	}
	lo := cfg.MinWidth
	if lo <= 0 {
		lo = 1
	}
	hi := cfg.MaxWidth
	if hi <= 0 {
		for _, c := range channels {
			if m := c.MessageBits(); m > hi {
				hi = m
			}
		}
		if hi <= 0 {
			return nil, fmt.Errorf("explore: channel group %s carries no message bits; set Config.MaxWidth to bound the sweep", groupName(channels))
		}
	}
	if hi < lo {
		return nil, fmt.Errorf("explore: empty width range [%d, %d] for channel group %s", lo, hi, groupName(channels))
	}
	area := cfg.Area
	if area == (estimate.AreaModel{}) {
		area = estimate.DefaultAreaModel()
	}

	variants := make([]variant, 0, 3*len(protocols))
	for _, p := range protocols {
		variants = append(variants, variant{proto: p})
		if cfg.IncludeRobust && p == spec.FullHandshake {
			variants = append(variants,
				variant{proto: p, robust: true},
				variant{proto: p, robust: true, parity: true})
		}
	}

	accessors := distinctAccessors(channels)
	widths := hi - lo + 1
	sp := &Space{Channels: channels, Points: make([]Point, len(variants)*widths)}
	err := par.ForCtx(ctx, len(sp.Points), cfg.Workers, func(i int) {
		v := variants[i/widths]
		p := v.proto
		w := lo + i%widths
		pt := Point{
			Width:    w,
			Protocol: p,
			Robust:   v.robust,
			Parity:   v.parity,
			Pins:     w + p.ControlLines() + idBits(len(channels)) + v.extraPins(),
			Feasible: estimate.BusRate(w, p) >= est.SumAveRates(channels, w, p),
			ExecTime: make(map[*spec.Behavior]int64, len(accessors)),
		}
		for _, b := range accessors {
			t := est.ExecTime(b, w, p)
			pt.ExecTime[b] = t
			if t > pt.WorstExec {
				pt.WorstExec = t
			}
		}
		pt.InterfaceArea = estimate.InterfaceArea(channels, w, p, area) +
			estimate.HardeningArea(channels, w, p, v.robust, v.parity, area)
		sp.Points[i] = pt
	})
	if err != nil {
		return nil, err
	}
	return sp, nil
}

// groupName renders a channel group for error messages: the member
// channel names, truncated past four.
func groupName(channels []*spec.Channel) string {
	names := make([]string, 0, len(channels))
	for i, c := range channels {
		if i == 4 {
			names = append(names, fmt.Sprintf("… %d more", len(channels)-i))
			break
		}
		names = append(names, c.Name)
	}
	return "{" + strings.Join(names, ", ") + "}"
}

// Annotate model-checks candidate points in place, fanning them across
// workers goroutines. Protocol generation rewrites specifications
// destructively, so the caller supplies build, which must return a
// *fresh* refined system implementing the point (plus its abort-counter
// finals keys, see protogen.Refinement.AbortKeys) on every call.
// Failed builds or checks surface as a joined error after every point
// has been attempted; points whose check errored keep a nil Verdict.
//
// Each point's check runs serially (verify.Config.Workers is forced to
// 1) unless Annotate itself is serial — the outer fan-out already
// saturates the CPUs, and nested exploration pools would oversubscribe.
func Annotate(points []Point, workers int, build func(Point) (*spec.System, []string, error), cfg verify.Config) error {
	return AnnotateCtx(context.Background(), points, workers, build, cfg)
}

// AnnotateCtx is Annotate with cooperative cancellation: ctx done stops
// launching new point checks and cancels the in-flight ones (the ctx
// reaches each verify.CheckCtx), and the joined error includes
// ctx.Err(). Points whose check was canceled keep a nil Verdict.
func AnnotateCtx(ctx context.Context, points []Point, workers int, build func(Point) (*spec.System, []string, error), cfg verify.Config) error {
	if workers != 1 {
		cfg.Workers = 1
	}
	errs := make([]error, len(points)+1)
	errs[len(points)] = par.ForCtx(ctx, len(points), workers, func(i int) {
		sys, aborts, err := build(points[i])
		if err != nil {
			errs[i] = fmt.Errorf("explore: point (width %d, %s): build: %w", points[i].Width, points[i].Protocol, err)
			return
		}
		c := cfg
		c.AbortVars = append(append([]string(nil), c.AbortVars...), aborts...)
		rep, err := verify.CheckCtx(ctx, sys, c)
		if err != nil {
			errs[i] = fmt.Errorf("explore: point (width %d, %s): %w", points[i].Width, points[i].Protocol, err)
			return
		}
		points[i].Verdict = rep
	})
	return errors.Join(errs...)
}

// AnnotateRepair model-checks candidate points like Annotate but runs
// each point through the CEGIS repair loop (internal/repair): a point
// whose base refinement violates the checked properties is re-generated
// with targeted hardening mutations — escalating through rcfg's tier
// ladder up to protocol reselection — until the properties hold or the
// grammar is exhausted. build must return, for every call, the point's
// base generation config and a repair.Builder producing a fresh refined
// system for any mutated config (protocol generation rewrites behavior
// bodies in place). Each point's Verdict is the final iteration's
// report and Repair the full trace, so Verified keeps points that ship
// clean only after repair.
//
// rcfg.Verify carries the checked bounds, rcfg.Budget/MaxTier the
// loop's limits. When rcfg.Cost is set, its Width is overridden per
// point, so an escalated point's trace prices the reselection in the
// same pins/area/exec-time units the sweep reports: the frontier entry
// the point abandoned versus the one repair moved it to.
//
// Like Annotate, each point's checks run serially unless AnnotateRepair
// itself is serial — the outer fan-out already saturates the CPUs.
func AnnotateRepair(points []Point, workers int, build func(Point) (repair.Builder, protogen.Config), rcfg repair.Config) error {
	return AnnotateRepairCtx(context.Background(), points, workers, build, rcfg)
}

// AnnotateRepairCtx is AnnotateRepair with cooperative cancellation,
// with the same contract as AnnotateCtx: canceled points keep a nil
// Verdict and the joined error includes ctx.Err().
func AnnotateRepairCtx(ctx context.Context, points []Point, workers int, build func(Point) (repair.Builder, protogen.Config), rcfg repair.Config) error {
	if workers != 1 {
		rcfg.Verify.Workers = 1
	}
	errs := make([]error, len(points)+1)
	errs[len(points)] = par.ForCtx(ctx, len(points), workers, func(i int) {
		builder, base := build(points[i])
		c := rcfg
		if c.Cost != nil {
			cm := *c.Cost
			cm.Width = points[i].Width
			c.Cost = &cm
		}
		res, err := repair.RunCtx(ctx, builder, base, c)
		if err != nil {
			errs[i] = fmt.Errorf("explore: point (width %d, %s): repair: %w", points[i].Width, points[i].Protocol, err)
			return
		}
		points[i].Verdict = res.Report
		points[i].Repair = res
	})
	return errors.Join(errs...)
}

// Verified filters points down to those whose model-checking verdict is
// clean: annotated, search complete, no violations. Points annotated
// through AnnotateRepair qualify on their post-repair verdict.
func Verified(points []Point) []Point {
	var out []Point
	for _, p := range points {
		if p.Verdict != nil && p.Verdict.Clean() {
			out = append(out, p)
		}
	}
	return out
}

// variant is one protocol flavor of the sweep grid.
type variant struct {
	proto          spec.Protocol
	robust, parity bool
}

// extraPins counts the hardening wires: RST for robust full handshakes,
// PAR and NACK for parity.
func (v variant) extraPins() int {
	n := 0
	if v.robust && v.proto == spec.FullHandshake {
		n++
	}
	if v.parity {
		n += 2
	}
	return n
}

func distinctAccessors(channels []*spec.Channel) []*spec.Behavior {
	seen := make(map[*spec.Behavior]bool)
	var out []*spec.Behavior
	for _, c := range channels {
		if !seen[c.Accessor] {
			seen[c.Accessor] = true
			out = append(out, c.Accessor)
		}
	}
	return out
}

func idBits(n int) int {
	if n <= 1 {
		return 0
	}
	return spec.AddrBits(n)
}

// Pareto returns the non-dominated points: no other point is at least
// as good on pins, worst-case execution time and interface area, and
// strictly better on one. Infeasible points are excluded. The result is
// sorted by pins (ties: worst exec, then area, then protocol and
// width), and points tied exactly on all three objectives are all kept,
// as none dominates another.
//
// The scan is a sort-based sweep, O(n log n) instead of the naive
// O(n²) all-pairs check: after sorting lexicographically by
// (pins, worst exec, area), any potential dominator of a point
// precedes it, so one pass with a staircase of (worst exec, area)
// minima over the points kept so far decides dominance with a binary
// search per point. (Dominance is transitive, so checking against kept
// points only is sufficient.)
// Robustness is a fourth objective the three-way dominance cannot
// express — hardened points always carry more pins and area at equal
// speed, so a single frontier would discard them all. Pareto therefore
// keeps one frontier per hardening level (plain, robust, robust+parity)
// and concatenates them, plain first.
func (s *Space) Pareto() []Point {
	var out []Point
	for level := 0; level <= 2; level++ {
		var feas []Point
		for _, p := range s.Points {
			if p.Feasible && p.robustLevel() == level {
				feas = append(feas, p)
			}
		}
		out = append(out, frontier(feas)...)
	}
	return out
}

// robustLevel orders the hardening variants: 0 plain, 1 robust,
// 2 robust+parity.
func (p Point) robustLevel() int {
	switch {
	case p.Parity:
		return 2
	case p.Robust:
		return 1
	}
	return 0
}

// frontier runs the staircase scan on one hardening level's feasible
// points.
func frontier(feas []Point) []Point {
	sort.Slice(feas, func(i, j int) bool {
		a, b := feas[i], feas[j]
		if a.Pins != b.Pins {
			return a.Pins < b.Pins
		}
		if a.WorstExec != b.WorstExec {
			return a.WorstExec < b.WorstExec
		}
		if a.InterfaceArea != b.InterfaceArea {
			return a.InterfaceArea < b.InterfaceArea
		}
		if a.Protocol != b.Protocol {
			return a.Protocol < b.Protocol
		}
		return a.Width < b.Width
	})

	// stairs holds, for the kept points so far, the minimal
	// (worst exec, area) pairs: exec strictly increasing, area strictly
	// decreasing.
	type step struct {
		t int64
		a float64
	}
	var stairs []step
	var out []Point
	prevKept := false
	for i, p := range feas {
		// Points tied exactly on all three objectives sort adjacently
		// and share one dominance verdict: the staircase must not test
		// a point against its own equals.
		if i > 0 && sameObjectives(feas[i-1], p) {
			if prevKept {
				out = append(out, p)
			}
			continue
		}
		// The latest stair with t <= p.WorstExec carries the smallest
		// area among all kept points no slower than p; if even that
		// area is <= p's, some earlier point dominates p.
		k := sort.Search(len(stairs), func(j int) bool { return stairs[j].t > p.WorstExec }) - 1
		if k >= 0 && stairs[k].a <= p.InterfaceArea {
			prevKept = false
			continue
		}
		prevKept = true
		out = append(out, p)
		// Insert (t, a), dropping stairs it renders non-minimal.
		t, a := p.WorstExec, p.InterfaceArea
		j := sort.Search(len(stairs), func(j int) bool { return stairs[j].t >= t })
		k = j
		for k < len(stairs) && stairs[k].a >= a {
			k++
		}
		switch k - j {
		case 0:
			stairs = append(stairs, step{})
			copy(stairs[j+1:], stairs[j:len(stairs)-1])
			stairs[j] = step{t, a}
		case 1:
			stairs[j] = step{t, a}
		default:
			stairs[j] = step{t, a}
			stairs = append(stairs[:j+1], stairs[k:]...)
		}
	}
	return out
}

// sameObjectives reports whether two points tie exactly on all three
// optimization objectives.
func sameObjectives(a, b Point) bool {
	return a.Pins == b.Pins && a.WorstExec == b.WorstExec && a.InterfaceArea == b.InterfaceArea
}

func dominates(a, b Point) bool {
	if a.Pins > b.Pins || a.WorstExec > b.WorstExec || a.InterfaceArea > b.InterfaceArea {
		return false
	}
	return a.Pins < b.Pins || a.WorstExec < b.WorstExec || a.InterfaceArea < b.InterfaceArea
}

// Best returns the cheapest feasible point whose every accessor meets
// its execution-time constraint (clocks); behaviors without an entry in
// limits are unconstrained. Cost order: pins, then area, then time.
func (s *Space) Best(limits map[*spec.Behavior]int64) (Point, error) {
	var best *Point
	for i := range s.Points {
		p := &s.Points[i]
		if !p.Feasible || !meets(p, limits) {
			continue
		}
		if best == nil || less(p, best) {
			best = p
		}
	}
	if best == nil {
		return Point{}, errors.New("explore: no feasible point meets the constraints")
	}
	return *best, nil
}

func meets(p *Point, limits map[*spec.Behavior]int64) bool {
	for b, lim := range limits {
		if t, ok := p.ExecTime[b]; ok && t > lim {
			return false
		}
	}
	return true
}

func less(a, b *Point) bool {
	if a.Pins != b.Pins {
		return a.Pins < b.Pins
	}
	if a.InterfaceArea != b.InterfaceArea {
		return a.InterfaceArea < b.InterfaceArea
	}
	return a.WorstExec < b.WorstExec
}

// Format renders points as an aligned table.
func Format(points []Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%5s  %-22s  %5s  %9s  %12s  %9s\n",
		"width", "protocol", "pins", "feasible", "worst clocks", "if gates")
	for _, p := range points {
		name := p.Protocol.String()
		switch p.robustLevel() {
		case 1:
			name += "+robust"
		case 2:
			name += "+parity"
		}
		fmt.Fprintf(&b, "%5d  %-22s  %5d  %9t  %12d  %9.0f\n",
			p.Width, name, p.Pins, p.Feasible, p.WorstExec, p.InterfaceArea)
	}
	return b.String()
}
