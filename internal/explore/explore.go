// Package explore implements the design-space exploration step of the
// SpecSyn specify-explore-refine paradigm for interface synthesis: it
// sweeps candidate bus implementations (width × protocol) for a channel
// group, evaluating each point's pin count, per-process performance,
// interface area and Eq. 1 feasibility, and extracts the Pareto
// frontier the designer chooses from — the workflow behind the paper's
// Fig. 7 discussion ("if any performance constraints exist for these
// processes, the designer can select an appropriate buswidth").
package explore

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/estimate"
	"repro/internal/spec"
)

// Point is one candidate bus implementation.
type Point struct {
	Width    int
	Protocol spec.Protocol
	// Pins is the total wire count (data + control + ID).
	Pins int
	// Feasible reports Eq. 1 at this width/protocol.
	Feasible bool
	// ExecTime maps each accessing behavior to its estimated execution
	// time in clocks.
	ExecTime map[*spec.Behavior]int64
	// WorstExec is the maximum over ExecTime (the bus's slowest
	// process).
	WorstExec int64
	// InterfaceArea estimates the bus drivers plus a transfer FSM per
	// channel, in gates.
	InterfaceArea float64
}

// Space is the evaluated design space.
type Space struct {
	Channels []*spec.Channel
	Points   []Point
}

// Config bounds the sweep.
type Config struct {
	// Protocols to examine; nil means full and half handshake.
	Protocols []spec.Protocol
	// MinWidth/MaxWidth bound the width range; zero means the
	// bus-generation default (1 .. largest message).
	MinWidth, MaxWidth int
	// Area is the area model; zero value means the default model.
	Area estimate.AreaModel
}

// Sweep evaluates every (width, protocol) candidate for the channel
// group.
func Sweep(channels []*spec.Channel, est *estimate.Estimator, cfg Config) (*Space, error) {
	if len(channels) == 0 {
		return nil, errors.New("explore: empty channel group")
	}
	protocols := cfg.Protocols
	if len(protocols) == 0 {
		protocols = []spec.Protocol{spec.FullHandshake, spec.HalfHandshake}
	}
	lo := cfg.MinWidth
	if lo <= 0 {
		lo = 1
	}
	hi := cfg.MaxWidth
	if hi <= 0 {
		for _, c := range channels {
			if m := c.MessageBits(); m > hi {
				hi = m
			}
		}
	}
	area := cfg.Area
	if area == (estimate.AreaModel{}) {
		area = estimate.DefaultAreaModel()
	}

	accessors := distinctAccessors(channels)
	sp := &Space{Channels: channels}
	for _, p := range protocols {
		for w := lo; w <= hi; w++ {
			pt := Point{
				Width:    w,
				Protocol: p,
				Pins:     w + p.ControlLines() + idBits(len(channels)),
				Feasible: estimate.BusRate(w, p) >= est.SumAveRates(channels, w, p),
				ExecTime: make(map[*spec.Behavior]int64, len(accessors)),
			}
			for _, b := range accessors {
				t := est.ExecTime(b, w, p)
				pt.ExecTime[b] = t
				if t > pt.WorstExec {
					pt.WorstExec = t
				}
			}
			pt.InterfaceArea = interfaceArea(channels, w, p, area)
			sp.Points = append(sp.Points, pt)
		}
	}
	return sp, nil
}

func distinctAccessors(channels []*spec.Channel) []*spec.Behavior {
	seen := make(map[*spec.Behavior]bool)
	var out []*spec.Behavior
	for _, c := range channels {
		if !seen[c.Accessor] {
			seen[c.Accessor] = true
			out = append(out, c.Accessor)
		}
	}
	return out
}

func idBits(n int) int {
	if n <= 1 {
		return 0
	}
	return spec.AddrBits(n)
}

// interfaceArea estimates the per-point interface cost without running
// protocol generation: drivers for every line on both sides, plus one
// word-handshake FSM state set per bus word of each channel's message.
func interfaceArea(channels []*spec.Channel, w int, p spec.Protocol, m estimate.AreaModel) float64 {
	lines := w + p.ControlLines() + idBits(len(channels))
	area := float64(lines) * m.DriverGates * 2
	for _, c := range channels {
		words := (c.MessageBits() + w - 1) / w
		// ~5 FSM states per word on each side of the transfer.
		area += float64(words) * 10 * m.StateGates
	}
	return area
}

// Pareto returns the non-dominated points: no other point is at least
// as good on pins, worst-case execution time and interface area, and
// strictly better on one. Infeasible points are excluded. The result is
// sorted by pins.
func (s *Space) Pareto() []Point {
	var feas []Point
	for _, p := range s.Points {
		if p.Feasible {
			feas = append(feas, p)
		}
	}
	var out []Point
	for i, p := range feas {
		dominated := false
		for j, q := range feas {
			if i == j {
				continue
			}
			if dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pins != out[j].Pins {
			return out[i].Pins < out[j].Pins
		}
		return out[i].WorstExec < out[j].WorstExec
	})
	return out
}

func dominates(a, b Point) bool {
	if a.Pins > b.Pins || a.WorstExec > b.WorstExec || a.InterfaceArea > b.InterfaceArea {
		return false
	}
	return a.Pins < b.Pins || a.WorstExec < b.WorstExec || a.InterfaceArea < b.InterfaceArea
}

// Best returns the cheapest feasible point whose every accessor meets
// its execution-time constraint (clocks); behaviors without an entry in
// limits are unconstrained. Cost order: pins, then area, then time.
func (s *Space) Best(limits map[*spec.Behavior]int64) (Point, error) {
	var best *Point
	for i := range s.Points {
		p := &s.Points[i]
		if !p.Feasible || !meets(p, limits) {
			continue
		}
		if best == nil || less(p, best) {
			best = p
		}
	}
	if best == nil {
		return Point{}, errors.New("explore: no feasible point meets the constraints")
	}
	return *best, nil
}

func meets(p *Point, limits map[*spec.Behavior]int64) bool {
	for b, lim := range limits {
		if t, ok := p.ExecTime[b]; ok && t > lim {
			return false
		}
	}
	return true
}

func less(a, b *Point) bool {
	if a.Pins != b.Pins {
		return a.Pins < b.Pins
	}
	if a.InterfaceArea != b.InterfaceArea {
		return a.InterfaceArea < b.InterfaceArea
	}
	return a.WorstExec < b.WorstExec
}

// Format renders points as an aligned table.
func Format(points []Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%5s  %-15s  %5s  %9s  %12s  %9s\n",
		"width", "protocol", "pins", "feasible", "worst clocks", "if gates")
	for _, p := range points {
		fmt.Fprintf(&b, "%5d  %-15s  %5d  %9t  %12d  %9.0f\n",
			p.Width, p.Protocol, p.Pins, p.Feasible, p.WorstExec, p.InterfaceArea)
	}
	return b.String()
}
