// Package explore implements the design-space exploration step of the
// SpecSyn specify-explore-refine paradigm for interface synthesis: it
// sweeps candidate bus implementations (width × protocol) for a channel
// group, evaluating each point's pin count, per-process performance,
// interface area and Eq. 1 feasibility, and extracts the Pareto
// frontier the designer chooses from — the workflow behind the paper's
// Fig. 7 discussion ("if any performance constraints exist for these
// processes, the designer can select an appropriate buswidth").
package explore

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/estimate"
	"repro/internal/par"
	"repro/internal/spec"
)

// Point is one candidate bus implementation.
type Point struct {
	Width    int
	Protocol spec.Protocol
	// Pins is the total wire count (data + control + ID).
	Pins int
	// Feasible reports Eq. 1 at this width/protocol.
	Feasible bool
	// ExecTime maps each accessing behavior to its estimated execution
	// time in clocks.
	ExecTime map[*spec.Behavior]int64
	// WorstExec is the maximum over ExecTime (the bus's slowest
	// process).
	WorstExec int64
	// InterfaceArea estimates the bus drivers plus a transfer FSM per
	// channel, in gates.
	InterfaceArea float64
}

// Space is the evaluated design space.
type Space struct {
	Channels []*spec.Channel
	Points   []Point
}

// Config bounds the sweep.
type Config struct {
	// Protocols to examine; nil means full and half handshake.
	Protocols []spec.Protocol
	// MinWidth/MaxWidth bound the width range; zero means the
	// bus-generation default (1 .. largest message).
	MinWidth, MaxWidth int
	// Area is the area model; zero value means the default model.
	Area estimate.AreaModel
	// Workers bounds the number of goroutines evaluating candidate
	// points: 0 means GOMAXPROCS, 1 means serial.
	Workers int
}

// Sweep evaluates every (width, protocol) candidate for the channel
// group. Candidates are fanned across cfg.Workers goroutines (default
// GOMAXPROCS); each point lands in its grid slot, so the result is
// byte-identical to a serial sweep regardless of scheduling. The
// estimator's memoized quantities make each point cheap after the
// first: only the communication terms depend on (width, protocol).
//
// Sweep must be given the pre-refinement specification: the estimator
// caches statement-tree walks, and protogen.Generate rewrites behavior
// bodies in place (see estimate.Estimator).
func Sweep(channels []*spec.Channel, est *estimate.Estimator, cfg Config) (*Space, error) {
	if len(channels) == 0 {
		return nil, errors.New("explore: empty channel group")
	}
	protocols := cfg.Protocols
	if len(protocols) == 0 {
		protocols = []spec.Protocol{spec.FullHandshake, spec.HalfHandshake}
	}
	lo := cfg.MinWidth
	if lo <= 0 {
		lo = 1
	}
	hi := cfg.MaxWidth
	if hi <= 0 {
		for _, c := range channels {
			if m := c.MessageBits(); m > hi {
				hi = m
			}
		}
		if hi <= 0 {
			return nil, errors.New("explore: channel group carries no message bits; set Config.MaxWidth to bound the sweep")
		}
	}
	if hi < lo {
		return nil, fmt.Errorf("explore: empty width range [%d, %d]", lo, hi)
	}
	area := cfg.Area
	if area == (estimate.AreaModel{}) {
		area = estimate.DefaultAreaModel()
	}

	accessors := distinctAccessors(channels)
	widths := hi - lo + 1
	sp := &Space{Channels: channels, Points: make([]Point, len(protocols)*widths)}
	par.For(len(sp.Points), cfg.Workers, func(i int) {
		p := protocols[i/widths]
		w := lo + i%widths
		pt := Point{
			Width:    w,
			Protocol: p,
			Pins:     w + p.ControlLines() + idBits(len(channels)),
			Feasible: estimate.BusRate(w, p) >= est.SumAveRates(channels, w, p),
			ExecTime: make(map[*spec.Behavior]int64, len(accessors)),
		}
		for _, b := range accessors {
			t := est.ExecTime(b, w, p)
			pt.ExecTime[b] = t
			if t > pt.WorstExec {
				pt.WorstExec = t
			}
		}
		pt.InterfaceArea = interfaceArea(channels, w, p, area)
		sp.Points[i] = pt
	})
	return sp, nil
}

func distinctAccessors(channels []*spec.Channel) []*spec.Behavior {
	seen := make(map[*spec.Behavior]bool)
	var out []*spec.Behavior
	for _, c := range channels {
		if !seen[c.Accessor] {
			seen[c.Accessor] = true
			out = append(out, c.Accessor)
		}
	}
	return out
}

func idBits(n int) int {
	if n <= 1 {
		return 0
	}
	return spec.AddrBits(n)
}

// interfaceArea estimates the per-point interface cost without running
// protocol generation: drivers for every line on both sides, plus one
// word-handshake FSM state set per bus word of each channel's message.
func interfaceArea(channels []*spec.Channel, w int, p spec.Protocol, m estimate.AreaModel) float64 {
	lines := w + p.ControlLines() + idBits(len(channels))
	area := float64(lines) * m.DriverGates * 2
	for _, c := range channels {
		words := (c.MessageBits() + w - 1) / w
		// ~5 FSM states per word on each side of the transfer.
		area += float64(words) * 10 * m.StateGates
	}
	return area
}

// Pareto returns the non-dominated points: no other point is at least
// as good on pins, worst-case execution time and interface area, and
// strictly better on one. Infeasible points are excluded. The result is
// sorted by pins (ties: worst exec, then area, then protocol and
// width), and points tied exactly on all three objectives are all kept,
// as none dominates another.
//
// The scan is a sort-based sweep, O(n log n) instead of the naive
// O(n²) all-pairs check: after sorting lexicographically by
// (pins, worst exec, area), any potential dominator of a point
// precedes it, so one pass with a staircase of (worst exec, area)
// minima over the points kept so far decides dominance with a binary
// search per point. (Dominance is transitive, so checking against kept
// points only is sufficient.)
func (s *Space) Pareto() []Point {
	var feas []Point
	for _, p := range s.Points {
		if p.Feasible {
			feas = append(feas, p)
		}
	}
	sort.Slice(feas, func(i, j int) bool {
		a, b := feas[i], feas[j]
		if a.Pins != b.Pins {
			return a.Pins < b.Pins
		}
		if a.WorstExec != b.WorstExec {
			return a.WorstExec < b.WorstExec
		}
		if a.InterfaceArea != b.InterfaceArea {
			return a.InterfaceArea < b.InterfaceArea
		}
		if a.Protocol != b.Protocol {
			return a.Protocol < b.Protocol
		}
		return a.Width < b.Width
	})

	// stairs holds, for the kept points so far, the minimal
	// (worst exec, area) pairs: exec strictly increasing, area strictly
	// decreasing.
	type step struct {
		t int64
		a float64
	}
	var stairs []step
	var out []Point
	prevKept := false
	for i, p := range feas {
		// Points tied exactly on all three objectives sort adjacently
		// and share one dominance verdict: the staircase must not test
		// a point against its own equals.
		if i > 0 && sameObjectives(feas[i-1], p) {
			if prevKept {
				out = append(out, p)
			}
			continue
		}
		// The latest stair with t <= p.WorstExec carries the smallest
		// area among all kept points no slower than p; if even that
		// area is <= p's, some earlier point dominates p.
		k := sort.Search(len(stairs), func(j int) bool { return stairs[j].t > p.WorstExec }) - 1
		if k >= 0 && stairs[k].a <= p.InterfaceArea {
			prevKept = false
			continue
		}
		prevKept = true
		out = append(out, p)
		// Insert (t, a), dropping stairs it renders non-minimal.
		t, a := p.WorstExec, p.InterfaceArea
		j := sort.Search(len(stairs), func(j int) bool { return stairs[j].t >= t })
		k = j
		for k < len(stairs) && stairs[k].a >= a {
			k++
		}
		switch k - j {
		case 0:
			stairs = append(stairs, step{})
			copy(stairs[j+1:], stairs[j:len(stairs)-1])
			stairs[j] = step{t, a}
		case 1:
			stairs[j] = step{t, a}
		default:
			stairs[j] = step{t, a}
			stairs = append(stairs[:j+1], stairs[k:]...)
		}
	}
	return out
}

// sameObjectives reports whether two points tie exactly on all three
// optimization objectives.
func sameObjectives(a, b Point) bool {
	return a.Pins == b.Pins && a.WorstExec == b.WorstExec && a.InterfaceArea == b.InterfaceArea
}

func dominates(a, b Point) bool {
	if a.Pins > b.Pins || a.WorstExec > b.WorstExec || a.InterfaceArea > b.InterfaceArea {
		return false
	}
	return a.Pins < b.Pins || a.WorstExec < b.WorstExec || a.InterfaceArea < b.InterfaceArea
}

// Best returns the cheapest feasible point whose every accessor meets
// its execution-time constraint (clocks); behaviors without an entry in
// limits are unconstrained. Cost order: pins, then area, then time.
func (s *Space) Best(limits map[*spec.Behavior]int64) (Point, error) {
	var best *Point
	for i := range s.Points {
		p := &s.Points[i]
		if !p.Feasible || !meets(p, limits) {
			continue
		}
		if best == nil || less(p, best) {
			best = p
		}
	}
	if best == nil {
		return Point{}, errors.New("explore: no feasible point meets the constraints")
	}
	return *best, nil
}

func meets(p *Point, limits map[*spec.Behavior]int64) bool {
	for b, lim := range limits {
		if t, ok := p.ExecTime[b]; ok && t > lim {
			return false
		}
	}
	return true
}

func less(a, b *Point) bool {
	if a.Pins != b.Pins {
		return a.Pins < b.Pins
	}
	if a.InterfaceArea != b.InterfaceArea {
		return a.InterfaceArea < b.InterfaceArea
	}
	return a.WorstExec < b.WorstExec
}

// Format renders points as an aligned table.
func Format(points []Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%5s  %-15s  %5s  %9s  %12s  %9s\n",
		"width", "protocol", "pins", "feasible", "worst clocks", "if gates")
	for _, p := range points {
		fmt.Fprintf(&b, "%5d  %-15s  %5d  %9t  %12d  %9.0f\n",
			p.Width, p.Protocol, p.Pins, p.Feasible, p.WorstExec, p.InterfaceArea)
	}
	return b.String()
}
