// Package estimate implements the specification-level performance and
// communication-rate estimators the interface-synthesis flow relies on
// (Narayan & Gajski, "Area and performance estimation from system-level
// specifications", and "Synthesis of system-level bus interfaces").
//
// Given a behavior and a candidate bus width, the estimator derives:
//
//   - the behavior's computation time in clocks (statement-level model);
//   - the per-channel traffic: how many messages the behavior transfers
//     and how many bits each message carries;
//   - the behavior's total execution time at that width, computation plus
//     communication (Fig. 7 of the DAC'94 paper);
//   - each channel's *average rate* (bits transferred divided by the
//     accessor's lifetime) and *peak rate* (rate while a transfer is in
//     progress), the quantities bus generation trades off (Eq. 1).
package estimate

import (
	"fmt"
	"sync"

	"repro/internal/spec"
)

// CostModel gives per-construct execution costs in clocks. The absolute
// values are calibrated against datapath schedules typical of the paper's
// era (one register-transfer per clock); the interface-synthesis results
// depend only on their relative magnitudes.
type CostModel struct {
	// AssignClocks is the cost of one assignment (register transfer).
	AssignClocks int64
	// OpClocks is the cost of one arithmetic/logic operation.
	OpClocks int64
	// MulClocks is the cost of multiplication and division, typically
	// multi-cycle.
	MulClocks int64
	// IndexClocks is the address-calculation cost of one array index.
	IndexClocks int64
	// BranchClocks is the cost of evaluating a branch.
	BranchClocks int64
	// LoopClocks is the per-iteration loop overhead (increment, test,
	// jump).
	LoopClocks int64
	// CallClocks is the call/return overhead of a procedure call.
	CallClocks int64
	// WaitClocks is the assumed stall of a wait statement with no
	// derivable bound.
	WaitClocks int64
	// DefaultTrips is the assumed trip count for loops whose bounds are
	// not static.
	DefaultTrips int64
}

// DefaultModel returns the cost model used throughout the reproduction.
func DefaultModel() CostModel {
	return CostModel{
		AssignClocks: 1,
		OpClocks:     1,
		MulClocks:    4,
		IndexClocks:  1,
		BranchClocks: 1,
		LoopClocks:   1,
		CallClocks:   2,
		WaitClocks:   2,
		DefaultTrips: 16,
	}
}

// Estimator estimates execution times and channel rates for the behaviors
// of a system. Remote variables (those reached over channels) must be
// registered so their accesses are costed as transfers, not as local
// references.
//
// The estimator memoizes the width-independent quantities — a behavior's
// computation time and a channel's message count and size — the first
// time they are demanded, so a width x protocol sweep walks each
// statement tree once instead of once per candidate point. The caches
// are keyed by identity and are never invalidated automatically:
// estimates must be taken on the pre-refinement specification, because
// protocol generation (protogen.Generate) rewrites behavior bodies in
// place, which would change what an uncached walk sees. An estimator
// created before refinement keeps answering with the specification-level
// numbers afterwards — exactly the paper's semantics, where Fig. 7/8
// estimates drive the refinement rather than follow it. To re-estimate a
// mutated system (or after changing Model), call Invalidate.
//
// All methods are safe for concurrent use, so one estimator can back a
// parallel sweep (explore.Sweep, busgen.Generate).
type Estimator struct {
	Model CostModel
	// remote maps a variable to the channels that carry its accesses,
	// one per direction.
	remote map[*spec.Variable]map[spec.Direction]*spec.Channel
	// byAccessor groups channels by accessing behavior.
	byAccessor map[*spec.Behavior][]*spec.Channel

	// mu guards the memoization caches below. Cache fills recompute
	// outside the lock (the walks are pure), so concurrent first
	// requests may duplicate work but never block each other on it.
	mu       sync.Mutex
	compTime map[*spec.Behavior]int64
	chanMemo map[*spec.Channel]chanStats
}

// chanStats caches a channel's width-independent traffic numbers.
type chanStats struct {
	accesses int64
	msgBits  int
}

// New returns an estimator for the given channels using the default cost
// model.
func New(channels []*spec.Channel) *Estimator {
	e := &Estimator{
		Model:      DefaultModel(),
		remote:     make(map[*spec.Variable]map[spec.Direction]*spec.Channel),
		byAccessor: make(map[*spec.Behavior][]*spec.Channel),
		compTime:   make(map[*spec.Behavior]int64),
		chanMemo:   make(map[*spec.Channel]chanStats),
	}
	for _, c := range channels {
		dirs := e.remote[c.Var]
		if dirs == nil {
			dirs = make(map[spec.Direction]*spec.Channel)
			e.remote[c.Var] = dirs
		}
		dirs[c.Dir] = c
		e.byAccessor[c.Accessor] = append(e.byAccessor[c.Accessor], c)
	}
	return e
}

// TransferClocks reports the clocks needed to move one message of msgBits
// over a bus of the given width under the given protocol:
// ceil(msgBits/width) bus words at ClocksPerWord each. This is the word
// slicing performed by the generated send/receive procedures.
func TransferClocks(msgBits, width int, p spec.Protocol) int64 {
	if msgBits <= 0 {
		return 0
	}
	if width <= 0 {
		panic(fmt.Sprintf("estimate: invalid bus width %d", width))
	}
	words := int64((msgBits + width - 1) / width)
	return int64(float64(words)*p.ClocksPerWord() + 0.5)
}

// BusRate reports the bus's sustained transfer rate in bits per clock at
// the given width (paper Eq. 2: width / (2 · clock) for a full
// handshake).
func BusRate(width int, p spec.Protocol) float64 {
	return float64(width) / p.ClocksPerWord()
}

// PeakRate reports a channel's peak transfer rate on a bus of the given
// width: while a transfer is in progress the channel owns the whole bus,
// so the peak rate equals the bus rate.
func PeakRate(width int, p spec.Protocol) float64 {
	return BusRate(width, p)
}

// Invalidate drops every memoized quantity. Call it after mutating the
// specification (e.g. protogen.Generate) or the cost model when the
// estimator should observe the new state; without it, estimates keep
// describing the specification as it was when first walked.
func (e *Estimator) Invalidate() {
	e.mu.Lock()
	e.compTime = make(map[*spec.Behavior]int64)
	e.chanMemo = make(map[*spec.Channel]chanStats)
	e.mu.Unlock()
}

// CompTime reports the behavior's computation time in clocks, excluding
// time spent transferring channel messages. Statements that access remote
// variables still pay their local costs (index arithmetic, assignment);
// the transfer cost is added separately by ExecTime. The result is
// memoized: the statement tree is walked once per behavior.
func (e *Estimator) CompTime(b *spec.Behavior) int64 {
	e.mu.Lock()
	t, ok := e.compTime[b]
	e.mu.Unlock()
	if ok {
		return t
	}
	t = e.stmtsCost(b.Body, nil)
	e.mu.Lock()
	e.compTime[b] = t
	e.mu.Unlock()
	return t
}

// Accesses reports the statically estimated number of messages the
// behavior pushes through the given channel: each textual access to the
// remote variable in the right direction, multiplied by the trip counts
// of every enclosing loop. An explicit Channel.Accesses overrides the
// estimate. The result is memoized along with the channel's message
// size.
func (e *Estimator) Accesses(c *spec.Channel) int64 {
	return e.stats(c).accesses
}

// stats returns the channel's memoized width-independent traffic
// numbers, computing them on first demand.
func (e *Estimator) stats(c *spec.Channel) chanStats {
	e.mu.Lock()
	s, ok := e.chanMemo[c]
	e.mu.Unlock()
	if ok {
		return s
	}
	s = chanStats{accesses: int64(c.Accesses), msgBits: c.MessageBits()}
	if s.accesses <= 0 {
		s.accesses = e.countAccesses(c.Accessor.Body, c)
	}
	e.mu.Lock()
	e.chanMemo[c] = s
	e.mu.Unlock()
	return s
}

func (e *Estimator) countAccesses(stmts []spec.Stmt, c *spec.Channel) int64 {
	var total int64
	for _, s := range stmts {
		switch s := s.(type) {
		case *spec.Assign:
			total += e.stmtAccessCount(s, c)
		case *spec.If:
			// assume the densest branch, like the time estimator
			best := e.countAccesses(s.Then, c)
			for _, arm := range s.Elifs {
				best = max(best, e.countAccesses(arm.Body, c))
			}
			best = max(best, e.countAccesses(s.Else, c))
			total += best + exprAccessCount(s.Cond, c)
		case *spec.For:
			total += e.tripCount(s.From, s.To) * e.countAccesses(s.Body, c)
		case *spec.While:
			total += e.Model.DefaultTrips * e.countAccesses(s.Body, c)
		case *spec.Loop:
			total += e.Model.DefaultTrips * e.countAccesses(s.Body, c)
		case *spec.Call:
			for _, a := range s.Args {
				total += exprAccessCount(a, c)
			}
			if s.Proc != nil && s.Proc.Channel == nil {
				total += e.countAccesses(s.Proc.Body, c)
			}
		}
	}
	return total
}

func (e *Estimator) stmtAccessCount(s *spec.Assign, c *spec.Channel) int64 {
	var n int64
	if c.Dir == spec.Write && spec.BaseVar(s.LHS) == c.Var {
		n++
	}
	if c.Dir == spec.Read {
		n += exprAccessCount(s.RHS, c)
	}
	// index expressions of the LHS may read the remote variable too
	if idx, ok := s.LHS.(*spec.Index); ok && c.Dir == spec.Read {
		n += exprAccessCount(idx.Index, c)
	}
	return n
}

func exprAccessCount(x spec.Expr, c *spec.Channel) int64 {
	if c.Dir != spec.Read {
		return 0
	}
	var n int64
	spec.WalkExpr(x, func(sub spec.Expr) bool {
		if r, ok := sub.(*spec.VarRef); ok && r.Var == c.Var {
			n++
		}
		return true
	})
	return n
}

// ExecTime reports the behavior's total execution time in clocks when its
// channels are implemented on a bus of the given width and protocol:
// computation time plus, for every channel it accesses, the per-message
// transfer time times the message count. This is the quantity plotted
// against bus width in Fig. 7.
//
// The split matters for sweeps: the computation term is width-independent
// and memoized, so only the CommTime term — O(channels of b), no tree
// walks — is recomputed per candidate (width, protocol) point.
func (e *Estimator) ExecTime(b *spec.Behavior, width int, p spec.Protocol) int64 {
	return e.CompTime(b) + e.CommTime(b, width, p)
}

// CommTime reports the behavior's communication time in clocks at the
// given bus width and protocol: for every channel it accesses, the
// per-message transfer time times the message count. All inputs come
// from the memoized per-channel stats, so the cost is O(channels of b).
func (e *Estimator) CommTime(b *spec.Behavior, width int, p spec.Protocol) int64 {
	var t int64
	for _, c := range e.byAccessor[b] {
		s := e.stats(c)
		t += s.accesses * TransferClocks(s.msgBits, width, p)
	}
	return t
}

// TotalBits reports the total number of bits the channel transfers over
// the accessor's lifetime.
func (e *Estimator) TotalBits(c *spec.Channel) int64 {
	s := e.stats(c)
	return s.accesses * int64(s.msgBits)
}

// AveRate reports the channel's average transfer rate in bits per clock
// at the given bus width: total bits divided by the accessor's lifetime
// at that width. An explicit Channel.LifetimeClocks overrides the
// estimated lifetime. Wider buses shorten the lifetime and therefore
// *raise* the average rate the bus must sustain, which is why feasibility
// (Eq. 1) must be re-checked at every candidate width.
func (e *Estimator) AveRate(c *spec.Channel, width int, p spec.Protocol) float64 {
	life := c.LifetimeClocks
	if life <= 0 {
		life = e.ExecTime(c.Accessor, width, p)
	}
	if life <= 0 {
		return 0
	}
	return float64(e.TotalBits(c)) / float64(life)
}

// SumAveRates reports the sum of the average rates of the given channels
// at the given width — the right-hand side of Eq. 1.
func (e *Estimator) SumAveRates(channels []*spec.Channel, width int, p spec.Protocol) float64 {
	var sum float64
	for _, c := range channels {
		sum += e.AveRate(c, width, p)
	}
	return sum
}

// ---- statement cost walk ----

// stmtsCost sums statement costs. visiting guards against recursive
// procedure calls.
func (e *Estimator) stmtsCost(stmts []spec.Stmt, visiting map[*spec.Procedure]bool) int64 {
	var total int64
	for _, s := range stmts {
		total += e.stmtCost(s, visiting)
	}
	return total
}

func (e *Estimator) stmtCost(s spec.Stmt, visiting map[*spec.Procedure]bool) int64 {
	m := e.Model
	switch s := s.(type) {
	case *spec.Assign:
		return m.AssignClocks + e.exprCost(s.RHS) + e.lvalueCost(s.LHS)
	case *spec.If:
		cost := m.BranchClocks + e.exprCost(s.Cond)
		best := e.stmtsCost(s.Then, visiting)
		for _, arm := range s.Elifs {
			cost += m.BranchClocks + e.exprCost(arm.Cond)
			best = max(best, e.stmtsCost(arm.Body, visiting))
		}
		best = max(best, e.stmtsCost(s.Else, visiting))
		return cost + best
	case *spec.For:
		trips := e.tripCount(s.From, s.To)
		return trips * (m.LoopClocks + e.stmtsCost(s.Body, visiting))
	case *spec.While:
		return m.DefaultTrips * (m.LoopClocks + e.exprCost(s.Cond) + e.stmtsCost(s.Body, visiting))
	case *spec.Loop:
		return m.DefaultTrips * (m.LoopClocks + e.stmtsCost(s.Body, visiting))
	case *spec.Wait:
		if s.HasFor {
			return s.For
		}
		return m.WaitClocks
	case *spec.Call:
		cost := m.CallClocks
		for _, a := range s.Args {
			cost += e.exprCost(a)
		}
		if s.Proc != nil && s.Proc.Channel == nil {
			if visiting == nil {
				visiting = make(map[*spec.Procedure]bool)
			}
			if !visiting[s.Proc] {
				visiting[s.Proc] = true
				cost += e.stmtsCost(s.Proc.Body, visiting)
				delete(visiting, s.Proc)
			}
		}
		return cost
	default: // Exit, Return, Null
		return 0
	}
}

func (e *Estimator) exprCost(x spec.Expr) int64 { return e.Model.ExprCost(x) }

func (e *Estimator) lvalueCost(x spec.Expr) int64 { return e.Model.LValueCost(x) }

// ExprCost reports the clocks charged for evaluating an expression:
// operator and address-calculation costs summed over the tree.
func (m CostModel) ExprCost(x spec.Expr) int64 {
	if x == nil {
		return 0
	}
	var cost int64
	spec.WalkExpr(x, func(sub spec.Expr) bool {
		switch sub := sub.(type) {
		case *spec.Binary:
			switch sub.Op {
			case spec.OpMul, spec.OpDiv, spec.OpMod:
				cost += m.MulClocks
			default:
				cost += m.OpClocks
			}
		case *spec.Unary:
			cost += m.OpClocks
		case *spec.Index:
			cost += m.IndexClocks
		}
		return true
	})
	return cost
}

// LValueCost reports the address-calculation clocks for writing through
// an lvalue (index and slice arithmetic; the store itself is charged as
// AssignClocks).
func (m CostModel) LValueCost(x spec.Expr) int64 {
	var cost int64
	switch x := x.(type) {
	case *spec.Index:
		cost += m.IndexClocks + m.ExprCost(x.Index) + m.LValueCost(x.Arr)
	case *spec.SliceExpr:
		cost += m.ExprCost(x.Hi) + m.ExprCost(x.Lo) + m.LValueCost(x.X)
	case *spec.FieldRef:
		cost += m.LValueCost(x.X)
	}
	return cost
}

// tripCount statically evaluates loop bounds; loops with non-constant
// bounds are assumed to run DefaultTrips iterations.
func (e *Estimator) tripCount(from, to spec.Expr) int64 {
	lo, ok1 := ConstInt(from)
	hi, ok2 := ConstInt(to)
	if !ok1 || !ok2 || hi < lo {
		return e.Model.DefaultTrips
	}
	return hi - lo + 1
}

// ConstInt statically evaluates an integer expression built from literals
// and arithmetic, reporting whether it is constant.
func ConstInt(x spec.Expr) (int64, bool) {
	switch x := x.(type) {
	case *spec.IntLit:
		return x.Value, true
	case *spec.Binary:
		a, ok1 := ConstInt(x.X)
		b, ok2 := ConstInt(x.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch x.Op {
		case spec.OpAdd:
			return a + b, true
		case spec.OpSub:
			return a - b, true
		case spec.OpMul:
			return a * b, true
		case spec.OpDiv:
			if b == 0 {
				return 0, false
			}
			return a / b, true
		case spec.OpMod:
			if b == 0 {
				return 0, false
			}
			return a % b, true
		}
	case *spec.Unary:
		if x.Op == spec.OpNeg {
			if v, ok := ConstInt(x.X); ok {
				return -v, true
			}
		}
	case *spec.Conv:
		return ConstInt(x.X)
	}
	return 0, false
}
