package estimate

import (
	"testing"

	"repro/internal/spec"
)

func TestVariableAreaScalarVsArray(t *testing.T) {
	m := DefaultAreaModel()
	reg := m.VariableArea(spec.NewVar("r", spec.BitVector(16)))
	if reg.Registers != 16*m.RegBitGates || reg.Memory != 0 {
		t.Fatalf("register area = %+v", reg)
	}
	mem := m.VariableArea(spec.NewVar("m", spec.Array(128, spec.BitVector(16))))
	if mem.Memory != 128*16*m.MemBitGates || mem.Registers != 0 {
		t.Fatalf("memory area = %+v", mem)
	}
	// RAM bits are denser than register bits.
	if mem.Memory/float64(128*16) >= reg.Registers/16 {
		t.Error("RAM bit not denser than register bit")
	}
}

func TestBehaviorAreaFunctionalUnitSharing(t *testing.T) {
	m := DefaultAreaModel()
	b := spec.NewBehavior("B")
	x := b.AddVar("x", spec.Integer)
	y := b.AddVar("y", spec.Integer)
	// Two adds share one adder; the report must charge one 32-bit
	// adder, not two.
	b.Body = []spec.Stmt{
		spec.AssignVar(spec.Ref(x), spec.Add(spec.Ref(x), spec.Ref(y))),
		spec.AssignVar(spec.Ref(y), spec.Add(spec.Ref(y), spec.Ref(x))),
	}
	r := m.BehaviorArea(b)
	if r.FUs != 32*m.AddBitGates {
		t.Fatalf("FU area = %g, want one 32-bit adder (%g)", r.FUs, 32*m.AddBitGates)
	}
	if r.Control != 2*m.StateGates {
		t.Fatalf("control area = %g, want 2 states", r.Control)
	}
}

func TestBehaviorAreaMultiplierQuadratic(t *testing.T) {
	m := DefaultAreaModel()
	mk := func(width int) float64 {
		b := spec.NewBehavior("B")
		x := b.AddVar("x", spec.BitVector(width))
		b.Body = []spec.Stmt{
			spec.AssignVar(spec.Ref(x), spec.Mul(spec.Ref(x), spec.Ref(x))),
		}
		return m.BehaviorArea(b).FUs
	}
	if mk(16) <= 3*mk(8) {
		t.Errorf("multiplier area not superlinear: 8-bit %g vs 16-bit %g", mk(8), mk(16))
	}
}

func TestModuleAndSystemArea(t *testing.T) {
	m := DefaultAreaModel()
	sys := spec.NewSystem("t")
	m1 := sys.AddModule("m1")
	m2 := sys.AddModule("m2")
	b := m1.AddBehavior(spec.NewBehavior("B"))
	l := b.AddVar("l", spec.BitVector(8))
	v := m2.AddVariable(spec.NewVar("V", spec.BitVector(8)))
	b.Body = []spec.Stmt{spec.AssignVar(spec.Ref(v), spec.Ref(l))}
	reports, total := m.SystemArea(sys)
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	if total != reports["m1"].Total()+reports["m2"].Total() {
		t.Error("total does not sum module reports (no buses)")
	}
	if reports["m2"].Registers != 8*m.RegBitGates {
		t.Errorf("m2 storage = %+v", reports["m2"])
	}
}

func TestBusAreaGrowsWithWidthAndModules(t *testing.T) {
	m := DefaultAreaModel()
	sys := spec.NewSystem("t")
	m1 := sys.AddModule("m1")
	m2 := sys.AddModule("m2")
	b := m1.AddBehavior(spec.NewBehavior("B"))
	v := m2.AddVariable(spec.NewVar("V", spec.BitVector(16)))
	ch := &spec.Channel{Name: "c", Accessor: b, Var: v, Dir: spec.Write}
	sys.AddChannel(ch)
	narrow := &spec.Bus{Name: "N", Channels: []*spec.Channel{ch}, Width: 4, Protocol: spec.FullHandshake}
	wide := &spec.Bus{Name: "W", Channels: []*spec.Channel{ch}, Width: 16, Protocol: spec.FullHandshake}
	if m.BusArea(wide) <= m.BusArea(narrow) {
		t.Error("bus area not increasing in width")
	}
}

func TestGeneratedProcedureAreaCountedAsBusIf(t *testing.T) {
	m := DefaultAreaModel()
	b := spec.NewBehavior("B")
	ch := &spec.Channel{Name: "c"}
	send := &spec.Procedure{Name: "SendC", Channel: ch, Body: []spec.Stmt{
		&spec.Null{}, &spec.Null{}, &spec.Null{},
	}}
	b.AddProc(send)
	b.Body = []spec.Stmt{&spec.Null{}}
	r := m.BehaviorArea(b)
	if r.BusIf != 3*m.StateGates {
		t.Fatalf("BusIf = %g, want 3 states", r.BusIf)
	}
	if r.Control != 1*m.StateGates {
		t.Fatalf("Control = %g, want 1 state (behavior body only)", r.Control)
	}
}

// The interface-synthesis trade-off the estimator exposes: a hand-built
// transfer procedure with more word states (narrow bus) costs more
// interface FSM area, while more bus lines (wide bus) cost more driver
// area.
func TestAreaPerformanceTradeoffVisible(t *testing.T) {
	m := DefaultAreaModel()
	mkXfer := func(words int) float64 {
		b := spec.NewBehavior("B")
		ch := &spec.Channel{Name: "c"}
		body := make([]spec.Stmt, words)
		for i := range body {
			body[i] = &spec.Null{}
		}
		b.AddProc(&spec.Procedure{Name: "SendC", Channel: ch, Body: body})
		b.Body = []spec.Stmt{&spec.Null{}}
		return m.BehaviorArea(b).BusIf
	}
	if mkXfer(11) <= mkXfer(1) {
		t.Error("narrow-bus transfer FSM not larger")
	}

	sys := spec.NewSystem("t")
	m1 := sys.AddModule("m1")
	m2 := sys.AddModule("m2")
	beh := m1.AddBehavior(spec.NewBehavior("B"))
	v := m2.AddVariable(spec.NewVar("V", spec.BitVector(16)))
	ch := &spec.Channel{Name: "c", Accessor: beh, Var: v, Dir: spec.Write}
	wide := &spec.Bus{Name: "W", Channels: []*spec.Channel{ch}, Width: 22, Protocol: spec.FullHandshake}
	narrow := &spec.Bus{Name: "N", Channels: []*spec.Channel{ch}, Width: 2, Protocol: spec.FullHandshake}
	if m.BusArea(wide) <= m.BusArea(narrow) {
		t.Error("wide-bus driver area not larger")
	}
}
