package estimate

import (
	"sync"
	"testing"

	"repro/internal/spec"
)

// memoSystem builds a small two-module system with one remote array and
// a loop-heavy accessor, returning the estimator and its pieces.
func memoSystem() (*Estimator, *spec.Behavior, *spec.Channel) {
	sys := spec.NewSystem("memo")
	m1 := sys.AddModule("m1")
	m2 := sys.AddModule("m2")
	b := m1.AddBehavior(spec.NewBehavior("B"))
	mem := m2.AddVariable(spec.NewVar("MEM", spec.Array(32, spec.BitVector(16))))
	i := b.AddVar("i", spec.Integer)
	b.Body = []spec.Stmt{
		&spec.For{Var: i, From: spec.Int(0), To: spec.Int(31), Body: []spec.Stmt{
			spec.AssignVar(spec.At(spec.Ref(mem), spec.Ref(i)), spec.ToVec(spec.Ref(i), 16)),
		}},
	}
	ch := &spec.Channel{Name: "ch", Accessor: b, Var: mem, Dir: spec.Write}
	return New([]*spec.Channel{ch}), b, ch
}

func TestMemoizedValuesStable(t *testing.T) {
	e, b, ch := memoSystem()
	comp := e.CompTime(b)
	acc := e.Accesses(ch)
	bits := e.TotalBits(ch)
	for k := 0; k < 3; k++ {
		if got := e.CompTime(b); got != comp {
			t.Fatalf("CompTime drifted: %d vs %d", got, comp)
		}
		if got := e.Accesses(ch); got != acc {
			t.Fatalf("Accesses drifted: %d vs %d", got, acc)
		}
		if got := e.TotalBits(ch); got != bits {
			t.Fatalf("TotalBits drifted: %d vs %d", got, bits)
		}
	}
	if acc != 32 {
		t.Fatalf("Accesses = %d, want 32", acc)
	}
	if bits != 32*int64(ch.MessageBits()) {
		t.Fatalf("TotalBits = %d", bits)
	}
}

func TestExecTimeIsCompPlusComm(t *testing.T) {
	e, b, _ := memoSystem()
	for _, p := range []spec.Protocol{spec.FullHandshake, spec.HalfHandshake, spec.FixedDelay} {
		for w := 1; w <= 24; w++ {
			want := e.CompTime(b) + e.CommTime(b, w, p)
			if got := e.ExecTime(b, w, p); got != want {
				t.Fatalf("ExecTime(%d, %s) = %d, want comp+comm = %d", w, p, got, want)
			}
		}
	}
}

func TestMemoKeepsPreMutationEstimates(t *testing.T) {
	e, b, ch := memoSystem()
	comp := e.CompTime(b)
	acc := e.Accesses(ch)
	// Mutate the body the way protocol generation would: the cached
	// estimates must keep describing the original specification until
	// an explicit invalidation.
	b.Body = nil
	if got := e.CompTime(b); got != comp {
		t.Fatalf("cached CompTime changed after mutation: %d vs %d", got, comp)
	}
	if got := e.Accesses(ch); got != acc {
		t.Fatalf("cached Accesses changed after mutation: %d vs %d", got, acc)
	}
	e.Invalidate()
	if got := e.CompTime(b); got != 0 {
		t.Fatalf("post-invalidate CompTime = %d, want 0 for empty body", got)
	}
	if got := e.Accesses(ch); got != 0 {
		t.Fatalf("post-invalidate Accesses = %d, want 0 for empty body", got)
	}
}

// TestEstimatorConcurrentUse hammers one estimator from many
// goroutines; run with -race (CI does) to prove the memoization locking
// is sound, and check every goroutine observed identical values.
func TestEstimatorConcurrentUse(t *testing.T) {
	e, b, ch := memoSystem()
	const workers = 16
	results := make([][3]int64, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			results[w] = [3]int64{
				e.CompTime(b),
				e.Accesses(ch),
				e.ExecTime(b, 1+w%8, spec.FullHandshake) - e.CommTime(b, 1+w%8, spec.FullHandshake),
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if results[w] != results[0] {
			t.Fatalf("goroutine %d saw %v, goroutine 0 saw %v", w, results[w], results[0])
		}
	}
}
