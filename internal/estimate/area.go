package estimate

import (
	"repro/internal/spec"
)

// Area estimation from system-level specifications — the other half of
// the paper's reference [10] (Narayan & Gajski, UC Irvine TR 92-).
// Areas are reported in gate equivalents using a datapath/control/
// storage decomposition typical of behavioral estimators of the era:
//
//   - storage: registers for scalar variables, denser RAM for arrays;
//   - functional units: one unit per operation class, sized by the
//     widest operand it serves (operations of one class share a unit,
//     the sharing optimism early estimators used);
//   - interconnect: a mux input per textual operand reference;
//   - control: a state per statement, with state register and decode;
//   - bus interface: drivers per bus line plus the handshake FSM of
//     each generated send/receive procedure.
//
// The absolute gate counts are calibration constants; the estimator's
// value for interface synthesis is relative: it quantifies how the bus
// interface area grows with bus width while performance improves — the
// pins/performance/area trade-off bus generation navigates.

// AreaModel gives per-element gate costs.
type AreaModel struct {
	// RegBitGates is the cost of one register bit.
	RegBitGates float64
	// MemBitGates is the cost of one RAM bit.
	MemBitGates float64
	// AddBitGates is the per-bit cost of an adder/subtractor.
	AddBitGates float64
	// MulBitGates is the per-bit² cost of a multiplier.
	MulBitGates float64
	// LogicBitGates is the per-bit cost of a logic/compare unit.
	LogicBitGates float64
	// MuxInputGates is the cost of one mux input bit.
	MuxInputGates float64
	// StateGates is the control cost per state (decode + next-state).
	StateGates float64
	// DriverGates is the cost of one bus line driver.
	DriverGates float64
}

// DefaultAreaModel returns the calibration used by the reproduction.
func DefaultAreaModel() AreaModel {
	return AreaModel{
		RegBitGates:   8,
		MemBitGates:   1.5,
		AddBitGates:   12,
		MulBitGates:   6,
		LogicBitGates: 4,
		MuxInputGates: 3,
		StateGates:    20,
		DriverGates:   4,
	}
}

// AreaReport decomposes an area estimate.
type AreaReport struct {
	Registers float64 // scalar storage
	Memory    float64 // array storage
	FUs       float64 // functional units
	Mux       float64 // interconnect muxing
	Control   float64 // controller
	BusIf     float64 // bus drivers + transfer FSMs
}

// Total sums the report.
func (r AreaReport) Total() float64 {
	return r.Registers + r.Memory + r.FUs + r.Mux + r.Control + r.BusIf
}

func (r *AreaReport) add(o AreaReport) {
	r.Registers += o.Registers
	r.Memory += o.Memory
	r.FUs += o.FUs
	r.Mux += o.Mux
	r.Control += o.Control
	r.BusIf += o.BusIf
}

// opClass buckets operators onto shared functional units.
type opClass int

const (
	opClassAdd opClass = iota
	opClassMul
	opClassLogic
	opClassCmp
)

func classOf(op spec.Op) (opClass, bool) {
	switch op {
	case spec.OpAdd, spec.OpSub:
		return opClassAdd, true
	case spec.OpMul, spec.OpDiv, spec.OpMod:
		return opClassMul, true
	case spec.OpAnd, spec.OpOr, spec.OpXor, spec.OpNot, spec.OpShl, spec.OpShr, spec.OpConcat:
		return opClassLogic, true
	case spec.OpEq, spec.OpNeq, spec.OpLt, spec.OpLe, spec.OpGt, spec.OpGe:
		return opClassCmp, true
	}
	return 0, false
}

// VariableArea estimates the storage area of one variable.
func (m AreaModel) VariableArea(v *spec.Variable) AreaReport {
	bits := float64(v.Type.BitWidth())
	if _, isArr := spec.IsArray(v.Type); isArr {
		return AreaReport{Memory: bits * m.MemBitGates}
	}
	return AreaReport{Registers: bits * m.RegBitGates}
}

// BehaviorArea estimates the datapath + control area of one behavior,
// including its procedures. Storage for behavior-local variables is
// included; module variables are counted by ModuleArea.
func (m AreaModel) BehaviorArea(b *spec.Behavior) AreaReport {
	var r AreaReport
	for _, v := range b.Variables {
		r.add(m.VariableArea(v))
	}
	stmts := append([]spec.Stmt{}, b.Body...)
	for _, p := range b.Procedures {
		stmts = append(stmts, p.Body...)
		for _, l := range p.Locals {
			r.add(m.VariableArea(l))
		}
		for _, prm := range p.Params {
			r.add(m.VariableArea(prm.Var))
		}
	}

	// Functional units: widest operand per class.
	fuWidth := map[opClass]int{}
	var states int
	var muxInputs float64
	spec.WalkStmts(stmts, func(s spec.Stmt) bool {
		states++
		return true
	})
	spec.WalkStmtExprs(stmts, func(e spec.Expr) bool {
		switch e := e.(type) {
		case *spec.Binary:
			if cl, ok := classOf(e.Op); ok {
				w := max(e.X.Type().BitWidth(), e.Y.Type().BitWidth())
				if w > fuWidth[cl] {
					fuWidth[cl] = w
				}
			}
		case *spec.Unary:
			if cl, ok := classOf(e.Op); ok {
				if w := e.X.Type().BitWidth(); w > fuWidth[cl] {
					fuWidth[cl] = w
				}
			}
		case *spec.VarRef:
			muxInputs += float64(e.Var.Type.BitWidth())
		}
		return true
	})
	for cl, w := range fuWidth {
		fw := float64(w)
		switch cl {
		case opClassAdd:
			r.FUs += fw * m.AddBitGates
		case opClassMul:
			r.FUs += fw * fw * m.MulBitGates
		case opClassLogic:
			r.FUs += fw * m.LogicBitGates
		case opClassCmp:
			r.FUs += fw * m.LogicBitGates
		}
	}
	r.Mux = muxInputs * m.MuxInputGates
	r.Control = float64(states) * m.StateGates
	// Generated transfer procedures are bus-interface logic: count
	// their control as BusIf rather than behavior control.
	var busIfStates int
	for _, p := range b.Procedures {
		if p.Channel == nil {
			continue
		}
		spec.WalkStmts(p.Body, func(spec.Stmt) bool { busIfStates++; return true })
	}
	shift := float64(busIfStates) * m.StateGates
	r.Control -= shift
	r.BusIf += shift
	return r
}

// ModuleArea estimates a module: its variables plus its behaviors.
func (m AreaModel) ModuleArea(mod *spec.Module) AreaReport {
	var r AreaReport
	for _, v := range mod.Variables {
		r.add(m.VariableArea(v))
	}
	for _, b := range mod.Behaviors {
		r.add(m.BehaviorArea(b))
	}
	return r
}

// BusArea estimates the wire-driver area of an implemented bus: every
// module touching the bus drives/receives all its lines.
func (m AreaModel) BusArea(bus *spec.Bus) float64 {
	modules := map[*spec.Module]bool{}
	for _, c := range bus.Channels {
		modules[c.Accessor.Owner] = true
		modules[c.Var.Owner] = true
	}
	return float64(bus.TotalLines()) * m.DriverGates * float64(len(modules))
}

// interfaceIDBits is the ID-line count of an n-channel bus.
func interfaceIDBits(n int) int {
	if n <= 1 {
		return 0
	}
	return spec.AddrBits(n)
}

// InterfaceArea estimates a candidate bus interface without running
// protocol generation: drivers for every line on both sides, plus one
// word-handshake FSM state set per bus word of each channel's message.
// It prices explore's sweep points and the repair loop's
// protocol-selection escalations from the same model.
func InterfaceArea(channels []*spec.Channel, w int, p spec.Protocol, m AreaModel) float64 {
	lines := w + p.ControlLines() + interfaceIDBits(len(channels))
	area := float64(lines) * m.DriverGates * 2
	for _, c := range channels {
		words := (c.MessageBits() + w - 1) / w
		// ~5 FSM states per word on each side of the transfer.
		area += float64(words) * 10 * m.StateGates
	}
	return area
}

// HardeningArea estimates what the robust machinery adds on top of
// InterfaceArea: drivers for the extra wires (RST on the full
// handshake, PAR/NACK with parity), retry/timeout control states per
// word on each side, a timeout counter and retry counter per channel
// side, and the parity XOR trees. Zero when robust is false.
func HardeningArea(channels []*spec.Channel, w int, p spec.Protocol, robust, parity bool, m AreaModel) float64 {
	if !robust {
		return 0
	}
	extra := 0
	if p == spec.FullHandshake {
		extra++ // RST
	}
	if parity {
		extra += 2 // PAR, NACK
	}
	area := float64(extra) * m.DriverGates * 2
	idb := interfaceIDBits(len(channels))
	for _, c := range channels {
		words := (c.MessageBits() + w - 1) / w
		// ~4 extra states per word side: bounded-wait expiry branches,
		// NACK paths, resync handling.
		area += float64(words) * 8 * m.StateGates
		// Timeout (log2 T ~ 5 bits) and retry (2 bits) counters per
		// side.
		area += 2 * 7 * m.RegBitGates
		if parity {
			// An XOR tree over DATA+ID on each side.
			area += 2 * float64(w+idb-1) * m.LogicBitGates
		}
	}
	return area
}

// SystemArea estimates every module of a system plus its buses,
// returning per-module reports and the grand total.
func (m AreaModel) SystemArea(sys *spec.System) (map[string]AreaReport, float64) {
	out := make(map[string]AreaReport, len(sys.Modules))
	var total float64
	for _, mod := range sys.Modules {
		r := m.ModuleArea(mod)
		out[mod.Name] = r
		total += r.Total()
	}
	for _, bus := range sys.Buses {
		total += m.BusArea(bus)
	}
	return out, total
}
