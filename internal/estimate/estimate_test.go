package estimate

import (
	"testing"
	"testing/quick"

	"repro/internal/spec"
)

func TestTransferClocks(t *testing.T) {
	cases := []struct {
		msg, width int
		p          spec.Protocol
		want       int64
	}{
		// Paper Fig. 4: a 16-bit message over an 8-bit bus takes two
		// transfers; at 2 clocks each under the full handshake = 4.
		{16, 8, spec.FullHandshake, 4},
		// FLC message of 23 bits (16 data + 7 addr):
		{23, 23, spec.FullHandshake, 2},
		{23, 24, spec.FullHandshake, 2}, // widths past 23 cannot help
		{23, 1, spec.FullHandshake, 46},
		{23, 8, spec.FullHandshake, 6},
		{23, 8, spec.FixedDelay, 3},
		{23, 8, spec.HalfHandshake, 5}, // 3 words * 1.5 rounded
		{0, 8, spec.FullHandshake, 0},
	}
	for _, c := range cases {
		if got := TransferClocks(c.msg, c.width, c.p); got != c.want {
			t.Errorf("TransferClocks(%d,%d,%s) = %d, want %d", c.msg, c.width, c.p, got, c.want)
		}
	}
}

func TestTransferClocksInvalidWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for width 0")
		}
	}()
	TransferClocks(8, 0, spec.FullHandshake)
}

func TestBusRateEq2(t *testing.T) {
	// Eq. 2: BusRate = width / 2 clocks for the full handshake.
	if got := BusRate(20, spec.FullHandshake); got != 10 {
		t.Errorf("BusRate(20) = %v, want 10 (design A of Fig. 8)", got)
	}
	if got := BusRate(16, spec.FullHandshake); got != 8 {
		t.Errorf("BusRate(16) = %v, want 8 (design C of Fig. 8)", got)
	}
	if got := BusRate(8, spec.FixedDelay); got != 8 {
		t.Errorf("fixed-delay BusRate(8) = %v", got)
	}
}

// buildLoopAccessor returns a behavior that accesses a remote 128-entry
// 16-bit array once per iteration of a 0..127 loop — the shape of the
// FLC's EVAL_R3/trru0 channel.
func buildLoopAccessor(dir spec.Direction) (*spec.Behavior, *spec.Channel) {
	sys := spec.NewSystem("t")
	chip1 := sys.AddModule("chip1")
	chip2 := sys.AddModule("chip2")
	b := chip1.AddBehavior(spec.NewBehavior("EVAL"))
	arr := chip2.AddVariable(spec.NewVar("trru", spec.Array(128, spec.BitVector(16))))
	i := b.AddVar("i", spec.Integer)
	acc := b.AddVar("acc", spec.BitVector(16))
	var body []spec.Stmt
	if dir == spec.Write {
		body = []spec.Stmt{spec.AssignVar(spec.At(spec.Ref(arr), spec.Ref(i)), spec.Ref(acc))}
	} else {
		body = []spec.Stmt{spec.AssignVar(spec.Ref(acc), spec.At(spec.Ref(arr), spec.Ref(i)))}
	}
	b.Body = []spec.Stmt{&spec.For{Var: i, From: spec.Int(0), To: spec.Int(127), Body: body}}
	c := &spec.Channel{Name: "ch", Accessor: b, Var: arr, Dir: dir}
	sys.AddChannel(c)
	return b, c
}

func TestAccessesCountsLoopTrips(t *testing.T) {
	for _, dir := range []spec.Direction{spec.Read, spec.Write} {
		b, c := buildLoopAccessor(dir)
		e := New([]*spec.Channel{c})
		if got := e.Accesses(c); got != 128 {
			t.Errorf("dir=%s Accesses = %d, want 128", dir, got)
		}
		_ = b
	}
}

func TestAccessesExplicitOverride(t *testing.T) {
	_, c := buildLoopAccessor(spec.Write)
	c.Accesses = 5
	e := New([]*spec.Channel{c})
	if got := e.Accesses(c); got != 5 {
		t.Errorf("explicit Accesses = %d", got)
	}
}

func TestChannelMessageGeometryFLC(t *testing.T) {
	_, c := buildLoopAccessor(spec.Write)
	if c.MessageBits() != 23 {
		t.Fatalf("FLC-shaped channel message = %d bits, want 23 (16 data + 7 addr)", c.MessageBits())
	}
	e := New([]*spec.Channel{c})
	if got := e.TotalBits(c); got != 128*23 {
		t.Errorf("TotalBits = %d, want %d", got, 128*23)
	}
}

func TestExecTimeDecreasesWithWidthAndPlateaus(t *testing.T) {
	// The Fig. 7 property: execution time is non-increasing in bus
	// width and constant past the message size (23 bits).
	_, c := buildLoopAccessor(spec.Write)
	e := New([]*spec.Channel{c})
	prev := e.ExecTime(c.Accessor, 1, spec.FullHandshake)
	for w := 2; w <= 32; w++ {
		cur := e.ExecTime(c.Accessor, w, spec.FullHandshake)
		if cur > prev {
			t.Fatalf("ExecTime increased from width %d (%d) to %d (%d)", w-1, prev, w, cur)
		}
		prev = cur
	}
	at23 := e.ExecTime(c.Accessor, 23, spec.FullHandshake)
	at24 := e.ExecTime(c.Accessor, 24, spec.FullHandshake)
	at32 := e.ExecTime(c.Accessor, 32, spec.FullHandshake)
	if at23 != at24 || at24 != at32 {
		t.Fatalf("no plateau past 23 pins: %d %d %d", at23, at24, at32)
	}
}

func TestExecTimeContainsCompAndComm(t *testing.T) {
	_, c := buildLoopAccessor(spec.Write)
	e := New([]*spec.Channel{c})
	comp := e.CompTime(c.Accessor)
	if comp <= 0 {
		t.Fatal("CompTime not positive")
	}
	w := 8
	comm := int64(128) * TransferClocks(23, w, spec.FullHandshake)
	if got := e.ExecTime(c.Accessor, w, spec.FullHandshake); got != comp+comm {
		t.Errorf("ExecTime = %d, want comp %d + comm %d", got, comp, comm)
	}
}

func TestAveRateRisesWithWidth(t *testing.T) {
	// Wider bus -> shorter lifetime -> higher average rate demanded.
	_, c := buildLoopAccessor(spec.Write)
	e := New([]*spec.Channel{c})
	prev := e.AveRate(c, 1, spec.FullHandshake)
	for w := 2; w <= 23; w++ {
		cur := e.AveRate(c, w, spec.FullHandshake)
		if cur < prev {
			t.Fatalf("AveRate fell from width %d (%f) to %d (%f)", w-1, prev, w, cur)
		}
		prev = cur
	}
}

func TestAveRateExplicitLifetime(t *testing.T) {
	_, c := buildLoopAccessor(spec.Write)
	c.Accesses = 100
	c.LifetimeClocks = 4600 // 100 msgs * 23 bits / 4600 clocks = 0.5 b/clk
	e := New([]*spec.Channel{c})
	if got := e.AveRate(c, 8, spec.FullHandshake); got != 0.5 {
		t.Errorf("AveRate with explicit lifetime = %v, want 0.5", got)
	}
}

func TestSumAveRates(t *testing.T) {
	_, c1 := buildLoopAccessor(spec.Write)
	_, c2 := buildLoopAccessor(spec.Read)
	c1.Accesses, c1.LifetimeClocks = 10, 230 // 1 b/clk
	c2.Accesses, c2.LifetimeClocks = 10, 115 // 2 b/clk
	e := New([]*spec.Channel{c1, c2})
	if got := e.SumAveRates([]*spec.Channel{c1, c2}, 8, spec.FullHandshake); got != 3 {
		t.Errorf("SumAveRates = %v, want 3", got)
	}
}

func TestIfTakesDensestBranch(t *testing.T) {
	sys := spec.NewSystem("t")
	m1 := sys.AddModule("m1")
	m2 := sys.AddModule("m2")
	b := m1.AddBehavior(spec.NewBehavior("B"))
	x := m2.AddVariable(spec.NewVar("x", spec.BitVector(8)))
	local := b.AddVar("l", spec.BitVector(8))
	b.Body = []spec.Stmt{
		&spec.If{
			Cond: spec.True,
			Then: []spec.Stmt{spec.AssignVar(spec.Ref(x), spec.Ref(local))},
			Else: []spec.Stmt{
				spec.AssignVar(spec.Ref(x), spec.Ref(local)),
				spec.AssignVar(spec.Ref(x), spec.Ref(local)),
			},
		},
	}
	c := &spec.Channel{Name: "c", Accessor: b, Var: x, Dir: spec.Write}
	e := New([]*spec.Channel{c})
	if got := e.Accesses(c); got != 2 {
		t.Errorf("Accesses through if = %d, want 2 (densest branch)", got)
	}
}

func TestConstInt(t *testing.T) {
	cases := []struct {
		x    spec.Expr
		want int64
		ok   bool
	}{
		{spec.Int(5), 5, true},
		{spec.Add(spec.Int(2), spec.Int(3)), 5, true},
		{spec.Mul(spec.Int(8), spec.Sub(spec.Int(3), spec.Int(1))), 16, true},
		{spec.Neg(spec.Int(4)), -4, true},
		{spec.Bin(spec.OpDiv, spec.Int(7), spec.Int(2)), 3, true},
		{spec.Bin(spec.OpDiv, spec.Int(7), spec.Int(0)), 0, false},
		{spec.Ref(spec.NewVar("v", spec.Integer)), 0, false},
	}
	for _, c := range cases {
		got, ok := ConstInt(c.x)
		if got != c.want || ok != c.ok {
			t.Errorf("ConstInt(%s) = %d,%t want %d,%t", c.x, got, ok, c.want, c.ok)
		}
	}
}

func TestNonConstantLoopUsesDefaultTrips(t *testing.T) {
	sys := spec.NewSystem("t")
	m1 := sys.AddModule("m1")
	m2 := sys.AddModule("m2")
	b := m1.AddBehavior(spec.NewBehavior("B"))
	x := m2.AddVariable(spec.NewVar("x", spec.BitVector(8)))
	n := b.AddVar("n", spec.Integer)
	i := b.AddVar("i", spec.Integer)
	l := b.AddVar("l", spec.BitVector(8))
	b.Body = []spec.Stmt{
		&spec.For{Var: i, From: spec.Int(0), To: spec.Ref(n), Body: []spec.Stmt{
			spec.AssignVar(spec.Ref(x), spec.Ref(l)),
		}},
	}
	c := &spec.Channel{Name: "c", Accessor: b, Var: x, Dir: spec.Write}
	e := New([]*spec.Channel{c})
	if got := e.Accesses(c); got != e.Model.DefaultTrips {
		t.Errorf("Accesses = %d, want DefaultTrips %d", got, e.Model.DefaultTrips)
	}
}

func TestCallIntoHelperProcedureCounted(t *testing.T) {
	sys := spec.NewSystem("t")
	m1 := sys.AddModule("m1")
	m2 := sys.AddModule("m2")
	b := m1.AddBehavior(spec.NewBehavior("B"))
	x := m2.AddVariable(spec.NewVar("x", spec.BitVector(8)))
	l := b.AddVar("l", spec.BitVector(8))
	helper := b.AddProc(&spec.Procedure{
		Name: "helper",
		Body: []spec.Stmt{spec.AssignVar(spec.Ref(x), spec.Ref(l))},
	})
	b.Body = []spec.Stmt{spec.CallProc(helper), spec.CallProc(helper)}
	c := &spec.Channel{Name: "c", Accessor: b, Var: x, Dir: spec.Write}
	e := New([]*spec.Channel{c})
	if got := e.Accesses(c); got != 2 {
		t.Errorf("Accesses through helper calls = %d, want 2", got)
	}
	if e.CompTime(b) <= 2*e.Model.CallClocks {
		t.Error("CompTime did not include helper body")
	}
}

func TestRecursiveProcedureDoesNotHang(t *testing.T) {
	b := spec.NewBehavior("B")
	rec := &spec.Procedure{Name: "rec"}
	rec.Body = []spec.Stmt{spec.CallProc(rec)}
	b.AddProc(rec)
	b.Body = []spec.Stmt{spec.CallProc(rec)}
	e := New(nil)
	if got := e.CompTime(b); got <= 0 {
		t.Errorf("recursive CompTime = %d", got)
	}
}

// Property: TransferClocks is non-increasing in width and exactly
// words*2 for the full handshake.
func TestQuickTransferClocksMonotone(t *testing.T) {
	f := func(msgSeed, wSeed uint8) bool {
		msg := int(msgSeed)%100 + 1
		w := int(wSeed)%40 + 1
		tc := TransferClocks(msg, w, spec.FullHandshake)
		words := int64((msg + w - 1) / w)
		if tc != 2*words {
			return false
		}
		if w > 1 && TransferClocks(msg, w-1, spec.FullHandshake) < tc {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestWaitCosts(t *testing.T) {
	b := spec.NewBehavior("B")
	b.Body = []spec.Stmt{spec.WaitFor(17)}
	e := New(nil)
	if got := e.CompTime(b); got != 17 {
		t.Errorf("WaitFor cost = %d, want 17", got)
	}
	// CompTime is memoized per behavior; mutating the body requires an
	// explicit cache invalidation before re-estimating.
	b.Body = []spec.Stmt{spec.WaitOn(spec.NewSignal("s", spec.Bit))}
	e.Invalidate()
	if got := e.CompTime(b); got != e.Model.WaitClocks {
		t.Errorf("WaitOn cost = %d", got)
	}
}

func TestExprCostModel(t *testing.T) {
	m := DefaultModel()
	v := spec.NewVar("v", spec.Integer)
	cases := []struct {
		x    spec.Expr
		want int64
	}{
		{spec.Int(1), 0},
		{spec.Ref(v), 0},
		{spec.Add(spec.Ref(v), spec.Int(1)), m.OpClocks},
		{spec.Mul(spec.Ref(v), spec.Ref(v)), m.MulClocks},
		{spec.Add(spec.Mul(spec.Ref(v), spec.Int(2)), spec.Int(3)), m.OpClocks + m.MulClocks},
		{spec.Not(spec.True), m.OpClocks},
		{spec.At(spec.Ref(spec.NewVar("a", spec.Array(4, spec.Integer))), spec.Ref(v)), m.IndexClocks},
	}
	for _, c := range cases {
		if got := m.ExprCost(c.x); got != c.want {
			t.Errorf("ExprCost(%s) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestLValueCostModel(t *testing.T) {
	m := DefaultModel()
	arr := spec.NewVar("a", spec.Array(4, spec.BitVector(8)))
	i := spec.NewVar("i", spec.Integer)
	// a(i+1): index cost + add cost
	lv := spec.At(spec.Ref(arr), spec.Add(spec.Ref(i), spec.Int(1)))
	if got := m.LValueCost(lv); got != m.IndexClocks+m.OpClocks {
		t.Errorf("LValueCost = %d", got)
	}
	// plain variable: free
	if got := m.LValueCost(spec.Ref(i)); got != 0 {
		t.Errorf("plain lvalue cost = %d", got)
	}
	sl := spec.SliceBits(spec.Ref(spec.NewVar("v", spec.BitVector(8))), 3, 0)
	if got := m.LValueCost(sl); got != 0 {
		t.Errorf("constant slice cost = %d", got)
	}
}

func TestPeakRateEqualsBusRate(t *testing.T) {
	for _, p := range []spec.Protocol{spec.FullHandshake, spec.HalfHandshake, spec.FixedDelay} {
		for _, w := range []int{1, 8, 23} {
			if PeakRate(w, p) != BusRate(w, p) {
				t.Fatalf("peak != bus rate at %d/%s", w, p)
			}
		}
	}
}
