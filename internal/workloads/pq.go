package workloads

import "repro/internal/spec"

// PQ builds the walkthrough system of the paper's Fig. 3: behaviors P
// and Q on one component; X (16-bit) and MEM (64 x 16-bit) on another;
// channels CH0 (P writes X), CH1 (P reads X), CH2 (P writes MEM), CH3
// (Q writes MEM), pre-grouped into the 8-bit bus B.
//
// Q is staggered behind P with a timed wait because the DAC'94 flow
// leaves bus arbitration to future work: two accessors must not hold
// concurrent transactions on the shared bus.
func PQ() (*spec.System, *spec.Bus) {
	sys := spec.NewSystem("PQ")
	comp1 := sys.AddModule("comp1")
	comp2 := sys.AddModule("comp2")

	p := comp1.AddBehavior(spec.NewBehavior("P"))
	q := comp1.AddBehavior(spec.NewBehavior("Q"))
	x := comp2.AddVariable(spec.NewVar("X", spec.BitVector(16)))
	mem := comp2.AddVariable(spec.NewVar("MEM", spec.Array(64, spec.BitVector(16))))

	ad := p.AddVar("AD", spec.Integer)
	count := q.AddVar("COUNT", spec.BitVector(16))

	// P: AD := 5; X <= 32; MEM(AD) := X + 7;
	p.Body = []spec.Stmt{
		spec.AssignVar(spec.Ref(ad), spec.Int(5)),
		spec.AssignVar(spec.Ref(x), spec.ToVec(spec.Int(32), 16)),
		spec.AssignVar(spec.At(spec.Ref(mem), spec.Ref(ad)),
			spec.Add(spec.Ref(x), spec.ToVec(spec.Int(7), 16))),
	}
	// Q: COUNT := 9; MEM(60) := COUNT;
	q.Body = []spec.Stmt{
		spec.WaitFor(500),
		spec.AssignVar(spec.Ref(count), spec.ToVec(spec.Int(9), 16)),
		spec.AssignVar(spec.At(spec.Ref(mem), spec.Int(60)), spec.Ref(count)),
	}

	ch0 := sys.AddChannel(&spec.Channel{Name: "CH0", Accessor: p, Var: x, Dir: spec.Write})
	ch1 := sys.AddChannel(&spec.Channel{Name: "CH1", Accessor: p, Var: x, Dir: spec.Read})
	ch2 := sys.AddChannel(&spec.Channel{Name: "CH2", Accessor: p, Var: mem, Dir: spec.Write})
	ch3 := sys.AddChannel(&spec.Channel{Name: "CH3", Accessor: q, Var: mem, Dir: spec.Write})

	bus := &spec.Bus{Name: "B", Channels: []*spec.Channel{ch0, ch1, ch2, ch3}, Width: 8}
	sys.Buses = append(sys.Buses, bus)
	return sys, bus
}

// PQSolo strips the staggered Q accessor (and its CH3 channel) from the
// PQ workload. P's three transactions keep the multi-channel dispatch,
// retransmission and RST machinery, but the 500-clock stagger counter —
// which multiplies every retry-timer phase into a distinct model-checker
// state — is gone, so hardened variants are provable exhaustively. The
// model checker and the repair loop use it whenever they need a
// complete verdict rather than a bounded sweep.
func PQSolo() (*spec.System, *spec.Bus) {
	sys, bus := PQ()
	for _, m := range sys.Modules {
		kept := m.Behaviors[:0]
		for _, b := range m.Behaviors {
			if b.Name != "Q" {
				kept = append(kept, b)
			}
		}
		m.Behaviors = kept
	}
	drop := func(chans []*spec.Channel) []*spec.Channel {
		kept := chans[:0]
		for _, c := range chans {
			if c.Name != "CH3" {
				kept = append(kept, c)
			}
		}
		return kept
	}
	sys.Channels = drop(sys.Channels)
	bus.Channels = drop(bus.Channels)
	return sys, bus
}
