package workloads

import (
	"fmt"

	"repro/internal/spec"
)

// Ethernet models the Ethernet network coprocessor of the paper's
// evaluation: a receive/transmit pipeline partitioned into a protocol
// chip and a buffer-memory chip:
//
//	chip1: RX_FRAME (deserializes frames from a synthetic line model),
//	       CRC_CHECK (verifies the frame checksum),
//	       ADDR_FILTER (accepts frames addressed to the station),
//	       TX_FRAME (echoes accepted frames back to the line)
//	chip2: FRAMEBUF (512 x 8-bit frame buffer), RXLEN, STATION_ADDR,
//	       STATS (4 counters: frames seen, CRC errors, filtered,
//	       transmitted)
//
// The line model is deterministic: `frames` frames of 32 payload bytes
// are generated, every third frame carries a corrupted checksum, and
// every fourth is addressed elsewhere. Accepted frames land in
// FRAMEBUF; TX_FRAME accumulates an output checksum so the final state
// is a strong functional signature.
func Ethernet(frames int) *spec.System {
	if frames < 1 || frames > 16 {
		panic(fmt.Sprintf("workloads: frames out of range: %d", frames))
	}
	const payload = 32
	sys := spec.NewSystem("EthernetCoprocessor")
	chip1 := sys.AddModule("chip1")
	chip2 := sys.AddModule("chip2")

	framebuf := chip2.AddVariable(spec.NewVar("FRAMEBUF", spec.Array(512, spec.BitVector(8))))
	rxlen := chip2.AddVariable(spec.NewVar("RXLEN", spec.Integer))
	station := chip2.AddVariable(spec.NewVar("STATION_ADDR", spec.Integer))
	station.Init = spec.Int(0x5A)
	stats := chip2.AddVariable(spec.NewVar("STATS", spec.Array(4, spec.Integer)))

	// chip1 working state.
	rxbuf := chip1.AddVariable(spec.NewVar("rxbuf", spec.Array(payload+2, spec.BitVector(8))))
	txsum := chip1.AddVariable(spec.NewVar("txsum", spec.Integer))

	rxReady := chip1.AddVariable(spec.NewSignal("rx_ready", spec.Bit))
	crcOK := chip1.AddVariable(spec.NewSignal("crc_ok", spec.Bit))
	crcBad := chip1.AddVariable(spec.NewSignal("crc_bad", spec.Bit))
	accept := chip1.AddVariable(spec.NewSignal("accept", spec.Bit))
	reject := chip1.AddVariable(spec.NewSignal("reject", spec.Bit))
	txDone := chip1.AddVariable(spec.NewSignal("tx_done", spec.Bit))

	one := spec.VecString("1")
	zero := spec.VecString("0")

	// RX_FRAME: synthesizes and deserializes each frame into rxbuf:
	// byte 0 = destination address, bytes 1..32 = payload, byte 33 =
	// checksum (sum of payload mod 256; corrupted on every 3rd frame).
	rx := chip1.AddBehavior(spec.NewBehavior("RX_FRAME"))
	{
		f := rx.AddVar("f", spec.Integer)
		i := rx.AddVar("i", spec.Integer)
		sum := rx.AddVar("sum", spec.Integer)
		by := rx.AddVar("by", spec.Integer)
		dst := rx.AddVar("dst", spec.Integer)
		rx.Body = []spec.Stmt{
			&spec.For{Var: f, From: spec.Int(1), To: spec.Int(int64(frames)), Body: []spec.Stmt{
				// destination: every 4th frame goes elsewhere.
				&spec.If{
					Cond: spec.Eq(spec.Bin(spec.OpMod, spec.Ref(f), spec.Int(4)), spec.Int(0)),
					Then: []spec.Stmt{spec.AssignVar(spec.Ref(dst), spec.Int(0x11))},
					Else: []spec.Stmt{spec.AssignVar(spec.Ref(dst), spec.Int(0x5A))},
				},
				spec.AssignVar(spec.At(spec.Ref(rxbuf), spec.Int(0)), spec.ToVec(spec.Ref(dst), 8)),
				spec.AssignVar(spec.Ref(sum), spec.Int(0)),
				&spec.For{Var: i, From: spec.Int(1), To: spec.Int(payload), Body: []spec.Stmt{
					spec.AssignVar(spec.Ref(by),
						spec.Bin(spec.OpMod, spec.Add(spec.Mul(spec.Ref(i), spec.Int(5)), spec.Ref(f)), spec.Int(256))),
					spec.AssignVar(spec.At(spec.Ref(rxbuf), spec.Ref(i)), spec.ToVec(spec.Ref(by), 8)),
					spec.AssignVar(spec.Ref(sum), spec.Bin(spec.OpMod, spec.Add(spec.Ref(sum), spec.Ref(by)), spec.Int(256))),
				}},
				// checksum, corrupted on every 3rd frame
				&spec.If{
					Cond: spec.Eq(spec.Bin(spec.OpMod, spec.Ref(f), spec.Int(3)), spec.Int(0)),
					Then: []spec.Stmt{spec.AssignVar(spec.Ref(sum),
						spec.Bin(spec.OpMod, spec.Add(spec.Ref(sum), spec.Int(1)), spec.Int(256)))},
				},
				spec.AssignVar(spec.At(spec.Ref(rxbuf), spec.Int(payload+1)), spec.ToVec(spec.Ref(sum), 8)),
				// count the frame and hand off to CRC_CHECK
				spec.AssignVar(spec.At(spec.Ref(stats), spec.Int(0)),
					spec.Add(spec.At(spec.Ref(stats), spec.Int(0)), spec.Int(1))),
				spec.AssignSig(spec.Ref(rxReady), one),
				spec.WaitUntil(spec.Eq(spec.Ref(txDone), one)),
				spec.AssignSig(spec.Ref(rxReady), zero),
				spec.WaitUntil(spec.Eq(spec.Ref(txDone), zero)),
			}},
		}
	}

	// CRC_CHECK: recomputes the payload checksum and raises crc_ok or
	// crc_bad (counting errors in the remote STATS array).
	crc := chip1.AddBehavior(spec.NewBehavior("CRC_CHECK"))
	{
		f := crc.AddVar("f", spec.Integer)
		i := crc.AddVar("i", spec.Integer)
		sum := crc.AddVar("sum", spec.Integer)
		crc.Body = []spec.Stmt{
			&spec.For{Var: f, From: spec.Int(1), To: spec.Int(int64(frames)), Body: []spec.Stmt{
				spec.WaitUntil(spec.Eq(spec.Ref(rxReady), one)),
				spec.AssignVar(spec.Ref(sum), spec.Int(0)),
				&spec.For{Var: i, From: spec.Int(1), To: spec.Int(payload), Body: []spec.Stmt{
					spec.AssignVar(spec.Ref(sum),
						spec.Bin(spec.OpMod,
							spec.Add(spec.Ref(sum), spec.ToInt(spec.At(spec.Ref(rxbuf), spec.Ref(i)))),
							spec.Int(256))),
				}},
				&spec.If{
					Cond: spec.Eq(spec.Ref(sum), spec.ToInt(spec.At(spec.Ref(rxbuf), spec.Int(payload+1)))),
					Then: []spec.Stmt{spec.AssignSig(spec.Ref(crcOK), one)},
					Else: []spec.Stmt{
						spec.AssignVar(spec.At(spec.Ref(stats), spec.Int(1)),
							spec.Add(spec.At(spec.Ref(stats), spec.Int(1)), spec.Int(1))),
						spec.AssignSig(spec.Ref(crcBad), one),
					},
				},
				spec.WaitUntil(spec.Eq(spec.Ref(rxReady), zero)),
				spec.AssignSig(spec.Ref(crcOK), zero),
				spec.AssignSig(spec.Ref(crcBad), zero),
			}},
		}
	}

	// ADDR_FILTER: on a good CRC, accepts frames addressed to
	// STATION_ADDR (a remote register read) and DMAs them into the
	// remote frame buffer.
	filter := chip1.AddBehavior(spec.NewBehavior("ADDR_FILTER"))
	{
		f := filter.AddVar("f", spec.Integer)
		i := filter.AddVar("i", spec.Integer)
		off := filter.AddVar("off", spec.Integer)
		filter.Body = []spec.Stmt{
			&spec.For{Var: f, From: spec.Int(1), To: spec.Int(int64(frames)), Body: []spec.Stmt{
				spec.WaitUntil(spec.LogicalOr(
					spec.Eq(spec.Ref(crcOK), one), spec.Eq(spec.Ref(crcBad), one))),
				&spec.If{
					Cond: spec.LogicalAnd(
						spec.Eq(spec.Ref(crcOK), one),
						spec.Eq(spec.ToInt(spec.At(spec.Ref(rxbuf), spec.Int(0))), spec.Ref(station))),
					Then: []spec.Stmt{
						spec.AssignVar(spec.Ref(off),
							spec.Bin(spec.OpMod, spec.Mul(spec.Sub(spec.Ref(f), spec.Int(1)), spec.Int(payload)), spec.Int(512-payload))),
						&spec.For{Var: i, From: spec.Int(0), To: spec.Int(payload - 1), Body: []spec.Stmt{
							spec.AssignVar(spec.At(spec.Ref(framebuf), spec.Add(spec.Ref(off), spec.Ref(i))),
								spec.At(spec.Ref(rxbuf), spec.Add(spec.Ref(i), spec.Int(1)))),
						}},
						spec.AssignVar(spec.Ref(rxlen), spec.Int(payload)),
						spec.AssignSig(spec.Ref(accept), one),
					},
					Else: []spec.Stmt{
						spec.AssignVar(spec.At(spec.Ref(stats), spec.Int(2)),
							spec.Add(spec.At(spec.Ref(stats), spec.Int(2)), spec.Int(1))),
						spec.AssignSig(spec.Ref(reject), one),
					},
				},
				spec.WaitUntil(spec.LogicalAnd(
					spec.Eq(spec.Ref(crcOK), zero), spec.Eq(spec.Ref(crcBad), zero))),
				spec.AssignSig(spec.Ref(accept), zero),
				spec.AssignSig(spec.Ref(reject), zero),
			}},
		}
	}

	// TX_FRAME: echoes accepted frames from the remote buffer back to
	// the line (accumulating txsum) and completes the per-frame cycle.
	tx := chip1.AddBehavior(spec.NewBehavior("TX_FRAME"))
	{
		f := tx.AddVar("f", spec.Integer)
		i := tx.AddVar("i", spec.Integer)
		off := tx.AddVar("off", spec.Integer)
		tx.Body = []spec.Stmt{
			&spec.For{Var: f, From: spec.Int(1), To: spec.Int(int64(frames)), Body: []spec.Stmt{
				spec.WaitUntil(spec.LogicalOr(
					spec.Eq(spec.Ref(accept), one), spec.Eq(spec.Ref(reject), one))),
				&spec.If{
					Cond: spec.Eq(spec.Ref(accept), one),
					Then: []spec.Stmt{
						spec.AssignVar(spec.Ref(off),
							spec.Bin(spec.OpMod, spec.Mul(spec.Sub(spec.Ref(f), spec.Int(1)), spec.Int(payload)), spec.Int(512-payload))),
						&spec.For{Var: i, From: spec.Int(0), To: spec.Int(payload - 1), Body: []spec.Stmt{
							spec.AssignVar(spec.Ref(txsum),
								spec.Bin(spec.OpMod,
									spec.Add(spec.Ref(txsum), spec.ToInt(spec.At(spec.Ref(framebuf), spec.Add(spec.Ref(off), spec.Ref(i))))),
									spec.Int(65536))),
						}},
						spec.AssignVar(spec.At(spec.Ref(stats), spec.Int(3)),
							spec.Add(spec.At(spec.Ref(stats), spec.Int(3)), spec.Int(1))),
					},
				},
				spec.AssignSig(spec.Ref(txDone), one),
				spec.WaitUntil(spec.LogicalAnd(
					spec.Eq(spec.Ref(accept), zero), spec.Eq(spec.Ref(reject), zero))),
				spec.AssignSig(spec.Ref(txDone), zero),
			}},
		}
	}

	_ = rx
	_ = crc
	_ = filter
	_ = tx
	return sys
}
