package workloads

import (
	"fmt"

	"repro/internal/spec"
)

// Mesh builds a large synthetic workload for exercising the exploration
// engine far beyond the paper's FLC: an n x n grid of tiles, each a
// module holding one compute behavior and one 64-word x 16-bit memory.
// Every tile behavior reads its west neighbor's memory, runs a local
// smoothing computation, and writes its east neighbor's memory (rows
// wrap around), so the system has n*n behaviors and 2*n*n channels —
// the kind of candidate space industrial buses present (thousands of
// (width, protocol) points once swept), versus the FLC's 24.
//
// The bodies carry nested loops and multi-operation expressions so the
// statement-level estimator has real trees to walk; all loop bounds are
// static, making traffic and trip counts deterministic. The mesh is an
// estimation/exploration workload: it is valid under Validate and flows
// through estimate, explore and busgen; it is not wired for simulation
// (no handshake signals between tiles).
func Mesh(n int) *spec.System {
	if n < 1 || n > 16 {
		panic(fmt.Sprintf("workloads: mesh size out of range: %d", n))
	}
	const words = 64
	sys := spec.NewSystem(fmt.Sprintf("Mesh%dx%d", n, n))

	mems := make([][]*spec.Variable, n)
	tiles := make([][]*spec.Module, n)
	for r := 0; r < n; r++ {
		mems[r] = make([]*spec.Variable, n)
		tiles[r] = make([]*spec.Module, n)
		for c := 0; c < n; c++ {
			m := sys.AddModule(fmt.Sprintf("tile%d_%d", r, c))
			tiles[r][c] = m
			mems[r][c] = m.AddVariable(spec.NewVar(
				fmt.Sprintf("M%d_%d", r, c), spec.Array(words, spec.BitVector(16))))
		}
	}

	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			west := mems[r][(c+n-1)%n]
			east := mems[r][(c+1)%n]
			b := tiles[r][c].AddBehavior(spec.NewBehavior(fmt.Sprintf("T%d_%d", r, c)))
			i := b.AddVar("i", spec.Integer)
			j := b.AddVar("j", spec.Integer)
			acc := b.AddVar("acc", spec.Integer)
			b.Body = []spec.Stmt{
				spec.AssignVar(spec.Ref(acc), spec.Int(int64(r*n+c))),
				// Gather: fold the west neighbor's memory into acc.
				&spec.For{Var: i, From: spec.Int(0), To: spec.Int(words - 1), Body: []spec.Stmt{
					spec.AssignVar(spec.Ref(acc),
						spec.Bin(spec.OpMod,
							spec.Add(spec.Ref(acc),
								spec.Mul(spec.ToInt(spec.At(spec.Ref(west), spec.Ref(i))), spec.Int(3))),
							spec.Int(65536))),
				}},
				// Local smoothing: a compute-only inner loop nest.
				&spec.For{Var: i, From: spec.Int(0), To: spec.Int(7), Body: []spec.Stmt{
					&spec.For{Var: j, From: spec.Int(0), To: spec.Int(7), Body: []spec.Stmt{
						spec.AssignVar(spec.Ref(acc),
							spec.Bin(spec.OpMod,
								spec.Add(spec.Mul(spec.Ref(acc), spec.Int(5)),
									spec.Add(spec.Mul(spec.Ref(i), spec.Int(8)), spec.Ref(j))),
								spec.Int(65536))),
					}},
				}},
				// Scatter: write the smoothed stream into the east
				// neighbor's memory.
				&spec.For{Var: i, From: spec.Int(0), To: spec.Int(words - 1), Body: []spec.Stmt{
					spec.AssignVar(spec.At(spec.Ref(east), spec.Ref(i)),
						spec.ToVec(spec.Bin(spec.OpMod, spec.Add(spec.Ref(acc), spec.Ref(i)), spec.Int(65536)), 16)),
				}},
			}
			sys.AddChannel(&spec.Channel{
				Name: fmt.Sprintf("rd%d_%d", r, c), Accessor: b, Var: west, Dir: spec.Read,
			})
			sys.AddChannel(&spec.Channel{
				Name: fmt.Sprintf("wr%d_%d", r, c), Accessor: b, Var: east, Dir: spec.Write,
			})
		}
	}
	return sys
}
