// Package workloads provides the remaining systems of the paper's
// evaluation (Section 5 applied bus generation to "an answering machine,
// an Ethernet network coprocessor and a fuzzy logic controller") plus
// the Fig. 3 walkthrough system. Each builder returns a partitioned,
// validated system whose cross-module accesses exercise the interface-
// synthesis flow end to end; the FLC itself lives in internal/flc.
package workloads

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/spec"
)

// AnsweringMachine models a telephone answering machine partitioned
// into a controller chip and a voice-memory chip:
//
//	chip1: RING_DETECT, CONTROLLER, PLAYBACK, RECORD
//	chip2: GREETING (256 x 8-bit samples), MSGS (1024 x 8-bit samples),
//	       MSG_COUNT
//
// A run answers `Rings` incoming calls: ring detection raises the
// answer flag, the controller starts playback of the greeting, then
// records a caller message into the message memory and bumps the
// message counter. The control flags are single-writer bit signals.
func AnsweringMachine(rings int) *spec.System {
	if rings < 1 || rings > 8 {
		panic(fmt.Sprintf("workloads: rings out of range: %d", rings))
	}
	sys := spec.NewSystem("AnsweringMachine")
	chip1 := sys.AddModule("chip1")
	chip2 := sys.AddModule("chip2")

	greeting := chip2.AddVariable(spec.NewVar("GREETING", spec.Array(256, spec.BitVector(8))))
	msgs := chip2.AddVariable(spec.NewVar("MSGS", spec.Array(1024, spec.BitVector(8))))
	msgCount := chip2.AddVariable(spec.NewVar("MSG_COUNT", spec.Integer))

	line := chip1.AddVariable(spec.NewVar("line_samples", spec.Array(128, spec.BitVector(8))))
	speaker := chip1.AddVariable(spec.NewVar("speaker_sum", spec.Integer))

	ringSig := chip1.AddVariable(spec.NewSignal("ring", spec.Bit))
	answered := chip1.AddVariable(spec.NewSignal("answered", spec.Bit))
	playDone := chip1.AddVariable(spec.NewSignal("play_done", spec.Bit))
	recDone := chip1.AddVariable(spec.NewSignal("rec_done", spec.Bit))
	callSeq := chip1.AddVariable(spec.NewSignal("call_seq", spec.IntegerType{Width: 32}))

	one := spec.VecString("1")
	zero := spec.VecString("0")

	// RING_DETECT: pulses ring for each incoming call, waiting for the
	// previous call to complete.
	ringDetect := chip1.AddBehavior(spec.NewBehavior("RING_DETECT"))
	{
		c := ringDetect.AddVar("c", spec.Integer)
		ringDetect.Body = []spec.Stmt{
			&spec.For{Var: c, From: spec.Int(1), To: spec.Int(int64(rings)), Body: []spec.Stmt{
				spec.AssignSig(spec.Ref(ringSig), one),
				spec.WaitUntil(spec.Eq(spec.Ref(answered), one)),
				spec.AssignSig(spec.Ref(ringSig), zero),
				spec.WaitUntil(spec.Eq(spec.Ref(answered), zero)),
			}},
		}
	}

	// CONTROLLER: sequences answer -> playback -> record per call.
	controller := chip1.AddBehavior(spec.NewBehavior("CONTROLLER"))
	{
		c := controller.AddVar("c", spec.Integer)
		controller.Body = []spec.Stmt{
			&spec.For{Var: c, From: spec.Int(1), To: spec.Int(int64(rings)), Body: []spec.Stmt{
				spec.WaitUntil(spec.Eq(spec.Ref(ringSig), one)),
				spec.AssignSig(spec.Ref(callSeq), spec.Ref(c)),
				spec.AssignSig(spec.Ref(answered), one),
				spec.WaitUntil(spec.Eq(spec.Ref(recDone), one)),
				spec.AssignSig(spec.Ref(answered), zero),
				spec.WaitUntil(spec.Eq(spec.Ref(recDone), zero)),
			}},
		}
	}

	// PLAYBACK: plays the greeting from the memory chip (reads
	// GREETING over a channel) into the speaker accumulator.
	playback := chip1.AddBehavior(spec.NewBehavior("PLAYBACK"))
	{
		c := playback.AddVar("c", spec.Integer)
		i := playback.AddVar("i", spec.Integer)
		playback.Body = []spec.Stmt{
			&spec.For{Var: c, From: spec.Int(1), To: spec.Int(int64(rings)), Body: []spec.Stmt{
				spec.WaitUntil(spec.Eq(spec.Ref(answered), one)),
				&spec.For{Var: i, From: spec.Int(0), To: spec.Int(255), Body: []spec.Stmt{
					spec.AssignVar(spec.Ref(speaker),
						spec.Add(spec.Ref(speaker), spec.ToInt(spec.At(spec.Ref(greeting), spec.Ref(i))))),
				}},
				spec.AssignSig(spec.Ref(playDone), one),
				spec.WaitUntil(spec.Eq(spec.Ref(answered), zero)),
				spec.AssignSig(spec.Ref(playDone), zero),
			}},
		}
	}

	// RECORD: after playback, records 128 line samples into the
	// message memory (writes MSGS over a channel) and bumps MSG_COUNT.
	record := chip1.AddBehavior(spec.NewBehavior("RECORD"))
	{
		c := record.AddVar("c", spec.Integer)
		i := record.AddVar("i", spec.Integer)
		slot := record.AddVar("slot", spec.Integer)
		record.Body = []spec.Stmt{
			&spec.For{Var: c, From: spec.Int(1), To: spec.Int(int64(rings)), Body: []spec.Stmt{
				spec.WaitUntil(spec.Eq(spec.Ref(playDone), one)),
				spec.AssignVar(spec.Ref(slot), spec.Mul(spec.Sub(spec.Ref(c), spec.Int(1)), spec.Int(128))),
				&spec.For{Var: i, From: spec.Int(0), To: spec.Int(127), Body: []spec.Stmt{
					// synth line audio: sample = (i*3 + call) mod 256
					spec.AssignVar(spec.At(spec.Ref(line), spec.Ref(i)),
						spec.ToVec(spec.Bin(spec.OpMod,
							spec.Add(spec.Mul(spec.Ref(i), spec.Int(3)), spec.Ref(c)), spec.Int(256)), 8)),
					spec.AssignVar(spec.At(spec.Ref(msgs), spec.Add(spec.Ref(slot), spec.Ref(i))),
						spec.At(spec.Ref(line), spec.Ref(i))),
				}},
				spec.AssignVar(spec.Ref(msgCount), spec.Add(spec.Ref(msgCount), spec.Int(1))),
				spec.AssignSig(spec.Ref(recDone), one),
				spec.WaitUntil(spec.Eq(spec.Ref(playDone), zero)),
				spec.AssignSig(spec.Ref(recDone), zero),
			}},
		}
	}

	// Pre-load the greeting deterministically (as if INSTALL had run).
	greeting.InitArray = greetingSamples()

	_ = ringDetect
	_ = controller
	return sys
}

// greetingSamples returns the deterministic greeting recording.
func greetingSamples() []bits.Vector {
	out := make([]bits.Vector, 256)
	for i := range out {
		out[i] = bits.FromUint(uint64((i*7+13)%256), 8)
	}
	return out
}
