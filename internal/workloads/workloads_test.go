package workloads

import (
	"testing"

	"repro/internal/busgen"
	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/explore"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/spec"
)

func runSim(t *testing.T, sys *spec.System) *sim.Result {
	t.Helper()
	s, err := sim.New(sys, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAnsweringMachineUnrefined(t *testing.T) {
	sys := AnsweringMachine(3)
	res := runSim(t, sys)
	if got := res.Final("chip2", "MSG_COUNT").(sim.IntVal); got.V != 3 {
		t.Fatalf("MSG_COUNT = %d, want 3", got.V)
	}
	// speaker accumulated 3 plays of the greeting: 3 * sum(samples).
	sum := 0
	for i := 0; i < 256; i++ {
		sum += (i*7 + 13) % 256
	}
	if got := res.Final("chip1", "speaker_sum").(sim.IntVal); got.V != int64(3*sum) {
		t.Fatalf("speaker_sum = %d, want %d", got.V, 3*sum)
	}
	// first recorded sample of call 2: (0*3+2) mod 256 = 2 at slot 128.
	msgs := res.Final("chip2", "MSGS").(sim.ArrayVal)
	if msgs.Elems[128].(sim.VecVal).V.Uint64() != 2 {
		t.Fatalf("MSGS[128] = %s", msgs.Elems[128])
	}
}

func TestAnsweringMachineChannels(t *testing.T) {
	sys := AnsweringMachine(2)
	created, err := partition.DeriveChannels(sys)
	if err != nil {
		t.Fatal(err)
	}
	// PLAYBACK reads GREETING; RECORD writes MSGS, reads+writes
	// MSG_COUNT.
	if len(created) != 4 {
		t.Fatalf("derived %d channels: %v", len(created), created)
	}
}

func TestAnsweringMachineSynthesizedEquivalence(t *testing.T) {
	base := runSim(t, AnsweringMachine(2))

	sys := AnsweringMachine(2)
	if _, err := core.Synthesize(sys, core.Options{Grouping: partition.SingleBus}); err != nil {
		t.Fatal(err)
	}
	refined := runSim(t, sys)
	for _, key := range []string{"chip2.MSG_COUNT", "chip2.MSGS", "chip1.speaker_sum"} {
		if !base.Finals[key].Equal(refined.Finals[key]) {
			t.Errorf("%s differs after synthesis", key)
		}
	}
	if refined.Clocks <= base.Clocks {
		t.Error("refined answering machine not slower than abstract one")
	}
}

func TestEthernetUnrefined(t *testing.T) {
	sys := Ethernet(8)
	res := runSim(t, sys)
	stats := res.Final("chip2", "STATS").(sim.ArrayVal)
	get := func(i int) int64 { return stats.Elems[i].(sim.IntVal).V }
	if get(0) != 8 {
		t.Fatalf("frames seen = %d, want 8", get(0))
	}
	// Frames 3 and 6 have corrupted CRC -> 2 errors.
	if get(1) != 2 {
		t.Fatalf("crc errors = %d, want 2", get(1))
	}
	// The reject counter covers every non-accepted frame: the two
	// CRC-bad frames (3, 6) plus the two addressed elsewhere (4, 8).
	if get(2) != 4 {
		t.Fatalf("rejected = %d, want 4", get(2))
	}
	// Transmitted: 8 - 2 (crc) - 2 (filtered) = 4.
	if get(3) != 4 {
		t.Fatalf("transmitted = %d, want 4", get(3))
	}
	if res.Final("chip1", "txsum").(sim.IntVal).V == 0 {
		t.Fatal("txsum = 0, expected accumulated payload")
	}
}

func TestEthernetChannels(t *testing.T) {
	sys := Ethernet(4)
	created, err := partition.DeriveChannels(sys)
	if err != nil {
		t.Fatal(err)
	}
	// RX writes STATS, reads STATS; CRC reads+writes STATS; FILTER
	// reads STATION_ADDR, writes FRAMEBUF, writes RXLEN, reads+writes
	// STATS; TX reads FRAMEBUF, reads+writes STATS.
	if len(created) < 8 {
		t.Fatalf("derived %d channels", len(created))
	}
	if errs := sys.Validate(); len(errs) != 0 {
		t.Fatal(errs[0])
	}
}

func TestEthernetSynthesizedEquivalence(t *testing.T) {
	base := runSim(t, Ethernet(4))

	sys := Ethernet(4)
	if _, err := core.Synthesize(sys, core.Options{Grouping: partition.SingleBus}); err != nil {
		t.Fatal(err)
	}
	refined := runSim(t, sys)
	for _, key := range []string{"chip2.STATS", "chip2.FRAMEBUF", "chip1.txsum"} {
		if !base.Finals[key].Equal(refined.Finals[key]) {
			t.Errorf("%s differs after synthesis", key)
		}
	}
}

func TestPQBuilds(t *testing.T) {
	sys, bus := PQ()
	if errs := sys.Validate(); len(errs) != 0 {
		t.Fatal(errs[0])
	}
	if len(bus.Channels) != 4 || bus.Width != 8 {
		t.Fatalf("bus = %v", bus)
	}
	res := runSim(t, sys)
	mem := res.Final("comp2", "MEM").(sim.ArrayVal)
	if mem.Elems[5].(sim.VecVal).V.Uint64() != 39 {
		t.Fatalf("MEM(5) = %s", mem.Elems[5])
	}
}

func TestMeshBuilds(t *testing.T) {
	sys := Mesh(4)
	if errs := sys.Validate(); len(errs) != 0 {
		t.Fatal(errs[0])
	}
	if got := len(sys.Modules); got != 16 {
		t.Fatalf("modules = %d, want 16", got)
	}
	if got := len(sys.Channels); got != 32 {
		t.Fatalf("channels = %d, want 2 per tile = 32", got)
	}
	est := estimate.New(sys.Channels)
	for _, c := range sys.Channels {
		// 16-bit data + 6-bit address, 64 messages per channel.
		if c.MessageBits() != 22 {
			t.Fatalf("%s: message bits = %d, want 22", c.Name, c.MessageBits())
		}
		if got := est.Accesses(c); got != 64 {
			t.Fatalf("%s: accesses = %d, want 64", c.Name, got)
		}
	}
	for _, b := range sys.Behaviors() {
		if est.CompTime(b) <= 0 {
			t.Fatalf("%s: degenerate computation time", b.Name)
		}
	}
}

func TestMeshExploresAndGenerates(t *testing.T) {
	sys := Mesh(3)
	est := estimate.New(sys.Channels)
	sp, err := explore.Sweep(sys.Channels, est, explore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Points) != 44 { // widths 1..22 x 2 protocols
		t.Fatalf("points = %d, want 44", len(sp.Points))
	}
	if len(sp.Pareto()) == 0 {
		t.Fatal("empty Pareto front")
	}
	if _, err := busgen.Generate(sys.Channels, est, busgen.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestBadArgsPanic(t *testing.T) {
	for name, f := range map[string]func(){
		"answering": func() { AnsweringMachine(0) },
		"ethernet":  func() { Ethernet(100) },
		"mesh":      func() { Mesh(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}
