package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		const n = 1000
		counts := make([]int32, n)
		For(n, workers, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForDeterministicSlots(t *testing.T) {
	const n = 512
	serial := make([]int, n)
	For(n, 1, func(i int) { serial[i] = i * i })
	parallel := make([]int, n)
	For(n, 8, func(i int) { parallel[i] = i * i })
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("slot %d: serial %d parallel %d", i, serial[i], parallel[i])
		}
	}
}

func TestForEmptyAndTiny(t *testing.T) {
	For(0, 4, func(int) { t.Fatal("body ran for n=0") })
	ran := false
	For(1, 4, func(i int) { ran = true })
	if !ran {
		t.Fatal("body skipped for n=1")
	}
}
