package par

import (
	"context"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		const n = 1000
		counts := make([]int32, n)
		For(n, workers, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForDeterministicSlots(t *testing.T) {
	const n = 512
	serial := make([]int, n)
	For(n, 1, func(i int) { serial[i] = i * i })
	parallel := make([]int, n)
	For(n, 8, func(i int) { parallel[i] = i * i })
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("slot %d: serial %d parallel %d", i, serial[i], parallel[i])
		}
	}
}

func TestForEmptyAndTiny(t *testing.T) {
	For(0, 4, func(int) { t.Fatal("body ran for n=0") })
	ran := false
	For(1, 4, func(i int) { ran = true })
	if !ran {
		t.Fatal("body skipped for n=1")
	}
}

// TestForChunksCoversRangeExactly pins the chunk contract: blocks are
// disjoint, ascending within a block, and together cover [0, n) exactly
// — including the ragged final block when chunk does not divide n.
func TestForChunksCoversRangeExactly(t *testing.T) {
	cases := []struct {
		name           string
		n, workers     int
		chunk          int
		wantChunkCalls int // -1: don't check
	}{
		{"exact-multiple", 1000, 4, 100, 10},
		{"ragged-tail", 1001, 4, 100, 11},
		{"chunk-of-one", 17, 4, 1, 17},
		{"chunk-larger-than-n", 5, 4, 100, 1},
		{"chunk-equals-n", 64, 4, 64, 1},
		{"auto-chunk", 10000, 4, 0, -1},
		{"auto-chunk-tiny-n", 3, 8, 0, -1},
		{"zero-workers", 1000, 0, 128, -1},
		{"negative-workers", 257, -9, 64, -1},
		{"single-worker", 500, 1, 33, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			counts := make([]int32, tc.n)
			var calls atomic.Int32
			ForChunks(tc.n, tc.workers, tc.chunk, func(lo, hi int) {
				calls.Add(1)
				if lo < 0 || hi > tc.n || lo >= hi {
					t.Errorf("bad chunk [%d, %d) for n=%d", lo, hi, tc.n)
					return
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&counts[i], 1)
				}
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("index %d covered %d times", i, c)
				}
			}
			if tc.wantChunkCalls >= 0 && int(calls.Load()) != tc.wantChunkCalls {
				t.Fatalf("fn called %d times, want %d", calls.Load(), tc.wantChunkCalls)
			}
		})
	}
}

// TestForChunksGuards: degenerate inputs are empty ranges or clamped,
// exactly like For — the call must return without invoking fn for
// n <= 0 and must not hang for any workers/chunk combination.
func TestForChunksGuards(t *testing.T) {
	ForChunks(0, 4, 16, func(lo, hi int) { t.Fatal("fn ran for n=0") })
	ForChunks(-3, 0, 0, func(lo, hi int) { t.Fatal("fn ran for n<0") })
	ForChunks(-1, -1, -1, func(lo, hi int) { t.Fatal("fn ran for n<0") })
	ran := 0
	ForChunks(1, 1, -5, func(lo, hi int) { ran += hi - lo })
	if ran != 1 {
		t.Fatalf("negative chunk: covered %d indices, want 1", ran)
	}
}

// TestForChunksDeterministicSlots: per-chunk slot writes keyed by chunk
// index are identical at any worker count.
func TestForChunksDeterministicSlots(t *testing.T) {
	const n, chunk = 1000, 64
	shard := func(workers int) []int {
		out := make([]int, (n+chunk-1)/chunk)
		ForChunks(n, workers, chunk, func(lo, hi int) {
			sum := 0
			for i := lo; i < hi; i++ {
				sum += i * i
			}
			out[lo/chunk] = sum
		})
		return out
	}
	a, b := shard(1), shard(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chunk %d: serial %d parallel %d", i, a[i], b[i])
		}
	}
}

// TestForGuards pins the degenerate-input contract: negative and zero
// ranges are empty (never hang, never call fn), and any worker count —
// zero, negative, or absurdly large — still visits every index exactly
// once. For must return (not deadlock) in every case; the test itself
// hanging is the failure mode for a regression here.
func TestForGuards(t *testing.T) {
	cases := []struct {
		name    string
		n       int
		workers int
		want    int // total fn invocations
	}{
		{"negative-n", -5, 4, 0},
		{"negative-n-negative-workers", -1, -1, 0},
		{"zero-n", 0, 0, 0},
		{"zero-workers", 10, 0, 10},
		{"negative-workers", 10, -3, 10},
		{"very-negative-workers", 7, -1 << 30, 7},
		{"more-workers-than-work", 3, 64, 3},
		{"one-worker", 5, 1, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var total atomic.Int32
			seen := make([]int32, max(tc.n, 0))
			For(tc.n, tc.workers, func(i int) {
				total.Add(1)
				atomic.AddInt32(&seen[i], 1)
			})
			if got := int(total.Load()); got != tc.want {
				t.Fatalf("For(%d, %d): fn ran %d times, want %d", tc.n, tc.workers, got, tc.want)
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("For(%d, %d): index %d ran %d times", tc.n, tc.workers, i, c)
				}
			}
		})
	}
}

// TestForCtxPreCanceled pins the already-canceled contract: fn must
// never run and the context's error comes back immediately, at any
// worker count.
func TestForCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{0, 1, 4} {
		err := ForCtx(ctx, 1000, workers, func(int) {
			t.Errorf("workers=%d: fn ran under a canceled context", workers)
		})
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
	err := ForChunksCtx(ctx, 1000, 4, 16, func(lo, hi int) {
		t.Error("chunk fn ran under a canceled context")
	})
	if err != context.Canceled {
		t.Fatalf("ForChunksCtx: err = %v, want context.Canceled", err)
	}
}

// TestForCtxMidRunCancel cancels from inside an early iteration: the
// loop must stop claiming new indices instead of draining all n slots,
// and report the cancellation.
func TestForCtxMidRunCancel(t *testing.T) {
	const n = 100_000
	cases := []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var ran atomic.Int32
			err := ForCtx(ctx, n, tc.workers, func(i int) {
				if ran.Add(1) == 10 {
					cancel()
				}
			})
			if err != context.Canceled {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			// In-flight iterations may finish after the cancel, but the
			// vast majority of the range must never start.
			if got := ran.Load(); int(got) >= n/2 {
				t.Fatalf("ran %d of %d iterations after mid-run cancel", got, n)
			}
		})
	}
}

// TestForChunksCtxMidRunCancel is the chunked analogue: cancellation
// between chunks stops the sweep early.
func TestForChunksCtxMidRunCancel(t *testing.T) {
	const n, chunk = 100_000, 10
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var covered atomic.Int32
	err := ForChunksCtx(ctx, n, 4, chunk, func(lo, hi int) {
		if covered.Add(int32(hi-lo)) >= 100 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := covered.Load(); int(got) >= n/2 {
		t.Fatalf("covered %d of %d indices after mid-run cancel", got, n)
	}
}

// TestForCtxNilAndUncanceled: a nil context is For, and an uncanceled
// context covers the whole range and returns nil.
func TestForCtxNilAndUncanceled(t *testing.T) {
	var ran atomic.Int32
	if err := ForCtx(nil, 100, 4, func(int) { ran.Add(1) }); err != nil || ran.Load() != 100 {
		t.Fatalf("nil ctx: err=%v ran=%d", err, ran.Load())
	}
	ran.Store(0)
	if err := ForCtx(context.Background(), 100, 4, func(int) { ran.Add(1) }); err != nil || ran.Load() != 100 {
		t.Fatalf("background ctx: err=%v ran=%d", err, ran.Load())
	}
}
