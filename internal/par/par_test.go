package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		const n = 1000
		counts := make([]int32, n)
		For(n, workers, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForDeterministicSlots(t *testing.T) {
	const n = 512
	serial := make([]int, n)
	For(n, 1, func(i int) { serial[i] = i * i })
	parallel := make([]int, n)
	For(n, 8, func(i int) { parallel[i] = i * i })
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("slot %d: serial %d parallel %d", i, serial[i], parallel[i])
		}
	}
}

func TestForEmptyAndTiny(t *testing.T) {
	For(0, 4, func(int) { t.Fatal("body ran for n=0") })
	ran := false
	For(1, 4, func(i int) { ran = true })
	if !ran {
		t.Fatal("body skipped for n=1")
	}
}

// TestForGuards pins the degenerate-input contract: negative and zero
// ranges are empty (never hang, never call fn), and any worker count —
// zero, negative, or absurdly large — still visits every index exactly
// once. For must return (not deadlock) in every case; the test itself
// hanging is the failure mode for a regression here.
func TestForGuards(t *testing.T) {
	cases := []struct {
		name    string
		n       int
		workers int
		want    int // total fn invocations
	}{
		{"negative-n", -5, 4, 0},
		{"negative-n-negative-workers", -1, -1, 0},
		{"zero-n", 0, 0, 0},
		{"zero-workers", 10, 0, 10},
		{"negative-workers", 10, -3, 10},
		{"very-negative-workers", 7, -1 << 30, 7},
		{"more-workers-than-work", 3, 64, 3},
		{"one-worker", 5, 1, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var total atomic.Int32
			seen := make([]int32, max(tc.n, 0))
			For(tc.n, tc.workers, func(i int) {
				total.Add(1)
				atomic.AddInt32(&seen[i], 1)
			})
			if got := int(total.Load()); got != tc.want {
				t.Fatalf("For(%d, %d): fn ran %d times, want %d", tc.n, tc.workers, got, tc.want)
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("For(%d, %d): index %d ran %d times", tc.n, tc.workers, i, c)
				}
			}
		})
	}
}
