// Package par provides the bounded worker pool the synthesis flow uses
// to fan independent candidate evaluations (width x protocol points,
// bus-generation width trials) across CPUs. Results stay deterministic
// because work is indexed: For(n, ...) invokes the body exactly once
// for every i in [0, n), and bodies write only to their own slot, so
// output order never depends on goroutine scheduling.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// For runs fn(i) for every i in [0, n), fanning the iterations across
// at most workers goroutines. workers <= 0 means GOMAXPROCS; a single
// worker (or n <= 1) runs inline with no goroutines. For returns after
// every iteration has completed. fn must be safe for concurrent calls
// with distinct indices; iterations are claimed from a shared atomic
// counter, so scheduling is dynamic but each index runs exactly once.
//
// Degenerate inputs are guarded rather than left to wedge the pool: a
// negative or zero n is an empty range (For returns immediately, fn is
// never called), and a worker count that is still unusable after the
// GOMAXPROCS substitution clamps to 1 so the loop always makes
// progress instead of spawning zero goroutines and hanging the wait.
func For(n, workers int, fn func(i int)) {
	forRange(nil, n, workers, fn)
}

// ForCtx is For with cooperative cancellation: once ctx is done, no
// further iteration starts (iterations already running complete) and
// ForCtx returns ctx.Err() instead of draining the remaining slots. An
// already-canceled context returns immediately without calling fn at
// all. A nil ctx behaves like For. The error is the context's error at
// return time, so callers must treat any non-nil result as "output
// slots may be unwritten" — a cancellation that races the final
// iteration still reports the cancel.
func ForCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	if ctx == nil {
		forRange(nil, n, workers, fn)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	forRange(ctx.Done(), n, workers, fn)
	return ctx.Err()
}

// ForChunks runs fn(lo, hi) over consecutive index blocks covering
// [0, n): fn is invoked once per chunk with 0 <= lo < hi <= n, chunks
// are disjoint and together cover the range exactly. Million-index
// loops (fault campaigns, seed sweeps) dispatch per block instead of
// per index, so the per-iteration scheduling cost is amortized over
// `chunk` items and workers touch contiguous memory.
//
// chunk <= 0 picks a default that yields several chunks per worker
// (dynamic scheduling still balances uneven chunks) and at least 1.
// The same degenerate-input guarantees as For apply: n <= 0 is an
// empty range, and any workers value is usable. Chunk *contents* run
// in ascending index order within fn, and callers that write per-chunk
// slots indexed by lo/chunk get deterministic output at any worker
// count.
func ForChunks(n, workers, chunk int, fn func(lo, hi int)) {
	ForChunksCtx(nil, n, workers, chunk, fn) //nolint:errcheck // nil ctx never errors
}

// ForChunksCtx is ForChunks with cooperative cancellation, with the
// same contract as ForCtx: once ctx is done no further chunk starts,
// and the ctx error is returned instead of draining the remaining
// chunks. A nil ctx behaves like ForChunks and returns nil.
func ForChunksCtx(ctx context.Context, n, workers, chunk int, fn func(lo, hi int)) error {
	if n <= 0 {
		return nil
	}
	if chunk <= 0 {
		w := workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		if w <= 0 {
			w = 1
		}
		chunk = n / (8 * w)
		if chunk < 1 {
			chunk = 1
		}
	}
	nchunks := (n + chunk - 1) / chunk
	return ForCtx(ctx, nchunks, workers, func(c int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}

// DefaultWorkers reports the worker count a workers <= 0 argument
// resolves to (GOMAXPROCS, floored at 1), for callers that size
// per-worker state such as chunk partitions.
func DefaultWorkers() int {
	if w := runtime.GOMAXPROCS(0); w > 0 {
		return w
	}
	return 1
}

// forRange claims indices from a shared counter until the range is
// exhausted or done (which may be nil) is closed. The done check
// happens before each claim, so cancellation stops new work promptly
// without interrupting iterations already in flight.
func forRange(done <-chan struct{}, n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if done != nil {
				select {
				case <-done:
					return
				default:
				}
			}
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if done != nil {
					select {
					case <-done:
						return
					default:
					}
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
