// Package par provides the bounded worker pool the synthesis flow uses
// to fan independent candidate evaluations (width x protocol points,
// bus-generation width trials) across CPUs. Results stay deterministic
// because work is indexed: For(n, ...) invokes the body exactly once
// for every i in [0, n), and bodies write only to their own slot, so
// output order never depends on goroutine scheduling.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// For runs fn(i) for every i in [0, n), fanning the iterations across
// at most workers goroutines. workers <= 0 means GOMAXPROCS; a single
// worker (or n <= 1) runs inline with no goroutines. For returns after
// every iteration has completed. fn must be safe for concurrent calls
// with distinct indices; iterations are claimed from a shared atomic
// counter, so scheduling is dynamic but each index runs exactly once.
//
// Degenerate inputs are guarded rather than left to wedge the pool: a
// negative or zero n is an empty range (For returns immediately, fn is
// never called), and a worker count that is still unusable after the
// GOMAXPROCS substitution clamps to 1 so the loop always makes
// progress instead of spawning zero goroutines and hanging the wait.
func For(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
