// Package par provides the bounded worker pool the synthesis flow uses
// to fan independent candidate evaluations (width x protocol points,
// bus-generation width trials) across CPUs. Results stay deterministic
// because work is indexed: For(n, ...) invokes the body exactly once
// for every i in [0, n), and bodies write only to their own slot, so
// output order never depends on goroutine scheduling.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// For runs fn(i) for every i in [0, n), fanning the iterations across
// at most workers goroutines. workers <= 0 means GOMAXPROCS; a single
// worker (or n <= 1) runs inline with no goroutines. For returns after
// every iteration has completed. fn must be safe for concurrent calls
// with distinct indices; iterations are claimed from a shared atomic
// counter, so scheduling is dynamic but each index runs exactly once.
//
// Degenerate inputs are guarded rather than left to wedge the pool: a
// negative or zero n is an empty range (For returns immediately, fn is
// never called), and a worker count that is still unusable after the
// GOMAXPROCS substitution clamps to 1 so the loop always makes
// progress instead of spawning zero goroutines and hanging the wait.
func For(n, workers int, fn func(i int)) {
	forRange(n, workers, fn)
}

// ForChunks runs fn(lo, hi) over consecutive index blocks covering
// [0, n): fn is invoked once per chunk with 0 <= lo < hi <= n, chunks
// are disjoint and together cover the range exactly. Million-index
// loops (fault campaigns, seed sweeps) dispatch per block instead of
// per index, so the per-iteration scheduling cost is amortized over
// `chunk` items and workers touch contiguous memory.
//
// chunk <= 0 picks a default that yields several chunks per worker
// (dynamic scheduling still balances uneven chunks) and at least 1.
// The same degenerate-input guarantees as For apply: n <= 0 is an
// empty range, and any workers value is usable. Chunk *contents* run
// in ascending index order within fn, and callers that write per-chunk
// slots indexed by lo/chunk get deterministic output at any worker
// count.
func ForChunks(n, workers, chunk int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		w := workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		if w <= 0 {
			w = 1
		}
		chunk = n / (8 * w)
		if chunk < 1 {
			chunk = 1
		}
	}
	nchunks := (n + chunk - 1) / chunk
	forRange(nchunks, workers, func(c int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}

// DefaultWorkers reports the worker count a workers <= 0 argument
// resolves to (GOMAXPROCS, floored at 1), for callers that size
// per-worker state such as chunk partitions.
func DefaultWorkers() int {
	if w := runtime.GOMAXPROCS(0); w > 0 {
		return w
	}
	return 1
}

func forRange(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
