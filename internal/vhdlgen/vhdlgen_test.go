package vhdlgen

import (
	"strings"
	"testing"

	"repro/internal/protogen"
	"repro/internal/spec"
)

func buildRefinedPQ(t *testing.T) *spec.System {
	t.Helper()
	sys := spec.NewSystem("PQ")
	comp1 := sys.AddModule("comp1")
	comp2 := sys.AddModule("comp2")
	p := comp1.AddBehavior(spec.NewBehavior("P"))
	q := comp1.AddBehavior(spec.NewBehavior("Q"))
	x := comp2.AddVariable(spec.NewVar("X", spec.BitVector(16)))
	mem := comp2.AddVariable(spec.NewVar("MEM", spec.Array(64, spec.BitVector(16))))
	ad := p.AddVar("AD", spec.Integer)
	count := q.AddVar("COUNT", spec.BitVector(16))
	p.Body = []spec.Stmt{
		spec.AssignVar(spec.Ref(ad), spec.Int(5)),
		spec.AssignVar(spec.Ref(x), spec.ToVec(spec.Int(32), 16)),
		spec.AssignVar(spec.At(spec.Ref(mem), spec.Ref(ad)),
			spec.Add(spec.Ref(x), spec.ToVec(spec.Int(7), 16))),
	}
	q.Body = []spec.Stmt{
		spec.AssignVar(spec.Ref(count), spec.ToVec(spec.Int(9), 16)),
		spec.AssignVar(spec.At(spec.Ref(mem), spec.Int(60)), spec.Ref(count)),
	}
	ch0 := sys.AddChannel(&spec.Channel{Name: "CH0", Accessor: p, Var: x, Dir: spec.Write})
	ch1 := sys.AddChannel(&spec.Channel{Name: "CH1", Accessor: p, Var: x, Dir: spec.Read})
	ch2 := sys.AddChannel(&spec.Channel{Name: "CH2", Accessor: p, Var: mem, Dir: spec.Write})
	ch3 := sys.AddChannel(&spec.Channel{Name: "CH3", Accessor: q, Var: mem, Dir: spec.Write})
	bus := &spec.Bus{Name: "B", Channels: []*spec.Channel{ch0, ch1, ch2, ch3}, Width: 8}
	sys.Buses = append(sys.Buses, bus)
	if _, err := protogen.Generate(sys, bus, protogen.Config{Protocol: spec.FullHandshake}); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestEmitContainsPaperArtifacts(t *testing.T) {
	sys := buildRefinedPQ(t)
	out := Emit(sys)
	// The elements the paper's Figs. 4 and 5 show:
	for _, want := range []string{
		"type HandShakeBus is record",
		"START, DONE : bit ;",
		"ID : bit_vector(1 downto 0) ;",
		"DATA : bit_vector(7 downto 0) ;",
		"signal B : HandShakeBus ;",
		"procedure SendCH0",
		"B.ID <= \"00\" ;",
		"wait until (B.DONE = '1') ;",
		"B.START <= '0' ;",
		"process Xproc",
		"process MEMproc",
		"SendCH0(",
		"ReceiveCH1(Xtemp)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("emitted VHDL missing %q", want)
		}
	}
}

func TestEmitBusTrailerComments(t *testing.T) {
	sys := buildRefinedPQ(t)
	out := Emit(sys)
	if !strings.Contains(out, "-- bus B : width 8") {
		t.Error("missing bus trailer")
	}
	if !strings.Contains(out, "process Q writing variable MEM") {
		t.Error("missing channel annotation")
	}
}

func TestEmitSliceSyntax(t *testing.T) {
	sys := buildRefinedPQ(t)
	out := Emit(sys)
	// Word slicing of the 16-bit message over the 8-bit bus.
	if !strings.Contains(out, "(7 downto 0)") || !strings.Contains(out, "(15 downto 8)") {
		t.Errorf("missing word slices in output")
	}
}

func TestEmitProcedureStandalone(t *testing.T) {
	sys := buildRefinedPQ(t)
	p := sys.FindBehavior("P")
	send := p.FindProc("SendCH0")
	out := EmitProcedure(send)
	if !strings.Contains(out, "procedure SendCH0(txdata : in bit_vector(15 downto 0)) is") {
		t.Errorf("procedure header wrong:\n%s", out)
	}
	if !strings.Contains(out, "variable msg : bit_vector(15 downto 0) ;") {
		t.Errorf("missing local declaration:\n%s", out)
	}
}

func TestEmitServerDispatcher(t *testing.T) {
	sys := buildRefinedPQ(t)
	memproc := sys.FindBehavior("MEMproc")
	out := EmitBehavior(memproc)
	for _, want := range []string{
		"-- generated variable process",
		"loop",
		`if (B.ID = "10") then`,
		`elsif (B.ID = "11") then`,
		"RecvCH2() ;",
		"RecvCH3() ;",
		"end loop ;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dispatcher missing %q:\n%s", want, out)
		}
	}
}

func TestSummary(t *testing.T) {
	sys := buildRefinedPQ(t)
	out := Summary(sys)
	if !strings.Contains(out, "8 data + 2 control + 2 id = 12 lines") {
		t.Errorf("summary wrong:\n%s", out)
	}
	if !strings.Contains(out, "CH0") || !strings.Contains(out, "16 bits/message") {
		t.Errorf("summary channels wrong:\n%s", out)
	}
}

func TestEmitIsDeterministic(t *testing.T) {
	a := Emit(buildRefinedPQ(t))
	b := Emit(buildRefinedPQ(t))
	if a != b {
		t.Fatal("nondeterministic emission")
	}
}

func TestConvRendering(t *testing.T) {
	v := spec.NewVar("v", spec.BitVector(8))
	if got := expr(spec.ToInt(spec.Ref(v))); got != "conv_integer(v)" {
		t.Errorf("ToInt = %q", got)
	}
	i := spec.NewVar("i", spec.Integer)
	if got := expr(spec.ToVec(spec.Ref(i), 7)); got != "conv_bit_vector(i, 7)" {
		t.Errorf("ToVec = %q", got)
	}
}
