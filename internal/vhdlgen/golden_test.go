package vhdlgen

import (
	"os"
	"testing"

	"repro/internal/protogen"
	"repro/internal/spec"
	"repro/internal/workloads"
)

// TestGoldenRefinedPQ pins the full emitted listing of the refined
// Fig. 3 system against testdata/pq_refined.vhdl.golden. Regenerate the
// golden with: go run ./tools/gengolden
func TestGoldenRefinedPQ(t *testing.T) {
	sys, bus := workloads.PQ()
	if _, err := protogen.Generate(sys, bus, protogen.Config{Protocol: spec.FullHandshake}); err != nil {
		t.Fatal(err)
	}
	got := Emit(sys)
	want, err := os.ReadFile("../../testdata/pq_refined.vhdl.golden")
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("emitted VHDL drifted from golden (run `go run ./tools/gengolden` if intentional)\n"+
			"got %d bytes, want %d", len(got), len(want))
	}
}
