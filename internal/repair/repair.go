// Package repair closes the loop between the model checker and protocol
// generation: counterexample-guided inductive synthesis (CEGIS) over a
// bounded grammar of protogen hardening knobs.
//
// The checker (internal/verify) found real failure windows in the
// generated protocols — most prominently the lost-ack two-generals
// window of the robust full handshake (DESIGN.md §5d): drop the
// accessor's final START fall and the serving process's bounded wait
// expires after the data words arrived but before the commit, while the
// DONE fall its abort path releases is indistinguishable to the
// accessor from a success acknowledgement. Silent corruption, plus a
// stuck-high strobe that leaves the watchdogs cycling drain timeouts
// forever (a bounded-response lasso).
//
// Instead of hand-hardening, Run iterates: verify at the configured
// drop budget, classify each counterexample into a failure mode,
// apply the first applicable unapplied mutation from that mode's
// candidate list, regenerate from a fresh template, re-verify. The loop
// ends when the properties hold (Repaired), the grammar has nothing
// left to offer (ExhaustedGrammar), or the iteration budget runs out.
//
// The grammar is a tiered, cost-aware escalation ladder:
//
//   - Tier 1 — local knobs (CommitAck … TurnFlush): extra clocks, extra
//     lines, reordered commits. Nearly free in area and time, so the
//     loop always tries them first.
//   - Tier 2 — arbitration policy (GrantHold, BusPark): changes to the
//     generated arbiter's grant machinery for multi-master buses. More
//     invasive (they alter the bus acquisition timing every transaction
//     pays), so they are only reached once tier 1 has nothing left for
//     the remaining violations.
//   - Tier 3 — protocol selection (SelectFullHandshake): abandoning the
//     half handshake for the full handshake. This is the only mutation
//     that changes *which* protocol ships rather than hardening the one
//     selected, and it moves the design to a different point of the
//     explore cost frontier (more control lines, two clocks per word,
//     retransmission hardware) — so it is last, and when Config.Cost is
//     set the iteration trace carries the estimate-priced area/pin/time
//     delta of the swap.
//
// The ladder starts at tier 1; when no violation's candidate list has
// an unapplied applicable mutation at or below the current tier, the
// loop escalates instead of giving up, up to Config.MaxTier. Only when
// the top tier is exhausted does it report ExhaustedGrammar.
//
// The loop inherits the checker's determinism: verdicts and violation
// order are byte-identical at any worker count, and classification,
// candidate selection and escalation are pure functions of them, so the
// mutation sequence and iteration count are worker-invariant too.
package repair

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/estimate"
	"repro/internal/protogen"
	"repro/internal/spec"
	"repro/internal/verify"
)

// Mutation is one member of the bounded repair grammar: a protogen
// hardening knob the loop may switch on.
type Mutation int

// The repair grammar, in canonical order.
const (
	// CommitAck moves the write server's commit into the final word's
	// latch (ack-of-ack commit): the closing handshake acknowledges a
	// commit that already happened, so losing it cannot lose data.
	CommitAck Mutation = iota
	// ReleaseStale lets a server's drain phase release a START strobe
	// stuck high for a full timeout, breaking the watchdog lasso.
	ReleaseStale
	// AckSeq adds a SEQ word-parity line so stale strobes cannot be
	// mistaken for the next word (sequence-numbered acks).
	AckSeq
	// EpochResync pulses an EPOCH line alongside RST so a resync
	// survives the loss of either edge (epoch bits on RST resync).
	EpochResync
	// TurnFlush flushes the half handshake's server-driven START fall
	// before the server re-arms, closing the read-turnaround contention.
	TurnFlush
	// GrantHold (tier 2) makes the arbiter hold the grant one clock past
	// the owner's REQ fall, covering the transaction's commit/release
	// edges before the bus can be re-granted.
	GrantHold
	// BusPark (tier 2) parks the grant on the last bus owner so retries
	// and back-to-back transactions skip the re-arbitration latency.
	BusPark
	// SelectFullHandshake (tier 3) re-runs protocol selection: the half
	// handshake becomes the robust full handshake. The missed-pulse
	// hazard — a dropped START pulse the receiver can never detect — is
	// unfixable without an acknowledgement wire, so when the local
	// grammar is exhausted the loop swaps the protocol itself, at the
	// cost the escalation trace prices.
	SelectFullHandshake

	numMutations
)

// Escalation hardening parameters: when SelectFullHandshake escalates a
// config whose timers are unset, it picks these over the larger protogen
// defaults. Smaller timers mean cheaper timeout counters and a state
// space the checker can exhaust (the 8/2 full-handshake configuration is
// the one PR 7 proved clean at drop budget 1).
const (
	EscalateTimeoutClocks = 8
	EscalateMaxRetries    = 2
)

func (m Mutation) String() string {
	switch m {
	case CommitAck:
		return "CommitAck"
	case ReleaseStale:
		return "ReleaseStale"
	case AckSeq:
		return "AckSeq"
	case EpochResync:
		return "EpochResync"
	case TurnFlush:
		return "TurnFlush"
	case GrantHold:
		return "GrantHold"
	case BusPark:
		return "BusPark"
	case SelectFullHandshake:
		return "SelectFullHandshake"
	}
	return fmt.Sprintf("Mutation(%d)", int(m))
}

// Tier places the mutation on the escalation ladder: 1 local knobs,
// 2 arbitration policy, 3 protocol selection.
func (m Mutation) Tier() int {
	switch m {
	case GrantHold, BusPark:
		return 2
	case SelectFullHandshake:
		return 3
	}
	return 1
}

// MaxTier is the top of the escalation ladder.
const MaxTier = 3

// Grammar lists every mutation in canonical order.
func Grammar() []Mutation {
	out := make([]Mutation, numMutations)
	for i := range out {
		out[i] = Mutation(i)
	}
	return out
}

// Apply switches the mutation's knob on in the generation config.
// SelectFullHandshake is the one non-monotonic member: it rewrites the
// protocol choice itself — half handshake to robust full handshake,
// clearing the now-inexpressible TurnFlush and defaulting unset timers
// to the escalation constants — and is a no-op on any other protocol.
func (m Mutation) Apply(c *protogen.Config) {
	switch m {
	case CommitAck:
		c.CommitAck = true
	case ReleaseStale:
		c.ReleaseStale = true
	case AckSeq:
		c.AckSeq = true
	case EpochResync:
		c.EpochResync = true
	case TurnFlush:
		c.TurnFlush = true
	case GrantHold:
		c.GrantHold = true
	case BusPark:
		c.BusPark = true
	case SelectFullHandshake:
		if c.Protocol != spec.HalfHandshake {
			return
		}
		c.Protocol = spec.FullHandshake
		c.Robust = true
		c.TurnFlush = false
		if c.TimeoutClocks == 0 {
			c.TimeoutClocks = EscalateTimeoutClocks
		}
		if c.MaxRetries == 0 {
			c.MaxRetries = EscalateMaxRetries
		}
	}
}

// Applied reports whether the mutation's knob is already on.
func (m Mutation) Applied(c protogen.Config) bool {
	switch m {
	case CommitAck:
		return c.CommitAck
	case ReleaseStale:
		return c.ReleaseStale
	case AckSeq:
		return c.AckSeq
	case EpochResync:
		return c.EpochResync
	case TurnFlush:
		return c.TurnFlush
	case GrantHold:
		return c.GrantHold
	case BusPark:
		return c.BusPark
	case SelectFullHandshake:
		return c.Protocol == spec.FullHandshake && c.Robust
	}
	return false
}

// Applicable reports whether applying the mutation to the config yields
// a combination protogen can express (Config.Validate accepts it) while
// actually changing it — SelectFullHandshake only acts on the half
// handshake, so on every other protocol it is inapplicable rather than
// a valid no-op.
func (m Mutation) Applicable(c protogen.Config) bool {
	if m == SelectFullHandshake && c.Protocol != spec.HalfHandshake {
		return false
	}
	m.Apply(&c)
	return c.Validate() == nil
}

// Mode classifies a counterexample's failure mode; each mode has an
// ordered candidate list of grammar mutations targeting it.
type Mode int

// Failure modes.
const (
	// ModeUnknown: no targeted diagnosis; every applicable mutation is a
	// candidate, in grammar order.
	ModeUnknown Mode = iota
	// ModeLostAck: silent corruption under a drop budget on the hardened
	// full handshake — the lost-ack commit race.
	ModeLostAck
	// ModeLasso: a bounded-response cycle in the hardened machinery —
	// watchdogs cycling drain timeouts around a stuck strobe.
	ModeLasso
	// ModeTurnaround: half-handshake driver contention at the read
	// turnaround.
	ModeTurnaround
	// ModeArbitration: a driver conflict on an arbitrated bus — two
	// masters colliding across a grant boundary. The grant machinery,
	// not the word handshake, is what failed, so the candidates are the
	// tier-2 arbitration mutations (with TurnFlush as the tier-1 opener
	// for arbitrated half handshakes, whose turnaround contention looks
	// identical from the checker's seat).
	ModeArbitration
	// ModeMissedPulse: the half handshake losing a strobe pulse under a
	// drop budget. The receiver has no acknowledgement wire on which to
	// miss the word, so no local knob can close this window — the only
	// candidate is protocol selection.
	ModeMissedPulse
)

func (m Mode) String() string {
	switch m {
	case ModeLostAck:
		return "lost-ack"
	case ModeLasso:
		return "lasso"
	case ModeTurnaround:
		return "turnaround"
	case ModeArbitration:
		return "arbitration"
	case ModeMissedPulse:
		return "missed-pulse"
	}
	return "unknown"
}

// Classify diagnoses one violation against the config that generated
// the system it was found on.
func Classify(v *verify.Violation, cfg protogen.Config) Mode {
	robustFull := cfg.Robust && cfg.Protocol == spec.FullHandshake
	dropped := v.Cex != nil && len(v.Cex.Drops) > 0
	switch v.Kind {
	case verify.Corruption:
		if robustFull && dropped {
			return ModeLostAck
		}
		if cfg.Protocol == spec.HalfHandshake && dropped {
			return ModeMissedPulse
		}
	case verify.Deadlock:
		// A deadlock the drop budget provokes on the half handshake is
		// the same missed pulse seen from the other side: the server
		// armed on a strobe that never arrives.
		if cfg.Protocol == spec.HalfHandshake && dropped {
			return ModeMissedPulse
		}
	case verify.Livelock:
		if cfg.Robust {
			return ModeLasso
		}
	case verify.DriverConflict:
		if cfg.Arbitrate {
			return ModeArbitration
		}
		if cfg.Protocol == spec.HalfHandshake {
			return ModeTurnaround
		}
	}
	return ModeUnknown
}

// Candidates returns the mode's mutation candidates in preference
// order. ModeUnknown falls back to the whole grammar.
func Candidates(m Mode) []Mutation {
	switch m {
	case ModeLostAck:
		return []Mutation{CommitAck, AckSeq, EpochResync}
	case ModeLasso:
		return []Mutation{ReleaseStale, EpochResync}
	case ModeTurnaround:
		return []Mutation{TurnFlush, SelectFullHandshake}
	case ModeArbitration:
		return []Mutation{TurnFlush, GrantHold, BusPark}
	case ModeMissedPulse:
		return []Mutation{SelectFullHandshake}
	}
	return Grammar()
}

// Builder regenerates a refined system from a generation config —
// typically spec.Clone of an unrefined template followed by
// protogen.Generate — returning the system and the abort-counter finals
// keys the delivery check must excuse. Each call must start from a
// fresh template: Generate refines in place.
type Builder func(cfg protogen.Config) (*spec.System, []string, error)

// Config parameterizes the repair loop.
type Config struct {
	// Verify is the per-iteration model-checking budget (drop budget,
	// state bound, workers). AbortVars is overwritten each iteration
	// with the Builder's keys.
	Verify verify.Config
	// Budget bounds verify iterations (initial check included); 0 means
	// DefaultBudget.
	Budget int
	// MaxTier caps the escalation ladder: 1 restricts the loop to the
	// local knobs (PR 7 behavior), 2 adds the arbitration mutations,
	// 3 adds protocol selection. 0 means the full ladder (MaxTier).
	MaxTier int
	// Cost, when set, prices protocol-selection escalations: the
	// iteration applying SelectFullHandshake carries the estimate-costed
	// pin/area/time delta between the abandoned and the selected
	// protocol, so callers (explore.AnnotateRepair, the CLIs) can report
	// what the repaired point costs on the design-space frontier instead
	// of silently swapping protocols.
	Cost *CostModel
}

// CostModel prices a candidate bus implementation for the escalation
// trace. Channels must come from the pre-refinement specification (the
// estimator memoizes statement walks of the original bodies).
type CostModel struct {
	// Channels is the bus's channel group, pre-refinement.
	Channels []*spec.Channel
	// Width is the selected bus width.
	Width int
	// Est, when set, adds worst-case accessor execution times to the
	// delta; without it the cost covers pins and area only.
	Est *estimate.Estimator
	// Area is the area model; the zero value means the default model.
	Area estimate.AreaModel
}

// EscalationCost is the priced delta of a protocol-selection mutation:
// the bus implementation the loop abandoned versus the one it selected,
// in the same units the explore sweep reports (pins, interface gates,
// worst accessor clocks).
type EscalationCost struct {
	From string `json:"from"`
	To   string `json:"to"`
	// PinsFrom/PinsTo count bus wires (data + control + ID + hardening).
	PinsFrom int `json:"pins_from"`
	PinsTo   int `json:"pins_to"`
	// AreaFrom/AreaTo estimate interface gates (drivers + transfer FSMs
	// + hardening machinery).
	AreaFrom float64 `json:"area_from"`
	AreaTo   float64 `json:"area_to"`
	// WorstExecFrom/WorstExecTo are the slowest accessor's estimated
	// execution clocks; zero when the cost model has no estimator.
	WorstExecFrom int64 `json:"worst_exec_from,omitempty"`
	WorstExecTo   int64 `json:"worst_exec_to,omitempty"`
}

// price evaluates one side of the escalation delta.
func (cm *CostModel) price(cfg protogen.Config) (pins int, area float64, worst int64) {
	p := cfg.Protocol
	m := cm.Area
	if m == (estimate.AreaModel{}) {
		m = estimate.DefaultAreaModel()
	}
	idb := 0
	if n := len(cm.Channels); n > 1 {
		idb = spec.AddrBits(n)
	}
	pins = cm.Width + p.ControlLines() + idb
	if cfg.Robust && p == spec.FullHandshake {
		pins++ // RST
	}
	if cfg.Parity {
		pins += 2 // PAR, NACK
	}
	if cfg.Arbitrate {
		accs := map[*spec.Behavior]bool{}
		for _, c := range cm.Channels {
			accs[c.Accessor] = true
		}
		pins += protogen.ArbitrationLines(len(accs))
	}
	area = estimate.InterfaceArea(cm.Channels, cm.Width, p, m) +
		estimate.HardeningArea(cm.Channels, cm.Width, p, cfg.Robust, cfg.Parity, m)
	if cm.Est != nil {
		seen := map[*spec.Behavior]bool{}
		for _, c := range cm.Channels {
			if seen[c.Accessor] {
				continue
			}
			seen[c.Accessor] = true
			if t := cm.Est.ExecTime(c.Accessor, cm.Width, p); t > worst {
				worst = t
			}
		}
	}
	return pins, area, worst
}

// delta prices a protocol-selection escalation from one generation
// config to another.
func (cm *CostModel) delta(from, to protogen.Config) *EscalationCost {
	c := &EscalationCost{From: from.Protocol.String(), To: to.Protocol.String()}
	c.PinsFrom, c.AreaFrom, c.WorstExecFrom = cm.price(from)
	c.PinsTo, c.AreaTo, c.WorstExecTo = cm.price(to)
	return c
}

// DefaultBudget allows the initial check plus one iteration per grammar
// member: the loop applies each mutation at most once, so more
// iterations cannot exist.
const DefaultBudget = int(numMutations) + 1

// IterViolation is one violation observed during an iteration, with its
// diagnosis.
type IterViolation struct {
	Kind    string `json:"kind"`
	Mode    string `json:"mode"`
	Message string `json:"message"`
}

// Iteration records one CEGIS turn for the machine-readable trace.
type Iteration struct {
	Index int `json:"index"`
	// Active lists the mutations in effect for this iteration's
	// generation, in application order.
	Active []string `json:"active,omitempty"`
	// States and Incomplete summarize the verify run.
	States     int  `json:"states"`
	Incomplete bool `json:"incomplete,omitempty"`
	// Clean reports no violations were found (exhaustively so unless
	// Incomplete).
	Clean      bool            `json:"clean"`
	Violations []IterViolation `json:"violations,omitempty"`
	// Classified is the failure mode that drove the mutation choice and
	// Applied the mutation chosen for the next iteration; empty on the
	// final iteration.
	Classified string `json:"classified,omitempty"`
	Applied    string `json:"applied,omitempty"`
	// Tier is the escalation-ladder tier in effect when the mutation was
	// chosen (after any escalation this iteration performed); Escalated
	// reports the tier was raised during this iteration because the
	// lower tiers had nothing left for the remaining violations.
	Tier      int  `json:"tier,omitempty"`
	Escalated bool `json:"escalated,omitempty"`
	// Cost is the estimate-priced delta of a protocol-selection
	// mutation, present only when Applied is SelectFullHandshake and the
	// loop was configured with a cost model.
	Cost *EscalationCost `json:"cost,omitempty"`
}

// Result is the outcome of a repair loop.
type Result struct {
	// Repaired reports the final iteration found no violations within
	// the verify bounds; Exhaustive additionally reports the search was
	// complete, making the verdict a proof rather than a bounded sweep.
	Repaired   bool
	Exhaustive bool
	// ExhaustedGrammar reports the loop stopped because no unapplied
	// applicable mutation targeted the remaining violations.
	ExhaustedGrammar bool
	// Mutations lists the applied mutations in application order.
	Mutations []Mutation
	// FinalTier is the highest escalation-ladder tier the loop reached
	// (1 when the local knobs sufficed).
	FinalTier int
	// Config is the final generation config (base plus Mutations).
	Config protogen.Config
	// System and Report are the final iteration's refined system and
	// verify report.
	System *spec.System
	Report *verify.Report
	// Iterations is the machine-readable repair trace.
	Iterations []Iteration
	// Counterexamples collects every counterexample observed across all
	// iterations, in discovery order (verification fodder: each replays
	// deterministically through the simulator kernels).
	Counterexamples []*verify.Counterexample
}

// Verified reports a fully proven repair: no violations and a complete
// search.
func (r *Result) Verified() bool { return r.Repaired && r.Exhaustive }

// Run executes the CEGIS loop from the base generation config.
func Run(build Builder, base protogen.Config, cfg Config) (*Result, error) {
	return RunCtx(context.Background(), build, base, cfg)
}

// RunCtx is Run with cooperative cancellation: the ctx reaches every
// verify call, so a canceled loop aborts mid-BFS rather than finishing
// the current iteration's search. A canceled run returns ctx.Err()
// (wrapped with the iteration that was cut short) and no Result — a
// partial repair trace must never be mistaken for an exhausted grammar.
func RunCtx(ctx context.Context, build Builder, base protogen.Config, cfg Config) (*Result, error) {
	budget := cfg.Budget
	if budget <= 0 {
		budget = DefaultBudget
	}
	maxTier := cfg.MaxTier
	if maxTier <= 0 || maxTier > MaxTier {
		maxTier = MaxTier
	}
	res := &Result{Config: base, FinalTier: 1}
	cur := base
	tier := 1
	for iter := 0; iter < budget; iter++ {
		sys, abortVars, err := build(cur)
		if err != nil {
			return nil, fmt.Errorf("repair: iteration %d: generate: %w", iter, err)
		}
		vcfg := cfg.Verify
		vcfg.AbortVars = abortVars
		rep, err := verify.CheckCtx(ctx, sys, vcfg)
		if err != nil {
			return nil, fmt.Errorf("repair: iteration %d: verify: %w", iter, err)
		}
		res.System, res.Report, res.Config = sys, rep, cur

		it := Iteration{
			Index:      iter,
			Active:     mutationNames(res.Mutations),
			States:     rep.States,
			Incomplete: rep.Incomplete,
			Clean:      len(rep.Violations) == 0,
		}
		for i := range rep.Violations {
			v := &rep.Violations[i]
			it.Violations = append(it.Violations, IterViolation{
				Kind:    v.Kind.String(),
				Mode:    Classify(v, cur).String(),
				Message: v.Message,
			})
			if v.Cex != nil {
				res.Counterexamples = append(res.Counterexamples, v.Cex)
			}
		}

		if len(rep.Violations) == 0 {
			res.Repaired = true
			res.Exhaustive = !rep.Incomplete
			res.Iterations = append(res.Iterations, it)
			return res, nil
		}

		// Pick the next mutation: first violation (BFS order — the
		// shallowest failure) whose mode still has an unapplied,
		// applicable candidate at or below the current ladder tier.
		// When a tier is exhausted, escalate instead of giving up —
		// ExhaustedGrammar is only honest once the top tier has nothing
		// left either.
		chosen, mode, found := pick(rep.Violations, cur, tier)
		for !found && tier < maxTier {
			tier++
			it.Escalated = true
			chosen, mode, found = pick(rep.Violations, cur, tier)
		}
		if tier > res.FinalTier {
			res.FinalTier = tier
		}
		if !found {
			res.ExhaustedGrammar = true
			res.Iterations = append(res.Iterations, it)
			return res, nil
		}
		it.Classified = mode.String()
		it.Applied = chosen.String()
		it.Tier = tier
		prev := cur
		chosen.Apply(&cur)
		if chosen == SelectFullHandshake && cfg.Cost != nil {
			it.Cost = cfg.Cost.delta(prev, cur)
		}
		res.Iterations = append(res.Iterations, it)
		res.Mutations = append(res.Mutations, chosen)
	}
	return res, nil
}

// pick scans violations in report order for the first with an
// unapplied, applicable candidate mutation at or below the ladder tier.
func pick(violations []verify.Violation, cur protogen.Config, tier int) (Mutation, Mode, bool) {
	for i := range violations {
		mode := Classify(&violations[i], cur)
		for _, cand := range Candidates(mode) {
			if cand.Tier() > tier || cand.Applied(cur) || !cand.Applicable(cur) {
				continue
			}
			return cand, mode, true
		}
	}
	return 0, ModeUnknown, false
}

func mutationNames(ms []Mutation) []string {
	if len(ms) == 0 {
		return nil
	}
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.String()
	}
	return out
}

// TraceJSON renders the iteration trace as indented JSON — the
// machine-readable repair log.
func (r *Result) TraceJSON() ([]byte, error) {
	return json.MarshalIndent(struct {
		Repaired         bool        `json:"repaired"`
		Exhaustive       bool        `json:"exhaustive"`
		ExhaustedGrammar bool        `json:"exhausted_grammar,omitempty"`
		FinalTier        int         `json:"final_tier"`
		Mutations        []string    `json:"mutations"`
		Iterations       []Iteration `json:"iterations"`
	}{
		Repaired:         r.Repaired,
		Exhaustive:       r.Exhaustive,
		ExhaustedGrammar: r.ExhaustedGrammar,
		FinalTier:        r.FinalTier,
		Mutations:        mutationNames(r.Mutations),
		Iterations:       r.Iterations,
	}, "", "  ")
}

// Format renders the human-readable iteration log.
func (r *Result) Format() string {
	var b strings.Builder
	for _, it := range r.Iterations {
		label := "base"
		if len(it.Active) > 0 {
			label = "+" + strings.Join(it.Active, " +")
		}
		switch {
		case it.Clean && !it.Incomplete:
			fmt.Fprintf(&b, "iter %d [%s]: clean — %d states, exhaustive\n", it.Index, label, it.States)
		case it.Clean:
			fmt.Fprintf(&b, "iter %d [%s]: no violation within bounds — %d states, incomplete\n", it.Index, label, it.States)
		default:
			kinds := make([]string, len(it.Violations))
			for i, v := range it.Violations {
				kinds[i] = v.Kind
			}
			fmt.Fprintf(&b, "iter %d [%s]: %d violation(s) [%s] — %d states\n",
				it.Index, label, len(it.Violations), strings.Join(kinds, ", "), it.States)
			if it.Escalated && it.Applied != "" {
				fmt.Fprintf(&b, "        escalated to tier %d: lower tiers exhausted for the remaining violations\n", it.Tier)
			}
			if it.Applied != "" {
				fmt.Fprintf(&b, "        classified %s -> apply %s (tier %d)\n", it.Classified, it.Applied, it.Tier)
			}
			if it.Cost != nil {
				c := it.Cost
				fmt.Fprintf(&b, "        reselect %s -> %s: pins %d -> %d, interface gates %.0f -> %.0f",
					c.From, c.To, c.PinsFrom, c.PinsTo, c.AreaFrom, c.AreaTo)
				if c.WorstExecFrom != 0 || c.WorstExecTo != 0 {
					fmt.Fprintf(&b, ", worst exec %d -> %d clocks", c.WorstExecFrom, c.WorstExecTo)
				}
				b.WriteString("\n")
			}
		}
	}
	switch {
	case r.Verified():
		fmt.Fprintf(&b, "repaired with %s: properties hold exhaustively\n", joinOr(mutationNames(r.Mutations), "no mutations"))
	case r.Repaired:
		fmt.Fprintf(&b, "repaired with %s: no violation within bounds (incomplete search)\n", joinOr(mutationNames(r.Mutations), "no mutations"))
	case r.ExhaustedGrammar:
		fmt.Fprintf(&b, "repair grammar exhausted at tier %d: violations remain\n", r.FinalTier)
	default:
		b.WriteString("iteration budget exhausted: violations remain\n")
	}
	return b.String()
}

func joinOr(names []string, empty string) string {
	if len(names) == 0 {
		return empty
	}
	return strings.Join(names, ", ")
}
