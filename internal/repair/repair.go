// Package repair closes the loop between the model checker and protocol
// generation: counterexample-guided inductive synthesis (CEGIS) over a
// bounded grammar of protogen hardening knobs.
//
// The checker (internal/verify) found real failure windows in the
// generated protocols — most prominently the lost-ack two-generals
// window of the robust full handshake (DESIGN.md §5d): drop the
// accessor's final START fall and the serving process's bounded wait
// expires after the data words arrived but before the commit, while the
// DONE fall its abort path releases is indistinguishable to the
// accessor from a success acknowledgement. Silent corruption, plus a
// stuck-high strobe that leaves the watchdogs cycling drain timeouts
// forever (a bounded-response lasso).
//
// Instead of hand-hardening, Run iterates: verify at the configured
// drop budget, classify each counterexample into a failure mode,
// apply the first applicable unapplied mutation from that mode's
// candidate list, regenerate from a fresh template, re-verify. The loop
// ends when the properties hold (Repaired), the grammar has nothing
// left to offer (ExhaustedGrammar), or the iteration budget runs out.
//
// The loop inherits the checker's determinism: verdicts and violation
// order are byte-identical at any worker count, and classification and
// candidate selection are pure functions of them, so the mutation
// sequence and iteration count are worker-invariant too.
package repair

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/protogen"
	"repro/internal/spec"
	"repro/internal/verify"
)

// Mutation is one member of the bounded repair grammar: a protogen
// hardening knob the loop may switch on.
type Mutation int

// The repair grammar, in canonical order.
const (
	// CommitAck moves the write server's commit into the final word's
	// latch (ack-of-ack commit): the closing handshake acknowledges a
	// commit that already happened, so losing it cannot lose data.
	CommitAck Mutation = iota
	// ReleaseStale lets a server's drain phase release a START strobe
	// stuck high for a full timeout, breaking the watchdog lasso.
	ReleaseStale
	// AckSeq adds a SEQ word-parity line so stale strobes cannot be
	// mistaken for the next word (sequence-numbered acks).
	AckSeq
	// EpochResync pulses an EPOCH line alongside RST so a resync
	// survives the loss of either edge (epoch bits on RST resync).
	EpochResync
	// TurnFlush flushes the half handshake's server-driven START fall
	// before the server re-arms, closing the read-turnaround contention.
	TurnFlush

	numMutations
)

func (m Mutation) String() string {
	switch m {
	case CommitAck:
		return "CommitAck"
	case ReleaseStale:
		return "ReleaseStale"
	case AckSeq:
		return "AckSeq"
	case EpochResync:
		return "EpochResync"
	case TurnFlush:
		return "TurnFlush"
	}
	return fmt.Sprintf("Mutation(%d)", int(m))
}

// Grammar lists every mutation in canonical order.
func Grammar() []Mutation {
	out := make([]Mutation, numMutations)
	for i := range out {
		out[i] = Mutation(i)
	}
	return out
}

// Apply switches the mutation's knob on in the generation config.
func (m Mutation) Apply(c *protogen.Config) {
	switch m {
	case CommitAck:
		c.CommitAck = true
	case ReleaseStale:
		c.ReleaseStale = true
	case AckSeq:
		c.AckSeq = true
	case EpochResync:
		c.EpochResync = true
	case TurnFlush:
		c.TurnFlush = true
	}
}

// Applied reports whether the mutation's knob is already on.
func (m Mutation) Applied(c protogen.Config) bool {
	switch m {
	case CommitAck:
		return c.CommitAck
	case ReleaseStale:
		return c.ReleaseStale
	case AckSeq:
		return c.AckSeq
	case EpochResync:
		return c.EpochResync
	case TurnFlush:
		return c.TurnFlush
	}
	return false
}

// Applicable reports whether applying the mutation to the config yields
// a combination protogen can express (Config.Validate accepts it).
func (m Mutation) Applicable(c protogen.Config) bool {
	m.Apply(&c)
	return c.Validate() == nil
}

// Mode classifies a counterexample's failure mode; each mode has an
// ordered candidate list of grammar mutations targeting it.
type Mode int

// Failure modes.
const (
	// ModeUnknown: no targeted diagnosis; every applicable mutation is a
	// candidate, in grammar order.
	ModeUnknown Mode = iota
	// ModeLostAck: silent corruption under a drop budget on the hardened
	// full handshake — the lost-ack commit race.
	ModeLostAck
	// ModeLasso: a bounded-response cycle in the hardened machinery —
	// watchdogs cycling drain timeouts around a stuck strobe.
	ModeLasso
	// ModeTurnaround: half-handshake driver contention at the read
	// turnaround.
	ModeTurnaround
)

func (m Mode) String() string {
	switch m {
	case ModeLostAck:
		return "lost-ack"
	case ModeLasso:
		return "lasso"
	case ModeTurnaround:
		return "turnaround"
	}
	return "unknown"
}

// Classify diagnoses one violation against the config that generated
// the system it was found on.
func Classify(v *verify.Violation, cfg protogen.Config) Mode {
	robustFull := cfg.Robust && cfg.Protocol == spec.FullHandshake
	switch v.Kind {
	case verify.Corruption:
		if robustFull && v.Cex != nil && len(v.Cex.Drops) > 0 {
			return ModeLostAck
		}
	case verify.Livelock:
		if cfg.Robust {
			return ModeLasso
		}
	case verify.DriverConflict:
		if cfg.Protocol == spec.HalfHandshake {
			return ModeTurnaround
		}
	}
	return ModeUnknown
}

// Candidates returns the mode's mutation candidates in preference
// order. ModeUnknown falls back to the whole grammar.
func Candidates(m Mode) []Mutation {
	switch m {
	case ModeLostAck:
		return []Mutation{CommitAck, AckSeq, EpochResync}
	case ModeLasso:
		return []Mutation{ReleaseStale, EpochResync}
	case ModeTurnaround:
		return []Mutation{TurnFlush}
	}
	return Grammar()
}

// Builder regenerates a refined system from a generation config —
// typically spec.Clone of an unrefined template followed by
// protogen.Generate — returning the system and the abort-counter finals
// keys the delivery check must excuse. Each call must start from a
// fresh template: Generate refines in place.
type Builder func(cfg protogen.Config) (*spec.System, []string, error)

// Config parameterizes the repair loop.
type Config struct {
	// Verify is the per-iteration model-checking budget (drop budget,
	// state bound, workers). AbortVars is overwritten each iteration
	// with the Builder's keys.
	Verify verify.Config
	// Budget bounds verify iterations (initial check included); 0 means
	// DefaultBudget.
	Budget int
}

// DefaultBudget allows the initial check plus one iteration per grammar
// member: the loop applies each mutation at most once, so more
// iterations cannot exist.
const DefaultBudget = int(numMutations) + 1

// IterViolation is one violation observed during an iteration, with its
// diagnosis.
type IterViolation struct {
	Kind    string `json:"kind"`
	Mode    string `json:"mode"`
	Message string `json:"message"`
}

// Iteration records one CEGIS turn for the machine-readable trace.
type Iteration struct {
	Index int `json:"index"`
	// Active lists the mutations in effect for this iteration's
	// generation, in application order.
	Active []string `json:"active,omitempty"`
	// States and Incomplete summarize the verify run.
	States     int  `json:"states"`
	Incomplete bool `json:"incomplete,omitempty"`
	// Clean reports no violations were found (exhaustively so unless
	// Incomplete).
	Clean      bool            `json:"clean"`
	Violations []IterViolation `json:"violations,omitempty"`
	// Classified is the failure mode that drove the mutation choice and
	// Applied the mutation chosen for the next iteration; empty on the
	// final iteration.
	Classified string `json:"classified,omitempty"`
	Applied    string `json:"applied,omitempty"`
}

// Result is the outcome of a repair loop.
type Result struct {
	// Repaired reports the final iteration found no violations within
	// the verify bounds; Exhaustive additionally reports the search was
	// complete, making the verdict a proof rather than a bounded sweep.
	Repaired   bool
	Exhaustive bool
	// ExhaustedGrammar reports the loop stopped because no unapplied
	// applicable mutation targeted the remaining violations.
	ExhaustedGrammar bool
	// Mutations lists the applied mutations in application order.
	Mutations []Mutation
	// Config is the final generation config (base plus Mutations).
	Config protogen.Config
	// System and Report are the final iteration's refined system and
	// verify report.
	System *spec.System
	Report *verify.Report
	// Iterations is the machine-readable repair trace.
	Iterations []Iteration
	// Counterexamples collects every counterexample observed across all
	// iterations, in discovery order (verification fodder: each replays
	// deterministically through the simulator kernels).
	Counterexamples []*verify.Counterexample
}

// Verified reports a fully proven repair: no violations and a complete
// search.
func (r *Result) Verified() bool { return r.Repaired && r.Exhaustive }

// Run executes the CEGIS loop from the base generation config.
func Run(build Builder, base protogen.Config, cfg Config) (*Result, error) {
	budget := cfg.Budget
	if budget <= 0 {
		budget = DefaultBudget
	}
	res := &Result{Config: base}
	cur := base
	for iter := 0; iter < budget; iter++ {
		sys, abortVars, err := build(cur)
		if err != nil {
			return nil, fmt.Errorf("repair: iteration %d: generate: %w", iter, err)
		}
		vcfg := cfg.Verify
		vcfg.AbortVars = abortVars
		rep, err := verify.Check(sys, vcfg)
		if err != nil {
			return nil, fmt.Errorf("repair: iteration %d: verify: %w", iter, err)
		}
		res.System, res.Report, res.Config = sys, rep, cur

		it := Iteration{
			Index:      iter,
			Active:     mutationNames(res.Mutations),
			States:     rep.States,
			Incomplete: rep.Incomplete,
			Clean:      len(rep.Violations) == 0,
		}
		for i := range rep.Violations {
			v := &rep.Violations[i]
			it.Violations = append(it.Violations, IterViolation{
				Kind:    v.Kind.String(),
				Mode:    Classify(v, cur).String(),
				Message: v.Message,
			})
			if v.Cex != nil {
				res.Counterexamples = append(res.Counterexamples, v.Cex)
			}
		}

		if len(rep.Violations) == 0 {
			res.Repaired = true
			res.Exhaustive = !rep.Incomplete
			res.Iterations = append(res.Iterations, it)
			return res, nil
		}

		// Pick the next mutation: first violation (BFS order — the
		// shallowest failure) whose mode still has an unapplied,
		// applicable candidate.
		chosen, mode, found := pick(rep.Violations, cur)
		if !found {
			res.ExhaustedGrammar = true
			res.Iterations = append(res.Iterations, it)
			return res, nil
		}
		it.Classified = mode.String()
		it.Applied = chosen.String()
		res.Iterations = append(res.Iterations, it)
		chosen.Apply(&cur)
		res.Mutations = append(res.Mutations, chosen)
	}
	return res, nil
}

// pick scans violations in report order for the first with an
// unapplied, applicable candidate mutation.
func pick(violations []verify.Violation, cur protogen.Config) (Mutation, Mode, bool) {
	for i := range violations {
		mode := Classify(&violations[i], cur)
		for _, cand := range Candidates(mode) {
			if cand.Applied(cur) || !cand.Applicable(cur) {
				continue
			}
			return cand, mode, true
		}
	}
	return 0, ModeUnknown, false
}

func mutationNames(ms []Mutation) []string {
	if len(ms) == 0 {
		return nil
	}
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.String()
	}
	return out
}

// TraceJSON renders the iteration trace as indented JSON — the
// machine-readable repair log.
func (r *Result) TraceJSON() ([]byte, error) {
	return json.MarshalIndent(struct {
		Repaired         bool        `json:"repaired"`
		Exhaustive       bool        `json:"exhaustive"`
		ExhaustedGrammar bool        `json:"exhausted_grammar,omitempty"`
		Mutations        []string    `json:"mutations"`
		Iterations       []Iteration `json:"iterations"`
	}{
		Repaired:         r.Repaired,
		Exhaustive:       r.Exhaustive,
		ExhaustedGrammar: r.ExhaustedGrammar,
		Mutations:        mutationNames(r.Mutations),
		Iterations:       r.Iterations,
	}, "", "  ")
}

// Format renders the human-readable iteration log.
func (r *Result) Format() string {
	var b strings.Builder
	for _, it := range r.Iterations {
		label := "base"
		if len(it.Active) > 0 {
			label = "+" + strings.Join(it.Active, " +")
		}
		switch {
		case it.Clean && !it.Incomplete:
			fmt.Fprintf(&b, "iter %d [%s]: clean — %d states, exhaustive\n", it.Index, label, it.States)
		case it.Clean:
			fmt.Fprintf(&b, "iter %d [%s]: no violation within bounds — %d states, incomplete\n", it.Index, label, it.States)
		default:
			kinds := make([]string, len(it.Violations))
			for i, v := range it.Violations {
				kinds[i] = v.Kind
			}
			fmt.Fprintf(&b, "iter %d [%s]: %d violation(s) [%s] — %d states\n",
				it.Index, label, len(it.Violations), strings.Join(kinds, ", "), it.States)
			if it.Applied != "" {
				fmt.Fprintf(&b, "        classified %s -> apply %s\n", it.Classified, it.Applied)
			}
		}
	}
	switch {
	case r.Verified():
		fmt.Fprintf(&b, "repaired with %s: properties hold exhaustively\n", joinOr(mutationNames(r.Mutations), "no mutations"))
	case r.Repaired:
		fmt.Fprintf(&b, "repaired with %s: no violation within bounds (incomplete search)\n", joinOr(mutationNames(r.Mutations), "no mutations"))
	case r.ExhaustedGrammar:
		b.WriteString("repair grammar exhausted: violations remain\n")
	default:
		b.WriteString("iteration budget exhausted: violations remain\n")
	}
	return b.String()
}

func joinOr(names []string, empty string) string {
	if len(names) == 0 {
		return empty
	}
	return strings.Join(names, ", ")
}
