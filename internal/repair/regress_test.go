package repair

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/protogen"
	"repro/internal/sim"
)

// The pinned lost-ack counterexample, frozen from the repair loop's
// first iteration on the hardened PQSolo workload (verify at drop
// budget 1): dropping P's third START transition — the fall that
// acknowledges the write's final word — lands in the serving process's
// commit window. The schedule priority is the trace's process order.
//
// These constants are the regression contract: if protogen's event
// ordering shifts they must be re-derived from a fresh counterexample
// (Counterexample.Format prints the drop ordinal and process order).
var (
	pinnedDrop = fault.Fault{
		Class:       fault.DropEvent,
		Signal:      "B",
		Field:       "START",
		AfterEvents: 3,
	}
	pinnedOrder = []string{"Xproc", "P", "MEMproc"}
)

const (
	pinnedMaxClocks = 10000
	corruptedX      = "0000000000000000"
	goldenX         = "0000000000100000"
	abortKey        = "comp1.B_ABORTS"
)

// finalStr renders a final value with the bit-vector quoting stripped.
func finalStr(res *sim.Result, key string) string {
	return strings.Trim(fmt.Sprint(res.Finals[key]), `"`)
}

// replayPinned regenerates PQSolo under cfg and replays the pinned
// counterexample through the simulator.
func replayPinned(t *testing.T, cfg protogen.Config) *sim.Result {
	t.Helper()
	sys, _, err := pqSoloBuilder()(cfg)
	if err != nil {
		t.Fatal(err)
	}
	order := append([]string(nil), pinnedOrder...)
	scfg := sim.Config{
		MaxClocks: pinnedMaxClocks,
		Schedule:  func(now int64, runnable []string) []string { return order },
	}
	fault.NewInjector([]fault.Fault{pinnedDrop}).Attach(&scfg)
	s, err := sim.New(sys, scfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("pinned replay did not terminate: %v", err)
	}
	return res
}

// TestRegressLostAckBeforeRepair pins the defect: on the unrepaired
// hardened protocol the dropped ack silently corrupts — X never
// receives its value, yet the abort counter stays at zero, so nothing
// downstream can know the delivery failed.
func TestRegressLostAckBeforeRepair(t *testing.T) {
	res := replayPinned(t, robustBase())
	if got := finalStr(res, "comp2.X"); got != corruptedX {
		t.Fatalf("comp2.X = %s, pinned corruption expects %s (counterexample drifted — re-derive the pinned fault)", got, corruptedX)
	}
	if got := finalStr(res, abortKey); got != "0" {
		t.Fatalf("%s = %s: the window is only dangerous because the failure is silent", abortKey, got)
	}
}

// TestRegressLostAckAfterRepair replays the identical fault through the
// repaired protocol: the commit now precedes the ack it acknowledges,
// so the same drop costs at most a retransmission and X arrives intact.
func TestRegressLostAckAfterRepair(t *testing.T) {
	cfg := robustBase()
	cfg.CommitAck = true
	cfg.ReleaseStale = true
	res := replayPinned(t, cfg)
	if got := finalStr(res, "comp2.X"); got != goldenX {
		t.Fatalf("comp2.X = %s after repair, want %s:\nfinals: %v", got, goldenX, res.Finals)
	}
}

// TestRegressPinnedMatchesModel guards the pinned constants against
// drift: the repair loop's first counterexample must still be the drop
// of B.START's fourth transition with the pinned process order, and its
// own replay must reproduce the corruption the model predicted.
func TestRegressPinnedMatchesModel(t *testing.T) {
	res := runLostAck(t)
	if len(res.Counterexamples) == 0 {
		t.Fatal("no counterexamples")
	}
	c := res.Counterexamples[0]
	if len(c.Drops) != 1 || c.Drops[0] != pinnedDrop {
		t.Fatalf("first counterexample drops %+v, pinned %+v", c.Drops, pinnedDrop)
	}
	var order []string
	seen := map[string]bool{}
	for _, s := range c.Steps {
		if s.Proc != "" && !seen[s.Proc] {
			seen[s.Proc] = true
			order = append(order, s.Proc)
		}
	}
	if fmt.Sprint(order) != fmt.Sprint(pinnedOrder) {
		t.Fatalf("counterexample process order %v, pinned %v", order, pinnedOrder)
	}
	rr, err := c.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Reproduced {
		t.Fatalf("model counterexample did not reproduce in the simulator: %s", rr.Outcome)
	}
}
