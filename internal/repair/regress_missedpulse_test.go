package repair

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/protogen"
	"repro/internal/sim"
	"repro/internal/spec"
)

// The pinned missed-pulse counterexample, frozen from the escalating
// repair run on the half-handshake PQSolo workload (verify at drop
// budget 1, after TurnFlush — the point where tier 1 is exhausted):
// dropping B.START's fifteenth transition erases a strobe pulse the
// half handshake never re-raises, so the MEM write silently vanishes.
// No local knob can fix this — only the tier-3 protocol reselection
// closes the window, which is exactly what the escalation ladder is
// for.
//
// These constants are the regression contract: if protogen's event
// ordering shifts they must be re-derived from a fresh counterexample
// (Counterexample.Format prints the drop ordinal and process order).
var (
	pinnedMissedDrop = fault.Fault{
		Class:       fault.DropEvent,
		Signal:      "B",
		Field:       "START",
		AfterEvents: 14,
	}
	pinnedMissedOrder = []string{"P", "Xproc", "MEMproc"}
)

// deliveredMEMWord is the one non-zero word the golden run writes into
// comp2.MEM; its presence in the final memory image is the delivery
// witness.
const deliveredMEMWord = "0000000000100111"

// halfFlushedBase is the configuration at the moment of escalation:
// the half handshake with its only applicable tier-1 knob applied.
func halfFlushedBase() protogen.Config {
	return protogen.Config{Protocol: spec.HalfHandshake, TurnFlush: true}
}

// escalatedConfig is halfFlushedBase after the full repair: the tier-3
// reselection (which clears TurnFlush and installs the escalation
// timers) plus the two tier-1 knobs the reselected protocol then
// needed.
func escalatedConfig() protogen.Config {
	cfg := halfFlushedBase()
	SelectFullHandshake.Apply(&cfg)
	CommitAck.Apply(&cfg)
	ReleaseStale.Apply(&cfg)
	return cfg
}

// replayMissedPulse regenerates PQSolo under cfg and replays the
// pinned missed-pulse counterexample through the simulator.
func replayMissedPulse(t *testing.T, cfg protogen.Config) *sim.Result {
	t.Helper()
	sys, _, err := pqSoloBuilder()(cfg)
	if err != nil {
		t.Fatal(err)
	}
	order := append([]string(nil), pinnedMissedOrder...)
	scfg := sim.Config{
		MaxClocks: pinnedMaxClocks,
		Schedule:  func(now int64, runnable []string) []string { return order },
	}
	fault.NewInjector([]fault.Fault{pinnedMissedDrop}).Attach(&scfg)
	s, err := sim.New(sys, scfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("pinned replay did not terminate: %v", err)
	}
	return res
}

// TestRegressMissedPulseBeforeEscalation pins the defect: on the
// flushed half handshake the dropped strobe silently loses the MEM
// write — the run terminates as if nothing happened, but the word
// never arrives.
func TestRegressMissedPulseBeforeEscalation(t *testing.T) {
	res := replayMissedPulse(t, halfFlushedBase())
	if mem := fmt.Sprint(res.Finals["comp2.MEM"]); strings.Contains(mem, deliveredMEMWord) {
		t.Fatalf("comp2.MEM contains %s on the unescalated protocol (counterexample drifted — re-derive the pinned fault):\n%s", deliveredMEMWord, mem)
	}
}

// TestRegressMissedPulseAfterEscalation replays the identical fault
// through the escalated protocol: the full handshake's timeout/retry
// machinery re-raises the lost strobe, so the same drop costs at most
// a retransmission and the word lands in MEM.
func TestRegressMissedPulseAfterEscalation(t *testing.T) {
	res := replayMissedPulse(t, escalatedConfig())
	if mem := fmt.Sprint(res.Finals["comp2.MEM"]); !strings.Contains(mem, deliveredMEMWord) {
		t.Fatalf("comp2.MEM missing %s after escalation:\n%s", deliveredMEMWord, mem)
	}
}

// TestRegressMissedPinnedMatchesModel guards the pinned constants
// against drift: the escalating run's flushed-half iteration must
// still produce a data-corruption counterexample with the pinned drop
// and process order, and that counterexample's own replay must
// reproduce in the simulator.
func TestRegressMissedPinnedMatchesModel(t *testing.T) {
	res := runEscalation(t)
	for _, c := range res.Counterexamples {
		if len(c.Drops) != 1 || c.Drops[0] != pinnedMissedDrop {
			continue
		}
		var order []string
		seen := map[string]bool{}
		for _, s := range c.Steps {
			if s.Proc != "" && !seen[s.Proc] {
				seen[s.Proc] = true
				order = append(order, s.Proc)
			}
		}
		if fmt.Sprint(order) != fmt.Sprint(pinnedMissedOrder) {
			t.Fatalf("counterexample process order %v, pinned %v", order, pinnedMissedOrder)
		}
		rr, err := c.Replay()
		if err != nil {
			t.Fatal(err)
		}
		if !rr.Reproduced {
			t.Fatalf("model counterexample did not reproduce in the simulator: %s", rr.Outcome)
		}
		return
	}
	t.Fatalf("no counterexample with the pinned drop %+v (counterexample drifted — re-derive the pinned fault)", pinnedMissedDrop)
}
