package repair

import (
	"bytes"
	"runtime"
	"sync"
	"testing"

	"repro/internal/estimate"
	"repro/internal/fault"
	"repro/internal/protogen"
	"repro/internal/spec"
	"repro/internal/verify"
	"repro/internal/workloads"
)

// builderFor returns a Builder regenerating from a fresh clone of the
// given unrefined template on every call (protogen refines in place).
func builderFor(template *spec.System) Builder {
	return func(cfg protogen.Config) (*spec.System, []string, error) {
		sys := spec.Clone(template)
		ref, err := protogen.Generate(sys, sys.Buses[0], cfg)
		if err != nil {
			return nil, nil, err
		}
		return sys, ref.AbortKeys(), nil
	}
}

func pqSoloBuilder() Builder {
	sys, _ := workloads.PQSolo()
	return builderFor(sys)
}

// robustBase mirrors the verify test suite's hardened configuration:
// small timers keep the state space tight without changing the
// protocol's shape.
func robustBase() protogen.Config {
	return protogen.Config{
		Protocol: spec.FullHandshake, Robust: true,
		TimeoutClocks: 8, MaxRetries: 2,
	}
}

// runLostAck runs (once, cached) the headline repair: hardened PQSolo
// at drop budget 1. Several tests consume the same deterministic run.
func runLostAck(t *testing.T) *Result {
	t.Helper()
	lostAckOnce.Do(func() {
		lostAckRes, lostAckErr = Run(pqSoloBuilder(), robustBase(), Config{
			Verify: verify.Config{MaxDrops: 1},
		})
	})
	if lostAckErr != nil {
		t.Fatal(lostAckErr)
	}
	return lostAckRes
}

var (
	lostAckOnce sync.Once
	lostAckRes  *Result
	lostAckErr  error
)

// TestRepairLostAckWindow is the headline: the robust protocol silently
// corrupts at drop budget 1 (DESIGN.md §5d); the CEGIS loop must
// converge to an exhaustively clean variant, and the path there is
// forced — CommitAck alone leaves the watchdog lasso, ReleaseStale
// alone leaves the corruption — so the loop genuinely needs both.
func TestRepairLostAckWindow(t *testing.T) {
	res := runLostAck(t)
	if !res.Verified() {
		t.Fatalf("repair did not converge to a proven-clean variant:\n%s", res.Format())
	}
	if len(res.Mutations) != 2 || res.Mutations[0] != CommitAck || res.Mutations[1] != ReleaseStale {
		t.Fatalf("expected the forced two-step repair [CommitAck ReleaseStale], got %v", res.Mutations)
	}
	if len(res.Iterations) != 3 {
		t.Fatalf("expected 3 iterations (base, +CommitAck, +both), got %d:\n%s", len(res.Iterations), res.Format())
	}
	if !res.Config.CommitAck || !res.Config.ReleaseStale {
		t.Fatalf("final config missing applied knobs: %+v", res.Config)
	}
	// Iteration 0 must diagnose the corruption as the lost-ack mode.
	it0 := res.Iterations[0]
	if it0.Clean || it0.Applied != "CommitAck" {
		t.Fatalf("iteration 0 should find violations and apply CommitAck: %+v", it0)
	}
	foundLostAck := false
	for _, v := range it0.Violations {
		if v.Mode == "lost-ack" {
			foundLostAck = true
		}
	}
	if !foundLostAck {
		t.Fatalf("iteration 0 violations not classified lost-ack: %+v", it0.Violations)
	}
	// Iteration 1: the residual lasso.
	it1 := res.Iterations[1]
	if it1.Clean || it1.Classified != "lasso" || it1.Applied != "ReleaseStale" {
		t.Fatalf("iteration 1 should classify the lasso and apply ReleaseStale: %+v", it1)
	}
	// Final iteration clean, exhaustive, with a sane state count.
	last := res.Iterations[2]
	if !last.Clean || last.Incomplete || last.States < 1000 {
		t.Fatalf("final iteration not exhaustively clean: %+v", last)
	}
	// Every pre-repair counterexample was collected for replay.
	if len(res.Counterexamples) == 0 {
		t.Fatal("no counterexamples collected across iterations")
	}
	if _, err := res.TraceJSON(); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
}

// TestRepairTurnaroundConflict: the half handshake's read-turnaround
// driver contention (a fault-free finding) classifies as turnaround and
// TurnFlush eliminates it. With the ladder capped at tier 1 (PR 7's
// grammar) the repair is honest rather than total: with the contention
// gone the checker exposes the unacknowledged pulse the half handshake
// can still miss — a delivery hazard no local knob fixes (the full
// handshake's ack is the fix) — and the loop must report the grammar
// exhausted instead of claiming success. TestRepairEscalatesHalfPQ
// covers the uncapped ladder, where protocol selection closes exactly
// this hazard.
func TestRepairTurnaroundConflict(t *testing.T) {
	sys, _ := workloads.PQ()
	res, err := Run(builderFor(sys), protogen.Config{Protocol: spec.HalfHandshake}, Config{
		Verify:  verify.Config{},
		MaxTier: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mutations) != 1 || res.Mutations[0] != TurnFlush {
		t.Fatalf("expected the single repair step [TurnFlush], got %v:\n%s", res.Mutations, res.Format())
	}
	it0 := res.Iterations[0]
	if it0.Classified != "turnaround" || it0.Applied != "TurnFlush" {
		t.Fatalf("contention not classified turnaround: %+v", it0)
	}
	conflicts := 0
	for _, v := range it0.Violations {
		if v.Kind == verify.DriverConflict.String() {
			conflicts++
		}
	}
	if conflicts == 0 {
		t.Fatalf("base iteration found no driver conflict: %+v", it0.Violations)
	}
	// After TurnFlush every driver conflict is gone; what remains is the
	// missed-pulse delivery hazard, outside the grammar.
	last := res.Iterations[len(res.Iterations)-1]
	for _, v := range last.Violations {
		if v.Kind == verify.DriverConflict.String() {
			t.Fatalf("driver conflict survived TurnFlush: %+v", last.Violations)
		}
	}
	if res.Repaired || !res.ExhaustedGrammar {
		t.Fatalf("loop should report grammar exhaustion on the residual hazard:\n%s", res.Format())
	}
	if res.FinalTier != 1 {
		t.Fatalf("capped ladder escalated to tier %d", res.FinalTier)
	}
}

// TestRepairEscalatesHalfPQ is this PR's headline: the same half
// handshake that TestRepairTurnaroundConflict leaves in honest
// ExhaustedGrammar now repairs end-to-end under the full escalation
// ladder. TurnFlush (tier 1) removes the turnaround contention; the
// residual missed-pulse corruption has no tier-1 or tier-2 candidate,
// so the loop escalates to tier 3 and SelectFullHandshake swaps the
// protocol for the robust full handshake — after which the familiar
// lost-ack window and watchdog lasso surface and the tier-1 knobs
// finish the job. The final variant is the configuration PR 7 proved:
// exhaustively clean at drop budget 1.
func TestRepairEscalatesHalfPQ(t *testing.T) {
	res := runEscalation(t)
	if !res.Verified() {
		t.Fatalf("escalating repair did not converge to a proven-clean variant:\n%s", res.Format())
	}
	want := []Mutation{TurnFlush, SelectFullHandshake, CommitAck, ReleaseStale}
	if len(res.Mutations) != len(want) {
		t.Fatalf("mutations = %v, want %v:\n%s", res.Mutations, want, res.Format())
	}
	for i, m := range want {
		if res.Mutations[i] != m {
			t.Fatalf("mutations = %v, want %v", res.Mutations, want)
		}
	}
	if res.FinalTier != 3 {
		t.Fatalf("FinalTier = %d, want 3", res.FinalTier)
	}
	// The escalating iteration carries the tier jump and the priced
	// protocol swap.
	var esc *Iteration
	for i := range res.Iterations {
		if res.Iterations[i].Applied == SelectFullHandshake.String() {
			esc = &res.Iterations[i]
		}
	}
	if esc == nil {
		t.Fatalf("no iteration applied SelectFullHandshake:\n%s", res.Format())
	}
	if !esc.Escalated || esc.Tier != 3 {
		t.Fatalf("selection iteration not marked as a tier-3 escalation: %+v", esc)
	}
	if esc.Cost == nil {
		t.Fatalf("selection iteration carries no escalation cost: %+v", esc)
	}
	c := esc.Cost
	if c.From != spec.HalfHandshake.String() || c.To != spec.FullHandshake.String() {
		t.Fatalf("cost delta names %s -> %s, want half -> full handshake", c.From, c.To)
	}
	// The full handshake costs strictly more wires and gates — that is
	// the price the trace exists to report.
	if c.PinsTo <= c.PinsFrom || c.AreaTo <= c.AreaFrom {
		t.Fatalf("escalation cost not strictly increasing: %+v", c)
	}
	if c.WorstExecFrom <= 0 || c.WorstExecTo <= 0 {
		t.Fatalf("cost model with estimator reported no exec times: %+v", c)
	}
	// The selected config is the 8/2 robust full handshake PR 7 proved,
	// plus the tier-1 repairs; TurnFlush was cleared with the protocol
	// that needed it.
	fc := res.Config
	if fc.Protocol != spec.FullHandshake || !fc.Robust ||
		fc.TimeoutClocks != EscalateTimeoutClocks || fc.MaxRetries != EscalateMaxRetries {
		t.Fatalf("escalated config is not the 8/2 robust full handshake: %+v", fc)
	}
	if fc.TurnFlush {
		t.Fatalf("TurnFlush survived the protocol swap: %+v", fc)
	}
	if !fc.CommitAck || !fc.ReleaseStale {
		t.Fatalf("tier-1 repairs missing from the escalated config: %+v", fc)
	}
	// Exhaustively clean, and the counterexample pool covers the
	// pre-escalation hazard for the regression replays.
	last := res.Iterations[len(res.Iterations)-1]
	if !last.Clean || last.Incomplete || last.States < 1000 {
		t.Fatalf("final iteration not exhaustively clean: %+v", last)
	}
	if len(res.Counterexamples) == 0 {
		t.Fatal("no counterexamples collected across iterations")
	}
}

// runEscalation runs (once, cached) the escalating repair: half
// handshake PQSolo at drop budget 1 under the full ladder, with a cost
// model priced off the pre-refinement channels.
func runEscalation(t *testing.T) *Result {
	t.Helper()
	escalationOnce.Do(func() {
		sys, bus := workloads.PQSolo()
		escalationRes, escalationErr = Run(builderFor(sys), protogen.Config{Protocol: spec.HalfHandshake}, Config{
			Verify: verify.Config{MaxDrops: 1},
			Cost: &CostModel{
				Channels: bus.Channels,
				Width:    8,
				Est:      estimate.New(sys.Channels),
			},
		})
	})
	if escalationErr != nil {
		t.Fatal(escalationErr)
	}
	return escalationRes
}

var (
	escalationOnce sync.Once
	escalationRes  *Result
	escalationErr  error
)

// TestRepairGrammarExhausted: the baseline (non-robust) full handshake
// deadlocks under a 1-drop budget; no grammar member is applicable
// without Robust, so the loop must stop immediately and say so.
func TestRepairGrammarExhausted(t *testing.T) {
	res, err := Run(pqSoloBuilder(), protogen.Config{Protocol: spec.FullHandshake}, Config{
		Verify: verify.Config{MaxDrops: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Repaired || !res.ExhaustedGrammar {
		t.Fatalf("expected grammar exhaustion on the unhardened baseline:\n%s", res.Format())
	}
	if len(res.Iterations) != 1 || len(res.Mutations) != 0 {
		t.Fatalf("expected a single iteration with no mutations, got %d/%v", len(res.Iterations), res.Mutations)
	}
}

// TestRepairCleanBaseNoIterations: a system with nothing wrong repairs
// trivially in one iteration with no mutations.
func TestRepairCleanBaseNoIterations(t *testing.T) {
	res, err := Run(pqSoloBuilder(), protogen.Config{Protocol: spec.FullHandshake}, Config{
		Verify: verify.Config{}, // no drop budget: fault-free baseline is clean
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified() || len(res.Mutations) != 0 || len(res.Iterations) != 1 {
		t.Fatalf("fault-free baseline should verify clean untouched:\n%s", res.Format())
	}
}

// TestRepairWorkerInvariance pins the loop's determinism: the repaired
// spec and the full iteration trace are byte-identical at any verify
// worker count, matching the invariance guarantees of verify and the
// fault campaigns. The escalating scenario covers the ladder itself —
// tier escalation and protocol selection are pure functions of the
// (worker-invariant) verify reports, so the whole trace including the
// cost delta must not move.
func TestRepairWorkerInvariance(t *testing.T) {
	type digest struct {
		trace    string
		format   string
		spec     string
		states   int
		iters    int
		repaired bool
		tier     int
	}
	run := func(base protogen.Config, workers int) digest {
		res, err := Run(pqSoloBuilder(), base, Config{
			Verify: verify.Config{MaxDrops: 1, Workers: workers},
		})
		if err != nil {
			t.Fatal(err)
		}
		tj, err := res.TraceJSON()
		if err != nil {
			t.Fatal(err)
		}
		var specText bytes.Buffer
		for _, b := range res.System.Behaviors() {
			specText.WriteString(b.Name + "\n" + spec.FormatStmts(b.Body, "  "))
			for _, p := range b.Procedures {
				specText.WriteString(p.Name + "\n" + spec.FormatStmts(p.Body, "  "))
			}
		}
		return digest{
			trace: string(tj), format: res.Format(), spec: specText.String(),
			states: res.Report.States, iters: len(res.Iterations), repaired: res.Repaired,
			tier: res.FinalTier,
		}
	}
	scenarios := []struct {
		name string
		base protogen.Config
	}{
		{"lost-ack", robustBase()},
		{"escalating", protogen.Config{Protocol: spec.HalfHandshake}},
	}
	for _, sc := range scenarios {
		base := run(sc.base, 1)
		for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
			got := run(sc.base, workers)
			if got != base {
				t.Fatalf("%s repair loop not worker-invariant at %d workers:\nbase: %+v\ngot:  %+v", sc.name, workers, base, got)
			}
		}
	}
}

// TestClassify pins the classifier's mode table.
func TestClassify(t *testing.T) {
	robust := robustBase()
	half := protogen.Config{Protocol: spec.HalfHandshake}
	baseline := protogen.Config{Protocol: spec.FullHandshake}
	type tcase struct {
		name string
		v    verify.Violation
		cfg  protogen.Config
		want Mode
	}
	var cases []tcase
	arbFull := baseline
	arbFull.Arbitrate = true
	arbHalf := half
	arbHalf.Arbitrate = true
	dropCex := &verify.Counterexample{Drops: []fault.Fault{{Class: fault.DropEvent}}}
	cases = append(cases,
		tcase{"livelock-robust", verify.Violation{Kind: verify.Livelock}, robust, ModeLasso},
		tcase{"livelock-baseline", verify.Violation{Kind: verify.Livelock}, baseline, ModeUnknown},
		tcase{"conflict-half", verify.Violation{Kind: verify.DriverConflict}, half, ModeTurnaround},
		tcase{"conflict-full", verify.Violation{Kind: verify.DriverConflict}, baseline, ModeUnknown},
		tcase{"deadlock", verify.Violation{Kind: verify.Deadlock}, robust, ModeUnknown},
		// Corruption without a dropped transition (no cex) stays unknown:
		// the lost-ack diagnosis is specifically about a lost strobe.
		tcase{"corruption-no-drop", verify.Violation{Kind: verify.Corruption}, robust, ModeUnknown},
		// Arbitration-shaped conflicts: a driver conflict on an arbitrated
		// bus diagnoses to the grant machinery regardless of protocol —
		// tier-2 mutations are chosen by diagnosis, not grammar position.
		tcase{"conflict-arb-full", verify.Violation{Kind: verify.DriverConflict}, arbFull, ModeArbitration},
		tcase{"conflict-arb-half", verify.Violation{Kind: verify.DriverConflict}, arbHalf, ModeArbitration},
		// The missed pulse: a drop-provoked corruption or deadlock on the
		// half handshake, whose only fix is protocol selection.
		tcase{"corruption-drop-half", verify.Violation{Kind: verify.Corruption, Cex: dropCex}, half, ModeMissedPulse},
		tcase{"deadlock-drop-half", verify.Violation{Kind: verify.Deadlock, Cex: dropCex}, half, ModeMissedPulse},
		tcase{"deadlock-no-drop-half", verify.Violation{Kind: verify.Deadlock}, half, ModeUnknown},
		// On the robust full handshake the same drop-provoked corruption
		// stays the lost-ack diagnosis.
		tcase{"corruption-drop-robust", verify.Violation{Kind: verify.Corruption, Cex: dropCex}, robust, ModeLostAck},
	)
	for _, tc := range cases {
		if got := Classify(&tc.v, tc.cfg); got != tc.want {
			t.Errorf("%s: Classify = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestMutationKnobs pins Apply/Applied/Applicable over the grammar.
func TestMutationKnobs(t *testing.T) {
	robust := robustBase()
	half := protogen.Config{Protocol: spec.HalfHandshake}
	for _, m := range Grammar() {
		if m == SelectFullHandshake {
			// Protocol selection is satisfied, not "off", on a robust
			// full-handshake base: the full handshake is already the
			// selected protocol, so the loop must never pick it there.
			if !m.Applied(robust) {
				t.Errorf("%s not already satisfied on the robust full handshake", m)
			}
			continue
		}
		if m.Applied(robust) {
			t.Errorf("%s applied on a fresh config", m)
		}
		c := robust
		c.Arbitrate = true // admits the tier-2 knobs; harmless elsewhere
		m.Apply(&c)
		if !m.Applied(c) {
			t.Errorf("%s not applied after Apply", m)
		}
	}
	// Applicability split: the four full-handshake knobs on robust-full,
	// TurnFlush on half.
	for _, m := range []Mutation{CommitAck, ReleaseStale, AckSeq, EpochResync} {
		if !m.Applicable(robust) {
			t.Errorf("%s should be applicable on robust full handshake", m)
		}
		if m.Applicable(half) {
			t.Errorf("%s should not be applicable on the half handshake", m)
		}
	}
	if TurnFlush.Applicable(robust) {
		t.Error("TurnFlush should not be applicable on the full handshake")
	}
	if !TurnFlush.Applicable(half) {
		t.Error("TurnFlush should be applicable on the half handshake")
	}
	// Tier-2 arbitration knobs need an arbitrated bus.
	arb := robust
	arb.Arbitrate = true
	arbHalf := half
	arbHalf.Arbitrate = true
	for _, m := range []Mutation{GrantHold, BusPark} {
		if m.Applicable(robust) || m.Applicable(half) {
			t.Errorf("%s should not be applicable without Arbitrate", m)
		}
		if !m.Applicable(arb) || !m.Applicable(arbHalf) {
			t.Errorf("%s should be applicable on arbitrated buses", m)
		}
		if m.Tier() != 2 {
			t.Errorf("%s tier = %d, want 2", m, m.Tier())
		}
	}
	// Protocol selection: only the half handshake escalates, and the
	// result is the 8/2 robust full handshake with TurnFlush cleared.
	if SelectFullHandshake.Tier() != 3 {
		t.Errorf("SelectFullHandshake tier = %d, want 3", SelectFullHandshake.Tier())
	}
	if SelectFullHandshake.Applicable(robust) {
		t.Error("SelectFullHandshake should not be applicable when the full handshake is already selected")
	}
	if !SelectFullHandshake.Applicable(half) {
		t.Error("SelectFullHandshake should be applicable on the half handshake")
	}
	sel := half
	sel.TurnFlush = true
	SelectFullHandshake.Apply(&sel)
	if sel.Protocol != spec.FullHandshake || !sel.Robust || sel.TurnFlush {
		t.Fatalf("escalated config malformed: %+v", sel)
	}
	if sel.TimeoutClocks != EscalateTimeoutClocks || sel.MaxRetries != EscalateMaxRetries {
		t.Fatalf("escalation did not default the 8/2 timers: %+v", sel)
	}
	if err := sel.Validate(); err != nil {
		t.Fatalf("escalated config does not validate: %v", err)
	}
	// Pre-set timers survive the swap.
	timed := protogen.Config{Protocol: spec.HalfHandshake, Robust: true, TimeoutClocks: 12}
	SelectFullHandshake.Apply(&timed)
	if timed.TimeoutClocks != 12 || timed.MaxRetries != EscalateMaxRetries {
		t.Fatalf("escalation clobbered preset timers: %+v", timed)
	}
}
