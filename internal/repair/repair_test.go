package repair

import (
	"bytes"
	"runtime"
	"sync"
	"testing"

	"repro/internal/protogen"
	"repro/internal/spec"
	"repro/internal/verify"
	"repro/internal/workloads"
)

// builderFor returns a Builder regenerating from a fresh clone of the
// given unrefined template on every call (protogen refines in place).
func builderFor(template *spec.System) Builder {
	return func(cfg protogen.Config) (*spec.System, []string, error) {
		sys := spec.Clone(template)
		ref, err := protogen.Generate(sys, sys.Buses[0], cfg)
		if err != nil {
			return nil, nil, err
		}
		return sys, ref.AbortKeys(), nil
	}
}

func pqSoloBuilder() Builder {
	sys, _ := workloads.PQSolo()
	return builderFor(sys)
}

// robustBase mirrors the verify test suite's hardened configuration:
// small timers keep the state space tight without changing the
// protocol's shape.
func robustBase() protogen.Config {
	return protogen.Config{
		Protocol: spec.FullHandshake, Robust: true,
		TimeoutClocks: 8, MaxRetries: 2,
	}
}

// runLostAck runs (once, cached) the headline repair: hardened PQSolo
// at drop budget 1. Several tests consume the same deterministic run.
func runLostAck(t *testing.T) *Result {
	t.Helper()
	lostAckOnce.Do(func() {
		lostAckRes, lostAckErr = Run(pqSoloBuilder(), robustBase(), Config{
			Verify: verify.Config{MaxDrops: 1},
		})
	})
	if lostAckErr != nil {
		t.Fatal(lostAckErr)
	}
	return lostAckRes
}

var (
	lostAckOnce sync.Once
	lostAckRes  *Result
	lostAckErr  error
)

// TestRepairLostAckWindow is the headline: the robust protocol silently
// corrupts at drop budget 1 (DESIGN.md §5d); the CEGIS loop must
// converge to an exhaustively clean variant, and the path there is
// forced — CommitAck alone leaves the watchdog lasso, ReleaseStale
// alone leaves the corruption — so the loop genuinely needs both.
func TestRepairLostAckWindow(t *testing.T) {
	res := runLostAck(t)
	if !res.Verified() {
		t.Fatalf("repair did not converge to a proven-clean variant:\n%s", res.Format())
	}
	if len(res.Mutations) != 2 || res.Mutations[0] != CommitAck || res.Mutations[1] != ReleaseStale {
		t.Fatalf("expected the forced two-step repair [CommitAck ReleaseStale], got %v", res.Mutations)
	}
	if len(res.Iterations) != 3 {
		t.Fatalf("expected 3 iterations (base, +CommitAck, +both), got %d:\n%s", len(res.Iterations), res.Format())
	}
	if !res.Config.CommitAck || !res.Config.ReleaseStale {
		t.Fatalf("final config missing applied knobs: %+v", res.Config)
	}
	// Iteration 0 must diagnose the corruption as the lost-ack mode.
	it0 := res.Iterations[0]
	if it0.Clean || it0.Applied != "CommitAck" {
		t.Fatalf("iteration 0 should find violations and apply CommitAck: %+v", it0)
	}
	foundLostAck := false
	for _, v := range it0.Violations {
		if v.Mode == "lost-ack" {
			foundLostAck = true
		}
	}
	if !foundLostAck {
		t.Fatalf("iteration 0 violations not classified lost-ack: %+v", it0.Violations)
	}
	// Iteration 1: the residual lasso.
	it1 := res.Iterations[1]
	if it1.Clean || it1.Classified != "lasso" || it1.Applied != "ReleaseStale" {
		t.Fatalf("iteration 1 should classify the lasso and apply ReleaseStale: %+v", it1)
	}
	// Final iteration clean, exhaustive, with a sane state count.
	last := res.Iterations[2]
	if !last.Clean || last.Incomplete || last.States < 1000 {
		t.Fatalf("final iteration not exhaustively clean: %+v", last)
	}
	// Every pre-repair counterexample was collected for replay.
	if len(res.Counterexamples) == 0 {
		t.Fatal("no counterexamples collected across iterations")
	}
	if _, err := res.TraceJSON(); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
}

// TestRepairTurnaroundConflict: the half handshake's read-turnaround
// driver contention (a fault-free finding) classifies as turnaround and
// TurnFlush eliminates it. The repair is honest rather than total: with
// the contention gone the checker exposes the unacknowledged pulse the
// half handshake can still miss — a delivery hazard no knob fixes
// (the full handshake's ack is the fix) — and the loop must report the
// grammar exhausted instead of claiming success.
func TestRepairTurnaroundConflict(t *testing.T) {
	sys, _ := workloads.PQ()
	res, err := Run(builderFor(sys), protogen.Config{Protocol: spec.HalfHandshake}, Config{
		Verify: verify.Config{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mutations) != 1 || res.Mutations[0] != TurnFlush {
		t.Fatalf("expected the single repair step [TurnFlush], got %v:\n%s", res.Mutations, res.Format())
	}
	it0 := res.Iterations[0]
	if it0.Classified != "turnaround" || it0.Applied != "TurnFlush" {
		t.Fatalf("contention not classified turnaround: %+v", it0)
	}
	conflicts := 0
	for _, v := range it0.Violations {
		if v.Kind == verify.DriverConflict.String() {
			conflicts++
		}
	}
	if conflicts == 0 {
		t.Fatalf("base iteration found no driver conflict: %+v", it0.Violations)
	}
	// After TurnFlush every driver conflict is gone; what remains is the
	// missed-pulse delivery hazard, outside the grammar.
	last := res.Iterations[len(res.Iterations)-1]
	for _, v := range last.Violations {
		if v.Kind == verify.DriverConflict.String() {
			t.Fatalf("driver conflict survived TurnFlush: %+v", last.Violations)
		}
	}
	if res.Repaired || !res.ExhaustedGrammar {
		t.Fatalf("loop should report grammar exhaustion on the residual hazard:\n%s", res.Format())
	}
}

// TestRepairGrammarExhausted: the baseline (non-robust) full handshake
// deadlocks under a 1-drop budget; no grammar member is applicable
// without Robust, so the loop must stop immediately and say so.
func TestRepairGrammarExhausted(t *testing.T) {
	res, err := Run(pqSoloBuilder(), protogen.Config{Protocol: spec.FullHandshake}, Config{
		Verify: verify.Config{MaxDrops: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Repaired || !res.ExhaustedGrammar {
		t.Fatalf("expected grammar exhaustion on the unhardened baseline:\n%s", res.Format())
	}
	if len(res.Iterations) != 1 || len(res.Mutations) != 0 {
		t.Fatalf("expected a single iteration with no mutations, got %d/%v", len(res.Iterations), res.Mutations)
	}
}

// TestRepairCleanBaseNoIterations: a system with nothing wrong repairs
// trivially in one iteration with no mutations.
func TestRepairCleanBaseNoIterations(t *testing.T) {
	res, err := Run(pqSoloBuilder(), protogen.Config{Protocol: spec.FullHandshake}, Config{
		Verify: verify.Config{}, // no drop budget: fault-free baseline is clean
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified() || len(res.Mutations) != 0 || len(res.Iterations) != 1 {
		t.Fatalf("fault-free baseline should verify clean untouched:\n%s", res.Format())
	}
}

// TestRepairWorkerInvariance pins the loop's determinism: the repaired
// spec and the full iteration trace are byte-identical at any verify
// worker count, matching the invariance guarantees of verify and the
// fault campaigns.
func TestRepairWorkerInvariance(t *testing.T) {
	type digest struct {
		trace    string
		format   string
		spec     string
		states   int
		iters    int
		repaired bool
	}
	run := func(workers int) digest {
		res, err := Run(pqSoloBuilder(), robustBase(), Config{
			Verify: verify.Config{MaxDrops: 1, Workers: workers},
		})
		if err != nil {
			t.Fatal(err)
		}
		tj, err := res.TraceJSON()
		if err != nil {
			t.Fatal(err)
		}
		var specText bytes.Buffer
		for _, b := range res.System.Behaviors() {
			specText.WriteString(b.Name + "\n" + spec.FormatStmts(b.Body, "  "))
			for _, p := range b.Procedures {
				specText.WriteString(p.Name + "\n" + spec.FormatStmts(p.Body, "  "))
			}
		}
		return digest{
			trace: string(tj), format: res.Format(), spec: specText.String(),
			states: res.Report.States, iters: len(res.Iterations), repaired: res.Repaired,
		}
	}
	base := run(1)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		got := run(workers)
		if got != base {
			t.Fatalf("repair loop not worker-invariant at %d workers:\nbase: %+v\ngot:  %+v", workers, base, got)
		}
	}
}

// TestClassify pins the classifier's mode table.
func TestClassify(t *testing.T) {
	robust := robustBase()
	half := protogen.Config{Protocol: spec.HalfHandshake}
	baseline := protogen.Config{Protocol: spec.FullHandshake}
	cases := []struct {
		name string
		v    verify.Violation
		cfg  protogen.Config
		want Mode
	}{
		{"livelock-robust", verify.Violation{Kind: verify.Livelock}, robust, ModeLasso},
		{"livelock-baseline", verify.Violation{Kind: verify.Livelock}, baseline, ModeUnknown},
		{"conflict-half", verify.Violation{Kind: verify.DriverConflict}, half, ModeTurnaround},
		{"conflict-full", verify.Violation{Kind: verify.DriverConflict}, baseline, ModeUnknown},
		{"deadlock", verify.Violation{Kind: verify.Deadlock}, robust, ModeUnknown},
		// Corruption without a dropped transition (no cex) stays unknown:
		// the lost-ack diagnosis is specifically about a lost strobe.
		{"corruption-no-drop", verify.Violation{Kind: verify.Corruption}, robust, ModeUnknown},
	}
	for _, tc := range cases {
		if got := Classify(&tc.v, tc.cfg); got != tc.want {
			t.Errorf("%s: Classify = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestMutationKnobs pins Apply/Applied/Applicable over the grammar.
func TestMutationKnobs(t *testing.T) {
	robust := robustBase()
	half := protogen.Config{Protocol: spec.HalfHandshake}
	for _, m := range Grammar() {
		if m.Applied(robust) {
			t.Errorf("%s applied on a fresh config", m)
		}
		c := robust
		m.Apply(&c)
		if !m.Applied(c) {
			t.Errorf("%s not applied after Apply", m)
		}
	}
	// Applicability split: the four full-handshake knobs on robust-full,
	// TurnFlush on half.
	for _, m := range []Mutation{CommitAck, ReleaseStale, AckSeq, EpochResync} {
		if !m.Applicable(robust) {
			t.Errorf("%s should be applicable on robust full handshake", m)
		}
		if m.Applicable(half) {
			t.Errorf("%s should not be applicable on the half handshake", m)
		}
	}
	if TurnFlush.Applicable(robust) {
		t.Error("TurnFlush should not be applicable on the full handshake")
	}
	if !TurnFlush.Applicable(half) {
		t.Error("TurnFlush should be applicable on the half handshake")
	}
}
