package repair

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/verify"
)

// cexTrace captures one simulator replay of a counterexample, rendered
// to strings so the two kernels compare directly. Steps is deliberately
// absent (the kernels count executed work differently); everything
// observable — the full event stream, time, final state — must match.
type cexTrace struct {
	events     []string
	clocks     int64
	deltas     int64
	finals     map[string]string
	sigEvents  map[string]int64
	processEnd map[string]int64
	err        string
	buildErr   string
}

func (tr *cexTrace) fill(res *sim.Result, err error) {
	if err != nil {
		tr.err = err.Error()
		return
	}
	tr.clocks = res.Clocks
	tr.deltas = res.Deltas
	tr.finals = make(map[string]string, len(res.Finals))
	for k, v := range res.Finals {
		tr.finals[k] = v.String()
	}
	tr.sigEvents = res.SignalEvents
	tr.processEnd = res.ProcessEnd
}

func traceClassic(sys *spec.System, cfg sim.Config) cexTrace {
	var tr cexTrace
	cfg.OnEvent = func(now int64, sig *spec.Variable, val sim.Value) {
		tr.events = append(tr.events, fmt.Sprintf("t=%d %s=%s", now, sig.Name, val))
	}
	s, err := sim.New(sys, cfg)
	if err != nil {
		tr.buildErr = err.Error()
		return tr
	}
	res, err := s.Run()
	tr.fill(res, err)
	return tr
}

func traceBatch(e *sim.Engine, cfg sim.Config) cexTrace {
	var tr cexTrace
	cfg.OnEvent = func(now int64, sig *spec.Variable, val sim.Value) {
		tr.events = append(tr.events, fmt.Sprintf("t=%d %s=%s", now, sig.Name, val))
	}
	res, err := e.Run(cfg)
	tr.fill(res, err)
	return tr
}

func diffTraces(a, b cexTrace) string {
	if a.buildErr != b.buildErr {
		return fmt.Sprintf("build: %q vs %q", a.buildErr, b.buildErr)
	}
	if a.err != b.err {
		return fmt.Sprintf("outcome: %q vs %q", a.err, b.err)
	}
	for i := 0; i < len(a.events) && i < len(b.events); i++ {
		if a.events[i] != b.events[i] {
			return fmt.Sprintf("event %d: %q vs %q", i, a.events[i], b.events[i])
		}
	}
	if len(a.events) != len(b.events) {
		return fmt.Sprintf("event count: %d vs %d", len(a.events), len(b.events))
	}
	if a.clocks != b.clocks {
		return fmt.Sprintf("clocks: %d vs %d", a.clocks, b.clocks)
	}
	if a.deltas != b.deltas {
		return fmt.Sprintf("deltas: %d vs %d", a.deltas, b.deltas)
	}
	for k, v := range a.finals {
		if b.finals[k] != v {
			return fmt.Sprintf("finals[%s]: %q vs %q", k, v, b.finals[k])
		}
	}
	if len(a.finals) != len(b.finals) {
		return fmt.Sprintf("finals size: %d vs %d", len(a.finals), len(b.finals))
	}
	for _, pair := range []struct {
		name string
		x, y map[string]int64
	}{{"signal events", a.sigEvents, b.sigEvents}, {"process end", a.processEnd, b.processEnd}} {
		for k, v := range pair.x {
			if pair.y[k] != v {
				return fmt.Sprintf("%s[%s]: %d vs %d", pair.name, k, v, pair.y[k])
			}
		}
		if len(pair.x) != len(pair.y) {
			return fmt.Sprintf("%s size: %d vs %d", pair.name, len(pair.x), len(pair.y))
		}
	}
	return ""
}

// TestRepairCexCrossKernel replays every counterexample the repair loop
// produced — faulty, scheduled interleavings at the edge of the
// protocol's behavior — through both simulator kernels and diffs the
// complete observable traces. Repair counterexamples are exactly the
// adversarial inputs most likely to expose a kernel divergence, so the
// loop doubles as a differential test generator. Both cached runs feed
// it: the lost-ack repair (one protocol shape) and the escalating run,
// whose counterexamples span the half handshake, the flushed half
// handshake, and the reselected full handshake. The configuration is
// rebuilt per run: the attached fault injector is stateful.
func TestRepairCexCrossKernel(t *testing.T) {
	cexes := append([]*verify.Counterexample{}, runLostAck(t).Counterexamples...)
	cexes = append(cexes, runEscalation(t).Counterexamples...)
	if len(cexes) == 0 {
		t.Fatal("repair loops produced no counterexamples")
	}
	for i, c := range cexes {
		e, err := sim.NewEngine(c.System())
		if err != nil {
			t.Fatalf("cex %d: NewEngine: %v", i, err)
		}
		classic := traceClassic(c.System(), c.SimConfig())
		batch := traceBatch(e, c.SimConfig())
		if d := diffTraces(classic, batch); d != "" {
			t.Fatalf("cex %d (%s): batch kernel diverges from classic: %s", i, c.Kind, d)
		}
		// Second batch run on the same pooled engine: replaying the same
		// faults must not leak injector or runner state.
		again := traceBatch(e, c.SimConfig())
		if d := diffTraces(classic, again); d != "" {
			t.Fatalf("cex %d (%s): second batch run diverges (reset leak): %s", i, c.Kind, d)
		}
	}
}
