package repair

import (
	"testing"

	"repro/internal/protogen"
	"repro/internal/sim"
	"repro/internal/spec"
)

// FuzzRepairMutations drives random subsets of the repair grammar over
// random base configurations and asserts the grammar's safety contract:
// any sequence of Applicable mutations leaves the config valid
// (Config.Validate accepts it), the generator still synthesizes a
// refined system from it, and that system still builds an executable
// simulation. The committed corpus pins the combinations the repair
// loop actually reaches (the headline CommitAck+ReleaseStale pair, the
// full robust knob set, TurnFlush on the half handshake).
func FuzzRepairMutations(f *testing.F) {
	// mask selects grammar members by bit index; the remaining arguments
	// shape the base config.
	f.Add(byte(0x03), false, true, byte(8), byte(2), false)  // headline repair
	f.Add(byte(0x1f), false, true, byte(8), byte(2), true)   // whole grammar, parity on
	f.Add(byte(0x10), true, false, byte(0), byte(0), false)  // TurnFlush on the half handshake
	f.Add(byte(0x00), false, true, byte(16), byte(3), false) // no mutations
	f.Add(byte(0x0c), false, true, byte(4), byte(1), false)  // AckSeq+EpochResync
	f.Fuzz(func(t *testing.T, mask byte, half, robust bool, timeout, retries byte, parity bool) {
		cfg := protogen.Config{Protocol: spec.FullHandshake, Robust: robust, Parity: parity}
		if half {
			cfg.Protocol = spec.HalfHandshake
		}
		if robust {
			cfg.TimeoutClocks = int64(timeout%32) + 4
			cfg.MaxRetries = int(retries % 4)
		}
		if cfg.Validate() != nil {
			t.Skip("invalid base config")
		}
		for _, m := range Grammar() {
			if mask&(1<<uint(m)) == 0 {
				continue
			}
			if m.Applicable(cfg) {
				m.Apply(&cfg)
				if !m.Applied(cfg) {
					t.Fatalf("%s not applied after Apply", m)
				}
			} else {
				// An inapplicable mutation must stay inapplicable as a
				// no-op: applying it anyway must be what Validate rejects.
				probe := cfg
				m.Apply(&probe)
				if probe.Validate() == nil {
					t.Fatalf("%s reported inapplicable on a config it validates against: %+v", m, cfg)
				}
			}
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("applicable mutations composed into an invalid config %+v: %v", cfg, err)
		}
		sys, abortKeys, err := pqSoloBuilder()(cfg)
		if err != nil {
			t.Fatalf("mutated config %+v no longer synthesizes: %v", cfg, err)
		}
		if cfg.Robust && cfg.Protocol == spec.FullHandshake && len(abortKeys) == 0 {
			t.Fatalf("robust generation lost its abort counters: %+v", cfg)
		}
		if _, err := sim.New(sys, sim.Config{}); err != nil {
			t.Fatalf("refined system under %+v is not executable: %v", cfg, err)
		}
	})
}
