package repair

import (
	"testing"

	"repro/internal/protogen"
	"repro/internal/sim"
	"repro/internal/spec"
)

// FuzzRepairMutations drives random subsets of the repair grammar over
// random base configurations and asserts the grammar's safety contract:
// any sequence of Applicable mutations leaves the config valid
// (Config.Validate accepts it), the generator still synthesizes a
// refined system from it, and that system still builds an executable
// simulation. An inapplicable mutation must be either a guarded no-op
// (the protocol-selection escalation on a config that already selected
// the full handshake) or exactly what Validate rejects. The committed
// corpus pins the combinations the repair loop actually reaches: the
// headline CommitAck+ReleaseStale pair, the full grammar with
// arbitration and parity, TurnFlush on the half handshake, the tier-2
// arbitration pair, and the escalating TurnFlush→SelectFullHandshake
// path.
func FuzzRepairMutations(f *testing.F) {
	// mask selects grammar members by bit index; the remaining arguments
	// shape the base config.
	f.Add(byte(0x03), false, true, byte(8), byte(2), false, false)  // headline repair
	f.Add(byte(0xff), false, true, byte(8), byte(2), true, true)    // whole grammar, parity + arbitration
	f.Add(byte(0x10), true, false, byte(0), byte(0), false, false)  // TurnFlush on the half handshake
	f.Add(byte(0x00), false, true, byte(16), byte(3), false, false) // no mutations
	f.Add(byte(0x0c), false, true, byte(4), byte(1), false, false)  // AckSeq+EpochResync
	f.Add(byte(0x60), false, true, byte(8), byte(2), false, true)   // GrantHold+BusPark (tier 2)
	f.Add(byte(0x90), true, false, byte(0), byte(0), false, false)  // TurnFlush then escalation (tier 3)
	f.Fuzz(func(t *testing.T, mask byte, half, robust bool, timeout, retries byte, parity, arbitrate bool) {
		cfg := protogen.Config{Protocol: spec.FullHandshake, Robust: robust, Parity: parity, Arbitrate: arbitrate}
		if half {
			cfg.Protocol = spec.HalfHandshake
		}
		if robust {
			cfg.TimeoutClocks = int64(timeout%32) + 4
			cfg.MaxRetries = int(retries % 4)
		}
		if cfg.Validate() != nil {
			t.Skip("invalid base config")
		}
		for _, m := range Grammar() {
			if mask&(1<<uint(m)) == 0 {
				continue
			}
			if m.Applicable(cfg) {
				m.Apply(&cfg)
				if !m.Applied(cfg) {
					t.Fatalf("%s not applied after Apply", m)
				}
			} else {
				// An inapplicable mutation must stay inapplicable as a
				// no-op: either Apply changes nothing (a guarded
				// escalation whose precondition fails), or applying it
				// anyway is what Validate rejects.
				probe := cfg
				m.Apply(&probe)
				if probe != cfg && probe.Validate() == nil {
					t.Fatalf("%s reported inapplicable on a config it mutates and validates against: %+v", m, cfg)
				}
			}
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("applicable mutations composed into an invalid config %+v: %v", cfg, err)
		}
		sys, abortKeys, err := pqSoloBuilder()(cfg)
		if err != nil {
			t.Fatalf("mutated config %+v no longer synthesizes: %v", cfg, err)
		}
		if cfg.Robust && cfg.Protocol == spec.FullHandshake && len(abortKeys) == 0 {
			t.Fatalf("robust generation lost its abort counters: %+v", cfg)
		}
		if _, err := sim.New(sys, sim.Config{}); err != nil {
			t.Fatalf("refined system under %+v is not executable: %v", cfg, err)
		}
	})
}
